#!/usr/bin/env bash
# Daemon smoke test: boots shogund on a random port, waits for
# readiness, issues one good query (verifying the embedding count
# against the software miner's golden value), one over-budget query
# (expecting the typed 422 event-budget error), checks the request
# observability plane (trace header on responses, /metrics Prometheus
# exposition with nonzero request counters, /v1/requests inspection,
# access log flushed by the drain), then sends SIGTERM and requires a
# clean exit (status 0) within the drain deadline.
#
# Usage: ci/daemon_smoke.sh
#
# Environment:
#   DRAIN_DEADLINE  seconds allowed between SIGTERM and exit (default 20)
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
deadline=${DRAIN_DEADLINE:-20}
work=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "daemon_smoke: building" >&2
(cd "$root" && go build -o "$work/shogund" ./cmd/shogund)

"$work/shogund" -addr 127.0.0.1:0 -workers 2 -drain "${deadline}s" \
    -addr-file "$work/addr" -access-log "$work/access.log" >"$work/log" 2>&1 &
daemon_pid=$!

# Wait for the address file, then for readiness.
for _ in $(seq 1 100); do
    [ -s "$work/addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$work/log" >&2; echo "daemon_smoke: daemon died before binding" >&2; exit 1; }
    sleep 0.1
done
addr=$(cat "$work/addr")
[ -n "$addr" ] || { echo "daemon_smoke: no bound address" >&2; exit 1; }
echo "daemon_smoke: daemon on $addr" >&2

ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then ready=1; break; fi
    sleep 0.1
done
[ "$ready" = 1 ] || { cat "$work/log" >&2; echo "daemon_smoke: /readyz never came up" >&2; exit 1; }

# Golden count for wi/tc straight from the software miner (shogun CLI).
# The response must carry a trace ID and the per-phase attribution.
echo "daemon_smoke: count query" >&2
curl -fsS -D "$work/hdrs" -o "$work/body.json" "http://$addr/v1/count" \
    -H 'X-Shogun-Trace: smoke-trace-1' -d '{"dataset":"wi","pattern":"tc"}'
body=$(cat "$work/body.json")
grep -qi '^x-shogun-trace: smoke-trace-1' "$work/hdrs" || {
    echo "daemon_smoke: trace header not echoed" >&2; exit 1; }
jq -e '.trace == "smoke-trace-1" and (.phases_us.run >= 0)' "$work/body.json" >/dev/null || {
    echo "daemon_smoke: response missing trace/phases_us: $body" >&2; exit 1; }
emb=$(echo "$body" | jq -r .embeddings)
case "$emb" in
    ''|null|0) echo "daemon_smoke: bad count response: $body" >&2; exit 1 ;;
esac
# The same query twice must be bit-identical (and exercises the cache).
emb2=$(curl -fsS "http://$addr/v1/count" -d '{"dataset":"wi","pattern":"tc"}' | jq -r .embeddings)
[ "$emb" = "$emb2" ] || { echo "daemon_smoke: non-deterministic counts: $emb vs $emb2" >&2; exit 1; }
echo "daemon_smoke: embeddings=$emb (stable)" >&2

# Over-budget simulate: must be the typed 422 event_budget error.
echo "daemon_smoke: over-budget query" >&2
status=$(curl -s -o "$work/err.json" -w '%{http_code}' "http://$addr/v1/simulate" \
    -d '{"dataset":"wi","pattern":"tc","budget":{"max_events":1}}')
kind=$(jq -r .kind "$work/err.json")
if [ "$status" != 422 ] || [ "$kind" != event_budget ]; then
    echo "daemon_smoke: over-budget query: status=$status kind=$kind body=$(cat "$work/err.json")" >&2
    exit 1
fi
echo "daemon_smoke: over-budget -> 422 event_budget" >&2

# /metrics: the exposition must be structurally valid Prometheus text
# (every line a HELP/TYPE comment or a `name[{labels}] value` sample) and
# the request counters must reflect the queries above.
echo "daemon_smoke: scraping /metrics" >&2
curl -fsS "http://$addr/metrics" >"$work/metrics"
bad=$(grep -cvE '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+|[a-zA-Z_:][a-zA-Z0-9_:]*\{[^}]*le="\+Inf"[^}]*\} [0-9]+)$' "$work/metrics" || true)
if [ "$bad" != 0 ]; then
    grep -vE '^(# (HELP|TYPE) |[a-zA-Z_:])' "$work/metrics" | head >&2
    echo "daemon_smoke: /metrics has $bad malformed exposition lines" >&2
    exit 1
fi
ok_count=$(awk '/^shogun_requests_total\{op="count",outcome="ok"\}/ {print $2}' "$work/metrics")
[ -n "$ok_count" ] && [ "$ok_count" -ge 2 ] || {
    echo "daemon_smoke: shogun_requests_total count/ok = '$ok_count', want >= 2" >&2; exit 1; }
budget_count=$(awk '/^shogun_requests_total\{op="simulate",outcome="budget"\}/ {print $2}' "$work/metrics")
[ -n "$budget_count" ] && [ "$budget_count" -ge 1 ] || {
    echo "daemon_smoke: shogun_requests_total simulate/budget = '$budget_count', want >= 1" >&2; exit 1; }
grep -q '^shogun_request_duration_seconds_bucket' "$work/metrics" || {
    echo "daemon_smoke: latency histogram missing from /metrics" >&2; exit 1; }
echo "daemon_smoke: /metrics valid (count/ok=$ok_count simulate/budget=$budget_count)" >&2

# /v1/requests: the recent ring holds the traced request.
curl -fsS "http://$addr/v1/requests" | jq -e \
    '.recent | map(select(.trace == "smoke-trace-1")) | length >= 1' >/dev/null || {
    echo "daemon_smoke: traced request missing from /v1/requests recent ring" >&2; exit 1; }
echo "daemon_smoke: /v1/requests lists the traced request" >&2

# SIGTERM: the daemon must drain and exit 0 within the deadline.
echo "daemon_smoke: SIGTERM, waiting up to ${deadline}s" >&2
kill -TERM "$daemon_pid"
exit_code=""
for _ in $(seq 1 $((deadline * 10))); do
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        wait "$daemon_pid" && exit_code=0 || exit_code=$?
        break
    fi
    sleep 0.1
done
if [ -z "$exit_code" ]; then
    cat "$work/log" >&2
    echo "daemon_smoke: daemon still running ${deadline}s after SIGTERM" >&2
    exit 1
fi
daemon_pid=""
if [ "$exit_code" != 0 ]; then
    cat "$work/log" >&2
    echo "daemon_smoke: daemon exited $exit_code after SIGTERM, want 0" >&2
    exit 1
fi
grep -q "drained clean" "$work/log" || {
    cat "$work/log" >&2
    echo "daemon_smoke: no 'drained clean' line in the log" >&2
    exit 1
}

# The drain must have flushed the buffered access log: every request
# above appears as a JSON line with its trace and outcome.
[ -s "$work/access.log" ] || { echo "daemon_smoke: access log empty after drain" >&2; exit 1; }
jq -es 'map(select(.trace == "smoke-trace-1" and .outcome == "ok")) | length == 1' \
    "$work/access.log" >/dev/null || {
    cat "$work/access.log" >&2
    echo "daemon_smoke: traced request missing from flushed access log" >&2
    exit 1
}
echo "daemon_smoke: PASS (clean drain, exit 0, access log flushed)" >&2
