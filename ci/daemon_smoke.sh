#!/usr/bin/env bash
# Daemon smoke test: boots shogund on a random port, waits for
# readiness, issues one good query (verifying the embedding count
# against the software miner's golden value), one over-budget query
# (expecting the typed 422 event-budget error), then sends SIGTERM and
# requires a clean exit (status 0) within the drain deadline.
#
# Usage: ci/daemon_smoke.sh
#
# Environment:
#   DRAIN_DEADLINE  seconds allowed between SIGTERM and exit (default 20)
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
deadline=${DRAIN_DEADLINE:-20}
work=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "daemon_smoke: building" >&2
(cd "$root" && go build -o "$work/shogund" ./cmd/shogund)

"$work/shogund" -addr 127.0.0.1:0 -workers 2 -drain "${deadline}s" \
    -addr-file "$work/addr" >"$work/log" 2>&1 &
daemon_pid=$!

# Wait for the address file, then for readiness.
for _ in $(seq 1 100); do
    [ -s "$work/addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$work/log" >&2; echo "daemon_smoke: daemon died before binding" >&2; exit 1; }
    sleep 0.1
done
addr=$(cat "$work/addr")
[ -n "$addr" ] || { echo "daemon_smoke: no bound address" >&2; exit 1; }
echo "daemon_smoke: daemon on $addr" >&2

ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then ready=1; break; fi
    sleep 0.1
done
[ "$ready" = 1 ] || { cat "$work/log" >&2; echo "daemon_smoke: /readyz never came up" >&2; exit 1; }

# Golden count for wi/tc straight from the software miner (shogun CLI).
echo "daemon_smoke: count query" >&2
body=$(curl -fsS "http://$addr/v1/count" -d '{"dataset":"wi","pattern":"tc"}')
emb=$(echo "$body" | jq -r .embeddings)
case "$emb" in
    ''|null|0) echo "daemon_smoke: bad count response: $body" >&2; exit 1 ;;
esac
# The same query twice must be bit-identical (and exercises the cache).
emb2=$(curl -fsS "http://$addr/v1/count" -d '{"dataset":"wi","pattern":"tc"}' | jq -r .embeddings)
[ "$emb" = "$emb2" ] || { echo "daemon_smoke: non-deterministic counts: $emb vs $emb2" >&2; exit 1; }
echo "daemon_smoke: embeddings=$emb (stable)" >&2

# Over-budget simulate: must be the typed 422 event_budget error.
echo "daemon_smoke: over-budget query" >&2
status=$(curl -s -o "$work/err.json" -w '%{http_code}' "http://$addr/v1/simulate" \
    -d '{"dataset":"wi","pattern":"tc","budget":{"max_events":1}}')
kind=$(jq -r .kind "$work/err.json")
if [ "$status" != 422 ] || [ "$kind" != event_budget ]; then
    echo "daemon_smoke: over-budget query: status=$status kind=$kind body=$(cat "$work/err.json")" >&2
    exit 1
fi
echo "daemon_smoke: over-budget -> 422 event_budget" >&2

# SIGTERM: the daemon must drain and exit 0 within the deadline.
echo "daemon_smoke: SIGTERM, waiting up to ${deadline}s" >&2
kill -TERM "$daemon_pid"
exit_code=""
for _ in $(seq 1 $((deadline * 10))); do
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        wait "$daemon_pid" && exit_code=0 || exit_code=$?
        break
    fi
    sleep 0.1
done
if [ -z "$exit_code" ]; then
    cat "$work/log" >&2
    echo "daemon_smoke: daemon still running ${deadline}s after SIGTERM" >&2
    exit 1
fi
daemon_pid=""
if [ "$exit_code" != 0 ]; then
    cat "$work/log" >&2
    echo "daemon_smoke: daemon exited $exit_code after SIGTERM, want 0" >&2
    exit 1
fi
grep -q "drained clean" "$work/log" || {
    cat "$work/log" >&2
    echo "daemon_smoke: no 'drained clean' line in the log" >&2
    exit 1
}
echo "daemon_smoke: PASS (clean drain, exit 0)" >&2
