#!/usr/bin/env bash
# Benchmark snapshot: runs the perf-trajectory benchmark set (whole-
# accelerator simulate, engine throughput, pool acquire, sampler on/off,
# multi-chip cluster scale-out) and emits one BENCH_<id>.json point for
# the repo's perf history.
#
# Every benchmark runs -count times so the raw samples are suitable for
# `benchstat old.txt new.txt` (the raw `go test -bench` lines are kept
# verbatim in .raw); the summary values are per-sample medians.
#
# Usage: ci/bench_snapshot.sh <id> [outfile]
#   id       trajectory point id, e.g. 0006 -> BENCH_0006.json
#   outfile  defaults to BENCH_<id>.json in the repo root
#
# Environment:
#   BENCH_COUNT         samples per benchmark (default 5)
#   BENCH_TIME          -benchtime for the accel benchmarks (default 10x)
#   BENCH_SIM_TIME      -benchtime for the sim micro-benchmarks (default 2000000x)
#   BENCH_CLUSTER_TIME  -benchtime for the cluster scale-out benchmarks (default 3x)
set -euo pipefail

id=${1:?usage: bench_snapshot.sh <id> [outfile]}
root=$(cd "$(dirname "$0")/.." && pwd)
out=${2:-"$root/BENCH_${id}.json"}
count=${BENCH_COUNT:-5}
btime=${BENCH_TIME:-10x}
simtime=${BENCH_SIM_TIME:-2000000x}
clustertime=${BENCH_CLUSTER_TIME:-3x}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "bench_snapshot: accel benchmarks (-count $count -benchtime $btime)" >&2
(cd "$root" && go test ./internal/accel/ -run '^$' \
    -bench 'BenchmarkSimulate$|BenchmarkSimulateHeap$|BenchmarkSimulateSampler' \
    -benchmem -count "$count" -benchtime "$btime") | tee -a "$tmp" >&2

echo "bench_snapshot: sim benchmarks (-count $count -benchtime $simtime)" >&2
(cd "$root" && go test ./internal/sim/ -run '^$' \
    -bench 'BenchmarkEngineThroughput|BenchmarkPoolAcquire' \
    -benchmem -count "$count" -benchtime "$simtime") | tee -a "$tmp" >&2

echo "bench_snapshot: cluster scale-out benchmarks (-count $count -benchtime $clustertime)" >&2
(cd "$root" && go test ./internal/cluster/ -run '^$' \
    -bench 'BenchmarkClusterSimulate' \
    -benchmem -count "$count" -benchtime "$clustertime") | tee -a "$tmp" >&2

commit=$(cd "$root" && git rev-parse --short HEAD 2>/dev/null || echo unknown)
goversion=$(go env GOVERSION)
goos=$(go env GOOS)
goarch=$(go env GOARCH)
cpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# Fold the raw `BenchmarkX-N  iters  v1 unit1  v2 unit2 ...` lines into
# JSON: per benchmark, the median of each unit plus the raw lines.
awk -v id="$id" -v commit="$commit" -v gover="$goversion" \
    -v goos="$goos" -v goarch="$goarch" -v cpus="$cpus" -v date="$date" \
    -v count="$count" -v btime="$btime" -v simtime="$simtime" -v clustertime="$clustertime" '
function jsonunit(u) {
    gsub(/\//, "_per_", u); gsub(/[^A-Za-z0-9_]/, "_", u); return u
}
function median(arr, n,   i, tmpv, j) {
    # insertion sort (n is tiny)
    for (i = 2; i <= n; i++) {
        tmpv = arr[i]
        for (j = i - 1; j >= 1 && arr[j] > tmpv; j--) arr[j+1] = arr[j]
        arr[j+1] = tmpv
    }
    if (n % 2) return arr[(n+1)/2]
    return (arr[n/2] + arr[n/2+1]) / 2
}
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++nb] = name }
    line = $0; gsub(/\t/, " ", line); gsub(/  +/, " ", line)
    raw[name] = raw[name] sprintf("%s\"%s\"", raw[name] ? ", " : "", line)
    for (i = 3; i + 1 <= NF; i += 2) {
        u = jsonunit($(i+1))
        key = name SUBSEP u
        if (!(key in nsample)) { units[name] = units[name] (units[name] ? SUBSEP : "") u }
        nsample[key]++
        samples[key, nsample[key]] = $i + 0
    }
}
END {
    printf "{\n"
    printf "  \"schema\": \"shogun-bench-v1\",\n"
    printf "  \"id\": \"%s\",\n", id
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"host\": {\"os\": \"%s\", \"arch\": \"%s\", \"cpus\": %s},\n", goos, goarch, cpus
    printf "  \"flags\": {\"count\": %s, \"benchtime_accel\": \"%s\", \"benchtime_sim\": \"%s\", \"benchtime_cluster\": \"%s\"},\n", count, btime, simtime, clustertime
    printf "  \"benchmarks\": {\n"
    for (b = 1; b <= nb; b++) {
        name = order[b]
        printf "    \"%s\": {\n", name
        nu = split(units[name], ulist, SUBSEP)
        for (ui = 1; ui <= nu; ui++) {
            u = ulist[ui]
            key = name SUBSEP u
            n = nsample[key]
            for (s = 1; s <= n; s++) tmparr[s] = samples[key, s]
            printf "      \"%s\": %g,\n", u, median(tmparr, n)
        }
        printf "      \"raw\": [%s]\n", raw[name]
        printf "    }%s\n", (b < nb) ? "," : ""
    }
    printf "  }\n"
    printf "}\n"
}' "$tmp" > "$out"

echo "bench_snapshot: wrote $out" >&2
