#!/usr/bin/env bash
# Allocation ceiling: BenchmarkSimulate allocs/op must stay at or below
# the ceiling in ci/allocs_ceiling.txt. The calendar-queue/pooled-event
# engine brought the run from ~253k allocs/op to ~2.4k (BENCH_0006.json);
# this guard catches any change that quietly reintroduces per-event or
# per-task allocation. Tighten the ceiling when the number drops (never
# raise it for convenience — a real regression should be fixed, not
# accommodated).
#
# Usage: ci/check_allocs.sh
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
ceiling=$(tr -d '[:space:]' < "$root/ci/allocs_ceiling.txt")

out=$(cd "$root" && go test ./internal/accel/ -run '^$' \
    -bench 'BenchmarkSimulate$' -benchmem -benchtime 3x)
echo "$out"

allocs=$(echo "$out" | awk '/^BenchmarkSimulate/ { for (i=1;i<NF;i++) if ($(i+1)=="allocs/op") print $i }')
if [ -z "$allocs" ]; then
    echo "FAIL: could not parse allocs/op from benchmark output" >&2
    exit 1
fi
echo "BenchmarkSimulate: ${allocs} allocs/op (ceiling: ${ceiling})"
if [ "$allocs" -gt "$ceiling" ]; then
    echo "FAIL: allocs/op ${allocs} exceeds the committed ceiling ${ceiling}" >&2
    exit 1
fi
