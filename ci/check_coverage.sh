#!/usr/bin/env bash
# Coverage ratchet: total statement coverage must not drop below the
# floor recorded in ci/coverage_ratchet.txt. Raise the floor when
# coverage grows (never lower it) — measured at 78.7% when introduced.
#
# Usage: ci/check_coverage.sh <coverprofile>
set -euo pipefail

profile=${1:?usage: check_coverage.sh <coverprofile>}
floor=$(tr -d '[:space:]' < "$(dirname "$0")/coverage_ratchet.txt")

total=$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $NF); print $NF}')
echo "total coverage: ${total}% (floor: ${floor}%)"

awk -v t="$total" -v f="$floor" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
    echo "FAIL: coverage ${total}% fell below the ratchet floor ${floor}%" >&2
    exit 1
}
