#!/usr/bin/env bash
# Saturation snapshot: boots shogund, runs the shogunload open-loop QPS
# sweep against it, and writes one BENCH_<id>.json point (schema
# shogun-saturation-v1) recording p50/p99 accepted latency, shed rate,
# typed-error counts and — with the daemon's request observability on,
# the default — the server-side per-phase attribution
# (parse/queue/graph/schedule/run/encode) per offered-load level, so the
# snapshot shows queue-wait, not run time, absorbing latency past the
# knee. The companion of ci/bench_snapshot.sh for the serving dimension.
#
# Usage: ci/saturation_snapshot.sh <id> [outfile]
#   id       trajectory point id, e.g. 0007 -> BENCH_0007.json
#   outfile  defaults to BENCH_<id>.json in the repo root
#
# Environment:
#   SAT_WORKERS   daemon worker pool size (default 2)
#   SAT_QPS       comma-separated offered QPS levels (default "25,50,100,200")
#   SAT_DURATION  time per level (default 4s)
#   SAT_DATASET   dataset analogue (default wi)
#   SAT_PATTERN   pattern (default tc)
set -euo pipefail

id=${1:?usage: saturation_snapshot.sh <id> [outfile]}
root=$(cd "$(dirname "$0")/.." && pwd)
out=${2:-"$root/BENCH_${id}.json"}
workers=${SAT_WORKERS:-2}
qps=${SAT_QPS:-"25,50,100,200"}
duration=${SAT_DURATION:-4s}
dataset=${SAT_DATASET:-wi}
pat=${SAT_PATTERN:-tc}

work=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "saturation_snapshot: building" >&2
(cd "$root" && go build -o "$work/shogund" ./cmd/shogund)
(cd "$root" && go build -o "$work/shogunload" ./cmd/shogunload)

"$work/shogund" -addr 127.0.0.1:0 -workers "$workers" -addr-file "$work/addr" \
    >"$work/log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -s "$work/addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$work/log" >&2; exit 1; }
    sleep 0.1
done
addr=$(cat "$work/addr")
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/readyz" >/dev/null 2>&1 && break
    sleep 0.1
done
echo "saturation_snapshot: daemon on $addr (workers=$workers)" >&2

commit=$(cd "$root" && git rev-parse --short HEAD 2>/dev/null || echo unknown)

# Golden count from one uncontended software-miner query; the sweep then
# requires every accepted response to be bit-identical to it.
golden=$(curl -fsS "http://$addr/v1/count" \
    -d "{\"dataset\":\"$dataset\",\"pattern\":\"$pat\"}" | jq -r .embeddings)
expect_flag=()
case "$golden" in
    ''|null) echo "saturation_snapshot: no golden count; skipping -expect" >&2 ;;
    *) expect_flag=(-expect "$golden")
       echo "saturation_snapshot: golden embeddings=$golden" >&2 ;;
esac
"$work/shogunload" -addr "$addr" -op count -dataset "$dataset" -pattern "$pat" \
    -qps "$qps" -duration "$duration" "${expect_flag[@]}" \
    -snapshot-out "$out" -snapshot-id "$id" -commit "$commit"

# Per-phase attribution must have made it into the snapshot (the daemon
# serves with observability on by default), and the knee story should be
# legible from it: print avg queue vs run per level.
jq -e '.saturation.levels | length > 0 and all(.server_phases_us != null)' "$out" >/dev/null \
    || { echo "saturation_snapshot: levels missing server_phases_us attribution" >&2; exit 1; }
echo "saturation_snapshot: phase attribution (avg us)" >&2
jq -r '.saturation.levels[] |
    "  qps=\(.qps) queue=\(.server_phases_us.queue.avg|floor) run=\(.server_phases_us.run.avg|floor) graph=\(.server_phases_us.graph.avg|floor) encode=\(.server_phases_us.encode.avg|floor)"' \
    "$out" >&2

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "saturation_snapshot: daemon exited dirty" >&2; exit 1; }
daemon_pid=""
echo "saturation_snapshot: wrote $out" >&2
