package shogun

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests pin the error *messages* of the public loading surface:
// a daemon returns them verbatim to remote callers, so they must name
// the failing input and, where the input space is enumerable, the valid
// choices.

func TestLoadGraphMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-graph.txt")
	_, err := LoadGraph(path)
	if err == nil {
		t.Fatal("LoadGraph on a missing file succeeded")
	}
	if !os.IsNotExist(err) {
		t.Fatalf("want a not-exist error, got: %v", err)
	}
	if !strings.Contains(err.Error(), "no-such-graph.txt") {
		t.Fatalf("error does not name the missing path: %v", err)
	}
}

func TestLoadGraphMalformedFile(t *testing.T) {
	cases := []struct {
		name, content, wantSub string
	}{
		{"one field", "0 1\n2\n", "line 2"},
		{"non-numeric", "0 1\nalpha beta\n", "line 2"},
		{"negative id", "0 1\n-3 4\n", "line 2"},
	}
	for _, tc := range cases {
		path := filepath.Join(t.TempDir(), "bad.txt")
		if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadGraph(path)
		if err == nil {
			t.Fatalf("%s: malformed edge list accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not locate the bad line (want %q)",
				tc.name, err, tc.wantSub)
		}
	}
}

func TestDatasetUnknownNameListsChoices(t *testing.T) {
	_, err := Dataset("nope")
	if err == nil {
		t.Fatal("unknown dataset accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"nope"`) {
		t.Fatalf("error does not echo the bad name: %v", err)
	}
	// An actionable message enumerates what would have worked.
	for _, name := range DatasetNames() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error does not list valid dataset %q: %v", name, err)
		}
	}
}

func TestPatternByNameUnknown(t *testing.T) {
	_, err := PatternByName("dodecahedron")
	if err == nil {
		t.Fatal("unknown pattern accepted")
	}
	if !strings.Contains(err.Error(), "dodecahedron") {
		t.Fatalf("error does not echo the bad name: %v", err)
	}
	// Known names — including the induced-variant suffix convention —
	// must keep resolving, or the message above is lying about the
	// valid space.
	for _, name := range []string{"tc", "tt", "tt_v", "4cl", "5cl", "dia", "house"} {
		if _, err := PatternByName(name); err != nil {
			t.Fatalf("PatternByName(%q): %v", name, err)
		}
	}
}
