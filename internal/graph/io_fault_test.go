package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// validBinary serializes a small fixed graph for corruption tests.
func validBinary(t *testing.T) []byte {
	t.Helper()
	g := MustNew(5, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// putU64 overwrites the i-th uint64 field of a serialized graph.
func putU64(b []byte, i int, v uint64) []byte {
	out := append([]byte(nil), b...)
	binary.LittleEndian.PutUint64(out[8*i:], v)
	return out
}

func TestReadBinaryCorruptInputs(t *testing.T) {
	valid := validBinary(t)
	// Layout: [magic][n][m][offsets: n+1 x int64][neighbors: m x int32].
	headerEnd := 3 * 8
	offsetsEnd := headerEnd + 6*8 // n = 5

	cases := []struct {
		name string
		data []byte
		want string // substring of the expected error
	}{
		{"empty", nil, "EOF"},
		{"header-truncated", valid[:headerEnd-3], "EOF"},
		{"offsets-truncated", valid[:headerEnd+7], "EOF"},
		{"neighbors-truncated", valid[:len(valid)-2], "EOF"},
		{"bad-magic", putU64(valid, 0, 0xdeadbeef), "bad magic"},
		{"implausible-n", putU64(valid, 1, 1<<40), "implausible header"},
		{"implausible-m", putU64(valid, 2, 1<<40), "implausible header"},
		{"nonzero-origin", putU64(valid, 3, 1), "corrupt offsets origin"},
		// offsets[2] > offsets[3] makes the prefix sums non-monotone.
		{"non-monotone-offsets", putU64(valid, 5, 99), "corrupt offsets"},
		{"offset-past-m", putU64(valid, 8, 1000), "corrupt offsets"},
		{"neighbor-out-of-range", func() []byte {
			out := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint32(out[offsetsEnd:], 77) // n = 5
			return out
		}(), "out of range"},
		{"neighbor-negative", func() []byte {
			out := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint32(out[offsetsEnd:], 0xffffffff)
			return out
		}(), "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := ReadBinary(bytes.NewReader(c.data))
			if err == nil {
				t.Fatalf("decoded corrupt input into %d-vertex graph", g.NumVertices())
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

// TestReadBinaryEveryTruncation cuts a valid buffer at every length and
// requires a clean error (never a panic or a short-read success).
func TestReadBinaryEveryTruncation(t *testing.T) {
	valid := validBinary(t)
	for cut := 0; cut < len(valid); cut++ {
		if _, err := ReadBinary(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", cut, len(valid))
		}
	}
	if _, err := ReadBinary(bytes.NewReader(valid)); err != nil {
		t.Fatalf("full buffer failed to decode: %v", err)
	}
}

// TestReadBinarySingleByteMutations flips each byte of a valid buffer in
// turn; every mutant must either fail cleanly or decode into a graph
// that still satisfies the CSR invariants.
func TestReadBinarySingleByteMutations(t *testing.T) {
	valid := validBinary(t)
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		g, err := ReadBinary(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		for v := 0; v < g.NumVertices(); v++ {
			if d := g.Degree(VertexID(v)); d < 0 {
				t.Fatalf("byte %d: negative degree %d at vertex %d", i, d, v)
			}
		}
	}
}

// errWriter fails after n bytes, exercising WriteBinary's error paths.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, io.ErrShortWrite
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteBinaryPropagatesWriteErrors(t *testing.T) {
	g := MustNew(5, []Edge{{0, 1}, {1, 2}, {2, 3}})
	for _, budget := range []int{0, 8, 30, 60} {
		if err := g.WriteBinary(&errWriter{n: budget}); err == nil {
			t.Fatalf("budget %d: write error swallowed", budget)
		}
	}
}

func TestBinaryRoundTripEdgeCases(t *testing.T) {
	graphs := []*Graph{
		MustNew(1, nil),
		MustNew(4, nil), // isolated vertices only
		MustNew(5, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}}),
		MustNew(6, []Edge{{0, 5}, {5, 0}, {2, 2}, {1, 4}}), // dups + self loop dropped
	}
	for i, g := range graphs {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("graph %d: write: %v", i, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("graph %d: read: %v", i, err)
		}
		if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
			t.Fatalf("graph %d: shape changed: %d/%d vs %d/%d",
				i, g.NumVertices(), g.NumEdges(), got.NumVertices(), got.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Neighbors(VertexID(v)), got.Neighbors(VertexID(v))
			if len(a) != len(b) {
				t.Fatalf("graph %d vertex %d: degree %d vs %d", i, v, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("graph %d vertex %d: neighbors differ", i, v)
				}
			}
		}
	}
}
