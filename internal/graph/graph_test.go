package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("zero Graph: got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	g2 := MustNew(0, nil)
	if g2.NumVertices() != 0 || g2.NumEdges() != 0 {
		t.Fatalf("empty Graph: got %d vertices, %d edges", g2.NumVertices(), g2.NumEdges())
	}
}

func TestNewDedupAndSort(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 0}, {3, 3}, {1, 2}})
	if got := g.NumEdges(); got != 3 {
		t.Fatalf("NumEdges = %d, want 3 (dupes and self loop dropped)", got)
	}
	want := map[VertexID][]VertexID{
		0: {1, 2},
		1: {0, 2},
		2: {0, 1},
		3: {},
	}
	for v, w := range want {
		got := g.Neighbors(v)
		if len(got) == 0 && len(w) == 0 {
			continue
		}
		if !reflect.DeepEqual([]VertexID(got), w) {
			t.Errorf("Neighbors(%d) = %v, want %v", v, got, w)
		}
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if g.Degree(3) != 0 {
		t.Errorf("Degree(3) = %d, want 0", g.Degree(3))
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	if _, err := New(2, []Edge{{0, 2}}); err == nil {
		t.Fatal("New accepted out-of-range edge")
	}
	if _, err := New(-1, nil); err == nil {
		t.Fatal("New accepted negative vertex count")
	}
}

func TestHasEdge(t *testing.T) {
	g := MustNew(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}})
	cases := []struct {
		u, v VertexID
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, true}, {0, 3, false},
		{2, 2, false}, {3, 4, true}, {1, 4, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestStats(t *testing.T) {
	// Star graph: one hub of degree 4, four leaves of degree 1.
	g := MustNew(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	s := g.ComputeStats()
	if s.Vertices != 5 || s.Edges != 4 || s.MaxDegree != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if want := 8.0 / 5.0; s.AvgDegree != want {
		t.Errorf("AvgDegree = %v, want %v", s.AvgDegree, want)
	}
	if s.Skewness <= 0 {
		t.Errorf("star graph skewness = %v, want positive", s.Skewness)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := randomEdges(rng, 50, 200)
	g := MustNew(50, edges)
	g2 := MustNew(50, g.Edges())
	assertSameGraph(t, g, g2)
}

func TestRelabelPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := MustNew(30, randomEdges(rng, 30, 100))
	order := g.DegreeOrder()
	h, err := g.Relabel(order)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("relabel changed edge count: %d != %d", h.NumEdges(), g.NumEdges())
	}
	// Degrees must be ascending after degree-order relabeling.
	for v := 1; v < h.NumVertices(); v++ {
		if h.Degree(VertexID(v)) < h.Degree(VertexID(v-1)) {
			t.Fatalf("degree order violated at %d: %d < %d", v, h.Degree(VertexID(v)), h.Degree(VertexID(v-1)))
		}
	}
	// Edge (a,b) in g must appear as (inv[a], inv[b]) in h.
	inv := make([]VertexID, g.NumVertices())
	for newID, oldID := range order {
		inv[oldID] = VertexID(newID)
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(inv[e.U], inv[e.V]) {
			t.Fatalf("edge (%d,%d) lost in relabel", e.U, e.V)
		}
	}
}

func TestRelabelRejectsBadPermutation(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}})
	if _, err := g.Relabel([]VertexID{0, 0, 1}); err == nil {
		t.Fatal("Relabel accepted duplicate entries")
	}
	if _, err := g.Relabel([]VertexID{0, 1}); err == nil {
		t.Fatal("Relabel accepted short permutation")
	}
}

func TestEdgeListIO(t *testing.T) {
	in := "# comment\n% another\n0 1\n1 2\n 2 0 \n\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "0 x\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", bad)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := MustNew(64, randomEdges(rng, 64, 400))
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
	if g2.MaxDegree() != g.MaxDegree() {
		t.Errorf("MaxDegree lost: %d != %d", g2.MaxDegree(), g.MaxDegree())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph at all, sorry!"))); err == nil {
		t.Fatal("ReadBinary accepted garbage")
	}
}

// Property: for any random edge multiset, the CSR invariants hold.
func TestCSRInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%60) + 2
		rng := rand.New(rand.NewSource(seed))
		g := MustNew(n, randomEdges(rng, n, int(mRaw%500)))
		total := int64(0)
		for v := 0; v < n; v++ {
			nb := g.Neighbors(VertexID(v))
			total += int64(len(nb))
			for i := range nb {
				if nb[i] == VertexID(v) {
					return false // self loop survived
				}
				if i > 0 && nb[i] <= nb[i-1] {
					return false // not strictly sorted
				}
				// Symmetry: v must appear in nb[i]'s list.
				if !g.HasEdge(nb[i], VertexID(v)) {
					return false
				}
			}
		}
		return total == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{VertexID(rng.Intn(n)), VertexID(rng.Intn(n))}
	}
	return edges
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() {
		t.Fatalf("vertex count %d != %d", a.NumVertices(), b.NumVertices())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge count %d != %d", a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		na := append([]VertexID(nil), a.Neighbors(VertexID(v))...)
		nb := append([]VertexID(nil), b.Neighbors(VertexID(v))...)
		sort.Slice(na, func(i, j int) bool { return na[i] < na[j] })
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		if !reflect.DeepEqual(na, nb) {
			t.Fatalf("neighbors of %d differ: %v vs %v", v, na, nb)
		}
	}
}
