package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the text parser: arbitrary input must either
// parse into a graph satisfying the CSR invariants or return an error —
// never panic.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5\n")
	f.Add("")
	f.Add("999999999999999999 0\n")
	f.Add("a b\n0 1")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		// Parsed graphs must round-trip and keep invariants.
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write failed on parsed graph: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				g.NumVertices(), g.NumEdges(), g2.NumVertices(), g2.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			nb := g.Neighbors(VertexID(v))
			for i := 1; i < len(nb); i++ {
				if nb[i] <= nb[i-1] {
					t.Fatal("neighbor list not strictly sorted")
				}
			}
		}
	})
}

// FuzzBinaryRoundTrip builds a graph from fuzzer-chosen edges and
// requires WriteBinary→ReadBinary to reproduce it exactly.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 1, 2})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(16), []byte{0, 0, 3, 3, 5, 9, 15, 2})
	f.Fuzz(func(t *testing.T, n uint8, raw []byte) {
		if n == 0 {
			n = 1
		}
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				U: VertexID(int(raw[i]) % int(n)),
				V: VertexID(int(raw[i+1]) % int(n)),
			})
		}
		g, err := New(int(n), edges)
		if err != nil {
			t.Fatalf("valid edges rejected: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("read back own output: %v", err)
		}
		if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
			t.Fatalf("shape changed: %d/%d vs %d/%d",
				g.NumVertices(), g.NumEdges(), got.NumVertices(), got.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Neighbors(VertexID(v)), got.Neighbors(VertexID(v))
			if len(a) != len(b) {
				t.Fatalf("vertex %d: degree %d vs %d", v, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("vertex %d: neighbors differ", v)
				}
			}
		}
	})
}

// FuzzReadBinary hardens the binary decoder against corrupt inputs.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = MustNew(4, []Edge{{0, 1}, {1, 2}}).WriteBinary(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded graphs must be internally consistent.
		for v := 0; v < g.NumVertices(); v++ {
			_ = g.Degree(VertexID(v))
		}
		_ = g.NumEdges()
	})
}
