// Package graph provides an immutable compressed-sparse-row (CSR) graph
// representation used throughout the simulator and the software miner.
//
// Graphs are simple and undirected: the builder removes self loops and
// duplicate edges and stores each edge in both directions. Neighbor lists
// are sorted by ascending vertex id, which the pattern-aware mining
// algorithms rely on for merge-based set operations and symmetry breaking
// (see Algorithm 1 of the Shogun paper).
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// VertexID identifies a vertex. Graphs in this repository are bounded by
// int32 so neighbor lists pack two vertices per 8 bytes and a 64-byte cache
// line holds 16 ids, matching the paper's cost accounting (Table 2).
type VertexID = int32

// Edge is an undirected edge between two vertices.
type Edge struct {
	U, V VertexID
}

// Graph is an immutable undirected graph in CSR form.
//
// The zero value is an empty graph with no vertices.
type Graph struct {
	offsets   []int64 // len = n+1; neighbor range of v is [offsets[v], offsets[v+1])
	neighbors []VertexID
	maxDegree int

	// hub caches the lazily built, shared HubIndex (see hubindex.go).
	// CSR fields above stay immutable; only this cache is guarded.
	hubMu    sync.Mutex
	hub      *HubIndex
	hubBuilt bool
}

// New builds a Graph from an edge list. Self loops and duplicate edges are
// dropped. n is the number of vertices; all edge endpoints must lie in
// [0, n).
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds int32 range", n)
	}
	deg := make([]int64, n)
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]VertexID, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	// Sort each adjacency list and remove duplicates in place.
	maxDeg := 0
	write := int64(0)
	newOffsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		row := adj[lo:hi]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		start := write
		var prev VertexID = -1
		for _, u := range row {
			if u == prev {
				continue
			}
			adj[write] = u
			write++
			prev = u
		}
		newOffsets[v+1] = write
		if d := int(write - start); d > maxDeg {
			maxDeg = d
		}
	}
	return &Graph{offsets: newOffsets, neighbors: adj[:write:write], maxDegree: maxDeg}, nil
}

// MustNew is like New but panics on error. Intended for tests and
// generators whose inputs are known valid.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges reports the number of undirected edges.
func (g *Graph) NumEdges() int64 {
	if len(g.offsets) == 0 {
		return 0
	}
	return g.offsets[len(g.offsets)-1] / 2
}

// Degree reports the degree of v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree reports the largest degree in the graph.
func (g *Graph) MaxDegree() int { return g.maxDegree }

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// NeighborOffset reports the index into the flat neighbor array where v's
// adjacency list begins. The simulator uses it to synthesize memory
// addresses for CSR accesses.
func (g *Graph) NeighborOffset(v VertexID) int64 { return g.offsets[v] }

// HasEdge reports whether u and v are adjacent, via binary search on the
// smaller adjacency list.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	row := g.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	return i < len(row) && row[i] == v
}

// Stats summarizes structural properties that drive workload behaviour in
// the evaluation: size, average degree, and degree skew.
type Stats struct {
	Vertices     int
	Edges        int64
	MaxDegree    int
	AvgDegree    float64
	DegreeStdDev float64
	// Skewness is the standardized third moment of the degree
	// distribution; heavy-tailed graphs like the Youtube analogue have
	// large positive skewness.
	Skewness float64
}

// ComputeStats computes summary statistics for g.
func (g *Graph) ComputeStats() Stats {
	n := g.NumVertices()
	s := Stats{Vertices: n, Edges: g.NumEdges(), MaxDegree: g.maxDegree}
	if n == 0 {
		return s
	}
	var sum, sum2, sum3 float64
	for v := 0; v < n; v++ {
		d := float64(g.Degree(VertexID(v)))
		sum += d
		sum2 += d * d
		sum3 += d * d * d
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	s.AvgDegree = mean
	s.DegreeStdDev = math.Sqrt(variance)
	if variance > 0 {
		m3 := sum3/float64(n) - 3*mean*sum2/float64(n) + 2*mean*mean*mean
		s.Skewness = m3 / math.Pow(variance, 1.5)
	}
	return s
}

// Edges returns the edge list (u < v) of the graph. Allocates.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			if u > VertexID(v) {
				out = append(out, Edge{VertexID(v), u})
			}
		}
	}
	return out
}

// DegreeOrder returns vertices sorted by ascending (degree, id). Mining
// systems commonly relabel graphs into this order so symmetry-breaking
// comparisons prune high-degree roots early.
func (g *Graph) DegreeOrder() []VertexID {
	n := g.NumVertices()
	order := make([]VertexID, n)
	for i := range order {
		order[i] = VertexID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	return order
}

// Relabel returns a new graph where vertex order[i] of g becomes vertex i.
// order must be a permutation of [0, n).
func (g *Graph) Relabel(order []VertexID) (*Graph, error) {
	n := g.NumVertices()
	if len(order) != n {
		return nil, fmt.Errorf("graph: relabel permutation has %d entries, want %d", len(order), n)
	}
	inv := make([]VertexID, n)
	seen := make([]bool, n)
	for newID, oldID := range order {
		if oldID < 0 || int(oldID) >= n || seen[oldID] {
			return nil, fmt.Errorf("graph: relabel order is not a permutation")
		}
		seen[oldID] = true
		inv[oldID] = VertexID(newID)
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			if u > VertexID(v) {
				edges = append(edges, Edge{inv[v], inv[u]})
			}
		}
	}
	return New(n, edges)
}
