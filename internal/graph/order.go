package graph

import "container/heap"

// Degeneracy computes the graph's degeneracy (the smallest d such that
// every subgraph has a vertex of degree ≤ d) and a degeneracy ordering:
// repeatedly removing a minimum-degree vertex. Mining systems orient
// edges along this ordering to bound candidate-set sizes — a k-clique's
// candidates under degeneracy orientation never exceed the degeneracy,
// which is typically far below the maximum degree on social graphs.
func (g *Graph) Degeneracy() (degeneracy int, order []VertexID) {
	n := g.NumVertices()
	deg := make([]int, n)
	removed := make([]bool, n)
	h := &vertexHeap{}
	pos := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(VertexID(v))
	}
	h.items = make([]heapItem, n)
	for v := 0; v < n; v++ {
		h.items[v] = heapItem{v: VertexID(v), key: deg[v]}
		pos[v] = v
	}
	h.pos = pos
	heap.Init(h)

	order = make([]VertexID, 0, n)
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		v := it.v
		if it.key > degeneracy {
			degeneracy = it.key
		}
		removed[v] = true
		order = append(order, v)
		for _, u := range g.Neighbors(v) {
			if removed[u] {
				continue
			}
			deg[u]--
			h.decrease(u, deg[u])
		}
	}
	return degeneracy, order
}

// OrientByDegeneracy returns a copy of the graph relabeled so the
// degeneracy ordering becomes ascending vertex ids. Under the mining
// schedules' "later < earlier" symmetry breaking this concentrates work
// on small candidate sets.
func (g *Graph) OrientByDegeneracy() (*Graph, error) {
	_, order := g.Degeneracy()
	return g.Relabel(order)
}

// CoreNumbers computes the k-core number of every vertex (the largest k
// such that the vertex belongs to a subgraph of minimum degree k).
func (g *Graph) CoreNumbers() []int {
	n := g.NumVertices()
	core := make([]int, n)
	deg := make([]int, n)
	removed := make([]bool, n)
	h := &vertexHeap{}
	pos := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(VertexID(v))
	}
	h.items = make([]heapItem, n)
	for v := 0; v < n; v++ {
		h.items[v] = heapItem{v: VertexID(v), key: deg[v]}
		pos[v] = v
	}
	h.pos = pos
	heap.Init(h)

	maxSeen := 0
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		if it.key > maxSeen {
			maxSeen = it.key
		}
		core[it.v] = maxSeen
		removed[it.v] = true
		for _, u := range g.Neighbors(it.v) {
			if removed[u] {
				continue
			}
			deg[u]--
			h.decrease(u, deg[u])
		}
	}
	return core
}

type heapItem struct {
	v   VertexID
	key int
}

// vertexHeap is a min-heap with position tracking for decrease-key.
type vertexHeap struct {
	items []heapItem
	pos   []int // vertex -> index in items; -1 when popped
}

func (h *vertexHeap) Len() int           { return len(h.items) }
func (h *vertexHeap) Less(i, j int) bool { return h.items[i].key < h.items[j].key }
func (h *vertexHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].v] = i
	h.pos[h.items[j].v] = j
}
func (h *vertexHeap) Push(x interface{}) {
	it := x.(heapItem)
	h.pos[it.v] = len(h.items)
	h.items = append(h.items, it)
}
func (h *vertexHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	h.pos[it.v] = -1
	return it
}

func (h *vertexHeap) decrease(v VertexID, key int) {
	i := h.pos[v]
	if i < 0 || h.items[i].key == key {
		return
	}
	h.items[i].key = key
	heap.Fix(h, i)
}
