package graph

import "sort"

// DefaultHubBudgetBytes is the memory budget of the lazily built hub
// index: the top-K selection shrinks K until the whole index (bitsets
// plus the per-vertex slot table) fits.
const DefaultHubBudgetBytes = 32 << 20

// MinHubDegree is the smallest degree a vertex needs to be indexed as a
// hub. Below it a bitmap probe saves too little over a merge walk to
// justify the bitset footprint.
const MinHubDegree = 64

// HubIndex holds word-packed adjacency bitsets for the highest-degree
// ("hub") vertices of a graph. Pattern-aware miners probe candidate lists
// against these bitsets in O(1) per element instead of merge-walking the
// hub's long adjacency list (the G²Miner hybrid-kernel technique). The
// index is immutable once built and safe for concurrent readers.
type HubIndex struct {
	words int     // uint64 words per bitset = ceil(n/64)
	slot  []int32 // per-vertex bitset slot, -1 if not a hub
	hubs  []VertexID
	bits  []uint64 // len(hubs)*words, slot i at [i*words, (i+1)*words)
}

// HubIndex returns the graph's shared hub index, building it on first use
// with DefaultHubBudgetBytes. It returns nil when no vertex qualifies
// (small or near-regular graphs) or the budget cannot hold even the slot
// table plus one bitset.
func (g *Graph) HubIndex() *HubIndex {
	return g.HubIndexWithBudget(DefaultHubBudgetBytes)
}

// HubIndexWithBudget is HubIndex with an explicit memory budget in bytes
// (values <= 0 select the default). The index is built once per graph and
// shared: the budget of the first call wins and later calls return the
// cached index regardless of their argument.
func (g *Graph) HubIndexWithBudget(budgetBytes int64) *HubIndex {
	if budgetBytes <= 0 {
		budgetBytes = DefaultHubBudgetBytes
	}
	g.hubMu.Lock()
	defer g.hubMu.Unlock()
	if !g.hubBuilt {
		g.hub = buildHubIndex(g, budgetBytes)
		g.hubBuilt = true
	}
	return g.hub
}

// buildHubIndex selects the top-K vertices by degree (ties broken by
// lower id, so the index is deterministic) subject to degree >=
// MinHubDegree and the memory budget, then packs their adjacency bitsets.
func buildHubIndex(g *Graph, budgetBytes int64) *HubIndex {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	words := (n + 63) / 64
	perHub := int64(words)*8 + 4 // bitset words + hubs entry
	fixed := int64(n) * 4        // slot table
	if fixed+perHub > budgetBytes {
		return nil
	}
	maxHubs := int((budgetBytes - fixed) / perHub)
	cands := make([]VertexID, 0, 64)
	for v := 0; v < n; v++ {
		if g.Degree(VertexID(v)) >= MinHubDegree {
			cands = append(cands, VertexID(v))
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		di, dj := g.Degree(cands[i]), g.Degree(cands[j])
		if di != dj {
			return di > dj
		}
		return cands[i] < cands[j]
	})
	if len(cands) > maxHubs {
		cands = cands[:maxHubs]
	}
	h := &HubIndex{
		words: words,
		slot:  make([]int32, n),
		hubs:  cands,
		bits:  make([]uint64, len(cands)*words),
	}
	for i := range h.slot {
		h.slot[i] = -1
	}
	for i, v := range cands {
		h.slot[v] = int32(i)
		row := h.bits[i*words : (i+1)*words]
		for _, u := range g.Neighbors(v) {
			row[uint32(u)>>6] |= 1 << (uint32(u) & 63)
		}
	}
	return h
}

// Bits returns the adjacency bitset of v, or nil if v is not a hub. The
// returned slice aliases the index and must not be modified. A nil
// receiver is valid and always returns nil.
func (h *HubIndex) Bits(v VertexID) []uint64 {
	if h == nil {
		return nil
	}
	s := h.slot[v]
	if s < 0 {
		return nil
	}
	return h.bits[int(s)*h.words : (int(s)+1)*h.words]
}

// IsHub reports whether v has an indexed bitset.
func (h *HubIndex) IsHub(v VertexID) bool {
	return h != nil && h.slot[v] >= 0
}

// NumHubs reports how many vertices are indexed.
func (h *HubIndex) NumHubs() int {
	if h == nil {
		return 0
	}
	return len(h.hubs)
}

// Hubs returns the indexed vertices in decreasing-degree order. The slice
// aliases the index and must not be modified.
func (h *HubIndex) Hubs() []VertexID {
	if h == nil {
		return nil
	}
	return h.hubs
}

// Words reports the bitset width in uint64 words.
func (h *HubIndex) Words() int {
	if h == nil {
		return 0
	}
	return h.words
}

// MemoryBytes reports the index's approximate footprint, the quantity the
// build budget constrains.
func (h *HubIndex) MemoryBytes() int64 {
	if h == nil {
		return 0
	}
	return int64(len(h.bits))*8 + int64(len(h.slot))*4 + int64(len(h.hubs))*4
}
