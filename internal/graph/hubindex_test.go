package graph

import (
	"sync"
	"testing"
)

// hubTestGraph builds a star-heavy graph: vertex h_i (i < hubs) is
// connected to every vertex >= hubs, so the first `hubs` vertices have
// degree n-hubs and the rest have degree `hubs`.
func hubTestGraph(t *testing.T, n, hubs int) *Graph {
	t.Helper()
	var edges []Edge
	for h := 0; h < hubs; h++ {
		for v := hubs; v < n; v++ {
			edges = append(edges, Edge{VertexID(h), VertexID(v)})
		}
	}
	g, err := New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHubIndexBitsMatchNeighbors(t *testing.T) {
	g := hubTestGraph(t, 300, 3)
	h := g.HubIndex()
	if h == nil {
		t.Fatal("no hub index for a graph with degree-297 vertices")
	}
	if h.NumHubs() == 0 {
		t.Fatal("hub index indexed no vertices")
	}
	for _, v := range h.Hubs() {
		bits := h.Bits(v)
		if bits == nil {
			t.Fatalf("hub %d has nil bits", v)
		}
		want := map[VertexID]bool{}
		for _, u := range g.Neighbors(v) {
			want[u] = true
		}
		for u := 0; u < g.NumVertices(); u++ {
			got := bits[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0
			if got != want[VertexID(u)] {
				t.Fatalf("hub %d bit %d = %v, want %v", v, u, got, want[VertexID(u)])
			}
		}
	}
}

func TestHubIndexSelectsByDegree(t *testing.T) {
	g := hubTestGraph(t, 400, 4)
	h := g.HubIndex()
	if h == nil {
		t.Fatal("nil index")
	}
	// The four star centers (degree 396) must rank before the leaves
	// (degree 4 < MinHubDegree, so leaves are excluded entirely).
	if h.NumHubs() != 4 {
		t.Fatalf("NumHubs = %d, want 4 (leaves are below MinHubDegree)", h.NumHubs())
	}
	for v := VertexID(0); v < 4; v++ {
		if !h.IsHub(v) {
			t.Errorf("star center %d not a hub", v)
		}
	}
	if h.IsHub(100) {
		t.Error("low-degree leaf indexed as hub")
	}
	if h.Bits(100) != nil {
		t.Error("non-hub returned bits")
	}
}

func TestHubIndexBudget(t *testing.T) {
	g := hubTestGraph(t, 512, 6)
	// Budget for the slot table plus ~2 bitsets only.
	perHub := int64(((512+63)/64)*8) + 4
	budget := int64(512*4) + 2*perHub
	h := g.HubIndexWithBudget(budget)
	if h == nil {
		t.Fatal("nil index under 2-hub budget")
	}
	if h.NumHubs() != 2 {
		t.Fatalf("NumHubs = %d, want 2 under budget", h.NumHubs())
	}
	if h.MemoryBytes() > budget {
		t.Fatalf("MemoryBytes %d exceeds budget %d", h.MemoryBytes(), budget)
	}
	// A budget too small for even one bitset yields no index.
	g2 := hubTestGraph(t, 512, 6)
	if h2 := g2.HubIndexWithBudget(64); h2 != nil {
		t.Fatalf("tiny budget produced an index with %d hubs", h2.NumHubs())
	}
}

func TestHubIndexLazySharedAndConcurrent(t *testing.T) {
	g := hubTestGraph(t, 300, 3)
	var wg sync.WaitGroup
	got := make([]*HubIndex, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = g.HubIndex()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent HubIndex calls returned different indexes")
		}
	}
	// The first build wins; later budgets don't rebuild.
	if g.HubIndexWithBudget(1) != got[0] {
		t.Fatal("later call with different budget rebuilt the shared index")
	}
}

func TestHubIndexSmallGraphNil(t *testing.T) {
	g := MustNew(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if h := g.HubIndex(); h != nil {
		t.Fatalf("tiny graph got a hub index with %d hubs", h.NumHubs())
	}
	// nil receiver accessors must be safe.
	var h *HubIndex
	if h.NumHubs() != 0 || h.Words() != 0 || h.MemoryBytes() != 0 || h.Bits(0) != nil || h.IsHub(0) || h.Hubs() != nil {
		t.Fatal("nil HubIndex accessors misbehaved")
	}
}
