package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list, one "u v" pair per
// line. Lines beginning with '#' or '%' are comments, except that a
// "# vertices=N ..." header (as written by WriteEdgeList) fixes the vertex
// count so isolated vertices survive a round trip. Otherwise the count is
// 1 + the largest id seen.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edges []Edge
	maxID := int64(-1)
	declared := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "# vertices=") {
			rest := strings.TrimPrefix(line, "# vertices=")
			if i := strings.IndexByte(rest, ' '); i >= 0 {
				rest = rest[:i]
			}
			if n, err := strconv.ParseInt(rest, 10, 32); err == nil && n >= 0 {
				declared = n
			}
			continue
		}
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{VertexID(u), VertexID(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := maxID + 1
	if declared > n {
		n = declared
	}
	return New(int(n), edges)
}

// WriteEdgeList writes the graph as a "u v" edge list with u < v.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices=%d edges=%d\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			if u > VertexID(v) {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}

const binaryMagic = 0x53474e53 // "SGNS": Shogun Graph, Native byte Stream

// WriteBinary serializes the CSR arrays in a compact little-endian format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := [3]uint64{binaryMagic, uint64(g.NumVertices()), uint64(len(g.neighbors))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.neighbors); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	const maxElems = int64(1) << 31
	if hdr[1] >= uint64(maxElems) || hdr[2] >= uint64(maxElems) {
		return nil, fmt.Errorf("graph: implausible header (n=%d, m=%d)", hdr[1], hdr[2])
	}
	n, m := int(hdr[1]), int(hdr[2])
	// Read in bounded chunks so corrupt headers fail on EOF before any
	// oversized allocation happens.
	offsets, err := readInt64s(br, n+1)
	if err != nil {
		return nil, err
	}
	neighbors, err := readInt32s(br, m)
	if err != nil {
		return nil, err
	}
	g := &Graph{offsets: offsets, neighbors: neighbors}
	if g.offsets[0] != 0 {
		return nil, fmt.Errorf("graph: corrupt offsets origin %d", g.offsets[0])
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] || g.offsets[v+1] > int64(m) {
			return nil, fmt.Errorf("graph: corrupt offsets at vertex %d", v)
		}
		if d := int(g.offsets[v+1] - g.offsets[v]); d > g.maxDegree {
			g.maxDegree = d
		}
	}
	for _, u := range g.neighbors {
		if u < 0 || int(u) >= n {
			return nil, fmt.Errorf("graph: neighbor id %d out of range [0,%d)", u, n)
		}
	}
	return g, nil
}

const readChunk = 1 << 16

// readInt64s reads exactly k little-endian int64s, growing the slice in
// bounded chunks so truncated or hostile inputs fail before large
// allocations.
func readInt64s(r io.Reader, k int) ([]int64, error) {
	out := make([]int64, 0, min64(k, readChunk))
	buf := make([]int64, 0)
	for len(out) < k {
		c := k - len(out)
		if c > readChunk {
			c = readChunk
		}
		if cap(buf) < c {
			buf = make([]int64, c)
		}
		buf = buf[:c]
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

// readInt32s reads exactly k little-endian int32s in bounded chunks.
func readInt32s(r io.Reader, k int) ([]VertexID, error) {
	out := make([]VertexID, 0, min64(k, readChunk))
	buf := make([]VertexID, 0)
	for len(out) < k {
		c := k - len(out)
		if c > readChunk {
			c = readChunk
		}
		if cap(buf) < c {
			buf = make([]VertexID, c)
		}
		buf = buf[:c]
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

func min64(a, b int) int {
	if a < b {
		return a
	}
	return b
}
