package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDegeneracyKnownGraphs(t *testing.T) {
	// Complete graph K5: degeneracy 4.
	var edges []Edge
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, Edge{VertexID(i), VertexID(j)})
		}
	}
	k5 := MustNew(5, edges)
	if d, order := k5.Degeneracy(); d != 4 || len(order) != 5 {
		t.Errorf("K5 degeneracy = %d (order %v)", d, order)
	}
	// A tree: degeneracy 1.
	tree := MustNew(6, []Edge{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}})
	if d, _ := tree.Degeneracy(); d != 1 {
		t.Errorf("tree degeneracy = %d", d)
	}
	// A cycle: degeneracy 2.
	cyc := MustNew(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if d, _ := cyc.Degeneracy(); d != 2 {
		t.Errorf("cycle degeneracy = %d", d)
	}
}

func TestCoreNumbers(t *testing.T) {
	// K4 with a pendant vertex: K4 members have core 3, the pendant 1.
	g := MustNew(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}})
	core := g.CoreNumbers()
	for v := 0; v < 4; v++ {
		if core[v] != 3 {
			t.Errorf("core[%d] = %d, want 3", v, core[v])
		}
	}
	if core[4] != 1 {
		t.Errorf("pendant core = %d, want 1", core[4])
	}
}

// Property: the degeneracy ordering certificate holds — each vertex has
// at most `degeneracy` neighbors later in the order; and max core number
// equals the degeneracy.
func TestDegeneracyCertificateProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16) bool {
		n := int(nRaw%80) + 5
		m := int(mRaw % 400)
		rng := rand.New(rand.NewSource(seed))
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{VertexID(rng.Intn(n)), VertexID(rng.Intn(n))}
		}
		g := MustNew(n, edges)
		d, order := g.Degeneracy()
		rank := make([]int, n)
		for i, v := range order {
			rank[v] = i
		}
		for _, v := range order {
			later := 0
			for _, u := range g.Neighbors(v) {
				if rank[u] > rank[v] {
					later++
				}
			}
			if later > d {
				return false
			}
		}
		maxCore := 0
		for _, c := range g.CoreNumbers() {
			if c > maxCore {
				maxCore = c
			}
		}
		return maxCore == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOrientByDegeneracyPreservesEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := make([]Edge, 200)
	for i := range edges {
		edges[i] = Edge{VertexID(rng.Intn(60)), VertexID(rng.Intn(60))}
	}
	g := MustNew(60, edges)
	h, err := g.OrientByDegeneracy()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d != %d", h.NumEdges(), g.NumEdges())
	}
	dg, _ := g.Degeneracy()
	dh, _ := h.Degeneracy()
	if dg != dh {
		t.Fatalf("degeneracy changed by relabel: %d != %d", dg, dh)
	}
}
