package accel

import (
	"strings"
	"testing"

	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/pattern"
)

func TestEmptyAndTinyGraphs(t *testing.T) {
	s, _ := pattern.Build(pattern.Triangle())
	cases := map[string]*graph.Graph{
		"empty":     graph.MustNew(0, nil),
		"isolated":  graph.MustNew(5, nil),
		"one-edge":  graph.MustNew(2, []graph.Edge{{U: 0, V: 1}}),
		"triangle":  gen.Clique(3),
		"too-small": gen.Clique(2),
	}
	want := map[string]int64{"empty": 0, "isolated": 0, "one-edge": 0, "triangle": 1, "too-small": 0}
	for name, g := range cases {
		for _, scheme := range []Scheme{SchemeShogun, SchemePseudoDFS, SchemeDFS} {
			cfg := DefaultConfig(scheme)
			cfg.NumPEs = 2
			a, err := New(g, s, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, scheme, err)
			}
			res, err := a.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, scheme, err)
			}
			if res.Embeddings != want[name] {
				t.Errorf("%s/%s: %d embeddings, want %d", name, scheme, res.Embeddings, want[name])
			}
		}
	}
}

func TestDeadlineAborts(t *testing.T) {
	g := gen.RMAT(1<<10, 8000, 0.6, 0.15, 0.15, 2)
	s, _ := pattern.Build(pattern.FourClique())
	cfg := DefaultConfig(SchemeShogun)
	cfg.Deadline = 50 // absurdly tight
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("deadline not enforced: %v", err)
	}
}

func TestMorePEsThanRoots(t *testing.T) {
	g := gen.Clique(6)
	s, _ := pattern.Build(pattern.Triangle())
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 16 // more PEs than vertices
	cfg.EnableSplitting = true
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 20 {
		t.Fatalf("K6 triangles = %d", res.Embeddings)
	}
}

func TestSingleEntryBunches(t *testing.T) {
	// Degenerate tree geometry: width 1, single-entry bunches.
	g := gen.RMAT(128, 700, 0.6, 0.15, 0.15, 7)
	s, _ := pattern.Build(pattern.FourClique())
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 2
	cfg.PE.Width = 1
	cfg.TokensPerDepth = 1
	cfg.Tree.EntriesPerBunch = 1
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(g, s, DefaultConfig(SchemeShogun))
	ref, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != ref.Embeddings {
		t.Fatalf("width-1 tree miscounted: %d != %d", res.Embeddings, ref.Embeddings)
	}
}

func TestAblationKnobsPreserveCounts(t *testing.T) {
	g := gen.RMAT(256, 1400, 0.6, 0.15, 0.15, 19)
	s, _ := pattern.Build(pattern.FourCycle())
	base, _ := New(g, s, DefaultConfig(SchemeShogun))
	ref, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Tree.NoSiblingPreference = true },
		func(c *Config) { c.ForceConservative = true },
		func(c *Config) { c.DisableMonitor = true },
		func(c *Config) { c.TokensPerDepth = 2 },
		func(c *Config) { c.Tree.BunchesPerDepth = 1 },
	} {
		cfg := DefaultConfig(SchemeShogun)
		cfg.NumPEs = 4
		mutate(&cfg)
		a, err := New(g, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Embeddings != ref.Embeddings {
			t.Fatalf("ablation variant miscounted: %d != %d", res.Embeddings, ref.Embeddings)
		}
	}
}
