package accel

import (
	"context"
	"errors"
	"strings"
	"testing"

	"shogun/internal/gen"
	"shogun/internal/pattern"
	"shogun/internal/sim"
	"shogun/internal/trace"
)

func triSchedule(t *testing.T) *pattern.Schedule {
	t.Helper()
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// panicTracer panics after n task completions — a deterministic stand-in
// for an internal invariant violation deep inside the event loop.
type panicTracer struct{ n int }

func (p *panicTracer) TaskDone(trace.Event) {
	if p.n--; p.n <= 0 {
		panic("injected invariant violation")
	}
}

var _ trace.Tracer = (*panicTracer)(nil)

func TestRunContextCancelled(t *testing.T) {
	g := gen.RMAT(1<<10, 6000, 0.57, 0.17, 0.17, 7)
	cfg := DefaultConfig(SchemeShogun)
	cfg.EnableSplitting = true
	cfg.WatchdogPoll = 256
	a, err := New(g, triSchedule(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.RunContext(ctx); !errors.Is(err, sim.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestRunContextEventBudget(t *testing.T) {
	g := gen.RMAT(1<<10, 6000, 0.57, 0.17, 0.17, 7)
	cfg := DefaultConfig(SchemeShogun)
	cfg.MaxEvents = 500
	a, err := New(g, triSchedule(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RunContext(context.Background()); !errors.Is(err, sim.ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
}

func TestRunContextPanicContainment(t *testing.T) {
	g := gen.RMAT(1<<9, 3000, 0.57, 0.17, 0.17, 11)
	cfg := DefaultConfig(SchemeShogun)
	cfg.Tracer = &panicTracer{n: 50}
	a, err := New(g, triSchedule(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if res != nil {
		t.Fatal("result returned alongside a contained panic")
	}
	var ie *sim.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T %v, want *sim.InvariantError", err, err)
	}
	if ie.PanicValue != "injected invariant violation" {
		t.Fatalf("PanicValue = %v", ie.PanicValue)
	}
	if ie.Snapshot == nil {
		t.Fatal("InvariantError without snapshot")
	}
	// The snapshot must carry per-PE resources and FSM notes.
	if len(ie.Snapshot.Resources) != 2*cfg.NumPEs {
		t.Fatalf("snapshot has %d resources, want %d", len(ie.Snapshot.Resources), 2*cfg.NumPEs)
	}
	if len(ie.Snapshot.Notes) != cfg.NumPEs || !strings.Contains(ie.Snapshot.Notes[0], "tree{") {
		t.Fatalf("snapshot notes = %v", ie.Snapshot.Notes)
	}
	if ie.Stack == "" {
		t.Fatal("InvariantError without stack")
	}
	if d := ie.Details(); !strings.Contains(d, "pe0") || !strings.Contains(d, "invariant violation") {
		t.Fatalf("Details() missing content:\n%s", d)
	}
}

func TestForceSplitPreservesCount(t *testing.T) {
	g := gen.RMAT(1<<10, 8000, 0.57, 0.17, 0.17, 13)
	s := triSchedule(t)
	cfg := DefaultConfig(SchemeShogun)
	base, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Inject forced splits every 2000 cycles while work remains.
	forced := 0
	var tick func()
	tick = func() {
		if a.ForceSplit() {
			forced++
		}
		for _, p := range a.PEs() {
			if !p.Idle() || p.HasWork() {
				a.Engine().After(2000, tick)
				return
			}
		}
	}
	a.Engine().After(2000, tick)
	got, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Embeddings != want.Embeddings {
		t.Fatalf("forced splits changed the count: %d vs %d (forced %d)", got.Embeddings, want.Embeddings, forced)
	}
	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConservationCleanRun(t *testing.T) {
	g := gen.RMAT(1<<9, 3000, 0.57, 0.17, 0.17, 17)
	for _, scheme := range []Scheme{SchemeShogun, SchemePseudoDFS, SchemeBFS} {
		a, err := New(g, triSchedule(t), DefaultConfig(scheme))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Run(); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if err := a.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}
