package accel

import (
	"encoding/json"
	"fmt"
	"os"
)

// MarshalJSON-compatible notes: Config is a plain data structure except
// for the Tracer hook, which is skipped during (de)serialization.

type configJSON Config

// MarshalJSON serializes the configuration (the Tracer hook is omitted).
func (c Config) MarshalJSON() ([]byte, error) {
	cc := c
	cc.Tracer = nil
	return json.Marshal(configJSON(cc))
}

// UnmarshalJSON deserializes into the configuration, preserving any
// fields absent from the input (so LoadConfig can layer a partial file
// over scheme defaults).
func (c *Config) UnmarshalJSON(b []byte) error {
	cc := configJSON(*c)
	if err := json.Unmarshal(b, &cc); err != nil {
		return err
	}
	*c = Config(cc)
	return nil
}

// SaveConfig writes the configuration as indented JSON.
func SaveConfig(path string, cfg Config) error {
	b, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadConfig reads a configuration JSON written by SaveConfig (or by
// hand), layered on top of the scheme's defaults: absent fields keep
// their default values only if present in the file's scheme defaults —
// practically, start from `shogun -dumpconfig`, edit, reload.
func LoadConfig(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	// Determine the scheme first so defaults come from the right base.
	var probe struct {
		Scheme Scheme `json:"Scheme"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return Config{}, fmt.Errorf("accel: %s: %w", path, err)
	}
	if probe.Scheme == "" {
		probe.Scheme = SchemeShogun
	}
	cfg := DefaultConfig(probe.Scheme)
	if err := json.Unmarshal(b, &cfg); err != nil {
		return Config{}, fmt.Errorf("accel: %s: %w", path, err)
	}
	return cfg, nil
}
