package accel

import (
	"errors"
	"strings"
	"testing"

	"shogun/internal/gen"
	"shogun/internal/metrics"
	"shogun/internal/pattern"
)

// metricsTestRun simulates a small triangle-counting run and returns the
// accelerator with its counters populated.
func metricsTestRun(t *testing.T, scheme Scheme, split, merge bool) (*Accelerator, *Result) {
	t.Helper()
	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 42)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	cfg := DefaultConfig(scheme)
	cfg.NumPEs = 4
	cfg.EnableSplitting = split
	cfg.EnableMerging = merge
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return a, res
}

// TestMetricsVerifyAllSchemes asserts the conservation pass holds for
// every scheduling scheme (it also runs inside Run via VerifyMetrics —
// this pins the registry shape and invariant count besides).
func TestMetricsVerifyAllSchemes(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme Scheme
		split  bool
		merge  bool
	}{
		{"bfs", SchemeBFS, false, false},
		{"dfs", SchemeDFS, false, false},
		{"pseudo-dfs", SchemePseudoDFS, false, false},
		{"parallel-dfs", SchemeParallelDFS, false, false},
		{"shogun", SchemeShogun, false, false},
		{"shogun+split+merge", SchemeShogun, true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, _ := metricsTestRun(t, tc.scheme, tc.split, tc.merge)
			reg := a.Metrics()
			if err := reg.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			if n := reg.Invariants(); n < 40 {
				t.Fatalf("registry declares %d invariants, want ≥ 40", n)
			}
			if v, ok := reg.Value("tasks/created"); !ok || v == 0 {
				t.Fatalf("tasks/created = %d, ok=%t; want non-zero", v, ok)
			}
			rep := reg.Report()
			if strings.Contains(rep, "VIOLATED") {
				t.Fatalf("report marks violations on a clean run:\n%s", rep)
			}
		})
	}
}

// TestMetricsAttributionPartition asserts the headline identity from the
// issue: per-PE attributed cycles sum exactly to width × run-cycles, and
// the Result-level breakdown is the sum of the per-PE ones.
func TestMetricsAttributionPartition(t *testing.T) {
	a, res := metricsTestRun(t, SchemeShogun, true, true)
	width := int64(a.cfg.PE.Width)
	var sum CycleBreakdown
	for i, ps := range res.PerPE {
		want := width * int64(res.Cycles)
		if got := ps.Breakdown.Total(); got != want {
			t.Errorf("pe%d: breakdown total = %d, want width×cycles = %d", i, got, want)
		}
		if ps.Breakdown.Busy() != a.pes[i].SlotResidency.TotalSum {
			t.Errorf("pe%d: busy = %d, want slot residency %d",
				i, ps.Breakdown.Busy(), a.pes[i].SlotResidency.TotalSum)
		}
		sum.accumulate(ps.Breakdown)
	}
	if sum != res.Breakdown {
		t.Errorf("Result.Breakdown = %+v, want Σ per-PE = %+v", res.Breakdown, sum)
	}
	if res.Breakdown.Compute == 0 || res.Breakdown.MemStall == 0 || res.Breakdown.Scheduling == 0 {
		t.Errorf("degenerate breakdown: %+v", res.Breakdown)
	}
}

// TestMetricsDetectsCorruption proves Verify is a live oracle: nudging a
// counter after the run violates the identities that mention it.
func TestMetricsDetectsCorruption(t *testing.T) {
	a, _ := metricsTestRun(t, SchemeShogun, false, false)
	a.pes[0].TasksExecuted.Inc(1)
	err := a.VerifyMetrics()
	if err == nil {
		t.Fatal("verify passed after corrupting a counter")
	}
	var ve *metrics.VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("error type = %T, want *metrics.VerifyError", err)
	}
	// The executed count participates in at least the PE-level FSM
	// identity and the global execution sum.
	if len(ve.Violations) < 2 {
		t.Fatalf("violations = %v, want ≥ 2", ve.Violations)
	}
}

// TestRunFailsOnViolation asserts RunContext itself surfaces a metrics
// violation when VerifyMetrics is set (it is, by default).
func TestMetricsEnabledByDefault(t *testing.T) {
	if !DefaultConfig(SchemeShogun).VerifyMetrics {
		t.Fatal("DefaultConfig must enable VerifyMetrics")
	}
}

