package accel

import (
	"testing"

	"shogun/internal/gen"
	"shogun/internal/pattern"
	"shogun/internal/telemetry"
	"shogun/internal/trace"
)

// collectTracer records every completed task's event.
type collectTracer struct{ events []trace.Event }

func (c *collectTracer) TaskDone(ev trace.Event) { c.events = append(c.events, ev) }

// TestTelemetryShardsMatchTraceStream is the shard-merge acceptance
// criterion: a task-lifetime histogram merged from the per-PE shards must
// be bit-identical to one built from the global trace event stream.
func TestTelemetryShardsMatchTraceStream(t *testing.T) {
	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 6)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	col := &collectTracer{}
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 4
	cfg.SampleEvery = 256
	cfg.Tracer = col
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	tel := a.Telemetry()
	if tel == nil {
		t.Fatal("telemetry bundle missing with SampleEvery set")
	}
	global := telemetry.NewHistogram()
	for _, ev := range col.events {
		global.Observe(int64(ev.Done - ev.Start))
	}
	merged := tel.MergedLifetime()
	if merged.Count() == 0 {
		t.Fatal("no task lifetimes observed")
	}
	if !merged.Equal(global) {
		t.Fatalf("merged per-PE shards differ from global trace stream:\n merged: %s\n global: %s", merged, global)
	}
	if hs := tel.Histograms(); hs["task-lifetime"].Count != merged.Count() {
		t.Fatalf("Histograms() digest count %d != %d", hs["task-lifetime"].Count, merged.Count())
	}
}

// TestSamplerProducesSeries checks the epoch sampler records the expected
// gauges over a live run and the result carries the snapshot.
func TestSamplerProducesSeries(t *testing.T) {
	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 6)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 4
	cfg.SampleEvery = 128
	cfg.SampleCap = 64
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Telemetry
	if ts == nil || len(ts.Cycles) == 0 {
		t.Fatal("no sampled epochs")
	}
	if len(ts.Cycles) >= 64 {
		t.Fatalf("ring exceeded SampleCap: %d", len(ts.Cycles))
	}
	for _, name := range []string{"pe0/resident", "pe3/bunch-entries", "pe0/l1-mshr",
		"dram/queue", "noc/inflight", "engine/events", "tasks/executed"} {
		if ts.Col(name) == nil {
			t.Fatalf("gauge %q missing from snapshot", name)
		}
	}
	// tasks/executed is cumulative: its last sample must be positive and
	// non-decreasing.
	tasks := ts.Col("tasks/executed")
	for i := 1; i < len(tasks); i++ {
		if tasks[i] < tasks[i-1] {
			t.Fatalf("tasks/executed decreased: %v", tasks)
		}
	}
	if tasks[len(tasks)-1] == 0 {
		t.Fatal("tasks/executed never advanced")
	}
	if pts := ts.Imbalance("/resident"); len(pts) != len(ts.Cycles) {
		t.Fatalf("imbalance series length %d != %d epochs", len(pts), len(ts.Cycles))
	}
}

// TestSamplerOffIsNil checks the off path: no bundle, no result series,
// and the per-PE histogram hooks stay nil (the hot-path no-op contract).
func TestSamplerOffIsNil(t *testing.T) {
	g := gen.Clique(8)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 2
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Telemetry() != nil {
		t.Fatal("telemetry bundle exists with SampleEvery=0")
	}
	for _, p := range a.PEs() {
		if p.LifetimeHist != nil || p.QueueWaitHist != nil {
			t.Fatal("PE histogram hooks set with sampling off")
		}
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatal("result carries telemetry with sampling off")
	}
}

func TestNegativeSampleEveryRejected(t *testing.T) {
	g := gen.Clique(5)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(SchemeShogun)
	cfg.SampleEvery = -1
	if _, err := New(g, s, cfg); err == nil {
		t.Fatal("negative SampleEvery accepted")
	}
}
