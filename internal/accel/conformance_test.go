package accel

import (
	"fmt"
	"testing"

	"shogun/internal/datasets"
	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/mine"
)

// conformanceVariant is one scheduling configuration of the matrix.
type conformanceVariant struct {
	name   string
	scheme Scheme
	mutate func(*Config)
}

func conformanceVariants() []conformanceVariant {
	return []conformanceVariant{
		{"bfs", SchemeBFS, nil},
		{"dfs", SchemeDFS, nil},
		{"pseudo-dfs", SchemePseudoDFS, nil},
		{"parallel-dfs", SchemeParallelDFS, nil},
		{"shogun", SchemeShogun, nil},
		{"shogun+split", SchemeShogun, func(c *Config) { c.EnableSplitting = true }},
		{"shogun+merge", SchemeShogun, func(c *Config) { c.EnableMerging = true }},
		{"shogun+split+merge", SchemeShogun, func(c *Config) {
			c.EnableSplitting = true
			c.EnableMerging = true
		}},
	}
}

// TestConformanceMatrix is the cross-scheme conformance suite: every
// scheduling scheme (and every Shogun optimization combination) must
// produce bit-identical embedding counts to the software golden miner on
// every pattern of the workload suite, over two dataset analogues.
// Scheduling only reorders the search — it must never change what is
// found. Each cell also passes the counter-conservation pass
// (VerifyMetrics is on by default) and the resource-leak check.
func TestConformanceMatrix(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"rmat", gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 42)},
		{"plc", gen.PowerLawCluster(300, 6, 0.6, 43)},
	}
	workloads := datasets.Workloads()

	// Golden counts: one software-miner run per (graph, pattern) cell,
	// shared across the scheme variants.
	golden := map[string]int64{}
	for _, gr := range graphs {
		for _, wl := range workloads {
			golden[gr.name+"/"+wl.Name] = mine.Count(gr.g, wl.Schedule)
		}
	}

	for _, gr := range graphs {
		for _, wl := range workloads {
			want := golden[gr.name+"/"+wl.Name]
			for _, v := range conformanceVariants() {
				name := fmt.Sprintf("%s/%s/%s", gr.name, wl.Name, v.name)
				t.Run(name, func(t *testing.T) {
					cfg := DefaultConfig(v.scheme)
					cfg.NumPEs = 4
					if v.mutate != nil {
						v.mutate(&cfg)
					}
					a, err := New(gr.g, wl.Schedule, cfg)
					if err != nil {
						t.Fatalf("new: %v", err)
					}
					res, err := a.Run()
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					if res.Embeddings != want {
						t.Errorf("embeddings = %d, golden miner = %d", res.Embeddings, want)
					}
					if err := a.CheckConservation(); err != nil {
						t.Error(err)
					}
					if res.Cycles <= 0 || res.Tasks <= 0 {
						t.Errorf("degenerate run: cycles=%d tasks=%d", res.Cycles, res.Tasks)
					}
				})
			}
		}
	}
}
