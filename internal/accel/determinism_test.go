package accel

import (
	"testing"

	"shogun/internal/gen"
	"shogun/internal/pattern"
)

// TestDeterminism: identical inputs must produce bit-identical results —
// the property every debugging and ablation workflow depends on.
func TestDeterminism(t *testing.T) {
	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 3)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		cfg := DefaultConfig(SchemeShogun)
		cfg.NumPEs = 4
		cfg.EnableSplitting = true
		cfg.EnableMerging = true
		a, err := New(g, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Embeddings != b.Embeddings || a.Events != b.Events ||
		a.Splits != b.Splits || a.Merges != b.Merges ||
		a.DRAMReads != b.DRAMReads || a.NoCLines != b.NoCLines {
		t.Fatalf("nondeterministic simulation:\n%+v\nvs\n%+v", a, b)
	}
	for i := range a.PerPE {
		if a.PerPE[i] != b.PerPE[i] {
			t.Fatalf("PE %d stats differ: %+v vs %+v", i, a.PerPE[i], b.PerPE[i])
		}
	}
}

// TestPerPEStats sanity-checks the per-PE breakdown.
func TestPerPEStats(t *testing.T) {
	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 3)
	s, _ := pattern.Build(pattern.Triangle())
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 4
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerPE) != 4 {
		t.Fatalf("PerPE entries = %d", len(r.PerPE))
	}
	var tasks, emb int64
	for _, ps := range r.PerPE {
		tasks += ps.Tasks
		emb += ps.Embeddings
		if ps.LastActive > r.Cycles {
			t.Fatalf("PE finished after Cycles: %d > %d", ps.LastActive, r.Cycles)
		}
	}
	if tasks != r.Tasks || emb != r.Embeddings {
		t.Fatalf("per-PE sums (%d, %d) != totals (%d, %d)", tasks, emb, r.Tasks, r.Embeddings)
	}
}

// TestWidthSensitivityShape: Shogun must scale with execution width better
// than pseudo-DFS does (the Fig. 13a claim), on a clustered workload.
func TestWidthSensitivityShape(t *testing.T) {
	g := gen.PowerLawCluster(2500, 8, 0.6, 9)
	s, _ := pattern.Build(pattern.FourClique())
	run := func(scheme Scheme, width int) int64 {
		cfg := DefaultConfig(scheme)
		cfg.NumPEs = 2
		cfg.PE.Width = width
		cfg.TokensPerDepth = width
		cfg.Tree.EntriesPerBunch = width
		a, err := New(g, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	shogunScale := float64(run(SchemeShogun, 2)) / float64(run(SchemeShogun, 16))
	fingersScale := float64(run(SchemePseudoDFS, 2)) / float64(run(SchemePseudoDFS, 16))
	if shogunScale <= fingersScale {
		t.Errorf("width scaling: shogun %.2fx <= fingers %.2fx", shogunScale, fingersScale)
	}
}
