package accel

import (
	"shogun/internal/core"
	"shogun/internal/graph"
	"shogun/internal/mem"
	"shogun/internal/sim"
)

// SplitExport is one carved depth-1 subtree in flight between chips —
// the §4.1 split payload lifted to cluster scope. The candidate set is a
// snapshot: the victim's root node may be recycled before the transfer
// lands on the adopting chip.
type SplitExport struct {
	RootVertex graph.VertexID
	Cand       []graph.VertexID
	SpawnLimit int
	Lo, Hi     int
}

// Lines reports the payload size in cache lines (the candidate set; the
// root+range and set-size control messages ride as zero-line transfers).
func (x *SplitExport) Lines() int64 {
	if len(x.Cand) == 0 {
		return 0
	}
	return (int64(len(x.Cand))*4 + mem.LineBytes - 1) / mem.LineBytes
}

// CarveExport carves a splittable depth-1 range off one of this chip's
// task trees for migration to another chip, scanning PEs in order.
// Returns ok=false when no tree holds enough unexplored range (or the
// scheme is not Shogun). The carved range is owned by the returned
// payload — the caller must eventually deliver it to an adopter or the
// subtree's embeddings are lost.
func (a *Accelerator) CarveExport() (*SplitExport, bool) {
	for _, p := range a.pes {
		t, ok := p.Policy().(*core.Tree)
		if !ok {
			return nil, false
		}
		root := t.SplittableRoot()
		if root == nil {
			continue
		}
		lo, hi, ok := t.CarveSplit(root, 1)
		if !ok {
			continue
		}
		x := &SplitExport{
			RootVertex: root.Vertex,
			Cand:       append([]graph.VertexID(nil), root.Cand...),
			SpawnLimit: root.SpawnLimit,
			Lo:         lo,
			Hi:         hi,
		}
		a.MigratedOut.Inc(1)
		return x, true
	}
	return nil, false
}

// TryAdopt installs a migrated subtree onto one of this chip's PEs at
// the current engine time (the cluster scheduler has already paid the
// interconnect latency). Unless force is set only a quiet PE adopts;
// force relaxes that to any PE with a free depth-1 token (the chaos
// harness's mid-run forced migration). Returns false when no PE can
// accept now — the caller retries, because the carved range must never
// be dropped.
func (a *Accelerator) TryAdopt(x *SplitExport, force bool) bool {
	now := a.eng.Now()
	for _, p := range a.pes {
		t, ok := p.Policy().(*core.Tree)
		if !ok {
			return false
		}
		if !force && (!p.Idle() || p.HasWork()) {
			continue
		}
		if a.splitPending[p.ID] {
			continue
		}
		slot, ok := a.toks[p.ID].TryAcquire(1)
		if !ok {
			continue
		}
		if !t.AdoptSplit(x.RootVertex, x.Cand, x.SpawnLimit, x.Lo, x.Hi, slot) {
			a.toks[p.ID].Release(1, slot)
			continue
		}
		// One-time copy of the transferred set into the adopter's L1 —
		// the same install the intra-chip split delivery models.
		mem.AccessRange(p.L1, now, a.w.Map.SetAddr(slot), int64(len(x.Cand))*4, true)
		if a.tel != nil {
			a.tel.SplitLines.Observe(x.Lines())
		}
		a.MigratedIn.Inc(1)
		p.Kick()
		return true
	}
	return false
}

// EndTime reports the run's completion cycle (latest task completion
// across this chip's PEs).
func (a *Accelerator) EndTime() sim.Time { return a.endTime() }

// BusySlotCycles sums the PEs' execution-slot residency — the numerator
// of a chip-occupancy ratio over cluster cycles.
func (a *Accelerator) BusySlotCycles() int64 {
	var n int64
	for _, p := range a.pes {
		n += p.SlotResidency.TotalSum
	}
	return n
}

// SlotCapacityPerCycle reports the chip's execution-slot capacity per
// cycle (PEs × width) — the denominator factor of chip occupancy.
func (a *Accelerator) SlotCapacityPerCycle() int64 {
	return int64(a.cfg.NumPEs) * int64(a.cfg.PE.Width)
}

// Scheme reports the configured scheduling scheme (after alias
// normalization).
func (a *Accelerator) Scheme() Scheme { return a.cfg.Scheme }

// InstallPerturb wires a service-time perturber into this chip's FU,
// DRAM and NoC pools after construction — equivalent to building with
// Config.Perturb, for callers (the cluster chaos harness) that need a
// distinct perturber per chip under one shared chip Config.
func (a *Accelerator) InstallPerturb(pr sim.Perturber) { a.installPerturb(pr) }
