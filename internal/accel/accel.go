// Package accel assembles the full accelerator of §3.1: a centralized
// system scheduler, multiple PEs, a shared L2 cache and DRAM behind a NoC.
// It drives whole-application simulations for any of the scheduling
// schemes and implements the system-level halves of the two Shogun
// optimizations: load-imbalance detection + task-tree splitting (§4.1)
// and the search-tree-merging decision logic (§4.2).
package accel

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"shogun/internal/core"
	"shogun/internal/graph"
	"shogun/internal/mem"
	"shogun/internal/pattern"
	"shogun/internal/pe"
	"shogun/internal/policy"
	"shogun/internal/sim"
	"shogun/internal/task"
	"shogun/internal/telemetry"
	"shogun/internal/trace"
)

// Scheme names a task scheduling scheme.
type Scheme string

// The schemes of Table 1. Fingers is an alias for pseudo-DFS, the
// baseline accelerator's scheduling.
const (
	SchemeShogun      Scheme = "shogun"
	SchemePseudoDFS   Scheme = "pseudo-dfs"
	SchemeFingers     Scheme = "fingers"
	SchemeDFS         Scheme = "dfs"
	SchemeBFS         Scheme = "bfs"
	SchemeParallelDFS Scheme = "parallel-dfs"
)

// Config parameterizes an accelerator instance (Table 3 defaults).
type Config struct {
	Scheme Scheme
	NumPEs int
	PE     pe.Config
	Tree   core.TreeConfig
	L2     mem.CacheConfig
	DRAM   mem.DRAMConfig
	NoC    mem.NoCConfig
	// TokensPerDepth is the address-token quota per search depth
	// (default: the PE execution width, §3.2.3).
	TokensPerDepth int
	// EnableSplitting turns on task-tree splitting (Shogun only).
	EnableSplitting bool
	// EnableMerging turns on search-tree merging (Shogun only).
	EnableMerging bool
	// MaxHelpersPerSplit caps idle PEs assigned to one busy PE (§4.1
	// uses 4, with multi-round rebalancing).
	MaxHelpersPerSplit int
	// BalancePeriod is the imbalance-detection cadence once all roots
	// are dispatched.
	BalancePeriod sim.Time
	// MergePeriod is the merging-decision cadence.
	MergePeriod sim.Time
	// Deadline aborts runaway simulations (0 = none, simulated cycles).
	Deadline sim.Time
	// MaxEvents aborts runs that process more than this many events
	// (0 = none) — the event-count watchdog budget.
	MaxEvents int64
	// MaxWall aborts runs exceeding this real elapsed time (0 = none).
	MaxWall time.Duration
	// WatchdogPoll is the cooperative-checkpoint interval in events for
	// context cancellation and wall-clock checks (0 = sim default).
	WatchdogPoll int64
	// Tracer, when set, receives one event per completed task on any PE.
	Tracer trace.Tracer
	// Perturb, when set, jitters FU/DRAM/NoC pool service times (the
	// chaos harness's fault-injection hook; not serialized).
	Perturb sim.Perturber `json:"-"`
	// ForceConservative pins Shogun's conservative mode on and disables
	// the locality monitor (ablation knob).
	ForceConservative bool
	// DisableMonitor turns the locality monitor off so conservative mode
	// never engages (ablation knob).
	DisableMonitor bool
	// VerifyMetrics runs the counter-conservation pass (Metrics().Verify)
	// after every successful run, failing the run on any violated
	// invariant. On by default; the counters themselves are always
	// collected — this only controls the post-run check.
	VerifyMetrics bool
	// SampleEvery, when > 0, turns on the telemetry epoch sampler: every
	// SampleEvery cycles the run snapshots its live gauges (per-PE
	// residency, SPM/token/bunch occupancy, MSHR and DRAM queue depths,
	// NoC in-flight messages) and the latency histograms observe every
	// access. Zero keeps the hot path observation-free.
	SampleEvery sim.Time
	// SampleCap bounds retained sampler epochs (0 = telemetry default);
	// on overflow the ring decimates 2× and the epoch spacing doubles.
	SampleCap int
	// EventQueue selects the engine's event-queue discipline: "calendar"
	// (default), "heap" (the binary-heap fallback), or "" for the build
	// default (overridable via SHOGUN_EVENT_QUEUE). Both disciplines
	// produce bit-identical simulations; the knob exists for differential
	// testing and as an escape hatch.
	EventQueue string
}

// DefaultConfig mirrors Table 3 for the given scheme.
func DefaultConfig(scheme Scheme) Config {
	pc := pe.DefaultConfig()
	return Config{
		Scheme: scheme,
		NumPEs: 10,
		PE:     pc,
		Tree:   core.DefaultTreeConfig(pc.Width),
		// Table 3 specifies a 4 MB L2 for the full-scale SNAP datasets;
		// the shared L2 is scaled with the dataset analogues (see
		// DESIGN.md) so the cacheable-vs-streaming axis is preserved:
		// wi/as/yo CSR data fits on chip, pa/lj/or does not.
		L2: mem.CacheConfig{
			Name:              "l2",
			SizeKB:            1024,
			Ways:              8,
			HitLat:            18,
			WriteAllocNoFetch: true,
		},
		DRAM:               mem.DefaultDRAMConfig(),
		NoC:                mem.NoCConfig{Links: 0 /* auto: 2 per PE */, HopLat: 4, FlitCycles: 1},
		TokensPerDepth:     pc.Width,
		MaxHelpersPerSplit: 4,
		BalancePeriod:      4096,
		MergePeriod:        4096,
		VerifyMetrics:      true,
	}
}

// Accelerator is one configured instance bound to a graph and schedule.
type Accelerator struct {
	cfg Config
	eng *sim.Engine
	w   *task.Workload

	dram *mem.DRAM
	l2   *mem.Cache
	noc  *mem.NoC
	pes  []*pe.PE
	toks []*policy.Tokens

	peRoots      []*policy.SliceRoots
	splitPending map[int]bool
	balanceArmed bool
	mergeArmed   bool
	samplerArmed bool
	tel          *Telemetry

	Splits sim.Counter
	Merges sim.Counter

	// MigratedOut / MigratedIn count chip-level split subtrees leaving /
	// entering this chip over a cluster interconnect (internal/cluster).
	// Zero outside cluster runs.
	MigratedOut sim.Counter
	MigratedIn  sim.Counter

	// OnChipIdle, when set, fires whenever a PE idles while the whole
	// chip is quiet (every PE idle, no pending work or split transfers) —
	// the cluster scheduler's work-stealing signal.
	OnChipIdle func()
	// KeepSampling, when set, keeps the telemetry sampler re-arming while
	// it returns true even after this chip drains, so a cluster's epoch
	// series stays aligned across chips that finish at different times.
	KeepSampling func() bool
}

// Actor ops for the accelerator's event callbacks (see sim.Engine.Post):
// the system scheduler's periodic loops — balance, merge, sampler — and
// split deliveries schedule without per-event closure allocation.
const (
	opBalanceCheck = iota
	opArmBalanceIfNeeded
	opMergeCheck
	opSamplerTick
	opDeliverSplit
)

// Act dispatches the accelerator's event callbacks (sim.Actor). Split
// deliveries carry their *splitMsg; the periodic ticks carry nil.
func (a *Accelerator) Act(op int, arg any) {
	switch op {
	case opBalanceCheck:
		a.balanceCheck()
	case opArmBalanceIfNeeded:
		a.armBalanceIfNeeded()
	case opMergeCheck:
		a.mergeCheck()
	case opSamplerTick:
		a.samplerTick()
	case opDeliverSplit:
		a.deliverSplit(arg.(*splitMsg))
	default:
		panic("accel: unknown actor op")
	}
}

// New builds an accelerator for graph g and schedule s.
func New(g *graph.Graph, s *pattern.Schedule, cfg Config) (*Accelerator, error) {
	return NewShared(g, s, cfg, nil, nil)
}

// NewShared builds an accelerator on a caller-owned engine — the
// multi-chip cluster (internal/cluster) drives N chips on one shared
// clock. A nil eng allocates a private engine (the single-chip path).
// roots, when non-nil, replaces the default all-vertices root assignment
// with the given list (the cluster's graph partitioner owns vertex
// placement); nil keeps every vertex.
func NewShared(g *graph.Graph, s *pattern.Schedule, cfg Config, eng *sim.Engine, roots []graph.VertexID) (*Accelerator, error) {
	if cfg.NumPEs < 1 {
		return nil, fmt.Errorf("accel: need at least one PE")
	}
	if cfg.Scheme == SchemeFingers {
		cfg.Scheme = SchemePseudoDFS
	}
	if cfg.ForceConservative || cfg.DisableMonitor {
		cfg.PE.MonitorPeriod = 0
	}
	if cfg.NoC.Links <= 0 {
		// Auto-size the fabric: two concurrent line transfers per PE,
		// matching a banked-L2 crossbar that scales with the PE array.
		cfg.NoC.Links = 2 * cfg.NumPEs
	}
	if eng == nil {
		qkind, err := sim.ParseQueueKind(cfg.EventQueue)
		if err != nil {
			return nil, fmt.Errorf("accel: %w", err)
		}
		eng = sim.NewEngineQueue(qkind)
	}
	a := &Accelerator{
		cfg:  cfg,
		eng:  eng,
		w:    task.NewWorkload(g, s),
		dram: mem.NewDRAM(cfg.DRAM),
		noc:  mem.NewNoC(cfg.NoC),

		splitPending: map[int]bool{},
	}
	l2, err := mem.NewCache(cfg.L2, a.dram)
	if err != nil {
		return nil, err
	}
	a.l2 = l2
	// The system scheduler statically dispatches root vertices to PEs in
	// chunked round-robin order (§3.1: PEs explore "the assigned root
	// vertices"). Static assignment is what makes end-of-run load
	// imbalance possible — and task-tree splitting (§4.1) valuable.
	const rootChunk = 8
	a.peRoots = make([]*policy.SliceRoots, cfg.NumPEs)
	for i := range a.peRoots {
		a.peRoots[i] = &policy.SliceRoots{}
	}
	if roots == nil {
		roots = make([]graph.VertexID, g.NumVertices())
		for i := range roots {
			roots[i] = graph.VertexID(i)
		}
	}
	for base := 0; base < len(roots); base += rootChunk {
		pe := (base / rootChunk) % cfg.NumPEs
		for v := base; v < base+rootChunk && v < len(roots); v++ {
			a.peRoots[pe].Vertices = append(a.peRoots[pe].Vertices, roots[v])
		}
	}

	tokensPer := cfg.TokensPerDepth
	if tokensPer <= 0 {
		tokensPer = cfg.PE.Width
	}
	for i := 0; i < cfg.NumPEs; i++ {
		l2path := a.noc.NewPath(a.l2)
		p, err := pe.New(i, a.eng, cfg.PE, a.w, l2path)
		if err != nil {
			return nil, err
		}
		toks := policy.NewTokens(i, cfg.NumPEs, s.Depth(), tokensPer)
		pol, err := a.buildPolicy(p, toks, a.peRoots[i])
		if err != nil {
			return nil, err
		}
		p.SetPolicy(pol)
		if cfg.ForceConservative {
			pol.SetConservative(true)
		}
		p.Tracer = cfg.Tracer
		p.OnIdle = a.onPEIdle
		a.pes = append(a.pes, p)
		a.toks = append(a.toks, toks)
	}
	if cfg.Perturb != nil {
		a.installPerturb(cfg.Perturb)
	}
	if err := a.initTelemetry(); err != nil {
		return nil, err
	}
	return a, nil
}

// installPerturb wires a service-time perturber into every contended
// pool the chaos harness targets: per-PE FUs, DRAM channels, NoC links.
func (a *Accelerator) installPerturb(pr sim.Perturber) {
	for _, p := range a.pes {
		p.SetPerturb(pr)
	}
	a.dram.SetPerturb(pr)
	a.noc.SetPerturb(pr)
}

func (a *Accelerator) buildPolicy(p *pe.PE, toks *policy.Tokens, roots policy.RootSource) (pe.Policy, error) {
	switch a.cfg.Scheme {
	case SchemeShogun:
		tc := a.cfg.Tree
		if a.cfg.EnableMerging {
			tc.MaxTrees = 2
		}
		t := core.NewTree(a.w, toks, roots, tc)
		if a.cfg.EnableMerging {
			// The second depth-1 bunch brings a second depth-1 token
			// allotment (§4.2 implementation note).
			toks.SetCap(1, a.cfg.TokensPerDepth*2)
		}
		return t, nil
	case SchemePseudoDFS:
		return policy.NewPseudoDFS(a.w, toks, roots, a.cfg.PE.Width), nil
	case SchemeDFS:
		return policy.NewDFS(a.w, toks, roots), nil
	case SchemeBFS:
		return policy.NewBFS(a.w, toks, roots), nil
	case SchemeParallelDFS:
		return policy.NewParallelDFS(a.w, toks, roots, a.cfg.PE.Width), nil
	default:
		return nil, fmt.Errorf("accel: unknown scheme %q", a.cfg.Scheme)
	}
}

// PEStats is the per-PE slice of a Result.
type PEStats struct {
	Tasks         int64
	Embeddings    int64
	IUUtil        float64
	L1HitRate     float64
	L1AvgLatency  float64
	Conservative  int64
	LastActive    sim.Time
	PeakTokens    int
	SlotOccupancy float64
	// Breakdown attributes this PE's slot-cycles (width × run-cycles)
	// to compute / memory-stall / scheduling / idle.
	Breakdown CycleBreakdown
	// ConservativeCycles is the PE's residency in conservative mode.
	ConservativeCycles sim.Time
}

// Result aggregates one simulated run.
type Result struct {
	Scheme     Scheme
	Cycles     sim.Time
	Embeddings int64
	Tasks      int64
	LeafTasks  int64

	IUUtil        float64 // all-PE average IU utilization
	SlotOccupancy float64 // average execution slots in use / width
	L1HitRate     float64
	L1AvgLatency  float64
	L2HitRate     float64
	DRAMReads     int64
	DRAMWrites    int64
	DRAMBandwidth float64 // channel utilization
	NoCLines      int64

	IntermediateLinesPerTask float64 // Table 2 cross-check

	// PerPE carries per-PE breakdowns (load-balance analysis).
	PerPE []PEStats

	Splits                  int64
	Merges                  int64
	ConservativeTransitions int64
	PeakLiveSets            int

	// Breakdown is the all-PE cycle attribution (sums each PE's).
	Breakdown CycleBreakdown

	Events int64

	// Telemetry is the sampler's time-series snapshot (nil when sampling
	// was off).
	Telemetry *telemetry.TimeSeries `json:",omitempty"`
}

// Run simulates to completion and returns the result. It is
// RunContext with a background context; see there for the failure modes.
func (a *Accelerator) Run() (*Result, error) {
	return a.RunContext(context.Background())
}

// RunContext simulates to completion under the run governor. It fails
// with a wrapped sim sentinel when a watchdog budget (Deadline,
// MaxEvents, MaxWall) trips or ctx is cancelled at a cooperative
// checkpoint; with *sim.DeadlockError (carrying a resource/FSM
// snapshot) when the event queue drains while work remains; and any
// internal invariant panic is contained here and returned as a
// *sim.InvariantError with the diagnostic snapshot taken at recovery.
func (a *Accelerator) RunContext(ctx context.Context) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &sim.InvariantError{
				Op:         "accel: run",
				PanicValue: r,
				Stack:      string(debug.Stack()),
				Snapshot:   a.snapshot(),
			}
		}
	}()
	a.Start()
	if err := a.eng.RunGoverned(ctx, a.Budget()); err != nil {
		return nil, fmt.Errorf("accel: %w", err)
	}
	if err := a.Drained(); err != nil {
		return nil, err
	}
	if a.cfg.VerifyMetrics {
		if err := a.VerifyMetrics(); err != nil {
			return nil, fmt.Errorf("accel: %w", err)
		}
	}
	return a.Collect(), nil
}

// Start kicks every PE and arms the periodic merge/sampler loops without
// running the engine — the cluster driver starts all chips on the shared
// clock, then runs the engine itself. RunContext calls it internally.
func (a *Accelerator) Start() {
	for _, p := range a.pes {
		p.Kick()
	}
	a.armMerge()
	a.armSampler()
}

// Budget assembles the run governor's budget from the config's watchdog
// knobs (the cluster driver applies the per-chip budgets to the shared
// engine run).
func (a *Accelerator) Budget() sim.Budget {
	return sim.Budget{
		MaxEvents:  a.cfg.MaxEvents,
		Deadline:   a.cfg.Deadline,
		MaxWall:    a.cfg.MaxWall,
		PollEvents: a.cfg.WatchdogPoll,
	}
}

// Drained verifies no PE holds unfinished work after the event queue
// emptied; a stuck policy surfaces as *sim.DeadlockError with the
// chip's diagnostic snapshot.
func (a *Accelerator) Drained() error {
	for _, p := range a.pes {
		if p.HasWork() {
			return &sim.DeadlockError{Op: "accel: run", Snapshot: a.snapshot()}
		}
	}
	return nil
}

// ChipIdle reports whether the whole chip is quiet: every PE idle with
// no pending work and no split transfer in flight. The cluster scheduler
// treats a quiet chip as a work-stealing helper.
func (a *Accelerator) ChipIdle() bool {
	for _, p := range a.pes {
		if !p.Idle() || p.HasWork() {
			return false
		}
	}
	for _, pending := range a.splitPending {
		if pending {
			return false
		}
	}
	return true
}

// snapshot captures the diagnostic state attached to invariant and
// deadlock errors: engine progress, every PE's slot/SPM semaphores with
// their waiter queues, and per-PE notes covering the FSM census and
// address-token occupancy.
func (a *Accelerator) snapshot() *sim.Snapshot {
	s := a.eng.Snapshot()
	for i, p := range a.pes {
		s.Resources = append(s.Resources, p.Slots.Snap(), p.SPM.Snap())
		note := fmt.Sprintf("pe%d: idle=%t hasWork=%t conservative=%t lastActive=%d tasks=%d tokens=%v",
			i, p.Idle(), p.HasWork(), p.Conservative(), p.LastActive,
			p.TasksExecuted.Total, a.toks[i].InUseByDepth())
		if t, ok := p.Policy().(*core.Tree); ok {
			note += " tree{" + t.StateSummary() + "}"
		}
		s.Notes = append(s.Notes, note)
	}
	return s
}

// CheckConservation verifies the post-run resource invariants the chaos
// suite asserts: every execution slot and SPM line released, every
// address token returned. A non-nil error names each leaked resource.
func (a *Accelerator) CheckConservation() error {
	var leaks []string
	for i, p := range a.pes {
		if n := p.Slots.InUse(); n != 0 {
			leaks = append(leaks, fmt.Sprintf("pe%d: %d execution slot(s) held", i, n))
		}
		if n := p.Slots.Waiters(); n != 0 {
			leaks = append(leaks, fmt.Sprintf("pe%d: %d slot waiter(s) stranded", i, n))
		}
		if n := p.SPM.InUse(); n != 0 {
			leaks = append(leaks, fmt.Sprintf("pe%d: %d SPM line(s) held", i, n))
		}
		if n := p.SPM.Waiters(); n != 0 {
			leaks = append(leaks, fmt.Sprintf("pe%d: %d SPM waiter(s) stranded", i, n))
		}
		if n := a.toks[i].TotalInUse(); n != 0 {
			leaks = append(leaks, fmt.Sprintf("pe%d: %d address token(s) held %v", i, n, a.toks[i].InUseByDepth()))
		}
	}
	if leaks == nil {
		return nil
	}
	return fmt.Errorf("accel: resource leak(s) after run: %v", leaks)
}

// Collect aggregates the post-run Result (exposed for the cluster
// driver, which runs the shared engine itself).
func (a *Accelerator) Collect() *Result { return a.collect() }

func (a *Accelerator) collect() *Result {
	// Cycles measures work completion: the latest task completion across
	// PEs. The engine clock itself can drift past it on idle monitor
	// events (balance/merge checks), which must not count as runtime.
	end := a.endTime()
	r := &Result{Scheme: a.cfg.Scheme, Cycles: end, Events: a.eng.Processed}
	var iuBusy, iuCap sim.Time
	var l1Hits, l1Miss, l1LatSum, l1LatCnt int64
	var slotSum float64
	var interLines int64
	for i, p := range a.pes {
		ps := PEStats{
			Tasks:         p.TasksExecuted.Total,
			Embeddings:    p.Embeddings,
			IUUtil:        p.IUPool.Utilization(r.Cycles),
			L1HitRate:     p.L1.HitRate(),
			Conservative:  p.ConservativeTransitions.Total,
			LastActive:    p.LastActive,
			PeakTokens:    a.toks[i].Peak(),
			SlotOccupancy: p.Slots.AvgOccupancy(r.Cycles) / float64(a.cfg.PE.Width),

			Breakdown:          a.breakdownFor(i, end),
			ConservativeCycles: p.ConservResidency(end),
		}
		r.Breakdown.accumulate(ps.Breakdown)
		if p.L1.Latency.TotalCount > 0 {
			ps.L1AvgLatency = float64(p.L1.Latency.TotalSum) / float64(p.L1.Latency.TotalCount)
		}
		r.PerPE = append(r.PerPE, ps)
		r.Embeddings += p.Embeddings
		r.Tasks += p.TasksExecuted.Total
		r.LeafTasks += p.LeafTasks.Total
		iuBusy += p.IUPool.Busy()
		iuCap += r.Cycles * sim.Time(a.cfg.PE.IUs)
		l1Hits += p.L1.Hits.Total
		l1Miss += p.L1.Misses.Total
		l1LatSum += p.L1.Latency.TotalSum
		l1LatCnt += p.L1.Latency.TotalCount
		slotSum += p.Slots.AvgOccupancy(r.Cycles) / float64(a.cfg.PE.Width)
		interLines += p.IntermediateIn
		r.ConservativeTransitions += p.ConservativeTransitions.Total
		if t, ok := p.Policy().(*core.Tree); ok {
			r.Merges += t.MergeFeeds.Total
		}
		if pk := a.toks[i].Peak(); pk > r.PeakLiveSets {
			r.PeakLiveSets = pk
		}
	}
	if iuCap > 0 {
		r.IUUtil = float64(iuBusy) / float64(iuCap)
	}
	r.SlotOccupancy = slotSum / float64(len(a.pes))
	r.L1HitRate = sim.Ratio(l1Hits, l1Hits+l1Miss)
	if l1LatCnt > 0 {
		r.L1AvgLatency = float64(l1LatSum) / float64(l1LatCnt)
	}
	r.L2HitRate = a.l2.HitRate()
	r.DRAMReads = a.dram.Reads.Total
	r.DRAMWrites = a.dram.Writes.Total
	r.DRAMBandwidth = a.dram.BandwidthUtilization(r.Cycles)
	r.NoCLines = a.noc.LinesMoved.Total
	if r.Tasks+r.LeafTasks > 0 {
		r.IntermediateLinesPerTask = float64(interLines) / float64(r.Tasks+r.LeafTasks)
	}
	r.Splits = a.Splits.Total
	if a.tel != nil {
		r.Telemetry = a.tel.Sampler.Snapshot()
	}
	return r
}

// PEs exposes the PEs (tests, harness).
func (a *Accelerator) PEs() []*pe.PE { return a.pes }

// Engine exposes the event engine (chaos harness, tests).
func (a *Accelerator) Engine() *sim.Engine { return a.eng }

// Workload exposes the bound workload.
func (a *Accelerator) Workload() *task.Workload { return a.w }
