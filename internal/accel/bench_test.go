package accel

import (
	"testing"

	"shogun/internal/gen"
	"shogun/internal/pattern"
)

// BenchmarkSimulate measures whole-accelerator simulation throughput
// (simulated tasks per wall second) on a fixed workload.
func BenchmarkSimulate(b *testing.B) {
	g := gen.RMAT(1<<10, 6000, 0.6, 0.15, 0.15, 5)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 4
	b.ReportAllocs()
	var tasks int64
	for i := 0; i < b.N; i++ {
		a, err := New(g, s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.Run()
		if err != nil {
			b.Fatal(err)
		}
		tasks = res.Tasks
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// BenchmarkSimulateVerifyOff is BenchmarkSimulate with the post-run
// conservation pass disabled — the pair bounds the observability
// overhead (counters are plain int64 field adds on paths the simulator
// already touched; the verification itself is one registry build per
// run).
func BenchmarkSimulateVerifyOff(b *testing.B) {
	g := gen.RMAT(1<<10, 6000, 0.6, 0.15, 0.15, 5)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 4
	cfg.VerifyMetrics = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := New(g, s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
