package accel

import (
	"testing"

	"shogun/internal/gen"
	"shogun/internal/pattern"
	"shogun/internal/sim"
)

// BenchmarkSimulate measures whole-accelerator simulation throughput
// (simulated tasks per wall second) on a fixed workload.
func BenchmarkSimulate(b *testing.B) {
	g := gen.RMAT(1<<10, 6000, 0.6, 0.15, 0.15, 5)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 4
	b.ReportAllocs()
	var tasks int64
	for i := 0; i < b.N; i++ {
		a, err := New(g, s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.Run()
		if err != nil {
			b.Fatal(err)
		}
		tasks = res.Tasks
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// BenchmarkSimulateHeap is BenchmarkSimulate on the binary-heap escape-
// hatch engine: the pair isolates the calendar queue's contribution
// (same pooled events, same actor call sites, different queue).
func BenchmarkSimulateHeap(b *testing.B) {
	g := gen.RMAT(1<<10, 6000, 0.6, 0.15, 0.15, 5)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 4
	cfg.EventQueue = "heap"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := New(g, s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateVerifyOff is BenchmarkSimulate with the post-run
// conservation pass disabled — the pair bounds the observability
// overhead (counters are plain int64 field adds on paths the simulator
// already touched; the verification itself is one registry build per
// run).
func BenchmarkSimulateVerifyOff(b *testing.B) {
	g := gen.RMAT(1<<10, 6000, 0.6, 0.15, 0.15, 5)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 4
	cfg.VerifyMetrics = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := New(g, s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSampler is the shared body of the sampler on/off benchmark pair:
// the same fixed workload with the epoch sampler enabled or disabled, so
// `benchstat` on the two bounds the telemetry overhead directly.
func benchSampler(b *testing.B, sampleEvery sim.Time) {
	g := gen.RMAT(1<<10, 6000, 0.6, 0.15, 0.15, 5)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 4
	cfg.SampleEvery = sampleEvery
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := New(g, s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSamplerOff is the telemetry-off baseline: every hot
// path crosses a nil-histogram Observe or a nil-bundle check and nothing
// else.
func BenchmarkSimulateSamplerOff(b *testing.B) { benchSampler(b, 0) }

// BenchmarkSimulateSamplerOn samples every 512 cycles with live
// histograms attached.
func BenchmarkSimulateSamplerOn(b *testing.B) { benchSampler(b, 512) }

// TestSamplerOffHotPathZeroAlloc pins the off-switch contract: with
// sampling disabled, the per-event instrumentation the telemetry layer
// added to the simulator hot paths — nil-receiver histogram observes and
// the nil-bundle guard around split accounting — allocates nothing.
func TestSamplerOffHotPathZeroAlloc(t *testing.T) {
	g := gen.Clique(8)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 2
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.tel != nil {
		t.Fatal("SampleEvery=0 must leave the telemetry bundle nil")
	}
	p := a.pes[0]
	if allocs := testing.AllocsPerRun(100, func() {
		// The exact observation calls pe.finish/stageDispatch and the
		// memory system make per task when sampling is off.
		p.LifetimeHist.Observe(42)
		p.QueueWaitHist.Observe(7)
		p.L1.LatHist.Observe(3)
		a.l2.LatHist.Observe(9)
		if a.tel != nil {
			a.tel.SplitLines.Observe(4)
		}
	}); allocs != 0 {
		t.Fatalf("sampler-off hot path allocates %.0f times per task, want 0", allocs)
	}
}
