package accel

import (
	"os"
	"path/filepath"
	"testing"

	"shogun/internal/gen"
	"shogun/internal/pattern"
)

func TestConfigRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 7
	cfg.PE.Width = 4
	cfg.EnableMerging = true
	cfg.Tree.BunchesPerDepth = 2
	if err := SaveConfig(path, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPEs != 7 || got.PE.Width != 4 || !got.EnableMerging || got.Tree.BunchesPerDepth != 2 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Scheme != SchemeShogun {
		t.Fatalf("scheme = %q", got.Scheme)
	}
}

func TestLoadConfigLayersDefaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "partial.json")
	if err := os.WriteFile(path, []byte(`{"Scheme":"fingers","NumPEs":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumPEs != 3 {
		t.Fatalf("NumPEs = %d", cfg.NumPEs)
	}
	// Unspecified fields fall back to Table 3 defaults.
	if cfg.PE.Width != 8 || cfg.PE.IUs != 24 || cfg.L2.SizeKB != 1024 {
		t.Fatalf("defaults not layered: %+v", cfg.PE)
	}
	// The loaded config must actually run.
	g := gen.Clique(10)
	s, _ := pattern.Build(pattern.Triangle())
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 120 {
		t.Fatalf("count = %d", res.Embeddings)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	if _, err := LoadConfig("/does/not/exist.json"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if _, err := LoadConfig(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
}
