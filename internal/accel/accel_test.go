package accel

import (
	"testing"

	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/mine"
	"shogun/internal/pattern"
)

func schedules(t *testing.T) []*pattern.Schedule {
	t.Helper()
	var out []*pattern.Schedule
	add := func(p pattern.Pattern, induced bool) {
		s, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: induced})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	add(pattern.Triangle(), false)
	add(pattern.FourClique(), false)
	add(pattern.TailedTriangle(), false)
	add(pattern.TailedTriangle(), true)
	add(pattern.Diamond(), false)
	add(pattern.FourCycle(), false)
	add(pattern.FourCycle(), true)
	add(pattern.FiveClique(), false)
	// star3 exercises chained alias plans (C2 and C3 both reference C1).
	add(pattern.StarN(3), false)
	add(pattern.StarN(3), true)
	return out
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"er":     gen.ErdosRenyi(200, 900, 5),
		"rmat":   gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 6),
		"plc":    gen.PowerLawCluster(150, 5, 0.6, 7),
		"clique": gen.Clique(14),
	}
}

// TestSimulatedCountsMatchMiner is the master correctness check: every
// scheme, on every graph × schedule combination, must find exactly the
// embeddings the software miner finds.
func TestSimulatedCountsMatchMiner(t *testing.T) {
	schemes := []Scheme{SchemeShogun, SchemePseudoDFS, SchemeDFS, SchemeBFS, SchemeParallelDFS}
	for gname, g := range testGraphs() {
		for _, s := range schedules(t) {
			want := mine.Count(g, s)
			for _, scheme := range schemes {
				cfg := DefaultConfig(scheme)
				cfg.NumPEs = 4
				a, err := New(g, s, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", gname, s.Name, scheme, err)
				}
				res, err := a.Run()
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", gname, s.Name, scheme, err)
				}
				if res.Embeddings != want {
					t.Errorf("%s/%s/%s: sim=%d miner=%d", gname, s.Name, scheme, res.Embeddings, want)
				}
				if res.Cycles <= 0 {
					t.Errorf("%s/%s/%s: no cycles simulated", gname, s.Name, scheme)
				}
			}
		}
	}
}

// TestShogunOptimizationsPreserveCounts exercises splitting and merging.
func TestShogunOptimizationsPreserveCounts(t *testing.T) {
	g := gen.RMAT(256, 2000, 0.62, 0.14, 0.14, 11)
	for _, s := range schedules(t) {
		want := mine.Count(g, s)
		for _, mode := range []struct {
			name         string
			split, merge bool
			pes          int
		}{
			{"split", true, false, 8},
			{"merge", false, true, 4},
			{"both", true, true, 8},
		} {
			cfg := DefaultConfig(SchemeShogun)
			cfg.NumPEs = mode.pes
			cfg.EnableSplitting = mode.split
			cfg.EnableMerging = mode.merge
			cfg.BalancePeriod = 256 // aggressive, to exercise the path
			cfg.MergePeriod = 256
			a, err := New(g, s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := a.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", s.Name, mode.name, err)
			}
			if res.Embeddings != want {
				t.Errorf("%s/%s: sim=%d miner=%d (splits=%d merges=%d)",
					s.Name, mode.name, res.Embeddings, want, res.Splits, res.Merges)
			}
		}
	}
}

// TestSchemeBehaviourShape checks the qualitative Table 1 relationships on
// a compute-heavy workload: Shogun ≥ pseudo-DFS ≥ DFS in speed; DFS has
// minimal footprint; BFS has the largest footprint.
func TestSchemeBehaviourShape(t *testing.T) {
	g := gen.RMAT(512, 4000, 0.6, 0.15, 0.15, 9)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	run := func(scheme Scheme) *Result {
		cfg := DefaultConfig(scheme)
		cfg.NumPEs = 2
		a, err := New(g, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := a.Run()
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		return r
	}
	shogun := run(SchemeShogun)
	pseudo := run(SchemePseudoDFS)
	dfs := run(SchemeDFS)
	bfs := run(SchemeBFS)

	if !(shogun.Cycles <= pseudo.Cycles) {
		t.Errorf("shogun (%d cycles) slower than pseudo-dfs (%d)", shogun.Cycles, pseudo.Cycles)
	}
	if !(pseudo.Cycles < dfs.Cycles) {
		t.Errorf("pseudo-dfs (%d cycles) not faster than dfs (%d)", pseudo.Cycles, dfs.Cycles)
	}
	if !(shogun.IUUtil > dfs.IUUtil) {
		t.Errorf("shogun IU util %.3f not above dfs %.3f", shogun.IUUtil, dfs.IUUtil)
	}
	if !(bfs.PeakLiveSets > 4*dfs.PeakLiveSets) {
		t.Errorf("bfs footprint %d not much larger than dfs %d", bfs.PeakLiveSets, dfs.PeakLiveSets)
	}
	if dfs.SlotOccupancy > 1.0/float64(DefaultConfig(SchemeDFS).PE.Width)+0.01 {
		t.Errorf("dfs slot occupancy %.3f exceeds one slot", dfs.SlotOccupancy)
	}
}

// TestSplittingActuallySplits forces a pathological single-heavy-tree
// workload and checks splits occur and help.
func TestSplittingActuallySplits(t *testing.T) {
	// A star-heavy graph: one huge hub makes one search tree dominate.
	// The hub is the last vertex so static dispatch hands it out last —
	// the straggler-tree case splitting exists for.
	var edges []graph.Edge
	n := 600
	hub := graph.VertexID(n - 1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: hub, V: graph.VertexID(i)})
		edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID((i % 50) + 51)})
	}
	g := graph.MustNew(n, edges)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	want := mine.Count(g, s)

	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 8
	cfg.EnableSplitting = true
	cfg.BalancePeriod = 64
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != want {
		t.Fatalf("count %d != %d", res.Embeddings, want)
	}
	if res.Splits == 0 {
		t.Error("no task-tree splits occurred on a pathologically imbalanced workload")
	}
}

// TestMergingEngages checks that a low-parallelism workload triggers
// merges.
func TestMergingEngages(t *testing.T) {
	g := gen.NearRegular(2000, 4, 3) // sparse, low degree: starved PEs
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	want := mine.Count(g, s)
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 2
	cfg.EnableMerging = true
	cfg.MergePeriod = 512
	a, err := New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != want {
		t.Fatalf("count %d != %d", res.Embeddings, want)
	}
	if res.Merges == 0 {
		t.Error("no merges on a parallelism-starved workload")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	g := gen.Clique(5)
	s, _ := pattern.Build(pattern.Triangle())
	cfg := DefaultConfig(SchemeShogun)
	cfg.NumPEs = 0
	if _, err := New(g, s, cfg); err == nil {
		t.Error("accepted zero PEs")
	}
	cfg = DefaultConfig("nonsense")
	cfg.NumPEs = 1
	if _, err := New(g, s, cfg); err == nil {
		t.Error("accepted unknown scheme")
	}
}

func TestFingersAlias(t *testing.T) {
	g := gen.Clique(8)
	s, _ := pattern.Build(pattern.Triangle())
	a, err := New(g, s, DefaultConfig(SchemeFingers))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != SchemePseudoDFS {
		t.Errorf("fingers alias resolved to %q", res.Scheme)
	}
	if res.Embeddings != 56 { // C(8,3)
		t.Errorf("count = %d", res.Embeddings)
	}
}
