package accel

import (
	"encoding/json"
	"fmt"
	"testing"

	"shogun/internal/datasets"
	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/metrics"
)

// TestQueueDifferential is the event-engine equivalence gate: every cell
// of the conformance matrix must produce a bit-identical run under the
// binary-heap and calendar-queue engines — the full Result (cycle
// counts, per-PE breakdowns, telemetry time series) and every hardware
// counter in the metrics registry, not just the embedding totals. The
// calendar queue is a pure data-structure substitution; any divergence
// is an ordering bug, so the comparison has no tolerance.
func TestQueueDifferential(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"rmat", gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 42)},
		{"plc", gen.PowerLawCluster(300, 6, 0.6, 43)},
	}
	for _, gr := range graphs {
		for _, wl := range datasets.Workloads() {
			for _, v := range conformanceVariants() {
				name := fmt.Sprintf("%s/%s/%s", gr.name, wl.Name, v.name)
				t.Run(name, func(t *testing.T) {
					var snaps []map[string]int64
					var blobs [][]byte
					for _, queue := range []string{"heap", "calendar"} {
						cfg := DefaultConfig(v.scheme)
						cfg.NumPEs = 4
						cfg.EventQueue = queue
						cfg.SampleEvery = 512 // telemetry series must match too
						if v.mutate != nil {
							v.mutate(&cfg)
						}
						a, err := New(gr.g, wl.Schedule, cfg)
						if err != nil {
							t.Fatalf("%s: new: %v", queue, err)
						}
						res, err := a.Run()
						if err != nil {
							t.Fatalf("%s: run: %v", queue, err)
						}
						blob, err := json.Marshal(res)
						if err != nil {
							t.Fatalf("%s: marshal: %v", queue, err)
						}
						blobs = append(blobs, blob)
						snaps = append(snaps, a.Metrics().Snapshot())
					}
					if string(blobs[0]) != string(blobs[1]) {
						t.Errorf("result diverged between heap and calendar engines:\nheap:     %s\ncalendar: %s", blobs[0], blobs[1])
					}
					if diff := metrics.Diff(snaps[0], snaps[1]); len(diff) > 0 {
						t.Errorf("hardware counters diverged between heap and calendar engines: %v", diff)
					}
				})
			}
		}
	}
}
