package accel

import (
	"fmt"

	"shogun/internal/core"
	"shogun/internal/metrics"
	"shogun/internal/sim"
)

// CycleBreakdown attributes a PE's slot-cycles (execution-slot capacity
// over the run: width × run-cycles) to four coarse categories. Compute
// is the issue+FU span of each task; MemStall covers SPM allocation
// waits, input fetches and output writebacks; Scheduling covers decode,
// spawn-unit and leaf-consumption work; Idle is unoccupied slot
// capacity. The categories partition width × run-cycles exactly — the
// identity metrics.Verify checks on every run.
type CycleBreakdown struct {
	Compute    int64
	MemStall   int64
	Scheduling int64
	Idle       int64
}

// Total sums the attributed slot-cycles.
func (b CycleBreakdown) Total() int64 {
	return b.Compute + b.MemStall + b.Scheduling + b.Idle
}

// Busy sums the non-idle categories (== total slot residency).
func (b CycleBreakdown) Busy() int64 {
	return b.Compute + b.MemStall + b.Scheduling
}

func (b *CycleBreakdown) accumulate(o CycleBreakdown) {
	b.Compute += o.Compute
	b.MemStall += o.MemStall
	b.Scheduling += o.Scheduling
	b.Idle += o.Idle
}

// breakdownFor derives one PE's cycle attribution at run end.
func (a *Accelerator) breakdownFor(i int, end sim.Time) CycleBreakdown {
	p := a.pes[i]
	residency := p.SlotResidency.TotalSum
	return CycleBreakdown{
		Compute:    p.PhaseCompute.TotalSum,
		MemStall:   p.PhaseSPM.TotalSum + p.PhaseFetch.TotalSum + p.PhaseWB.TotalSum,
		Scheduling: p.PhaseDecode.TotalSum + p.PhaseSpawnWait.TotalSum + p.PhaseLeaf.TotalSum,
		Idle:       int64(end)*int64(a.cfg.PE.Width) - residency,
	}
}

// endTime reports the run's completion cycle (latest task completion
// across PEs; the engine clock may drift past it on idle monitor events).
func (a *Accelerator) endTime() sim.Time {
	var end sim.Time
	for _, p := range a.pes {
		if p.LastActive > end {
			end = p.LastActive
		}
	}
	return end
}

// Metrics snapshots every hardware counter of the run into a
// metrics.Registry and declares the conservation invariants tying them
// together. Call after the simulation completes; Verify on the returned
// registry is the correctness oracle the chaos and conformance suites
// (and, by default, every Run) assert.
func (a *Accelerator) Metrics() *metrics.Registry {
	end := a.endTime()
	reg := metrics.NewRegistry()

	eng := reg.Family("engine")
	eng.Counter("events", a.eng.Processed)
	eng.Counter("final-cycle", int64(end))
	eng.Eq("event queue drained", int64(a.eng.Pending()), 0)

	// Per-PE cycle attribution: the seven pipeline phases partition each
	// task's slot residency; residency matches the slot semaphore's
	// occupancy integral (two independent measurement paths); and the
	// four-way breakdown partitions width × run-cycles exactly.
	var l1Fills, l1WBs, csrLines int64
	var splitsReceived, adopted int64
	for i, p := range a.pes {
		f := reg.Family(fmt.Sprintf("pe%d/cycles", i))
		decode := f.Counter("decode", p.PhaseDecode.TotalSum)
		spm := f.Counter("spm+dispatch", p.PhaseSPM.TotalSum)
		fetch := f.Counter("fetch", p.PhaseFetch.TotalSum)
		compute := f.Counter("compute", p.PhaseCompute.TotalSum)
		wb := f.Counter("writeback", p.PhaseWB.TotalSum)
		spawn := f.Counter("spawn", p.PhaseSpawnWait.TotalSum)
		leaf := f.Counter("leaf", p.PhaseLeaf.TotalSum)
		residency := f.Counter("slot-residency", p.SlotResidency.TotalSum)
		slotInt := f.Counter("slot-occupancy-integral", int64(p.Slots.OccupancyIntegral(end)))
		f.Sum("phases partition slot residency", residency,
			decode, spm, fetch, compute, wb, spawn, leaf)
		f.Eq("slot residency == occupancy integral", residency, slotInt)
		capacity := int64(end) * int64(a.cfg.PE.Width)
		f.LE("busy slot-cycles ≤ width×cycles", residency, capacity)
		bd := a.breakdownFor(i, end)
		f.Counter("attr-compute", bd.Compute)
		f.Counter("attr-memstall", bd.MemStall)
		f.Counter("attr-scheduling", bd.Scheduling)
		f.Counter("attr-idle", bd.Idle)
		f.Sum("attribution partitions width×cycles", capacity,
			bd.Compute, bd.MemStall, bd.Scheduling, bd.Idle)
		f.Eq("slot units acquired == released", p.Slots.UnitsAcquired(), p.Slots.UnitsReleased())
		f.Eq("spm units acquired == released", p.SPM.UnitsAcquired(), p.SPM.UnitsReleased())
		conserv := f.Counter("conservative-cycles", int64(p.ConservResidency(end)))
		f.LE("conservative residency ≤ run cycles", conserv, int64(end))
		var parity int64
		if p.Conservative() {
			parity = 1
		}
		f.Eq("conservative transition parity", p.ConservativeTransitions.Total%2, parity)

		tf := reg.Family(fmt.Sprintf("pe%d/tasks", i))
		executed := tf.Counter("executed", p.TasksExecuted.Total)
		tf.Counter("leaf-tasks", p.LeafTasks.Total)
		tf.Counter("pruned-fetches", p.PrunedFetches.Total)
		tf.Counter("embeddings", p.Embeddings)
		tok := a.toks[i]
		tf.Eq("tokens acquired == released + held", tok.Acquired(), tok.Released()+int64(tok.TotalInUse()))
		tf.Eq("no tokens held at end", int64(tok.TotalInUse()), 0)
		if t, ok := p.Policy().(*core.Tree); ok {
			tf.Counter("fsm-ready→executing", t.ReadyToExecuting.Total)
			tf.Counter("fsm-executing→resting", t.ExecutingToResting.Total)
			tf.Counter("fsm-retired", t.RetiredEntries.Total)
			tf.Counter("quiesce-events", t.QuiesceEvents.Total)
			tf.Eq("ready→executing == executed", t.ReadyToExecuting.Total, executed)
			splitsReceived += t.SplitsReceived.Total
			adopted += t.SplitsReceived.Total
		}

		l1 := p.L1
		mf := reg.Family(fmt.Sprintf("pe%d/l1", i))
		acc := mf.Counter("accesses", l1.Accesses.Total)
		hits := mf.Counter("hits", l1.Hits.Total)
		miss := mf.Counter("misses", l1.Misses.Total)
		fills := mf.Counter("miss-fetches", l1.MissFetches.Total)
		wbs := mf.Counter("writebacks", l1.Writebacks.Total)
		mf.Sum("accesses == hits + misses", acc, hits, miss)
		mf.LE("miss-fetches ≤ misses", fills, miss)
		l1Fills += fills
		l1WBs += wbs
		csrLines += f.Counter("csr-lines", p.CSRLineReads)
	}

	// Global task flow: every node created was either executed by a PE
	// or adopted pre-executed from a split transfer, and every node was
	// eventually released back to the free list.
	tf := reg.Family("tasks")
	created := tf.Counter("created", a.w.NodesCreated)
	released := tf.Counter("released", a.w.NodesReleased)
	execs := tf.Counter("executed", a.w.Executions)
	tf.Counter("adopted-splits", adopted)
	var peExec int64
	for _, p := range a.pes {
		peExec += p.TasksExecuted.Total
	}
	tf.Eq("created == executed + adopted", created, execs+adopted)
	tf.Eq("released == created", released, created)
	tf.Eq("workload executions == Σ PE executed", execs, peExec)

	// Shared memory system. Every L2 access crosses the NoC exactly
	// once; split transfers add three extra messages per delivery (two
	// control messages plus the candidate-set payload, §4.1).
	l2 := reg.Family("l2")
	l2acc := l2.Counter("accesses", a.l2.Accesses.Total)
	l2hits := l2.Counter("hits", a.l2.Hits.Total)
	l2miss := l2.Counter("misses", a.l2.Misses.Total)
	l2fills := l2.Counter("miss-fetches", a.l2.MissFetches.Total)
	l2wbs := l2.Counter("writebacks", a.l2.Writebacks.Total)
	l2.Sum("accesses == hits + misses", l2acc, l2hits, l2miss)
	l2.Sum("accesses == Σ(L1 fills + L1 writebacks + CSR lines)", l2acc,
		l1Fills, l1WBs, csrLines)

	dram := reg.Family("dram")
	reads := dram.Counter("reads", a.dram.Reads.Total)
	writes := dram.Counter("writes", a.dram.Writes.Total)
	rh := dram.Counter("row-hits", a.dram.RowHits.Total)
	rm := dram.Counter("row-misses", a.dram.RowMisses.Total)
	dram.Sum("accesses == row-hits + row-misses", reads+writes, rh, rm)
	dram.Sum("accesses == L2 fills + L2 writebacks", reads+writes, l2fills, l2wbs)

	splits := a.Splits.Total
	noc := reg.Family("noc")
	msgs := noc.Counter("messages", a.noc.Messages.Total)
	noc.Counter("lines-moved", a.noc.LinesMoved.Total)
	noc.Sum("messages == L2 accesses + 3×split transfers", msgs, l2acc, 3*splits)

	// Split/merge events (§4.1, §4.2).
	sm := reg.Family("splitmerge")
	sm.Counter("splits-delivered", splits)
	sm.Counter("splits-received", splitsReceived)
	var performed, merges, transitions int64
	for _, p := range a.pes {
		transitions += p.ConservativeTransitions.Total
		if t, ok := p.Policy().(*core.Tree); ok {
			performed += t.SplitsPerformed.Total
			merges += t.MergeFeeds.Total
		}
	}
	sm.Counter("splits-carved", performed)
	sm.Counter("merge-feeds", merges)
	sm.Counter("conservative-transitions", transitions)
	// Cluster migrations (chip-level splits over the interconnect) land
	// in the same per-tree SplitsReceived counter as local deliveries;
	// outside cluster runs both migration counters are zero and the
	// identity reduces to the original delivered == received.
	migIn := sm.Counter("migrated-in", a.MigratedIn.Total)
	sm.Counter("migrated-out", a.MigratedOut.Total)
	sm.Eq("splits delivered + migrations in == splits received", splits+migIn, splitsReceived)
	var pending int64
	for _, inFlight := range a.splitPending {
		if inFlight {
			pending++
		}
	}
	sm.Eq("no split transfers in flight", pending, 0)

	return reg
}

// VerifyMetrics runs the conservation pass over the current counter
// state, returning a *metrics.VerifyError naming every violated
// invariant (nil when all identities hold).
func (a *Accelerator) VerifyMetrics() error {
	return a.Metrics().Verify()
}
