package accel

import (
	"fmt"

	"shogun/internal/core"
	"shogun/internal/sim"
	"shogun/internal/telemetry"
)

// Telemetry bundles one run's time-resolved instrumentation: the epoch
// sampler over live gauges plus the log-bucketed latency/size histograms.
// It exists only when Config.SampleEvery > 0; a nil bundle leaves every
// hot-path observation as a nil-receiver no-op.
type Telemetry struct {
	Sampler *telemetry.Sampler

	// Per-PE shards (index = PE ID). Shards merge bit-identically, so
	// fleet-wide digests are Merge folds over these.
	TaskLifetime []*telemetry.Histogram // slot residency, dispatch→spawn-done
	QueueWait    []*telemetry.Histogram // SPM allocation + dispatch wait
	MemLatency   []*telemetry.Histogram // L1 access latency

	L2Latency  *telemetry.Histogram // shared L2 access latency
	SplitLines *telemetry.Histogram // cache lines per §4.1 split transfer
}

// MergedLifetime folds the per-PE task-lifetime shards into one digest.
func (t *Telemetry) MergedLifetime() *telemetry.Histogram {
	m := telemetry.NewHistogram()
	for _, h := range t.TaskLifetime {
		m.Merge(h)
	}
	return m
}

// Histograms returns the named digest map a live inspection server or a
// JSON snapshot serves.
func (t *Telemetry) Histograms() map[string]telemetry.HistSummary {
	out := map[string]telemetry.HistSummary{
		"l2-latency":  t.L2Latency.Summary(),
		"split-lines": t.SplitLines.Summary(),
	}
	life, wait, lat := telemetry.NewHistogram(), telemetry.NewHistogram(), telemetry.NewHistogram()
	for i := range t.TaskLifetime {
		life.Merge(t.TaskLifetime[i])
		wait.Merge(t.QueueWait[i])
		lat.Merge(t.MemLatency[i])
	}
	out["task-lifetime"] = life.Summary()
	out["queue-wait"] = wait.Summary()
	out["l1-latency"] = lat.Summary()
	return out
}

// initTelemetry builds the bundle, attaches the histogram shards to the
// memory system and PEs, and registers every gauge. Called from New after
// the PEs exist; a zero SampleEvery leaves a.tel nil (sampling off).
func (a *Accelerator) initTelemetry() error {
	if a.cfg.SampleEvery == 0 {
		return nil
	}
	if a.cfg.SampleEvery < 0 {
		return fmt.Errorf("accel: SampleEvery must be >= 0 cycles, got %d", a.cfg.SampleEvery)
	}
	s, err := telemetry.NewSampler(int64(a.cfg.SampleEvery), a.cfg.SampleCap)
	if err != nil {
		return fmt.Errorf("accel: %w", err)
	}
	t := &Telemetry{
		Sampler:    s,
		L2Latency:  telemetry.NewHistogram(),
		SplitLines: telemetry.NewHistogram(),
	}
	a.l2.LatHist = t.L2Latency
	for _, p := range a.pes {
		life, wait, lat := telemetry.NewHistogram(), telemetry.NewHistogram(), telemetry.NewHistogram()
		t.TaskLifetime = append(t.TaskLifetime, life)
		t.QueueWait = append(t.QueueWait, wait)
		t.MemLatency = append(t.MemLatency, lat)
		p.LifetimeHist = life
		p.QueueWaitHist = wait
		p.L1.LatHist = lat
	}

	for i, p := range a.pes {
		p, toks := p, a.toks[i]
		s.Gauge(fmt.Sprintf("pe%d/resident", i), func(int64) int64 { return int64(p.Slots.InUse()) })
		s.Gauge(fmt.Sprintf("pe%d/spm", i), func(int64) int64 { return int64(p.SPM.InUse()) })
		s.Gauge(fmt.Sprintf("pe%d/tokens", i), func(int64) int64 { return int64(toks.TotalInUse()) })
		s.Gauge(fmt.Sprintf("pe%d/conservative", i), func(int64) int64 {
			if p.Conservative() {
				return 1
			}
			return 0
		})
		s.Gauge(fmt.Sprintf("pe%d/l1-mshr", i), func(now int64) int64 {
			return int64(p.L1.MSHRInFlight(sim.Time(now)))
		})
		if tree, ok := p.Policy().(*core.Tree); ok {
			s.Gauge(fmt.Sprintf("pe%d/bunch-entries", i), func(int64) int64 { return int64(tree.LiveEntries()) })
		}
	}
	s.Gauge("dram/queue", func(now int64) int64 { return int64(a.dram.QueueDepth(sim.Time(now))) })
	s.Gauge("dram/row-hits", func(int64) int64 { return a.dram.RowHits.Total })
	s.Gauge("dram/row-misses", func(int64) int64 { return a.dram.RowMisses.Total })
	s.Gauge("noc/inflight", func(now int64) int64 { return int64(a.noc.InFlight(sim.Time(now))) })
	s.Gauge("noc/messages", func(int64) int64 { return a.noc.Messages.Total })
	s.Gauge("engine/events", func(int64) int64 { return a.eng.Processed })
	s.Gauge("tasks/executed", func(int64) int64 {
		var n int64
		for _, p := range a.pes {
			n += p.TasksExecuted.Total
		}
		return n
	})
	a.tel = t
	return nil
}

// Telemetry exposes the run's instrumentation bundle (nil when sampling
// is off).
func (a *Accelerator) Telemetry() *Telemetry { return a.tel }

// armSampler schedules the next sampling epoch. Like the locality monitor
// and the balance loop, the tick re-arms only while work remains, so the
// event queue still drains at run end.
func (a *Accelerator) armSampler() {
	if a.tel == nil || a.samplerArmed {
		return
	}
	a.samplerArmed = true
	a.eng.PostAfter(sim.Time(a.tel.Sampler.Interval()), a, opSamplerTick, nil)
}

func (a *Accelerator) samplerTick() {
	a.samplerArmed = false
	a.tel.Sampler.Sample(int64(a.eng.Now()))
	// Cluster runs keep every chip sampling until the whole cluster
	// drains, so the per-chip epoch columns stay aligned.
	if a.KeepSampling != nil && a.KeepSampling() {
		a.armSampler()
		return
	}
	for _, p := range a.pes {
		if !p.Idle() || p.HasWork() {
			a.armSampler()
			return
		}
	}
	for _, pending := range a.splitPending {
		if pending {
			a.armSampler()
			return
		}
	}
}
