package accel

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/pattern"
)

// goldenEntry freezes the observable outcome of one deterministic run.
// Cycles pins the timing model; Embeddings and Tasks pin the algorithmic
// behaviour. Any intentional model change must regenerate the file:
//
//	GOLDEN_UPDATE=1 go test ./internal/accel -run TestGolden
type goldenEntry struct {
	Key        string `json:"key"`
	Cycles     int64  `json:"cycles"`
	Embeddings int64  `json:"embeddings"`
	Tasks      int64  `json:"tasks"`
}

func goldenCells(t *testing.T) (map[string]*graph.Graph, []struct {
	key    string
	g      string
	wl     string
	scheme Scheme
	mutate func(*Config)
}) {
	t.Helper()
	graphs := map[string]*graph.Graph{
		"rmat": gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 42),
		"plc":  gen.PowerLawCluster(300, 6, 0.6, 43),
	}
	cells := []struct {
		key    string
		g      string
		wl     string
		scheme Scheme
		mutate func(*Config)
	}{
		{"rmat/4cl/shogun", "rmat", "4cl", SchemeShogun, nil},
		{"rmat/4cl/fingers", "rmat", "4cl", SchemePseudoDFS, nil},
		{"rmat/tt_v/shogun", "rmat", "tt_v", SchemeShogun, nil},
		{"plc/dia_e/shogun", "plc", "dia_e", SchemeShogun, nil},
		{"plc/4cyc_e/parallel-dfs", "plc", "4cyc_e", SchemeParallelDFS, nil},
		{"rmat/tc/shogun+opts", "rmat", "tc", SchemeShogun, func(c *Config) {
			c.EnableSplitting = true
			c.EnableMerging = true
		}},
	}
	return graphs, cells
}

func TestGoldenResults(t *testing.T) {
	graphs, cells := goldenCells(t)
	var got []goldenEntry
	for _, c := range cells {
		var wl *pattern.Schedule
		for _, w := range workloadsForGolden(t) {
			if w.name == c.wl {
				wl = w.s
			}
		}
		if wl == nil {
			t.Fatalf("unknown workload %s", c.wl)
		}
		cfg := DefaultConfig(c.scheme)
		cfg.NumPEs = 4
		if c.mutate != nil {
			c.mutate(&cfg)
		}
		a, err := New(graphs[c.g], wl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, goldenEntry{c.key, res.Cycles, res.Embeddings, res.Tasks + res.LeafTasks})
	}

	path := filepath.Join("testdata", "golden.json")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		b, _ := json.MarshalIndent(got, "", "  ")
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", path)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		for i := range got {
			if i < len(want) && got[i] != want[i] {
				t.Errorf("golden drift at %s:\n  got  %+v\n  want %+v", got[i].Key, got[i], want[i])
			}
		}
		if len(got) != len(want) {
			t.Errorf("golden entry count %d != %d", len(got), len(want))
		}
		t.Log("intentional model changes require GOLDEN_UPDATE=1 to regenerate")
	}
}

type namedSchedule struct {
	name string
	s    *pattern.Schedule
}

func workloadsForGolden(t *testing.T) []namedSchedule {
	t.Helper()
	mk := func(p pattern.Pattern, induced bool) namedSchedule {
		s, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: induced})
		if err != nil {
			t.Fatal(err)
		}
		return namedSchedule{s.Name, s}
	}
	return []namedSchedule{
		mk(pattern.Triangle(), false),
		mk(pattern.FourClique(), false),
		mk(pattern.TailedTriangle(), true),
		mk(pattern.Diamond(), false),
		mk(pattern.FourCycle(), false),
	}
}
