package accel

import (
	"shogun/internal/core"
	"shogun/internal/graph"
	"shogun/internal/mem"
	"shogun/internal/pe"
	"shogun/internal/task"
)

// onPEIdle fires when a PE runs out of runnable work. Once all search
// trees are dispatched, idleness is the load-imbalance signal of §4.1:
// the system scheduler checks whether busy PEs should split their task
// trees onto the idlers.
func (a *Accelerator) onPEIdle(_ *pe.PE) {
	if a.cfg.EnableSplitting && a.cfg.Scheme == SchemeShogun {
		// With static dispatch an idle PE's own root queue is already
		// empty, so idleness while peers stay busy IS the imbalance
		// signal; the multi-round mechanism (§4.1) keeps sharing the
		// stragglers' current trees as they drain through their backlogs.
		a.armBalance()
	}
	// At cluster scope the same signal one level up: a fully quiet chip
	// is a work-stealing helper candidate.
	if a.OnChipIdle != nil && a.ChipIdle() {
		a.OnChipIdle()
	}
}

// armBalance schedules one imbalance check (debounced).
func (a *Accelerator) armBalance() {
	if a.balanceArmed {
		return
	}
	a.balanceArmed = true
	a.eng.PostAfter(1, a, opBalanceCheck, nil)
}

// balanceCheck implements Fig. 8: detect imbalance (idle PEs while others
// stay busy), instruct heavily loaded PEs to split their task trees at
// depth 1, and transfer root data to the idlers. Multiple rounds occur
// naturally: the check re-arms while imbalance persists.
func (a *Accelerator) balanceCheck() {
	a.balanceArmed = false
	var idle, busy []*pe.PE
	for _, p := range a.pes {
		if p.Idle() && !p.HasWork() {
			idle = append(idle, p)
		} else {
			busy = append(busy, p)
		}
	}
	if len(idle) == 0 || len(busy) == 0 {
		if len(busy) > 0 {
			// All busy: re-check later in case the tail imbalances.
			a.eng.PostAfter(a.cfg.BalancePeriod, a, opArmBalanceIfNeeded, nil)
		}
		return
	}
	// Filter helpers already reserved by an in-flight transfer.
	free := idle[:0:0]
	for _, h := range idle {
		if !a.splitPending[h.ID] {
			free = append(free, h)
		}
	}
	helpersUsed := 0
	for _, victim := range busy {
		if helpersUsed >= len(free) {
			break
		}
		tree, ok := victim.Policy().(*core.Tree)
		if !ok {
			continue
		}
		root := tree.SplittableRoot()
		if root == nil {
			continue
		}
		k := len(free) - helpersUsed
		if k > a.cfg.MaxHelpersPerSplit {
			k = a.cfg.MaxHelpersPerSplit
		}
		lo, hi, ok := tree.CarveSplit(root, k)
		if !ok {
			continue
		}
		a.transferSplit(victim, free[helpersUsed:helpersUsed+k], root, lo, hi)
		helpersUsed += k
	}
	// Imbalance may remain (prediction uncertainty): schedule another
	// round (§4.1's multi-round solution).
	a.eng.PostAfter(a.cfg.BalancePeriod, a, opArmBalanceIfNeeded, nil)
}

func (a *Accelerator) armBalanceIfNeeded() {
	anyBusy := false
	for _, p := range a.pes {
		if !p.Idle() || p.HasWork() {
			anyBusy = true
			break
		}
	}
	if anyBusy {
		a.armBalance()
	}
}

// splitMsg is one in-flight §4.1 split transfer: the root+range payload
// travelling from victim to helper, carried as the delivery event's
// argument (and re-carried across adoption retries). Splits are rare —
// a handful per run — so the message itself may allocate; the candidate
// snapshot it carries must anyway.
type splitMsg struct {
	helper     *pe.PE
	htree      *core.Tree
	rootVertex graph.VertexID
	cand       []graph.VertexID
	spawnLimit int
	lo, hi     int
	slot       int
}

// transferSplit models the three partition-message types of §4.1 — the
// root+range message, the set-size message, and the candidate-set cache
// lines — then installs the split subtree on each helper.
func (a *Accelerator) transferSplit(victim *pe.PE, helpers []*pe.PE, root *task.Node, lo, hi int) {
	now := a.eng.Now()
	// Snapshot the candidate set immediately: the victim's root node (and
	// its Cand backing array) may be recycled before the transfer lands.
	cand := append([]graph.VertexID(nil), root.Cand...)
	rootVertex := root.Vertex
	spawnLimit := root.SpawnLimit
	total := hi - lo
	share := total / len(helpers)
	cur := lo
	for i, h := range helpers {
		start, end := cur, cur+share
		if i == len(helpers)-1 {
			end = hi
		}
		cur = end
		if start >= end {
			continue
		}
		htree := h.Policy().(*core.Tree) // split only runs for Shogun
		slot, ok := a.toks[h.ID].TryAcquire(1)
		if !ok {
			panic("accel: idle helper has no free depth-1 token")
		}
		lines := int64(0)
		if len(cand) > 0 {
			lines = (int64(len(cand))*4 + mem.LineBytes - 1) / mem.LineBytes
		}
		if a.tel != nil {
			a.tel.SplitLines.Observe(lines)
		}
		// Two control messages + the data lines (§4.1's three types).
		a.noc.Transfer(now, 0)
		a.noc.Transfer(now, 0)
		arrive := a.noc.Transfer(now, lines)
		a.splitPending[h.ID] = true
		a.eng.Post(arrive, a, opDeliverSplit, &splitMsg{
			helper: h, htree: htree, rootVertex: rootVertex, cand: cand,
			spawnLimit: spawnLimit, lo: start, hi: end, slot: slot,
		})
	}
	_ = victim // the victim's root range already shrank via CarveSplit
}

// deliverSplit installs a split subtree on the helper, retrying if the
// helper's depth-0 capacity is momentarily occupied — the carved range
// must never be dropped.
func (a *Accelerator) deliverSplit(m *splitMsg) {
	now := a.eng.Now()
	if m.htree.AdoptSplit(m.rootVertex, m.cand, m.spawnLimit, m.lo, m.hi, m.slot) {
		// Install the transferred set into the helper's L1 (the one-time
		// PE-to-PE copy the paper argues for over proxy access).
		mem.AccessRange(m.helper.L1, now, a.w.Map.SetAddr(m.slot), int64(len(m.cand))*4, true)
		a.splitPending[m.helper.ID] = false
		a.Splits.Inc(1)
		m.helper.Kick()
		return
	}
	a.eng.PostAfter(a.cfg.BalancePeriod, a, opDeliverSplit, m)
}

// ForceSplit carves one task-tree split regardless of the imbalance
// signal — the chaos harness's fault injection. Unlike balanceCheck it
// does not require the helper to be idle (a mid-run forced split is the
// point), so the helper's depth-1 token is acquired FIRST and released
// if the carve fails; the delivery path is the normal deliverSplit,
// which retries until the helper can adopt. Reports whether a split was
// initiated. Only meaningful for the Shogun scheme.
func (a *Accelerator) ForceSplit() bool {
	if a.cfg.Scheme != SchemeShogun {
		return false
	}
	now := a.eng.Now()
	for _, victim := range a.pes {
		tree, ok := victim.Policy().(*core.Tree)
		if !ok {
			continue
		}
		root := tree.SplittableRoot()
		if root == nil {
			continue
		}
		for _, h := range a.pes {
			if h.ID == victim.ID || a.splitPending[h.ID] {
				continue
			}
			slot, ok := a.toks[h.ID].TryAcquire(1)
			if !ok {
				continue
			}
			lo, hi, ok := tree.CarveSplit(root, 1)
			if !ok {
				a.toks[h.ID].Release(1, slot)
				return false // this victim's root is not carvable; done
			}
			htree := h.Policy().(*core.Tree)
			cand := append([]graph.VertexID(nil), root.Cand...)
			rootVertex := root.Vertex
			spawnLimit := root.SpawnLimit
			lines := int64(0)
			if len(cand) > 0 {
				lines = (int64(len(cand))*4 + mem.LineBytes - 1) / mem.LineBytes
			}
			if a.tel != nil {
				a.tel.SplitLines.Observe(lines)
			}
			a.noc.Transfer(now, 0)
			a.noc.Transfer(now, 0)
			arrive := a.noc.Transfer(now, lines)
			a.splitPending[h.ID] = true
			a.eng.Post(arrive, a, opDeliverSplit, &splitMsg{
				helper: h, htree: htree, rootVertex: rootVertex, cand: cand,
				spawnLimit: spawnLimit, lo: lo, hi: hi, slot: slot,
			})
			return true
		}
	}
	return false
}

// armMerge starts the periodic merging-decision loop (§4.2) when enabled.
func (a *Accelerator) armMerge() {
	if !a.cfg.EnableMerging || a.cfg.Scheme != SchemeShogun || a.mergeArmed {
		return
	}
	a.mergeArmed = true
	a.eng.PostAfter(a.cfg.MergePeriod, a, opMergeCheck, nil)
}

// mergeCheck evaluates, per PE, the three §4.2 conditions: (1) FU
// utilization has headroom, (2) L1 is not thrashing, (3) memory bandwidth
// is not exhausted. PEs satisfying all three are allowed to pull a second
// search tree.
func (a *Accelerator) mergeCheck() {
	a.mergeArmed = false
	dramLat, dramHas := a.dram.Latency.WindowAvg()
	a.dram.Latency.Roll()
	bwOK := !dramHas || dramLat < 3*float64(a.cfg.DRAM.RowMissLat)
	anyBusy := false
	for _, p := range a.pes {
		tree, ok := p.Policy().(*core.Tree)
		if !ok {
			continue
		}
		if !p.Idle() || p.HasWork() {
			anyBusy = true
		}
		s := p.LastSample
		allow := bwOK &&
			s.IUUtil < p.Cfg.ConservUtilThresh &&
			(!s.L1HasData || s.L1AvgLat < p.Cfg.ConservLatThresh) &&
			!p.Conservative()
		wasAllowed := tree.CanMerge()
		tree.SetMergeAllowed(allow)
		if allow && wasAllowed {
			p.Kick()
		}
	}
	if anyBusy {
		a.mergeArmed = true
		a.eng.PostAfter(a.cfg.MergePeriod, a, opMergeCheck, nil)
	}
}
