package pattern

import "testing"

// FuzzParse hardens the pattern-spec parser: arbitrary specs must parse
// or error, and parsed patterns must produce valid schedules (or a clean
// error for disconnected ones).
func FuzzParse(f *testing.F) {
	f.Add("0-1,1-2,2-0")
	f.Add("0-1")
	f.Add("")
	f.Add("0-0")
	f.Add("1-2,,3-")
	f.Add("0-1,2-3")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse("fuzz", spec)
		if err != nil {
			return
		}
		if p.N() < 1 || p.N() > MaxVertices {
			t.Fatalf("parsed pattern out of range: %d", p.N())
		}
		auts := p.Automorphisms()
		if len(auts) < 1 {
			t.Fatal("no identity automorphism")
		}
		if !p.Connected() {
			if _, err := Build(p); err == nil {
				t.Fatal("disconnected pattern got a schedule")
			}
			return
		}
		if p.N() < 2 {
			return
		}
		s, err := Build(p)
		if err != nil {
			t.Fatalf("connected pattern rejected: %v", err)
		}
		fact := 1
		for i := 2; i <= p.N(); i++ {
			fact *= i
		}
		if fact%s.AutomorphismCount != 0 {
			t.Fatalf("|Aut| = %d does not divide %d!", s.AutomorphismCount, p.N())
		}
	})
}
