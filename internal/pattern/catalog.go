package pattern

import (
	"fmt"
	"sort"
)

// AllConnected enumerates all connected, non-isomorphic patterns with
// exactly k vertices (3 ≤ k ≤ 6): the graphlet catalog used by motif
// census workloads. Patterns are named g<k>_<i> in a deterministic order
// (ascending edge count, then canonical code) with well-known patterns
// keeping their standard names (tc, 4cl, ...).
func AllConnected(k int) ([]Pattern, error) {
	if k < 3 || k > 6 {
		return nil, fmt.Errorf("pattern: catalog supports 3..6 vertices, got %d", k)
	}
	type entry struct {
		canon string
		edges int
		p     Pattern
	}
	seen := map[string]entry{}
	pairs := k * (k - 1) / 2
	// Enumerate every labeled graph on k vertices by edge bitmask.
	pairList := make([][2]int, 0, pairs)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairList = append(pairList, [2]int{i, j})
		}
	}
	for mask := 0; mask < 1<<uint(pairs); mask++ {
		var edges [][2]int
		for b, pr := range pairList {
			if mask&(1<<uint(b)) != 0 {
				edges = append(edges, pr)
			}
		}
		if len(edges) < k-1 {
			continue // cannot be connected
		}
		p, err := NewPattern("", k, edges)
		if err != nil {
			return nil, err
		}
		if !p.Connected() {
			continue
		}
		c := canonicalCode(p)
		if _, ok := seen[c]; !ok {
			seen[c] = entry{c, len(edges), p}
		}
	}
	list := make([]entry, 0, len(seen))
	for _, e := range seen {
		list = append(list, e)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].edges != list[j].edges {
			return list[i].edges < list[j].edges
		}
		return list[i].canon < list[j].canon
	})
	out := make([]Pattern, len(list))
	for i, e := range list {
		name := wellKnownName(e.p)
		if name == "" {
			name = fmt.Sprintf("g%d_%d", k, i)
		}
		e.p.name = name
		out[i] = e.p
	}
	return out, nil
}

// canonicalCode computes a canonical string for iso-testing by taking the
// lexicographically smallest adjacency encoding over all permutations.
// Patterns are ≤6 vertices, so the factorial scan is cheap.
func canonicalCode(p Pattern) string {
	n := p.N()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := ""
	var rec func(pos int)
	used := make([]bool, n)
	cur := make([]int, n)
	rec = func(pos int) {
		if pos == n {
			code := make([]byte, 0, n*n)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if p.HasEdge(cur[i], cur[j]) {
						code = append(code, '1')
					} else {
						code = append(code, '0')
					}
				}
			}
			if best == "" || string(code) < best {
				best = string(code)
			}
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			cur[pos] = v
			rec(pos + 1)
			used[v] = false
		}
	}
	rec(0)
	return fmt.Sprintf("%d:%s", n, best)
}

// Isomorphic reports whether two patterns are isomorphic.
func Isomorphic(a, b Pattern) bool {
	if a.N() != b.N() || a.NumEdges() != b.NumEdges() {
		return false
	}
	return canonicalCode(a) == canonicalCode(b)
}

// wellKnownName maps catalog entries onto the paper's names.
func wellKnownName(p Pattern) string {
	known := []Pattern{
		Triangle(), FourClique(), FiveClique(), TailedTriangle(),
		Diamond(), FourCycle(), House(), PathN(3), PathN(4), PathN(5),
		StarN(3), StarN(4), CycleN(5), CycleN(6),
	}
	for _, k := range known {
		if Isomorphic(p, k) {
			return k.Name()
		}
	}
	return ""
}
