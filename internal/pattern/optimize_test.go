package pattern

import (
	"math"
	"testing"
)

func TestShapeOf(t *testing.T) {
	s := ShapeOf(100, 495) // ~every 10th pair adjacent
	if s.Vertices != 100 {
		t.Fatalf("vertices = %v", s.Vertices)
	}
	if math.Abs(s.EdgeProb-0.099) > 1e-9 {
		t.Fatalf("edge prob = %v", s.EdgeProb)
	}
	if ShapeOf(0, 0).Vertices < 2 {
		t.Fatal("degenerate shape not clamped")
	}
	if ShapeOf(2, 100).EdgeProb > 1 {
		t.Fatal("edge prob not clamped to 1")
	}
}

func TestEstimateCostPrefersDensePrefix(t *testing.T) {
	// Tailed triangle: matching the triangle first prunes much earlier
	// than matching the tail early on a sparse graph.
	p := TailedTriangle()
	shape := ShapeOf(100000, 500000) // sparse
	triangleFirst := EstimateCost(p, []int{0, 1, 2, 3}, shape)
	tailSecond := EstimateCost(p, []int{0, 3, 1, 2}, shape)
	if triangleFirst >= tailSecond {
		t.Errorf("cost(triangle-first)=%v not below cost(tail-second)=%v", triangleFirst, tailSecond)
	}
}

func TestOptimizePicksConnectedLowCostOrder(t *testing.T) {
	shape := ShapeOf(100000, 500000)
	for _, p := range []Pattern{Triangle(), FourClique(), TailedTriangle(), Diamond(), FourCycle(), House(), Wheel(4)} {
		s, err := Optimize(p, shape, false)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		// The chosen order must be valid and never costlier than the
		// greedy default.
		def, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		if EstimateCost(p, s.Order, shape) > EstimateCost(p, def.Order, shape)+1e-9 {
			t.Errorf("%s: optimizer picked a worse order %v than default %v", p.Name(), s.Order, def.Order)
		}
		if err := checkConnectedOrder(p, s.Order); err != nil {
			t.Errorf("%s: optimized order invalid: %v", p.Name(), err)
		}
	}
}

func TestOptimizeRejectsDisconnected(t *testing.T) {
	p, _ := NewPattern("cc", 4, [][2]int{{0, 1}, {2, 3}})
	if _, err := Optimize(p, ShapeOf(100, 200), false); err == nil {
		t.Fatal("optimizer accepted disconnected pattern")
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("tri", "0-1, 1-2, 2-0")
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 3 || p.NumEdges() != 3 || len(p.Automorphisms()) != 6 {
		t.Fatalf("parsed triangle wrong: %s", p)
	}
	for _, bad := range []string{"", "0", "0-", "a-b", "0-1,,2"} {
		if _, err := Parse("x", bad); err == nil && bad != "0-1,,2" {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// Blank segments are skipped; "0-1,,2" has a malformed trailing part.
	if _, err := Parse("x", "0-1,,2"); err == nil {
		t.Error("trailing junk accepted")
	}
}

func TestCompleteBipartiteAndWheel(t *testing.T) {
	k22 := CompleteBipartite(2, 2)
	if k22.N() != 4 || k22.NumEdges() != 4 {
		t.Fatalf("K22: %s", k22)
	}
	// K22 is the 4-cycle: automorphism group of order 8.
	if got := len(k22.Automorphisms()); got != 8 {
		t.Fatalf("|Aut(K22)| = %d", got)
	}
	w4 := Wheel(4)
	if w4.N() != 5 || w4.NumEdges() != 8 {
		t.Fatalf("wheel4: %s", w4)
	}
	if !w4.Connected() {
		t.Fatal("wheel disconnected")
	}
}
