// Package pattern implements search patterns and pattern-aware mining
// schedules: matching orders, automorphism-based symmetry breaking, and
// per-depth set-operation plans with intermediate-result reuse.
//
// It is the stand-in for GraphPi (Shi et al., SC'20), which the paper uses
// to generate schedules for both Shogun and the FINGERS baseline. Both
// edge-induced ("_e") and vertex-induced ("_v") schedules are supported,
// matching §5.1.2 of the paper.
package pattern

import (
	"fmt"
	"strings"
)

// MaxVertices bounds pattern size. The paper assumes a maximum search depth
// of 6 (7-node patterns are the largest GraphPi handles); we allow 8 so the
// generic machinery has headroom.
const MaxVertices = 8

// Pattern is a small connected undirected graph to search for. Vertices
// are 0..N-1; adjacency is stored as bitmasks.
type Pattern struct {
	name string
	n    int
	adj  [MaxVertices]uint16
}

// NewPattern builds a pattern from an edge list over vertices [0, n).
func NewPattern(name string, n int, edges [][2]int) (Pattern, error) {
	var p Pattern
	if n < 1 || n > MaxVertices {
		return p, fmt.Errorf("pattern: size %d out of range [1,%d]", n, MaxVertices)
	}
	p.name = name
	p.n = n
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return p, fmt.Errorf("pattern: edge (%d,%d) out of range", u, v)
		}
		if u == v {
			return p, fmt.Errorf("pattern: self loop on %d", u)
		}
		p.adj[u] |= 1 << uint(v)
		p.adj[v] |= 1 << uint(u)
	}
	return p, nil
}

func mustPattern(name string, n int, edges [][2]int) Pattern {
	p, err := NewPattern(name, n, edges)
	if err != nil {
		panic(err)
	}
	return p
}

// The six patterns evaluated in the paper (§5.1.2).

// Triangle returns the 3-clique pattern (tc).
func Triangle() Pattern { return CliqueN(3) }

// FourClique returns the 4-clique pattern (4cl).
func FourClique() Pattern { return CliqueN(4) }

// FiveClique returns the 5-clique pattern (5cl).
func FiveClique() Pattern { return CliqueN(5) }

// CliqueN returns the k-clique pattern.
func CliqueN(k int) Pattern {
	var edges [][2]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	name := fmt.Sprintf("%dcl", k)
	if k == 3 {
		name = "tc"
	}
	return mustPattern(name, k, edges)
}

// TailedTriangle returns a triangle {0,1,2} with a pendant vertex 3
// attached to vertex 0 (tt).
func TailedTriangle() Pattern {
	return mustPattern("tt", 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {0, 3}})
}

// Diamond returns two triangles sharing an edge, i.e. K4 minus one edge
// (dia). Vertices 0,1 form the shared edge.
func Diamond() Pattern {
	return mustPattern("dia", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}})
}

// FourCycle returns the 4-cycle pattern (4cyc).
func FourCycle() Pattern {
	return mustPattern("4cyc", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
}

// House returns the 5-vertex house pattern (4-cycle with a triangle roof),
// used by the extended examples.
func House() Pattern {
	return mustPattern("house", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}})
}

// StarN returns a star with k leaves.
func StarN(k int) Pattern {
	var edges [][2]int
	for i := 1; i <= k; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return mustPattern(fmt.Sprintf("star%d", k), k+1, edges)
}

// PathN returns a simple path on k vertices.
func PathN(k int) Pattern {
	var edges [][2]int
	for i := 0; i+1 < k; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return mustPattern(fmt.Sprintf("path%d", k), k, edges)
}

// CycleN returns a simple cycle on k vertices.
func CycleN(k int) Pattern {
	var edges [][2]int
	for i := 0; i < k; i++ {
		edges = append(edges, [2]int{i, (i + 1) % k})
	}
	name := fmt.Sprintf("%dcyc", k)
	return mustPattern(name, k, edges)
}

// ByName resolves the paper's pattern names: tc, tt, 4cl, 5cl, dia, 4cyc
// (optionally with _e/_v suffix, which is stripped — inducedness is a
// schedule property, not a pattern property).
func ByName(name string) (Pattern, error) {
	base := strings.TrimSuffix(strings.TrimSuffix(name, "_e"), "_v")
	switch base {
	case "tc", "triangle":
		return Triangle(), nil
	case "tt", "tailed-triangle":
		return TailedTriangle(), nil
	case "4cl":
		return FourClique(), nil
	case "5cl":
		return FiveClique(), nil
	case "dia", "diamond":
		return Diamond(), nil
	case "4cyc":
		return FourCycle(), nil
	case "house":
		return House(), nil
	default:
		return Pattern{}, fmt.Errorf("pattern: unknown pattern %q", name)
	}
}

// Name returns the pattern's short name.
func (p Pattern) Name() string { return p.name }

// N returns the number of pattern vertices (the search depth count).
func (p Pattern) N() int { return p.n }

// HasEdge reports whether pattern vertices u and v are adjacent.
func (p Pattern) HasEdge(u, v int) bool { return p.adj[u]&(1<<uint(v)) != 0 }

// Degree returns the degree of pattern vertex v.
func (p Pattern) Degree(v int) int {
	d := 0
	for m := p.adj[v]; m != 0; m &= m - 1 {
		d++
	}
	return d
}

// NumEdges returns the pattern's edge count.
func (p Pattern) NumEdges() int {
	total := 0
	for v := 0; v < p.n; v++ {
		total += p.Degree(v)
	}
	return total / 2
}

// Connected reports whether the pattern is connected (a requirement for
// the mining schedules).
func (p Pattern) Connected() bool {
	if p.n == 0 {
		return false
	}
	seen := uint16(1)
	frontier := []int{0}
	for len(frontier) > 0 {
		v := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for m := p.adj[v] &^ seen; m != 0; m &= m - 1 {
			u := trailingZeros16(m)
			seen |= 1 << uint(u)
			frontier = append(frontier, u)
		}
	}
	return seen == (1<<uint(p.n))-1
}

// Relabel returns the pattern with vertex order[i] renamed to i.
func (p Pattern) Relabel(order []int) (Pattern, error) {
	if len(order) != p.n {
		return Pattern{}, fmt.Errorf("pattern: relabel order length %d != %d", len(order), p.n)
	}
	inv := make([]int, p.n)
	seen := make([]bool, p.n)
	for newID, oldID := range order {
		if oldID < 0 || oldID >= p.n || seen[oldID] {
			return Pattern{}, fmt.Errorf("pattern: relabel order is not a permutation")
		}
		seen[oldID] = true
		inv[oldID] = newID
	}
	var edges [][2]int
	for u := 0; u < p.n; u++ {
		for v := u + 1; v < p.n; v++ {
			if p.HasEdge(u, v) {
				edges = append(edges, [2]int{inv[u], inv[v]})
			}
		}
	}
	return NewPattern(p.name, p.n, edges)
}

// String renders the pattern as name(n; edge list).
func (p Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(n=%d;", p.name, p.n)
	first := true
	for u := 0; u < p.n; u++ {
		for v := u + 1; v < p.n; v++ {
			if p.HasEdge(u, v) {
				if !first {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, " %d-%d", u, v)
				first = false
			}
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Automorphisms enumerates all adjacency-preserving vertex permutations of
// p, including the identity. Patterns are tiny (≤8 vertices) so brute
// force is exact and fast.
func (p Pattern) Automorphisms() [][]int {
	perm := make([]int, p.n)
	used := make([]bool, p.n)
	var out [][]int
	degs := make([]int, p.n)
	for v := range degs {
		degs[v] = p.Degree(v)
	}
	var rec func(pos int)
	rec = func(pos int) {
		if pos == p.n {
			cp := make([]int, p.n)
			copy(cp, perm)
			out = append(out, cp)
			return
		}
		for cand := 0; cand < p.n; cand++ {
			if used[cand] || degs[cand] != degs[pos] {
				continue
			}
			ok := true
			for prev := 0; prev < pos; prev++ {
				if p.HasEdge(pos, prev) != p.HasEdge(cand, perm[prev]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[cand] = true
			perm[pos] = cand
			rec(pos + 1)
			used[cand] = false
		}
	}
	rec(0)
	return out
}

func trailingZeros16(m uint16) int {
	n := 0
	for m&1 == 0 {
		m >>= 1
		n++
	}
	return n
}
