package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomConnectedPattern draws a connected pattern with 3..6 vertices.
func randomConnectedPattern(rng *rand.Rand) (Pattern, bool) {
	n := 3 + rng.Intn(4)
	var edges [][2]int
	// Random spanning tree guarantees connectivity.
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{rng.Intn(v), v})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	p, err := NewPattern("rand", n, edges)
	if err != nil {
		return Pattern{}, false
	}
	return p, true
}

// Property: for any connected pattern, the stabilizer chain's orbit-size
// product equals |Aut| (the restriction set breaks exactly the
// automorphism group, no more, no less).
func TestStabilizerChainProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, ok := randomConnectedPattern(rng)
		if !ok {
			return true
		}
		auts := p.Automorphisms()
		group := auts
		product := 1
		for i := 0; i < p.N(); i++ {
			orbit := map[int]bool{}
			for _, a := range group {
				orbit[a[i]] = true
			}
			product *= len(orbit)
			var next [][]int
			for _, a := range group {
				if a[i] == i {
					next = append(next, a)
				}
			}
			group = next
		}
		return product == len(auts) && len(group) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: every random connected pattern yields a structurally valid
// schedule in both semantics: plans reference only earlier positions,
// stored references are marked, restriction bounds are well-formed, and
// the automorphism count divides n!.
func TestScheduleWellFormedProperty(t *testing.T) {
	f := func(seed int64, induced bool) bool {
		rng := rand.New(rand.NewSource(seed))
		p, ok := randomConnectedPattern(rng)
		if !ok {
			return true
		}
		s, err := BuildWith(p, BuildOptions{Induced: induced})
		if err != nil {
			return false
		}
		fact := 1
		for i := 2; i <= p.N(); i++ {
			fact *= i
		}
		if fact%s.AutomorphismCount != 0 {
			return false
		}
		for d := 1; d < s.Depth(); d++ {
			plan := s.Plans[d]
			refs := append([]Op{{Ref: plan.Base}}, plan.Steps...)
			for _, op := range refs {
				switch op.Ref.Kind {
				case RefNeighbor:
					if op.Ref.Pos < 0 || op.Ref.Pos >= d {
						return false
					}
				case RefStored:
					if op.Ref.Pos < 1 || op.Ref.Pos >= d || !s.Stored[op.Ref.Pos] {
						return false
					}
				}
			}
			for _, a := range plan.BoundBy {
				if a < 0 || a >= d {
					return false
				}
			}
			// Plans must cover every earlier adjacent position exactly
			// once across base+steps (counting stored prefixes).
			covered := map[int]bool{}
			var mark func(ref SetRef)
			mark = func(ref SetRef) {
				if ref.Kind == RefNeighbor {
					covered[ref.Pos] = true
					return
				}
				// Stored set at position pos realizes adjacency over
				// that position's own plan's requirement set.
				pos := ref.Pos
				for j := 0; j < pos; j++ {
					if s.Pattern.HasEdge(j, pos) {
						covered[j] = true
					}
				}
				// Recursively, a stored set covers everything its own
				// intersection chain covered for position pos.
				inner := s.Plans[pos]
				mark(inner.Base)
				for _, st := range inner.Steps {
					if !st.Sub {
						mark(st.Ref)
					}
				}
			}
			mark(plan.Base)
			for _, st := range plan.Steps {
				if !st.Sub {
					mark(st.Ref)
				}
			}
			for j := 0; j < d; j++ {
				if s.Pattern.HasEdge(j, d) && !covered[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
