package pattern

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// GraphShape summarizes the input-graph statistics the schedule optimizer
// needs. It deliberately mirrors what GraphPi's cost model consumes:
// scale and density.
type GraphShape struct {
	Vertices float64
	// EdgeProb is the probability that a uniformly random vertex pair is
	// adjacent (2E / V²).
	EdgeProb float64
}

// ShapeOf builds a GraphShape from vertex and edge counts.
func ShapeOf(vertices int, edges int64) GraphShape {
	v := float64(vertices)
	if v < 2 {
		v = 2
	}
	return GraphShape{
		Vertices: v,
		EdgeProb: math.Min(1, 2*float64(edges)/(v*v)),
	}
}

// EstimateCost predicts the relative exploration cost of a matching order
// under the Erdős–Rényi approximation GraphPi uses: the expected number
// of partial embeddings after matching positions 0..i is
//
//	V^(i+1) · p^(edges within the prefix) / (prefix symmetry factor)
//
// and the total cost is the sum over prefixes (each partial embedding is
// one task). Lower is better. The estimate is returned in log space to
// stay finite for large graphs.
func EstimateCost(p Pattern, order []int, shape GraphShape) float64 {
	logV := math.Log(shape.Vertices)
	logP := math.Log(math.Max(shape.EdgeProb, 1e-12))
	total := math.Inf(-1) // log-sum-exp accumulator
	prefixEdges := 0
	for i := range order {
		for j := 0; j < i; j++ {
			if p.HasEdge(order[j], order[i]) {
				prefixEdges++
			}
		}
		logCount := float64(i+1)*logV + float64(prefixEdges)*logP
		// log-sum-exp(total, logCount)
		if logCount > total {
			total, logCount = logCount, total
		}
		total += math.Log1p(math.Exp(logCount - total))
	}
	return total
}

// Optimize searches all connected matching orders of p and builds the
// schedule with the lowest estimated cost for a graph of the given shape.
// It is the stand-in for GraphPi's schedule-space search (restriction
// generation is shared with BuildWith). Ties are broken toward the
// default greedy order for stability.
func Optimize(p Pattern, shape GraphShape, induced bool) (*Schedule, error) {
	if !p.Connected() {
		return nil, fmt.Errorf("pattern: %s is disconnected", p.Name())
	}
	n := p.N()
	best := connectedOrder(p)
	bestCost := EstimateCost(p, best, shape)

	perm := make([]int, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(perm) == n {
			cost := EstimateCost(p, perm, shape)
			if cost < bestCost-1e-12 {
				bestCost = cost
				best = append([]int(nil), perm...)
			}
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			// Connectivity: every non-first vertex must touch the prefix.
			if len(perm) > 0 {
				connected := false
				for _, u := range perm {
					if p.HasEdge(u, v) {
						connected = true
						break
					}
				}
				if !connected {
					continue
				}
			}
			used[v] = true
			perm = append(perm, v)
			rec()
			perm = perm[:len(perm)-1]
			used[v] = false
		}
	}
	rec()
	return BuildWith(p, BuildOptions{Induced: induced, Order: best})
}

// Parse builds a pattern from a compact edge-list string such as
// "0-1,1-2,2-0" (a triangle). Vertex ids must be 0..n-1 with n inferred
// from the largest id.
func Parse(name, spec string) (Pattern, error) {
	var edges [][2]int
	maxID := -1
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		uv := strings.SplitN(part, "-", 2)
		if len(uv) != 2 {
			return Pattern{}, fmt.Errorf("pattern: bad edge %q (want \"u-v\")", part)
		}
		u, err := strconv.Atoi(strings.TrimSpace(uv[0]))
		if err != nil {
			return Pattern{}, fmt.Errorf("pattern: bad vertex in %q: %v", part, err)
		}
		v, err := strconv.Atoi(strings.TrimSpace(uv[1]))
		if err != nil {
			return Pattern{}, fmt.Errorf("pattern: bad vertex in %q: %v", part, err)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, [2]int{u, v})
	}
	if maxID < 0 {
		return Pattern{}, fmt.Errorf("pattern: empty spec")
	}
	return NewPattern(name, maxID+1, edges)
}

// CompleteBipartite returns the K_{a,b} pattern (e.g. K_{2,2} is the
// 4-cycle).
func CompleteBipartite(a, b int) Pattern {
	var edges [][2]int
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			edges = append(edges, [2]int{i, a + j})
		}
	}
	return mustPattern(fmt.Sprintf("k%d%d", a, b), a+b, edges)
}

// Wheel returns a cycle of k vertices plus a hub adjacent to all of them.
func Wheel(k int) Pattern {
	var edges [][2]int
	for i := 0; i < k; i++ {
		edges = append(edges, [2]int{i, (i + 1) % k})
		edges = append(edges, [2]int{i, k})
	}
	return mustPattern(fmt.Sprintf("wheel%d", k), k+1, edges)
}
