package pattern

import (
	"strings"
	"testing"
)

func TestNamedPatternShapes(t *testing.T) {
	cases := []struct {
		p           Pattern
		n, edges    int
		autCount    int
		connected   bool
		hasVVariant bool
	}{
		{Triangle(), 3, 3, 6, true, false},
		{FourClique(), 4, 6, 24, true, false},
		{FiveClique(), 5, 10, 120, true, false},
		{TailedTriangle(), 4, 4, 2, true, true},
		{Diamond(), 4, 5, 4, true, true},
		{FourCycle(), 4, 4, 8, true, true},
		{House(), 5, 6, 2, true, true},
		{StarN(3), 4, 3, 6, true, true},
		{PathN(4), 4, 3, 2, true, true},
		{CycleN(5), 5, 5, 10, true, true},
	}
	for _, c := range cases {
		if c.p.N() != c.n {
			t.Errorf("%s: N = %d, want %d", c.p.Name(), c.p.N(), c.n)
		}
		if c.p.NumEdges() != c.edges {
			t.Errorf("%s: edges = %d, want %d", c.p.Name(), c.p.NumEdges(), c.edges)
		}
		if got := len(c.p.Automorphisms()); got != c.autCount {
			t.Errorf("%s: |Aut| = %d, want %d", c.p.Name(), got, c.autCount)
		}
		if c.p.Connected() != c.connected {
			t.Errorf("%s: Connected = %v", c.p.Name(), c.p.Connected())
		}
		if hasInducedVariant(c.p) != c.hasVVariant {
			t.Errorf("%s: hasInducedVariant = %v, want %v", c.p.Name(), hasInducedVariant(c.p), c.hasVVariant)
		}
	}
}

func TestNewPatternValidation(t *testing.T) {
	if _, err := NewPattern("bad", 0, nil); err == nil {
		t.Error("accepted empty pattern")
	}
	if _, err := NewPattern("bad", 9, nil); err == nil {
		t.Error("accepted oversized pattern")
	}
	if _, err := NewPattern("bad", 2, [][2]int{{0, 2}}); err == nil {
		t.Error("accepted out-of-range edge")
	}
	if _, err := NewPattern("bad", 2, [][2]int{{1, 1}}); err == nil {
		t.Error("accepted self loop")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"tc", "tt", "tt_e", "tt_v", "4cl", "5cl", "dia", "dia_e", "4cyc_v", "house"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("ByName accepted nonsense")
	}
}

func TestAutomorphismsAreAutomorphisms(t *testing.T) {
	for _, p := range []Pattern{Diamond(), FourCycle(), House(), TailedTriangle()} {
		for _, a := range p.Automorphisms() {
			for u := 0; u < p.N(); u++ {
				for v := u + 1; v < p.N(); v++ {
					if p.HasEdge(u, v) != p.HasEdge(a[u], a[v]) {
						t.Fatalf("%s: %v is not an automorphism", p.Name(), a)
					}
				}
			}
		}
	}
}

func TestDisconnectedPatternRejected(t *testing.T) {
	p, err := NewPattern("two-edges", 4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Connected() {
		t.Fatal("disconnected pattern reported connected")
	}
	if _, err := Build(p); err == nil {
		t.Fatal("Build accepted disconnected pattern")
	}
}

func TestBuildCliqueSchedule(t *testing.T) {
	s, err := Build(FourClique())
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 4 {
		t.Fatalf("depth = %d", s.Depth())
	}
	if s.AutomorphismCount != 24 {
		t.Fatalf("|Aut| = %d", s.AutomorphismCount)
	}
	// Clique schedule: C1 = N(v0); Cd = C(d-1) ∩ N(v_{d-1}); total order
	// restriction chain.
	if s.Plans[1].Base.Kind != RefNeighbor || s.Plans[1].Base.Pos != 0 || len(s.Plans[1].Steps) != 0 {
		t.Errorf("C1 plan = %+v", s.Plans[1])
	}
	for d := 2; d < 4; d++ {
		p := s.Plans[d]
		if p.Base.Kind != RefStored || p.Base.Pos != d-1 {
			t.Errorf("C%d base = %+v, want stored C%d", d, p.Base, d-1)
		}
		if len(p.Steps) != 1 || p.Steps[0].Sub || p.Steps[0].Ref.Kind != RefNeighbor || p.Steps[0].Ref.Pos != d-1 {
			t.Errorf("C%d steps = %+v", d, p.Steps)
		}
		if len(p.BoundBy) == 0 {
			t.Errorf("C%d has no symmetry bound", d)
		}
	}
	// 3 + 2 + 1 restrictions for a total order on 4 vertices.
	if len(s.Restrictions) != 6 {
		t.Errorf("restrictions = %v", s.Restrictions)
	}
	if !s.Stored[1] || !s.Stored[2] {
		t.Errorf("stored flags = %v", s.Stored)
	}
	if s.Stored[3] {
		t.Error("last position marked stored")
	}
}

func TestBuildDiamondReusesSet(t *testing.T) {
	s, err := Build(Diamond())
	if err != nil {
		t.Fatal(err)
	}
	// Diamond: C3 must alias C2 (two apex vertices drawn from the same
	// candidate set) with a v3<v2 restriction.
	p3 := s.Plans[3]
	if p3.Base.Kind != RefStored || p3.Base.Pos != 2 || len(p3.Steps) != 0 {
		t.Fatalf("diamond C3 plan = base %v steps %v, want alias of C2", p3.Base, p3.Steps)
	}
	found := false
	for _, a := range p3.BoundBy {
		if a == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("diamond C3 lacks v3<v2 bound: %+v", p3)
	}
}

func TestBuildInducedAddsSubtractions(t *testing.T) {
	sE, err := Build(Diamond())
	if err != nil {
		t.Fatal(err)
	}
	sV, err := BuildWith(Diamond(), BuildOptions{Induced: true})
	if err != nil {
		t.Fatal(err)
	}
	subs := func(s *Schedule) int {
		n := 0
		for _, p := range s.Plans {
			for _, op := range p.Steps {
				if op.Sub {
					n++
				}
			}
		}
		return n
	}
	if subs(sE) != 0 {
		t.Errorf("edge-induced diamond has %d subtractions", subs(sE))
	}
	if subs(sV) == 0 {
		t.Error("vertex-induced diamond has no subtractions")
	}
	if !strings.HasSuffix(sV.Name, "_v") || !strings.HasSuffix(sE.Name, "_e") {
		t.Errorf("names = %q, %q", sV.Name, sE.Name)
	}
	// Cliques have no non-edges: no _e/_v suffix.
	sc, _ := Build(Triangle())
	if sc.Name != "tc" {
		t.Errorf("triangle schedule name = %q", sc.Name)
	}
}

func TestBuildWithExplicitOrder(t *testing.T) {
	// Force the tail of the tailed triangle to be matched second.
	p := TailedTriangle()
	s, err := BuildWith(p, BuildOptions{Order: []int{0, 3, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 4 {
		t.Fatal("bad depth")
	}
	// An order whose second vertex is disconnected must be rejected.
	if _, err := BuildWith(p, BuildOptions{Order: []int{1, 3, 0, 2}}); err == nil {
		t.Error("accepted disconnected order (vertex 3 not adjacent to 1)")
	}
	if _, err := BuildWith(p, BuildOptions{Order: []int{0, 0, 1, 2}}); err == nil {
		t.Error("accepted non-permutation order")
	}
}

func TestEveryPlanConnected(t *testing.T) {
	for _, p := range []Pattern{Triangle(), FourClique(), FiveClique(), TailedTriangle(), Diamond(), FourCycle(), House(), CycleN(5), PathN(5), StarN(4)} {
		for _, induced := range []bool{false, true} {
			s, err := BuildWith(p, BuildOptions{Induced: induced})
			if err != nil {
				t.Fatalf("%s induced=%v: %v", p.Name(), induced, err)
			}
			for d := 1; d < s.Depth(); d++ {
				plan := s.Plans[d]
				if plan.Base.Kind == RefStored && (plan.Base.Pos < 1 || plan.Base.Pos >= d) {
					t.Errorf("%s: C%d stored base out of range: %d", s.Name, d, plan.Base.Pos)
				}
				if plan.Base.Kind == RefStored && !s.Stored[plan.Base.Pos] {
					t.Errorf("%s: C%d references unstored C%d", s.Name, d, plan.Base.Pos)
				}
				for _, op := range plan.Steps {
					if op.Ref.Kind == RefNeighbor && (op.Ref.Pos < 0 || op.Ref.Pos >= d) {
						t.Errorf("%s: C%d step references future position %d", s.Name, d, op.Ref.Pos)
					}
				}
				for _, a := range plan.BoundBy {
					if a < 0 || a >= d {
						t.Errorf("%s: C%d bound by future position %d", s.Name, d, a)
					}
				}
			}
		}
	}
}

func TestScheduleString(t *testing.T) {
	s, _ := Build(FourClique())
	str := s.String()
	for _, want := range []string{"4cl", "C1", "C3", "∩", "stored"} {
		if !strings.Contains(str, want) {
			t.Errorf("schedule string missing %q:\n%s", want, str)
		}
	}
}

func TestRestrictionCountMatchesGroupOrder(t *testing.T) {
	// The product over chain steps of orbit sizes must equal |Aut|.
	for _, p := range []Pattern{Triangle(), FourClique(), Diamond(), FourCycle(), TailedTriangle(), House(), CycleN(5), CycleN(6)} {
		auts := p.Automorphisms()
		group := auts
		product := 1
		for i := 0; i < p.N(); i++ {
			orbit := map[int]bool{}
			for _, a := range group {
				orbit[a[i]] = true
			}
			product *= len(orbit)
			var next [][]int
			for _, a := range group {
				if a[i] == i {
					next = append(next, a)
				}
			}
			group = next
		}
		if product != len(auts) {
			t.Errorf("%s: orbit-size product %d != |Aut| %d", p.Name(), product, len(auts))
		}
	}
}
