package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Restriction is a symmetry-breaking constraint between two matching
// positions: the vertex matched at position Later must have a smaller id
// than the vertex matched at position Earlier (the "break on u_k > u_{k-1}"
// style of Algorithm 1). Because candidate sets are sorted ascending, the
// constraint truncates a candidate set to a prefix via binary search.
type Restriction struct {
	Earlier, Later int
}

// RefKind distinguishes the two sources a set operand can come from.
type RefKind int

const (
	// RefNeighbor reads the graph adjacency list of the vertex matched
	// at the given position (CSR data, served by L2/DRAM in the
	// simulator).
	RefNeighbor RefKind = iota
	// RefStored reads the materialized candidate set out of which the
	// given position was matched (intermediate data, served by L1).
	RefStored
)

// SetRef names one input set of a set operation.
type SetRef struct {
	Kind RefKind
	// Pos is a matching position. For RefNeighbor the operand is
	// N(v_Pos); for RefStored it is the candidate set that position Pos
	// was enumerated from (produced by the task at position Pos-1).
	Pos int
}

func (r SetRef) String() string {
	if r.Kind == RefNeighbor {
		return fmt.Sprintf("N(v%d)", r.Pos)
	}
	return fmt.Sprintf("C%d", r.Pos)
}

// Op is one fold step of a candidate-set computation.
type Op struct {
	Sub bool // false: intersect, true: subtract
	Ref SetRef
}

// Plan describes how to compute the candidate set for one matching
// position from the partial embedding.
type Plan struct {
	// Base is the starting set of the fold.
	Base SetRef
	// Steps are applied left to right to the base.
	Steps []Op
	// BoundBy lists earlier positions a whose matched vertex upper-
	// bounds this position (restriction Later=this, Earlier=a).
	BoundBy []int
	// Distinct lists earlier positions whose matched vertex could
	// appear in the candidate set and must be skipped explicitly
	// (earlier positions not pattern-adjacent to this one).
	Distinct []int
}

// Schedule is an executable pattern-aware mining schedule: a matching
// order (implicit: the schedule's pattern is already reindexed so position
// i matches pattern vertex i), per-position candidate plans, and symmetry-
// breaking restrictions.
type Schedule struct {
	// Pattern is the reindexed pattern; position i of the matching order
	// corresponds to its vertex i.
	Pattern Pattern
	// Name is the workload name, e.g. "4cyc_v".
	Name string
	// Induced selects vertex-induced semantics (pattern non-edges must
	// be absent in the graph) instead of edge-induced.
	Induced bool
	// Order maps matching position -> original pattern vertex.
	Order []int
	// Plans[d] computes the candidate set for position d (1 ≤ d < N).
	// Plans[0] is the zero Plan: position 0 enumerates all graph
	// vertices.
	Plans []Plan
	// Stored[d] reports whether the candidate set for position d must
	// be materialized and retained because a deeper plan reads it as
	// RefStored. The last position's candidates are never stored.
	Stored []bool
	// Restrictions is the full symmetry-breaking set; BoundBy fields are
	// derived from it.
	Restrictions []Restriction
	// AutomorphismCount is |Aut(pattern)|; every embedding class has
	// exactly one representative surviving the restrictions.
	AutomorphismCount int
}

// Depth returns the number of matching positions (pattern size).
func (s *Schedule) Depth() int { return s.Pattern.N() }

// BuildOptions configures schedule generation.
type BuildOptions struct {
	// Induced selects vertex-induced semantics.
	Induced bool
	// Order forces a specific matching order (original pattern vertex
	// ids). If nil, a greedy connectivity order is chosen.
	Order []int
}

// Build generates a schedule for p with default (edge-induced) options.
func Build(p Pattern) (*Schedule, error) {
	return BuildWith(p, BuildOptions{})
}

// BuildWith generates a schedule for p.
//
// The pipeline mirrors what GraphPi does for the evaluated patterns:
//
//  1. pick a connected matching order (greedy: max connectivity to the
//     chosen prefix, tie-broken by higher degree),
//  2. reindex the pattern by that order,
//  3. compute symmetry-breaking restrictions by a stabilizer chain over
//     the automorphism group (exactly one representative per embedding
//     class survives),
//  4. emit per-position candidate plans with intermediate-result reuse:
//     each plan starts from the deepest stored candidate set whose
//     defining operations are a subset of the required ones.
func BuildWith(p Pattern, opts BuildOptions) (*Schedule, error) {
	n := p.N()
	if n < 2 {
		return nil, fmt.Errorf("pattern: schedule needs >= 2 vertices, have %d", n)
	}
	if !p.Connected() {
		return nil, fmt.Errorf("pattern: %s is disconnected; schedules require connected patterns", p.Name())
	}
	order := opts.Order
	if order == nil {
		order = connectedOrder(p)
	} else if err := checkConnectedOrder(p, order); err != nil {
		return nil, err
	}
	rp, err := p.Relabel(order)
	if err != nil {
		return nil, err
	}
	auts := rp.Automorphisms()
	restrictions := stabilizerChainRestrictions(rp, auts)

	s := &Schedule{
		Pattern:           rp,
		Name:              p.Name(),
		Induced:           opts.Induced,
		Order:             order,
		Plans:             make([]Plan, n),
		Stored:            make([]bool, n),
		Restrictions:      restrictions,
		AutomorphismCount: len(auts),
	}
	if opts.Induced {
		s.Name += "_v"
	} else if hasInducedVariant(p) {
		s.Name += "_e"
	}

	// adjSet[d] / nonAdjSet[d]: earlier positions (non-)adjacent to d.
	adjSet := make([]uint16, n)
	nonAdjSet := make([]uint16, n)
	for d := 1; d < n; d++ {
		for j := 0; j < d; j++ {
			if rp.HasEdge(j, d) {
				adjSet[d] |= 1 << uint(j)
			} else {
				nonAdjSet[d] |= 1 << uint(j)
			}
		}
		if adjSet[d] == 0 {
			return nil, fmt.Errorf("pattern: matching order leaves position %d disconnected", d)
		}
	}

	for d := 1; d < n; d++ {
		needAdj := adjSet[d]
		needSub := uint16(0)
		if opts.Induced {
			needSub = nonAdjSet[d]
		}
		// Reuse: deepest earlier position d2 whose stored set's
		// operations are a subset of ours. Position d2's candidate set
		// realizes intersections over adjSet[d2] and (if induced)
		// subtractions over nonAdjSet[d2]; both must be subsets and it
		// must not be position d itself or later.
		best := -1
		for d2 := d - 1; d2 >= 1; d2-- {
			sub2 := uint16(0)
			if opts.Induced {
				sub2 = nonAdjSet[d2]
			}
			if adjSet[d2]&^needAdj == 0 && sub2&^needSub == 0 {
				best = d2
				break
			}
		}
		plan := Plan{}
		remainingAdj := needAdj
		remainingSub := needSub
		if best >= 1 {
			plan.Base = SetRef{Kind: RefStored, Pos: best}
			remainingAdj &^= adjSet[best]
			if opts.Induced {
				remainingSub &^= nonAdjSet[best]
			}
			s.Stored[best] = true
		} else {
			// Start from the neighbor set of one adjacent earlier
			// position; prefer the latest for better locality.
			j := highestBit(remainingAdj)
			plan.Base = SetRef{Kind: RefNeighbor, Pos: j}
			remainingAdj &^= 1 << uint(j)
		}
		for m := remainingAdj; m != 0; m &= m - 1 {
			j := trailingZeros16(m)
			plan.Steps = append(plan.Steps, Op{Ref: SetRef{Kind: RefNeighbor, Pos: j}})
		}
		for m := remainingSub; m != 0; m &= m - 1 {
			j := trailingZeros16(m)
			plan.Steps = append(plan.Steps, Op{Sub: true, Ref: SetRef{Kind: RefNeighbor, Pos: j}})
		}
		for _, r := range restrictions {
			if r.Later == d {
				plan.BoundBy = append(plan.BoundBy, r.Earlier)
			}
		}
		for m := nonAdjSet[d]; m != 0; m &= m - 1 {
			plan.Distinct = append(plan.Distinct, trailingZeros16(m))
		}
		s.Plans[d] = plan
	}
	return s, nil
}

// hasInducedVariant reports whether the paper distinguishes _e and _v
// versions (patterns with at least one non-edge).
func hasInducedVariant(p Pattern) bool {
	return p.NumEdges() < p.N()*(p.N()-1)/2
}

// connectedOrder greedily picks a matching order: start from a max-degree
// vertex; repeatedly append the vertex with the most neighbors in the
// prefix, breaking ties by higher pattern degree then lower id. For the
// paper's patterns this reproduces the standard GraphPi-style orders
// (e.g. diamond starts with the shared edge).
func connectedOrder(p Pattern) []int {
	n := p.N()
	order := make([]int, 0, n)
	inOrder := uint16(0)
	pick := func() int {
		best, bestConn, bestDeg := -1, -1, -1
		for v := 0; v < n; v++ {
			if inOrder&(1<<uint(v)) != 0 {
				continue
			}
			conn := 0
			for m := p.adj[v] & inOrder; m != 0; m &= m - 1 {
				conn++
			}
			if len(order) > 0 && conn == 0 {
				continue
			}
			deg := p.Degree(v)
			if conn > bestConn || (conn == bestConn && deg > bestDeg) {
				best, bestConn, bestDeg = v, conn, deg
			}
		}
		return best
	}
	for len(order) < n {
		v := pick()
		if v < 0 {
			break // disconnected; caller validates
		}
		order = append(order, v)
		inOrder |= 1 << uint(v)
	}
	return order
}

func checkConnectedOrder(p Pattern, order []int) error {
	if len(order) != p.N() {
		return fmt.Errorf("pattern: order length %d != pattern size %d", len(order), p.N())
	}
	seen := make([]bool, p.N())
	for i, v := range order {
		if v < 0 || v >= p.N() || seen[v] {
			return fmt.Errorf("pattern: order is not a permutation")
		}
		seen[v] = true
		if i == 0 {
			continue
		}
		connected := false
		for j := 0; j < i; j++ {
			if p.HasEdge(order[j], v) {
				connected = true
				break
			}
		}
		if !connected {
			return fmt.Errorf("pattern: order position %d (vertex %d) not connected to prefix", i, v)
		}
	}
	return nil
}

// stabilizerChainRestrictions derives symmetry-breaking restrictions from
// the automorphism group of the (already reindexed) pattern: walking
// positions in matching order, each position i contributes restrictions
// v_j < v_i for every j > i in i's orbit under the current stabilizer,
// after which the group is restricted to permutations fixing i. Exactly
// one member of each automorphism orbit of an embedding satisfies all
// restrictions (verified by property tests against brute force).
func stabilizerChainRestrictions(p Pattern, auts [][]int) []Restriction {
	var out []Restriction
	group := auts
	for i := 0; i < p.N(); i++ {
		orbit := map[int]bool{}
		for _, a := range group {
			orbit[a[i]] = true
		}
		var js []int
		for j := range orbit {
			if j > i {
				js = append(js, j)
			}
		}
		sort.Ints(js)
		for _, j := range js {
			out = append(out, Restriction{Earlier: i, Later: j})
		}
		next := group[:0:0]
		for _, a := range group {
			if a[i] == i {
				next = append(next, a)
			}
		}
		group = next
	}
	return out
}

func highestBit(m uint16) int {
	h := -1
	for mm := m; mm != 0; mm &= mm - 1 {
		h = trailingZeros16(mm)
	}
	return h
}

// String renders the schedule in a compact human-readable form, e.g.
//
//	4cl order=[0 1 2 3] |Aut|=24
//	  C1 = N(v0)
//	  C2 = C1 ∩ N(v1)  [v2<v1]
//	  C3 = C2 ∩ N(v2)  [v3<v2]
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s order=%v |Aut|=%d induced=%v\n", s.Name, s.Order, s.AutomorphismCount, s.Induced)
	for d := 1; d < s.Depth(); d++ {
		p := s.Plans[d]
		fmt.Fprintf(&b, "  C%d = %s", d, p.Base)
		for _, op := range p.Steps {
			sym := "∩"
			if op.Sub {
				sym = "\\"
			}
			fmt.Fprintf(&b, " %s %s", sym, op.Ref)
		}
		if len(p.BoundBy) > 0 {
			b.WriteString("  [")
			for i, a := range p.BoundBy {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "v%d<v%d", d, a)
			}
			b.WriteString("]")
		}
		if s.Stored[d] {
			b.WriteString("  (stored)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
