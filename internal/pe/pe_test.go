package pe_test

import (
	"testing"

	"shogun/internal/gen"
	"shogun/internal/mem"
	"shogun/internal/mine"
	"shogun/internal/pattern"
	"shogun/internal/pe"
	"shogun/internal/policy"
	"shogun/internal/sim"
	"shogun/internal/task"
)

// flatMem is a fixed-latency memory level.
type flatMem struct{ lat sim.Time }

func (f flatMem) Access(now sim.Time, addr int64, write bool) sim.Time { return now + f.lat }

func buildPE(t *testing.T, cfg pe.Config, w *task.Workload) *pe.PE {
	t.Helper()
	eng := sim.NewEngine()
	p, err := pe.New(0, eng, cfg, w, flatMem{lat: 30})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runWorkload(t *testing.T, cfg pe.Config, pol func(*task.Workload, *policy.Tokens) pe.Policy, g interface {
	NumVertices() int
}, w *task.Workload) *pe.PE {
	t.Helper()
	p := buildPE(t, cfg, w)
	tokens := policy.NewTokens(0, 1, w.S.Depth(), cfg.Width)
	p.SetPolicy(pol(w, tokens))
	p.Kick()
	p.Eng.Run()
	if p.HasWork() {
		t.Fatal("PE drained with pending work")
	}
	return p
}

func TestPEDrivesDFSPolicyToExactCount(t *testing.T) {
	g := gen.RMAT(128, 600, 0.6, 0.15, 0.15, 17)
	for _, pat := range []pattern.Pattern{pattern.Triangle(), pattern.FourClique(), pattern.Diamond()} {
		s, err := pattern.Build(pat)
		if err != nil {
			t.Fatal(err)
		}
		w := task.NewWorkload(g, s)
		want := mine.Count(g, s)
		p := runWorkload(t, pe.DefaultConfig(), func(w *task.Workload, tk *policy.Tokens) pe.Policy {
			return policy.NewDFS(w, tk, policy.AllRoots(g))
		}, g, w)
		if p.Embeddings != want {
			t.Errorf("%s: PE counted %d, want %d", s.Name, p.Embeddings, want)
		}
		if p.Eng.Now() <= 0 {
			t.Error("no simulated time elapsed")
		}
		if p.Slots.InUse() != 0 {
			t.Error("slots leaked")
		}
		if p.SPM.InUse() != 0 {
			t.Error("SPM lines leaked")
		}
	}
}

func TestWidthScalesParallelDFS(t *testing.T) {
	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 23)
	s, _ := pattern.Build(pattern.FourClique())
	run := func(width int) sim.Time {
		cfg := pe.DefaultConfig()
		cfg.Width = width
		w := task.NewWorkload(g, s)
		p := buildPE(t, cfg, w)
		tokens := policy.NewTokens(0, 1, s.Depth(), width)
		p.SetPolicy(policy.NewParallelDFS(w, tokens, policy.AllRoots(g), width))
		p.Kick()
		p.Eng.Run()
		return p.LastActive
	}
	w1, w8 := run(1), run(8)
	if float64(w1)/float64(w8) < 2 {
		t.Errorf("width 8 speedup only %.2fx over width 1 (%d vs %d)", float64(w1)/float64(w8), w1, w8)
	}
}

func TestMonitorSamplesAndConservativeMode(t *testing.T) {
	// A tiny L1 with a slow parent forces high window latencies; the
	// monitor must flip to conservative mode and inform the policy.
	g := gen.RMAT(512, 6000, 0.62, 0.14, 0.14, 31)
	s, _ := pattern.Build(pattern.FourCycle())
	cfg := pe.DefaultConfig()
	cfg.L1.SizeKB = 1
	cfg.MonitorPeriod = 256
	cfg.ConservLatThresh = 5

	w := task.NewWorkload(g, s)
	eng := sim.NewEngine()
	p, err := pe.New(0, eng, cfg, w, flatMem{lat: 120})
	if err != nil {
		t.Fatal(err)
	}
	tokens := policy.NewTokens(0, 1, s.Depth(), cfg.Width)
	spy := &conservativeSpy{Policy: policy.NewParallelDFS(w, tokens, policy.AllRoots(g), cfg.Width)}
	p.SetPolicy(spy)
	p.Kick()
	eng.Run()
	if p.ConservativeTransitions.Total == 0 {
		t.Fatal("monitor never transitioned despite forced thrashing")
	}
	if !spy.sawConservative {
		t.Fatal("policy was not informed of conservative mode")
	}
	// (LastSample may legitimately be empty at drain time: the final
	// monitor window sees no accesses.)
}

type conservativeSpy struct {
	pe.Policy
	sawConservative bool
}

func (c *conservativeSpy) SetConservative(on bool) {
	if on {
		c.sawConservative = true
	}
	c.Policy.SetConservative(on)
}

func TestSPMNeverSerializesBelowWidth(t *testing.T) {
	// Hub sets larger than the whole SPM must still stream: the per-task
	// reservation is capped at SPMLines/Width.
	g := gen.Clique(64) // every set is 63 ids = 4 lines; make SPM tiny
	s, _ := pattern.Build(pattern.FourClique())
	cfg := pe.DefaultConfig()
	cfg.SPMLines = 16 // window = 2 lines per task
	w := task.NewWorkload(g, s)
	want := mine.Count(g, s)
	p := runWorkload(t, cfg, func(w *task.Workload, tk *policy.Tokens) pe.Policy {
		return policy.NewParallelDFS(w, tk, policy.AllRoots(g), cfg.Width)
	}, g, w)
	if p.Embeddings != want {
		t.Fatalf("count %d != %d under SPM pressure", p.Embeddings, want)
	}
	if p.SPM.Peak() > cfg.SPMLines {
		t.Fatalf("SPM over-committed: peak %d > %d", p.SPM.Peak(), cfg.SPMLines)
	}
}

func TestIUPoolAccountsComputeWork(t *testing.T) {
	g := gen.Clique(32)
	s, _ := pattern.Build(pattern.FourClique())
	w := task.NewWorkload(g, s)
	p := runWorkload(t, pe.DefaultConfig(), func(w *task.Workload, tk *policy.Tokens) pe.Policy {
		return policy.NewDFS(w, tk, policy.AllRoots(g))
	}, g, w)
	if p.IUPool.Busy() == 0 {
		t.Fatal("no IU work accounted for clique intersections")
	}
	if p.DivPool.Busy() == 0 {
		t.Fatal("no divider work accounted")
	}
	if p.IUUtilization(p.LastActive) <= 0 {
		t.Fatal("IU utilization not reported")
	}
}

func TestL1SeesIntermediateTraffic(t *testing.T) {
	g := gen.Clique(32)
	s, _ := pattern.Build(pattern.FourClique())
	w := task.NewWorkload(g, s)
	p := runWorkload(t, pe.DefaultConfig(), func(w *task.Workload, tk *policy.Tokens) pe.Policy {
		return policy.NewDFS(w, tk, policy.AllRoots(g))
	}, g, w)
	if p.L1.Hits.Total+p.L1.Misses.Total == 0 {
		t.Fatal("L1 never accessed")
	}
	if p.IntermediateIn == 0 {
		t.Fatal("no intermediate input lines accounted (Table 2 metric)")
	}
}

func TestDefaultConfigSanity(t *testing.T) {
	cfg := pe.DefaultConfig()
	if cfg.Width != 8 || cfg.Dividers != 12 || cfg.IUs != 24 {
		t.Fatalf("Table 3 mismatch: %+v", cfg)
	}
	if cfg.SPMLines*mem.LineBytes != 16*1024 {
		t.Fatalf("SPM size %d bytes, want 16KB", cfg.SPMLines*mem.LineBytes)
	}
	if cfg.L1.SizeKB != 32 || cfg.L1.Ways != 4 {
		t.Fatalf("L1 config mismatch: %+v", cfg.L1)
	}
}
