// Package pe models one processing element: the five-unit pipeline of
// Fig. 4(a) (decoder, dispatch, issue, FUs, spawn), the private L1 cache
// and scratchpad, the divider/intersection-unit pools, execution-width
// slots, and the locality monitor that drives Shogun's conservative mode.
//
// The PE is policy-agnostic: a Policy supplies tasks in whatever order its
// scheduling scheme allows (DFS, BFS, pseudo-DFS, parallel-DFS, or the
// Shogun task tree) and is notified on completion to spawn/extend.
package pe

import (
	"fmt"

	"shogun/internal/mem"
	"shogun/internal/sim"
	"shogun/internal/task"
	"shogun/internal/telemetry"
	"shogun/internal/trace"
)

// Config collects the PE parameters of Table 3.
type Config struct {
	Width    int // task execution width (concurrent tasks)
	Dividers int
	IUs      int

	IUCyclesPerPair      sim.Time // IU occupancy per segment pair
	DividerCyclesPerLine sim.Time // divider occupancy per input line

	DecodeLat   sim.Time
	DispatchLat sim.Time
	IssueLat    sim.Time
	// WritebackPerLine is the writeback-unit occupancy per output line.
	WritebackPerLine sim.Time
	// SpawnBase + SpawnPerChild×k is the spawn-unit occupancy for
	// generating k children. LeafCycles is the flat in-slot cost of
	// consuming the final candidate set as a count (size extraction and
	// boundary searches; counting workloads never enumerate the last
	// level).
	SpawnBase     sim.Time
	SpawnPerChild sim.Time
	LeafCycles    sim.Time

	SPMLines int

	L1 mem.CacheConfig

	// MonitorPeriod is the locality-monitor sampling window; the
	// conservative-mode thresholds are Table 3's transition conditions.
	MonitorPeriod     sim.Time
	ConservLatThresh  float64 // L1 window avg latency > this (cycles)
	ConservUtilThresh float64 // IU window utilization < this
}

// DefaultConfig mirrors Table 3.
func DefaultConfig() Config {
	return Config{
		Width:                8,
		Dividers:             12,
		IUs:                  24,
		IUCyclesPerPair:      4,
		DividerCyclesPerLine: 1,
		DecodeLat:            2,
		DispatchLat:          2,
		IssueLat:             1,
		WritebackPerLine:     1,
		SpawnBase:            2,
		SpawnPerChild:        1,
		LeafCycles:           2,
		SPMLines:             256,
		L1: mem.CacheConfig{
			Name:              "l1",
			SizeKB:            32,
			Ways:              4,
			HitLat:            2,
			WriteAllocNoFetch: true,
			MSHRs:             8,
		},
		MonitorPeriod: 2048,
		// Table 3 uses "L1 average access latency > 50 cycles"; the
		// threshold is rescaled to this model's miss penalty (~30-40
		// cycles to L2 vs the paper's deeper hierarchy) so it fires at
		// a comparable miss ratio (~25-30%).
		ConservLatThresh:  10,
		ConservUtilThresh: 0.5,
	}
}

// SpawnResult tells the PE what a completing task did in the spawn unit.
type SpawnResult struct {
	// Spawned is the number of child/extend tasks materialized now.
	Spawned int
	// Pruned is the number of candidate fetches abandoned by symmetry
	// pruning (they still occupy the spawn unit briefly).
	Pruned int
	// Leaves is the number of aggregated leaf tasks counted (for
	// counting workloads the final level is consumed as a set size in
	// the datapath, not enumerated).
	Leaves int
	// Embeddings found by this completion.
	Embeddings int64
}

// Policy is a task scheduling scheme driving one PE.
type Policy interface {
	// Name identifies the scheme.
	Name() string
	// Next returns the next task to execute together with the storage
	// slot for its output set, or ok=false when nothing is runnable
	// right now (barriers, empty tree, no tokens...). The PE calls it
	// only when an execution slot is free.
	Next(now sim.Time) (n *task.Node, slot int, ok bool)
	// OnComplete notifies the policy that a task finished its compute
	// and writeback; the policy updates its structures (spawn children,
	// extend, release barriers, recycle tokens) and reports the spawn-
	// unit work.
	OnComplete(n *task.Node, now sim.Time) SpawnResult
	// Pending reports whether the policy still has unfinished work
	// (excluding future roots it might pull).
	Pending() bool
	// SetConservative informs the policy of the locality monitor's
	// conservative-mode decision (§3.2.3). Only Shogun reacts.
	SetConservative(on bool)
}

// MonitorSample is one locality-monitor observation, exported to the
// accelerator for search-tree-merging decisions.
type MonitorSample struct {
	L1AvgLat  float64
	L1HasData bool
	IUUtil    float64
}

// Actor ops for the PE's event callbacks (see sim.Engine.Post): the PE
// is a sim.Actor so its pipeline stages schedule without per-event
// closure allocation. Stage events carry their *inflight record as arg.
const (
	peOpKick = iota
	peOpDispatch
	peOpFinish
	peOpRelease
	peOpMonitor
)

// inflight is the per-task pipeline record threaded through
// execute → dispatch → finish → release as the event argument. Records
// are free-listed on the PE, so a steady-state run allocates none; the
// embedded reads array backs the task profile's Reads list (a fetch plan
// wider than the array falls back to an append allocation, which no
// shipped schedule triggers).
type inflight struct {
	next       *inflight
	n          *task.Node
	prof       task.Profile
	spmNeed    int
	slotStart  sim.Time
	stageStart sim.Time
	reads      [4]task.Read
}

// PE is one processing element.
type PE struct {
	ID  int
	Eng *sim.Engine
	Cfg Config

	L1     *mem.Cache // intermediate data
	L2Path mem.Level  // CSR data (bypasses L1)

	Slots *sim.Semaphore
	SPM   *sim.Semaphore

	decodeU, dispatchU, issueU, writebackU, spawnU *sim.Pool
	DivPool, IUPool                                *sim.Pool

	policy Policy
	w      *task.Workload
	flFree *inflight // inflight-record free list

	kickPending  bool
	conservative bool
	monitorOn    bool
	iuBusyAtRoll sim.Time

	// Stats. The seven Phase* accumulators are an exact partition of
	// each task's slot residency: every phase span starts where the
	// previous one ended, so per PE
	//
	//	ΣPhase* == ΣSlotResidency == Slots.OccupancyIntegral(end)
	//
	// — the cycle-attribution conservation law metrics.Verify checks.
	LastActive     sim.Time // completion time of the latest finished task
	PhaseDecode    sim.WindowStat
	PhaseSPM       sim.WindowStat
	PhaseFetch     sim.WindowStat
	PhaseCompute   sim.WindowStat
	PhaseWB        sim.WindowStat
	PhaseSpawnWait sim.WindowStat
	PhaseLeaf      sim.WindowStat
	SlotResidency  sim.WindowStat
	TasksExecuted  sim.Counter
	LeafTasks      sim.Counter
	PrunedFetches  sim.Counter
	Embeddings     int64
	IntermediateIn int64 // intermediate input lines (Table 2 numerator)
	// CSRLineReads counts graph-adjacency cache lines fetched over the
	// L2 path (every one crosses the NoC and lands in the L2).
	CSRLineReads int64
	isIdle       bool
	// Conservative-mode residency: conservEnter is the entry timestamp
	// while in the mode, ConservCycles the accumulated cycles of
	// completed conservative episodes.
	conservEnter  sim.Time
	ConservCycles sim.Time

	// OnIdle, when set, is invoked (once per transition) when the PE has
	// no running tasks and its policy has nothing runnable. The
	// accelerator uses it for root feeding and load-balance checks.
	OnIdle func(p *PE)
	// Tracer, when set, receives one event per completed task.
	Tracer trace.Tracer
	// LifetimeHist and QueueWaitHist, when non-nil, receive each task's
	// slot residency (dispatch→spawn-done) and its SPM+dispatch wait span.
	// Nil histograms make the observations free (nil-receiver no-ops).
	LifetimeHist  *telemetry.Histogram
	QueueWaitHist *telemetry.Histogram
	// ConservativeTransitions counts monitor-driven mode switches.
	ConservativeTransitions sim.Counter
	// LastSample is the most recent monitor observation.
	LastSample MonitorSample
}

// New builds a PE. l2path serves CSR reads and L1 misses are routed to the
// provided parent level via the L1 cache built here.
func New(id int, eng *sim.Engine, cfg Config, w *task.Workload, l2path mem.Level) (*PE, error) {
	l1cfg := cfg.L1
	l1cfg.Name = fmt.Sprintf("pe%d-l1", id)
	l1, err := mem.NewCache(l1cfg, l2path)
	if err != nil {
		return nil, err
	}
	p := &PE{
		ID:         id,
		Eng:        eng,
		Cfg:        cfg,
		L1:         l1,
		L2Path:     l2path,
		Slots:      sim.NewSemaphore(fmt.Sprintf("pe%d-slots", id), cfg.Width),
		SPM:        sim.NewSemaphore(fmt.Sprintf("pe%d-spm", id), cfg.SPMLines),
		decodeU:    sim.NewPool(fmt.Sprintf("pe%d-decode", id), 1),
		dispatchU:  sim.NewPool(fmt.Sprintf("pe%d-dispatch", id), 1),
		issueU:     sim.NewPool(fmt.Sprintf("pe%d-issue", id), 1),
		writebackU: sim.NewPool(fmt.Sprintf("pe%d-wb", id), 1),
		spawnU:     sim.NewPool(fmt.Sprintf("pe%d-spawn", id), 1),
		DivPool:    sim.NewPool(fmt.Sprintf("pe%d-div", id), cfg.Dividers),
		IUPool:     sim.NewPool(fmt.Sprintf("pe%d-iu", id), cfg.IUs),
		w:          w,
		isIdle:     true,
	}
	return p, nil
}

// SetPolicy installs the scheduling policy (must be called before Kick).
func (p *PE) SetPolicy(pol Policy) { p.policy = pol }

// Policy returns the installed policy.
func (p *PE) Policy() Policy { return p.policy }

// Workload returns the shared workload.
func (p *PE) Workload() *task.Workload { return p.w }

// Conservative reports the monitor's current mode.
func (p *PE) Conservative() bool { return p.conservative }

// ForceConservative flips conservative mode outside the monitor — the
// chaos harness's fault injection. It follows the same transition
// protocol as monitorTick, so the policy sees a well-formed mode change;
// the monitor may flip the mode back at its next tick.
func (p *PE) ForceConservative(on bool) {
	if p.conservative == on {
		return
	}
	p.noteConservFlip(on)
	p.conservative = on
	p.ConservativeTransitions.Inc(1)
	p.policy.SetConservative(on)
	if !on {
		p.Kick()
	}
}

// SetPerturb installs a service-time perturber on the PE's contended
// functional-unit pools (dividers and intersection units).
func (p *PE) SetPerturb(pr sim.Perturber) {
	p.DivPool.SetPerturb(pr)
	p.IUPool.SetPerturb(pr)
}

// Act dispatches the PE's event callbacks (sim.Actor). Stage ops carry
// the task's *inflight record; kick and monitor ops carry nil.
func (p *PE) Act(op int, arg any) {
	switch op {
	case peOpKick:
		p.trySchedule()
	case peOpDispatch:
		p.stageDispatch(arg.(*inflight))
	case peOpFinish:
		p.finish(arg.(*inflight))
	case peOpRelease:
		p.release(arg.(*inflight))
	case peOpMonitor:
		p.monitorTick()
	default:
		panic("pe: unknown actor op")
	}
}

func (p *PE) allocInflight() *inflight {
	fl := p.flFree
	if fl != nil {
		p.flFree = fl.next
		fl.next = nil
		return fl
	}
	return &inflight{}
}

func (p *PE) recycleInflight(fl *inflight) {
	fl.n = nil
	fl.prof = task.Profile{}
	fl.next = p.flFree
	p.flFree = fl
}

// Kick schedules a scheduling attempt. Safe to call repeatedly.
func (p *PE) Kick() {
	if p.kickPending {
		return
	}
	p.kickPending = true
	p.Eng.PostAfter(0, p, peOpKick, nil)
}

func (p *PE) trySchedule() {
	p.kickPending = false
	now := p.Eng.Now()
	for p.Slots.Available() > 0 {
		n, slot, ok := p.policy.Next(now)
		if !ok {
			break
		}
		if !p.Slots.TryAcquire(now, 1) {
			panic("pe: slot vanished")
		}
		p.noteBusy()
		p.execute(n, slot)
	}
	p.ensureMonitor()
	p.maybeIdle()
}

func (p *PE) noteBusy() {
	p.isIdle = false
}

func (p *PE) maybeIdle() {
	if p.Slots.InUse() == 0 && !p.isIdle {
		p.isIdle = true
		if p.OnIdle != nil {
			p.OnIdle(p)
		}
	} else if p.Slots.InUse() == 0 && p.isIdle && p.OnIdle != nil {
		// Already idle but re-kicked with no work: let the accelerator
		// reconsider (e.g. a split may now be possible).
		p.OnIdle(p)
	}
}

// Idle reports whether no task occupies a slot.
func (p *PE) Idle() bool { return p.Slots.InUse() == 0 }

// HasWork reports whether the policy holds unfinished work.
func (p *PE) HasWork() bool { return p.policy.Pending() }

// execute plays one task through the pipeline. The data-side effects
// (candidate set computation) happen immediately; timing is modeled with
// busy-until pools and a completion event.
func (p *PE) execute(n *task.Node, slot int) {
	now := p.Eng.Now()
	fl := p.allocInflight()
	fl.n = n
	fl.slotStart = now
	fl.prof = p.w.ExecuteReuse(n, slot, fl.reads[:0])
	p.TasksExecuted.Inc(1)
	p.IntermediateIn += int64(fl.prof.IntermediateLines)

	// Decode.
	tDec := p.decodeU.Acquire(now, 1) + p.Cfg.DecodeLat
	p.PhaseDecode.Add(tDec - now)

	// Dispatch: allocate SPM lines for inputs + output, possibly
	// waiting. Large sets do not reserve their whole footprint: the
	// pipeline streams them through the SPM in multiple rounds (§3.1,
	// following FINGERS), so a task's reservation is capped at its
	// slot's streaming window and SPM pressure never serializes the PE
	// below its execution width.
	spmNeed := fl.prof.InputLines + fl.prof.OutputLines
	if window := p.Cfg.SPMLines / p.Cfg.Width; spmNeed > window {
		spmNeed = window
	}
	fl.spmNeed = spmNeed
	fl.stageStart = tDec
	p.Eng.Post(tDec, p, peOpDispatch, fl)
}

// stageDispatch runs the dispatch stage. fl.stageStart is the
// decode-stage completion time: SPM-wait retries re-enter here at later
// times, and the SPM phase must be charged from the original stage entry
// so the phase accumulators stay an exact partition of slot residency.
func (p *PE) stageDispatch(fl *inflight) {
	now := p.Eng.Now()
	if fl.spmNeed > 0 && !p.SPM.AcquireOrWaitActor(now, fl.spmNeed, p, peOpDispatch, fl) {
		return // re-entered when SPM frees
	}
	prof := &fl.prof
	tDisp := p.dispatchU.Acquire(now, 1) + p.Cfg.DispatchLat
	p.PhaseSPM.Add(tDisp - fl.stageStart)
	p.QueueWaitHist.Observe(int64(tDisp - fl.stageStart))

	// Fetch inputs in parallel: CSR reads bypass L1 (L2 path),
	// intermediate reads go through L1.
	dataReady := tDisp
	for _, r := range prof.Reads {
		var done sim.Time
		if r.Class == task.ReadCSR {
			done = mem.AccessRange(p.L2Path, tDisp, r.Addr, r.Bytes, false)
			p.CSRLineReads += mem.Lines(r.Addr, r.Bytes)
		} else {
			done = mem.AccessRange(p.L1, tDisp, r.Addr, r.Bytes, false)
		}
		if done > dataReady {
			dataReady = done
		}
	}

	p.PhaseFetch.Add(dataReady - tDisp)

	// Issue. The issue/writeback/spawn units sustain one operation per
	// cycle — far above task arrival rates — so they are modeled as
	// latency (their pools only account busy cycles for utilization
	// reporting). Reserving them with busy-until state at non-monotone
	// timestamps would create false head-of-line serialization.
	p.issueU.Acquire(dataReady, 1)
	tIssue := dataReady + p.Cfg.IssueLat

	// Compute: dividers segment the inputs (one slot per input line),
	// IUs process the segment pairs (one slot each). Both banks are
	// reserved as a batch at a common issue time — exactly equivalent
	// to per-item greedy acquisition, without the per-item heap walk.
	tComp := tIssue
	if prof.SegPairs > 0 {
		divDone := p.DivPool.AcquireBatch(tIssue, p.Cfg.DividerCyclesPerLine, prof.InputLines)
		tComp = p.IUPool.AcquireBatch(divDone, p.Cfg.IUCyclesPerPair, prof.SegPairs)
	}

	// Writeback: store the output set to L1 (intermediate region).
	tWB := tComp
	if prof.OutBytes > 0 && fl.n.Slot >= 0 {
		occ := p.Cfg.WritebackPerLine * sim.Time(prof.OutputLines)
		p.writebackU.Acquire(tComp, occ)
		wbDone := mem.AccessRange(p.L1, tComp, prof.OutAddr, prof.OutBytes, true)
		if wbDone > tWB {
			tWB = wbDone
		}
		if tComp+occ > tWB {
			tWB = tComp + occ
		}
	}

	// Compute is charged from dataReady so the issue latency is part of
	// the compute span (the phase partition must be gap-free).
	p.PhaseCompute.Add(tComp - dataReady)
	p.PhaseWB.Add(tWB - tComp)
	p.Eng.Post(tWB, p, peOpFinish, fl)
}

func (p *PE) finish(fl *inflight) {
	now := p.Eng.Now()
	n := fl.n
	res := p.policy.OnComplete(n, now)
	p.Embeddings += res.Embeddings
	p.LeafTasks.Inc(int64(res.Leaves))
	p.PrunedFetches.Inc(int64(res.Pruned))

	// Child generation serializes through the spawn unit; aggregated
	// leaf-task processing runs within the completing task's execution
	// slot (leaf batches of different parents proceed in parallel across
	// the PE's width), consuming the final candidate set one 16-id line
	// per LeafCycles.
	// The spawn unit is a multi-stage pipeline: SpawnBase is its latency
	// (paid once per completion) while occupancy — and thus throughput —
	// is one slot per generated child. Extends (one sibling per
	// completion) and bunch spawns therefore cost the same per child.
	occ := p.Cfg.SpawnPerChild * sim.Time(res.Spawned)
	if occ < 1 {
		occ = 1
	}
	p.spawnU.Acquire(now, occ)
	tDone := now + occ + p.Cfg.SpawnBase
	p.PhaseSpawnWait.Add(tDone - now)
	leafStart := tDone
	if res.Leaves+res.Pruned > 0 {
		// Counting the final level is a size extraction plus symmetry/
		// distinctness boundary searches: flat cost, no enumeration.
		tDone += p.Cfg.LeafCycles
	}
	p.PhaseLeaf.Add(tDone - leafStart)

	p.SlotResidency.Add(tDone - fl.slotStart)
	p.LifetimeHist.Observe(int64(tDone - fl.slotStart))
	if tDone > p.LastActive {
		p.LastActive = tDone
	}
	if p.Tracer != nil {
		p.Tracer.TaskDone(trace.Event{
			PE: p.ID, TreeID: n.TreeID, Depth: n.Depth, Vertex: int32(n.Vertex),
			Start: fl.slotStart, Done: tDone, Leaves: res.Leaves,
		})
	}
	p.Eng.Post(tDone, p, peOpRelease, fl)
}

// release returns the task's SPM lines and execution slot and recycles
// its inflight record.
func (p *PE) release(fl *inflight) {
	now := p.Eng.Now()
	spmHeld := fl.spmNeed
	p.recycleInflight(fl)
	if spmHeld > 0 {
		p.SPM.Release(now, spmHeld)
	}
	p.Slots.Release(now, 1)
	p.Kick()
}

// ensureMonitor starts the periodic locality monitor while the PE is busy.
func (p *PE) ensureMonitor() {
	if p.monitorOn || p.Cfg.MonitorPeriod <= 0 {
		return
	}
	if p.Slots.InUse() == 0 && !p.policy.Pending() {
		return
	}
	p.monitorOn = true
	p.iuBusyAtRoll = p.IUPool.Busy()
	p.Eng.PostAfter(p.Cfg.MonitorPeriod, p, peOpMonitor, nil)
}

func (p *PE) monitorTick() {
	p.monitorOn = false
	now := p.Eng.Now()

	avgLat, hasData := p.L1.WindowLatency()
	iuBusy := p.IUPool.Busy() - p.iuBusyAtRoll
	iuUtil := float64(iuBusy) / (float64(p.Cfg.MonitorPeriod) * float64(p.Cfg.IUs))
	if iuUtil > 1 {
		iuUtil = 1 // reservations extending beyond the window
	}
	p.LastSample = MonitorSample{L1AvgLat: avgLat, L1HasData: hasData, IUUtil: iuUtil}

	// Conservative-mode transition (Table 3): thrashing (high L1
	// latency) AND low PE throughput. Exit with hysteresis.
	if !p.conservative {
		if hasData && avgLat > p.Cfg.ConservLatThresh && iuUtil < p.Cfg.ConservUtilThresh {
			p.noteConservFlip(true)
			p.conservative = true
			p.ConservativeTransitions.Inc(1)
			p.policy.SetConservative(true)
		}
	} else {
		if !hasData || avgLat < 0.6*p.Cfg.ConservLatThresh {
			p.noteConservFlip(false)
			p.conservative = false
			p.ConservativeTransitions.Inc(1)
			p.policy.SetConservative(false)
			p.Kick()
		}
	}
	_ = now
	p.ensureMonitor()
}

// noteConservFlip accounts conservative-mode residency at a transition.
func (p *PE) noteConservFlip(on bool) {
	now := p.Eng.Now()
	if on {
		p.conservEnter = now
	} else {
		p.ConservCycles += now - p.conservEnter
	}
}

// ConservResidency reports total cycles spent in conservative mode
// through `end`, including a still-open episode.
func (p *PE) ConservResidency(end sim.Time) sim.Time {
	r := p.ConservCycles
	if p.conservative && end > p.conservEnter {
		r += end - p.conservEnter
	}
	return r
}

// IUUtilization reports all-time IU utilization over elapsed cycles.
func (p *PE) IUUtilization(elapsed sim.Time) float64 {
	return p.IUPool.Utilization(elapsed)
}

// DecodeUtil reports decode-unit occupancy (diagnostics).
func (p *PE) DecodeUtil(elapsed sim.Time) float64 { return p.decodeU.Utilization(elapsed) }

// DispatchUtil reports dispatch-unit occupancy (diagnostics).
func (p *PE) DispatchUtil(elapsed sim.Time) float64 { return p.dispatchU.Utilization(elapsed) }

// WritebackUtil reports writeback-unit occupancy (diagnostics).
func (p *PE) WritebackUtil(elapsed sim.Time) float64 { return p.writebackU.Utilization(elapsed) }

// SpawnUtil reports spawn-unit occupancy (diagnostics).
func (p *PE) SpawnUtil(elapsed sim.Time) float64 { return p.spawnU.Utilization(elapsed) }
