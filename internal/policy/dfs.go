package policy

import (
	"shogun/internal/pe"
	"shogun/internal/sim"
	"shogun/internal/task"
)

// lane is one serial depth-first exploration: at most one task in flight,
// children prioritized over siblings, siblings drawn via extend when a
// subtree completes. DFS uses one lane; parallel-DFS uses `width`
// independent lanes (§2.3, Fig. 3).
type lane struct {
	ready    *task.Node // next task to execute, if any
	inflight bool
	alive    int // nodes of this lane's tree still allocated
	treeID   int
}

// dfsCore implements the shared walk used by DFS and parallel-DFS.
type dfsCore struct {
	base
	lanes   []lane
	nextTID int
}

func newDFSCore(w *task.Workload, tokens *Tokens, roots RootSource, lanes int) *dfsCore {
	return &dfsCore{
		base:  base{w: w, tokens: tokens, roots: roots},
		lanes: make([]lane, lanes),
	}
}

// next finds a runnable task across lanes, acquiring its output token.
func (c *dfsCore) next(now sim.Time) (*task.Node, int, bool) {
	for i := range c.lanes {
		l := &c.lanes[i]
		if l.inflight {
			continue
		}
		if l.ready == nil && l.alive == 0 {
			// Lane is empty: pull a fresh search tree.
			v, ok := c.roots.NextRoot()
			if !ok {
				continue
			}
			c.nextTID++
			l.treeID = c.nextTID
			l.ready = c.w.NewNode(0, v, nil, l.treeID)
			l.alive = 1
		}
		if l.ready == nil {
			continue
		}
		slot := -1
		if c.w.NeedsToken(l.ready.Depth) {
			var ok bool
			slot, ok = c.tokens.TryAcquire(l.ready.Depth + 1)
			if !ok {
				continue
			}
		}
		n := l.ready
		l.ready = nil
		l.inflight = true
		return n, slot, true
	}
	return nil, -1, false
}

// onComplete advances the lane owning n: descend into the first child, or
// walk up releasing completed subtrees and extend at the shallowest
// ancestor with unexplored candidates.
func (c *dfsCore) onComplete(n *task.Node, laneIdx int) pe.SpawnResult {
	l := &c.lanes[laneIdx]
	l.inflight = false

	var res pe.SpawnResult
	if c.isLeafParent(n) {
		res = c.leafParentResult(n)
	}

	cur := n
	for {
		if cur.HasMoreCands() {
			v, pruned, ok := c.w.NextChild(cur)
			res.Pruned += pruned
			if ok {
				child := c.w.NewNode(cur.Depth+1, v, cur, cur.TreeID)
				l.alive++
				l.ready = child
				res.Spawned++
				return res
			}
		}
		if !cur.SubtreeComplete() {
			// Should not happen in a serial lane: children always
			// finish before the parent advances.
			panic("policy: dfs lane found incomplete subtree with no work")
		}
		parent := c.releaseNode(cur)
		l.alive--
		if parent == nil {
			return res // tree finished; next() will pull a new root
		}
		cur = parent
	}
}

// laneOf locates the lane whose in-flight task is n.
func (c *dfsCore) laneOf(n *task.Node) int {
	for i := range c.lanes {
		if c.lanes[i].inflight && c.lanes[i].treeID == n.TreeID {
			return i
		}
	}
	panic("policy: completed task belongs to no lane")
}

func (c *dfsCore) pending() bool {
	for i := range c.lanes {
		if c.lanes[i].inflight || c.lanes[i].ready != nil || c.lanes[i].alive > 0 {
			return true
		}
	}
	return false
}

// DFS is the depth-first scheme most accelerators use (§2.2): minimal
// memory footprint, one execution slot used, poor parallelism.
type DFS struct {
	core *dfsCore
}

// NewDFS builds the DFS policy.
func NewDFS(w *task.Workload, tokens *Tokens, roots RootSource) *DFS {
	return &DFS{core: newDFSCore(w, tokens, roots, 1)}
}

// Name implements pe.Policy.
func (d *DFS) Name() string { return "dfs" }

// Next implements pe.Policy.
func (d *DFS) Next(now sim.Time) (*task.Node, int, bool) { return d.core.next(now) }

// OnComplete implements pe.Policy.
func (d *DFS) OnComplete(n *task.Node, now sim.Time) pe.SpawnResult {
	return d.core.onComplete(n, d.core.laneOf(n))
}

// Pending implements pe.Policy.
func (d *DFS) Pending() bool { return d.core.pending() }

// SetConservative implements pe.Policy (no effect: DFS never co-runs
// non-sibling tasks).
func (d *DFS) SetConservative(bool) {}

// ParallelDFS explores `lanes` independent search trees on one PE, each
// depth-first — the extreme out-of-order baseline of Fig. 3. It has
// maximal slot usage but no locality between co-running tasks and no
// locality monitoring, which is exactly the failure mode Fig. 3(b) and
// Fig. 14 demonstrate.
type ParallelDFS struct {
	core *dfsCore
}

// NewParallelDFS builds a parallel-DFS policy with the given lane count
// (the task execution width).
func NewParallelDFS(w *task.Workload, tokens *Tokens, roots RootSource, lanes int) *ParallelDFS {
	return &ParallelDFS{core: newDFSCore(w, tokens, roots, lanes)}
}

// Name implements pe.Policy.
func (p *ParallelDFS) Name() string { return "parallel-dfs" }

// Next implements pe.Policy.
func (p *ParallelDFS) Next(now sim.Time) (*task.Node, int, bool) { return p.core.next(now) }

// OnComplete implements pe.Policy.
func (p *ParallelDFS) OnComplete(n *task.Node, now sim.Time) pe.SpawnResult {
	return p.core.onComplete(n, p.core.laneOf(n))
}

// Pending implements pe.Policy.
func (p *ParallelDFS) Pending() bool { return p.core.pending() }

// SetConservative implements pe.Policy (parallel-DFS deliberately ignores
// the monitor; that is its weakness).
func (p *ParallelDFS) SetConservative(bool) {}
