package policy

import (
	"shogun/internal/pe"
	"shogun/internal/sim"
	"shogun/internal/task"
)

// PseudoDFS is the FINGERS scheduling scheme (§2.2, Fig. 2(d)): fetch a
// task group of up to `groupSize` sibling tasks, execute its members in
// parallel, and only after the *whole group* completes (the inter-depth
// barrier) descend into the first member's children as the next group.
// Memory footprint is bounded like DFS; parallelism and intermediate-data
// locality are good; the barrier is the weakness Shogun removes.
type PseudoDFS struct {
	base
	groupSize int

	// stack of group frames; only the top frame has running members.
	stack []pdFrame
	ready []*task.Node
	// rootPending holds a fetched root not yet executed.
	inflight int
	treeSeq  int
}

type pdFrame struct {
	node        *task.Node   // parent whose candidate set feeds the groups
	group       []*task.Node // members of the current group, in order
	outstanding int          // members not yet completed
	memberIdx   int          // next member to descend into after the barrier
}

// NewPseudoDFS builds the FINGERS baseline; groupSize is the task
// execution width.
func NewPseudoDFS(w *task.Workload, tokens *Tokens, roots RootSource, groupSize int) *PseudoDFS {
	if groupSize < 1 {
		groupSize = 1
	}
	return &PseudoDFS{
		base:      base{w: w, tokens: tokens, roots: roots},
		groupSize: groupSize,
	}
}

// Name implements pe.Policy.
func (p *PseudoDFS) Name() string { return "pseudo-dfs" }

// Next implements pe.Policy.
func (p *PseudoDFS) Next(now sim.Time) (*task.Node, int, bool) {
	if len(p.ready) == 0 && len(p.stack) == 0 && p.inflight == 0 {
		// Tree finished (or first call): pull the next root as a
		// singleton group.
		v, ok := p.roots.NextRoot()
		if !ok {
			return nil, -1, false
		}
		p.treeSeq++
		root := p.w.NewNode(0, v, nil, p.treeSeq)
		p.ready = append(p.ready, root)
	}
	if len(p.ready) == 0 {
		return nil, -1, false
	}
	n := p.ready[0]
	slot := -1
	if p.w.NeedsToken(n.Depth) {
		var ok bool
		slot, ok = p.tokens.TryAcquire(n.Depth + 1)
		if !ok {
			return nil, -1, false
		}
	}
	p.ready = p.ready[1:]
	p.inflight++
	return n, slot, true
}

// OnComplete implements pe.Policy: barrier bookkeeping plus descent.
func (p *PseudoDFS) OnComplete(n *task.Node, now sim.Time) pe.SpawnResult {
	p.inflight--
	var res pe.SpawnResult
	if p.isLeafParent(n) {
		res = p.leafParentResult(n)
	}

	if len(p.stack) == 0 {
		// n is a root running as a singleton group: open its frame and
		// let advance form the first group (or retire the tree).
		p.stack = append(p.stack, pdFrame{node: n})
		p.advance(&res)
		return res
	}

	top := &p.stack[len(p.stack)-1]
	top.outstanding--
	if top.outstanding > 0 {
		// Inter-depth barrier: earlier finishers wait for the group.
		return res
	}
	p.advance(&res)
	return res
}

// advance walks the frame stack after a barrier releases: descend into
// members with children, form the parent's next sibling group, or pop.
// It is a flat loop — frames are re-derived from the stack each
// iteration so pushes, pops and node recycling never leave stale
// references.
func (p *PseudoDFS) advance(res *pe.SpawnResult) {
	for len(p.stack) > 0 {
		topIdx := len(p.stack) - 1
		top := &p.stack[topIdx]
		if top.outstanding > 0 {
			return // a freshly formed group is now running
		}
		// Descend into the next member that spawned candidates.
		descended := false
		for top.memberIdx < len(top.group) {
			m := top.group[top.memberIdx]
			if m.HasMoreCands() {
				top.memberIdx++
				p.stack = append(p.stack, pdFrame{node: m})
				descended = true
				break
			}
			if !m.SubtreeComplete() {
				panic("policy: pseudo-dfs member incomplete at descent")
			}
			p.releaseNode(m)
			top.memberIdx++
		}
		if descended {
			p.fillGroup(res)
			continue
		}
		// All members' subtrees done: next sibling group from the
		// parent's remaining candidates.
		if top.node.HasMoreCands() {
			p.fillGroup(res)
			continue
		}
		// Parent exhausted: pop. (Its children were all released above,
		// so the subtree is complete.)
		if !top.node.SubtreeComplete() {
			panic("policy: pseudo-dfs frame node incomplete at pop")
		}
		p.releaseNode(top.node)
		p.stack = p.stack[:topIdx]
	}
}

// fillGroup materializes up to groupSize children of the top frame's node
// into the ready queue. A zero-size result (everything pruned) is handled
// by advance's pop path on the next iteration.
func (p *PseudoDFS) fillGroup(res *pe.SpawnResult) {
	top := &p.stack[len(p.stack)-1]
	top.group = top.group[:0]
	top.memberIdx = 0
	for len(top.group) < p.groupSize {
		v, pruned, ok := p.w.NextChild(top.node)
		res.Pruned += pruned
		if !ok {
			break
		}
		child := p.w.NewNode(top.node.Depth+1, v, top.node, top.node.TreeID)
		top.group = append(top.group, child)
		p.ready = append(p.ready, child)
		res.Spawned++
	}
	top.outstanding = len(top.group)
}

// Pending implements pe.Policy.
func (p *PseudoDFS) Pending() bool {
	return p.inflight > 0 || len(p.ready) > 0 || len(p.stack) > 0
}

// SetConservative implements pe.Policy (pseudo-DFS already only co-runs
// siblings).
func (p *PseudoDFS) SetConservative(bool) {}
