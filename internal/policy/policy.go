// Package policy implements the task scheduling schemes the paper
// analyzes (§2.2): DFS, BFS, pseudo-DFS (the FINGERS baseline) and
// parallel-DFS. The Shogun scheme itself lives in internal/core; all of
// them implement pe.Policy over the shared task.Node machinery.
package policy

import (
	"shogun/internal/graph"
	"shogun/internal/pe"
	"shogun/internal/task"
)

// RootSource dispenses search-tree root vertices. The accelerator's system
// scheduler implements it; tests use SliceRoots.
type RootSource interface {
	// NextRoot returns the next root to explore, or ok=false when all
	// search trees have been dispatched.
	NextRoot() (v graph.VertexID, ok bool)
}

// SliceRoots is a RootSource over a fixed vertex list.
type SliceRoots struct {
	Vertices []graph.VertexID
	next     int
}

// NextRoot implements RootSource.
func (s *SliceRoots) NextRoot() (graph.VertexID, bool) {
	if s.next >= len(s.Vertices) {
		return 0, false
	}
	v := s.Vertices[s.next]
	s.next++
	return v, true
}

// Remaining reports how many roots have not been dispatched yet.
func (s *SliceRoots) Remaining() int { return len(s.Vertices) - s.next }

// AllRoots returns a SliceRoots over every vertex of g.
func AllRoots(g *graph.Graph) *SliceRoots {
	vs := make([]graph.VertexID, g.NumVertices())
	for i := range vs {
		vs[i] = graph.VertexID(i)
	}
	return &SliceRoots{Vertices: vs}
}

// Tokens implements the paper's per-depth address tokens (§3.2.3):
// preallocated vertex-set slots that tasks of one search depth contend
// for. Token capacity bounds the number of simultaneously materialized
// candidate sets per depth and thus the memory footprint.
//
// Slot ids are globally unique across PEs (slot = local*numPEs + peID) so
// every token maps to a stable, distinct address range; the LIFO free
// list recycles addresses for cache locality, mirroring hardware reuse of
// preallocated sets.
type Tokens struct {
	peID, numPEs int
	caps         []int // per depth (index = stored-set depth, 1..n-1)
	inUse        []int
	free         []int
	next         int
	peak         int
	totalInUse   int
	acquired     int64
	released     int64
}

// NewTokens builds per-depth pools for a schedule with `depths` matching
// positions; capPerDepth is the paper's default (= PE execution width).
func NewTokens(peID, numPEs, depths, capPerDepth int) *Tokens {
	t := &Tokens{peID: peID, numPEs: numPEs}
	t.caps = make([]int, depths)
	t.inUse = make([]int, depths)
	for d := 1; d < depths; d++ {
		t.caps[d] = capPerDepth
	}
	return t
}

// SetCap adjusts one depth's capacity (search-tree merging adds a second
// depth-1 allotment; BFS uses effectively unbounded caps).
func (t *Tokens) SetCap(depth, c int) { t.caps[depth] = c }

// Cap returns one depth's capacity.
func (t *Tokens) Cap(depth int) int { return t.caps[depth] }

// TryAcquire reserves a slot for a set stored at the given depth.
func (t *Tokens) TryAcquire(depth int) (slot int, ok bool) {
	if t.inUse[depth] >= t.caps[depth] {
		return -1, false
	}
	t.inUse[depth]++
	t.totalInUse++
	t.acquired++
	if t.totalInUse > t.peak {
		t.peak = t.totalInUse
	}
	var local int
	if k := len(t.free); k > 0 {
		local = t.free[k-1]
		t.free = t.free[:k-1]
	} else {
		local = t.next
		t.next++
	}
	return local*t.numPEs + t.peID, true
}

// Release returns a slot acquired at the given depth.
func (t *Tokens) Release(depth, slot int) {
	if slot < 0 {
		return
	}
	t.inUse[depth]--
	t.totalInUse--
	t.released++
	if t.inUse[depth] < 0 || t.totalInUse < 0 {
		panic("policy: token over-release")
	}
	t.free = append(t.free, slot/t.numPEs)
}

// InUse reports current usage at a depth.
func (t *Tokens) InUse(depth int) int { return t.inUse[depth] }

// Depths reports the number of depth slots (index range of InUse/Cap).
func (t *Tokens) Depths() int { return len(t.caps) }

// InUseByDepth returns a copy of the per-depth occupancy (diagnostic).
func (t *Tokens) InUseByDepth() []int {
	return append([]int(nil), t.inUse...)
}

// TotalInUse reports slots held across all depths (leak check: must be
// zero after a run completes).
func (t *Tokens) TotalInUse() int { return t.totalInUse }

// Peak reports the maximum simultaneous slots held (memory footprint
// proxy, used by the BFS explosion measurements).
func (t *Tokens) Peak() int { return t.peak }

// Acquired reports total token grants (conservation: Acquired ==
// Released + TotalInUse at any instant).
func (t *Tokens) Acquired() int64 { return t.acquired }

// Released reports total token returns.
func (t *Tokens) Released() int64 { return t.released }

// base carries the machinery shared by the baseline policies.
type base struct {
	w      *task.Workload
	tokens *Tokens
	roots  RootSource
}

// LeafParentResult counts aggregated leaf matches for a node at the
// second-to-last position (see DESIGN.md: leaf tasks are processed as a
// batch in the spawn unit; counts are exact). Shared by all policies,
// including the Shogun tree in internal/core.
func LeafParentResult(w *task.Workload, n *task.Node) pe.SpawnResult {
	lim := n.SpawnLimit
	if n.SplitHi > 0 && n.SplitHi < lim {
		lim = n.SplitHi
	}
	total := int64(lim - n.NextCand)
	matches := w.CountLeafMatches(n)
	return pe.SpawnResult{
		Leaves:     int(matches),
		Pruned:     int(total - matches),
		Embeddings: matches,
	}
}

func (b *base) leafParentResult(n *task.Node) pe.SpawnResult {
	return LeafParentResult(b.w, n)
}

// releaseNode frees a completed node's token and buffers, returning its
// parent.
func (b *base) releaseNode(n *task.Node) *task.Node {
	if n.Slot >= 0 && !n.SharedCand {
		b.tokens.Release(n.Depth+1, n.Slot)
	}
	n.Slot = -1
	return b.w.Release(n)
}

// isLeafParent reports whether n sits at the second-to-last position.
func (b *base) isLeafParent(n *task.Node) bool {
	return n.Depth == b.w.LeafDepth()-1
}
