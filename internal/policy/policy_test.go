package policy

import (
	"testing"

	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/mine"
	"shogun/internal/pattern"
	"shogun/internal/pe"
	"shogun/internal/task"
)

// drive runs a policy to completion with a synchronous executor that can
// hold up to `width` tasks "in flight" and completes them in the given
// order ("fifo" or "lifo" — lifo stresses out-of-order completion).
func drive(t *testing.T, pol pe.Policy, w *task.Workload, width int, order string) int64 {
	t.Helper()
	type running struct {
		n    *task.Node
		slot int
	}
	var inflight []running
	var total int64
	for steps := 0; ; steps++ {
		if steps > 50_000_000 {
			t.Fatal("policy did not terminate")
		}
		progressed := false
		for len(inflight) < width {
			n, slot, ok := pol.Next(0)
			if !ok {
				break
			}
			w.Execute(n, slot)
			inflight = append(inflight, running{n, slot})
			progressed = true
		}
		if len(inflight) == 0 {
			if pol.Pending() {
				t.Fatal("policy stalled with pending work")
			}
			return total
		}
		idx := 0
		if order == "lifo" {
			idx = len(inflight) - 1
		}
		r := inflight[idx]
		inflight = append(inflight[:idx], inflight[idx+1:]...)
		res := pol.OnComplete(r.n, 0)
		total += res.Embeddings
		_ = progressed
	}
}

func setups(t *testing.T) (*graph.Graph, []*pattern.Schedule) {
	g := gen.RMAT(128, 700, 0.6, 0.15, 0.15, 11)
	var ss []*pattern.Schedule
	for _, p := range []pattern.Pattern{pattern.Triangle(), pattern.FourClique(), pattern.TailedTriangle(), pattern.Diamond(), pattern.FourCycle()} {
		for _, ind := range []bool{false, true} {
			s, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: ind})
			if err != nil {
				t.Fatal(err)
			}
			ss = append(ss, s)
		}
	}
	return g, ss
}

func TestPoliciesCountCorrectly(t *testing.T) {
	g, ss := setups(t)
	for _, s := range ss {
		want := mine.Count(g, s)
		for _, completion := range []string{"fifo", "lifo"} {
			builders := map[string]func(*task.Workload, *Tokens) pe.Policy{
				"dfs": func(w *task.Workload, tk *Tokens) pe.Policy { return NewDFS(w, tk, AllRoots(g)) },
				"pseudo-dfs": func(w *task.Workload, tk *Tokens) pe.Policy {
					return NewPseudoDFS(w, tk, AllRoots(g), 8)
				},
				"bfs": func(w *task.Workload, tk *Tokens) pe.Policy { return NewBFS(w, tk, AllRoots(g)) },
				"parallel-dfs": func(w *task.Workload, tk *Tokens) pe.Policy {
					return NewParallelDFS(w, tk, AllRoots(g), 8)
				},
			}
			for name, build := range builders {
				w := task.NewWorkload(g, s)
				tokens := NewTokens(0, 1, s.Depth(), 8)
				pol := build(w, tokens)
				got := drive(t, pol, w, 8, completion)
				if got != want {
					t.Errorf("%s/%s/%s: counted %d, want %d", name, s.Name, completion, got, want)
				}
				for d := 1; d < s.Depth(); d++ {
					if tokens.InUse(d) != 0 {
						t.Errorf("%s/%s: %d tokens leaked at depth %d", name, s.Name, tokens.InUse(d), d)
					}
				}
			}
		}
	}
}

func TestDFSUsesOneSlot(t *testing.T) {
	g := gen.Clique(10)
	s, _ := pattern.Build(pattern.FourClique())
	w := task.NewWorkload(g, s)
	pol := NewDFS(w, NewTokens(0, 1, s.Depth(), 8), AllRoots(g))
	n, slot, ok := pol.Next(0)
	if !ok {
		t.Fatal("no first task")
	}
	if _, _, ok := pol.Next(0); ok {
		t.Fatal("DFS issued a second concurrent task")
	}
	w.Execute(n, slot)
	pol.OnComplete(n, 0)
	if _, _, ok := pol.Next(0); !ok {
		t.Fatal("DFS has no follow-up task")
	}
}

func TestPseudoDFSBarrier(t *testing.T) {
	g := gen.Clique(12)
	s, _ := pattern.Build(pattern.FourClique())
	w := task.NewWorkload(g, s)
	// Root 11 has 11 candidates after symmetry truncation (v1 < 11).
	pol := NewPseudoDFS(w, NewTokens(0, 1, s.Depth(), 8), &SliceRoots{Vertices: []graph.VertexID{11}}, 4)

	// Root runs alone.
	root, slot, ok := pol.Next(0)
	if !ok || root.Depth != 0 {
		t.Fatal("expected root first")
	}
	w.Execute(root, slot)
	pol.OnComplete(root, 0)

	// First group: exactly 4 siblings (group size), no more.
	var group []*task.Node
	var slots []int
	for {
		n, sl, ok := pol.Next(0)
		if !ok {
			break
		}
		group = append(group, n)
		slots = append(slots, sl)
	}
	if len(group) != 4 {
		t.Fatalf("group size = %d, want 4", len(group))
	}
	for i, n := range group {
		if n.Depth != 1 {
			t.Fatalf("group member depth = %d", n.Depth)
		}
		w.Execute(n, slots[i])
	}
	// Complete all but one member: the barrier must hold.
	for _, n := range group[:3] {
		pol.OnComplete(n, 0)
		if _, _, ok := pol.Next(0); ok {
			t.Fatal("barrier violated: new task before group completed")
		}
	}
	pol.OnComplete(group[3], 0)
	if _, _, ok := pol.Next(0); !ok {
		t.Fatal("no task after barrier release")
	}
}

func TestBFSAdvancesByDepth(t *testing.T) {
	g := gen.Clique(8)
	s, _ := pattern.Build(pattern.FourClique())
	w := task.NewWorkload(g, s)
	tokens := NewTokens(0, 1, s.Depth(), 8)
	pol := NewBFS(w, tokens, AllRoots(g))
	pol.RootsPerWave = 8
	// BFS must raise token caps.
	if tokens.Cap(1) <= 8 {
		t.Fatal("BFS left token caps bounded")
	}
	seen := map[int]bool{}
	var inflight []*task.Node
	var inflightSlots []int
	for steps := 0; steps < 100000; steps++ {
		n, slot, ok := pol.Next(0)
		if ok {
			w.Execute(n, slot)
			inflight = append(inflight, n)
			inflightSlots = append(inflightSlots, slot)
			seen[n.Depth] = true
			continue
		}
		if len(inflight) == 0 {
			break
		}
		pol.OnComplete(inflight[0], 0)
		inflight = inflight[1:]
		inflightSlots = inflightSlots[1:]
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("BFS depths visited: %v", seen)
	}
	// 8 concurrent trees, each holding a root set plus a depth-1
	// frontier of stored sets: far beyond a DFS path's 2 live sets.
	if pol.PeakFootprintSets() <= 16 {
		t.Fatalf("BFS footprint %d suspiciously small", pol.PeakFootprintSets())
	}
}

func TestParallelDFSLanesIndependent(t *testing.T) {
	g := gen.Clique(10)
	s, _ := pattern.Build(pattern.Triangle())
	w := task.NewWorkload(g, s)
	pol := NewParallelDFS(w, NewTokens(0, 1, s.Depth(), 4), AllRoots(g), 4)
	var roots []*task.Node
	for {
		n, slot, ok := pol.Next(0)
		if !ok {
			break
		}
		w.Execute(n, slot)
		roots = append(roots, n)
	}
	if len(roots) != 4 {
		t.Fatalf("parallel-dfs issued %d concurrent tasks, want 4 lanes", len(roots))
	}
	ids := map[int]bool{}
	for _, r := range roots {
		if r.Depth != 0 {
			t.Fatalf("lane task depth = %d", r.Depth)
		}
		if ids[r.TreeID] {
			t.Fatal("two lanes share a tree")
		}
		ids[r.TreeID] = true
	}
}

func TestTokensExhaustionAndRelease(t *testing.T) {
	tk := NewTokens(2, 4, 4, 2)
	s1, ok := tk.TryAcquire(1)
	if !ok {
		t.Fatal("first acquire failed")
	}
	s2, ok := tk.TryAcquire(1)
	if !ok {
		t.Fatal("second acquire failed")
	}
	if _, ok := tk.TryAcquire(1); ok {
		t.Fatal("over-capacity acquire succeeded")
	}
	if s1%4 != 2 || s2%4 != 2 {
		t.Fatalf("slots %d,%d not tagged with PE id", s1, s2)
	}
	if s1 == s2 {
		t.Fatal("duplicate slot ids")
	}
	// Other depths unaffected.
	if _, ok := tk.TryAcquire(2); !ok {
		t.Fatal("depth-2 acquire failed")
	}
	tk.Release(1, s1)
	if _, ok := tk.TryAcquire(1); !ok {
		t.Fatal("acquire after release failed")
	}
	if tk.Peak() != 3 {
		t.Fatalf("peak = %d", tk.Peak())
	}
}

func TestTokenOverReleasePanics(t *testing.T) {
	tk := NewTokens(0, 1, 3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	tk.Release(1, 0)
}

func TestSliceRootsRemaining(t *testing.T) {
	r := &SliceRoots{Vertices: []graph.VertexID{5, 6}}
	if r.Remaining() != 2 {
		t.Fatal("remaining wrong")
	}
	if v, ok := r.NextRoot(); !ok || v != 5 {
		t.Fatal("first root wrong")
	}
	r.NextRoot()
	if _, ok := r.NextRoot(); ok {
		t.Fatal("exhausted source still yields")
	}
	if r.Remaining() != 0 {
		t.Fatal("remaining after drain")
	}
}
