package policy

import (
	"shogun/internal/pe"
	"shogun/internal/sim"
	"shogun/internal/task"
)

// BFS executes all tasks of one search depth before any of the next
// (§2.2, Fig. 2(b)). It has high parallelism and perfect sibling locality
// but its memory footprint explodes with the frontier: every node of a
// depth must stay materialized until the next depth finishes spawning.
// The paper includes BFS for comparison only (no accelerator adopts it);
// this implementation additionally reports the peak footprint so the
// explosion is measurable.
//
// To keep the scheme honest, BFS token capacities should be set
// effectively unbounded (NewBFS does this) — bounding them would deadlock
// the barrier semantics.
type BFS struct {
	base
	frontier []*task.Node // unexecuted tasks at the current depth
	next     []*task.Node // spawned tasks for the following depth
	inflight int
	treeSeq  int
	// RootsPerWave controls how many search trees are explored
	// simultaneously (all-at-once BFS over the whole graph would be the
	// software-framework behaviour; per-tree BFS is the fair comparison
	// on one PE).
	RootsPerWave int
}

// NewBFS builds a BFS policy. Token caps are raised to "unbounded" so the
// frontier can always materialize.
func NewBFS(w *task.Workload, tokens *Tokens, roots RootSource) *BFS {
	for d := 1; d < w.S.Depth(); d++ {
		tokens.SetCap(d, 1<<30)
	}
	return &BFS{
		base:         base{w: w, tokens: tokens, roots: roots},
		RootsPerWave: 1,
	}
}

// Name implements pe.Policy.
func (b *BFS) Name() string { return "bfs" }

// Next implements pe.Policy.
func (b *BFS) Next(now sim.Time) (*task.Node, int, bool) {
	if len(b.frontier) == 0 && b.inflight == 0 {
		if len(b.next) > 0 {
			// Inter-depth barrier crossed: advance the frontier.
			b.frontier, b.next = b.next, b.frontier[:0]
		} else {
			// Start the next wave of search trees.
			for i := 0; i < b.RootsPerWave; i++ {
				v, ok := b.roots.NextRoot()
				if !ok {
					break
				}
				b.treeSeq++
				b.frontier = append(b.frontier, b.w.NewNode(0, v, nil, b.treeSeq))
			}
		}
	}
	if len(b.frontier) == 0 {
		return nil, -1, false
	}
	n := b.frontier[0]
	slot := -1
	if b.w.NeedsToken(n.Depth) {
		var ok bool
		slot, ok = b.tokens.TryAcquire(n.Depth + 1)
		if !ok {
			return nil, -1, false
		}
	}
	b.frontier = b.frontier[1:]
	b.inflight++
	return n, slot, true
}

// OnComplete implements pe.Policy: spawn all children into the next
// frontier; retire completed subtrees bottom-up.
func (b *BFS) OnComplete(n *task.Node, now sim.Time) pe.SpawnResult {
	b.inflight--
	var res pe.SpawnResult
	if b.isLeafParent(n) {
		res = b.leafParentResult(n)
	} else {
		for {
			v, pruned, ok := b.w.NextChild(n)
			res.Pruned += pruned
			if !ok {
				break
			}
			child := b.w.NewNode(n.Depth+1, v, n, n.TreeID)
			b.next = append(b.next, child)
			res.Spawned++
		}
	}
	// Release completed chains (leaf parents and childless nodes).
	cur := n
	for cur != nil && cur.SubtreeComplete() {
		cur = b.releaseNode(cur)
	}
	return res
}

// Pending implements pe.Policy.
func (b *BFS) Pending() bool {
	return b.inflight > 0 || len(b.frontier) > 0 || len(b.next) > 0
}

// SetConservative implements pe.Policy (BFS only co-runs same-depth
// tasks already).
func (b *BFS) SetConservative(bool) {}

// PeakFootprintSets reports the maximum number of simultaneously live
// candidate sets — the memory-consumption-explosion metric.
func (b *BFS) PeakFootprintSets() int { return b.tokens.Peak() }
