package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanAttributionConservative pins the acceptance bound: for a
// completed request the recorded phase durations telescope, so they sum
// to the measured wall time exactly — stronger than the 1% tolerance the
// design asks for, and immune to scheduling jitter because both sides
// are derived from the same timestamp chain.
func TestSpanAttributionConservative(t *testing.T) {
	p := NewPlane(Options{})
	sp := p.Begin("count", "", time.Now())
	for _, ph := range []Phase{PhaseQueue, PhaseGraph, PhaseSchedule, PhaseRun, PhaseEncode} {
		time.Sleep(time.Millisecond)
		sp.To(ph)
	}
	time.Sleep(time.Millisecond)
	id := sp.ID()
	sp.End(http.StatusOK, "ok", "")

	v, ok := p.Lookup(id)
	if !ok {
		t.Fatal("completed span not in recent ring")
	}
	if !v.Done || v.Phase != "done" {
		t.Fatalf("view not done: %+v", v)
	}
	if sum := v.PhasesNS.Sum(); sum != v.WallNS {
		t.Fatalf("phases sum %dns != wall %dns (drift %dns)", sum, v.WallNS, v.WallNS-sum)
	}
	// Every phase the span passed through picked up its sleep.
	ph := v.PhasesNS
	for name, d := range map[string]int64{
		"queue": ph.Queue, "graph": ph.Graph, "schedule": ph.Schedule,
		"run": ph.Run, "encode": ph.Encode,
	} {
		if d < int64(time.Millisecond)/2 {
			t.Errorf("phase %s got %dns, want >= ~1ms", name, d)
		}
	}
}

// TestSpanLiveView checks a mid-flight view: wall and phases cover
// elapsed-so-far, the current phase is charged up to now, and the sum
// still telescopes to the live wall time.
func TestSpanLiveView(t *testing.T) {
	p := NewPlane(Options{})
	sp := p.Begin("mine", "", time.Now())
	sp.To(PhaseRun)
	time.Sleep(2 * time.Millisecond)

	v := sp.View()
	if v.Done {
		t.Fatal("live span reported done")
	}
	if v.Phase != "run" {
		t.Fatalf("live phase %q, want run", v.Phase)
	}
	if v.PhasesNS.Run < int64(time.Millisecond) {
		t.Fatalf("live run phase %dns, want >= ~2ms", v.PhasesNS.Run)
	}
	if sum := v.PhasesNS.Sum(); sum != v.WallNS {
		t.Fatalf("live phases sum %d != live wall %d", sum, v.WallNS)
	}
	sp.End(http.StatusOK, "ok", "")
}

func TestTraceIDs(t *testing.T) {
	p := NewPlane(Options{})

	sp := p.Begin("count", "caller-id.42", time.Now())
	if got := sp.TraceID(); got != "caller-id.42" {
		t.Fatalf("valid inbound trace rewritten: %q", got)
	}
	sp.End(200, "ok", "")

	for _, bad := range []string{"", "has space", "семь", strings.Repeat("x", 65), "semi;colon"} {
		sp := p.Begin("count", bad, time.Now())
		got := sp.TraceID()
		if len(got) != 16 || !validTrace(got) {
			t.Fatalf("generated trace for invalid input %q is %q, want 16 valid chars", bad, got)
		}
		sp.End(200, "ok", "")
	}

	// Generated IDs must differ request to request.
	a := p.Begin("count", "", time.Now())
	b := p.Begin("count", "", time.Now())
	if a.TraceID() == b.TraceID() {
		t.Fatalf("two generated traces collide: %q", a.TraceID())
	}
	a.End(200, "ok", "")
	b.End(200, "ok", "")
}

func TestPlaneRegistryAndRing(t *testing.T) {
	p := NewPlane(Options{Recent: 4})

	sp := p.Begin("count", "", time.Now())
	if p.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", p.InFlight())
	}
	live := p.Snapshot()
	if len(live) != 1 || live[0].ID != sp.ID() || live[0].Done {
		t.Fatalf("snapshot wrong: %+v", live)
	}
	if _, ok := p.Lookup(sp.ID()); !ok {
		t.Fatal("live span not found by Lookup")
	}
	sp.End(200, "ok", "")
	if p.InFlight() != 0 {
		t.Fatalf("InFlight after End = %d, want 0", p.InFlight())
	}

	// Overfill the ring; only the newest Recent survive, newest first.
	var ids []uint64
	for i := 0; i < 6; i++ {
		s := p.Begin("mine", "", time.Now())
		ids = append(ids, s.ID())
		s.End(200, "ok", "")
	}
	rec := p.Recent()
	if len(rec) != 4 {
		t.Fatalf("ring holds %d, want 4", len(rec))
	}
	for i, v := range rec {
		want := ids[len(ids)-1-i]
		if v.ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d (newest first)", i, v.ID, want)
		}
	}
	if _, ok := p.Lookup(ids[0]); ok {
		t.Fatal("evicted ring entry still found")
	}
	if _, ok := p.Lookup(ids[len(ids)-1]); !ok {
		t.Fatal("newest completed request not found")
	}
}

// TestProgressJoinLiveOnly pins the retention contract: the live-gauge
// probe rides only on in-flight views; once the request completes, the
// ring's view must not retain (or invoke) the workload closure.
func TestProgressJoinLiveOnly(t *testing.T) {
	p := NewPlane(Options{})
	sp := p.Begin("simulate", "", time.Now())
	calls := 0
	sp.SetProgress(func() map[string]int64 { calls++; return map[string]int64{"cycle": 42} })

	v := sp.View()
	v.FillProgress()
	if calls != 1 || v.Progress["cycle"] != 42 {
		t.Fatalf("live FillProgress: calls=%d progress=%v", calls, v.Progress)
	}

	id := sp.ID()
	sp.End(200, "ok", "")
	done, _ := p.Lookup(id)
	done.FillProgress()
	if calls != 1 || done.Progress != nil {
		t.Fatalf("completed view invoked the probe (calls=%d) or kept progress %v", calls, done.Progress)
	}
}

// TestInspectionDuringChurn is the regression test for the
// reset-vs-View race: Snapshot and Lookup used to copy *Span pointers
// under p.mu but View them after unlocking, racing with end()'s
// *s = Span{} reset and the pool's reuse of the span. Inspection now
// happens entirely under p.mu. Run under -race this hammers
// Begin/To/End churn against concurrent Snapshot/Lookup/Recent
// readers; any view that does surface must still telescope.
func TestInspectionDuringChurn(t *testing.T) {
	p := NewPlane(Options{Recent: 8})
	const writers, readers, iters = 4, 4, 300

	var readerWG, writerWG sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			var lastID uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, v := range p.Snapshot() {
					if v.Done {
						t.Error("snapshot returned a completed span as live")
						return
					}
					if sum := v.PhasesNS.Sum(); sum != v.WallNS {
						t.Errorf("live view does not telescope: sum %d wall %d", sum, v.WallNS)
						return
					}
					lastID = v.ID
				}
				if lastID != 0 {
					p.Lookup(lastID) // live, completed, or evicted — must not race or hang
				}
				p.Recent()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < iters; i++ {
				sp := p.Begin("count", "", time.Now())
				sp.To(PhaseQueue)
				sp.To(PhaseRun)
				sp.SetTarget("g", "s")
				sp.To(PhaseEncode)
				sp.End(200, "ok", "")
			}
		}()
	}
	// The writers finish on their own; the readers spin until stopped.
	writersDone := make(chan struct{})
	go func() { defer close(writersDone); writerWG.Wait() }()
	select {
	case <-writersDone:
	case <-time.After(30 * time.Second):
		t.Fatal("writers did not finish — likely a deadlocked span mutex")
	}
	close(stop)
	readersDone := make(chan struct{})
	go func() { defer close(readersDone); readerWG.Wait() }()
	select {
	case <-readersDone:
	case <-time.After(30 * time.Second):
		t.Fatal("readers did not exit — likely a deadlocked span mutex")
	}
	if n := p.InFlight(); n != 0 {
		t.Fatalf("InFlight after churn = %d, want 0", n)
	}
	if got := int(p.Families()[0].Hist.Count()); got != writers*iters {
		t.Fatalf("completed %d requests, want %d", got, writers*iters)
	}
}

// TestFlushEveryIdle pins the FlushEvery contract for an idle daemon:
// after the last request of a burst, its access line reaches the
// underlying writer within ~FlushEvery with no further requests and no
// explicit Flush — the background flusher picks it up.
func TestFlushEveryIdle(t *testing.T) {
	var buf syncBuffer
	p := NewPlane(Options{AccessLog: &buf, FlushEvery: 10 * time.Millisecond})
	defer p.Close()

	sp := p.Begin("count", "", time.Now())
	sp.End(200, "ok", "")
	if buf.Len() != 0 {
		t.Skip("line flushed inline (slow test machine) — nothing to observe")
	}
	deadline := time.Now().Add(5 * time.Second)
	for buf.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("access line never auto-flushed on an idle plane")
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatalf("auto-flushed line malformed: %q", buf.String())
	}
}

// syncBuffer is a bytes.Buffer safe for the background flusher's
// concurrent writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestOutcomeForStatus(t *testing.T) {
	cases := map[int]string{
		200: "ok", 201: "ok",
		429: "shed",
		503: "unavail",
		408: "budget", 422: "budget",
		499: "client_gone",
		400: "client_error", 404: "client_error",
		500: "error", 0: "error",
	}
	for status, want := range cases {
		if got := OutcomeForStatus(status); got != want {
			t.Errorf("OutcomeForStatus(%d) = %q, want %q", status, got, want)
		}
	}
}

func TestFamilies(t *testing.T) {
	p := NewPlane(Options{})
	for i := 0; i < 3; i++ {
		s := p.Begin("count", "", time.Now())
		s.End(200, "ok", "")
	}
	s := p.Begin("count", "", time.Now())
	s.End(429, "shed", "queue full")
	s = p.Begin("mine", "", time.Now())
	s.End(200, "ok", "")

	fams := p.Families()
	if len(fams) != 3 {
		t.Fatalf("family count = %d, want 3: %+v", len(fams), fams)
	}
	// Deterministic order: (count,ok), (count,shed), (mine,ok).
	wantOrder := []struct {
		op, outcome string
		n           int64
	}{{"count", "ok", 3}, {"count", "shed", 1}, {"mine", "ok", 1}}
	for i, w := range wantOrder {
		f := fams[i]
		if f.Op != w.op || f.Outcome != w.outcome || f.Hist.Count() != w.n {
			t.Fatalf("family[%d] = %s/%s n=%d, want %s/%s n=%d",
				i, f.Op, f.Outcome, f.Hist.Count(), w.op, w.outcome, w.n)
		}
	}
}

// TestAccessLogBufferedAndFlushed pins the drain-flush satellite at the
// package level: completed requests sit in the 32KB buffer until Flush
// (or the flush interval) drains them, and every line is valid JSON with
// the phase fields.
func TestAccessLogBufferedAndFlushed(t *testing.T) {
	var buf bytes.Buffer
	p := NewPlane(Options{AccessLog: &buf, FlushEvery: time.Hour})
	defer p.Close()
	sp := p.Begin("count", "trace-1", time.Now())
	sp.To(PhaseRun)
	sp.SetTarget("wi", "tc")
	sp.SetBudget(500, 0)
	sp.End(200, "ok", "")

	if buf.Len() != 0 {
		t.Fatalf("access line written before flush (%d bytes) — writer is not buffered", buf.Len())
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("access line not newline-terminated: %q", line)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("access line is not JSON: %v\n%s", err, line)
	}
	for _, key := range []string{"ts", "trace", "id", "op", "status", "kind", "outcome",
		"graph_key", "schedule", "budget_wall_ms", "wall_us",
		"parse_us", "queue_us", "graph_us", "schedule_us", "run_us", "encode_us"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("access line missing %q: %s", key, line)
		}
	}
	if doc["trace"] != "trace-1" || doc["outcome"] != "ok" || doc["graph_key"] != "wi" {
		t.Fatalf("access line fields wrong: %s", line)
	}
}

// TestSlowLogSnapshot checks the slow path: a request over the threshold
// increments SlowCount and lands in the slow log with its error and the
// diagnostic snapshot (escaped multi-line text included).
func TestSlowLogSnapshot(t *testing.T) {
	var access, slow bytes.Buffer
	p := NewPlane(Options{
		AccessLog:     &access,
		SlowLog:       &slow,
		SlowThreshold: time.Nanosecond, // everything is slow
		FlushEvery:    time.Hour,
	})
	defer p.Close()
	snapCalls := 0
	sp := p.Begin("simulate", "", time.Now())
	sp.SetSnapshot(func() string { snapCalls++; return "governor:\n  line\ttwo \"quoted\"" })
	time.Sleep(time.Microsecond)
	sp.End(408, "budget_wall", "wall budget exceeded")

	if got := p.SlowCount(); got != 1 {
		t.Fatalf("SlowCount = %d, want 1", got)
	}
	if snapCalls != 1 {
		t.Fatalf("snapshot closure called %d times, want 1", snapCalls)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(slow.Bytes(), &doc); err != nil {
		t.Fatalf("slow line is not JSON: %v\n%s", err, slow.String())
	}
	if doc["error"] != "wall budget exceeded" {
		t.Fatalf("slow line error = %v", doc["error"])
	}
	if doc["snapshot"] != "governor:\n  line\ttwo \"quoted\"" {
		t.Fatalf("snapshot did not round-trip: %v", doc["snapshot"])
	}
	// The fast access log got the same request, without the detail.
	var acc map[string]any
	if err := json.Unmarshal(access.Bytes(), &acc); err != nil {
		t.Fatalf("access line invalid: %v", err)
	}
	if _, ok := acc["snapshot"]; ok {
		t.Fatal("access line carries the detailed snapshot")
	}
}

// TestNilPlaneZeroCost pins the off path: every method of a nil plane
// and nil span is a no-op, and the whole per-request lifecycle allocates
// nothing.
func TestNilPlaneZeroCost(t *testing.T) {
	var p *Plane
	sp := p.Begin("count", "x", time.Now())
	if sp != nil {
		t.Fatal("nil plane handed out a non-nil span")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s := p.Begin("count", "", time.Time{})
		s.To(PhaseQueue)
		s.To(PhaseRun)
		s.SetTarget("g", "s")
		s.SetBudget(1, 2)
		s.SetProgress(nil)
		s.SetSnapshot(nil)
		_ = s.BreakdownUS()
		_ = s.TraceID()
		_ = s.ID()
		s.End(200, "ok", "")
	})
	if allocs != 0 {
		t.Fatalf("nil-plane request lifecycle allocates %v/op, want 0", allocs)
	}
	if p.InFlight() != 0 || p.SlowCount() != 0 || p.Families() != nil ||
		p.Snapshot() != nil || p.Recent() != nil || p.Flush() != nil || p.Close() != nil {
		t.Fatal("nil plane accessors not inert")
	}
	if _, ok := p.Lookup(1); ok {
		t.Fatal("nil plane Lookup found something")
	}
}

func TestChromeExport(t *testing.T) {
	p := NewPlane(Options{})
	sp := p.Begin("simulate", "trace-c", time.Now())
	sp.To(PhaseRun)
	time.Sleep(2 * time.Millisecond)
	sp.To(PhaseEncode)
	id := sp.ID()
	sp.End(200, "ok", "")
	v, _ := p.Lookup(id)

	var buf bytes.Buffer
	if err := v.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	var xEvents int
	var lastEnd int64
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		xEvents++
		if e.Ts < lastEnd {
			t.Fatalf("phase %q starts at %d before previous end %d (phases must tile)", e.Name, e.Ts, lastEnd)
		}
		lastEnd = e.Ts + e.Dur
	}
	if xEvents < 2 {
		t.Fatalf("chrome export has %d phase events, want >= 2 (run + encode)", xEvents)
	}
}

// TestMetricsWriterExposition renders a page and checks the Prometheus
// text format invariants: HELP/TYPE pairs, ascending le edges, a +Inf
// bucket matching _count, and integer-rendered values.
func TestMetricsWriterExposition(t *testing.T) {
	p := NewPlane(Options{})
	for i := 0; i < 5; i++ {
		s := p.Begin("count", "", time.Now())
		s.End(200, "ok", "")
	}

	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	m.Family("shogun_requests_total", "counter", "Completed requests.")
	for _, f := range p.Families() {
		m.Counter("shogun_requests_total", `op="`+f.Op+`",outcome="`+f.Outcome+`"`, f.Hist.Count())
	}
	m.Family("shogun_request_duration_seconds", "histogram", "Request wall time.")
	for _, f := range p.Families() {
		m.Histo("shogun_request_duration_seconds", `op="`+f.Op+`"`, f.Hist, 1e-6)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	page := buf.String()

	for _, want := range []string{
		"# HELP shogun_requests_total ",
		"# TYPE shogun_requests_total counter",
		`shogun_requests_total{op="count",outcome="ok"} 5`,
		"# TYPE shogun_request_duration_seconds histogram",
		`le="+Inf"} 5`,
		"shogun_request_duration_seconds_count",
		"shogun_request_duration_seconds_sum",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q:\n%s", want, page)
		}
	}
	// Every sample line is `name{labels} value` or `name value`.
	for _, line := range strings.Split(strings.TrimRight(page, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}
