package obs

import (
	"io"
	"math"
	"strconv"

	"shogun/internal/telemetry"
)

// MetricsWriter renders the Prometheus text exposition format
// (version 0.0.4) with nothing but the standard library: families are
// declared once with Family, then populated with Gauge/Counter/Histo
// rows. Errors are sticky — callers write the whole page and check Err
// once.
type MetricsWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewMetricsWriter wraps w.
func NewMetricsWriter(w io.Writer) *MetricsWriter {
	return &MetricsWriter{w: w, buf: make([]byte, 0, 256)}
}

// Err reports the first write error.
func (m *MetricsWriter) Err() error { return m.err }

func (m *MetricsWriter) line(b []byte) {
	if m.err != nil {
		return
	}
	_, m.err = m.w.Write(b)
}

// Family declares a metric family: one HELP and one TYPE comment. typ is
// "counter", "gauge" or "histogram".
func (m *MetricsWriter) Family(name, typ, help string) {
	b := m.buf[:0]
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	m.buf = b
	m.line(b)
}

// row emits `name{labels} value`. labels is preformatted
// (`op="count",outcome="ok"`) or empty.
func (m *MetricsWriter) row(name, labels string, value float64) {
	b := m.buf[:0]
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = appendFloat(b, value)
	b = append(b, '\n')
	m.buf = b
	m.line(b)
}

// Gauge emits one gauge sample.
func (m *MetricsWriter) Gauge(name, labels string, v float64) { m.row(name, labels, v) }

// Counter emits one counter sample.
func (m *MetricsWriter) Counter(name, labels string, v int64) { m.row(name, labels, float64(v)) }

// Histo emits one telemetry.Histogram as a Prometheus histogram series:
// cumulative `_bucket` rows at each non-empty bucket's upper edge plus
// +Inf, then `_sum` and `_count`. scale converts the histogram's integer
// unit to the exposition's (e.g. 1e-6 for µs → seconds). Because
// observations are integers strictly below each bucket's upper edge, the
// emitted cumulative counts are exact, not approximations. labels, if
// any, are appended before the `le` label.
func (m *MetricsWriter) Histo(name, labels string, h *telemetry.Histogram, scale float64) {
	cum := h.Cumulative()
	var total int64
	for _, cb := range cum {
		total = cb.Count
		if cb.Upper == math.MaxInt64 {
			continue // folded into +Inf below
		}
		m.bucketRow(name, labels, strconv.FormatFloat(float64(cb.Upper)*scale, 'g', -1, 64), cb.Count)
	}
	m.bucketRow(name, labels, "+Inf", total)
	sum := float64(h.Sum()) * scale
	m.row(name+"_sum", labels, sum)
	m.row(name+"_count", labels, float64(total))
}

func (m *MetricsWriter) bucketRow(name, labels, le string, count int64) {
	b := m.buf[:0]
	b = append(b, name...)
	b = append(b, "_bucket{"...)
	if labels != "" {
		b = append(b, labels...)
		b = append(b, ',')
	}
	b = append(b, `le="`...)
	b = append(b, le...)
	b = append(b, `"} `...)
	b = strconv.AppendInt(b, count, 10)
	b = append(b, '\n')
	m.buf = b
	m.line(b)
}

// appendFloat renders v compactly: integers without a fraction, others
// in shortest round-trip form.
func appendFloat(b []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
