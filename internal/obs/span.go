package obs

import (
	"net/http"
	"sync"
	"time"
)

// Phase names one segment of a request's lifecycle. A span is always in
// exactly one phase; To moves it forward and charges the elapsed time to
// the phase it left, so the recorded durations telescope to the wall
// time with no gaps and no overlaps.
type Phase uint8

// The request lifecycle, in handler order.
const (
	// PhaseParse covers reading and decoding the request body.
	PhaseParse Phase = iota
	// PhaseQueue covers the admission-controller wait (queue depth ×
	// service time — the term that absorbs latency past the saturation
	// knee).
	PhaseQueue
	// PhaseGraph covers graph resolution: cache lookup, and on a miss
	// the single-flight dataset load or upload parse.
	PhaseGraph
	// PhaseSchedule covers schedule resolution: cache lookup, and on a
	// miss the matching-order/restriction compile.
	PhaseSchedule
	// PhaseRun covers the governed run (software mine or simulation).
	PhaseRun
	// PhaseEncode covers writing the response.
	PhaseEncode
	// NumPhases sizes per-phase arrays.
	NumPhases
)

// phaseNames index by Phase.
var phaseNames = [NumPhases]string{"parse", "queue", "graph", "schedule", "run", "encode"}

// String names the phase ("parse", "queue", ...).
func (ph Phase) String() string {
	if ph < NumPhases {
		return phaseNames[ph]
	}
	return "unknown"
}

// Phases is a fixed per-phase duration breakdown. The unit belongs to
// the producer: SpanView carries nanoseconds (exact attribution),
// serve.Response carries microseconds (wire compactness).
type Phases struct {
	Parse    int64 `json:"parse"`
	Queue    int64 `json:"queue"`
	Graph    int64 `json:"graph"`
	Schedule int64 `json:"schedule"`
	Run      int64 `json:"run"`
	Encode   int64 `json:"encode"`
}

// Sum totals the breakdown.
func (p Phases) Sum() int64 {
	return p.Parse + p.Queue + p.Graph + p.Schedule + p.Run + p.Encode
}

// phasesFrom packs a per-phase array into the named struct, dividing by
// div (1 for ns, 1000 for µs).
func phasesFrom(a [NumPhases]int64, div int64) Phases {
	return Phases{
		Parse:    a[PhaseParse] / div,
		Queue:    a[PhaseQueue] / div,
		Graph:    a[PhaseGraph] / div,
		Schedule: a[PhaseSchedule] / div,
		Run:      a[PhaseRun] / div,
		Encode:   a[PhaseEncode] / div,
	}
}

// Span records one request's lifecycle. The handler goroutine owns the
// write side (To, SetTarget, ..., End); the inspection endpoints read
// concurrent consistent snapshots via View. Spans are pooled — never
// retain one past End.
type Span struct {
	plane *Plane
	id    uint64

	mu       sync.Mutex
	trace    [maxTraceLen]byte
	traceLen int
	op       string
	graphKey string
	schedule string
	budgetWallMS int64
	budgetEvents int64

	start   time.Time
	last    time.Time
	cur     Phase
	phaseNS [NumPhases]int64
	wallNS  int64
	status  int
	kind    string
	errMsg  string
	done    bool
	ended   bool

	// progress, when set, joins the span with its running workload's
	// live gauges (the simulate path attaches the epoch sampler here).
	progress func() map[string]int64
	// snapshot, when set, renders a diagnostic state dump for the
	// slow-request log (the simulate path attaches the engine's
	// governor snapshot here).
	snapshot func() string
}

// reset clears a span for pooling. Called with no lock held (the span is
// unreachable: either fresh from the pool or already unregistered).
func (s *Span) reset() {
	*s = Span{}
}

// setTrace installs the inbound trace ID, or generates one.
func (s *Span) setTrace(incoming string) {
	if validTrace(incoming) {
		s.traceLen = copy(s.trace[:], incoming)
		return
	}
	s.traceLen = genTrace(s.trace[:])
}

// TraceID returns the span's trace ID (generated or accepted).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.trace[:s.traceLen])
}

// ID returns the span's registry ID (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// To moves the span into phase ph, charging the time since the previous
// transition to the phase being left. Nil-safe no-op.
func (s *Span) To(ph Phase) {
	if s == nil || ph >= NumPhases {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if !s.ended {
		s.phaseNS[s.cur] += now.Sub(s.last).Nanoseconds()
		s.last = now
		s.cur = ph
	}
	s.mu.Unlock()
}

// SetTarget records what the request resolved to (graph cache key and
// schedule name). Nil-safe.
func (s *Span) SetTarget(graphKey, schedule string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.graphKey, s.schedule = graphKey, schedule
	s.mu.Unlock()
}

// SetBudget records the request's declared budgets. Nil-safe.
func (s *Span) SetBudget(wallMS, events int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.budgetWallMS, s.budgetEvents = wallMS, events
	s.mu.Unlock()
}

// SetProgress attaches a live-gauge probe: /v1/requests/{id} calls it
// while the span is in flight to join the request with its running
// workload (e.g. the accelerator's epoch-sampler gauges). fn must be
// safe for concurrent use. Nil-safe.
func (s *Span) SetProgress(fn func() map[string]int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.progress = fn
	s.mu.Unlock()
}

// SetSnapshot attaches a diagnostic-state renderer consulted by the
// slow-request log (e.g. the simulation engine's governor snapshot).
// fn runs after the request's work completed, on the logging path.
// Nil-safe.
func (s *Span) SetSnapshot(fn func() string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.snapshot = fn
	s.mu.Unlock()
}

// End completes the span with the response's status and machine-readable
// error kind ("ok" for 2xx), unregisters it and emits the log lines.
// Idempotent and nil-safe; the span must not be used afterwards.
func (s *Span) End(status int, kind, errMsg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.status = status
	s.kind = kind
	s.errMsg = errMsg
	s.mu.Unlock()
	s.plane.end(s)
}

// BreakdownUS snapshots the per-phase durations so far in microseconds
// (the Response's phases_us field). Nil-safe.
func (s *Span) BreakdownUS() Phases {
	if s == nil {
		return Phases{}
	}
	now := time.Now()
	s.mu.Lock()
	a := s.phaseNS
	if !s.ended {
		a[s.cur] += now.Sub(s.last).Nanoseconds()
	}
	s.mu.Unlock()
	return phasesFrom(a, 1e3)
}

// View snapshots the span for inspection.
func (s *Span) View() SpanView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewLocked()
}

// viewLocked builds the view with s.mu held.
func (s *Span) viewLocked() SpanView {
	v := SpanView{
		ID:           s.id,
		Trace:        string(s.trace[:s.traceLen]),
		Op:           s.op,
		GraphKey:     s.graphKey,
		Schedule:     s.schedule,
		BudgetWallMS: s.budgetWallMS,
		BudgetEvents: s.budgetEvents,
		StartUnixMS:  s.start.UnixMilli(),
		Done:         s.done,
		Status:       s.status,
		Kind:         s.kind,
		Error:        s.errMsg,
	}
	a := s.phaseNS
	if s.done {
		v.WallNS = s.wallNS
		v.Phase = "done"
		v.Outcome = OutcomeForStatus(s.status)
	} else {
		now := time.Now()
		a[s.cur] += now.Sub(s.last).Nanoseconds()
		v.WallNS = now.Sub(s.start).Nanoseconds()
		v.Phase = s.cur.String()
		// The probe rides only on live views: a completed view in the
		// recent ring must not retain the workload it joined.
		v.progress = s.progress
	}
	v.PhasesNS = phasesFrom(a, 1)
	return v
}

// SpanView is an immutable snapshot of a span, JSON-renderable for the
// /v1/requests endpoints. For a live span WallNS and PhasesNS cover
// elapsed-so-far; for a completed one they are final and PhasesNS sums
// to WallNS exactly.
type SpanView struct {
	ID           uint64 `json:"id"`
	Trace        string `json:"trace"`
	Op           string `json:"op"`
	GraphKey     string `json:"graph_key,omitempty"`
	Schedule     string `json:"schedule,omitempty"`
	BudgetWallMS int64  `json:"budget_wall_ms,omitempty"`
	BudgetEvents int64  `json:"budget_events,omitempty"`
	StartUnixMS  int64  `json:"start_unix_ms"`
	Phase        string `json:"phase"` // current phase, or "done"
	Done         bool   `json:"done"`
	Status       int    `json:"status,omitempty"`
	Kind         string `json:"kind,omitempty"`
	Outcome      string `json:"outcome,omitempty"`
	Error        string `json:"error,omitempty"`
	WallNS       int64  `json:"wall_ns"`
	PhasesNS     Phases `json:"phases_ns"`
	// Progress carries the live workload gauges (epoch-sampler join) on
	// detail views of in-flight requests.
	Progress map[string]int64 `json:"progress,omitempty"`

	progress func() map[string]int64
}

// FillProgress runs the span's live-gauge probe, if any (detail views
// only: listing every in-flight request should not probe them all).
func (v *SpanView) FillProgress() {
	if v.progress != nil && !v.Done {
		v.Progress = v.progress()
	}
}

// OutcomeForStatus classifies an HTTP status into the exposition's
// outcome label.
func OutcomeForStatus(status int) string {
	switch {
	case status >= 200 && status < 300:
		return "ok"
	case status == http.StatusTooManyRequests:
		return "shed"
	case status == http.StatusServiceUnavailable:
		return "unavail"
	case status == http.StatusRequestTimeout, status == http.StatusUnprocessableEntity:
		return "budget"
	case status == 499: // client closed request
		return "client_gone"
	case status >= 400 && status < 500:
		return "client_error"
	default:
		return "error"
	}
}
