package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent mirrors the Chrome trace-event JSON schema (the same
// format internal/trace emits for simulated runs, so both open in
// chrome://tracing / Perfetto side by side).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders the request's phase breakdown as a Chrome trace:
// one complete ("X") event per non-empty phase, laid end to end on a
// single thread, timestamps in microseconds from request arrival. The
// on-demand per-request export behind /v1/requests/{id}?format=chrome.
func (v *SpanView) WriteChrome(w io.Writer) error {
	events := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: 0,
			Args: map[string]any{"name": "shogund request"}},
		{Name: "thread_name", Ph: "M", Pid: 0, Tid: 0,
			Args: map[string]any{"name": "trace " + v.Trace}},
	}
	ph := v.PhasesNS
	var ts int64
	for i, ns := range [NumPhases]int64{ph.Parse, ph.Queue, ph.Graph, ph.Schedule, ph.Run, ph.Encode} {
		us := ns / 1e3
		if ns > 0 {
			events = append(events, chromeEvent{
				Name: phaseNames[i], Cat: "request", Ph: "X",
				Ts: ts, Dur: us, Pid: 0, Tid: 0,
				Args: map[string]any{
					"op": v.Op, "status": v.Status, "kind": v.Kind,
					"graph_key": v.GraphKey, "schedule": v.Schedule,
				},
			})
		}
		ts += us
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
