package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
)

// lineLog is a buffered, mutex-guarded JSON-lines writer. Lines are
// buffered for throughput and flushed on three paths: log() flushes
// inline when FlushEvery has passed since the last flush (hot path,
// no timer wakeups under load), a background ticker flushes whatever
// an idle daemon left behind so the last line of a burst never sits
// in the buffer longer than ~FlushEvery, and flush() drains
// explicitly — the daemon's graceful drain calls it so the final
// requests of a SIGTERM drain always reach the log.
type lineLog struct {
	mu        sync.Mutex
	w         *bufio.Writer
	every     time.Duration
	lastFlush time.Time
	err       error
	buf       []byte // reused line buffer

	stop     chan struct{}
	stopOnce sync.Once
}

func newLineLog(w io.Writer, every time.Duration) *lineLog {
	l := &lineLog{
		w:         bufio.NewWriterSize(w, 32<<10),
		every:     every,
		lastFlush: time.Now(),
		buf:       make([]byte, 0, 512),
		stop:      make(chan struct{}),
	}
	go l.flushLoop()
	return l
}

// flushLoop drains the buffer every interval until close(). It skips
// the syscall when the buffer is empty (quiet daemons stay quiet).
func (l *lineLog) flushLoop() {
	t := time.NewTicker(l.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.w.Buffered() > 0 {
				if err := l.w.Flush(); err != nil && l.err == nil {
					l.err = err
				}
				l.lastFlush = time.Now()
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// close stops the background flusher and drains the buffer one last
// time. Nil-safe and idempotent.
func (l *lineLog) close() error {
	if l == nil {
		return nil
	}
	l.stopOnce.Do(func() { close(l.stop) })
	return l.flush()
}

// flush drains the buffer. Nil-safe (planes without a log pass nil).
func (l *lineLog) flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	l.lastFlush = time.Now()
	return l.err
}

// log appends one request line. detailed selects the slow-log shape
// (adds the error message and the diagnostic snapshot).
func (l *lineLog) log(v *SpanView, snapshot string, detailed bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	b := l.buf[:0]
	b = append(b, `{"ts":"`...)
	b = time.Now().UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","trace":`...)
	b = appendJSONString(b, v.Trace)
	b = append(b, `,"id":`...)
	b = strconv.AppendUint(b, v.ID, 10)
	b = append(b, `,"op":`...)
	b = appendJSONString(b, v.Op)
	b = append(b, `,"status":`...)
	b = strconv.AppendInt(b, int64(v.Status), 10)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, v.Kind)
	b = append(b, `,"outcome":`...)
	b = appendJSONString(b, v.Outcome)
	if v.GraphKey != "" {
		b = append(b, `,"graph_key":`...)
		b = appendJSONString(b, v.GraphKey)
	}
	if v.Schedule != "" {
		b = append(b, `,"schedule":`...)
		b = appendJSONString(b, v.Schedule)
	}
	if v.BudgetWallMS > 0 {
		b = append(b, `,"budget_wall_ms":`...)
		b = strconv.AppendInt(b, v.BudgetWallMS, 10)
	}
	if v.BudgetEvents > 0 {
		b = append(b, `,"budget_events":`...)
		b = strconv.AppendInt(b, v.BudgetEvents, 10)
	}
	b = append(b, `,"wall_us":`...)
	b = strconv.AppendInt(b, v.WallNS/1e3, 10)
	ph := v.PhasesNS
	for i, d := range [NumPhases]int64{ph.Parse, ph.Queue, ph.Graph, ph.Schedule, ph.Run, ph.Encode} {
		b = append(b, `,"`...)
		b = append(b, phaseNames[i]...)
		b = append(b, `_us":`...)
		b = strconv.AppendInt(b, d/1e3, 10)
	}
	if detailed {
		if v.Error != "" {
			b = append(b, `,"error":`...)
			b = appendJSONString(b, v.Error)
		}
		if snapshot != "" {
			b = append(b, `,"snapshot":`...)
			b = appendJSONString(b, snapshot)
		}
	}
	b = append(b, "}\n"...)
	l.buf = b

	if _, err := l.w.Write(b); err != nil && l.err == nil {
		l.err = err
	}
	now := time.Now()
	if now.Sub(l.lastFlush) >= l.every {
		if err := l.w.Flush(); err != nil && l.err == nil {
			l.err = err
		}
		l.lastFlush = now
	}
	l.mu.Unlock()
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted JSON string, escaping quotes,
// backslashes and control characters (multi-line governor snapshots pass
// through here).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
