// Package obs is the serving layer's request observability plane. Where
// internal/metrics instruments the simulated chip and internal/telemetry
// makes one run time-resolved, obs makes the daemon's *requests*
// observable: every request gets a trace ID and a Span that attributes
// its wall time to lifecycle phases (parse, admission-queue wait, graph
// load, schedule compile, governed run, response encode), a registry
// keeps the in-flight set inspectable while requests run, completed
// requests land in structured JSON access/slow logs, and per-(endpoint,
// outcome) latency histograms back a Prometheus-text /metrics plane.
//
// The design constraints mirror internal/telemetry's:
//
//   - Off is free. A nil *Plane hands out nil *Spans whose methods are
//     nil-check no-ops, so a daemon built without observability pays
//     nothing on the request path (pinned by BenchmarkServeObsOff).
//   - Attribution is conservative. Phase durations are recorded as
//     differences of one monotonic timestamp chain, so for every
//     completed request they telescope: the phases sum to the measured
//     wall time exactly (pinned by TestSpanAttributionConservative).
//   - Live reads are safe. The inspection endpoints snapshot spans and
//     registry state under locks while handlers keep writing.
//
// The package depends only on the standard library and
// internal/telemetry (whose mergeable Histogram backs the latency
// families).
package obs

import (
	"encoding/hex"
	"io"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"shogun/internal/telemetry"
)

// TraceHeader is the HTTP header a trace ID is accepted from and echoed
// on: callers propagate their own IDs across retries and services, and
// every response carries the ID its access-log line is keyed by.
const TraceHeader = "X-Shogun-Trace"

// maxTraceLen bounds accepted trace IDs (generated ones are 16 hex
// chars; inbound IDs up to this length are taken verbatim).
const maxTraceLen = 64

// Options parameterizes a Plane.
type Options struct {
	// AccessLog, when non-nil, receives one JSON line per completed
	// request. Writes are buffered; Flush drains them (the daemon
	// flushes during graceful drain so a SIGTERM never loses the final
	// requests).
	AccessLog io.Writer
	// SlowLog, when non-nil, receives a detailed JSON line (full phase
	// breakdown, error, governor snapshot when one was attached) for
	// every request slower than SlowThreshold.
	SlowLog io.Writer
	// SlowThreshold classifies a request as slow (default 1s).
	SlowThreshold time.Duration
	// Recent bounds the ring of completed-request views kept for
	// /v1/requests inspection and on-demand Chrome export (default 64).
	Recent int
	// FlushEvery bounds how long a completed request may sit in the log
	// buffers before an automatic flush (default 1s).
	FlushEvery time.Duration
}

func (o *Options) fill() {
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = time.Second
	}
	if o.Recent <= 0 {
		o.Recent = 64
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = time.Second
	}
}

// Plane is one daemon's observability state: the span pool, the
// in-flight registry, the completed-request ring, the per-(op, outcome)
// latency families and the log writers. A nil *Plane disables
// everything at zero cost.
type Plane struct {
	opts   Options
	access *lineLog
	slow   *lineLog

	pool sync.Pool

	mu       sync.Mutex
	idSeq    uint64
	inflight map[uint64]*Span
	recent   []SpanView // ring, newest at recentPos-1
	recentPos int
	recentN  int

	famMu    sync.RWMutex
	families map[famKey]*telemetry.Histogram

	slowCount int64 // guarded by mu
}

type famKey struct{ op, outcome string }

// NewPlane builds a plane. The zero Options value is valid: no logs,
// default thresholds.
func NewPlane(opts Options) *Plane {
	opts.fill()
	p := &Plane{
		opts:     opts,
		inflight: make(map[uint64]*Span, 64),
		recent:   make([]SpanView, opts.Recent),
		families: make(map[famKey]*telemetry.Histogram, 24),
	}
	if opts.AccessLog != nil {
		p.access = newLineLog(opts.AccessLog, opts.FlushEvery)
	}
	if opts.SlowLog != nil {
		p.slow = newLineLog(opts.SlowLog, opts.FlushEvery)
	}
	p.pool.New = func() any { return new(Span) }
	return p
}

// Begin opens a span for one request arriving at start. incoming is the
// caller-supplied trace ID (empty or invalid → a fresh one is
// generated). Safe on a nil plane: returns a nil span whose methods are
// no-ops.
func (p *Plane) Begin(op, incoming string, start time.Time) *Span {
	if p == nil {
		return nil
	}
	s := p.pool.Get().(*Span)
	s.reset()
	s.plane = p
	s.op = op
	s.start = start
	s.last = start
	s.setTrace(incoming)

	p.mu.Lock()
	p.idSeq++
	s.id = p.idSeq
	p.inflight[s.id] = s
	p.mu.Unlock()
	return s
}

// InFlight reports the number of registered live spans.
func (p *Plane) InFlight() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inflight)
}

// SlowCount reports requests that crossed the slow threshold.
func (p *Plane) SlowCount() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.slowCount
}

// end unregisters the span, folds it into the latency families and the
// completed ring, writes the logs and returns the span to the pool.
// Called exactly once per span (Span.End guards re-entry).
//
// Pooling is safe because the inspection endpoints only reach spans
// through p.inflight and only view them while holding p.mu: the delete
// below happens under p.mu strictly before reset(), so once we release
// the lock no reader can still hold this *Span.
func (p *Plane) end(s *Span) {
	now := time.Now()
	s.mu.Lock()
	s.phaseNS[s.cur] += now.Sub(s.last).Nanoseconds()
	s.last = now
	s.wallNS = now.Sub(s.start).Nanoseconds()
	s.done = true
	v := s.viewLocked()
	s.mu.Unlock()

	p.observe(s.op, v.Outcome, v.WallNS/1e3)

	slow := time.Duration(v.WallNS) >= p.opts.SlowThreshold
	var snap string
	if slow && s.snapshot != nil {
		snap = s.snapshot()
	}

	p.mu.Lock()
	delete(p.inflight, s.id)
	p.recent[p.recentPos] = v
	p.recentPos = (p.recentPos + 1) % len(p.recent)
	if p.recentN < len(p.recent) {
		p.recentN++
	}
	if slow {
		p.slowCount++
	}
	p.mu.Unlock()

	if p.access != nil {
		p.access.log(&v, "", false)
	}
	if slow && p.slow != nil {
		p.slow.log(&v, snap, true)
	}

	s.reset() // drop closures and references before pooling
	p.pool.Put(s)
}

// observe folds one completed request into its (op, outcome) latency
// family. The family histogram doubles as the request counter for the
// exposition (count == requests, distribution == latency).
func (p *Plane) observe(op, outcome string, us int64) {
	k := famKey{op, outcome}
	p.famMu.RLock()
	h := p.families[k]
	p.famMu.RUnlock()
	if h == nil {
		p.famMu.Lock()
		if h = p.families[k]; h == nil {
			h = telemetry.NewHistogram()
			p.families[k] = h
		}
		p.famMu.Unlock()
	}
	h.Observe(us)
}

// Family is one (op, outcome) latency family of the exposition.
type Family struct {
	Op      string
	Outcome string
	Hist    *telemetry.Histogram
}

// Families returns the latency families in deterministic order.
func (p *Plane) Families() []Family {
	if p == nil {
		return nil
	}
	p.famMu.RLock()
	out := make([]Family, 0, len(p.families))
	for k, h := range p.families {
		out = append(out, Family{Op: k.op, Outcome: k.outcome, Hist: h})
	}
	p.famMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Outcome < out[j].Outcome
	})
	return out
}

// Snapshot lists the live spans (oldest first) followed by nothing —
// completed requests are listed by Recent.
//
// The views are built while p.mu is held: end() removes a span from
// inflight under p.mu before resetting and pooling it, so any span
// reachable here cannot be reset (or reissued by Begin) until we
// release the lock. Viewing after unlock would race with that reset.
// Lock order is p.mu → s.mu; no writer acquires p.mu while holding
// s.mu, so this cannot deadlock.
func (p *Plane) Snapshot() []SpanView {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]SpanView, 0, len(p.inflight))
	for _, s := range p.inflight {
		// end() marks a span done under s.mu before unregistering it
		// under p.mu, so a completed span can linger here for a moment;
		// it is no longer live and is about to land in the recent ring.
		if v := s.View(); !v.Done {
			out = append(out, v)
		}
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Recent lists the completed-request ring, newest first.
func (p *Plane) Recent() []SpanView {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SpanView, 0, p.recentN)
	for i := 0; i < p.recentN; i++ {
		idx := (p.recentPos - 1 - i + len(p.recent)) % len(p.recent)
		out = append(out, p.recent[idx])
	}
	return out
}

// Lookup finds a request by ID, live or recently completed. As in
// Snapshot, a live span is viewed while p.mu is still held so the view
// cannot race with end()'s reset of the same span.
func (p *Plane) Lookup(id uint64) (SpanView, bool) {
	if p == nil {
		return SpanView{}, false
	}
	p.mu.Lock()
	if s, ok := p.inflight[id]; ok {
		v := s.View()
		p.mu.Unlock()
		return v, true
	}
	for i := 0; i < p.recentN; i++ {
		idx := (p.recentPos - 1 - i + len(p.recent)) % len(p.recent)
		if p.recent[idx].ID == id {
			v := p.recent[idx]
			p.mu.Unlock()
			return v, true
		}
	}
	p.mu.Unlock()
	return SpanView{}, false
}

// Flush drains the buffered access and slow logs. The daemon calls this
// during graceful drain so the final requests of a SIGTERM drain are
// never lost in a buffer.
func (p *Plane) Flush() error {
	if p == nil {
		return nil
	}
	var first error
	if err := p.access.flush(); err != nil {
		first = err
	}
	if err := p.slow.flush(); err != nil && first == nil {
		first = err
	}
	return first
}

// Close stops the background log flushers and drains both logs one
// last time. Idempotent and nil-safe; spans already in flight may
// still End afterwards (their lines land in the buffer and reach the
// writer on the next explicit Flush).
func (p *Plane) Close() error {
	if p == nil {
		return nil
	}
	var first error
	if err := p.access.close(); err != nil {
		first = err
	}
	if err := p.slow.close(); err != nil && first == nil {
		first = err
	}
	return first
}

// traceSeed decorrelates generated trace IDs across daemon restarts; the
// per-request entropy comes from math/rand/v2's process-global source.
var traceSeed = rand.Uint64()

// genTrace writes a fresh 16-hex-char trace ID into dst and reports its
// length. dst must hold at least 16 bytes.
func genTrace(dst []byte) int {
	var raw [8]byte
	v := rand.Uint64() ^ traceSeed
	for i := 0; i < 8; i++ {
		raw[i] = byte(v >> (8 * i))
	}
	hex.Encode(dst[:16], raw[:])
	return 16
}

// validTrace reports whether an inbound trace ID is acceptable verbatim:
// 1..maxTraceLen characters from [0-9A-Za-z._-].
func validTrace(s string) bool {
	if len(s) == 0 || len(s) > maxTraceLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
