// Bitmap set kernels: list×bitset intersection and subtraction over
// word-packed bitsets, the dense-operand counterpart of the merge/gallop
// kernels in setops.go. G²Miner-style hybrid mining uses these for hub
// vertices, whose adjacency bitsets are prebuilt (graph.HubIndex) or built
// once and reused across sibling tasks (mine's kernel context).
//
// A bitset is a []uint64 with bit x of word x/64 set iff x is a member.
// All list inputs are strictly ascending and all elements must lie within
// the bitset's universe (len(bits)*64). Outputs are strictly ascending.
package setops

// BitsetWords reports the number of uint64 words a bitset over the
// universe [0, n) occupies.
func BitsetWords(n int) int { return (n + 63) / 64 }

// BitsetAdd sets bit x.
func BitsetAdd(bits []uint64, x VertexID) {
	bits[uint32(x)>>6] |= 1 << (uint32(x) & 63)
}

// BitsetHas reports whether bit x is set.
func BitsetHas(bits []uint64, x VertexID) bool {
	return bits[uint32(x)>>6]&(1<<(uint32(x)&63)) != 0
}

// BitsetFill sets the bit of every element of list.
func BitsetFill(bits []uint64, list []VertexID) {
	for _, x := range list {
		bits[uint32(x)>>6] |= 1 << (uint32(x) & 63)
	}
}

// BitsetClearList clears the bit of every element of list. Clearing by
// member list (rather than zeroing the whole array) keeps scratch-bitset
// maintenance proportional to the set size, not the graph size.
func BitsetClearList(bits []uint64, list []VertexID) {
	for _, x := range list {
		bits[uint32(x)>>6] &^= 1 << (uint32(x) & 63)
	}
}

// IntersectBitmap appends list ∩ bits to dst and returns the extended
// slice: each element of list is tested against the bitset in O(1).
func IntersectBitmap(dst, list []VertexID, bits []uint64) []VertexID {
	for _, x := range list {
		if bits[uint32(x)>>6]&(1<<(uint32(x)&63)) != 0 {
			dst = append(dst, x)
		}
	}
	return dst
}

// IntersectBitmapBound is IntersectBitmap restricted to elements < limit
// (symmetry-breaking truncation).
func IntersectBitmapBound(dst, list []VertexID, bits []uint64, limit VertexID) []VertexID {
	return IntersectBitmap(dst, Bound(list, limit), bits)
}

// IntersectCountBitmap reports |list ∩ bits| without materializing.
func IntersectCountBitmap(list []VertexID, bits []uint64) int {
	n := 0
	for _, x := range list {
		if bits[uint32(x)>>6]&(1<<(uint32(x)&63)) != 0 {
			n++
		}
	}
	return n
}

// IntersectCountBitmapBound reports |{x ∈ list ∩ bits : x < limit}|.
func IntersectCountBitmapBound(list []VertexID, bits []uint64, limit VertexID) int {
	return IntersectCountBitmap(Bound(list, limit), bits)
}

// SubtractBitmap appends list \ bits to dst and returns the extended
// slice.
func SubtractBitmap(dst, list []VertexID, bits []uint64) []VertexID {
	for _, x := range list {
		if bits[uint32(x)>>6]&(1<<(uint32(x)&63)) == 0 {
			dst = append(dst, x)
		}
	}
	return dst
}

// SubtractBitmapBound is SubtractBitmap restricted to elements < limit.
func SubtractBitmapBound(dst, list []VertexID, bits []uint64, limit VertexID) []VertexID {
	return SubtractBitmap(dst, Bound(list, limit), bits)
}

// SubtractCountBitmap reports |list \ bits| without materializing.
func SubtractCountBitmap(list []VertexID, bits []uint64) int {
	return len(list) - IntersectCountBitmap(list, bits)
}

// SubtractCountBitmapBound reports |{x ∈ list \ bits : x < limit}|.
func SubtractCountBitmapBound(list []VertexID, bits []uint64, limit VertexID) int {
	b := Bound(list, limit)
	return len(b) - IntersectCountBitmap(b, bits)
}
