package setops

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func set(xs ...VertexID) []VertexID { return xs }

func TestIntersectBasic(t *testing.T) {
	cases := []struct{ a, b, want []VertexID }{
		{set(), set(1, 2), set()},
		{set(1, 2), set(), set()},
		{set(1, 3, 5), set(2, 4, 6), set()},
		{set(1, 3, 5), set(3, 5, 7), set(3, 5)},
		{set(1, 2, 3), set(1, 2, 3), set(1, 2, 3)},
		{set(0), set(0), set(0)},
	}
	for _, c := range cases {
		got := Intersect(nil, c.a, c.b)
		if !equal(got, c.want) {
			t.Errorf("Intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if n := IntersectCount(c.a, c.b); n != len(c.want) {
			t.Errorf("IntersectCount(%v,%v) = %d, want %d", c.a, c.b, n, len(c.want))
		}
	}
}

func TestIntersectAppendsToDst(t *testing.T) {
	dst := set(99)
	got := Intersect(dst, set(1, 2), set(2, 3))
	if !equal(got, set(99, 2)) {
		t.Fatalf("Intersect did not append: %v", got)
	}
}

func TestGallopPath(t *testing.T) {
	big := make([]VertexID, 2000)
	for i := range big {
		big[i] = VertexID(3 * i)
	}
	small := set(0, 3, 7, 5997, 6000)
	got := Intersect(nil, small, big)
	want := set(0, 3, 5997)
	if !equal(got, want) {
		t.Fatalf("galloping Intersect = %v, want %v", got, want)
	}
	if n := IntersectCount(small, big); n != 3 {
		t.Fatalf("galloping IntersectCount = %d, want 3", n)
	}
	// Symmetric argument order must not matter.
	if got2 := Intersect(nil, big, small); !equal(got2, want) {
		t.Fatalf("swapped galloping Intersect = %v, want %v", got2, want)
	}
}

func TestSubtract(t *testing.T) {
	cases := []struct{ a, b, want []VertexID }{
		{set(), set(1), set()},
		{set(1, 2, 3), set(), set(1, 2, 3)},
		{set(1, 2, 3), set(2), set(1, 3)},
		{set(1, 2, 3), set(1, 2, 3), set()},
		{set(1, 5, 9), set(0, 2, 4, 6, 8, 10), set(1, 5, 9)},
	}
	for _, c := range cases {
		if got := Subtract(nil, c.a, c.b); !equal(got, c.want) {
			t.Errorf("Subtract(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBoundAndLowerBound(t *testing.T) {
	s := set(2, 4, 6, 8)
	if got := Bound(s, 6); !equal(got, set(2, 4)) {
		t.Errorf("Bound(...,6) = %v", got)
	}
	if got := Bound(s, 100); !equal(got, s) {
		t.Errorf("Bound(...,100) = %v", got)
	}
	if got := Bound(s, 0); len(got) != 0 {
		t.Errorf("Bound(...,0) = %v", got)
	}
	if got := LowerBound(s, 4); !equal(got, set(6, 8)) {
		t.Errorf("LowerBound(...,4) = %v", got)
	}
	if got := LowerBound(s, 9); len(got) != 0 {
		t.Errorf("LowerBound(...,9) = %v", got)
	}
}

func TestRemoveAndContains(t *testing.T) {
	s := set(1, 3, 5)
	if got := Remove(nil, s, 3); !equal(got, set(1, 5)) {
		t.Errorf("Remove 3 = %v", got)
	}
	if got := Remove(nil, s, 4); !equal(got, s) {
		t.Errorf("Remove missing = %v", got)
	}
	if !Contains(s, 5) || Contains(s, 4) || Contains(nil, 1) {
		t.Error("Contains misbehaved")
	}
}

func TestLines(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 16: 1, 17: 2, 32: 2, 33: 3}
	for n, want := range cases {
		if got := Lines(n); got != want {
			t.Errorf("Lines(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSegmentPairs(t *testing.T) {
	if SegmentPairs(0, 0) != 0 {
		t.Error("SegmentPairs(0,0) != 0")
	}
	if got := SegmentPairs(16, 16); got != 2 {
		t.Errorf("SegmentPairs(16,16) = %d, want 2", got)
	}
	if got := SegmentPairs(17, 1); got != 3 {
		t.Errorf("SegmentPairs(17,1) = %d, want 3", got)
	}
}

// Property tests against map-based oracles.

func randSet(rng *rand.Rand, n, universe int) []VertexID {
	m := map[VertexID]bool{}
	for i := 0; i < n; i++ {
		m[VertexID(rng.Intn(universe))] = true
	}
	out := make([]VertexID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestIntersectSubtractProperty(t *testing.T) {
	f := func(seed int64, na, nb uint8, skew bool) bool {
		rng := rand.New(rand.NewSource(seed))
		universe := 200
		a := randSet(rng, int(na), universe)
		bLen := int(nb)
		if skew {
			bLen *= 40 // force the galloping path
			universe = 4000
		}
		b := randSet(rng, bLen, universe)

		inter := Intersect(nil, a, b)
		sub := Subtract(nil, a, b)

		im := map[VertexID]bool{}
		for _, x := range b {
			im[x] = true
		}
		var wantI, wantS []VertexID
		for _, x := range a {
			if im[x] {
				wantI = append(wantI, x)
			} else {
				wantS = append(wantS, x)
			}
		}
		return equal(inter, wantI) && equal(sub, wantS) &&
			IntersectCount(a, b) == len(wantI) &&
			len(inter)+len(sub) == len(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func equal(a, b []VertexID) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
