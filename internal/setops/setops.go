// Package setops implements the sorted-set operations that pattern-aware
// graph mining is built from: intersection and subtraction of ascending
// vertex-id arrays, plus bounded variants used for symmetry breaking and a
// segment-based cost model mirroring the accelerator's functional units.
//
// All inputs must be strictly ascending; outputs are strictly ascending.
package setops

import "sort"

// VertexID mirrors graph.VertexID without importing it, keeping this
// package dependency-free.
type VertexID = int32

// IntsPerLine is the number of 4-byte vertex ids per 64-byte cache line,
// the granularity of the paper's Table 2 accounting and of the
// accelerator's divider units.
const IntsPerLine = 16

// Intersect appends a ∩ b to dst and returns the extended slice. It uses a
// merge walk, switching to galloping when the inputs are very unbalanced.
func Intersect(dst, a, b []VertexID) []VertexID {
	if len(a) == 0 || len(b) == 0 {
		return dst
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) > 32*len(a) {
		return gallopIntersect(dst, a, b)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// gallopIntersect intersects a small set a against a much larger set b by
// exponential search, the standard technique for skewed adjacency lists.
func gallopIntersect(dst, small, big []VertexID) []VertexID {
	lo := 0
	for _, x := range small {
		// Exponential probe from lo.
		step := 1
		hi := lo
		for hi < len(big) && big[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(big) {
			hi = len(big)
		}
		k := lo + sort.Search(hi-lo, func(i int) bool { return big[lo+i] >= x })
		if k < len(big) && big[k] == x {
			dst = append(dst, x)
			lo = k + 1
		} else {
			lo = k
		}
		if lo >= len(big) {
			break
		}
	}
	return dst
}

// IntersectCount reports |a ∩ b| without materializing the result.
func IntersectCount(a, b []VertexID) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) > 32*len(a) {
		n := 0
		lo := 0
		for _, x := range a {
			k := lo + sort.Search(len(b)-lo, func(i int) bool { return b[lo+i] >= x })
			if k < len(b) && b[k] == x {
				n++
				lo = k + 1
			} else {
				lo = k
			}
			if lo >= len(b) {
				break
			}
		}
		return n
	}
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Subtract appends a \ b to dst and returns the extended slice.
func Subtract(dst, a, b []VertexID) []VertexID {
	i, j := 0, 0
	for i < len(a) {
		if j >= len(b) || a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else if a[i] > b[j] {
			j++
		} else {
			i++
			j++
		}
	}
	return dst
}

// Bound returns the prefix of s whose elements are strictly less than
// limit. Mining schedules use this for symmetry-breaking truncation
// (Algorithm 1's `break` when u_k > u_{k-1}): because sets are ascending,
// truncation is a binary search, not a scan.
func Bound(s []VertexID, limit VertexID) []VertexID {
	k := sort.Search(len(s), func(i int) bool { return s[i] >= limit })
	return s[:k]
}

// LowerBound returns the suffix of s whose elements are strictly greater
// than limit.
func LowerBound(s []VertexID, limit VertexID) []VertexID {
	k := sort.Search(len(s), func(i int) bool { return s[i] > limit })
	return s[k:]
}

// Remove appends a with value x removed (if present) to dst.
func Remove(dst, a []VertexID, x VertexID) []VertexID {
	k := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	dst = append(dst, a[:k]...)
	if k < len(a) && a[k] == x {
		k++
	}
	return append(dst, a[k:]...)
}

// Contains reports whether sorted set s contains x.
func Contains(s []VertexID, x VertexID) bool {
	k := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return k < len(s) && s[k] == x
}

// Lines reports the number of cache lines occupied by a set of n vertex
// ids (Table 2 units).
func Lines(n int) int {
	return (n + IntsPerLine - 1) / IntsPerLine
}

// SegmentPairs models the accelerator's fine-grained set-operation cost:
// vertex sets are cut into 16-int segments by divider units, and only
// paired segments (with overlapping value ranges) enter intersection units
// (§5.1.1, following FINGERS). For a merge-based operation the number of
// segment pairs processed is bounded by the total number of segments of
// both inputs, which is the cost model used by the PE pipeline.
func SegmentPairs(lenA, lenB int) int {
	p := Lines(lenA) + Lines(lenB)
	if p == 0 {
		return 0
	}
	return p
}
