package setops

import (
	mathbits "math/bits"
)

// NoLimit disables symmetry-breaking truncation in the counting kernels.
// Vertex ids are < math.MaxInt32 (the graph builder caps the vertex count
// at int32 range), so no valid element ever reaches it.
const NoLimit = VertexID(1<<31 - 1)

// gallopRatio is the size imbalance beyond which the list kernels switch
// from a merge walk to galloping; it mirrors the threshold inside
// Intersect/IntersectCount.
const gallopRatio = 32

// Operand is one input of a dispatched set operation: an ascending vertex
// list, optionally backed by a word-packed bitset view of the same set.
//
// Bits is a prebuilt bitset (a graph.HubIndex entry for a hub vertex's
// adjacency). LazyBits, when non-nil, builds (or returns an already built)
// bitset on demand; the dispatcher only invokes it after deciding a bitmap
// kernel is the cheapest plan, so callers can amortize the build across
// many operations on the same set without paying for it when the bitset
// would go unused.
type Operand struct {
	List     []VertexID
	Bits     []uint64
	LazyBits func() []uint64
}

// hasBits reports whether a bitset view is available (possibly lazily).
func (o *Operand) hasBits() bool { return o.Bits != nil || o.LazyBits != nil }

// bitset materializes the bitset view. Call only after hasBits.
func (o *Operand) bitset() []uint64 {
	if o.Bits != nil {
		return o.Bits
	}
	return o.LazyBits()
}

// Stats counts kernel selections made by a Dispatcher. It is plain data:
// callers that share a Dispatcher across goroutines must merge per-worker
// copies instead (mine.ParallelCount gives each worker its own Miner and
// therefore its own Dispatcher).
type Stats struct {
	MergeOps  int64
	GallopOps int64
	BitmapOps int64
}

// Add accumulates other into s (for merging per-worker copies).
func (s *Stats) Add(other Stats) {
	s.MergeOps += other.MergeOps
	s.GallopOps += other.GallopOps
	s.BitmapOps += other.BitmapOps
}

// Dispatcher adaptively routes set operations to the merge, gallop, or
// bitmap kernel by comparing per-kernel cost estimates: a merge walk
// streams both lists (cost |a|+|b|), galloping binary-searches the smaller
// list into the larger (cost |small|·log₂|big|, worthwhile only past
// gallopRatio imbalance), and a bitmap probe streams just the non-bitset
// side (cost |probe|). Bitset build cost is not modeled: prebuilt hub
// bitsets are free at operation time, and lazy bitsets are amortized by
// the caller across sibling operations.
//
// The zero value is ready to use. Dispatchers are not safe for concurrent
// use; give each worker its own.
type Dispatcher struct {
	Stats Stats
}

// log2 returns ⌈log₂ n⌉ for n ≥ 1 (bit length), the per-element cost
// factor of a galloping search.
func log2(n int) int { return mathbits.Len(uint(n)) }

// listCost estimates the cheaper of merge and gallop for two list
// operands, mirroring the selection inside Intersect.
func listCost(la, lb int) int {
	small, big := la, lb
	if small > big {
		small, big = big, small
	}
	cost := la + lb
	if big > gallopRatio*small {
		if g := small * log2(big); g < cost {
			cost = g
		}
	}
	return cost
}

// countListKernel attributes the fallback list kernel in Stats using the
// same imbalance rule the list kernels apply internally.
func (d *Dispatcher) countListKernel(la, lb int) {
	small, big := la, lb
	if small > big {
		small, big = big, small
	}
	if big > gallopRatio*small {
		d.Stats.GallopOps++
	} else {
		d.Stats.MergeOps++
	}
}

// bitmapPlan picks the cheaper bitmap formulation (probe a's list against
// b's bitset, or vice versa) and reports whether it beats the best list
// kernel. It returns the probe list and the bitset-side operand.
func bitmapPlan(a, b *Operand) (probe []VertexID, bitsSide *Operand, ok bool) {
	la, lb := len(a.List), len(b.List)
	best := listCost(la, lb)
	// Prefer probing the smaller list; only sides with a bitset view can
	// serve as the bitset side.
	if b.hasBits() && (!a.hasBits() || la <= lb) {
		if la < best {
			return a.List, b, true
		}
		return nil, nil, false
	}
	if a.hasBits() && lb < best {
		return b.List, a, true
	}
	return nil, nil, false
}

// Intersect appends a ∩ b to dst via the cheapest kernel.
func (d *Dispatcher) Intersect(dst []VertexID, a, b Operand) []VertexID {
	if len(a.List) == 0 || len(b.List) == 0 {
		return dst
	}
	if probe, bs, ok := bitmapPlan(&a, &b); ok {
		d.Stats.BitmapOps++
		return IntersectBitmap(dst, probe, bs.bitset())
	}
	d.countListKernel(len(a.List), len(b.List))
	return Intersect(dst, a.List, b.List)
}

// Subtract appends a \ b to dst via the cheapest kernel. Only b's bitset
// view helps: the output must preserve a's order, so a's list is always
// the streamed side.
func (d *Dispatcher) Subtract(dst []VertexID, a, b Operand) []VertexID {
	if len(a.List) == 0 {
		return dst
	}
	if len(b.List) == 0 {
		return append(dst, a.List...)
	}
	if b.hasBits() {
		d.Stats.BitmapOps++
		return SubtractBitmap(dst, a.List, b.bitset())
	}
	d.Stats.MergeOps++
	return Subtract(dst, a.List, b.List)
}

// boundIf truncates list to elements < limit unless limit is NoLimit.
func boundIf(list []VertexID, limit VertexID) []VertexID {
	if limit == NoLimit {
		return list
	}
	return Bound(list, limit)
}

// IntersectCount reports |{x ∈ a ∩ b : x < limit}| (limit NoLimit
// disables truncation) via the cheapest kernel. Truncation happens before
// kernel selection: bounded prefixes are what the kernels actually
// stream, so costs are estimated on them.
func (d *Dispatcher) IntersectCount(a, b Operand, limit VertexID) int {
	al, bl := boundIf(a.List, limit), boundIf(b.List, limit)
	if len(al) == 0 || len(bl) == 0 {
		return 0
	}
	// Probing only elements < limit against a full-set bitset is exact:
	// the extra bits can never be probed.
	ta, tb := a, b
	ta.List, tb.List = al, bl
	if probe, bs, ok := bitmapPlan(&ta, &tb); ok {
		d.Stats.BitmapOps++
		return IntersectCountBitmap(probe, bs.bitset())
	}
	d.countListKernel(len(al), len(bl))
	return IntersectCount(al, bl)
}

// SubtractCount reports |{x ∈ a \ b : x < limit}| via the cheapest
// kernel.
func (d *Dispatcher) SubtractCount(a, b Operand, limit VertexID) int {
	al := boundIf(a.List, limit)
	if len(al) == 0 {
		return 0
	}
	if len(b.List) == 0 {
		return len(al)
	}
	if b.hasBits() {
		d.Stats.BitmapOps++
		return SubtractCountBitmap(al, b.bitset())
	}
	d.countListKernel(len(al), len(b.List))
	return len(al) - IntersectCount(al, b.List)
}
