package setops

import (
	"math/rand"
	"testing"
)

func benchSets(n, m, universe int, seed int64) (a, b []VertexID) {
	rng := rand.New(rand.NewSource(seed))
	return randSet(rng, n, universe), randSet(rng, m, universe)
}

func BenchmarkIntersectMerge(b *testing.B) {
	x, y := benchSets(1000, 1200, 8000, 1)
	dst := make([]VertexID, 0, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect(dst[:0], x, y)
	}
}

func BenchmarkIntersectGallop(b *testing.B) {
	x, y := benchSets(20, 40000, 200000, 2)
	dst := make([]VertexID, 0, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect(dst[:0], x, y)
	}
}

func BenchmarkIntersectCount(b *testing.B) {
	x, y := benchSets(1000, 1200, 8000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectCount(x, y)
	}
}

func BenchmarkSubtract(b *testing.B) {
	x, y := benchSets(1000, 1200, 8000, 4)
	dst := make([]VertexID, 0, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Subtract(dst[:0], x, y)
	}
}

// Hub-shaped benchmarks: operand shapes mimicking a skewed R-MAT
// adjacency — a moderate candidate list intersected against a hub
// vertex's long, low-id-clustered neighbor list. These pin the bitmap
// kernels' advantage at the densities where the miner dispatches to
// them; regressions show up against the baselines/quick.json trajectory.

// rmatLikeSet draws n distinct ids skewed toward low ids (quadratic
// bias), the shape R-MAT initiator matrices produce.
func rmatLikeSet(rng *rand.Rand, n, universe int) []VertexID {
	m := map[VertexID]bool{}
	for len(m) < n {
		f := rng.Float64()
		m[VertexID(f*f*float64(universe))] = true
	}
	out := make([]VertexID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sortIDs(out)
	return out
}

func sortIDs(v []VertexID) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// hubShape returns a candidate list, a hub adjacency list, and the hub's
// prebuilt bitset over a 16K-vertex universe.
func hubShape(listLen, hubDeg int, seed int64) (list, hub []VertexID, bits []uint64) {
	const universe = 1 << 14
	rng := rand.New(rand.NewSource(seed))
	list = rmatLikeSet(rng, listLen, universe)
	hub = rmatLikeSet(rng, hubDeg, universe)
	bits = make([]uint64, BitsetWords(universe))
	BitsetFill(bits, hub)
	return list, hub, bits
}

func BenchmarkIntersectHubMerge(b *testing.B) {
	list, hub, _ := hubShape(400, 6000, 21)
	dst := make([]VertexID, 0, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect(dst[:0], list, hub)
	}
}

func BenchmarkIntersectHubBitmap(b *testing.B) {
	list, _, bits := hubShape(400, 6000, 21)
	dst := make([]VertexID, 0, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectBitmap(dst[:0], list, bits)
	}
}

func BenchmarkIntersectCountHubBitmapBound(b *testing.B) {
	list, _, bits := hubShape(400, 6000, 22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectCountBitmapBound(list, bits, 1<<13)
	}
}

func BenchmarkSubtractHubMerge(b *testing.B) {
	list, hub, _ := hubShape(400, 6000, 23)
	dst := make([]VertexID, 0, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Subtract(dst[:0], list, hub)
	}
}

func BenchmarkSubtractHubBitmap(b *testing.B) {
	list, _, bits := hubShape(400, 6000, 23)
	dst := make([]VertexID, 0, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = SubtractBitmap(dst[:0], list, bits)
	}
}

// BenchmarkDispatcherHubIntersect measures the adaptive path end to end
// (cost estimate + bitmap kernel) against a hub operand.
func BenchmarkDispatcherHubIntersect(b *testing.B) {
	list, hub, bits := hubShape(400, 6000, 24)
	a := Operand{List: list}
	h := Operand{List: hub, Bits: bits}
	var d Dispatcher
	dst := make([]VertexID, 0, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = d.Intersect(dst[:0], a, h)
	}
}

// BenchmarkDispatcherBalancedFallback pins the dispatch overhead when no
// bitset view exists and the merge walk is chosen (the seed hot path).
func BenchmarkDispatcherBalancedFallback(b *testing.B) {
	x, y := benchSets(1000, 1200, 8000, 25)
	a, c := Operand{List: x}, Operand{List: y}
	var d Dispatcher
	dst := make([]VertexID, 0, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = d.Intersect(dst[:0], a, c)
	}
}
