package setops

import (
	"math/rand"
	"testing"
)

func benchSets(n, m, universe int, seed int64) (a, b []VertexID) {
	rng := rand.New(rand.NewSource(seed))
	return randSet(rng, n, universe), randSet(rng, m, universe)
}

func BenchmarkIntersectMerge(b *testing.B) {
	x, y := benchSets(1000, 1200, 8000, 1)
	dst := make([]VertexID, 0, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect(dst[:0], x, y)
	}
}

func BenchmarkIntersectGallop(b *testing.B) {
	x, y := benchSets(20, 40000, 200000, 2)
	dst := make([]VertexID, 0, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect(dst[:0], x, y)
	}
}

func BenchmarkIntersectCount(b *testing.B) {
	x, y := benchSets(1000, 1200, 8000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectCount(x, y)
	}
}

func BenchmarkSubtract(b *testing.B) {
	x, y := benchSets(1000, 1200, 8000, 4)
	dst := make([]VertexID, 0, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Subtract(dst[:0], x, y)
	}
}
