package setops

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildBits packs list into a fresh bitset over [0, universe).
func buildBits(list []VertexID, universe int) []uint64 {
	bits := make([]uint64, BitsetWords(universe))
	BitsetFill(bits, list)
	return bits
}

func TestBitsetBasics(t *testing.T) {
	bits := make([]uint64, BitsetWords(200))
	BitsetAdd(bits, 0)
	BitsetAdd(bits, 63)
	BitsetAdd(bits, 64)
	BitsetAdd(bits, 199)
	for _, x := range []VertexID{0, 63, 64, 199} {
		if !BitsetHas(bits, x) {
			t.Errorf("BitsetHas(%d) = false after add", x)
		}
	}
	if BitsetHas(bits, 1) || BitsetHas(bits, 65) {
		t.Error("BitsetHas true for unset bit")
	}
	BitsetClearList(bits, set(63, 64))
	if BitsetHas(bits, 63) || BitsetHas(bits, 64) {
		t.Error("BitsetClearList left bits set")
	}
	if !BitsetHas(bits, 0) || !BitsetHas(bits, 199) {
		t.Error("BitsetClearList cleared unrelated bits")
	}
}

func TestBitmapKernelsBasic(t *testing.T) {
	a := set(1, 5, 64, 100, 150)
	b := set(5, 64, 99, 150, 151)
	bits := buildBits(b, 200)
	if got := IntersectBitmap(nil, a, bits); !equal(got, set(5, 64, 150)) {
		t.Errorf("IntersectBitmap = %v", got)
	}
	if got := IntersectCountBitmap(a, bits); got != 3 {
		t.Errorf("IntersectCountBitmap = %d", got)
	}
	if got := SubtractBitmap(nil, a, bits); !equal(got, set(1, 100)) {
		t.Errorf("SubtractBitmap = %v", got)
	}
	if got := SubtractCountBitmap(a, bits); got != 2 {
		t.Errorf("SubtractCountBitmap = %d", got)
	}
	if got := IntersectBitmapBound(nil, a, bits, 100); !equal(got, set(5, 64)) {
		t.Errorf("IntersectBitmapBound = %v", got)
	}
	if got := IntersectCountBitmapBound(a, bits, 100); got != 2 {
		t.Errorf("IntersectCountBitmapBound = %d", got)
	}
	if got := SubtractBitmapBound(nil, a, bits, 150); !equal(got, set(1, 100)) {
		t.Errorf("SubtractBitmapBound = %v", got)
	}
	if got := SubtractCountBitmapBound(a, bits, 64); got != 1 {
		t.Errorf("SubtractCountBitmapBound = %d", got)
	}
}

// fuzzSet decodes bytes into a strictly ascending list: each byte is a
// positive delta, giving dense and sparse shapes under fuzzer control.
func fuzzSet(data []byte, universe VertexID) []VertexID {
	var out []VertexID
	cur := VertexID(-1)
	for _, b := range data {
		cur += VertexID(b%37) + 1
		if cur >= universe {
			break
		}
		out = append(out, cur)
	}
	return out
}

// FuzzBitmapKernels is the differential fuzz test: every bitmap kernel
// (including the Bound-truncated variants and the adaptive dispatcher)
// must agree with the merge reference on arbitrary ascending inputs, for
// both materialized results and counts.
func FuzzBitmapKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 2, 4}, uint16(50))
	f.Add([]byte{}, []byte{1}, uint16(0))
	f.Add([]byte{36, 36, 36, 1, 1, 1, 1}, []byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, uint16(1000))
	f.Add([]byte{5, 5, 5, 5}, []byte{}, uint16(7))
	f.Fuzz(func(t *testing.T, da, db []byte, rawLimit uint16) {
		const universe = 4096
		a := fuzzSet(da, universe)
		b := fuzzSet(db, universe)
		bits := buildBits(b, universe)
		limit := VertexID(rawLimit) % (universe + 1)

		wantI := Intersect(nil, a, b)
		wantS := Subtract(nil, a, b)

		if got := IntersectBitmap(nil, a, bits); !equal(got, wantI) {
			t.Fatalf("IntersectBitmap: %v want %v", got, wantI)
		}
		if got := IntersectCountBitmap(a, bits); got != len(wantI) {
			t.Fatalf("IntersectCountBitmap: %d want %d", got, len(wantI))
		}
		if got := SubtractBitmap(nil, a, bits); !equal(got, wantS) {
			t.Fatalf("SubtractBitmap: %v want %v", got, wantS)
		}
		if got := SubtractCountBitmap(a, bits); got != len(wantS) {
			t.Fatalf("SubtractCountBitmap: %d want %d", got, len(wantS))
		}

		wantIB := Bound(wantI, limit)
		wantSB := Bound(wantS, limit)
		if got := IntersectBitmapBound(nil, a, bits, limit); !equal(got, wantIB) {
			t.Fatalf("IntersectBitmapBound(%d): %v want %v", limit, got, wantIB)
		}
		if got := IntersectCountBitmapBound(a, bits, limit); got != len(wantIB) {
			t.Fatalf("IntersectCountBitmapBound(%d): %d want %d", limit, got, len(wantIB))
		}
		if got := SubtractBitmapBound(nil, a, bits, limit); !equal(got, wantSB) {
			t.Fatalf("SubtractBitmapBound(%d): %v want %v", limit, got, wantSB)
		}
		if got := SubtractCountBitmapBound(a, bits, limit); got != len(wantSB) {
			t.Fatalf("SubtractCountBitmapBound(%d): %d want %d", limit, got, len(wantSB))
		}

		// The dispatcher must agree for every combination of available
		// bitset views (none, one side, both, lazy).
		abits := buildBits(a, universe)
		combos := []struct {
			name string
			a, b Operand
		}{
			{"lists", Operand{List: a}, Operand{List: b}},
			{"bbits", Operand{List: a}, Operand{List: b, Bits: bits}},
			{"abits", Operand{List: a, Bits: abits}, Operand{List: b}},
			{"both", Operand{List: a, Bits: abits}, Operand{List: b, Bits: bits}},
			{"lazy", Operand{List: a}, Operand{List: b, LazyBits: func() []uint64 { return bits }}},
		}
		for _, c := range combos {
			var d Dispatcher
			if got := d.Intersect(nil, c.a, c.b); !equal(got, wantI) {
				t.Fatalf("Dispatcher.Intersect[%s]: %v want %v", c.name, got, wantI)
			}
			if got := d.Subtract(nil, c.a, c.b); !equal(got, wantS) {
				t.Fatalf("Dispatcher.Subtract[%s]: %v want %v", c.name, got, wantS)
			}
			if got := d.IntersectCount(c.a, c.b, limit); got != len(wantIB) {
				t.Fatalf("Dispatcher.IntersectCount[%s](%d): %d want %d", c.name, limit, got, len(wantIB))
			}
			if got := d.IntersectCount(c.a, c.b, NoLimit); got != len(wantI) {
				t.Fatalf("Dispatcher.IntersectCount[%s](NoLimit): %d want %d", c.name, got, len(wantI))
			}
			if got := d.SubtractCount(c.a, c.b, limit); got != len(wantSB) {
				t.Fatalf("Dispatcher.SubtractCount[%s](%d): %d want %d", c.name, limit, got, len(wantSB))
			}
			if got := d.SubtractCount(c.a, c.b, NoLimit); got != len(wantS) {
				t.Fatalf("Dispatcher.SubtractCount[%s](NoLimit): %d want %d", c.name, got, len(wantS))
			}
		}
	})
}

// TestDispatcherProperty drives the dispatcher over random skewed shapes
// via testing/quick, complementing the byte-driven fuzzer with larger
// cardinalities that exercise the gallop and bitmap cost crossovers.
func TestDispatcherProperty(t *testing.T) {
	f := func(seed int64, na, nb uint16, skew, hubA, hubB bool) bool {
		rng := rand.New(rand.NewSource(seed))
		universe := 2000
		bLen := int(nb % 600)
		if skew {
			bLen = int(nb%60) * 50 // force gallop-range imbalance
			universe = 20000
		}
		a := randSet(rng, int(na%300), universe)
		b := randSet(rng, bLen, universe)
		var oa, ob Operand
		oa.List, ob.List = a, b
		if hubA {
			oa.Bits = buildBits(a, universe)
		}
		if hubB {
			ob.Bits = buildBits(b, universe)
		}
		limit := VertexID(rng.Intn(universe + 1))

		var d Dispatcher
		wantI := Intersect(nil, a, b)
		wantS := Subtract(nil, a, b)
		return equal(d.Intersect(nil, oa, ob), wantI) &&
			equal(d.Subtract(nil, oa, ob), wantS) &&
			d.IntersectCount(oa, ob, limit) == len(Bound(wantI, limit)) &&
			d.SubtractCount(oa, ob, limit) == len(Bound(wantS, limit))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherPicksBitmapForHubOperand(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	universe := 8192
	small := randSet(rng, 200, universe)
	hub := randSet(rng, 4000, universe)
	var d Dispatcher
	d.Intersect(nil, Operand{List: small}, Operand{List: hub, Bits: buildBits(hub, universe)})
	if d.Stats.BitmapOps != 1 {
		t.Fatalf("hub intersect used kernels %+v, want 1 bitmap op", d.Stats)
	}
	// Without a bitset view the same shapes must fall back to a list
	// kernel.
	d = Dispatcher{}
	d.Intersect(nil, Operand{List: small}, Operand{List: hub})
	if d.Stats.BitmapOps != 0 || d.Stats.MergeOps+d.Stats.GallopOps != 1 {
		t.Fatalf("list fallback used kernels %+v", d.Stats)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{MergeOps: 1, GallopOps: 2, BitmapOps: 3}
	a.Add(Stats{MergeOps: 10, GallopOps: 20, BitmapOps: 30})
	if a != (Stats{MergeOps: 11, GallopOps: 22, BitmapOps: 33}) {
		t.Fatalf("Stats.Add = %+v", a)
	}
}
