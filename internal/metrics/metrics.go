// Package metrics is the simulator's hardware-counter and
// cycle-attribution layer: named counter families with declared
// conservation invariants, plus a Verify pass that treats every broken
// invariant as a modeling bug.
//
// The design keeps the hot path allocation-free: components accumulate
// plain int64 fields (sim.Counter, sim.WindowStat, pool busy integrals)
// while they run; a Registry is only materialized after the run, when
// accel.Metrics snapshots those fields into families and declares the
// identities that must hold between them (per-PE attributed cycles sum
// to run cycles, tasks created = executed + adopted, cache accesses =
// hits + misses, ...). Verify is therefore free during simulation and
// O(counters) afterwards.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Violation describes one failed invariant.
type Violation struct {
	Family    string
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Family, v.Invariant, v.Detail)
}

// VerifyError aggregates every violated invariant of a Verify pass.
type VerifyError struct {
	Violations []Violation
}

func (e *VerifyError) Error() string {
	if len(e.Violations) == 1 {
		return "metrics: invariant violated: " + e.Violations[0].String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "metrics: %d invariants violated:", len(e.Violations))
	for _, v := range e.Violations {
		b.WriteString("\n  " + v.String())
	}
	return b.String()
}

// counterVal is one named snapshot value inside a family.
type counterVal struct {
	name string
	val  int64
}

// invariant is one declared identity, pre-evaluated at declaration time
// (families are built from already-final counter values after a run).
type invariant struct {
	name   string
	ok     bool
	detail string
}

// Family is a named group of related counters and the invariants that
// tie them together.
type Family struct {
	Name     string
	counters []counterVal
	invs     []invariant
}

// Counter records a named counter value in the family and returns it
// unchanged (so call sites can record and use a value in one expression).
func (f *Family) Counter(name string, v int64) int64 {
	f.counters = append(f.counters, counterVal{name, v})
	return v
}

// Eq declares the invariant a == b.
func (f *Family) Eq(name string, a, b int64) {
	f.invs = append(f.invs, invariant{
		name:   name,
		ok:     a == b,
		detail: fmt.Sprintf("%d != %d (diff %d)", a, b, a-b),
	})
}

// Sum declares the invariant total == Σ parts.
func (f *Family) Sum(name string, total int64, parts ...int64) {
	var s int64
	for _, p := range parts {
		s += p
	}
	f.invs = append(f.invs, invariant{
		name:   name,
		ok:     s == total,
		detail: fmt.Sprintf("parts sum to %d, total is %d (diff %d)", s, total, s-total),
	})
}

// LE declares the invariant a <= b.
func (f *Family) LE(name string, a, b int64) {
	f.invs = append(f.invs, invariant{
		name:   name,
		ok:     a <= b,
		detail: fmt.Sprintf("%d > %d (excess %d)", a, b, a-b),
	})
}

// GE declares the invariant a >= b.
func (f *Family) GE(name string, a, b int64) {
	f.invs = append(f.invs, invariant{
		name:   name,
		ok:     a >= b,
		detail: fmt.Sprintf("%d < %d (short %d)", a, b, b-a),
	})
}

// Registry is a set of counter families captured after one run.
type Registry struct {
	fams []*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Family creates (and registers) a new named family.
func (r *Registry) Family(name string) *Family {
	f := &Family{Name: name}
	r.fams = append(r.fams, f)
	return f
}

// Families returns the registered families in declaration order.
func (r *Registry) Families() []*Family { return r.fams }

// Adopt registers an existing family under a new name, so a larger
// system can nest a component's registry inside its own (a cluster run
// prefixes each chip's families with "chip{i}/" and one Verify pass
// covers the whole machine). The family's counters and invariants are
// shared, not copied — families are immutable once built.
func (r *Registry) Adopt(name string, f *Family) {
	r.fams = append(r.fams, &Family{Name: name, counters: f.counters, invs: f.invs})
}

// Verify checks every declared invariant and returns a *VerifyError
// listing all violations, or nil when every identity holds.
func (r *Registry) Verify() error {
	var e VerifyError
	for _, f := range r.fams {
		for _, inv := range f.invs {
			if !inv.ok {
				e.Violations = append(e.Violations, Violation{
					Family: f.Name, Invariant: inv.name, Detail: inv.detail,
				})
			}
		}
	}
	if len(e.Violations) > 0 {
		return &e
	}
	return nil
}

// Invariants reports the total number of declared invariants (test hook:
// a Verify pass over zero invariants proves nothing).
func (r *Registry) Invariants() int {
	n := 0
	for _, f := range r.fams {
		n += len(f.invs)
	}
	return n
}

// Value looks up a counter by "family/name" path.
func (r *Registry) Value(path string) (int64, bool) {
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return 0, false
	}
	fam, name := path[:i], path[i+1:]
	for _, f := range r.fams {
		if f.Name != fam {
			continue
		}
		for _, c := range f.counters {
			if c.name == name {
				return c.val, true
			}
		}
	}
	return 0, false
}

// Snapshot flattens every counter into a "family/name" → value map
// (regression comparisons, JSON export).
func (r *Registry) Snapshot() map[string]int64 {
	m := make(map[string]int64)
	for _, f := range r.fams {
		for _, c := range f.counters {
			m[f.Name+"/"+c.name] = c.val
		}
	}
	return m
}

// Report renders every family as an aligned counter table followed by
// its invariant verdicts.
func (r *Registry) Report() string {
	var b strings.Builder
	for _, f := range r.fams {
		fmt.Fprintf(&b, "[%s]\n", f.Name)
		w := 0
		for _, c := range f.counters {
			if len(c.name) > w {
				w = len(c.name)
			}
		}
		for _, c := range f.counters {
			fmt.Fprintf(&b, "  %-*s %14d\n", w, c.name, c.val)
		}
		for _, inv := range f.invs {
			mark := "ok"
			if !inv.ok {
				mark = "VIOLATED " + inv.detail
			}
			fmt.Fprintf(&b, "  invariant: %-40s %s\n", inv.name, mark)
		}
	}
	return b.String()
}

// Diff compares two snapshots and returns the "family/name" keys whose
// values differ (sorted), for metamorphic tests asserting counter
// invariance across perturbed runs.
func Diff(a, b map[string]int64) []string {
	var keys []string
	for k, av := range a {
		if bv, ok := b[k]; !ok || bv != av {
			keys = append(keys, k)
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
