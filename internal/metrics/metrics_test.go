package metrics

import (
	"errors"
	"strings"
	"testing"
)

func TestVerifyPassesWhenInvariantsHold(t *testing.T) {
	r := NewRegistry()
	f := r.Family("cache")
	acc := f.Counter("accesses", 10)
	hits := f.Counter("hits", 7)
	miss := f.Counter("misses", 3)
	f.Sum("accesses == hits + misses", acc, hits, miss)
	f.Eq("hits", hits, 7)
	f.LE("hits <= accesses", hits, acc)
	f.GE("accesses >= misses", acc, miss)
	if err := r.Verify(); err != nil {
		t.Fatalf("unexpected violation: %v", err)
	}
	if r.Invariants() != 4 {
		t.Fatalf("invariant count = %d, want 4", r.Invariants())
	}
}

func TestVerifyReportsEveryViolation(t *testing.T) {
	r := NewRegistry()
	f := r.Family("pe0")
	f.Eq("a == b", 5, 6)
	f.Sum("t == p+q", 10, 3, 3)
	g := r.Family("pe1")
	g.LE("x <= y", 9, 2)
	g.GE("x >= z", 1, 2)

	err := r.Verify()
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VerifyError, got %T (%v)", err, err)
	}
	if len(ve.Violations) != 4 {
		t.Fatalf("violations = %d, want 4: %v", len(ve.Violations), ve)
	}
	msg := ve.Error()
	for _, want := range []string{"pe0", "pe1", "a == b", "t == p+q", "x <= y", "x >= z"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message missing %q:\n%s", want, msg)
		}
	}
}

func TestValueAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Family("dram").Counter("reads", 42)
	r.Family("noc").Counter("messages", 7)

	if v, ok := r.Value("dram/reads"); !ok || v != 42 {
		t.Fatalf("Value(dram/reads) = %d, %t", v, ok)
	}
	if _, ok := r.Value("dram/writes"); ok {
		t.Fatal("Value found a counter that was never recorded")
	}
	if _, ok := r.Value("noform"); ok {
		t.Fatal("Value accepted a path without a family separator")
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap["dram/reads"] != 42 || snap["noc/messages"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestDiff(t *testing.T) {
	a := map[string]int64{"x/a": 1, "x/b": 2, "x/c": 3}
	b := map[string]int64{"x/a": 1, "x/b": 9, "x/d": 4}
	got := Diff(a, b)
	want := []string{"x/b", "x/c", "x/d"}
	if len(got) != len(want) {
		t.Fatalf("diff = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diff = %v, want %v", got, want)
		}
	}
	if d := Diff(a, a); len(d) != 0 {
		t.Fatalf("self-diff = %v, want empty", d)
	}
}

func TestReportMarksViolations(t *testing.T) {
	r := NewRegistry()
	f := r.Family("fam")
	f.Counter("good", 1)
	f.Eq("holds", 1, 1)
	f.Eq("breaks", 1, 2)
	rep := r.Report()
	if !strings.Contains(rep, "VIOLATED") || !strings.Contains(rep, "holds") {
		t.Fatalf("report missing verdicts:\n%s", rep)
	}
}
