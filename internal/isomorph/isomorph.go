// Package isomorph implements an independent subgraph-isomorphism
// counter in the VF2 style: backtracking over pattern vertices in a
// connectivity order, extending only through graph neighbors of already-
// matched vertices, with degree-based candidate pruning.
//
// It shares no code with internal/mine's schedule-driven miner or its
// naive enumerator, making it a genuinely independent oracle for
// cross-validation: three implementations must agree on every count.
package isomorph

import (
	"fmt"

	"shogun/internal/graph"
	"shogun/internal/pattern"
)

// Count returns the number of unique subgraphs of g isomorphic to p
// (vertex-induced if induced is true), i.e. the number of satisfying
// injective mappings divided by |Aut(p)|.
func Count(g *graph.Graph, p pattern.Pattern, induced bool) (int64, error) {
	n := p.N()
	if n == 0 {
		return 0, fmt.Errorf("isomorph: empty pattern")
	}
	if !p.Connected() {
		return 0, fmt.Errorf("isomorph: pattern %s is disconnected", p.Name())
	}
	order, parents := matchOrder(p)
	degs := make([]int, n)
	for i := 0; i < n; i++ {
		degs[i] = p.Degree(i)
	}

	assigned := make([]graph.VertexID, n)
	used := map[graph.VertexID]bool{}
	var mappings int64

	var rec func(pos int)
	rec = func(pos int) {
		if pos == n {
			mappings++
			return
		}
		pv := order[pos]
		// Candidates: graph neighbors of the matched parent (pattern
		// vertex parents[pos] is adjacent to pv and already matched).
		anchor := assigned[indexOf(order, parents[pos])]
		for _, cand := range g.Neighbors(anchor) {
			if used[cand] {
				continue
			}
			if g.Degree(cand) < degs[pv] {
				continue // degree filter
			}
			if !consistent(g, p, order, assigned, pos, cand, induced) {
				continue
			}
			assigned[indexOf(order, pv)] = cand
			used[cand] = true
			rec(pos + 1)
			used[cand] = false
		}
	}

	// Roots: every graph vertex with sufficient degree.
	rootPV := order[0]
	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		if g.Degree(vid) < degs[rootPV] {
			continue
		}
		assigned[0] = vid
		used[vid] = true
		rec(1)
		used[vid] = false
	}

	auts := int64(len(p.Automorphisms()))
	if mappings%auts != 0 {
		return 0, fmt.Errorf("isomorph: %d mappings not divisible by |Aut|=%d", mappings, auts)
	}
	return mappings / auts, nil
}

// consistent checks candidate cand for pattern vertex order[pos] against
// all previously matched pattern vertices.
func consistent(g *graph.Graph, p pattern.Pattern, order []int, assigned []graph.VertexID, pos int, cand graph.VertexID, induced bool) bool {
	pv := order[pos]
	for prev := 0; prev < pos; prev++ {
		pu := order[prev]
		gu := assigned[prev]
		pe := p.HasEdge(pu, pv)
		ge := g.HasEdge(gu, cand)
		if pe && !ge {
			return false
		}
		if induced && !pe && ge {
			return false
		}
	}
	return true
}

// matchOrder returns a connectivity order (every vertex after the first
// has a pattern neighbor earlier in the order) and, per position, the
// earlier pattern vertex used as the expansion anchor.
func matchOrder(p pattern.Pattern) (order []int, parents []int) {
	n := p.N()
	order = make([]int, 0, n)
	parents = make([]int, n)
	inOrder := make([]bool, n)

	// Start from a max-degree vertex.
	start := 0
	for v := 1; v < n; v++ {
		if p.Degree(v) > p.Degree(start) {
			start = v
		}
	}
	order = append(order, start)
	inOrder[start] = true
	parents[0] = -1

	for len(order) < n {
		bestV, bestAnchor, bestDeg := -1, -1, -1
		for v := 0; v < n; v++ {
			if inOrder[v] {
				continue
			}
			anchor := -1
			for _, u := range order {
				if p.HasEdge(u, v) {
					anchor = u
					break
				}
			}
			if anchor < 0 {
				continue
			}
			if d := p.Degree(v); d > bestDeg {
				bestV, bestAnchor, bestDeg = v, anchor, d
			}
		}
		if bestV < 0 {
			break // disconnected; caller validated already
		}
		parents[len(order)] = bestAnchor
		order = append(order, bestV)
		inOrder[bestV] = true
	}
	return order, parents
}

func indexOf(order []int, v int) int {
	for i, x := range order {
		if x == v {
			return i
		}
	}
	panic("isomorph: vertex not in order")
}
