package isomorph_test

import (
	"testing"

	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/isomorph"
	"shogun/internal/mine"
	"shogun/internal/pattern"
)

// TestThreeWayAgreement cross-validates three independent
// implementations: the VF2-style matcher here, the schedule-driven miner,
// and the naive enumerator. All three must agree on every count.
func TestThreeWayAgreement(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er":   gen.ErdosRenyi(60, 240, 1),
		"rmat": gen.RMAT(64, 300, 0.6, 0.15, 0.15, 2),
		"plc":  gen.PowerLawCluster(50, 4, 0.6, 3),
		"k9":   gen.Clique(9),
		"grid": gen.Grid(5, 5),
	}
	patterns := []pattern.Pattern{
		pattern.Triangle(), pattern.FourClique(), pattern.TailedTriangle(),
		pattern.Diamond(), pattern.FourCycle(), pattern.House(),
	}
	for gname, g := range graphs {
		for _, p := range patterns {
			for _, induced := range []bool{false, true} {
				vf2, err := isomorph.Count(g, p, induced)
				if err != nil {
					t.Fatalf("%s/%s: vf2: %v", gname, p.Name(), err)
				}
				miner, err := mine.CountPattern(g, p, induced)
				if err != nil {
					t.Fatalf("%s/%s: miner: %v", gname, p.Name(), err)
				}
				naive, err := mine.BruteForceCount(g, p, induced)
				if err != nil {
					t.Fatalf("%s/%s: naive: %v", gname, p.Name(), err)
				}
				if vf2 != miner || vf2 != naive {
					t.Errorf("%s/%s induced=%v: vf2=%d miner=%d naive=%d",
						gname, p.Name(), induced, vf2, miner, naive)
				}
			}
		}
	}
}

// TestLargerScaleAgreement drops the naive oracle (too slow) and checks
// vf2 vs the miner at a size where schedule bugs would surface.
func TestLargerScaleAgreement(t *testing.T) {
	g := gen.RMAT(512, 3000, 0.6, 0.15, 0.15, 7)
	for _, p := range []pattern.Pattern{pattern.Triangle(), pattern.Diamond(), pattern.FourCycle()} {
		for _, induced := range []bool{false, true} {
			vf2, err := isomorph.Count(g, p, induced)
			if err != nil {
				t.Fatal(err)
			}
			miner, err := mine.CountPattern(g, p, induced)
			if err != nil {
				t.Fatal(err)
			}
			if vf2 != miner {
				t.Errorf("%s induced=%v: vf2=%d miner=%d", p.Name(), induced, vf2, miner)
			}
		}
	}
}

func TestRejectsDegenerate(t *testing.T) {
	g := gen.Clique(4)
	disc, _ := pattern.NewPattern("cc", 4, [][2]int{{0, 1}, {2, 3}})
	if _, err := isomorph.Count(g, disc, false); err == nil {
		t.Error("disconnected pattern accepted")
	}
}
