package core

import (
	"strings"
	"testing"

	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/mine"
	"shogun/internal/pattern"
	"shogun/internal/pe"
	"shogun/internal/policy"
	"shogun/internal/task"
)

func newTree(t *testing.T, g *graph.Graph, s *pattern.Schedule, cfg TreeConfig, roots policy.RootSource) (*Tree, *task.Workload, *policy.Tokens) {
	t.Helper()
	w := task.NewWorkload(g, s)
	tokens := policy.NewTokens(0, 1, s.Depth(), cfg.EntriesPerBunch)
	if roots == nil {
		roots = policy.AllRoots(g)
	}
	return NewTree(w, tokens, roots, cfg), w, tokens
}

// drive runs the tree to completion with up to width tasks in flight,
// completing in the given order.
func drive(t *testing.T, tr *Tree, w *task.Workload, width int, order string) int64 {
	t.Helper()
	type running struct {
		n    *task.Node
		slot int
	}
	var inflight []running
	var total int64
	for steps := 0; ; steps++ {
		if steps > 50_000_000 {
			t.Fatal("tree did not terminate")
		}
		for len(inflight) < width {
			n, slot, ok := tr.Next(0)
			if !ok {
				break
			}
			w.Execute(n, slot)
			inflight = append(inflight, running{n, slot})
		}
		if len(inflight) == 0 {
			if tr.Pending() {
				t.Fatalf("tree stalled with pending work:\n%s", tr.DebugString())
			}
			return total
		}
		idx := 0
		if order == "lifo" {
			idx = len(inflight) - 1
		}
		r := inflight[idx]
		inflight = append(inflight[:idx], inflight[idx+1:]...)
		res := tr.OnComplete(r.n, 0)
		total += res.Embeddings
	}
}

func TestTreeCountsAllPatterns(t *testing.T) {
	g := gen.RMAT(128, 700, 0.6, 0.15, 0.15, 11)
	for _, p := range []pattern.Pattern{pattern.Triangle(), pattern.FourClique(), pattern.FiveClique(), pattern.TailedTriangle(), pattern.Diamond(), pattern.FourCycle()} {
		for _, induced := range []bool{false, true} {
			s, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: induced})
			if err != nil {
				t.Fatal(err)
			}
			want := mine.Count(g, s)
			for _, order := range []string{"fifo", "lifo"} {
				tr, w, tokens := newTree(t, g, s, DefaultTreeConfig(8), nil)
				got := drive(t, tr, w, 8, order)
				if got != want {
					t.Errorf("%s/%s: counted %d, want %d", s.Name, order, got, want)
				}
				for d := 1; d < s.Depth(); d++ {
					if tokens.InUse(d) != 0 {
						t.Errorf("%s: tokens leaked at depth %d", s.Name, d)
					}
				}
			}
		}
	}
}

func TestTreeEntriesMatchTable3(t *testing.T) {
	cfg := DefaultTreeConfig(8)
	if got := cfg.TotalEntries(7); got != 178 {
		t.Fatalf("entries at depth 7 = %d, want 178 (Table 3)", got)
	}
}

func TestSiblingPreference(t *testing.T) {
	// A star-of-cliques graph gives the root many children; after one
	// child of a bunch is selected, the next selections must come from
	// the same bunch while it has Ready entries.
	g := gen.Clique(20)
	s, _ := pattern.Build(pattern.FourClique())
	tr, w, _ := newTree(t, g, s, DefaultTreeConfig(8), &policy.SliceRoots{Vertices: []graph.VertexID{19}})

	root, slot, ok := tr.Next(0)
	if !ok {
		t.Fatal("no root task")
	}
	w.Execute(root, slot)
	tr.OnComplete(root, 0)

	// The spawned bunch holds 8 siblings; selecting 8 tasks must yield
	// 8 siblings (same parent), counted by the scheduler stats.
	for i := 0; i < 8; i++ {
		n, sl, ok := tr.Next(0)
		if !ok {
			t.Fatalf("selection %d failed", i)
		}
		if n.Depth != 1 || n.Parent != root {
			t.Fatalf("selection %d is not a sibling: depth %d", i, n.Depth)
		}
		w.Execute(n, sl)
	}
	if tr.SiblingRuns.Total < 7 {
		t.Fatalf("sibling runs = %d, want >= 7", tr.SiblingRuns.Total)
	}
}

func TestOutOfOrderAcrossDepths(t *testing.T) {
	// After a sibling completes and spawns children, the tree must be
	// able to co-schedule different-depth tasks (the barrier-free core
	// claim, Fig. 2(e)).
	g := gen.Clique(20)
	s, _ := pattern.Build(pattern.FourClique())
	tr, w, _ := newTree(t, g, s, DefaultTreeConfig(4), &policy.SliceRoots{Vertices: []graph.VertexID{19}})

	root, slot, _ := tr.Next(0)
	w.Execute(root, slot)
	tr.OnComplete(root, 0)

	// Complete the two lowest-vertex siblings; the second one (vertex 1)
	// spawns a depth-2 bunch (vertex 0's bounded set is empty and it
	// extends instead).
	n1, s1, _ := tr.Next(0)
	n2, s2, _ := tr.Next(0)
	w.Execute(n1, s1)
	w.Execute(n2, s2)
	tr.OnComplete(n1, 0)
	tr.OnComplete(n2, 0)
	depths := map[int]int{}
	for i := 0; i < 8; i++ {
		n, sl, ok := tr.Next(0)
		if !ok {
			break
		}
		depths[n.Depth]++
		w.Execute(n, sl)
	}
	// Depth-1 siblings and a depth-2 task must be co-scheduled: no
	// inter-depth barrier.
	if depths[1] == 0 || depths[2] == 0 {
		t.Fatalf("no cross-depth co-scheduling: %v", depths)
	}
	if tr.NonSiblingRuns.Total == 0 {
		t.Fatal("no non-sibling selections recorded")
	}
}

func TestConservativeModeRestrictsToSiblings(t *testing.T) {
	g := gen.Clique(20)
	s, _ := pattern.Build(pattern.FourClique())
	tr, w, _ := newTree(t, g, s, DefaultTreeConfig(4), &policy.SliceRoots{Vertices: []graph.VertexID{19, 18}})

	root, slot, _ := tr.Next(0)
	w.Execute(root, slot)
	tr.OnComplete(root, 0)
	n1, s1, _ := tr.Next(0)
	n2, s2, _ := tr.Next(0)
	w.Execute(n1, s1)
	w.Execute(n2, s2)
	tr.OnComplete(n1, 0) // spawns a depth-2 bunch

	tr.SetConservative(true)
	// With n2 executing (same bunch as last selection's siblings), only
	// bunch-mates of the last selected bunch may be scheduled. The last
	// bunch is now the depth-1 bunch; its Ready members qualify, but
	// the depth-2 bunch must not be co-scheduled.
	for i := 0; i < 10; i++ {
		n, sl, ok := tr.Next(0)
		if !ok {
			break
		}
		if n.Depth == 2 {
			t.Fatal("conservative mode co-scheduled a non-sibling depth-2 task")
		}
		w.Execute(n, sl)
	}
}

func TestCarveSplitAndAdopt(t *testing.T) {
	g := gen.Clique(24)
	s, _ := pattern.Build(pattern.Triangle())
	roots := &policy.SliceRoots{Vertices: []graph.VertexID{23}}
	tr, w, _ := newTree(t, g, s, DefaultTreeConfig(8), roots)

	root, slot, _ := tr.Next(0)
	w.Execute(root, slot)
	tr.OnComplete(root, 0)

	sp := tr.SplittableRoot()
	if sp == nil {
		t.Fatal("no splittable root despite a wide unexplored range")
	}
	before := sp.SpawnLimit
	lo, hi, ok := tr.CarveSplit(sp, 2)
	if !ok {
		t.Fatal("carve failed")
	}
	if hi != before || lo <= sp.NextCand {
		t.Fatalf("carve range [%d,%d) vs limit %d cursor %d", lo, hi, before, sp.NextCand)
	}
	if sp.SplitHi != lo {
		t.Fatalf("victim's SplitHi = %d, want %d", sp.SplitHi, lo)
	}

	// Adopt the carved range on a second tree (fresh PE).
	tr2, w2, tok2 := newTree(t, g, s, DefaultTreeConfig(8), &policy.SliceRoots{})
	slot2, _ := tok2.TryAcquire(1)
	if !tr2.AdoptSplit(sp.Vertex, sp.Cand, before, lo, hi, slot2) {
		t.Fatal("adopt failed")
	}
	victimCount := drive(t, tr, w, 8, "fifo")
	helperCount := drive(t, tr2, w2, 8, "fifo")

	// Together they must count the whole tree.
	wFull := task.NewWorkload(g, s)
	full := NewTree(wFull, policy.NewTokens(0, 1, s.Depth(), 8), &policy.SliceRoots{Vertices: []graph.VertexID{23}}, DefaultTreeConfig(8))
	want := drive(t, full, wFull, 8, "fifo")
	if victimCount+helperCount != want {
		t.Fatalf("split halves %d+%d != whole %d", victimCount, helperCount, want)
	}
	if victimCount == 0 || helperCount == 0 {
		t.Fatalf("degenerate split: %d and %d", victimCount, helperCount)
	}
}

func TestMergingTwoTrees(t *testing.T) {
	g := gen.Clique(12)
	s, _ := pattern.Build(pattern.Triangle())
	cfg := DefaultTreeConfig(8)
	cfg.MaxTrees = 2
	tr, w, _ := newTree(t, g, s, cfg, nil)
	tr.SetMergeAllowed(true)

	// Pull tasks until two distinct tree ids are in flight.
	var seen []int
	for i := 0; i < 4; i++ {
		n, slot, ok := tr.Next(0)
		if !ok {
			break
		}
		w.Execute(n, slot)
		found := false
		for _, id := range seen {
			if id == n.TreeID {
				found = true
			}
		}
		if !found {
			seen = append(seen, n.TreeID)
		}
		tr.OnComplete(n, 0)
	}
	if len(seen) < 2 {
		t.Fatalf("merging did not engage: tree ids %v", seen)
	}
	if tr.MergeFeeds.Total == 0 {
		t.Fatal("merge feeds not counted")
	}
}

func TestQuiesceOnConservativeWithTwoTrees(t *testing.T) {
	g := gen.Clique(16)
	s, _ := pattern.Build(pattern.FourClique())
	cfg := DefaultTreeConfig(4)
	cfg.MaxTrees = 2
	tr, w, _ := newTree(t, g, s, cfg, &policy.SliceRoots{Vertices: []graph.VertexID{15, 14}})
	tr.SetMergeAllowed(true)

	// Start both trees: with merging allowed, the first two selections
	// are the two roots (the first root's bunch has no other Ready
	// entry, so the second selection feeds and picks root 2).
	a, sa, _ := tr.Next(0)
	b, sb, ok := tr.Next(0)
	if !ok || a.Depth != 0 || b.Depth != 0 || a.TreeID == b.TreeID {
		t.Fatalf("expected two distinct roots, got %+v %+v ok=%v", a, b, ok)
	}
	w.Execute(a, sa)
	w.Execute(b, sb)
	tr.OnComplete(a, 0)
	tr.OnComplete(b, 0)
	if tr.activeTrees() != 2 {
		t.Skipf("only %d active trees; merging path not hit", tr.activeTrees())
	}
	tr.SetConservative(true)
	quiesced := 0
	for _, ts := range tr.trees {
		if ts.quiesced {
			quiesced++
		}
	}
	if quiesced != 1 {
		t.Fatalf("quiesced trees = %d, want 1", quiesced)
	}
	// The run must still complete correctly: the live tree finishes,
	// wakes the quiesced one, and the total matches the software miner
	// over the same two roots.
	total := drive(t, tr, w, 4, "fifo")
	m := mine.NewMiner(g, s)
	m.RunRoot(15)
	m.RunRoot(14)
	if want := m.Result().Embeddings; total != want {
		t.Fatalf("after quiesce/wake counted %d, want %d", total, want)
	}
}

func TestBunchCapacityDefersSpawns(t *testing.T) {
	// With 1 bunch per depth, concurrent spawners must defer and later
	// complete via recycled bunches — counts stay exact.
	g := gen.RMAT(96, 500, 0.6, 0.15, 0.15, 3)
	s, _ := pattern.Build(pattern.FourClique())
	want := mine.Count(g, s)
	cfg := TreeConfig{BunchesPerDepth: 1, EntriesPerBunch: 4, Depth0Bunches: 1, Depth1Bunches: 1, MaxTrees: 1}
	tr, w, _ := newTree(t, g, s, cfg, nil)
	got := drive(t, tr, w, 4, "lifo")
	if got != want {
		t.Fatalf("constrained tree counted %d, want %d", got, want)
	}
	if tr.DeferredSpawns.Total == 0 {
		t.Log("warning: no deferred spawns exercised (workload too small?)")
	}
}

var _ pe.Policy = (*Tree)(nil)

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Ready: "Ready", Executing: "Executing", Resting: "Resting", Quiesced: "Quiesced",
	} {
		if s.String() != want {
			t.Errorf("State(%d) = %q", int(s), s.String())
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state unprintable")
	}
}

func TestTreeGeometry(t *testing.T) {
	cfg := TreeConfig{BunchesPerDepth: 3, EntriesPerBunch: 4, Depth0Bunches: 1, Depth1Bunches: 2}
	// depth 4: 1*1 + 2*4 + 2 deeper depths * 3 bunches * 4 entries.
	if got := cfg.TotalEntries(4); got != 1+8+24 {
		t.Fatalf("TotalEntries(4) = %d", got)
	}
	if got := cfg.TotalEntries(1); got != 1 {
		t.Fatalf("TotalEntries(1) = %d", got)
	}
}

func TestDebugStringShowsOccupancy(t *testing.T) {
	g := gen.Clique(12)
	s, _ := pattern.Build(pattern.Triangle())
	tr, w, _ := newTree(t, g, s, DefaultTreeConfig(4), &policy.SliceRoots{Vertices: []graph.VertexID{11}})
	root, slot, _ := tr.Next(0)
	w.Execute(root, slot)
	tr.OnComplete(root, 0)
	out := tr.DebugString()
	if out == "" || !strings.Contains(out, "depth 1") {
		t.Fatalf("DebugString = %q", out)
	}
}
