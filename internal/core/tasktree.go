// Package core implements the paper's primary contribution: the Shogun
// task tree (§3.2) — a bunch-structured task SPM with an FSM and a
// scheduler that decouple task generation from task execution, enabling
// locality-aware out-of-order scheduling — plus the two accelerator
// optimizations built on it: task tree splitting for load balance (§4.1)
// and search tree merging (§4.2).
package core

import (
	"fmt"

	"shogun/internal/graph"
	"shogun/internal/pe"
	"shogun/internal/policy"
	"shogun/internal/sim"
	"shogun/internal/task"
)

// State is a task-tree entry state. The simulator models the paper's
// transient memory-access states (Wait_Spawn_Addr, Wait_Vertex, ...)
// inside the PE pipeline's timing, so entries here carry the four basic
// states of Fig. 4(b) plus Quiesced (§4.2).
type State int

const (
	// Ready: generated, waiting to be selected by the scheduler.
	Ready State = iota
	// Executing: in the PE pipeline.
	Executing
	// Resting: spawned children; its candidate set may still be read.
	Resting
	// Quiesced: frozen by search-tree-merging recovery.
	Quiesced
)

func (s State) String() string {
	switch s {
	case Ready:
		return "Ready"
	case Executing:
		return "Executing"
	case Resting:
		return "Resting"
	case Quiesced:
		return "Quiesced"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// TreeConfig sizes the task tree (Table 3: 4 bunches/depth × 8 entries,
// 2 bunches at depth 0 with 1 entry and 2 at depth 1 with 8, 178 entries
// total at a maximum depth of 6).
type TreeConfig struct {
	BunchesPerDepth int
	EntriesPerBunch int
	Depth0Bunches   int
	Depth1Bunches   int
	// MaxTrees bounds merged search trees per PE (2 with merging).
	MaxTrees int
	// NoSiblingPreference disables the Fig. 7 sibling-first selection
	// (ablation knob): the scheduler always round-robins over bunches.
	NoSiblingPreference bool
}

// DefaultTreeConfig mirrors Table 3.
func DefaultTreeConfig(width int) TreeConfig {
	return TreeConfig{
		BunchesPerDepth: 4,
		EntriesPerBunch: width,
		Depth0Bunches:   2,
		Depth1Bunches:   2,
		MaxTrees:        1, // merging raises it to 2
	}
}

// TotalEntries reports the task-SPM entry count for a given pattern depth
// (178 for the default config at depth 7).
func (c TreeConfig) TotalEntries(depths int) int {
	total := c.Depth0Bunches * 1
	if depths > 1 {
		total += c.Depth1Bunches * c.EntriesPerBunch
	}
	for d := 2; d < depths; d++ {
		total += c.BunchesPerDepth * c.EntriesPerBunch
	}
	return total
}

// entry is one task-SPM slot.
type entry struct {
	state State
	node  *task.Node
}

// bunch groups sibling entries spawned from one parent (Fig. 5).
type bunch struct {
	depth   int
	parent  *task.Node
	entries []entry
	used    int // entries holding a live node
	treeID  int
}

// treeState tracks one merged search tree.
type treeState struct {
	id       int
	root     graph.VertexID
	quiesced bool
	maxDepth int
	liveWork int // entries + resting nodes belonging to the tree
}

// Tree is the Shogun task tree; it implements pe.Policy.
type Tree struct {
	w      *task.Workload
	tokens *policy.Tokens
	roots  policy.RootSource
	cfg    TreeConfig

	// bunches[d] holds the allocated bunches at depth d.
	bunches [][]*bunch
	// pendingSpawn queues Resting parents waiting for a free bunch at
	// their child depth.
	pendingSpawn [][]*task.Node

	lastBunch    *bunch // sibling preference (Fig. 7 step 1)
	rrDepth      int    // round-robin cursor for non-sibling selection
	conservative bool
	mergeAllowed bool
	executing    int

	trees   map[int]*treeState
	treeSeq int

	// Recycled bunch and tree-state records: the tree turns over one
	// bunch per parent and one state per root, so reuse keeps the
	// steady-state policy allocation-free.
	bunchFree []*bunch
	stateFree []*treeState

	// deferred spawn-unit work to charge on the next completion (bunch
	// became available asynchronously).
	deferredSpawn  int
	deferredPruned int

	// Stats
	MergeFeeds      sim.Counter
	SpawnedBunches  sim.Counter
	Extends         sim.Counter
	NonSiblingRuns  sim.Counter
	SiblingRuns     sim.Counter
	DeferredSpawns  sim.Counter
	QuiesceEvents   sim.Counter
	SplitsReceived  sim.Counter
	SplitsPerformed sim.Counter

	// FSM transition counters (Fig. 4(b) census, exported to metrics):
	// every Ready entry the scheduler promoted to Executing, every
	// completion that parked its node Resting to spawn children, and
	// every entry freed on retirement. Conservation: ReadyToExecuting
	// equals the PE's executed-task count, and RetiredEntries equals the
	// nodes the tree ever held (executed + adopted splits).
	ReadyToExecuting   sim.Counter
	ExecutingToResting sim.Counter
	RetiredEntries     sim.Counter
}

var _ pe.Policy = (*Tree)(nil)

// NewTree builds the Shogun policy for one PE.
func NewTree(w *task.Workload, tokens *policy.Tokens, roots policy.RootSource, cfg TreeConfig) *Tree {
	depths := w.S.Depth()
	t := &Tree{
		w:            w,
		tokens:       tokens,
		roots:        roots,
		cfg:          cfg,
		bunches:      make([][]*bunch, depths),
		pendingSpawn: make([][]*task.Node, depths),
		trees:        map[int]*treeState{},
	}
	return t
}

// Name implements pe.Policy.
func (t *Tree) Name() string { return "shogun" }

// bunchCap returns the bunch quota at a depth.
func (t *Tree) bunchCap(depth int) int {
	switch depth {
	case 0:
		return t.cfg.Depth0Bunches
	case 1:
		return t.cfg.Depth1Bunches
	default:
		return t.cfg.BunchesPerDepth
	}
}

func (t *Tree) entriesPerBunch(depth int) int {
	if depth == 0 {
		return 1
	}
	return t.cfg.EntriesPerBunch
}

// allocBunch reuses a recycled bunch when one is free.
func (t *Tree) allocBunch(depth int, parent *task.Node, treeID int) *bunch {
	if k := len(t.bunchFree); k > 0 {
		b := t.bunchFree[k-1]
		t.bunchFree = t.bunchFree[:k-1]
		b.depth, b.parent, b.treeID = depth, parent, treeID
		b.entries = b.entries[:0]
		b.used = 0
		return b
	}
	return &bunch{depth: depth, parent: parent, treeID: treeID,
		entries: make([]entry, 0, t.entriesPerBunch(depth))}
}

// freeBunch parks a bunch removed from its depth list for reuse.
func (t *Tree) freeBunch(b *bunch) {
	b.parent = nil
	t.bunchFree = append(t.bunchFree, b)
}

// allocState reuses a recycled treeState when one is free.
func (t *Tree) allocState(id int, root graph.VertexID) *treeState {
	if k := len(t.stateFree); k > 0 {
		ts := t.stateFree[k-1]
		t.stateFree = t.stateFree[:k-1]
		*ts = treeState{id: id, root: root}
		return ts
	}
	return &treeState{id: id, root: root}
}

// activeTrees counts non-finished merged trees.
func (t *Tree) activeTrees() int { return len(t.trees) }

// CanMerge reports whether the tree can host another search tree.
func (t *Tree) CanMerge() bool {
	return t.activeTrees() < t.cfg.MaxTrees && len(t.bunches[0]) < t.bunchCap(0)
}

// SetMaxTrees enables/disables search-tree merging capacity.
func (t *Tree) SetMaxTrees(n int) { t.cfg.MaxTrees = n }

// SetMergeAllowed is the accelerator's merge decision (§4.2): when true
// and capacity exists, the tree pulls a second root. The three conditions
// (low FU utilization, no L1 thrashing, memory bandwidth headroom) are
// evaluated by the accelerator from the PE's monitor samples.
func (t *Tree) SetMergeAllowed(on bool) { t.mergeAllowed = on }

// feedRoot pulls one root from the source into a fresh depth-0 bunch.
func (t *Tree) feedRoot() bool {
	if len(t.bunches[0]) >= t.bunchCap(0) {
		return false
	}
	v, ok := t.roots.NextRoot()
	if !ok {
		return false
	}
	if t.activeTrees() >= 1 {
		t.MergeFeeds.Inc(1)
	}
	t.treeSeq++
	ts := t.allocState(t.treeSeq, v)
	t.trees[ts.id] = ts
	root := t.w.NewNode(0, v, nil, ts.id)
	b := t.allocBunch(0, nil, ts.id)
	b.entries = append(b.entries, entry{state: Ready, node: root})
	b.used = 1
	ts.liveWork++
	t.bunches[0] = append(t.bunches[0], b)
	return true
}

// AdoptSplit installs a received split subtree (§4.1): a copy of a remote
// PE's depth-0 root restricted to a candidate subrange. The caller has
// already modeled the NoC transfer and L1 prefill; slot is a local token
// for the transferred candidate set.
func (t *Tree) AdoptSplit(root graph.VertexID, cand []graph.VertexID, spawnLimit, lo, hi, slot int) bool {
	if len(t.bunches[0]) >= t.bunchCap(0) || t.activeTrees() >= t.cfg.MaxTrees {
		return false
	}
	t.treeSeq++
	ts := t.allocState(t.treeSeq, root)
	t.trees[ts.id] = ts
	n := t.w.NewNode(0, root, nil, ts.id)
	n.Executed = true
	n.Cand = append(n.Cand, cand...)
	n.SpawnLimit = spawnLimit
	n.NextCand = lo
	n.SplitLo, n.SplitHi = lo, hi
	n.Slot = slot
	b := t.allocBunch(0, nil, ts.id)
	// The adopted root has already executed remotely: it enters Resting
	// and immediately wants to spawn.
	b.entries = append(b.entries, entry{state: Resting, node: n})
	b.used = 1
	ts.liveWork++
	t.bunches[0] = append(t.bunches[0], b)
	t.SplitsReceived.Inc(1)
	t.requestSpawn(n)
	return true
}

// requestSpawn spawns a bunch for a Resting parent, or queues it until a
// bunch at the child depth frees. Spawn-unit work is charged to the next
// completing task (the hardware's spawn unit does it asynchronously).
func (t *Tree) requestSpawn(n *task.Node) {
	var res pe.SpawnResult
	if t.spawnBunch(n, &res) {
		t.deferredSpawn += res.Spawned
		t.deferredPruned += res.Pruned
	} else {
		t.pendingSpawn[n.Depth+1] = append(t.pendingSpawn[n.Depth+1], n)
		t.DeferredSpawns.Inc(1)
	}
}

// Next implements pe.Policy — the Fig. 7 scheduler: prefer a Ready
// sibling of the last selected task; otherwise, unless conservative mode
// forbids it, pick a Ready task from another bunch round-robin; gate on
// an address token for the task's output depth.
func (t *Tree) Next(now sim.Time) (*task.Node, int, bool) {
	if t.activeTrees() == 0 || (t.mergeAllowed && t.CanMerge()) {
		// Tree empty, or merging approved (§4.2): pull a root.
		if !t.feedRoot() && t.activeTrees() == 0 {
			return nil, -1, false
		}
	}

	// 1. Sibling preference.
	if t.lastBunch != nil && !t.cfg.NoSiblingPreference {
		if n, slot, ok := t.takeReady(t.lastBunch); ok {
			t.SiblingRuns.Inc(1)
			return n, slot, true
		}
	}
	// 2. Non-sibling selection, unless conservative mode forbids
	// co-running non-siblings with in-flight tasks.
	if t.conservative && t.executing > 0 {
		return nil, -1, false
	}
	depths := len(t.bunches)
	for i := 0; i < depths; i++ {
		d := (t.rrDepth + i) % depths
		for _, b := range t.bunches[d] {
			if b == t.lastBunch && !t.cfg.NoSiblingPreference {
				continue // already scanned by the sibling-first step
			}
			if n, slot, ok := t.takeReady(b); ok {
				t.rrDepth = (d + 1) % depths
				t.lastBunch = b
				t.NonSiblingRuns.Inc(1)
				return n, slot, true
			}
		}
	}
	return nil, -1, false
}

// takeReady selects a Ready entry from b, acquiring its output token.
func (t *Tree) takeReady(b *bunch) (*task.Node, int, bool) {
	ts := t.trees[b.treeID]
	if ts != nil && ts.quiesced {
		return nil, -1, false
	}
	for i := range b.entries {
		e := &b.entries[i]
		if e.node == nil || e.state != Ready {
			continue
		}
		slot := -1
		if t.w.NeedsToken(e.node.Depth) {
			var ok bool
			slot, ok = t.tokens.TryAcquire(e.node.Depth + 1)
			if !ok {
				return nil, -1, false // token pressure: stall this depth
			}
		}
		e.state = Executing
		t.executing++
		t.ReadyToExecuting.Inc(1)
		t.lastBunch = b
		return e.node, slot, true
	}
	return nil, -1, false
}

func (t *Tree) hasReady() bool {
	for d := range t.bunches {
		for _, b := range t.bunches[d] {
			ts := t.trees[b.treeID]
			if ts != nil && ts.quiesced {
				continue
			}
			for i := range b.entries {
				if b.entries[i].node != nil && b.entries[i].state == Ready {
					return true
				}
			}
		}
	}
	return false
}

// OnComplete implements pe.Policy: the spawning / extending / pruning
// processes of Fig. 6, without inter-depth barriers — the completing task
// proceeds immediately regardless of its siblings.
func (t *Tree) OnComplete(n *task.Node, now sim.Time) pe.SpawnResult {
	t.executing--
	var res pe.SpawnResult
	res.Spawned += t.deferredSpawn
	res.Pruned += t.deferredPruned
	t.deferredSpawn, t.deferredPruned = 0, 0

	b := t.findBunch(n)
	if t.isLeafParent(n) {
		lr := policy.LeafParentResult(t.w, n)
		res.Leaves += lr.Leaves
		res.Pruned += lr.Pruned
		res.Embeddings += lr.Embeddings
		t.retireEntry(b, n, &res)
		return res
	}
	if n.HasMoreCands() {
		// Task spawning: parent → Resting, children into a fresh bunch.
		t.setState(b, n, Resting)
		t.ExecutingToResting.Inc(1)
		t.trackDepth(n)
		if !t.spawnBunch(n, &res) {
			t.pendingSpawn[n.Depth+1] = append(t.pendingSpawn[n.Depth+1], n)
			t.DeferredSpawns.Inc(1)
		}
		return res
	}
	// No candidates: the entry extends or the subtree retires.
	t.retireEntry(b, n, &res)
	return res
}

func (t *Tree) isLeafParent(n *task.Node) bool { return n.Depth == t.w.LeafDepth()-1 }

func (t *Tree) trackDepth(n *task.Node) {
	if ts := t.trees[n.TreeID]; ts != nil && n.Depth > ts.maxDepth {
		ts.maxDepth = n.Depth
	}
}

// spawnBunch materializes up to one bunch of children of n, if a bunch at
// the child depth is free.
func (t *Tree) spawnBunch(n *task.Node, res *pe.SpawnResult) bool {
	d := n.Depth + 1
	if len(t.bunches[d]) >= t.bunchCap(d) {
		return false
	}
	nb := t.allocBunch(d, n, n.TreeID)
	for len(nb.entries) < t.entriesPerBunch(d) {
		v, pruned, ok := t.w.NextChild(n)
		res.Pruned += pruned
		if !ok {
			break
		}
		child := t.w.NewNode(d, v, n, n.TreeID)
		nb.entries = append(nb.entries, entry{state: Ready, node: child})
		res.Spawned++
	}
	nb.used = len(nb.entries)
	if nb.used == 0 {
		// Everything pruned: nothing to place; the caller retires n.
		t.retireEntry(t.findBunch(n), n, res)
		return true
	}
	if ts := t.trees[n.TreeID]; ts != nil {
		ts.liveWork += nb.used
	}
	t.bunches[d] = append(t.bunches[d], nb)
	t.SpawnedBunches.Inc(1)
	return true
}

// retireEntry handles a node whose own work is done: extend the entry
// with the parent's next candidate, or free it and propagate completion
// upward (the light-blue pruning path of Fig. 6).
func (t *Tree) retireEntry(b *bunch, n *task.Node, res *pe.SpawnResult) {
	for {
		parent := n.Parent
		if !n.SubtreeComplete() {
			// Children still running: leave the node Resting; the last
			// child retiring will re-enter here via the parent chain.
			t.setState(b, n, Resting)
			return
		}
		t.freeEntry(b, n)
		if n.Slot >= 0 && !n.SharedCand {
			t.tokens.Release(n.Depth+1, n.Slot)
		}
		n.Slot = -1
		t.w.Release(n)

		if parent == nil {
			// A search tree finished.
			t.finishTree(b.treeID)
			return
		}
		// Task extending: reuse the freed entry for the parent's next
		// candidate (Fig. 5 right: explore vertex 5 in place).
		if parent.HasMoreCands() {
			v, pruned, ok := t.w.NextChild(parent)
			res.Pruned += pruned
			if ok {
				sibling := t.w.NewNode(n.Depth, v, parent, parent.TreeID)
				t.placeEntry(b, sibling)
				if ts := t.trees[parent.TreeID]; ts != nil {
					ts.liveWork++
				}
				res.Spawned++
				t.Extends.Inc(1)
				return
			}
		}
		// Parent exhausted its candidates. If the whole bunch is idle,
		// recycle it and continue retiring up the chain.
		if b.used > 0 || parent.Live > 0 {
			return // siblings still active; they will continue the walk
		}
		t.recycleBunch(b)
		n = parent
		b = t.findBunch(n)
	}
}

// finishTree drops a finished tree's bookkeeping, recycles its depth-0
// bunch and wakes a quiesced partner (§4.2 recovery).
func (t *Tree) finishTree(treeID int) {
	if ts := t.trees[treeID]; ts != nil {
		t.stateFree = append(t.stateFree, ts)
	}
	delete(t.trees, treeID)
	for i, b := range t.bunches[0] {
		if b.treeID == treeID && b.used == 0 {
			t.bunches[0] = append(t.bunches[0][:i], t.bunches[0][i+1:]...)
			t.freeBunch(b)
			break
		}
	}
	if t.lastBunch != nil && t.lastBunch.treeID == treeID {
		t.lastBunch = nil
	}
	// Wake the quiesced tree, if any.
	for _, ts := range t.trees {
		if ts.quiesced {
			ts.quiesced = false
			t.QuiesceEvents.Inc(1)
			break
		}
	}
}

// recycleBunch removes an empty bunch from its depth, making room for
// pending spawners (which are served FIFO).
func (t *Tree) recycleBunch(b *bunch) {
	list := t.bunches[b.depth]
	for i, x := range list {
		if x == b {
			t.bunches[b.depth] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if t.lastBunch == b {
		t.lastBunch = nil
	}
	depth := b.depth
	t.freeBunch(b) // b may be reused by the spawn below; use depth from here
	// Serve one pending spawner at this depth.
	if q := t.pendingSpawn[depth]; len(q) > 0 {
		parent := q[0]
		t.pendingSpawn[depth] = q[1:]
		var res pe.SpawnResult
		if t.spawnBunch(parent, &res) {
			// Charge the spawn-unit work to the next completion.
			t.deferredSpawn += res.Spawned
			t.deferredPruned += res.Pruned
		}
	}
}

func (t *Tree) setState(b *bunch, n *task.Node, s State) {
	for i := range b.entries {
		if b.entries[i].node == n {
			b.entries[i].state = s
			return
		}
	}
	panic("core: node not found in its bunch")
}

func (t *Tree) freeEntry(b *bunch, n *task.Node) {
	for i := range b.entries {
		if b.entries[i].node == n {
			b.entries[i].node = nil
			b.entries[i].state = Ready // value irrelevant once node nil
			b.used--
			t.RetiredEntries.Inc(1)
			if ts := t.trees[n.TreeID]; ts != nil {
				ts.liveWork--
			}
			return
		}
	}
	panic("core: freeing node not in bunch")
}

func (t *Tree) placeEntry(b *bunch, n *task.Node) {
	for i := range b.entries {
		if b.entries[i].node == nil {
			b.entries[i].node = n
			b.entries[i].state = Ready
			b.used++
			return
		}
	}
	panic("core: no free entry for extend")
}

// findBunch locates the bunch containing n.
func (t *Tree) findBunch(n *task.Node) *bunch {
	for _, b := range t.bunches[n.Depth] {
		for i := range b.entries {
			if b.entries[i].node == n {
				return b
			}
		}
	}
	panic(fmt.Sprintf("core: node depth=%d vertex=%d has no bunch", n.Depth, n.Vertex))
}

// Pending implements pe.Policy.
func (t *Tree) Pending() bool {
	if t.executing > 0 || t.activeTrees() > 0 {
		return true
	}
	for d := range t.bunches {
		if len(t.bunches[d]) > 0 {
			return true
		}
	}
	return false
}

// SetConservative implements pe.Policy (§3.2.3): in conservative mode
// non-sibling tasks are not scheduled alongside in-flight tasks, limiting
// the working set to one bunch's sibling group. If two merged trees are
// active, the one with the smaller maximum depth is quiesced (§4.2).
func (t *Tree) SetConservative(on bool) {
	t.conservative = on
	if on && t.activeTrees() > 1 {
		t.quiesceSmaller()
	}
}

// quiesceSmaller freezes the merged tree with the smaller max depth.
func (t *Tree) quiesceSmaller() {
	var victim *treeState
	for _, ts := range t.trees {
		if ts.quiesced {
			return // already one quiesced
		}
		if victim == nil || ts.maxDepth < victim.maxDepth ||
			(ts.maxDepth == victim.maxDepth && ts.id > victim.id) {
			victim = ts
		}
	}
	if victim != nil {
		victim.quiesced = true
		t.QuiesceEvents.Inc(1)
	}
}

// SplittableRoot returns a depth-0 node with enough unexplored candidate
// range to split (§4.1), or nil.
func (t *Tree) SplittableRoot() *task.Node {
	for _, b := range t.bunches[0] {
		for i := range b.entries {
			e := &b.entries[i]
			if e.node == nil || !e.node.Executed {
				continue
			}
			n := e.node
			lim := n.SpawnLimit
			if n.SplitHi > 0 && n.SplitHi < lim {
				lim = n.SplitHi
			}
			if lim-n.NextCand >= 2 {
				return n
			}
		}
	}
	return nil
}

// CarveSplit removes the tail [mid, hi) of the root's unexplored range
// for transfer to another PE, returning the subrange. The local root
// keeps [NextCand, mid).
func (t *Tree) CarveSplit(root *task.Node, helpers int) (lo, hi int, ok bool) {
	lim := root.SpawnLimit
	if root.SplitHi > 0 && root.SplitHi < lim {
		lim = root.SplitHi
	}
	remaining := lim - root.NextCand
	if remaining < 2 || helpers < 1 {
		return 0, 0, false
	}
	share := remaining / (helpers + 1)
	if share == 0 {
		return 0, 0, false
	}
	hi = lim
	lo = lim - share*helpers
	root.SplitHi = lo
	t.SplitsPerformed.Inc(1)
	return lo, hi, true
}

// StateSummary renders a one-line FSM census for diagnostic snapshots:
// live trees, executing entries, and per-state entry counts across all
// bunches.
// LiveEntries counts the occupied task-SPM entries across all bunches —
// the telemetry gauge for bunch occupancy.
func (t *Tree) LiveEntries() int {
	entries := 0
	for d := range t.bunches {
		for _, b := range t.bunches[d] {
			for _, e := range b.entries {
				if e.node != nil {
					entries++
				}
			}
		}
	}
	return entries
}

func (t *Tree) StateSummary() string {
	var byState [4]int
	entries := 0
	for d := range t.bunches {
		for _, b := range t.bunches[d] {
			for _, e := range b.entries {
				if e.node != nil {
					entries++
					if int(e.state) < len(byState) {
						byState[e.state]++
					}
				}
			}
		}
	}
	pending := 0
	for _, q := range t.pendingSpawn {
		pending += len(q)
	}
	return fmt.Sprintf("trees=%d entries=%d ready=%d executing=%d resting=%d quiesced=%d pendingSpawn=%d",
		len(t.trees), entries, byState[Ready], byState[Executing], byState[Resting], byState[Quiesced], pending)
}

// DebugString renders the tree occupancy (for tests and the CLI's -v).
func (t *Tree) DebugString() string {
	s := ""
	for d := range t.bunches {
		if len(t.bunches[d]) == 0 {
			continue
		}
		s += fmt.Sprintf("depth %d:", d)
		for _, b := range t.bunches[d] {
			s += fmt.Sprintf(" [used=%d/%d]", b.used, cap(b.entries))
		}
		s += "\n"
	}
	return s
}
