package telemetry

import (
	"math"
	"testing"
)

// TestMergeEmptyShard pins both directions of merging with an empty
// histogram: an empty source must not disturb the target (including
// min/max), and an empty target must become bit-identical to the source.
func TestMergeEmptyShard(t *testing.T) {
	full := NewHistogram()
	for _, v := range []int64{3, 7, 1000, 31, 32} {
		full.Observe(v)
	}
	want := full.Summary()

	// Empty → full: no-op.
	full.Merge(NewHistogram())
	if got := full.Summary(); got != want {
		t.Fatalf("merging an empty shard changed state: %+v != %+v", got, want)
	}
	if full.Min() != 3 || full.Max() != 1000 {
		t.Fatalf("min/max disturbed by empty merge: min=%d max=%d", full.Min(), full.Max())
	}

	// Full → empty: adopt everything, including min (the empty side's
	// sentinel MaxInt64 min must lose).
	empty := NewHistogram()
	empty.Merge(full)
	if !empty.Equal(full) {
		t.Fatal("empty.Merge(full) is not bit-identical to full")
	}
	if empty.Min() != 3 || empty.Max() != 1000 {
		t.Fatalf("empty target min/max wrong after merge: min=%d max=%d", empty.Min(), empty.Max())
	}

	// Empty ↔ empty stays empty and Equal.
	a, b := NewHistogram(), NewHistogram()
	a.Merge(b)
	if a.Count() != 0 || !a.Equal(b) {
		t.Fatal("empty-empty merge produced observations")
	}
}

// TestMergeSingletonBoundary exercises the bucket-geometry seam at
// 2^subBits = 32: values 0..31 live in exact singleton buckets, 32 is
// the first sub-bucketed value. Sharded observation around the seam must
// merge bit-identically to single-stream observation.
func TestMergeSingletonBoundary(t *testing.T) {
	values := []int64{30, 31, 31, 32, 32, 33, 34, 63, 64}
	single := NewHistogram()
	s1, s2 := NewHistogram(), NewHistogram()
	for i, v := range values {
		single.Observe(v)
		if i%2 == 0 {
			s1.Observe(v)
		} else {
			s2.Observe(v)
		}
	}
	merged := NewHistogram()
	merged.Merge(s1)
	merged.Merge(s2)
	if !merged.Equal(single) {
		t.Fatal("sharded observation around the singleton boundary is not bit-identical to single-stream")
	}
	// 31 and 32 must land in distinct buckets (the seam is real).
	if bucketIdx(31) == bucketIdx(32) {
		t.Fatal("31 and 32 share a bucket; the singleton region must end at 32")
	}
	if bucketIdx(31) != 31 {
		t.Fatalf("singleton bucket for 31 is %d, want 31", bucketIdx(31))
	}
	// Quantiles in the singleton region stay exact after the merge.
	if q := merged.Quantile(0); q != 30 {
		t.Fatalf("merged p0 = %d, want 30", q)
	}
}

// TestMergeSaturatingValues pins behavior at the top of the int64 range:
// MaxInt64 observations must land in the final bucket, merge cleanly and
// keep Max exact, even when the sum wraps (documented as exact-sum only
// within int64).
func TestMergeSaturatingValues(t *testing.T) {
	h := NewHistogram()
	h.Observe(math.MaxInt64)
	h.Observe(0)
	if h.Max() != math.MaxInt64 {
		t.Fatalf("Max = %d, want MaxInt64", h.Max())
	}
	if h.Min() != 0 {
		t.Fatalf("Min = %d, want 0", h.Min())
	}
	o := NewHistogram()
	o.Observe(math.MaxInt64)
	h.Merge(o)
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Max() != math.MaxInt64 {
		t.Fatalf("Max after merge = %d, want MaxInt64", h.Max())
	}
	// The top bucket must be addressable and hold both giant values.
	bks := h.Buckets()
	top := bks[len(bks)-1]
	if top.Count != 2 {
		t.Fatalf("top bucket holds %d, want 2", top.Count)
	}
	// Negative observations clamp to zero rather than corrupting a bucket.
	h.Observe(-5)
	if h.Min() != 0 || h.Count() != 4 {
		t.Fatalf("negative clamp: min=%d count=%d", h.Min(), h.Count())
	}
}

// TestCumulative pins the Prometheus-facing cumulative view: ascending
// exclusive upper edges, monotone counts, final count == total, and the
// last geometry bucket folding to MaxInt64.
func TestCumulative(t *testing.T) {
	var nilH *Histogram
	if nilH.Cumulative() != nil {
		t.Fatal("nil histogram Cumulative should be nil")
	}
	h := NewHistogram()
	if h.Cumulative() != nil {
		t.Fatal("empty histogram Cumulative should be nil")
	}
	for _, v := range []int64{0, 1, 31, 32, 1000, math.MaxInt64} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	if len(cum) == 0 {
		t.Fatal("no cumulative buckets")
	}
	var prevUpper, prevCount int64 = -1, 0
	for _, cb := range cum {
		if cb.Upper <= prevUpper {
			t.Fatalf("upper edges not ascending: %d after %d", cb.Upper, prevUpper)
		}
		if cb.Count < prevCount {
			t.Fatalf("cumulative counts not monotone: %d after %d", cb.Count, prevCount)
		}
		prevUpper, prevCount = cb.Upper, cb.Count
	}
	if last := cum[len(cum)-1]; last.Count != h.Count() {
		t.Fatalf("final cumulative count %d != total %d", last.Count, h.Count())
	} else if last.Upper != math.MaxInt64 {
		t.Fatalf("MaxInt64 observation's bucket upper = %d, want MaxInt64 sentinel", last.Upper)
	}
	// Every observation v is strictly below the first edge whose Upper
	// exceeds it — spot-check the exclusive-upper-edge contract at the
	// singleton seam: exactly 4 observations are < 33 (0, 1, 31, 32).
	var below33 int64
	for _, cb := range cum {
		if cb.Upper <= 33 {
			below33 = cb.Count
		}
	}
	if below33 != 4 {
		t.Fatalf("cumulative count below 33 = %d, want 4", below33)
	}
}
