// Package telemetry is the simulator's time-resolved observability
// layer. Where internal/metrics answers "how many, in total", telemetry
// answers "when": an epoch Sampler snapshots run gauges (per-PE resident
// tasks, queue depths, token levels, ...) into a bounded columnar ring
// buffer, and log-bucketed Histograms capture full latency/size
// distributions (task lifetime, queue wait, memory access latency,
// split-transfer size) instead of ad-hoc percentile reservoirs.
//
// Everything here is designed around two constraints:
//
//   - Off is free. A disabled sampler schedules no events and a nil
//     *Histogram's Observe is a nil-check no-op, so the simulation hot
//     path pays nothing when telemetry is not requested.
//   - On is live. Histograms use atomic counters and the Sampler is
//     mutex-guarded, so the -http inspection server can read consistent
//     snapshots from another goroutine while the (single-threaded)
//     simulation keeps writing.
//
// The package depends only on the standard library; values are plain
// int64 (the simulator's cycle type aliases int64).
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
)

// Histogram bucket geometry: values below 2^subBits get exact singleton
// buckets; each further power-of-two range is split into 2^subBits
// sub-buckets, bounding the relative quantile error at 2^-subBits
// (~3.1%). The geometry is a package constant, so any two Histograms are
// mergeable and merged counts are bit-identical to single-stream counts.
const (
	subBits   = 5
	subCount  = 1 << subBits
	// numBuckets covers every non-negative int64: singleton buckets for
	// [0, 2^subBits) plus subCount sub-buckets per exponent 5..62.
	numBuckets = (64 - subBits) << subBits
)

// Histogram is a mergeable HDR-style histogram over non-negative int64
// observations (negative values are clamped to zero). The zero value is
// not usable; call NewHistogram. All methods are safe for one writer and
// any number of concurrent readers; a nil receiver ignores writes and
// reports an empty distribution.
type Histogram struct {
	counts [numBuckets]int64 // atomic
	count  int64             // atomic
	sum    int64             // atomic
	min    int64             // atomic; math.MaxInt64 when empty
	max    int64             // atomic
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min = math.MaxInt64
	return h
}

// bucketIdx maps a value to its bucket.
func bucketIdx(v int64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := int((uint64(v) >> uint(exp-subBits)) & (subCount - 1))
	return ((exp - subBits + 1) << subBits) + sub
}

// bucketLo returns the smallest value mapping to bucket idx. Buckets
// below subCount hold exactly one value, so for them lo IS the value.
func bucketLo(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	g := idx >> subBits
	sub := idx & (subCount - 1)
	exp := uint(g + subBits - 1)
	return int64(1)<<exp | int64(sub)<<(exp-subBits)
}

// Observe records one value. Safe on a nil receiver (no-op) — telemetry
// hooks sit on simulator hot paths guarded only by this nil check.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	atomic.AddInt64(&h.counts[bucketIdx(v)], 1)
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
	for {
		old := atomic.LoadInt64(&h.min)
		if v >= old || atomic.CompareAndSwapInt64(&h.min, old, v) {
			break
		}
	}
	for {
		old := atomic.LoadInt64(&h.max)
		if v <= old || atomic.CompareAndSwapInt64(&h.max, old, v) {
			break
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.count)
}

// Sum reports the exact sum of observations (after negative clamping).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.sum)
}

// Min reports the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	if atomic.LoadInt64(&h.count) == 0 {
		return 0
	}
	return atomic.LoadInt64(&h.min)
}

// Max reports the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.max)
}

// Avg reports the exact mean (sum is tracked exactly, not re-derived
// from buckets).
func (h *Histogram) Avg() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns the q-quantile (q in [0,1]) as the lower bound of the
// bucket holding the rank-(floor(q·n)+1) observation — the same sample
// convention the trace package's sorted-slice percentiles used, so
// distributions of small values (< 2^subBits, where buckets are
// singletons) reproduce those percentiles exactly.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(q*float64(n)) + 1
	if rank > n {
		rank = n
	}
	var cum int64
	for i := range h.counts {
		cum += atomic.LoadInt64(&h.counts[i])
		if cum >= rank {
			return bucketLo(i)
		}
	}
	return h.Max()
}

// Merge adds o's observations into h. Because every histogram shares one
// bucket geometry, merging per-shard histograms is bit-identical to
// observing the union stream into one histogram (counts, sum, min, max
// and therefore every quantile agree exactly).
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if c := atomic.LoadInt64(&o.counts[i]); c != 0 {
			atomic.AddInt64(&h.counts[i], c)
		}
	}
	oc := atomic.LoadInt64(&o.count)
	if oc == 0 {
		return
	}
	atomic.AddInt64(&h.count, oc)
	atomic.AddInt64(&h.sum, atomic.LoadInt64(&o.sum))
	for {
		om, hm := atomic.LoadInt64(&o.min), atomic.LoadInt64(&h.min)
		if om >= hm || atomic.CompareAndSwapInt64(&h.min, hm, om) {
			break
		}
	}
	for {
		om, hm := atomic.LoadInt64(&o.max), atomic.LoadInt64(&h.max)
		if om <= hm || atomic.CompareAndSwapInt64(&h.max, hm, om) {
			break
		}
	}
}

// Equal reports whether two histograms hold bit-identical state: every
// bucket count, the total count and the exact sum (the merged-shards
// conformance check).
func (h *Histogram) Equal(o *Histogram) bool {
	if h == nil || o == nil {
		return h.Count() == 0 && o.Count() == 0
	}
	if h.Count() != o.Count() || h.Sum() != o.Sum() {
		return false
	}
	for i := range h.counts {
		if atomic.LoadInt64(&h.counts[i]) != atomic.LoadInt64(&o.counts[i]) {
			return false
		}
	}
	return true
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	Lo    int64 `json:"lo"` // smallest value mapping into the bucket
	Count int64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i := range h.counts {
		if c := atomic.LoadInt64(&h.counts[i]); c != 0 {
			out = append(out, Bucket{Lo: bucketLo(i), Count: c})
		}
	}
	return out
}

// CumBucket is one step of a histogram's cumulative distribution.
type CumBucket struct {
	// Upper is the bucket's exclusive upper edge. Observations are
	// integers strictly below it, so it also serves as an inclusive
	// "less than or equal" bound (Prometheus `le`).
	Upper int64
	// Count is the cumulative number of observations below Upper.
	Count int64
}

// Cumulative returns the non-empty buckets as a cumulative distribution
// in ascending order — the shape a Prometheus-style exposition needs.
// The final entry's Count equals the total at read time. Nil-safe.
func (h *Histogram) Cumulative() []CumBucket {
	if h == nil {
		return nil
	}
	var out []CumBucket
	var cum int64
	for i := range h.counts {
		if c := atomic.LoadInt64(&h.counts[i]); c != 0 {
			cum += c
			upper := int64(math.MaxInt64)
			if i+1 < numBuckets {
				upper = bucketLo(i + 1)
			}
			out = append(out, CumBucket{Upper: upper, Count: cum})
		}
	}
	return out
}

// HistSummary is a JSON-exportable digest of a histogram.
type HistSummary struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Avg   float64 `json:"avg"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Summary digests the histogram (nil-safe: an empty summary).
func (h *Histogram) Summary() HistSummary {
	return HistSummary{
		Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
		Avg: h.Avg(), P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
}

// String renders a compact one-line digest.
func (h *Histogram) String() string {
	s := h.Summary()
	return fmt.Sprintf("n=%d avg=%.1f min=%d p50=%d p90=%d p99=%d max=%d",
		s.Count, s.Avg, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Sparkline renders the distribution's non-empty range as an ASCII bar
// strip over `cols` log-spaced columns (terminal diagnostics).
func (h *Histogram) Sparkline(cols int) string {
	bks := h.Buckets()
	if len(bks) == 0 || cols < 1 {
		return "(empty)"
	}
	groups := make([]int64, cols)
	var peak int64
	for i, b := range bks {
		g := i * cols / len(bks)
		groups[g] += b.Count
		if groups[g] > peak {
			peak = groups[g]
		}
	}
	glyphs := " .:-=+*#%@"
	var sb strings.Builder
	for _, v := range groups {
		idx := int(float64(v) / float64(peak) * float64(len(glyphs)-1))
		sb.WriteByte(glyphs[idx])
	}
	return sb.String()
}
