package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBucketGeometry(t *testing.T) {
	// Singleton buckets below 2^subBits: lo is the value itself.
	for v := int64(0); v < subCount; v++ {
		if got := bucketIdx(v); got != int(v) {
			t.Fatalf("bucketIdx(%d) = %d", v, got)
		}
		if got := bucketLo(int(v)); got != v {
			t.Fatalf("bucketLo(%d) = %d", v, got)
		}
	}
	// Monotone, contiguous, and lo(idx(v)) <= v for representative values.
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 10, 1<<10 + 7, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		idx := bucketIdx(v)
		if idx < prev {
			t.Fatalf("bucketIdx not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if lo := bucketLo(idx); lo > v {
			t.Fatalf("bucketLo(%d)=%d > value %d", idx, lo, v)
		}
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
	}
	// Every value maps into a bucket whose next bucket's lo exceeds it.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := rng.Int63()
		idx := bucketIdx(v)
		if bucketLo(idx) > v {
			t.Fatalf("lo(%d)=%d > %d", idx, bucketLo(idx), v)
		}
		if idx+1 < numBuckets && bucketLo(idx+1) <= v {
			t.Fatalf("value %d should be in bucket %d, but bucket %d starts at %d", v, idx, idx+1, bucketLo(idx+1))
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Avg() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zero: %s", h)
	}
	for _, v := range []int64{5, 3, 9, 3, -2} { // -2 clamps to 0
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 20 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Min() != 0 || h.Max() != 9 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Avg() != 4 {
		t.Fatalf("avg = %v", h.Avg())
	}
}

// TestQuantileMatchesSortedSliceConvention pins the quantile convention
// to the trace package's historical sorted[floor(q*n)] selection for
// small exact values — the property the Summary golden test depends on.
func TestQuantileMatchesSortedSliceConvention(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]int64, n)
		h := NewHistogram()
		for i := range vals {
			vals[i] = int64(rng.Intn(subCount)) // exact singleton buckets
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			idx := int(q * float64(n))
			if idx >= n {
				idx = n - 1
			}
			if got, want := h.Quantile(q), vals[idx]; got != want {
				t.Fatalf("n=%d q=%v: hist %d, sorted-slice %d", n, q, got, want)
			}
		}
	}
}

func TestQuantileApproximationBound(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
		h.Observe(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(len(vals)))]
		got := h.Quantile(q)
		if got > exact {
			t.Fatalf("q=%v: histogram quantile %d above exact %d", q, got, exact)
		}
		// Lower bucket bound undershoots by at most one sub-bucket width.
		if relErr := float64(exact-got) / float64(exact); relErr > 1.0/subCount {
			t.Fatalf("q=%v: relative error %.4f exceeds %.4f (got %d, exact %d)",
				q, relErr, 1.0/subCount, got, exact)
		}
	}
}

// TestMergeBitIdentical is the shard-merge conformance property: merging
// per-shard histograms must be bit-identical to observing the union
// stream into one histogram.
func TestMergeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	global := NewHistogram()
	shards := make([]*Histogram, 8)
	for i := range shards {
		shards[i] = NewHistogram()
	}
	for i := 0; i < 20000; i++ {
		v := rng.Int63n(1 << 36)
		global.Observe(v)
		shards[rng.Intn(len(shards))].Observe(v)
	}
	merged := NewHistogram()
	for _, s := range shards {
		merged.Merge(s)
	}
	if !merged.Equal(global) {
		t.Fatalf("merged shards differ from global stream:\n merged: %s\n global: %s", merged, global)
	}
	if merged.Min() != global.Min() || merged.Max() != global.Max() {
		t.Fatalf("min/max differ: %d/%d vs %d/%d", merged.Min(), merged.Max(), global.Min(), global.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if merged.Quantile(q) != global.Quantile(q) {
			t.Fatalf("quantile %v differs", q)
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(42) // must not panic
	h.Merge(NewHistogram())
	NewHistogram().Merge(h)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || len(h.Buckets()) != 0 {
		t.Fatal("nil histogram not empty")
	}
	if !h.Equal(NewHistogram()) {
		t.Fatal("nil histogram should equal an empty one")
	}
	if s := h.Summary(); s.Count != 0 {
		t.Fatal("nil summary not empty")
	}
}

func TestNilObserveZeroAlloc(t *testing.T) {
	var h *Histogram
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(123) }); allocs != 0 {
		t.Fatalf("nil-histogram Observe allocates: %v allocs/op", allocs)
	}
	on := NewHistogram()
	if allocs := testing.AllocsPerRun(1000, func() { on.Observe(123) }); allocs != 0 {
		t.Fatalf("live-histogram Observe allocates: %v allocs/op", allocs)
	}
}

// TestConcurrentReadDuringWrites exercises the one-writer/many-reader
// contract under the race detector.
func TestConcurrentReadDuringWrites(t *testing.T) {
	h := NewHistogram()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = h.Quantile(0.9)
					_ = h.Buckets()
					_ = h.Summary()
				}
			}
		}()
	}
	for i := int64(0); i < 50000; i++ {
		h.Observe(i % 4096)
	}
	close(done)
	wg.Wait()
	if h.Count() != 50000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestSparklineAndString(t *testing.T) {
	h := NewHistogram()
	if h.Sparkline(10) != "(empty)" {
		t.Fatal("empty sparkline")
	}
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	if s := h.Sparkline(10); len(s) != 10 {
		t.Fatalf("sparkline width %d: %q", len(s), s)
	}
	if s := h.String(); s == "" {
		t.Fatal("empty String()")
	}
}
