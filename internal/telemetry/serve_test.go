package telemetry

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestValidateAddr(t *testing.T) {
	for _, bad := range []string{"", "8080", "localhost", "http://:8080"} {
		if err := ValidateAddr(bad); err == nil {
			t.Fatalf("ValidateAddr(%q) accepted", bad)
		}
	}
	for _, good := range []string{":0", ":8080", "127.0.0.1:9999", "localhost:0"} {
		if err := ValidateAddr(good); err != nil {
			t.Fatalf("ValidateAddr(%q): %v", good, err)
		}
	}
}

func TestNewServerRejectsBadAddr(t *testing.T) {
	if _, err := NewServer("not-an-addr"); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestHardenedServerTimeouts pins the hardening: every timeout knob on
// the shared constructor is set, so neither the inspection server nor
// shogund can have a connection pinned open by a slow client. A zero
// value here silently reverts to "wait forever" — hence the explicit
// assertions.
func TestHardenedServerTimeouts(t *testing.T) {
	srv := HardenedHTTPServer(http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slowloris headers pin a connection forever")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset: a dribbling request body pins a connection forever")
	}
	if srv.WriteTimeout <= 0 {
		t.Error("WriteTimeout unset: an unread response pins a connection forever")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections accumulate forever")
	}
	// pprof's 30s CPU profile must survive the write timeout.
	if srv.WriteTimeout < 31*time.Second {
		t.Errorf("WriteTimeout %v would cut off 30s pprof profile streams", srv.WriteTimeout)
	}

	// NewServer must use the hardened constructor, not a bare &http.Server.
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.srv.ReadHeaderTimeout <= 0 || s.srv.ReadTimeout <= 0 ||
		s.srv.WriteTimeout <= 0 || s.srv.IdleTimeout <= 0 {
		t.Fatalf("NewServer's http.Server is not hardened: %+v", s.srv)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	s, err := NewServer(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	s.HandleJSON("/telemetry.json", func() any {
		return RunSnapshot{Histograms: map[string]HistSummary{"lifetime": {Count: 3}}}
	})
	p := NewProgress()
	p.Add(4)
	p.SetStage("imbalance")
	p.Cell("pe=2", nil)
	p.Cell("pe=4", errors.New("boom"))
	s.HandleText("/progress", p.Text)

	code, body := get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/telemetry.json") || !strings.Contains(body, "/debug/pprof/") {
		t.Fatalf("index: %d %q", code, body)
	}

	code, body = get(t, base+"/telemetry.json")
	if code != http.StatusOK || !strings.Contains(body, `"lifetime"`) {
		t.Fatalf("telemetry.json: %d %q", code, body)
	}

	code, body = get(t, base+"/progress")
	if code != http.StatusOK || !strings.Contains(body, "1 failed") || !strings.Contains(body, "FAIL pe=4") {
		t.Fatalf("progress: %d %q", code, body)
	}
	done, failed, total := p.Counts()
	if done != 2 || failed != 1 || total != 4 {
		t.Fatalf("counts = %d/%d/%d", done, failed, total)
	}

	code, _ = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", code)
	}

	code, _ = get(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown path: %d", code)
	}
}

func TestPublishVar(t *testing.T) {
	PublishVar("test-key", func() any { return 7 })
	PublishVar("test-key", func() any { return 8 }) // re-publish must not panic

	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, "http://"+s.Addr()+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, `"test-key": 8`) {
		t.Fatalf("/debug/vars: %d %q", code, body)
	}
}
