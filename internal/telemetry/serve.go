package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// The shared HTTP-server timeouts. Every listener in this repository —
// the inspection server here and the shogund daemon — goes through
// HardenedHTTPServer, so a slow or stalled client can never pin a
// connection (and its goroutine) forever.
const (
	// HTTPReadHeaderTimeout bounds slowloris-style dribbled headers.
	HTTPReadHeaderTimeout = 5 * time.Second
	// HTTPReadTimeout bounds reading one full request (headers + body).
	HTTPReadTimeout = 30 * time.Second
	// HTTPWriteTimeout bounds writing one response. It is deliberately
	// generous: /debug/pprof/profile streams for 30s by default and
	// simulation queries can legitimately run tens of seconds.
	HTTPWriteTimeout = 2 * time.Minute
	// HTTPIdleTimeout reaps idle keep-alive connections.
	HTTPIdleTimeout = 2 * time.Minute
)

// HardenedHTTPServer returns an http.Server for h with the standard
// timeouts above. Both the telemetry inspection server and the shogund
// daemon construct their servers here.
func HardenedHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: HTTPReadHeaderTimeout,
		ReadTimeout:       HTTPReadTimeout,
		WriteTimeout:      HTTPWriteTimeout,
		IdleTimeout:       HTTPIdleTimeout,
	}
}

// Server is the opt-in live inspection endpoint (-http flag): a stdlib
// net/http server exposing JSON telemetry snapshots, plain-text progress
// pages, expvar (/debug/vars) and pprof (/debug/pprof/). It binds
// eagerly — NewServer fails fast on a malformed or unusable address
// instead of panicking mid-run — and ":0" picks a free port, reported by
// Addr. The underlying http.Server comes from HardenedHTTPServer, so a
// slow client cannot hold a connection open indefinitely.
type Server struct {
	ln  net.Listener
	mux *http.ServeMux
	srv *http.Server

	mu    sync.Mutex
	paths []string
}

// ValidateAddr rejects obviously malformed listen addresses up front
// (flag validation) without binding a socket.
func ValidateAddr(addr string) error {
	if addr == "" {
		return fmt.Errorf("telemetry: empty listen address")
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return fmt.Errorf("telemetry: bad listen address %q (want host:port, e.g. \":8080\" or \":0\"): %v", addr, err)
	}
	return nil
}

// NewServer validates addr, binds it, and starts serving in a
// background goroutine.
func NewServer(addr string) (*Server, error) {
	if err := ValidateAddr(addr); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	s := &Server{ln: ln, mux: mux, srv: HardenedHTTPServer(mux)}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.paths = append(s.paths, "/debug/vars", "/debug/pprof/")
	mux.HandleFunc("/", s.index)
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr reports the bound address (resolves ":0" to the picked port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	paths := append([]string(nil), s.paths...)
	s.mu.Unlock()
	sort.Strings(paths)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "shogun live inspection endpoints:")
	for _, p := range paths {
		fmt.Fprintln(w, " ", p)
	}
}

func (s *Server) register(path string, h http.HandlerFunc) {
	s.mux.HandleFunc(path, h)
	s.mu.Lock()
	s.paths = append(s.paths, path)
	s.mu.Unlock()
}

// HandleJSON serves fn's return value as indented JSON at path. fn runs
// per request and must be safe for concurrent use (snapshot under the
// producer's lock).
func (s *Server) HandleJSON(path string, fn func() any) {
	s.register(path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fn()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// HandleText serves fn's return value as plain text at path (the bench
// grid's progress page). fn must be safe for concurrent use.
func (s *Server) HandleText(path string, fn func() string) {
	s.register(path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, fn())
	})
}

// runVars is the process-wide expvar map live runs publish into
// (expvar's registry is global and panics on duplicate names, so the map
// is created once and keys are overwritten per run).
var (
	runVarsOnce sync.Once
	runVars     *expvar.Map
)

// PublishVar exposes fn under the "shogun" expvar map (/debug/vars). fn
// must be safe for concurrent use; re-publishing a key replaces it.
func PublishVar(key string, fn func() any) {
	runVarsOnce.Do(func() { runVars = expvar.NewMap("shogun") })
	runVars.Set(key, expvar.Func(fn))
}

// RunSnapshot bundles one run's live telemetry for JSON export: the
// sampler series plus named histogram digests.
type RunSnapshot struct {
	Samples    *TimeSeries            `json:"samples,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}
