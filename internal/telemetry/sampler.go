package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Probe reads one gauge at sample time. Probes run inside the simulation
// loop (single-threaded), so they may touch simulator state freely; they
// must not retain references past the call.
type Probe func(now int64) int64

// Sampler snapshots a fixed set of gauges every epoch into a columnar
// ring buffer with a hard memory bound: when the buffer reaches capacity
// it is decimated 2× (every other epoch dropped) and the epoch spacing
// doubles, so the retained samples always span the WHOLE run at uniform
// granularity — never just its warm-up — and memory never exceeds
// cap × (gauges + 1) int64s.
//
// The Sampler does not schedule itself; the owner (the accelerator)
// calls Sample at each epoch boundary and re-arms with the current
// Interval. Sample and the read-side methods are mutex-guarded so a live
// inspection server can snapshot mid-run.
type Sampler struct {
	mu    sync.Mutex
	base  int64 // configured epoch spacing
	every int64 // current spacing (doubles on decimation)
	cap   int

	names  []string
	probes []Probe
	cycles []int64
	cols   [][]int64
}

// DefaultSampleCap bounds retained epochs when the caller passes 0.
const DefaultSampleCap = 512

// NewSampler builds a sampler with the given epoch spacing (cycles,
// must be > 0) and sample capacity (0 = DefaultSampleCap).
func NewSampler(every int64, capSamples int) (*Sampler, error) {
	if every <= 0 {
		return nil, fmt.Errorf("telemetry: sample interval must be > 0 cycles, got %d", every)
	}
	if capSamples < 0 {
		return nil, fmt.Errorf("telemetry: sample capacity must be >= 0, got %d", capSamples)
	}
	if capSamples == 0 {
		capSamples = DefaultSampleCap
	}
	if capSamples < 2 {
		capSamples = 2 // decimation needs at least two rows
	}
	return &Sampler{base: every, every: every, cap: capSamples}, nil
}

// Gauge registers a named probe. Register every gauge before the first
// Sample call; later registrations would desynchronize the columns and
// panic.
func (s *Sampler) Gauge(name string, p Probe) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cycles) > 0 {
		panic("telemetry: Gauge registered after sampling started")
	}
	s.names = append(s.names, name)
	s.probes = append(s.probes, p)
	s.cols = append(s.cols, make([]int64, 0, s.cap))
}

// Interval reports the current epoch spacing (it doubles whenever the
// ring decimates).
func (s *Sampler) Interval() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.every
}

// Len reports the number of retained epochs.
func (s *Sampler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cycles)
}

// Sample records one epoch: the timestamp plus every gauge.
func (s *Sampler) Sample(now int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cycles = append(s.cycles, now)
	for i, p := range s.probes {
		s.cols[i] = append(s.cols[i], p(now))
	}
	if len(s.cycles) >= s.cap {
		s.decimate()
	}
}

// decimate halves the retained epochs (keeping even positions so the
// survivors stay uniformly spaced) and doubles the epoch interval.
// Called with mu held.
func (s *Sampler) decimate() {
	n := len(s.cycles) / 2
	for i := 0; i < n; i++ {
		s.cycles[i] = s.cycles[2*i]
	}
	s.cycles = s.cycles[:n]
	for c := range s.cols {
		col := s.cols[c]
		for i := 0; i < n; i++ {
			col[i] = col[2*i]
		}
		s.cols[c] = col[:n]
	}
	if s.every < 1<<62 { // guard the doubling against int64 overflow
		s.every *= 2
	}
}

// Last returns the most recent value of a named gauge.
func (s *Sampler) Last(name string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, n := range s.names {
		if n == name && len(s.cols[i]) > 0 {
			return s.cols[i][len(s.cols[i])-1], true
		}
	}
	return 0, false
}

// Snapshot deep-copies the retained series. Safe to call from another
// goroutine while the simulation keeps sampling.
func (s *Sampler) Snapshot() *TimeSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := &TimeSeries{
		Interval: s.every,
		Cycles:   append([]int64(nil), s.cycles...),
	}
	for i, name := range s.names {
		ts.Series = append(ts.Series, Series{Name: name, Vals: append([]int64(nil), s.cols[i]...)})
	}
	return ts
}

// Series is one named gauge column, aligned to TimeSeries.Cycles.
type Series struct {
	Name string  `json:"name"`
	Vals []int64 `json:"vals"`
}

// TimeSeries is an immutable sampler snapshot: one shared timestamp
// column plus one value column per gauge.
type TimeSeries struct {
	Interval int64    `json:"interval"`
	Cycles   []int64  `json:"cycles"`
	Series   []Series `json:"series"`
}

// Col returns the values of a named series (nil if absent).
func (ts *TimeSeries) Col(name string) []int64 {
	for _, s := range ts.Series {
		if s.Name == name {
			return s.Vals
		}
	}
	return nil
}

// EndCycle reports the last sampled timestamp (0 when empty).
func (ts *TimeSeries) EndCycle() int64 {
	if len(ts.Cycles) == 0 {
		return 0
	}
	return ts.Cycles[len(ts.Cycles)-1]
}

// WriteCSV emits the series as a table: one row per epoch, first column
// the cycle timestamp, then one column per gauge.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(ts.Series)+1)
	header = append(header, "cycle")
	for _, s := range ts.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, cyc := range ts.Cycles {
		row[0] = strconv.FormatInt(cyc, 10)
		for j, s := range ts.Series {
			row[j+1] = strconv.FormatInt(s.Vals[i], 10)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the snapshot as indented JSON.
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}

// ImbalancePoint is one epoch of the derived load-imbalance series.
type ImbalancePoint struct {
	Cycle int64   `json:"cycle"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// Ratio is max/mean occupancy — 1.0 is perfect balance; it rises as
	// stragglers hold work while peers idle (the paper's §4.1 signal).
	Ratio float64 `json:"ratio"`
}

// Imbalance derives the max/mean-over-PEs series from every gauge whose
// name ends in suffix (e.g. "/resident" over the per-PE resident-task
// gauges). Epochs where every matched gauge is zero yield Ratio 0.
func (ts *TimeSeries) Imbalance(suffix string) []ImbalancePoint {
	var cols [][]int64
	for _, s := range ts.Series {
		if len(s.Name) >= len(suffix) && s.Name[len(s.Name)-len(suffix):] == suffix {
			cols = append(cols, s.Vals)
		}
	}
	if len(cols) == 0 {
		return nil
	}
	out := make([]ImbalancePoint, len(ts.Cycles))
	for i, cyc := range ts.Cycles {
		var max, sum int64
		for _, c := range cols {
			v := c[i]
			sum += v
			if v > max {
				max = v
			}
		}
		p := ImbalancePoint{Cycle: cyc, Max: float64(max), Mean: float64(sum) / float64(len(cols))}
		if p.Mean > 0 {
			p.Ratio = p.Max / p.Mean
		}
		out[i] = p
	}
	return out
}
