package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewSamplerValidates(t *testing.T) {
	if _, err := NewSampler(0, 16); err == nil {
		t.Fatal("interval 0 accepted")
	}
	if _, err := NewSampler(-5, 16); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, err := NewSampler(10, -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	s, err := NewSampler(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Interval() != 10 {
		t.Fatalf("interval = %d", s.Interval())
	}
}

func TestSamplerColumns(t *testing.T) {
	s, _ := NewSampler(100, 64)
	var a, b int64
	s.Gauge("a", func(now int64) int64 { return a })
	s.Gauge("b", func(now int64) int64 { return b + now })
	for i := int64(0); i < 5; i++ {
		a, b = i, 10*i
		s.Sample(100 * (i + 1))
	}
	ts := s.Snapshot()
	if len(ts.Cycles) != 5 || s.Len() != 5 {
		t.Fatalf("epochs = %d", len(ts.Cycles))
	}
	if got := ts.Col("a"); got[4] != 4 {
		t.Fatalf("a = %v", got)
	}
	if got := ts.Col("b"); got[2] != 20+300 {
		t.Fatalf("b = %v", got)
	}
	if ts.Col("missing") != nil {
		t.Fatal("missing column not nil")
	}
	if ts.EndCycle() != 500 {
		t.Fatalf("end cycle = %d", ts.EndCycle())
	}
	if v, ok := s.Last("a"); !ok || v != 4 {
		t.Fatalf("Last(a) = %d,%v", v, ok)
	}
	if _, ok := s.Last("missing"); ok {
		t.Fatal("Last(missing) ok")
	}
}

// TestSamplerDecimation checks the fixed memory bound: the ring halves
// and the interval doubles, and survivors stay uniformly spaced over the
// whole run.
func TestSamplerDecimation(t *testing.T) {
	const cap = 16
	s, _ := NewSampler(10, cap)
	s.Gauge("x", func(now int64) int64 { return now })
	tick := int64(0)
	for i := 0; i < 200; i++ {
		tick += s.Interval()
		s.Sample(tick)
		if s.Len() >= cap {
			t.Fatalf("ring exceeded capacity: %d", s.Len())
		}
	}
	ts := s.Snapshot()
	if ts.Interval <= 10 {
		t.Fatalf("interval never doubled: %d", ts.Interval)
	}
	// Timestamps stay strictly increasing across decimations.
	for i := 1; i < len(ts.Cycles); i++ {
		if ts.Cycles[i] <= ts.Cycles[i-1] {
			t.Fatalf("cycles not increasing at %d: %v", i, ts.Cycles)
		}
	}
	// Coverage spans the whole run (within one epoch of the final tick),
	// not just its warm-up.
	if gap := tick - ts.EndCycle(); gap < 0 || gap >= ts.Interval {
		t.Fatalf("last sample %d too far from last tick %d (interval %d)", ts.EndCycle(), tick, ts.Interval)
	}
}

func TestGaugeAfterSamplePanics(t *testing.T) {
	s, _ := NewSampler(10, 8)
	s.Gauge("a", func(int64) int64 { return 0 })
	s.Sample(10)
	defer func() {
		if recover() == nil {
			t.Fatal("late Gauge registration did not panic")
		}
	}()
	s.Gauge("b", func(int64) int64 { return 0 })
}

func TestTimeSeriesCSVJSON(t *testing.T) {
	s, _ := NewSampler(50, 8)
	s.Gauge("pe0/resident", func(now int64) int64 { return 3 })
	s.Gauge("pe1/resident", func(now int64) int64 { return 1 })
	s.Sample(50)
	s.Sample(100)
	ts := s.Snapshot()

	var csvBuf bytes.Buffer
	if err := ts.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines: %v", lines)
	}
	if lines[0] != "cycle,pe0/resident,pe1/resident" {
		t.Fatalf("csv header: %q", lines[0])
	}
	if lines[2] != "100,3,1" {
		t.Fatalf("csv row: %q", lines[2])
	}

	var jsonBuf bytes.Buffer
	if err := ts.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonBuf.String(), `"pe0/resident"`) {
		t.Fatalf("json missing series: %s", jsonBuf.String())
	}
}

func TestImbalanceSeries(t *testing.T) {
	s, _ := NewSampler(10, 8)
	vals := map[string]int64{}
	for _, name := range []string{"pe0/resident", "pe1/resident", "pe2/resident"} {
		n := name
		s.Gauge(n, func(int64) int64 { return vals[n] })
	}
	s.Gauge("noc/inflight", func(int64) int64 { return 99 }) // must not match
	vals["pe0/resident"], vals["pe1/resident"], vals["pe2/resident"] = 8, 2, 2
	s.Sample(10)
	vals["pe0/resident"], vals["pe1/resident"], vals["pe2/resident"] = 0, 0, 0
	s.Sample(20)
	pts := s.Snapshot().Imbalance("/resident")
	if len(pts) != 2 {
		t.Fatalf("points: %v", pts)
	}
	if pts[0].Max != 8 || pts[0].Mean != 4 || pts[0].Ratio != 2 {
		t.Fatalf("epoch 0: %+v", pts[0])
	}
	if pts[1].Ratio != 0 {
		t.Fatalf("all-idle epoch should have ratio 0: %+v", pts[1])
	}
	if got := s.Snapshot().Imbalance("/nope"); got != nil {
		t.Fatalf("unmatched suffix: %v", got)
	}
}
