package telemetry

import (
	"errors"
	"strings"
	"testing"
)

// TestProgressZeroCells pins rendering before any cell has completed:
// the header must show 0/0, no progress bar (division by a zero total
// must not panic or render a bar), and no recent-cells section.
func TestProgressZeroCells(t *testing.T) {
	p := NewProgress()
	text := p.Text()
	if !strings.Contains(text, "0/0 cells done") {
		t.Fatalf("zero-state header missing, got:\n%s", text)
	}
	if strings.Contains(text, "[") {
		t.Fatalf("progress bar rendered with zero total:\n%s", text)
	}
	if strings.Contains(text, "recent cells") {
		t.Fatalf("recent section rendered with no cells:\n%s", text)
	}

	// Expected cells added but none finished: bar renders fully empty.
	p.Add(8)
	text = p.Text()
	if !strings.Contains(text, "0/8 cells done") {
		t.Fatalf("0/8 header missing:\n%s", text)
	}
	if !strings.Contains(text, "["+strings.Repeat(".", 40)+"]") {
		t.Fatalf("empty 40-column bar missing with 0 completed:\n%s", text)
	}

	done, failed, total := p.Counts()
	if done != 0 || failed != 0 || total != 8 {
		t.Fatalf("Counts = (%d,%d,%d), want (0,0,8)", done, failed, total)
	}
}

// TestProgressRendering covers the normal path: stage line, partial bar,
// failures counted and surfaced in the recent ring.
func TestProgressRendering(t *testing.T) {
	p := NewProgress()
	p.SetStage("sweep pe=8")
	p.Add(4)
	p.Cell("a", nil)
	p.Cell("b", errors.New("boom"))
	text := p.Text()
	if !strings.Contains(text, "2/4 cells done, 1 failed") {
		t.Fatalf("counts line wrong:\n%s", text)
	}
	if !strings.Contains(text, "running: sweep pe=8") {
		t.Fatalf("stage line missing:\n%s", text)
	}
	if !strings.Contains(text, "FAIL b: boom") {
		t.Fatalf("failed cell missing from recent ring:\n%s", text)
	}
}
