package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Progress tracks a long bench grid for the live progress page: cells
// finished/failed per stage, the most recent outcomes, and elapsed wall
// time. All methods are safe for concurrent use (grid workers update it
// while the HTTP server renders it).
type Progress struct {
	mu      sync.Mutex
	started time.Time
	stage   string
	total   int
	done    int
	failed  int
	recent  []string // ring of the latest outcome lines
}

// progressRecent bounds the recent-outcome ring.
const progressRecent = 12

// NewProgress returns an empty tracker.
func NewProgress() *Progress { return &Progress{started: time.Now()} }

// SetStage names the currently running experiment.
func (p *Progress) SetStage(name string) {
	p.mu.Lock()
	p.stage = name
	p.mu.Unlock()
}

// Add grows the expected cell count (called once per batch).
func (p *Progress) Add(n int) {
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

// Cell records one finished cell.
func (p *Progress) Cell(key string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	line := fmt.Sprintf("ok   %s", key)
	if err != nil {
		p.failed++
		line = fmt.Sprintf("FAIL %s: %v", key, err)
	}
	p.recent = append(p.recent, line)
	if len(p.recent) > progressRecent {
		p.recent = p.recent[len(p.recent)-progressRecent:]
	}
}

// Counts reports (done, failed, total).
func (p *Progress) Counts() (done, failed, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done, p.failed, p.total
}

// Text renders the plain-text progress page.
func (p *Progress) Text() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var b strings.Builder
	elapsed := time.Since(p.started).Round(time.Second)
	fmt.Fprintf(&b, "bench grid: %d/%d cells done, %d failed, %s elapsed\n",
		p.done, p.total, p.failed, elapsed)
	if p.stage != "" {
		fmt.Fprintf(&b, "running: %s\n", p.stage)
	}
	if p.total > 0 {
		const width = 40
		filled := p.done * width / p.total
		fmt.Fprintf(&b, "[%s%s]\n", strings.Repeat("#", filled), strings.Repeat(".", width-filled))
	}
	if len(p.recent) > 0 {
		b.WriteString("recent cells:\n")
		for _, l := range p.recent {
			fmt.Fprintf(&b, "  %s\n", l)
		}
	}
	return b.String()
}
