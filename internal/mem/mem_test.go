package mem

import (
	"testing"

	"shogun/internal/sim"
)

// flat is a fixed-latency bottom level for cache unit tests.
type flat struct {
	lat      sim.Time
	accesses int
	writes   int
}

func (f *flat) Access(now sim.Time, addr int64, write bool) sim.Time {
	f.accesses++
	if write {
		f.writes++
	}
	return now + f.lat
}

func smallCache(t *testing.T, parent Level) *Cache {
	t.Helper()
	// 4 KB, 4-way, 64B lines => 64 lines, 16 sets.
	c, err := NewCache(CacheConfig{Name: "t", SizeKB: 4, Ways: 4, HitLat: 2, WriteAllocNoFetch: true}, parent)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheHitMiss(t *testing.T) {
	f := &flat{lat: 100}
	c := smallCache(t, f)
	d1 := c.Access(0, 0x1000, false)
	if d1 != 0+2+100+2 {
		t.Fatalf("cold miss latency = %d", d1)
	}
	d2 := c.Access(d1, 0x1000, false)
	if d2 != d1+2 {
		t.Fatalf("hit latency = %d (from %d)", d2-d1, d1)
	}
	if c.Hits.Total != 1 || c.Misses.Total != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits.Total, c.Misses.Total)
	}
	if !c.Contains(0x1000) || c.Contains(0x2000) {
		t.Fatal("Contains misreports")
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	f := &flat{lat: 10}
	c := smallCache(t, f) // 16 sets, 4 ways
	// Five lines mapping to the same set (stride = 16 lines * 64B = 1KB).
	addrs := []int64{0, 1 << 10, 2 << 10, 3 << 10, 4 << 10}
	now := sim.Time(0)
	for _, a := range addrs[:4] {
		now = c.Access(now, a, false)
	}
	// Touch addr 0 to make line 1<<10 the LRU victim.
	now = c.Access(now, 0, false)
	now = c.Access(now, addrs[4], false) // evicts 1<<10
	if !c.Contains(0) || c.Contains(1<<10) || !c.Contains(4<<10) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
	_ = now
}

func TestCacheWriteAllocNoFetch(t *testing.T) {
	f := &flat{lat: 100}
	c := smallCache(t, f)
	d := c.Access(0, 0x40, true)
	if d != 4 { // lookup + fill, no parent fetch
		t.Fatalf("write-alloc-no-fetch latency = %d, want 4", d)
	}
	if f.accesses != 0 {
		t.Fatal("write miss fetched from parent")
	}
	// Read after write must hit.
	if d2 := c.Access(d, 0x40, false); d2 != d+2 {
		t.Fatalf("read-after-write latency = %d", d2-d)
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	f := &flat{lat: 10}
	c := smallCache(t, f)
	now := c.Access(0, 0, true) // dirty line in set 0
	// Fill set 0's remaining ways, then one more to evict the dirty line.
	for i := 1; i <= 4; i++ {
		now = c.Access(now, int64(i)<<10, false)
	}
	if c.Writebacks.Total != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks.Total)
	}
	if f.writes != 1 {
		t.Fatalf("parent writes = %d, want 1", f.writes)
	}
}

func TestCacheConfigValidation(t *testing.T) {
	if _, err := NewCache(CacheConfig{Name: "bad", SizeKB: 4, Ways: 3, HitLat: 1}, &flat{}); err == nil {
		t.Error("accepted non-divisible ways")
	}
	if _, err := NewCache(CacheConfig{Name: "bad", SizeKB: 6, Ways: 4, HitLat: 1}, &flat{}); err == nil {
		t.Error("accepted non-power-of-two sets")
	}
}

func TestCacheWindowLatencyDetectsThrashing(t *testing.T) {
	f := &flat{lat: 200}
	c := smallCache(t, f)
	// Stream far more lines than capacity: all misses.
	now := sim.Time(0)
	for i := 0; i < 256; i++ {
		now = c.Access(now, int64(i)<<LineShift, false)
	}
	avg, ok := c.WindowLatency()
	if !ok || avg < 100 {
		t.Fatalf("window latency = %v ok=%v, want high", avg, ok)
	}
	// Window rolled: immediately re-reading gives pure hits.
	for i := 0; i < 64; i++ {
		now = c.Access(now, int64(i+192)<<LineShift, false)
	}
	avg, ok = c.WindowLatency()
	if !ok || avg != 2 {
		t.Fatalf("post-roll window latency = %v ok=%v, want 2", avg, ok)
	}
}

func TestDRAMRowBuffer(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	// Two accesses to the same row on the same channel/bank: second is a
	// row hit and cheaper.
	a1 := d.Access(0, 0, false)
	a2 := d.Access(a1, 0, false)
	if (a2 - a1) >= a1 {
		t.Fatalf("row hit (%d) not cheaper than row miss (%d)", a2-a1, a1)
	}
	if d.RowHits.Total != 1 || d.RowMisses.Total != 1 {
		t.Fatalf("rowHits=%d rowMisses=%d", d.RowHits.Total, d.RowMisses.Total)
	}
}

func TestDRAMChannelQueueing(t *testing.T) {
	cfg := DefaultDRAMConfig()
	d := NewDRAM(cfg)
	// Hammer a single channel: all requests issued at t=0 to line 0 must
	// serialize on the channel's burst occupancy. (Completions are not
	// monotone in issue order — a row hit issued behind a row miss can
	// finish earlier — so only the aggregate is checked.)
	var last sim.Time
	for i := 0; i < 50; i++ {
		if done := d.Access(0, 0, false); done > last {
			last = done
		}
	}
	// 50 bursts of 4 cycles on one channel: completion must reflect
	// serialization (≥ 200 cycles), not just latency.
	if last < 50*cfg.BurstCycles {
		t.Fatalf("no channel serialization: last=%d", last)
	}
	if d.BusyCycles() != 50*cfg.BurstCycles {
		t.Fatalf("busy cycles = %d", d.BusyCycles())
	}
	if d.BandwidthUtilization(last) <= 0 {
		t.Fatal("bandwidth utilization not reported")
	}
}

func TestDRAMParallelChannels(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	// Four accesses on four different channels at t=0 all start at 0.
	var worst sim.Time
	for ch := int64(0); ch < 4; ch++ {
		done := d.Access(0, ch<<LineShift, false)
		if done > worst {
			worst = done
		}
	}
	single := d.Access(0, 4<<LineShift, false) // channel 0 again: queued
	if single <= worst-48 {
		t.Log("channel contention check is loose; ok")
	}
}

func TestNoCTransferAndPath(t *testing.T) {
	noc := NewNoC(NoCConfig{Links: 1, HopLat: 5, FlitCycles: 2})
	d1 := noc.Transfer(0, 10) // 20 occupancy + 5 hop
	if d1 != 25 {
		t.Fatalf("transfer done = %d, want 25", d1)
	}
	d2 := noc.Transfer(0, 1) // queued behind first: starts at 20
	if d2 != 20+2+5 {
		t.Fatalf("queued transfer done = %d, want 27", d2)
	}
	if noc.LinesMoved.Total != 11 || noc.Messages.Total != 2 {
		t.Fatalf("traffic accounting: %d lines, %d msgs", noc.LinesMoved.Total, noc.Messages.Total)
	}

	f := &flat{lat: 10}
	p := noc.NewPath(f)
	done := p.Access(100, 0x40, false)
	// link start ≥ 100 (after queue at 22? pool unit free at 22 < 100 so
	// starts at 100): 100+2 (flit) +5 (hop) +10 (level) +5 (hop back).
	if done != 100+2+5+10+5 {
		t.Fatalf("path access done = %d", done)
	}
}

func TestAccessRange(t *testing.T) {
	f := &flat{lat: 7}
	if got := AccessRange(f, 0, 0, 0, false); got != 0 {
		t.Fatalf("empty range done = %d", got)
	}
	// 130 bytes spanning 3 lines from line-aligned base.
	AccessRange(f, 0, 0, 130, false)
	if f.accesses != 3 {
		t.Fatalf("accesses = %d, want 3", f.accesses)
	}
	// Unaligned start: 64 bytes starting at offset 32 touches 2 lines.
	f.accesses = 0
	AccessRange(f, 0, 32, 64, false)
	if f.accesses != 2 {
		t.Fatalf("unaligned accesses = %d, want 2", f.accesses)
	}
}

func TestAddressMap(t *testing.T) {
	m := NewAddressMap(1000, 100)
	if m.SetStride != 448 { // 400 bytes rounded to 64
		t.Fatalf("stride = %d", m.SetStride)
	}
	if m.CSRAddr(10) != m.CSRBase+40 {
		t.Fatal("CSRAddr math")
	}
	if m.SetAddr(2)-m.SetAddr(1) != m.SetStride {
		t.Fatal("SetAddr stride")
	}
	if m.SetAddr(0) <= m.CSRAddr(1000) {
		t.Fatal("regions overlap")
	}
	z := NewAddressMap(0, 0)
	if z.SetStride != LineBytes {
		t.Fatalf("zero stride = %d", z.SetStride)
	}
}

func TestMSHRBoundsMissParallelism(t *testing.T) {
	// With 2 MSHRs and a 100-cycle parent, 6 concurrent misses must
	// serialize into 3 waves.
	f := &flat{lat: 100}
	c, err := NewCache(CacheConfig{Name: "m", SizeKB: 4, Ways: 4, HitLat: 2, MSHRs: 2}, f)
	if err != nil {
		t.Fatal(err)
	}
	var last sim.Time
	for i := int64(0); i < 6; i++ {
		if d := c.Access(0, i<<LineShift, false); d > last {
			last = d
		}
	}
	// Waves at ~0,100,200: final completion ≥ 300.
	if last < 300 {
		t.Fatalf("6 misses on 2 MSHRs finished at %d, want >= 300", last)
	}
	// Unbounded MSHRs: all in parallel.
	f2 := &flat{lat: 100}
	c2, _ := NewCache(CacheConfig{Name: "m2", SizeKB: 4, Ways: 4, HitLat: 2}, f2)
	last = 0
	for i := int64(0); i < 6; i++ {
		if d := c2.Access(0, i<<LineShift, false); d > last {
			last = d
		}
	}
	if last > 110 {
		t.Fatalf("unbounded misses serialized: %d", last)
	}
}
