// Package mem models the accelerator's memory system (§3.1 of the paper):
// per-PE scratchpads and private L1 caches, a shared L2, a DDR4-like DRAM
// behind it, and the NoC connecting PEs to the L2 and to each other.
//
// Caches are functional (real tags, real LRU state) with timing: an access
// returns its completion time, including queueing delay at DRAM channels
// and NoC links. Graph CSR data is cached only in L2 (streaming access
// pattern); intermediate results live in L1 and spill to L2, matching the
// paper's memory-system description.
package mem

import (
	"fmt"

	"shogun/internal/sim"
	"shogun/internal/telemetry"
)

// LineBytes is the cache line size used throughout (Table 3).
const LineBytes = 64

// LineShift converts byte addresses to line addresses.
const LineShift = 6

// Level is one level of the memory hierarchy; Access returns the time the
// requested line is available (read) or accepted (write).
type Level interface {
	Access(now sim.Time, addr int64, write bool) sim.Time
}

// AccessRange issues one access per line of [addr, addr+bytes) at the same
// time and returns the last completion — modeling the parallel line
// fetches a PE's dispatch unit issues for one vertex set.
func AccessRange(l Level, now sim.Time, addr int64, bytes int64, write bool) sim.Time {
	if bytes <= 0 {
		return now
	}
	first := addr >> LineShift
	last := (addr + bytes - 1) >> LineShift
	done := now
	for line := first; line <= last; line++ {
		if d := l.Access(now, line<<LineShift, write); d > done {
			done = d
		}
	}
	return done
}

// Lines reports how many cache lines [addr, addr+bytes) spans — the
// number of Access calls AccessRange issues for the same range.
func Lines(addr, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return (addr+bytes-1)>>LineShift - addr>>LineShift + 1
}

// DRAMConfig describes the DDR4-like main memory model. The defaults
// approximate DDR4-3200 over 4 channels at a 1 GHz accelerator clock, the
// Ramulator configuration in Table 3.
type DRAMConfig struct {
	Channels     int
	BanksPerChan int
	// RowLines is the row-buffer size in cache lines.
	RowLines int64
	// RowHitLat / RowMissLat are access latencies (cycles) on a row
	// buffer hit / miss, excluding queueing.
	RowHitLat  sim.Time
	RowMissLat sim.Time
	// BurstCycles is the channel occupancy per line transfer; it bounds
	// per-channel bandwidth.
	BurstCycles sim.Time
}

// DefaultDRAMConfig returns the Table 3 approximation.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Channels:     4,
		BanksPerChan: 16,
		RowLines:     32, // 2 KB rows
		RowHitLat:    22,
		RowMissLat:   48,
		BurstCycles:  4,
	}
}

// DRAM is the bottom memory level.
type DRAM struct {
	cfg      DRAMConfig
	channels []*sim.Pool
	lastRow  [][]int64

	Reads     sim.Counter
	Writes    sim.Counter
	RowHits   sim.Counter
	RowMisses sim.Counter
	Latency   sim.WindowStat
}

// NewDRAM builds a DRAM model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	d := &DRAM{cfg: cfg}
	d.channels = make([]*sim.Pool, cfg.Channels)
	d.lastRow = make([][]int64, cfg.Channels)
	for i := range d.channels {
		d.channels[i] = sim.NewPool(fmt.Sprintf("dram-ch%d", i), 1)
		d.lastRow[i] = make([]int64, cfg.BanksPerChan)
		for b := range d.lastRow[i] {
			d.lastRow[i][b] = -1
		}
	}
	return d
}

// SetPerturb installs a service-time perturber on every DRAM channel
// (chaos-harness latency jitter: perturbed burst reservations shift
// queueing delay for later accesses on the same channel).
func (d *DRAM) SetPerturb(pr sim.Perturber) {
	for _, ch := range d.channels {
		ch.SetPerturb(pr)
	}
}

// Access serves one line.
func (d *DRAM) Access(now sim.Time, addr int64, write bool) sim.Time {
	line := addr >> LineShift
	ch := int(line) & (d.cfg.Channels - 1)
	if d.cfg.Channels&(d.cfg.Channels-1) != 0 {
		ch = int(line % int64(d.cfg.Channels))
	}
	bank := int((line / int64(d.cfg.Channels)) % int64(d.cfg.BanksPerChan))
	row := line / (int64(d.cfg.Channels) * d.cfg.RowLines)

	lat := d.cfg.RowMissLat
	if d.lastRow[ch][bank] == row {
		lat = d.cfg.RowHitLat
		d.RowHits.Inc(1)
	} else {
		d.lastRow[ch][bank] = row
		d.RowMisses.Inc(1)
	}
	start := d.channels[ch].Acquire(now, d.cfg.BurstCycles)
	done := start + lat + d.cfg.BurstCycles
	if write {
		d.Writes.Inc(1)
	} else {
		d.Reads.Inc(1)
	}
	d.Latency.Add(done - now)
	return done
}

// QueueDepth reports how many channels are still reserved past `now` —
// the row of busy DRAM channels a telemetry gauge sees at an epoch
// boundary.
func (d *DRAM) QueueDepth(now sim.Time) int {
	n := 0
	for _, ch := range d.channels {
		n += ch.InFlightAt(now)
	}
	return n
}

// BusyCycles reports total channel busy cycles (bandwidth consumption).
func (d *DRAM) BusyCycles() sim.Time {
	var b sim.Time
	for _, c := range d.channels {
		b += c.Busy()
	}
	return b
}

// BandwidthUtilization reports channel occupancy over elapsed cycles.
func (d *DRAM) BandwidthUtilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(d.BusyCycles()) / (float64(elapsed) * float64(d.cfg.Channels))
}

// CacheConfig describes a set-associative cache.
type CacheConfig struct {
	Name   string
	SizeKB int
	Ways   int
	HitLat sim.Time
	// WriteAllocNoFetch treats write misses as full-line allocations
	// without fetching from the parent (correct for freshly produced
	// intermediate sets, which are always written whole).
	WriteAllocNoFetch bool
	// MSHRs bounds outstanding misses (miss-level parallelism). Zero
	// means unbounded. Under cache thrashing a bounded MSHR file is what
	// turns a low hit rate into a steep performance loss — the
	// mechanism behind the paper's Fig. 3(b)/Fig. 14.
	MSHRs int
}

// Cache is a set-associative write-back cache with LRU replacement.
type Cache struct {
	cfg    CacheConfig
	sets   int
	tags   []int64 // sets*ways; -1 = invalid
	stamps []int64 // LRU timestamps
	dirty  []bool
	clock  int64
	parent Level
	mshrs  *sim.Pool

	// LatHist, when non-nil, receives every access latency (telemetry
	// histogram; nil keeps the hot path observation-free).
	LatHist *telemetry.Histogram

	Accesses sim.Counter
	Hits     sim.Counter
	Misses   sim.Counter
	// MissFetches counts misses that fetched the line from the parent
	// level (write misses under WriteAllocNoFetch allocate without
	// fetching, so MissFetches ≤ Misses).
	MissFetches sim.Counter
	Writebacks  sim.Counter
	Latency     sim.WindowStat
}

// NewCache builds a cache in front of parent. The line count
// (SizeKB*1024/64) must be divisible by Ways into a power-of-two set
// count.
func NewCache(cfg CacheConfig, parent Level) (*Cache, error) {
	lines := cfg.SizeKB * 1024 / LineBytes
	if cfg.Ways <= 0 || lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("mem: cache %s: %d lines not divisible by %d ways", cfg.Name, lines, cfg.Ways)
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: cache %s: set count %d not a power of two", cfg.Name, sets)
	}
	c := &Cache{
		cfg:    cfg,
		sets:   sets,
		tags:   make([]int64, lines),
		stamps: make([]int64, lines),
		dirty:  make([]bool, lines),
		parent: parent,
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	if cfg.MSHRs > 0 {
		c.mshrs = sim.NewPool(cfg.Name+"-mshr", cfg.MSHRs)
	}
	return c, nil
}

// MustCache is NewCache for static configurations.
func MustCache(cfg CacheConfig, parent Level) *Cache {
	c, err := NewCache(cfg, parent)
	if err != nil {
		panic(err)
	}
	return c
}

// Access serves one line read or write.
func (c *Cache) Access(now sim.Time, addr int64, write bool) sim.Time {
	line := addr >> LineShift
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	c.clock++
	c.Accesses.Inc(1)

	// Hit path.
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == line {
			c.stamps[base+w] = c.clock
			if write {
				c.dirty[base+w] = true
			}
			c.Hits.Inc(1)
			c.Latency.Add(c.cfg.HitLat)
			c.LatHist.Observe(int64(c.cfg.HitLat))
			return now + c.cfg.HitLat
		}
	}
	c.Misses.Inc(1)

	// Victim selection: invalid way first, else LRU.
	victim := base
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == -1 {
			victim = base + w
			break
		}
		if c.stamps[base+w] < c.stamps[victim] {
			victim = base + w
		}
	}

	fetchDone := now + c.cfg.HitLat
	if !write || !c.cfg.WriteAllocNoFetch {
		c.MissFetches.Inc(1)
		issueAt := now + c.cfg.HitLat
		var unit int
		if c.mshrs != nil {
			unit, issueAt = c.mshrs.AcquireDynamic(issueAt)
		}
		fetchDone = c.parent.Access(issueAt, addr, false)
		if c.mshrs != nil {
			c.mshrs.ReleaseAt(unit, fetchDone)
		}
	}
	// Dirty eviction: the writeback occupies the parent off the critical
	// path (after the fill) but consumes real bandwidth.
	if c.tags[victim] != -1 && c.dirty[victim] {
		victimAddr := c.tags[victim] << LineShift
		c.parent.Access(fetchDone, victimAddr, true)
		c.Writebacks.Inc(1)
	}
	c.tags[victim] = line
	c.stamps[victim] = c.clock
	c.dirty[victim] = write

	done := fetchDone + c.cfg.HitLat
	c.Latency.Add(done - now)
	c.LatHist.Observe(int64(done - now))
	return done
}

// MSHRInFlight reports the MSHR entries still occupied past `now` (0 when
// the MSHR file is unbounded) — a telemetry gauge for miss-level
// parallelism pressure.
func (c *Cache) MSHRInFlight(now sim.Time) int {
	if c.mshrs == nil {
		return 0
	}
	return c.mshrs.InFlightAt(now)
}

// Contains reports whether the line holding addr is resident (test hook).
func (c *Cache) Contains(addr int64) bool {
	line := addr >> LineShift
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// HitRate reports the all-time hit rate.
func (c *Cache) HitRate() float64 {
	return sim.Ratio(c.Hits.Total, c.Hits.Total+c.Misses.Total)
}

// WindowLatency returns the average access latency over the current
// monitoring window (the paper's thrashing signal) and rolls the window.
func (c *Cache) WindowLatency() (avg float64, ok bool) {
	avg, ok = c.Latency.WindowAvg()
	c.Latency.Roll()
	return avg, ok
}
