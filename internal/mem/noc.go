package mem

import (
	"fmt"

	"shogun/internal/sim"
)

// NoCConfig describes the on-chip network connecting PEs, the system
// scheduler and the shared L2.
type NoCConfig struct {
	// Links is the number of concurrent transfers the fabric sustains.
	Links int
	// HopLat is the one-way traversal latency added to every request.
	HopLat sim.Time
	// FlitCycles is the link occupancy per cache line moved.
	FlitCycles sim.Time
}

// DefaultNoCConfig matches a modest crossbar for 10-20 PEs.
func DefaultNoCConfig() NoCConfig {
	return NoCConfig{Links: 8, HopLat: 4, FlitCycles: 1}
}

// NoC models the interconnect as a link pool: requests acquire a link for
// their payload duration and pay a fixed hop latency.
type NoC struct {
	cfg   NoCConfig
	links *sim.Pool

	LinesMoved sim.Counter
	Messages   sim.Counter
}

// NewNoC builds the interconnect.
func NewNoC(cfg NoCConfig) *NoC {
	return &NoC{cfg: cfg, links: sim.NewPool("noc", cfg.Links)}
}

// SetPerturb installs a service-time perturber on the link pool
// (chaos-harness latency jitter on fabric occupancy).
func (n *NoC) SetPerturb(pr sim.Perturber) { n.links.SetPerturb(pr) }

// Transfer moves `lines` cache lines plus a control message across the
// fabric, returning the delivery time. Used both for PE↔L2 traffic and
// for PE↔PE task-tree-splitting transfers (§4.1).
func (n *NoC) Transfer(now sim.Time, lines int64) sim.Time {
	occ := n.cfg.FlitCycles * sim.Time(lines)
	if occ < 1 {
		occ = 1
	}
	start := n.links.Acquire(now, occ)
	n.LinesMoved.Inc(lines)
	n.Messages.Inc(1)
	return start + occ + n.cfg.HopLat
}

// Utilization reports link occupancy over elapsed cycles.
func (n *NoC) Utilization(elapsed sim.Time) float64 {
	return n.links.Utilization(elapsed)
}

// InFlight reports the links still occupied past `now` — the in-flight
// message gauge a telemetry sampler reads at an epoch boundary.
func (n *NoC) InFlight(now sim.Time) int {
	return n.links.InFlightAt(now)
}

// Path wraps a memory level behind the NoC: each line access crosses the
// fabric (request) and returns (response latency folded into HopLat on
// both directions).
type Path struct {
	noc   *NoC
	level Level
}

// NewPath returns a Level that reaches `level` through the NoC.
func (n *NoC) NewPath(level Level) *Path {
	return &Path{noc: n, level: level}
}

// Access crosses the NoC, accesses the wrapped level, and crosses back.
func (p *Path) Access(now sim.Time, addr int64, write bool) sim.Time {
	arrive := p.noc.Transfer(now, 1)
	done := p.level.Access(arrive, addr, write)
	return done + p.noc.cfg.HopLat
}

// AddressMap lays out the simulated physical address space. Regions are
// disjoint so cache behaviour of graph data and intermediates never
// aliases.
type AddressMap struct {
	// CSRBase is where the flat neighbor array of the graph begins.
	CSRBase int64
	// InterBase is where preallocated intermediate vertex sets begin.
	InterBase int64
	// SetStride is the byte stride between consecutive intermediate-set
	// slots (≥ the largest possible set, rounded to lines).
	SetStride int64
}

// NewAddressMap sizes the layout for a graph whose neighbor array has
// csrInts entries and whose largest vertex set has maxSetInts entries.
func NewAddressMap(csrInts int64, maxSetInts int) AddressMap {
	stride := int64(maxSetInts) * 4
	stride = (stride + LineBytes - 1) / LineBytes * LineBytes
	if stride == 0 {
		stride = LineBytes
	}
	csrBytes := (csrInts*4 + LineBytes - 1) / LineBytes * LineBytes
	return AddressMap{
		CSRBase:   1 << 20,
		InterBase: 1<<20 + csrBytes + LineBytes,
		SetStride: stride,
	}
}

// CSRAddr returns the byte address of element offsetInts of the neighbor
// array.
func (m AddressMap) CSRAddr(offsetInts int64) int64 {
	return m.CSRBase + offsetInts*4
}

// SetAddr returns the byte address of intermediate-set slot `slot`.
func (m AddressMap) SetAddr(slot int) int64 {
	return m.InterBase + int64(slot)*m.SetStride
}

// String summarizes the layout.
func (m AddressMap) String() string {
	return fmt.Sprintf("csr@%#x inter@%#x stride=%d", m.CSRBase, m.InterBase, m.SetStride)
}
