package chaos

import (
	"strings"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/metrics"
)

// The counter-conservation half of the metamorphic suite: the metrics
// registry's invariants must hold under every fault the harness can
// inject, and the counters that describe WHAT was computed (tasks
// created/executed/released, leaves, embeddings, pruned fetches) must be
// bit-identical under pure latency jitter — jitter may only move work in
// time, never change it. Cache hit/miss and cycle counters are excluded
// from the invariance check: replacement state depends on access order,
// which jitter legitimately reorders.

const conservationSeeds = 12

// TestMetricsVerifyUnderChaos runs the full fault mix (jitter + forced
// conservative flips + forced splits) across seeds and demands a clean
// conservation pass each time.
func TestMetricsVerifyUnderChaos(t *testing.T) {
	g := testGraph()
	s := schedule(t)
	var flips, splits int64
	for seed := int64(0); seed < conservationSeeds; seed++ {
		in := New(Config{
			Seed:        seed,
			JitterPct:   25,
			FlipPeriod:  1500 + 100*cadence(seed),
			SplitPeriod: 2500 + 150*cadence(seed),
		})
		cfg := accel.DefaultConfig(accel.SchemeShogun)
		cfg.EnableSplitting = true
		cfg.EnableMerging = true
		cfg.Perturb = in
		a, err := accel.New(g, s, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in.Attach(a)
		if _, err := a.Run(); err != nil {
			// Run itself verifies (VerifyMetrics defaults on); a
			// violation surfaces here with the failing seed.
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := a.VerifyMetrics(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		flips += in.Flips
		splits += in.Splits
	}
	if flips == 0 || splits == 0 {
		t.Fatalf("fault injection inert: flips=%d splits=%d", flips, splits)
	}
}

// dataKeys filters a metrics snapshot down to the counters determined by
// the computation alone (independent of timing): global and per-PE task
// flow, leaves, embeddings, pruning.
func dataKeys(snap map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for k, v := range snap {
		switch {
		case strings.HasPrefix(k, "tasks/"):
			out[k] = v
		case strings.HasSuffix(k, "/executed"),
			strings.HasSuffix(k, "/leaf-tasks"),
			strings.HasSuffix(k, "/pruned-fetches"),
			strings.HasSuffix(k, "/embeddings"):
			out[k] = v
		}
	}
	return out
}

// TestCounterJitterInvariance is the metamorphic property: pure latency
// jitter (no forced flips or splits, no task migration) must leave every
// data-determined counter identical to the unperturbed baseline, while
// cycle totals merely shift.
func TestCounterJitterInvariance(t *testing.T) {
	g := testGraph()
	s := schedule(t)
	run := func(seed int64, jitterPct int) (*accel.Accelerator, map[string]int64) {
		t.Helper()
		cfg := accel.DefaultConfig(accel.SchemeShogun)
		var in *Injector
		if jitterPct > 0 {
			in = New(Config{Seed: seed, JitterPct: jitterPct})
			cfg.Perturb = in
		}
		a, err := accel.New(g, s, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if in != nil {
			in.Attach(a)
		}
		if _, err := a.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if in != nil && in.Jitters == 0 {
			t.Fatalf("seed %d: jitter inert", seed)
		}
		return a, a.Metrics().Snapshot()
	}

	_, baseSnap := run(0, 0)
	baseCycle := baseSnap["engine/final-cycle"]
	baseData := dataKeys(baseSnap)
	if len(baseData) < 10 {
		t.Fatalf("only %d data-determined counters found — key filter broken?", len(baseData))
	}

	shifted := 0
	for seed := int64(1); seed <= conservationSeeds; seed++ {
		_, snap := run(seed, 30)
		if diff := metrics.Diff(baseData, dataKeys(snap)); len(diff) != 0 {
			t.Fatalf("seed %d: data-determined counters changed under jitter: %v", seed, diff)
		}
		if snap["engine/final-cycle"] != baseCycle {
			shifted++
		}
	}
	if shifted == 0 {
		t.Fatal("jitter never shifted the cycle total — perturbation not reaching the timing model")
	}
}
