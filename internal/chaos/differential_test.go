package chaos

import (
	"encoding/json"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/metrics"
)

// TestQueueDifferentialUnderChaos extends the event-engine equivalence
// gate (accel's TestQueueDifferential) to perturbed runs: across 12
// chaos seeds of latency jitter, forced conservative flips, and forced
// task-tree splits, the binary-heap and calendar-queue engines must
// produce bit-identical runs — the chaos injector consumes its RNG
// stream in event order, so this catches any reordering the clean
// matrix is too regular to expose.
func TestQueueDifferentialUnderChaos(t *testing.T) {
	g := testGraph()
	s := schedule(t)
	base := accel.DefaultConfig(accel.SchemeShogun)
	base.EnableSplitting = true
	base.EnableMerging = true
	base.SampleEvery = 512
	for seed := int64(0); seed < 12; seed++ {
		var blobs []string
		var snaps []map[string]int64
		var faults [][3]int64
		for _, queue := range []string{"heap", "calendar"} {
			in := New(Config{
				Seed:        seed,
				JitterPct:   25,
				FlipPeriod:  1500 + 100*cadence(seed),
				SplitPeriod: 2500 + 150*cadence(seed),
			})
			cfg := base
			cfg.EventQueue = queue
			cfg.Perturb = in
			a, err := accel.New(g, s, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, queue, err)
			}
			in.Attach(a)
			res, err := a.Run()
			if err != nil {
				t.Fatalf("seed %d %s: run failed: %v", seed, queue, err)
			}
			blob, err := json.Marshal(res)
			if err != nil {
				t.Fatalf("seed %d %s: marshal: %v", seed, queue, err)
			}
			blobs = append(blobs, string(blob))
			snaps = append(snaps, a.Metrics().Snapshot())
			faults = append(faults, [3]int64{in.Jitters, in.Flips, in.Splits})
		}
		if blobs[0] != blobs[1] {
			t.Errorf("seed %d: result diverged between heap and calendar engines:\nheap:     %s\ncalendar: %s", seed, blobs[0], blobs[1])
		}
		if diff := metrics.Diff(snaps[0], snaps[1]); len(diff) > 0 {
			t.Errorf("seed %d: hardware counters diverged: %v", seed, diff)
		}
		if faults[0] != faults[1] {
			t.Errorf("seed %d: fault injection diverged (jitters,flips,splits): heap %v, calendar %v", seed, faults[0], faults[1])
		}
		if faults[0][0] == 0 {
			t.Errorf("seed %d: no jitter fired — the differential proves nothing", seed)
		}
	}
}
