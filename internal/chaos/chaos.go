// Package chaos provides deterministic, seeded fault injection for the
// accelerator simulator: latency jitter on FU/DRAM/NoC pool service
// times, forced conservative-mode flips, and forced task-tree splits.
//
// The point is metamorphic testing. The simulator decouples the data
// computation (which embeddings exist) from the timing model (when work
// happens), so any perturbation of timing or scheduling must leave
// embedding counts bit-exact, conserve every token and semaphore, and
// never deadlock. An injector is a pure function of its seed and the
// (deterministic) event-loop order, so a failing seed replays exactly.
package chaos

import (
	"math/rand"

	"shogun/internal/accel"
	"shogun/internal/sim"
)

// Config parameterizes an Injector.
type Config struct {
	// Seed drives every random choice; a fixed seed replays a run.
	Seed int64
	// JitterPct inflates pool service times by up to this percentage
	// (uniform per reservation; 0 disables jitter).
	JitterPct int
	// FlipPeriod is the cadence of forced conservative-mode flips on a
	// randomly chosen PE (0 disables flips).
	FlipPeriod sim.Time
	// SplitPeriod is the cadence of forced task-tree splits
	// (0 disables; only meaningful for the Shogun scheme).
	SplitPeriod sim.Time
}

// Injector implements sim.Perturber and schedules scheduling faults on
// an accelerator's event loop. One Injector serves one accelerator: the
// rng is unsynchronized and event loops are single-threaded, so sharing
// an Injector across concurrently running simulations would race (and
// break determinism).
type Injector struct {
	cfg Config
	rng *rand.Rand

	// Counters report what was actually injected (so tests can assert
	// the harness exercised anything at all).
	Jitters    int64
	Flips      int64
	Splits     int64
	Migrations int64
}

// New builds an Injector for the given config.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// ServiceTime implements sim.Perturber: uniform inflation in
// [0, JitterPct]% of the nominal duration (at least one cycle when a
// nonzero draw rounds down).
func (in *Injector) ServiceTime(pool string, dur sim.Time) sim.Time {
	if in.cfg.JitterPct <= 0 {
		return dur
	}
	pct := in.rng.Intn(in.cfg.JitterPct + 1)
	if pct == 0 {
		return dur
	}
	in.Jitters++
	extra := dur * sim.Time(pct) / 100
	if extra < 1 {
		extra = 1
	}
	return dur + extra
}

// Attach wires the injector into a freshly built accelerator: it
// installs the jitter perturber (if the accelerator was not already
// built with Config.Perturb) and schedules the flip/split fault ticks.
// Call after accel.New and before Run; the ticks stop rescheduling once
// every PE is idle with no pending work, so a finished simulation's
// event queue still drains.
func (in *Injector) Attach(a *accel.Accelerator) {
	eng := a.Engine()
	anyBusy := func() bool {
		for _, p := range a.PEs() {
			if !p.Idle() || p.HasWork() {
				return true
			}
		}
		return false
	}
	if in.cfg.FlipPeriod > 0 {
		var flip func()
		flip = func() {
			if !anyBusy() {
				return
			}
			pes := a.PEs()
			p := pes[in.rng.Intn(len(pes))]
			p.ForceConservative(!p.Conservative())
			in.Flips++
			eng.After(in.cfg.FlipPeriod, flip)
		}
		eng.After(in.cfg.FlipPeriod, flip)
	}
	if in.cfg.SplitPeriod > 0 {
		var split func()
		split = func() {
			if !anyBusy() {
				return
			}
			if a.ForceSplit() {
				in.Splits++
			}
			eng.After(in.cfg.SplitPeriod, split)
		}
		eng.After(in.cfg.SplitPeriod, split)
	}
}

// ClusterTarget is the surface AttachCluster needs from a multi-chip
// system: its shared event engine, a liveness predicate, and the forced
// chip-level migration hook. Declared as an interface so chaos does not
// import internal/cluster (which imports accel, which chaos serves).
type ClusterTarget interface {
	Engine() *sim.Engine
	Busy() bool
	ForceMigrate() bool
}

// AttachCluster schedules forced chip-level subtree migrations on the
// cluster's shared event loop every period cycles — the forced-split
// fault tick lifted one level. The tick stops rescheduling once the
// cluster drains, so the event queue still empties at run end. A zero
// period disables the tick.
func (in *Injector) AttachCluster(c ClusterTarget, period sim.Time) {
	if period <= 0 {
		return
	}
	eng := c.Engine()
	var tick func()
	tick = func() {
		if !c.Busy() {
			return
		}
		if c.ForceMigrate() {
			in.Migrations++
		}
		eng.After(period, tick)
	}
	eng.After(period, tick)
}
