package chaos

import (
	"fmt"
	"sync"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/mine"
	"shogun/internal/pattern"
)

// The metamorphic invariant suite: across many seeds of latency jitter,
// forced conservative flips, and forced task-tree splits, every scheme
// must (1) report the exact golden embedding count, (2) leak no
// execution slots, SPM lines, or address tokens, and (3) terminate
// without deadlocking. The data computation is decoupled from the
// timing model, so any divergence is a real scheduling bug, not noise.

const numSeeds = 20

func testGraph() *graph.Graph {
	return gen.RMAT(1<<9, 3000, 0.57, 0.17, 0.17, 42)
}

func schedule(t *testing.T) *pattern.Schedule {
	t.Helper()
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// schemes returns the ≥3 configurations the suite perturbs, including
// Shogun with both optimizations on (the richest scheduling surface).
func schemes() map[string]accel.Config {
	shogun := accel.DefaultConfig(accel.SchemeShogun)
	shogun.EnableSplitting = true
	shogun.EnableMerging = true
	return map[string]accel.Config{
		"shogun+split+merge": shogun,
		"pseudo-dfs":         accel.DefaultConfig(accel.SchemePseudoDFS),
		"bfs":                accel.DefaultConfig(accel.SchemeBFS),
	}
}

func TestMetamorphicInvariants(t *testing.T) {
	g := testGraph()
	s := schedule(t)
	golden := mine.ParallelCount(g, s, 4).Embeddings
	if golden == 0 {
		t.Fatal("degenerate test graph: zero golden embeddings")
	}
	var totalJ, totalF, totalSp int64
	var mu sync.Mutex
	for name, cfg := range schemes() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < numSeeds; seed++ {
				in := New(Config{
					Seed:        seed,
					JitterPct:   25,
					FlipPeriod:  1500 + 100*cadence(seed),
					SplitPeriod: 2500 + 150*cadence(seed),
				})
				c := cfg
				c.Perturb = in
				a, err := accel.New(g, s, c)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				in.Attach(a)
				res, err := a.Run()
				if err != nil {
					t.Fatalf("seed %d: run failed: %v", seed, err)
				}
				if res.Embeddings != golden {
					t.Fatalf("seed %d: count diverged under perturbation: %d, golden %d", seed, res.Embeddings, golden)
				}
				if err := a.CheckConservation(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				mu.Lock()
				totalJ += in.Jitters
				totalF += in.Flips
				totalSp += in.Splits
				mu.Unlock()
			}
		})
	}
	t.Cleanup(func() {
		// The suite proves nothing if no faults actually fired.
		if totalJ == 0 || totalF == 0 {
			t.Errorf("harness injected nothing: jitters=%d flips=%d splits=%d", totalJ, totalF, totalSp)
		}
		t.Logf("injected: %d jitter draws, %d flips, %d splits", totalJ, totalF, totalSp)
	})
}

// cadence varies fault periods with the seed so flips/splits land at
// different points of the schedule across seeds, not just with
// different rng streams.
func cadence(seed int64) int64 { return seed % 7 }

// TestDeterministicReplay pins the "failing seed replays exactly"
// property: two runs with the same seed produce identical cycle counts
// and fault counters.
func TestDeterministicReplay(t *testing.T) {
	g := testGraph()
	s := schedule(t)
	cfg := accel.DefaultConfig(accel.SchemeShogun)
	cfg.EnableSplitting = true
	run := func() (cycles int64, j, f, sp int64) {
		in := New(Config{Seed: 7, JitterPct: 30, FlipPeriod: 1700, SplitPeriod: 2300})
		c := cfg
		c.Perturb = in
		a, err := accel.New(g, s, c)
		if err != nil {
			t.Fatal(err)
		}
		in.Attach(a)
		res, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, in.Jitters, in.Flips, in.Splits
	}
	c1, j1, f1, sp1 := run()
	c2, j2, f2, sp2 := run()
	if c1 != c2 || j1 != j2 || f1 != f2 || sp1 != sp2 {
		t.Fatalf("same seed diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", c1, j1, f1, sp1, c2, j2, f2, sp2)
	}
}

// TestJitterChangesTiming guards against the perturber silently not
// being wired in: with jitter on, at least one seed must change the
// cycle count relative to the unperturbed run.
func TestJitterChangesTiming(t *testing.T) {
	g := testGraph()
	s := schedule(t)
	cfg := accel.DefaultConfig(accel.SchemePseudoDFS)
	a, err := accel.New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		c := cfg
		c.Perturb = New(Config{Seed: seed, JitterPct: 40})
		a, err := accel.New(g, s, c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != base.Cycles {
			return // timing moved: the hook is live
		}
	}
	t.Fatalf("40%% jitter never changed the cycle count (base %d); perturber not wired?", base.Cycles)
}

func ExampleInjector() {
	g := gen.RMAT(256, 1200, 0.57, 0.17, 0.17, 1)
	s, _ := pattern.Build(pattern.Triangle())
	golden := mine.ParallelCount(g, s, 2).Embeddings
	cfg := accel.DefaultConfig(accel.SchemeShogun)
	in := New(Config{Seed: 3, JitterPct: 20, FlipPeriod: 2000})
	cfg.Perturb = in
	a, _ := accel.New(g, s, cfg)
	in.Attach(a)
	res, _ := a.Run()
	fmt.Println(res.Embeddings == golden)
	// Output: true
}
