package sim

import (
	"math/rand"
	"testing"
)

// drain pops every event, asserting (time, seq) total order, and returns
// the pop sequence's seqs.
func drain(t *testing.T, q eventQueue) []int64 {
	t.Helper()
	var out []int64
	var prev *event
	for q.len() > 0 {
		pk := q.peek()
		ev := q.pop()
		if ev != pk {
			t.Fatalf("peek %v != pop %v", pk, ev)
		}
		if prev != nil && !(prev.before(ev)) {
			t.Fatalf("order violation: (%d,%d) before (%d,%d)", prev.at, prev.seq, ev.at, ev.seq)
		}
		p := *ev
		prev = &p
		out = append(out, ev.seq)
	}
	if q.pop() != nil || q.peek() != nil {
		t.Fatal("empty queue returned an event")
	}
	return out
}

func mkEvent(at Time, seq int64) *event { return &event{at: at, seq: seq} }

func TestCalendarSameCycleFIFO(t *testing.T) {
	q := newCalendarQueue()
	for i := int64(1); i <= 5; i++ {
		q.push(mkEvent(7, i))
	}
	seqs := drain(t, q)
	for i, s := range seqs {
		if s != int64(i+1) {
			t.Fatalf("same-cycle order %v, want 1..5", seqs)
		}
	}
}

func TestCalendarFarFutureOverflow(t *testing.T) {
	q := newCalendarQueue()
	// Beyond the window: must land in, and pop from, the overflow heap.
	q.push(mkEvent(calWindow*3+5, 1))
	q.push(mkEvent(2, 2))
	q.push(mkEvent(calWindow*3+5, 3)) // same far cycle, FIFO with seq 1
	q.push(mkEvent(calWindow*10, 4))
	seqs := drain(t, q)
	want := []int64{2, 1, 3, 4}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("pop order %v, want %v", seqs, want)
		}
	}
}

// TestCalendarOverflowEntersWindow pins the subtle case: after base
// advances, the overflow minimum falls inside [base, base+W) while the
// ring holds a later event — peek must compare both heads.
func TestCalendarOverflowEntersWindow(t *testing.T) {
	q := newCalendarQueue()
	q.push(mkEvent(0, 1))
	q.push(mkEvent(calWindow+2, 2)) // >= base+W at push time: overflow
	q.push(mkEvent(10, 3))
	if ev := q.pop(); ev.seq != 1 {
		t.Fatalf("first pop seq %d", ev.seq)
	}
	if ev := q.pop(); ev.seq != 3 {
		t.Fatalf("second pop seq %d", ev.seq)
	}
	// base is now 10, window [10, calWindow+10): this push is
	// ring-resident even though the overflow min (calWindow+2) is older.
	q.push(mkEvent(calWindow+7, 4))
	if q.winCount != 1 || len(q.over) != 1 {
		t.Fatalf("placement: winCount=%d overflow=%d", q.winCount, len(q.over))
	}
	// Peek/pop must compare the ring head against the overflow head.
	if ev := q.pop(); ev.at != calWindow+2 {
		t.Fatalf("pop at %d, want %d (overflow head inside window)", ev.at, calWindow+2)
	}
	if ev := q.pop(); ev.at != calWindow+7 {
		t.Fatalf("pop at %d, want %d", ev.at, calWindow+7)
	}
}

func TestCalendarWindowWrap(t *testing.T) {
	q := newCalendarQueue()
	// Advance base deep into the ring so pushes wrap the bucket array.
	q.push(mkEvent(calWindow-3, 1))
	if q.pop().seq != 1 {
		t.Fatal("warmup pop")
	}
	// base = calWindow-3. These wrap modulo calWindow.
	q.push(mkEvent(calWindow-1, 2))
	q.push(mkEvent(calWindow+1, 3))   // bucket 1: wrapped
	q.push(mkEvent(calWindow-2, 4))   // before base? no: base-? => bucket calWindow-2
	q.push(mkEvent(2*calWindow-4, 5)) // last bucket of the span
	seqs := drain(t, q)
	want := []int64{4, 2, 3, 5}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("pop order %v, want %v", seqs, want)
		}
	}
}

// TestCalendarAgainstHeap drives both disciplines with an identical
// randomized schedule/pop workload and requires identical pop sequences.
func TestCalendarAgainstHeap(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cal, hp := newCalendarQueue(), &heapQueue{}
		var now Time
		var seq int64
		for i := 0; i < 5000; i++ {
			if rng.Intn(3) != 0 || cal.len() == 0 {
				var d Time
				switch rng.Intn(10) {
				case 0: // far future
					d = Time(rng.Intn(4 * calWindow))
				case 1: // same cycle
					d = 0
				default:
					d = Time(rng.Intn(64))
				}
				seq++
				cal.push(mkEvent(now+d, seq))
				hp.push(mkEvent(now+d, seq))
			} else {
				a, b := cal.pop(), hp.pop()
				if a.at != b.at || a.seq != b.seq {
					t.Fatalf("seed %d: pop diverged (%d,%d) vs (%d,%d)", seed, a.at, a.seq, b.at, b.seq)
				}
				now = a.at
			}
			if cal.len() != hp.len() {
				t.Fatalf("seed %d: len diverged %d vs %d", seed, cal.len(), hp.len())
			}
		}
		for cal.len() > 0 {
			a, b := cal.pop(), hp.pop()
			if a.at != b.at || a.seq != b.seq {
				t.Fatalf("seed %d: drain diverged", seed)
			}
		}
		if hp.len() != 0 {
			t.Fatalf("seed %d: heap not drained", seed)
		}
	}
}

// TestEngineActorOrder checks closure and actor events interleave in
// scheduling order at the same timestamp.
type orderRecorder struct {
	got []int
}

func (r *orderRecorder) Act(op int, _ any) { r.got = append(r.got, op) }

func TestEngineActorOrder(t *testing.T) {
	for _, kind := range []QueueKind{QueueCalendar, QueueHeap} {
		e := NewEngineQueue(kind)
		r := &orderRecorder{}
		e.Post(5, r, 1, nil)
		e.At(5, func() { r.got = append(r.got, 2) })
		e.Post(5, r, 3, nil)
		e.Post(3, r, 0, nil)
		e.Run()
		want := []int{0, 1, 2, 3}
		if len(r.got) != len(want) {
			t.Fatalf("%v: got %v", kind, r.got)
		}
		for i := range want {
			if r.got[i] != want[i] {
				t.Fatalf("%v: order %v, want %v", kind, r.got, want)
			}
		}
		if e.Now() != 5 || e.Processed != 4 || e.Pending() != 0 {
			t.Fatalf("%v: end state now=%d processed=%d pending=%d", kind, e.Now(), e.Processed, e.Pending())
		}
	}
}

// TestEngineFreelistReuse checks node recycling: a long self-rearming
// chain must not grow the allocation block beyond its first refill.
func TestEngineFreelistReuse(t *testing.T) {
	e := NewEngine()
	a := &benchActor{e: e, delay: 1, remaining: 10 * eventBlock}
	e.PostAfter(1, a, 0, nil)
	e.Run()
	if e.Processed != int64(10*eventBlock)+1 {
		t.Fatalf("processed %d", e.Processed)
	}
	// One live event at a time: the first block must never be exhausted.
	if len(e.block) < eventBlock-2 {
		t.Fatalf("freelist not reused: %d of %d block slots left", len(e.block), eventBlock)
	}
}

// TestPoolAcquireBatchEquivalence checks AcquireBatch against the k
// successive Acquire calls it replaces, across pool sizes (including the
// single-unit fast path), clamped and unclamped starts, and batch sizes.
func TestPoolAcquireBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, units := range []int{1, 2, 3, 8, 24} {
		ref := NewPool("ref", units)
		bat := NewPool("bat", units)
		var now Time
		for step := 0; step < 400; step++ {
			now += Time(rng.Intn(12))
			dur := Time(1 + rng.Intn(9))
			k := 1 + rng.Intn(40)
			var refDone Time
			for i := 0; i < k; i++ {
				refDone = ref.Acquire(now, dur) + dur
			}
			batDone := bat.AcquireBatch(now, dur, k)
			if refDone != batDone {
				t.Fatalf("units=%d step=%d: batch done %d, sequential done %d", units, step, batDone, refDone)
			}
			if ref.Busy() != bat.Busy() || ref.Acquires() != bat.Acquires() {
				t.Fatalf("units=%d: busy %d vs %d, acquires %d vs %d",
					units, ref.Busy(), bat.Busy(), ref.Acquires(), bat.Acquires())
			}
			if ref.NextFree() != bat.NextFree() {
				t.Fatalf("units=%d: next-free %d vs %d", units, ref.NextFree(), bat.NextFree())
			}
			// Interleave a plain Acquire so per-unit state must also agree.
			if a, b := ref.Acquire(now, dur), bat.Acquire(now, dur); a != b {
				t.Fatalf("units=%d: interleaved acquire %d vs %d", units, a, b)
			}
		}
	}
}

// TestCalendarPeekThenEarlierPush pins the fuzz-found regression: a peek
// while only far-future events are queued must not advance the window
// floor, because a later push at an earlier (still legal) time must
// still pop first.
func TestCalendarPeekThenEarlierPush(t *testing.T) {
	q := newCalendarQueue()
	q.push(mkEvent(calWindow+259, 1)) // overflow
	if q.peek().at != calWindow+259 {
		t.Fatal("peek should see the overflow head")
	}
	q.push(mkEvent(calWindow-4, 2)) // legal: clock is still 0
	if ev := q.pop(); ev.at != calWindow-4 {
		t.Fatalf("pop at %d, want %d", ev.at, calWindow-4)
	}
	if ev := q.pop(); ev.at != calWindow+259 {
		t.Fatalf("pop at %d, want %d", ev.at, calWindow+259)
	}
}
