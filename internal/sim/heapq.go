package sim

// heapQueue is the binary-heap event-queue fallback (-queue=heap): the
// classic O(log n) discipline the calendar queue replaced as default.
// It is kept for differential testing — both disciplines must produce
// bit-identical event orders — and as an escape hatch for workloads
// whose event horizon defeats the calendar ring. It shares the pooled
// event nodes, so it too schedules without per-event allocation.
type heapQueue struct {
	h []*event
}

func (q *heapQueue) len() int { return len(q.h) }

func (q *heapQueue) peek() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) push(ev *event) {
	q.h = append(q.h, ev)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.before(q.h[parent]) {
			break
		}
		q.h[i] = q.h[parent]
		i = parent
	}
	q.h[i] = ev
}

func (q *heapQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	min := q.h[0]
	last := q.h[len(q.h)-1]
	q.h[len(q.h)-1] = nil // release the reference for the recycler
	q.h = q.h[:len(q.h)-1]
	if h := q.h; len(h) > 0 {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			if l >= len(h) {
				break
			}
			c := l
			if r < len(h) && h[r].before(h[l]) {
				c = r
			}
			if !h[c].before(last) {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = last
	}
	return min
}
