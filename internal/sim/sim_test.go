package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(5, func() { got = append(got, 5) })
	e.At(1, func() { got = append(got, 1) })
	e.At(3, func() { got = append(got, 3) })
	e.At(3, func() { got = append(got, 4) }) // same time: scheduling order
	e.Run()
	want := []int{1, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %d", e.Now())
	}
	if e.Processed != 4 {
		t.Fatalf("Processed = %d", e.Processed)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	hits := 0
	e.At(1, func() {
		e.After(2, func() {
			hits++
			if e.Now() != 3 {
				t.Errorf("nested event at %d, want 3", e.Now())
			}
		})
	})
	e.Run()
	if hits != 1 {
		t.Fatal("nested event did not run")
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := map[int]bool{}
	for _, at := range []Time{1, 2, 10} {
		at := at
		e.At(at, func() { ran[int(at)] = true })
	}
	if !e.RunUntil(5) {
		t.Fatal("RunUntil drained unexpectedly")
	}
	if !ran[1] || !ran[2] || ran[10] {
		t.Fatalf("ran = %v", ran)
	}
	if e.RunUntil(100) {
		t.Fatal("RunUntil should have drained")
	}
}

func TestPoolSingleUnitSerializes(t *testing.T) {
	p := NewPool("x", 1)
	s1 := p.Acquire(0, 10)
	s2 := p.Acquire(0, 10)
	s3 := p.Acquire(25, 10)
	if s1 != 0 || s2 != 10 || s3 != 25 {
		t.Fatalf("starts = %d,%d,%d", s1, s2, s3)
	}
	if p.Busy() != 30 {
		t.Fatalf("busy = %d", p.Busy())
	}
}

func TestPoolParallelUnits(t *testing.T) {
	p := NewPool("x", 3)
	starts := []Time{p.Acquire(0, 10), p.Acquire(0, 10), p.Acquire(0, 10), p.Acquire(0, 10)}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	want := []Time{0, 0, 0, 10}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v", starts)
		}
	}
	if got := p.Utilization(20); got != 40.0/60.0 {
		t.Fatalf("utilization = %v", got)
	}
	if p.NextFree() != 10 {
		t.Fatalf("NextFree = %d", p.NextFree())
	}
}

// Property: k unit-duration acquisitions on an n-unit pool starting at 0
// finish by ceil(k/n) and keep busy = k.
func TestPoolThroughputProperty(t *testing.T) {
	f := func(kRaw, nRaw uint8) bool {
		k := int(kRaw%100) + 1
		n := int(nRaw%16) + 1
		p := NewPool("x", n)
		var maxEnd Time
		for i := 0; i < k; i++ {
			s := p.Acquire(0, 1)
			if s+1 > maxEnd {
				maxEnd = s + 1
			}
		}
		want := Time((k + n - 1) / n)
		return maxEnd == want && p.Busy() == Time(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreBasics(t *testing.T) {
	s := NewSemaphore("slots", 2)
	if !s.TryAcquire(0, 1) || !s.TryAcquire(0, 1) {
		t.Fatal("initial acquires failed")
	}
	if s.TryAcquire(0, 1) {
		t.Fatal("over-capacity acquire succeeded")
	}
	woken := 0
	if s.AcquireOrWait(0, 1, func() { woken++ }) {
		t.Fatal("AcquireOrWait should have queued")
	}
	s.Release(10, 1)
	if woken != 1 {
		t.Fatalf("woken = %d", woken)
	}
	if s.Available() != 1 {
		t.Fatalf("available = %d", s.Available())
	}
	if s.Peak() != 2 {
		t.Fatalf("peak = %d", s.Peak())
	}
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	NewSemaphore("x", 1).Release(0, 1)
}

func TestSemaphoreOccupancyIntegral(t *testing.T) {
	s := NewSemaphore("x", 4)
	s.TryAcquire(0, 2)  // 2 units held over [0,10)
	s.Release(10, 1)    // 1 unit held over [10,20)
	s.TryAcquire(20, 3) // 4 units held over [20,30)
	got := s.AvgOccupancy(30)
	want := (2.0*10 + 1.0*10 + 4.0*10) / 30.0
	if got != want {
		t.Fatalf("AvgOccupancy = %v, want %v", got, want)
	}
}

func TestWindowStat(t *testing.T) {
	var w WindowStat
	w.Add(10)
	w.Add(20)
	if avg, ok := w.WindowAvg(); !ok || avg != 15 {
		t.Fatalf("window avg = %v ok=%v", avg, ok)
	}
	w.Roll()
	if _, ok := w.WindowAvg(); ok {
		t.Fatal("rolled window still has samples")
	}
	w.AddN(30, 3)
	if avg, _ := w.WindowAvg(); avg != 10 {
		t.Fatalf("window avg after AddN = %v", avg)
	}
	if w.Avg() != 60.0/5.0 {
		t.Fatalf("total avg = %v", w.Avg())
	}
}

func TestCounterAndRatio(t *testing.T) {
	var c Counter
	c.Inc(5)
	c.Roll()
	c.Inc(3)
	if c.Total != 8 || c.Window() != 3 {
		t.Fatalf("counter = %+v win %d", c.Total, c.Window())
	}
	if Ratio(1, 0) != 0 || Ratio(3, 4) != 0.75 {
		t.Fatal("Ratio misbehaved")
	}
}

func TestAcquireDynamic(t *testing.T) {
	p := NewPool("x", 2)
	u1, s1 := p.AcquireDynamic(10)
	if s1 != 10 {
		t.Fatalf("start = %d", s1)
	}
	p.ReleaseAt(u1, 50)
	u2, s2 := p.AcquireDynamic(0)
	if s2 != 0 || u2 == u1 {
		t.Fatalf("second unit: u=%d s=%d", u2, s2)
	}
	p.ReleaseAt(u2, 20)
	// Third acquisition must wait for the earlier-free unit (t=20).
	_, s3 := p.AcquireDynamic(5)
	if s3 != 20 {
		t.Fatalf("third start = %d, want 20", s3)
	}
	if p.Busy() != 60 {
		t.Fatalf("busy = %d, want 60", p.Busy())
	}
	// ReleaseAt earlier than current until is a no-op.
	p.ReleaseAt(u1, 1)
	if p.Busy() != 60 {
		t.Fatal("backwards ReleaseAt changed busy")
	}
}

func TestEnginePendingAndStep(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine")
	}
	e.At(5, func() {})
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	if !e.Step() || e.Pending() != 0 {
		t.Fatal("Step bookkeeping broken")
	}
}
