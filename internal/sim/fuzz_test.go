package sim

import (
	"bytes"
	"fmt"
	"testing"
)

// fuzzRecorder logs every delivery as (now, op) and optionally re-arms
// once (arg carries the re-arm delay), so fuzz programs exercise
// engine-driven pushes from inside callbacks, not just external ones.
type fuzzRecorder struct {
	e     *Engine
	trace []int64
}

func (r *fuzzRecorder) Act(op int, arg any) {
	r.trace = append(r.trace, int64(r.e.Now()), int64(op))
	if d, ok := arg.(Time); ok {
		r.e.PostAfter(d, r, op+1_000_000, nil)
	}
}

// runQueueProgram interprets the fuzz input as a schedule/step program
// against one queue discipline and returns the full delivery trace.
func runQueueProgram(kind QueueKind, data []byte) (trace []int64, now Time, processed int64) {
	e := NewEngineQueue(kind)
	r := &fuzzRecorder{e: e}
	id := 0
	for i := 0; i+1 < len(data); i += 2 {
		op, val := data[i], Time(data[i+1])
		switch op % 7 {
		case 0: // same-cycle tie: must fire in scheduling order
			e.Post(e.Now(), r, id, nil)
		case 1: // short delay: calendar ring path
			e.PostAfter(val%64, r, id, nil)
		case 2: // beyond the window: overflow heap + refill path
			e.PostAfter(calWindow+val*37, r, id, nil)
		case 3: // just inside / just outside the window boundary
			e.PostAfter(calWindow-4+val%8, r, id, nil)
		case 4: // self-re-arming event (push from inside a callback)
			e.PostAfter(val%64, r, id, val%17)
		case 5: // drain a bounded number of events
			for n := Time(0); n < val%32 && e.Step(); n++ {
			}
		case 6: // run to a deadline
			e.RunUntil(e.Now() + val%512)
		}
		id++
	}
	e.Run()
	return r.trace, e.Now(), e.Processed
}

// FuzzEventQueueEquivalence drives the calendar-queue and binary-heap
// engines with an identical fuzz-derived program and requires
// bit-identical delivery traces, clocks, and processed counts — the
// property the whole simulator's determinism rests on.
func FuzzEventQueueEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 2, 9, 6, 255})
	f.Add([]byte{1, 3, 1, 3, 1, 3, 5, 31, 2, 200, 6, 255})
	f.Add([]byte{3, 0, 3, 1, 3, 2, 3, 3, 3, 4, 3, 5, 3, 6, 3, 7})
	f.Add([]byte{4, 16, 4, 16, 4, 16, 5, 31, 4, 9, 6, 100})
	f.Add(bytes.Repeat([]byte{2, 7, 1, 1}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		ct, cn, cp := runQueueProgram(QueueCalendar, data)
		ht, hn, hp := runQueueProgram(QueueHeap, data)
		if cn != hn || cp != hp {
			t.Fatalf("end state diverged: calendar now=%d processed=%d, heap now=%d processed=%d", cn, cp, hn, hp)
		}
		if len(ct) != len(ht) {
			t.Fatalf("trace length diverged: %d vs %d", len(ct), len(ht))
		}
		for i := range ct {
			if ct[i] != ht[i] {
				t.Fatal(fmt.Sprintf("trace diverged at %d: calendar %d, heap %d", i, ct[i], ht[i]))
			}
		}
	})
}
