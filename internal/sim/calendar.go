package sim

import "math/bits"

// calendarQueue is a hierarchical calendar queue: a ring of per-cycle
// buckets covering a sliding near-future window of calWindow cycles,
// backed by a far-future binary heap.
//
// Almost every event a Shogun simulation schedules is short-delay —
// pipeline stage hops of a few cycles, pool completions tens of cycles
// out, monitor/balance ticks a few thousand cycles out — so the ring
// absorbs essentially all traffic: push appends to a singly linked
// bucket FIFO in O(1), and pop finds the next non-empty bucket with a
// one-bit-per-bucket occupancy bitmap (a few word scans, usually one).
// Only events scheduled ≥ calWindow cycles ahead touch the overflow
// heap; they stay there and pop directly from the heap head, which
// peek always compares against the ring minimum.
//
// # Determinism
//
// The engine's contract is a total order by (time, seq). The ring
// preserves it structurally:
//
//   - base only advances in pop, to the popped event's time — which is
//     the queue minimum and becomes the engine's clock. The engine
//     never schedules into the past, so every future push has
//     at ≥ base: nothing ever lands "behind" the window floor. (An
//     earlier design bulk-moved overflow events into the ring by
//     advancing base to the overflow minimum; that jumps base past
//     the clock and lets a later legal push land behind it, which
//     FuzzEventQueueEquivalence caught. Overflow events now pop from
//     their heap one at a time instead — they are rare by design.)
//   - A bucket only ever holds events of a single timestamp: an event
//     enters bucket t mod W only while t ∈ [base, base+W), and two
//     times t, t+W can never satisfy that simultaneously because base
//     is monotone and never passes a queued event.
//   - Within a bucket, events append in push order, and live pushes
//     happen in seq order.
//   - Across ring and overflow, peek compares the two heads by
//     (time, seq) — the overflow minimum can fall inside the window
//     span after base advances past its push-time horizon, and a
//     same-time overflow event always has the smaller seq (it was
//     pushed before the window could reach its timestamp).
//
// The result is bit-identical event order to the binary-heap engine,
// which FuzzEventQueueEquivalence and the accel differential suite pin.
type calendarQueue struct {
	// buckets[i] chains the queued events with at ≡ i (mod calWindow),
	// all of one single timestamp, in FIFO (= seq) order.
	buckets [calWindow]calBucket
	// occ is the bucket occupancy bitmap (bit i = bucket i non-empty).
	occ [calWindow / 64]uint64
	// base is the window floor: every ring event has at ∈ [base,
	// base+calWindow). It advances to each popped event's time.
	base Time
	// winCount counts ring events; n counts all queued events.
	winCount int
	n        int
	// over is the far-future overflow: a binary heap by (at, seq).
	over []*event

	// cached is the memoized peek result (nil = unknown); cachedOver
	// records whether it lives in the overflow heap or the ring.
	cached     *event
	cachedOver bool
}

// calWindow is the ring span in cycles. Power of two; sized so every
// periodic tick in the model (monitor 2048, balance/merge 4096) and all
// memory-system latencies land inside the window.
const calWindow = 8192

type calBucket struct{ head, tail *event }

func newCalendarQueue() *calendarQueue { return &calendarQueue{} }

func (q *calendarQueue) len() int { return q.n }

func (q *calendarQueue) push(ev *event) {
	q.n++
	if ev.at < q.base+calWindow {
		i := int(uint64(ev.at) & (calWindow - 1))
		b := &q.buckets[i]
		if b.tail == nil {
			b.head = ev
			q.occ[i>>6] |= 1 << (uint(i) & 63)
		} else {
			b.tail.next = ev
		}
		b.tail = ev
		q.winCount++
		if q.cached != nil && ev.at < q.cached.at {
			q.cached, q.cachedOver = ev, false
		}
		return
	}
	q.overPush(ev)
	if q.cached != nil && ev.at < q.cached.at {
		q.cached, q.cachedOver = ev, true
	}
}

func (q *calendarQueue) peek() *event {
	if q.cached != nil {
		return q.cached
	}
	if q.n == 0 {
		return nil
	}
	if q.winCount == 0 {
		// Ring empty: the overflow head is the queue minimum.
		q.cached, q.cachedOver = q.over[0], true
		return q.cached
	}
	ev := q.scanMin()
	if len(q.over) > 0 {
		if o := q.over[0]; o.before(ev) {
			q.cached, q.cachedOver = o, true
			return o
		}
	}
	q.cached, q.cachedOver = ev, false
	return ev
}

func (q *calendarQueue) pop() *event {
	ev := q.peek()
	if ev == nil {
		return nil
	}
	if q.cachedOver {
		q.overPop()
	} else {
		i := int(uint64(ev.at) & (calWindow - 1))
		b := &q.buckets[i]
		b.head = ev.next
		if b.head == nil {
			b.tail = nil
			q.occ[i>>6] &^= 1 << (uint(i) & 63)
		}
		ev.next = nil
		q.winCount--
	}
	q.n--
	q.base = ev.at
	q.cached = nil
	return ev
}

// scanMin returns the ring's earliest event: the first occupied bucket
// in ring order starting from base's bucket. Ring order from base walks
// the window's time span [base, base+W) in increasing time, so the
// first hit is the minimum. Must only run with winCount > 0.
func (q *calendarQueue) scanMin() *event {
	const nw = calWindow / 64
	start := int(uint64(q.base) & (calWindow - 1))
	w0 := start >> 6
	off := uint(start) & 63
	// Bits ≥ off of the first word cover [base, next word boundary).
	if w := q.occ[w0] >> off; w != 0 {
		return q.buckets[start+bits.TrailingZeros64(w)].head
	}
	// Whole words, wrapping once around the ring.
	for k := 1; k < nw; k++ {
		wi := (w0 + k) & (nw - 1)
		if w := q.occ[wi]; w != 0 {
			return q.buckets[wi<<6+bits.TrailingZeros64(w)].head
		}
	}
	// Bits < off of the first word: the wrapped tail of the window.
	if w := q.occ[w0] & (1<<off - 1); w != 0 {
		return q.buckets[w0<<6+bits.TrailingZeros64(w)].head
	}
	panic("sim: calendar ring empty despite winCount > 0")
}

// Overflow heap: a plain binary heap of *event by (at, seq).

func (q *calendarQueue) overPush(ev *event) {
	q.over = append(q.over, ev)
	i := len(q.over) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.before(q.over[parent]) {
			break
		}
		q.over[i] = q.over[parent]
		i = parent
	}
	q.over[i] = ev
}

func (q *calendarQueue) overPop() *event {
	h := q.over
	min := h[0]
	last := h[len(h)-1]
	h[len(h)-1] = nil // release the reference for the recycler
	h = h[:len(h)-1]
	q.over = h
	if len(h) > 0 {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			if l >= len(h) {
				break
			}
			c := l
			if r < len(h) && h[r].before(h[l]) {
				c = r
			}
			if !h[c].before(last) {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = last
	}
	min.next = nil
	return min
}
