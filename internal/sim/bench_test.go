package sim

import "testing"

// benchActor is the allocation-free self-rearming event chain: the
// engine-throughput benchmarks measure pure queue+dispatch cost.
type benchActor struct {
	e         *Engine
	delay     Time
	remaining int
}

func (a *benchActor) Act(int, any) {
	if a.remaining > 0 {
		a.remaining--
		a.e.PostAfter(a.delay, a, 0, nil)
	}
}

func benchEngineThroughput(b *testing.B, kind QueueKind, delay Time) {
	b.ReportAllocs()
	e := NewEngineQueue(kind)
	a := &benchActor{e: e, delay: delay, remaining: b.N}
	e.PostAfter(delay, a, 0, nil)
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineThroughput measures raw event-processing rate, the
// simulator's fundamental cost unit (short-delay events: the ring path).
func BenchmarkEngineThroughput(b *testing.B) { benchEngineThroughput(b, QueueCalendar, 1) }

// BenchmarkEngineThroughputHeap is the same chain on the binary-heap
// fallback engine.
func BenchmarkEngineThroughputHeap(b *testing.B) { benchEngineThroughput(b, QueueHeap, 1) }

// BenchmarkEngineThroughputFar schedules every event beyond the calendar
// window, forcing the overflow-heap path.
func BenchmarkEngineThroughputFar(b *testing.B) {
	benchEngineThroughput(b, QueueCalendar, calWindow+1)
}

// BenchmarkEngineThroughputClosure is the legacy closure-scheduling form
// (one closure allocation per event) — the cost the actor form removes.
func BenchmarkEngineThroughputClosure(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	var fire func()
	remaining := b.N
	fire = func() {
		if remaining > 0 {
			remaining--
			e.After(1, fire)
		}
	}
	e.After(1, fire)
	b.ResetTimer()
	e.Run()
}

func BenchmarkPoolAcquire(b *testing.B) {
	p := NewPool("x", 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Acquire(Time(i), 4)
	}
}

// BenchmarkPoolAcquireSingle is the 1-unit (pipeline-stage) fast path.
func BenchmarkPoolAcquireSingle(b *testing.B) {
	p := NewPool("x", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Acquire(Time(i), 4)
	}
}

// BenchmarkPoolAcquireBatch reserves IU-bank-sized batches — the PE
// compute stage's pattern (one reservation per segment pair at a common
// issue time).
func BenchmarkPoolAcquireBatch(b *testing.B) {
	p := NewPool("x", 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AcquireBatch(Time(i)*8, 4, 32)
	}
}

// BenchmarkPoolAcquireDynamic is the MSHR-style open-ended reservation.
func BenchmarkPoolAcquireDynamic(b *testing.B) {
	p := NewPool("x", 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unit, start := p.AcquireDynamic(Time(i))
		p.ReleaseAt(unit, start+20)
	}
}
