package sim

import "testing"

// BenchmarkEngineThroughput measures raw event-processing rate, the
// simulator's fundamental cost unit.
func BenchmarkEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	var fire func()
	remaining := b.N
	fire = func() {
		if remaining > 0 {
			remaining--
			e.After(1, fire)
		}
	}
	e.After(1, fire)
	b.ResetTimer()
	e.Run()
}

func BenchmarkPoolAcquire(b *testing.B) {
	p := NewPool("x", 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Acquire(Time(i), 4)
	}
}
