package sim

// Pool models a bank of identical functional units (intersection units,
// dividers, DRAM channels, NoC links, pipeline stages). Acquire reserves
// the earliest-available unit for a duration and returns the start time;
// the pool accumulates busy cycles for utilization reporting.
//
// Pools are "busy-until" abstractions: reservations are made greedily in
// call order, which matches an in-order arbiter granting requests as they
// arrive.
type Pool struct {
	name     string
	until    []Time
	busy     Time
	acquires int64
	perturb  Perturber
}

// NewPool creates a pool of n units.
func NewPool(name string, n int) *Pool {
	if n < 1 {
		panic("sim: pool needs at least one unit")
	}
	return &Pool{name: name, until: make([]Time, n)}
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// Size returns the number of units.
func (p *Pool) Size() int { return len(p.until) }

// SetPerturb installs a service-time perturber (nil removes it). Used by
// the chaos harness to inject deterministic latency jitter.
func (p *Pool) SetPerturb(pr Perturber) { p.perturb = pr }

// Acquire reserves one unit for dur cycles starting no earlier than now,
// returning the reservation's start time (start+dur is the completion).
func (p *Pool) Acquire(now Time, dur Time) Time {
	if p.perturb != nil && dur > 0 {
		if d := p.perturb.ServiceTime(p.name, dur); d >= 0 {
			dur = d
		}
	}
	best := 0
	for i := 1; i < len(p.until); i++ {
		if p.until[i] < p.until[best] {
			best = i
		}
	}
	start := p.until[best]
	if start < now {
		start = now
	}
	p.until[best] = start + dur
	p.busy += dur
	p.acquires++
	return start
}

// AcquireDynamic reserves the earliest-available unit starting no earlier
// than now, for a duration the caller does not yet know; the caller must
// finish the reservation with ReleaseAt. Used for MSHR-style resources
// whose hold time depends on a downstream access.
func (p *Pool) AcquireDynamic(now Time) (unit int, start Time) {
	best := 0
	for i := 1; i < len(p.until); i++ {
		if p.until[i] < p.until[best] {
			best = i
		}
	}
	start = p.until[best]
	if start < now {
		start = now
	}
	p.until[best] = start
	p.acquires++
	return best, start
}

// ReleaseAt completes a dynamic reservation: the unit stays busy until t.
func (p *Pool) ReleaseAt(unit int, t Time) {
	if t > p.until[unit] {
		p.busy += t - p.until[unit]
		p.until[unit] = t
	}
}

// InFlightAt reports how many units are still reserved past `now` — the
// instantaneous queue depth a telemetry gauge sees at an epoch boundary.
func (p *Pool) InFlightAt(now Time) int {
	n := 0
	for _, u := range p.until {
		if u > now {
			n++
		}
	}
	return n
}

// NextFree reports the earliest time any unit becomes available.
func (p *Pool) NextFree() Time {
	best := p.until[0]
	for _, u := range p.until[1:] {
		if u < best {
			best = u
		}
	}
	return best
}

// Busy returns the accumulated busy cycles across all units.
func (p *Pool) Busy() Time { return p.busy }

// Acquires reports the total reservations made (hardware-counter export).
func (p *Pool) Acquires() int64 { return p.acquires }

// Utilization returns busy cycles divided by capacity over elapsed cycles.
func (p *Pool) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(p.busy) / (float64(elapsed) * float64(len(p.until)))
}

// Semaphore is a counting resource with an explicit waiter queue, used for
// resources held across an unknown span (execution slots, SPM lines,
// address tokens). Waiters are woken FIFO when capacity frees.
type Semaphore struct {
	name    string
	cap     int
	inUse   int
	waiters []func()

	// occupancy integral for average-utilization reporting
	lastChange   Time
	levelCycles  Time
	peakInUse    int
	acquireCount int64
	// units conservation (acquired - released must equal inUse)
	unitsAcquired int64
	unitsReleased int64
}

// NewSemaphore creates a semaphore with capacity c.
func NewSemaphore(name string, c int) *Semaphore {
	return &Semaphore{name: name, cap: c}
}

// Name returns the semaphore's name.
func (s *Semaphore) Name() string { return s.name }

// Cap returns the capacity.
func (s *Semaphore) Cap() int { return s.cap }

// SetCap adjusts capacity (used by dynamic token tuning); it does not wake
// waiters by itself — callers should invoke Kick via TryAcquire paths.
func (s *Semaphore) SetCap(c int) { s.cap = c }

// InUse reports the currently held units.
func (s *Semaphore) InUse() int { return s.inUse }

// Available reports free units.
func (s *Semaphore) Available() int { return s.cap - s.inUse }

// TryAcquire acquires n units if available, reporting success.
func (s *Semaphore) TryAcquire(now Time, n int) bool {
	if s.inUse+n > s.cap {
		return false
	}
	s.account(now)
	s.inUse += n
	s.acquireCount++
	s.unitsAcquired += int64(n)
	if s.inUse > s.peakInUse {
		s.peakInUse = s.inUse
	}
	return true
}

// AcquireOrWait acquires n units or registers fn to be called (once) when
// any capacity is released. It reports whether the acquisition succeeded
// immediately. Waiters are strictly FIFO: a new request queues behind
// existing waiters even if capacity is currently available, modeling an
// in-order allocation stage (a later small request must not starve an
// earlier large one).
func (s *Semaphore) AcquireOrWait(now Time, n int, fn func()) bool {
	if len(s.waiters) == 0 && s.TryAcquire(now, n) {
		return true
	}
	s.waiters = append(s.waiters, fn)
	return false
}

// Release returns n units and wakes all waiters (they re-attempt their
// acquisition; simpler than precise hand-off and equivalent for a
// single-threaded event loop).
func (s *Semaphore) Release(now Time, n int) {
	s.account(now)
	s.inUse -= n
	s.unitsReleased += int64(n)
	if s.inUse < 0 {
		panic("sim: semaphore over-release: " + s.name)
	}
	if len(s.waiters) > 0 {
		ws := s.waiters
		s.waiters = nil
		for _, w := range ws {
			w()
		}
	}
}

func (s *Semaphore) account(now Time) {
	s.levelCycles += Time(s.inUse) * (now - s.lastChange)
	s.lastChange = now
}

// AvgOccupancy reports the time-averaged units in use through `now`.
func (s *Semaphore) AvgOccupancy(now Time) float64 {
	if now <= 0 {
		return 0
	}
	total := s.levelCycles + Time(s.inUse)*(now-s.lastChange)
	return float64(total) / float64(now)
}

// OccupancyIntegral reports the exact unit-cycle integral through `now`:
// the sum over all holders of (release − acquire) cycles, plus the span
// still held. It is the conservation-law counterpart of AvgOccupancy —
// per-PE slot residency sums must match it to the cycle.
func (s *Semaphore) OccupancyIntegral(now Time) Time {
	return s.levelCycles + Time(s.inUse)*(now-s.lastChange)
}

// UnitsAcquired reports the total units ever granted.
func (s *Semaphore) UnitsAcquired() int64 { return s.unitsAcquired }

// UnitsReleased reports the total units ever returned.
func (s *Semaphore) UnitsReleased() int64 { return s.unitsReleased }

// Peak reports the peak concurrent units held.
func (s *Semaphore) Peak() int { return s.peakInUse }

// Acquires reports the total successful acquisitions.
func (s *Semaphore) Acquires() int64 { return s.acquireCount }

// Waiters reports the queued waiter count (diagnostic).
func (s *Semaphore) Waiters() int { return len(s.waiters) }

// Snap captures the semaphore's state for a diagnostic snapshot.
func (s *Semaphore) Snap() ResourceSnap {
	return ResourceSnap{Name: s.name, Kind: "semaphore", Cap: s.cap, InUse: s.inUse, Waiters: len(s.waiters)}
}
