package sim

import "math/bits"

// Pool models a bank of identical functional units (intersection units,
// dividers, DRAM channels, NoC links, pipeline stages). Acquire reserves
// the earliest-available unit for a duration and returns the start time;
// the pool accumulates busy cycles for utilization reporting.
//
// Pools are "busy-until" abstractions: reservations are made greedily in
// call order, which matches an in-order arbiter granting requests as they
// arrive.
//
// The earliest-free unit is tracked incrementally with a min-heap of
// packed (until << shift | unit) keys, so Acquire on a 24-unit IU bank
// costs O(log n) single-word comparisons instead of rescanning until[]
// — Acquire was the simulator's single hottest function before (20% of
// BenchmarkSimulate). The packed key orders by (until, unit): ties
// break on the lower unit index, exactly matching the old linear scan,
// so reservation order (and therefore every golden timing result) is
// unchanged. Reservations only ever push a unit's horizon forward, so
// re-heapifying is always a sift-down from the updated node.
type Pool struct {
	name string
	// until[id] mirrors the horizon packed into the keys (InFlightAt,
	// ReleaseAt) — keys are authoritative for ordering.
	until []Time
	keys  []int64 // min-heap of until<<shift | unit
	pos   []int32 // pos[id] = index of id's key in keys
	shift uint    // bits.Len(n-1): unit bits in a packed key
	mask  int64   // 1<<shift - 1

	busy     Time
	acquires int64
	perturb  Perturber
}

// NewPool creates a pool of n units.
func NewPool(name string, n int) *Pool {
	if n < 1 {
		panic("sim: pool needs at least one unit")
	}
	p := &Pool{name: name, until: make([]Time, n)}
	p.shift = uint(bits.Len(uint(n - 1)))
	p.mask = 1<<p.shift - 1
	p.keys = make([]int64, n)
	p.pos = make([]int32, n)
	for i := range p.keys {
		// Identity order is a valid heap: all untils are 0 and ties
		// order by unit index.
		p.keys[i] = int64(i)
		p.pos[i] = int32(i)
	}
	return p
}

// siftDown restores the heap below position i after keys[i] increased
// (reservations never decrease a unit's horizon).
func (p *Pool) siftDown(i int32) {
	h := p.keys
	n := int32(len(h))
	k := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && h[r] < h[l] {
			c = r
		}
		if h[c] >= k {
			break
		}
		h[i] = h[c]
		p.pos[h[c]&p.mask] = i
		i = c
	}
	h[i] = k
	p.pos[k&p.mask] = i
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// Size returns the number of units.
func (p *Pool) Size() int { return len(p.until) }

// SetPerturb installs a service-time perturber (nil removes it). Used by
// the chaos harness to inject deterministic latency jitter.
func (p *Pool) SetPerturb(pr Perturber) { p.perturb = pr }

// Acquire reserves one unit for dur cycles starting no earlier than now,
// returning the reservation's start time (start+dur is the completion).
func (p *Pool) Acquire(now Time, dur Time) Time {
	if p.perturb != nil && dur > 0 {
		if d := p.perturb.ServiceTime(p.name, dur); d >= 0 {
			dur = d
		}
	}
	k := p.keys[0]
	best := k & p.mask
	start := Time(k >> p.shift)
	if start < now {
		start = now
	}
	p.until[best] = start + dur
	p.keys[0] = int64(start+dur)<<p.shift | best
	if len(p.keys) > 1 {
		p.siftDown(0)
	}
	p.busy += dur
	p.acquires++
	return start
}

// AcquireBatch makes k identical reservations of dur cycles each
// starting no earlier than now — exactly equivalent to k successive
// Acquire calls — and returns the latest completion time (now when k is
// zero). The PE's divider and IU stages reserve one slot per input line
// / segment pair at a common issue time, so the batch form replaces the
// simulator's hottest per-item loop.
func (p *Pool) AcquireBatch(now Time, dur Time, k int) Time {
	if k <= 0 {
		return now
	}
	if p.perturb != nil {
		// Perturbed durations vary per reservation and must consume the
		// chaos RNG stream one draw per reservation: take the exact
		// per-call path. Starts are non-decreasing (horizons only
		// grow), so the last start is the latest; completions use the
		// nominal duration, as the per-item loop did.
		var start Time
		for i := 0; i < k; i++ {
			start = p.Acquire(now, dur)
		}
		return start + dur
	}
	h := p.keys
	n := int32(len(h))
	if n == 1 {
		// Single unit: k back-to-back reservations.
		start := Time(h[0] >> p.shift)
		if start < now {
			start = now
		}
		end := start + Time(k)*dur
		p.until[0] = end
		h[0] = int64(end) << p.shift
		p.busy += Time(k) * dur
		p.acquires += int64(k)
		return end
	}
	nowKey := int64(now) << p.shift
	var rootKey int64
	for i := 0; i < k; i++ {
		rootKey = h[0]
		if rootKey < nowKey {
			// Unit free before now: starts at now, keeps its index bits.
			rootKey = nowKey | rootKey&p.mask
		}
		rootKey += int64(dur) << p.shift
		// Inlined siftDown(0) without pos maintenance: positions are
		// rebuilt once after the loop.
		key := rootKey
		var j int32
		for {
			l := 2*j + 1
			if l >= n {
				break
			}
			c := l
			if r := l + 1; r < n && h[r] < h[l] {
				c = r
			}
			if h[c] >= key {
				break
			}
			h[j] = h[c]
			j = c
		}
		h[j] = key
	}
	for i, key := range h {
		unit := key & p.mask
		p.until[unit] = Time(key >> p.shift)
		p.pos[unit] = int32(i)
	}
	p.busy += Time(k) * dur
	p.acquires += int64(k)
	// The last reservation starts latest (horizons only grow), so its
	// horizon is the batch's latest completion.
	return Time(rootKey >> p.shift)
}

// AcquireDynamic reserves the earliest-available unit starting no earlier
// than now, for a duration the caller does not yet know; the caller must
// finish the reservation with ReleaseAt. Used for MSHR-style resources
// whose hold time depends on a downstream access.
func (p *Pool) AcquireDynamic(now Time) (unit int, start Time) {
	k := p.keys[0]
	best := k & p.mask
	start = Time(k >> p.shift)
	if start < now {
		start = now
	}
	p.until[best] = start
	p.keys[0] = int64(start)<<p.shift | best
	if len(p.keys) > 1 {
		p.siftDown(0)
	}
	p.acquires++
	return int(best), start
}

// ReleaseAt completes a dynamic reservation: the unit stays busy until t.
func (p *Pool) ReleaseAt(unit int, t Time) {
	if t > p.until[unit] {
		p.busy += t - p.until[unit]
		p.until[unit] = t
		p.keys[p.pos[unit]] = int64(t)<<p.shift | int64(unit)
		if len(p.keys) > 1 {
			p.siftDown(p.pos[unit])
		}
	}
}

// InFlightAt reports how many units are still reserved past `now` — the
// instantaneous queue depth a telemetry gauge sees at an epoch boundary.
func (p *Pool) InFlightAt(now Time) int {
	n := 0
	for _, u := range p.until {
		if u > now {
			n++
		}
	}
	return n
}

// NextFree reports the earliest time any unit becomes available.
func (p *Pool) NextFree() Time {
	return Time(p.keys[0] >> p.shift)
}

// Busy returns the accumulated busy cycles across all units.
func (p *Pool) Busy() Time { return p.busy }

// Acquires reports the total reservations made (hardware-counter export).
func (p *Pool) Acquires() int64 { return p.acquires }

// Utilization returns busy cycles divided by capacity over elapsed cycles.
func (p *Pool) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(p.busy) / (float64(elapsed) * float64(len(p.until)))
}

// Semaphore is a counting resource with an explicit waiter queue, used for
// resources held across an unknown span (execution slots, SPM lines,
// address tokens). Waiters are woken FIFO when capacity frees.
type Semaphore struct {
	name    string
	cap     int
	inUse   int
	waiters []semWaiter

	// occupancy integral for average-utilization reporting
	lastChange   Time
	levelCycles  Time
	peakInUse    int
	acquireCount int64
	// units conservation (acquired - released must equal inUse)
	unitsAcquired int64
	unitsReleased int64
}

// NewSemaphore creates a semaphore with capacity c.
func NewSemaphore(name string, c int) *Semaphore {
	return &Semaphore{name: name, cap: c}
}

// Name returns the semaphore's name.
func (s *Semaphore) Name() string { return s.name }

// Cap returns the capacity.
func (s *Semaphore) Cap() int { return s.cap }

// SetCap adjusts capacity (used by dynamic token tuning); it does not wake
// waiters by itself — callers should invoke Kick via TryAcquire paths.
func (s *Semaphore) SetCap(c int) { s.cap = c }

// InUse reports the currently held units.
func (s *Semaphore) InUse() int { return s.inUse }

// Available reports free units.
func (s *Semaphore) Available() int { return s.cap - s.inUse }

// TryAcquire acquires n units if available, reporting success.
func (s *Semaphore) TryAcquire(now Time, n int) bool {
	if s.inUse+n > s.cap {
		return false
	}
	s.account(now)
	s.inUse += n
	s.acquireCount++
	s.unitsAcquired += int64(n)
	if s.inUse > s.peakInUse {
		s.peakInUse = s.inUse
	}
	return true
}

// semWaiter is one queued wakeup: the legacy closure form or the
// allocation-free actor form (see Engine.Post for the distinction).
type semWaiter struct {
	fn  func()
	act Actor
	op  int
	arg any
}

func (w *semWaiter) wake() {
	if w.fn != nil {
		w.fn()
		return
	}
	w.act.Act(w.op, w.arg)
}

// AcquireOrWait acquires n units or registers fn to be called (once) when
// any capacity is released. It reports whether the acquisition succeeded
// immediately. Waiters are strictly FIFO: a new request queues behind
// existing waiters even if capacity is currently available, modeling an
// in-order allocation stage (a later small request must not starve an
// earlier large one).
func (s *Semaphore) AcquireOrWait(now Time, n int, fn func()) bool {
	if len(s.waiters) == 0 && s.TryAcquire(now, n) {
		return true
	}
	s.waiters = append(s.waiters, semWaiter{fn: fn})
	return false
}

// AcquireOrWaitActor is AcquireOrWait with the non-capturing callback
// form: on a release, a.Act(op, arg) re-attempts the acquisition. The
// wait registration itself allocates nothing beyond the waiter slot.
func (s *Semaphore) AcquireOrWaitActor(now Time, n int, a Actor, op int, arg any) bool {
	if len(s.waiters) == 0 && s.TryAcquire(now, n) {
		return true
	}
	s.waiters = append(s.waiters, semWaiter{act: a, op: op, arg: arg})
	return false
}

// Release returns n units and wakes all waiters (they re-attempt their
// acquisition; simpler than precise hand-off and equivalent for a
// single-threaded event loop).
func (s *Semaphore) Release(now Time, n int) {
	s.account(now)
	s.inUse -= n
	s.unitsReleased += int64(n)
	if s.inUse < 0 {
		panic("sim: semaphore over-release: " + s.name)
	}
	if len(s.waiters) > 0 {
		ws := s.waiters
		s.waiters = nil
		for i := range ws {
			ws[i].wake()
		}
	}
}

func (s *Semaphore) account(now Time) {
	s.levelCycles += Time(s.inUse) * (now - s.lastChange)
	s.lastChange = now
}

// AvgOccupancy reports the time-averaged units in use through `now`.
func (s *Semaphore) AvgOccupancy(now Time) float64 {
	if now <= 0 {
		return 0
	}
	total := s.levelCycles + Time(s.inUse)*(now-s.lastChange)
	return float64(total) / float64(now)
}

// OccupancyIntegral reports the exact unit-cycle integral through `now`:
// the sum over all holders of (release − acquire) cycles, plus the span
// still held. It is the conservation-law counterpart of AvgOccupancy —
// per-PE slot residency sums must match it to the cycle.
func (s *Semaphore) OccupancyIntegral(now Time) Time {
	return s.levelCycles + Time(s.inUse)*(now-s.lastChange)
}

// UnitsAcquired reports the total units ever granted.
func (s *Semaphore) UnitsAcquired() int64 { return s.unitsAcquired }

// UnitsReleased reports the total units ever returned.
func (s *Semaphore) UnitsReleased() int64 { return s.unitsReleased }

// Peak reports the peak concurrent units held.
func (s *Semaphore) Peak() int { return s.peakInUse }

// Acquires reports the total successful acquisitions.
func (s *Semaphore) Acquires() int64 { return s.acquireCount }

// Waiters reports the queued waiter count (diagnostic).
func (s *Semaphore) Waiters() int { return len(s.waiters) }

// Snap captures the semaphore's state for a diagnostic snapshot.
func (s *Semaphore) Snap() ResourceSnap {
	return ResourceSnap{Name: s.name, Kind: "semaphore", Cap: s.cap, InUse: s.inUse, Waiters: len(s.waiters)}
}
