package sim

// WindowStat accumulates a sum/count pair twice: once for the whole run
// and once for the current monitoring window. The PE's locality monitor
// reads the windowed average (e.g. L1 access latency over the last
// window), then rolls the window.
type WindowStat struct {
	TotalSum   int64
	TotalCount int64
	winSum     int64
	winCount   int64
}

// Add records one observation.
func (w *WindowStat) Add(v int64) {
	w.TotalSum += v
	w.TotalCount++
	w.winSum += v
	w.winCount++
}

// AddN records n observations summing to v.
func (w *WindowStat) AddN(v int64, n int64) {
	w.TotalSum += v
	w.TotalCount += n
	w.winSum += v
	w.winCount += n
}

// Avg returns the all-time average.
func (w *WindowStat) Avg() float64 {
	if w.TotalCount == 0 {
		return 0
	}
	return float64(w.TotalSum) / float64(w.TotalCount)
}

// WindowAvg returns the current window's average; ok is false when the
// window has no samples.
func (w *WindowStat) WindowAvg() (avg float64, ok bool) {
	if w.winCount == 0 {
		return 0, false
	}
	return float64(w.winSum) / float64(w.winCount), true
}

// WindowCount returns the sample count in the current window.
func (w *WindowStat) WindowCount() int64 { return w.winCount }

// Roll clears the window accumulators.
func (w *WindowStat) Roll() { w.winSum, w.winCount = 0, 0 }

// Counter is a monotonically increasing event counter with a window view.
type Counter struct {
	Total int64
	win   int64
}

// Inc adds n.
func (c *Counter) Inc(n int64) { c.Total += n; c.win += n }

// Window returns the count accumulated since the last Roll.
func (c *Counter) Window() int64 { return c.win }

// Roll clears the window accumulator.
func (c *Counter) Roll() { c.win = 0 }

// Ratio is a convenience for hit-rate style metrics.
func Ratio(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}
