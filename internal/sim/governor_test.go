package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// chain schedules a self-rescheduling event advancing one cycle per hop,
// n hops total.
func chain(e *Engine, n int) {
	var hop func()
	remaining := n
	hop = func() {
		if remaining--; remaining > 0 {
			e.After(1, hop)
		}
	}
	e.After(1, hop)
}

func TestRunGovernedDrains(t *testing.T) {
	e := NewEngine()
	chain(e, 100)
	if err := e.RunGoverned(context.Background(), Budget{}); err != nil {
		t.Fatalf("unbudgeted run errored: %v", err)
	}
	if e.Pending() != 0 || e.Now() != 100 {
		t.Fatalf("engine state after drain: pending=%d now=%d", e.Pending(), e.Now())
	}
}

func TestRunGovernedCancellation(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	const poll = 64
	fired := 0
	var hop func()
	hop = func() {
		fired++
		if fired == poll { // cancel mid-run, strictly before the next checkpoint
			cancel()
		}
		e.After(1, hop)
	}
	e.After(1, hop)
	err := e.RunGoverned(ctx, Budget{PollEvents: poll})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// The cancellation must be observed within one poll interval.
	if fired > 2*poll {
		t.Fatalf("run processed %d events after cancel at %d; poll interval %d not honored", fired, poll, poll)
	}
}

func TestRunGovernedPreCancelled(t *testing.T) {
	e := NewEngine()
	e.After(1, func() { t.Fatal("event ran despite pre-cancelled context") })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunGoverned(ctx, Budget{}); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestRunGovernedEventBudget(t *testing.T) {
	e := NewEngine()
	chain(e, 1000)
	err := e.RunGoverned(context.Background(), Budget{MaxEvents: 10})
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
	if e.Now() != 10 {
		t.Fatalf("stopped at cycle %d, want 10", e.Now())
	}
	// The budget is per-call, not cumulative: a fresh call gets a fresh
	// allowance.
	err = e.RunGoverned(context.Background(), Budget{MaxEvents: 10})
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("second call err = %v, want ErrEventBudget", err)
	}
	if e.Now() != 20 {
		t.Fatalf("second call stopped at cycle %d, want 20", e.Now())
	}
}

func TestRunGovernedExactBudgetDrain(t *testing.T) {
	// Exactly MaxEvents events in the queue: the run drains cleanly.
	e := NewEngine()
	chain(e, 10)
	if err := e.RunGoverned(context.Background(), Budget{MaxEvents: 10}); err != nil {
		t.Fatalf("exact-budget drain errored: %v", err)
	}
}

func TestRunGovernedDeadline(t *testing.T) {
	e := NewEngine()
	chain(e, 1000)
	err := e.RunGoverned(context.Background(), Budget{Deadline: 50})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("deadline error text %q must mention the deadline", err)
	}
	if e.Now() != 50 {
		t.Fatalf("stopped at cycle %d, want 50", e.Now())
	}
}

func TestRunGovernedWallBudget(t *testing.T) {
	e := NewEngine()
	var hop func()
	hop = func() {
		time.Sleep(100 * time.Microsecond)
		e.After(1, hop)
	}
	e.After(1, hop)
	err := e.RunGoverned(context.Background(), Budget{MaxWall: 5 * time.Millisecond, PollEvents: 8})
	if !errors.Is(err, ErrWallBudget) {
		t.Fatalf("err = %v, want ErrWallBudget", err)
	}
}

func TestRunGovernedNoProgress(t *testing.T) {
	e := NewEngine()
	var spin func()
	spin = func() { e.After(0, spin) } // zero-delay livelock
	e.After(1, spin)
	err := e.RunGoverned(context.Background(), Budget{MaxStall: 100})
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
}

func TestSnapshotAndBlocked(t *testing.T) {
	e := NewEngine()
	e.After(5, func() {})
	snap := e.Snapshot()
	if snap.Now != 0 || snap.PendingEvents != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	s := NewSemaphore("slots", 2)
	if !s.TryAcquire(0, 2) {
		t.Fatal("acquire failed")
	}
	s.AcquireOrWait(0, 1, func() {})
	snap.Resources = append(snap.Resources, s.Snap())
	blocked := snap.Blocked()
	if len(blocked) != 1 || blocked[0].Name != "slots" || blocked[0].Waiters != 1 {
		t.Fatalf("blocked = %+v", blocked)
	}
	if got := snap.String(); !strings.Contains(got, "slots") || !strings.Contains(got, "waiter") {
		t.Fatalf("snapshot rendering missing resource detail:\n%s", got)
	}
}

func TestErrorRendering(t *testing.T) {
	snap := &Snapshot{Now: 42, PendingEvents: 0, Resources: []ResourceSnap{
		{Name: "spm", Kind: "semaphore", Cap: 4, InUse: 4, Waiters: 3},
	}}
	ie := &InvariantError{Op: "accel: run", PanicValue: "token over-release", Stack: "goroutine 1 ...", Snapshot: snap}
	if !strings.Contains(ie.Error(), "invariant violation") || !strings.Contains(ie.Error(), "token over-release") {
		t.Fatalf("InvariantError.Error() = %q", ie.Error())
	}
	if d := ie.Details(); !strings.Contains(d, "spm") || !strings.Contains(d, "stack:") {
		t.Fatalf("InvariantError.Details() missing snapshot/stack:\n%s", d)
	}
	de := &DeadlockError{Op: "accel: run", Snapshot: snap}
	if msg := de.Error(); !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "spm") {
		t.Fatalf("DeadlockError.Error() = %q", msg)
	}
}

type doublePerturb struct{ calls int }

func (d *doublePerturb) ServiceTime(pool string, dur Time) Time {
	d.calls++
	return dur * 2
}

func TestPoolPerturb(t *testing.T) {
	p := NewPool("iu", 1)
	pr := &doublePerturb{}
	p.SetPerturb(pr)
	start := p.Acquire(0, 10)
	if start != 0 {
		t.Fatalf("start = %d", start)
	}
	if free := p.NextFree(); free != 20 {
		t.Fatalf("perturbed reservation ends at %d, want 20", free)
	}
	if pr.calls != 1 {
		t.Fatalf("perturber called %d times, want 1", pr.calls)
	}
	p.SetPerturb(nil)
	p.Acquire(20, 10)
	if free := p.NextFree(); free != 30 {
		t.Fatalf("unperturbed reservation ends at %d, want 30", free)
	}
}
