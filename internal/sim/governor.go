package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"
)

// The governed-run stop conditions. Errors returned by RunGoverned wrap
// one of these sentinels, so callers can classify failures with
// errors.Is regardless of the diagnostic detail attached.
var (
	// ErrCancelled reports a context cancellation observed at a
	// cooperative checkpoint.
	ErrCancelled = errors.New("sim: run cancelled")
	// ErrEventBudget reports that the event-count budget was exhausted
	// before the queue drained.
	ErrEventBudget = errors.New("sim: event budget exhausted")
	// ErrDeadline reports that pending events lie beyond the
	// simulated-time deadline.
	ErrDeadline = errors.New("sim: simulated-time deadline exceeded")
	// ErrWallBudget reports that the real-time budget was exhausted.
	ErrWallBudget = errors.New("sim: wall-clock budget exhausted")
	// ErrNoProgress reports a zero-latency event livelock: the engine
	// processed many events without simulated time advancing.
	ErrNoProgress = errors.New("sim: no progress (simulated time stuck)")
)

// Watchdog defaults.
const (
	// DefaultPollEvents is the number of events between cooperative
	// context / wall-clock checks when Budget.PollEvents is zero.
	DefaultPollEvents = 4096
	// DefaultMaxStall is the number of consecutive events at one
	// simulated timestamp tolerated before declaring a livelock when
	// Budget.MaxStall is zero. Legitimate same-cycle bursts are a few
	// events per in-flight task; millions indicate a self-feeding
	// zero-delay loop.
	DefaultMaxStall = 4 << 20
)

// Budget bounds a governed engine run. Zero values mean "unbounded"
// (except PollEvents and MaxStall, which fall back to the defaults).
type Budget struct {
	// MaxEvents bounds the events processed by this call.
	MaxEvents int64
	// Deadline bounds simulated time: events scheduled past it are not
	// executed and the run fails with ErrDeadline.
	Deadline Time
	// MaxWall bounds real elapsed time, checked every PollEvents events.
	MaxWall time.Duration
	// PollEvents is the cooperative-checkpoint interval in events.
	PollEvents int64
	// MaxStall bounds events processed without simulated-time progress.
	MaxStall int64
}

// RunGoverned executes events until the queue drains, a budget trips, or
// ctx is cancelled. It is the cooperative-cancellation core of the run
// governor: the context and wall clock are polled every PollEvents
// events, so a cancelled context stops the run within one poll interval.
// The engine is left in a consistent state on every return — callers may
// snapshot it for diagnostics.
func (e *Engine) RunGoverned(ctx context.Context, b Budget) error {
	poll := b.PollEvents
	if poll <= 0 {
		poll = DefaultPollEvents
	}
	maxStall := b.MaxStall
	if maxStall <= 0 {
		maxStall = DefaultMaxStall
	}
	var wallDeadline time.Time
	if b.MaxWall > 0 {
		wallDeadline = time.Now().Add(b.MaxWall)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w (%v)", ErrCancelled, err)
	}
	var processed, sincePoll, stalled int64
	lastNow := e.now
	for {
		next := e.q.peek()
		if next == nil {
			break
		}
		if b.Deadline > 0 && next.at > b.Deadline {
			return fmt.Errorf("%w: next event at cycle %d, deadline %d (%d events pending)",
				ErrDeadline, next.at, b.Deadline, e.q.len())
		}
		e.Step()
		processed++
		if e.now != lastNow {
			lastNow = e.now
			stalled = 0
		} else if stalled++; stalled > maxStall {
			return fmt.Errorf("%w: %d events at cycle %d without time advancing",
				ErrNoProgress, stalled, e.now)
		}
		if b.MaxEvents > 0 && processed >= b.MaxEvents && e.q.len() > 0 {
			return fmt.Errorf("%w: %d events processed, %d still pending at cycle %d",
				ErrEventBudget, processed, e.q.len(), e.now)
		}
		if sincePoll++; sincePoll >= poll {
			sincePoll = 0
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w at cycle %d after %d events (%v)", ErrCancelled, e.now, processed, err)
			}
			if b.MaxWall > 0 && time.Now().After(wallDeadline) {
				return fmt.Errorf("%w: %v elapsed at cycle %d after %d events",
					ErrWallBudget, b.MaxWall, e.now, processed)
			}
		}
	}
	return nil
}

// ResourceSnap is the state of one contended resource at snapshot time.
type ResourceSnap struct {
	Name    string
	Kind    string // "semaphore" | "pool"
	Cap     int
	InUse   int
	Waiters int
}

func (r ResourceSnap) String() string {
	s := fmt.Sprintf("%s %s: %d/%d in use", r.Kind, r.Name, r.InUse, r.Cap)
	if r.Waiters > 0 {
		s += fmt.Sprintf(", %d waiter(s)", r.Waiters)
	}
	return s
}

// Snapshot is a diagnostic capture of a simulation's state: engine
// progress, resource occupancy with waiter queues, and free-form
// per-component notes (per-PE FSM state, token occupancy). It is
// attached to InvariantError and DeadlockError so a failed run can be
// diagnosed post mortem without re-running it.
type Snapshot struct {
	Now             Time
	PendingEvents   int
	ProcessedEvents int64
	Resources       []ResourceSnap
	Notes           []string
}

// String renders the snapshot as an indented multi-line report.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: cycle=%d pending=%d processed=%d\n", s.Now, s.PendingEvents, s.ProcessedEvents)
	for _, r := range s.Resources {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	for _, n := range s.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// Blocked lists the resources that hold waiters — the "which semaphores
// hold which waiters" view of a deadlock report.
func (s *Snapshot) Blocked() []ResourceSnap {
	var out []ResourceSnap
	for _, r := range s.Resources {
		if r.Waiters > 0 {
			out = append(out, r)
		}
	}
	return out
}

// Snapshot captures the engine's progress counters. Callers append
// resource states and notes for their own components.
func (e *Engine) Snapshot() *Snapshot {
	return &Snapshot{Now: e.now, PendingEvents: e.q.len(), ProcessedEvents: e.Processed}
}

// InvariantError converts an internal invariant panic, recovered at a
// public boundary (Simulate/Count/bench cell), into a typed error
// carrying the diagnostic snapshot taken at recovery time. The grid
// harness records it for the failed cell and keeps going.
type InvariantError struct {
	// Op names the boundary that contained the panic.
	Op string
	// PanicValue is the recovered value.
	PanicValue interface{}
	// Stack is the goroutine stack at recovery time.
	Stack string
	// Snapshot is the engine/resource state, when one existed.
	Snapshot *Snapshot
}

// Error renders a one-line summary (diagnostics via Details).
func (e *InvariantError) Error() string {
	return fmt.Sprintf("%s: invariant violation: %v", e.Op, e.PanicValue)
}

// Details renders the full multi-line diagnostic report.
func (e *InvariantError) Details() string {
	var b strings.Builder
	b.WriteString(e.Error())
	b.WriteByte('\n')
	if e.Snapshot != nil {
		b.WriteString(e.Snapshot.String())
	}
	if e.Stack != "" {
		b.WriteString("stack:\n")
		b.WriteString(e.Stack)
	}
	return b.String()
}

// DeadlockError reports a drained event queue with work still
// outstanding: a scheduling deadlock. The snapshot records which
// semaphores hold which waiters and each PE's state, making the cause
// (lost wakeup, token leak, starved waiter queue) readable directly
// from the error.
type DeadlockError struct {
	Op       string
	Snapshot *Snapshot
}

// Error summarizes the deadlock with its blocked resources inline.
func (e *DeadlockError) Error() string {
	msg := fmt.Sprintf("%s: deadlock: event queue drained with work outstanding", e.Op)
	if e.Snapshot != nil {
		if blocked := e.Snapshot.Blocked(); len(blocked) > 0 {
			parts := make([]string, len(blocked))
			for i, r := range blocked {
				parts[i] = r.String()
			}
			msg += " [" + strings.Join(parts, "; ") + "]"
		}
	}
	return msg
}

// Details renders the full diagnostic report.
func (e *DeadlockError) Details() string {
	if e.Snapshot == nil {
		return e.Error()
	}
	return e.Error() + "\n" + e.Snapshot.String()
}

// Perturber adjusts pool service times — the fault-injection hook used
// by internal/chaos to jitter FU/DRAM/NoC latencies. Implementations
// must be deterministic for a fixed seed and are called only from the
// (single-threaded) event loop that owns the pool.
type Perturber interface {
	// ServiceTime maps a nominal reservation duration to the perturbed
	// one; returning a negative value leaves the duration unchanged.
	ServiceTime(pool string, dur Time) Time
}
