// Package sim provides the discrete-event simulation core: an event
// engine with a deterministic total order, resource pools with busy-until
// semantics and utilization accounting, counting semaphores with waiter
// queues, and windowed monitors.
//
// The accelerator model is event-driven rather than cycle-ticked: a task's
// pipeline phases are scheduled as timed events, and contended resources
// (intersection units, execution slots, DRAM channels, NoC links) are
// modeled as pools whose Acquire returns the earliest start time. This
// keeps whole-evaluation-grid simulations tractable while preserving the
// contention behaviour the paper's results depend on.
package sim

import "container/heap"

// Time is a cycle count.
type Time = int64

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator. Events scheduled for
// the same time run in scheduling order.
type Engine struct {
	pq  eventHeap
	now Time
	seq int64
	// Processed counts executed events (a cheap progress/cost metric).
	Processed int64
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// modeling bug; it panics to surface the error immediately.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step runs the earliest pending event. It reports false when no events
// remain.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	e.Processed++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ deadline; returns false if the
// event queue drained first.
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.pq) > 0 && e.pq[0].at <= deadline {
		e.Step()
	}
	return len(e.pq) > 0
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }
