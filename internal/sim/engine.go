// Package sim provides the discrete-event simulation core: an event
// engine with a deterministic total order, resource pools with busy-until
// semantics and utilization accounting, counting semaphores with waiter
// queues, and windowed monitors.
//
// The accelerator model is event-driven rather than cycle-ticked: a task's
// pipeline phases are scheduled as timed events, and contended resources
// (intersection units, execution slots, DRAM channels, NoC links) are
// modeled as pools whose Acquire returns the earliest start time. This
// keeps whole-evaluation-grid simulations tractable while preserving the
// contention behaviour the paper's results depend on.
//
// # Event engine internals
//
// Events are intrusive, free-listed nodes owned by the engine: scheduling
// allocates from an engine-local freelist (refilled in blocks) and every
// executed event is recycled, so steady-state simulation schedules with
// zero heap allocations. Two callback forms exist: the legacy func()
// form (whose closure the *caller* allocates) and the non-capturing
// Actor form — a receiver interface plus an integer op code and a
// pointer-sized argument — which allocates nothing at the call site.
//
// Two queue disciplines implement the same deterministic total order,
// (time, sequence): a hierarchical calendar queue (default; O(1) for the
// short-delay events that dominate simulation) and a binary heap kept as
// an escape hatch and differential-testing foil. See calendar.go for the
// structure and the determinism argument.
package sim

import (
	"fmt"
	"os"
	"sync"
)

// Time is a cycle count.
type Time = int64

// Actor is the non-capturing event callback: the engine invokes
// Act(op, arg) when the event fires. A component implements one Act
// method and dispatches on its own op codes; arg carries an optional
// pointer payload (storing a pointer in an interface does not allocate,
// so actor events are allocation-free end to end, unlike closures).
type Actor interface {
	Act(op int, arg any)
}

// event is one scheduled callback. Nodes are engine-owned and recycled
// through a freelist; next links either a calendar-bucket FIFO chain or
// the freelist.
type event struct {
	at   Time
	seq  int64
	next *event

	// Exactly one callback form is set: fn, or act (+op/arg).
	fn  func()
	act Actor
	op  int
	arg any
}

// before reports whether e precedes o in the deterministic total order.
func (e *event) before(o *event) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// eventQueue is the priority-queue contract shared by the calendar and
// heap disciplines: pop/peek return the (at, seq)-minimal event.
type eventQueue interface {
	push(*event)
	pop() *event  // nil when empty
	peek() *event // nil when empty; must be O(1) amortized
	len() int
}

// QueueKind selects the event-queue discipline.
type QueueKind int

const (
	// QueueCalendar is the hierarchical calendar queue (default).
	QueueCalendar QueueKind = iota
	// QueueHeap is the binary-heap fallback.
	QueueHeap
)

// String names the kind the way ParseQueueKind accepts it.
func (k QueueKind) String() string {
	if k == QueueHeap {
		return "heap"
	}
	return "calendar"
}

// ParseQueueKind maps the -queue flag / Config.EventQueue spelling to a
// QueueKind. The empty string selects the process default: calendar,
// unless the SHOGUN_EVENT_QUEUE environment variable overrides it (the
// hook CI uses to force every test through one discipline).
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "":
		return defaultQueueKind(), nil
	case "calendar":
		return QueueCalendar, nil
	case "heap":
		return QueueHeap, nil
	}
	return QueueCalendar, fmt.Errorf("sim: unknown event queue %q (want heap or calendar)", s)
}

var defaultQueueKind = sync.OnceValue(func() QueueKind {
	if os.Getenv("SHOGUN_EVENT_QUEUE") == "heap" {
		return QueueHeap
	}
	return QueueCalendar
})

// Engine is a deterministic discrete-event simulator. Events scheduled
// for the same time run in scheduling order, regardless of the queue
// discipline in use.
type Engine struct {
	q    eventQueue
	kind QueueKind
	now  Time
	seq  int64
	// Processed counts executed events (a cheap progress/cost metric).
	Processed int64

	// Event-node freelist: recycled nodes first, then a bump-pointer
	// block so cold starts allocate in batches rather than per event.
	free  *event
	block []event
}

// NewEngine returns an engine at time 0 using the default queue
// discipline (calendar, unless SHOGUN_EVENT_QUEUE=heap).
func NewEngine() *Engine { return NewEngineQueue(defaultQueueKind()) }

// NewEngineQueue returns an engine at time 0 using the given queue
// discipline.
func NewEngineQueue(kind QueueKind) *Engine {
	e := &Engine{kind: kind}
	if kind == QueueHeap {
		e.q = &heapQueue{}
	} else {
		e.q = newCalendarQueue()
	}
	return e
}

// Queue reports the engine's queue discipline.
func (e *Engine) Queue() QueueKind { return e.kind }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

const eventBlock = 256

func (e *Engine) alloc(t Time) *event {
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
	} else {
		if len(e.block) == 0 {
			e.block = make([]event, eventBlock)
		}
		ev = &e.block[0]
		e.block = e.block[1:]
	}
	e.seq++
	ev.at = t
	ev.seq = e.seq
	return ev
}

func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.act = nil
	ev.arg = nil
	ev.next = e.free
	e.free = ev
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// modeling bug; it panics to surface the error immediately. Prefer Post
// on hot paths: fn is almost always a closure the caller allocates.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	ev := e.alloc(t)
	ev.fn = fn
	e.q.push(ev)
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Post schedules a.Act(op, arg) to run at absolute time t — the
// allocation-free counterpart of At. Scheduling in the past panics.
func (e *Engine) Post(t Time, a Actor, op int, arg any) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	ev := e.alloc(t)
	ev.act = a
	ev.op = op
	ev.arg = arg
	e.q.push(ev)
}

// PostAfter schedules a.Act(op, arg) to run d cycles from now.
func (e *Engine) PostAfter(d Time, a Actor, op int, arg any) {
	e.Post(e.now+d, a, op, arg)
}

// Step runs the earliest pending event. It reports false when no events
// remain.
func (e *Engine) Step() bool {
	ev := e.q.pop()
	if ev == nil {
		return false
	}
	e.now = ev.at
	e.Processed++
	// Copy the callback out and recycle before running: the handler may
	// schedule new events, which then reuse the hot node immediately.
	fn, act, op, arg := ev.fn, ev.act, ev.op, ev.arg
	e.recycle(ev)
	if fn != nil {
		fn()
	} else {
		act.Act(op, arg)
	}
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ deadline; returns false if the
// event queue drained first.
func (e *Engine) RunUntil(deadline Time) bool {
	for {
		ev := e.q.peek()
		if ev == nil {
			return false
		}
		if ev.at > deadline {
			return true
		}
		e.Step()
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.q.len() }

// NextAt reports the earliest pending event time; ok is false when the
// queue is empty.
func (e *Engine) NextAt() (t Time, ok bool) {
	ev := e.q.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}
