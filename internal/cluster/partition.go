// Package cluster models a multi-chip Shogun system: N accelerator
// chips driven by one shared discrete-event engine, a static graph
// partitioner that assigns root vertices to chips, an inter-chip
// interconnect modeled as a second NoC level, and chip-level task-tree
// splitting with work stealing (an overloaded chip exports a carved
// depth-1 subtree; an idle chip adopts it over the interconnect, paying
// transfer latency).
//
// The design follows G²Miner's multi-device recipe: the graph itself is
// replicated on every chip (each chip's memory system holds the full
// CSR), while the *work* — the root-vertex space — is partitioned. All
// chips share one deterministic clock (UpDown's event-driven-at-scale
// model), so a cluster run is exactly as reproducible as a single-chip
// run: a 1-chip cluster in replicated mode is bit-identical to the
// single-chip engine, a property the differential suite pins.
package cluster

import (
	"fmt"

	"shogun/internal/graph"
)

// Mode names a static partitioning strategy.
type Mode string

const (
	// ModeReplicate is the baseline: the root space is dealt to chips in
	// chunked round-robin order, the same pattern the single-chip system
	// scheduler uses across PEs. One chip in this mode reproduces the
	// single-chip engine bit-exactly.
	ModeReplicate Mode = "replicate"
	// ModeHash assigns each vertex to hash(v, seed) mod chips.
	ModeHash Mode = "hash"
	// ModeRange assigns contiguous, evenly sized vertex ranges to chips
	// (the seed is ignored: ranges are fully determined by V and N).
	ModeRange Mode = "range"
)

// ParseMode maps the -partition flag spelling to a Mode; the empty
// string selects the replicate baseline.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "":
		return ModeReplicate, nil
	case ModeReplicate, ModeHash, ModeRange:
		return Mode(s), nil
	}
	return ModeReplicate, fmt.Errorf("cluster: unknown partition mode %q (want replicate, hash or range)", s)
}

// Partition is a static assignment of every vertex to exactly one chip,
// with the cut bookkeeping quality metrics and tests read.
type Partition struct {
	Mode  Mode
	Chips int
	Seed  int64

	// Owner maps each vertex to its chip.
	Owner []int
	// Roots lists each chip's owned vertices in ascending order — the
	// root set its system scheduler deals to PEs.
	Roots [][]graph.VertexID
	// CutEdges counts undirected edges whose endpoints live on different
	// chips.
	CutEdges int64
	// ExtDeg[i] counts adjacency entries of chip i's vertices whose far
	// endpoint is remote; Σ ExtDeg == 2 × CutEdges.
	ExtDeg []int64
	// IntDeg[i] counts chip-internal adjacency entries; Σ (IntDeg +
	// ExtDeg) equals the graph's total degree (2 × edges).
	IntDeg []int64
}

// rootChunk mirrors the single-chip system scheduler's chunked
// round-robin dispatch granularity (accel root assignment).
const rootChunk = 8

// splitmix64 is the avalanche mixer of Vigna's SplitMix64 — a cheap,
// seedable, well-distributed vertex hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewPartition statically assigns g's vertices to chips. Every vertex is
// assigned exactly once, and no chip is left empty unless the graph has
// fewer vertices than chips (hash assignments are rebalanced
// deterministically when chance empties a chip).
func NewPartition(g *graph.Graph, mode Mode, chips int, seed int64) (*Partition, error) {
	if chips < 1 {
		return nil, fmt.Errorf("cluster: need at least one chip, got %d", chips)
	}
	n := g.NumVertices()
	p := &Partition{
		Mode:   mode,
		Chips:  chips,
		Seed:   seed,
		Owner:  make([]int, n),
		Roots:  make([][]graph.VertexID, chips),
		ExtDeg: make([]int64, chips),
		IntDeg: make([]int64, chips),
	}
	switch mode {
	case ModeReplicate:
		// Chunked round-robin, the single-chip dispatch pattern one level
		// up. The chunk shrinks to 1 when 8-vertex chunks would leave a
		// chip empty (small graph, many chips).
		chunk := rootChunk
		if (n+rootChunk-1)/rootChunk < chips {
			chunk = 1
		}
		for v := 0; v < n; v++ {
			p.Owner[v] = (v / chunk) % chips
		}
	case ModeHash:
		for v := 0; v < n; v++ {
			p.Owner[v] = int(splitmix64(uint64(v)^uint64(seed)) % uint64(chips))
		}
		p.rebalanceEmpty(n)
	case ModeRange:
		for v := 0; v < n; v++ {
			p.Owner[v] = int(int64(v) * int64(chips) / int64(n))
		}
	default:
		return nil, fmt.Errorf("cluster: unknown partition mode %q", mode)
	}
	for v := 0; v < n; v++ {
		c := p.Owner[v]
		p.Roots[c] = append(p.Roots[c], graph.VertexID(v))
	}
	for v := 0; v < n; v++ {
		c := p.Owner[v]
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if p.Owner[u] == c {
				p.IntDeg[c]++
			} else {
				p.ExtDeg[c]++
				if graph.VertexID(v) < u {
					p.CutEdges++
				}
			}
		}
	}
	return p, nil
}

// rebalanceEmpty deterministically fixes hash partitions that left a
// chip empty (possible by chance on small graphs): the lowest-id empty
// chip steals the highest-id vertex from the most-loaded chip, repeated
// until no chip is empty or vertices run out.
func (p *Partition) rebalanceEmpty(n int) {
	if n < p.Chips {
		return
	}
	count := make([]int, p.Chips)
	for _, c := range p.Owner {
		count[c]++
	}
	for {
		empty := -1
		for c := 0; c < p.Chips; c++ {
			if count[c] == 0 {
				empty = c
				break
			}
		}
		if empty < 0 {
			return
		}
		donor, most := -1, 1
		for c := 0; c < p.Chips; c++ {
			if count[c] > most {
				donor, most = c, count[c]
			}
		}
		for v := n - 1; v >= 0; v-- {
			if p.Owner[v] == donor {
				p.Owner[v] = empty
				count[donor]--
				count[empty]++
				break
			}
		}
	}
}

// Validate checks the partition's structural invariants against its
// graph: complete single assignment, consistent cut bookkeeping
// (Σ ExtDeg == 2 × CutEdges, Σ (IntDeg + ExtDeg) == total degree), and
// no empty chip unless V < N. The fuzz harness drives it with random
// graphs and configs.
func (p *Partition) Validate(g *graph.Graph) error {
	n := g.NumVertices()
	if len(p.Owner) != n {
		return fmt.Errorf("cluster: partition covers %d of %d vertices", len(p.Owner), n)
	}
	var assigned int
	for c, roots := range p.Roots {
		if len(roots) == 0 && n >= p.Chips {
			return fmt.Errorf("cluster: chip %d owns no vertices (V=%d, N=%d)", c, n, p.Chips)
		}
		for _, v := range roots {
			if int(v) >= n || p.Owner[v] != c {
				return fmt.Errorf("cluster: chip %d root list disagrees with Owner[%d]=%d", c, v, p.Owner[v])
			}
		}
		assigned += len(roots)
	}
	if assigned != n {
		return fmt.Errorf("cluster: root lists cover %d of %d vertices", assigned, n)
	}
	var ext, int_ int64
	for c := 0; c < p.Chips; c++ {
		ext += p.ExtDeg[c]
		int_ += p.IntDeg[c]
	}
	if ext != 2*p.CutEdges {
		return fmt.Errorf("cluster: Σ external degree %d != 2×cut edges %d", ext, 2*p.CutEdges)
	}
	if total := 2 * g.NumEdges(); ext+int_ != total {
		return fmt.Errorf("cluster: degree sum %d != graph total degree %d", ext+int_, total)
	}
	return nil
}

// String summarizes the partition quality.
func (p *Partition) String() string {
	min, max := -1, 0
	for _, r := range p.Roots {
		if min < 0 || len(r) < min {
			min = len(r)
		}
		if len(r) > max {
			max = len(r)
		}
	}
	return fmt.Sprintf("%s over %d chips: %d..%d vertices/chip, %d cut edges", p.Mode, p.Chips, min, max, p.CutEdges)
}
