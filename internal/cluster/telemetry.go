package cluster

import (
	"fmt"
	"strings"

	"shogun/internal/telemetry"
)

// timeSeries derives the cluster-scope epoch series from the per-chip
// samplers: each chip's per-PE resident columns sum into one
// "chip{i}/resident" column (so TimeSeries.Imbalance("/resident") reads
// chip-level balance), alongside a "chip{i}/tasks" cumulative-executed
// column. Derivation is post-hoc — it adds no engine events, which is
// what keeps a 1-chip cluster bit-identical to the single-chip engine.
//
// The per-chip epoch grids stay aligned because every chip samples on
// the same shared clock with the same interval/capacity and, at chips
// > 1, KeepSampling holds every sampler live until the whole cluster
// drains. Decimation therefore triggers at the same epoch on every
// chip; a defensive truncation to the shortest grid guards the
// remainder.
func (c *Cluster) timeSeries() *telemetry.TimeSeries {
	type chipCols struct {
		resident []int64
		tasks    []int64
	}
	var (
		out  *telemetry.TimeSeries
		cols []chipCols
	)
	for _, chip := range c.chips {
		tel := chip.Telemetry()
		if tel == nil {
			return nil // sampling off (uniform config)
		}
		ts := tel.Sampler.Snapshot()
		if out == nil {
			out = &telemetry.TimeSeries{Interval: ts.Interval, Cycles: ts.Cycles}
		} else if len(ts.Cycles) < len(out.Cycles) {
			out.Cycles = out.Cycles[:len(ts.Cycles)]
		}
		cc := chipCols{tasks: ts.Col("tasks/executed")}
		for _, s := range ts.Series {
			if strings.HasSuffix(s.Name, "/resident") {
				if cc.resident == nil {
					cc.resident = make([]int64, len(s.Vals))
				}
				for i, v := range s.Vals {
					if i < len(cc.resident) {
						cc.resident[i] += v
					}
				}
			}
		}
		cols = append(cols, cc)
	}
	if out == nil {
		return nil
	}
	n := len(out.Cycles)
	clip := func(v []int64) []int64 {
		if len(v) > n {
			return v[:n]
		}
		return v
	}
	for i, cc := range cols {
		out.Series = append(out.Series,
			telemetry.Series{Name: fmt.Sprintf("chip%d/resident", i), Vals: clip(cc.resident)},
			telemetry.Series{Name: fmt.Sprintf("chip%d/tasks", i), Vals: clip(cc.tasks)})
	}
	return out
}
