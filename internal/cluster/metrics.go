package cluster

import (
	"fmt"

	"shogun/internal/metrics"
)

// Metrics snapshots the cluster-scope counters into a metrics.Registry
// and declares the cross-chip conservation identities: every subtree
// migrated out of a chip was adopted by another, the interconnect moved
// exactly the lines carved, nothing is left in flight, and the global
// task totals equal the per-chip sums measured through an independent
// counter path. Each chip's own registry (~60 identities) nests under a
// chip{i}/ prefix, so one Verify pass covers the whole machine.
func (c *Cluster) Metrics() *metrics.Registry {
	reg := metrics.NewRegistry()

	var migOut, migIn int64
	var wlExec, wlAdopted int64       // per-chip workload-counter path
	var peTasks, peEmb, peLeaf int64  // per-chip PE-counter path
	var splitsLocal, splitsRecv int64 // §4.1 deliveries vs tree receipts
	for i, chip := range c.chips {
		migOut += chip.MigratedOut.Total
		migIn += chip.MigratedIn.Total
		sub := chip.Metrics()
		prefix := fmt.Sprintf("chip%d/", i)
		for _, f := range sub.Families() {
			reg.Adopt(prefix+f.Name, f)
		}
		val := func(path string) int64 {
			v, _ := sub.Value(path)
			return v
		}
		wlExec += val("tasks/executed")
		wlAdopted += val("tasks/adopted-splits")
		splitsLocal += val("splitmerge/splits-delivered")
		splitsRecv += val("splitmerge/splits-received")
		r := chip.Collect()
		peTasks += r.Tasks
		peEmb += r.Embeddings
		peLeaf += r.LeafTasks
	}

	x := reg.Family("cluster")
	out := x.Counter("migrated-out", migOut)
	in := x.Counter("migrated-in", migIn)
	delivered := x.Counter("migrations-delivered", c.Migrations.Total)
	x.Counter("adopt-retries", c.AdoptRetries.Total)
	inFlight := x.Counter("migrations-in-flight", int64(c.inFlight))
	sent := x.Counter("inter-lines-sent", c.LinesSent.Total)
	recv := x.Counter("inter-lines-received", c.LinesRecv.Total)
	x.Eq("tasks migrated out == tasks adopted in", out, in+inFlight)
	x.Eq("migrations carved == delivered + in flight", out, delivered+inFlight)
	x.Eq("no migrations in flight", inFlight, 0)
	x.Eq("interconnect lines sent == received", sent, recv)
	// Every tree receipt anywhere in the cluster traces to a local §4.1
	// delivery or a cross-chip migration — no subtree is double-counted
	// or lost in transit.
	x.Eq("Σ splits received == Σ local deliveries + migrations",
		splitsRecv, splitsLocal+delivered)

	ic := reg.Family("interconnect")
	msgs := ic.Counter("messages", c.inter.Messages.Total)
	moved := ic.Counter("lines-moved", c.inter.LinesMoved.Total)
	// Each migration is the three-message §4.1 protocol lifted one
	// level: two zero-line control messages plus the payload transfer.
	ic.Eq("messages == 3 × migrations", msgs, 3*(delivered+inFlight))
	ic.Eq("lines moved == lines sent", moved, sent)

	// Global totals: the PE-counter path (what Result reports) must
	// equal the workload-counter path summed over chips. Executions
	// exclude adopted subtree roots (installed pre-executed), which the
	// adopter's PE counters also never see.
	g := reg.Family("global")
	tasks := g.Counter("tasks", peTasks)
	g.Counter("embeddings", peEmb)
	g.Counter("leaf-tasks", peLeaf)
	g.Counter("workload-executions", wlExec)
	g.Counter("adopted-splits", wlAdopted)
	g.Eq("global tasks == Σ per-chip workload executions", tasks, wlExec)

	return reg
}

// Verify runs the conservation pass over the whole cluster — the
// cross-chip identities plus every chip's own registry — returning a
// *metrics.VerifyError naming each violated invariant (nil when all
// hold). RunContext calls this by default (Config.VerifyMetrics).
func (c *Cluster) Verify() error {
	return c.Metrics().Verify()
}
