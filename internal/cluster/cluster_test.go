package cluster_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/chaos"
	"shogun/internal/cluster"
	"shogun/internal/datasets"
	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/metrics"
	"shogun/internal/mine"
)

// variant mirrors the accel conformance matrix: every scheduling scheme
// plus the Shogun optimization combinations.
type variant struct {
	name   string
	scheme accel.Scheme
	mutate func(*accel.Config)
}

func variants() []variant {
	return []variant{
		{"bfs", accel.SchemeBFS, nil},
		{"dfs", accel.SchemeDFS, nil},
		{"pseudo-dfs", accel.SchemePseudoDFS, nil},
		{"parallel-dfs", accel.SchemeParallelDFS, nil},
		{"shogun", accel.SchemeShogun, nil},
		{"shogun+split", accel.SchemeShogun, func(c *accel.Config) { c.EnableSplitting = true }},
		{"shogun+merge", accel.SchemeShogun, func(c *accel.Config) { c.EnableMerging = true }},
		{"shogun+split+merge", accel.SchemeShogun, func(c *accel.Config) {
			c.EnableSplitting = true
			c.EnableMerging = true
		}},
	}
}

func workload(t testing.TB, name string) datasets.Workload {
	for _, wl := range datasets.Workloads() {
		if wl.Name == name {
			return wl
		}
	}
	t.Fatalf("no workload %q", name)
	return datasets.Workload{}
}

// TestClusterDifferentialN1 is the scale-out equivalence gate: a 1-chip
// cluster in replicated mode must be BIT-IDENTICAL to the single-chip
// engine — the full Result JSON (cycles, per-PE breakdowns, telemetry
// time series), and every hardware counter — across the conformance
// matrix's scheme variants and both event-queue disciplines. The
// cluster layer may add no events, reorder nothing, and perturb no
// counter when it degenerates to one chip.
func TestClusterDifferentialN1(t *testing.T) {
	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 42)
	for _, wl := range datasets.Workloads() {
		for _, v := range variants() {
			for _, queue := range []string{"heap", "calendar"} {
				name := fmt.Sprintf("%s/%s/%s", wl.Name, v.name, queue)
				t.Run(name, func(t *testing.T) {
					cfg := accel.DefaultConfig(v.scheme)
					cfg.NumPEs = 4
					cfg.EventQueue = queue
					cfg.SampleEvery = 512 // telemetry series must match too
					if v.mutate != nil {
						v.mutate(&cfg)
					}

					a, err := accel.New(g, wl.Schedule, cfg)
					if err != nil {
						t.Fatalf("accel new: %v", err)
					}
					single, err := a.Run()
					if err != nil {
						t.Fatalf("accel run: %v", err)
					}

					ccfg := cluster.DefaultConfig(v.scheme, 1)
					ccfg.Chip = cfg
					cl, err := cluster.New(g, wl.Schedule, ccfg)
					if err != nil {
						t.Fatalf("cluster new: %v", err)
					}
					res, err := cl.Run()
					if err != nil {
						t.Fatalf("cluster run: %v", err)
					}

					sj, _ := json.Marshal(single)
					cj, _ := json.Marshal(res.ChipResults[0])
					if string(sj) != string(cj) {
						t.Errorf("1-chip cluster Result diverged from single-chip engine:\nsingle:  %s\ncluster: %s", sj, cj)
					}
					if diff := metrics.Diff(a.Metrics().Snapshot(), cl.Chips()[0].Metrics().Snapshot()); len(diff) > 0 {
						t.Errorf("hardware counters diverged: %v", diff)
					}
					if res.Migrations != 0 || res.InterMessages != 0 {
						t.Errorf("1-chip cluster used the interconnect: migrations=%d messages=%d", res.Migrations, res.InterMessages)
					}
				})
			}
		}
	}
}

// TestClusterMetamorphicCounts pins the scale-out metamorphic property:
// embedding counts are a function of the graph and pattern alone —
// invariant to chip count, partition strategy, and partition seed. Every
// cell must match the software golden miner bit-exactly, and the
// cross-chip conservation pass (on by default) must hold.
func TestClusterMetamorphicCounts(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"rmat", gen.RMAT(192, 1100, 0.6, 0.15, 0.15, 7)},  // wi analogue
		{"plc", gen.PowerLawCluster(220, 5, 0.55, 9)},      // or analogue
	}
	for _, gr := range graphs {
		for _, wlName := range []string{"tc", "4cl", "dia_v"} {
			wl := workload(t, wlName)
			want := mine.Count(gr.g, wl.Schedule)
			for _, chips := range []int{1, 2, 4, 8} {
				for _, mode := range []cluster.Mode{cluster.ModeReplicate, cluster.ModeHash, cluster.ModeRange} {
					seeds := []int64{0}
					if mode == cluster.ModeHash {
						seeds = []int64{0, 1, 99}
					}
					for _, seed := range seeds {
						name := fmt.Sprintf("%s/%s/chips=%d/%s/seed=%d", gr.name, wlName, chips, mode, seed)
						t.Run(name, func(t *testing.T) {
							cfg := cluster.DefaultConfig(accel.SchemeShogun, chips)
							cfg.Partition = mode
							cfg.PartitionSeed = seed
							cfg.Chip.NumPEs = 2
							cfg.Chip.EnableSplitting = true
							cfg.Chip.EnableMerging = true
							cl, err := cluster.New(gr.g, wl.Schedule, cfg)
							if err != nil {
								t.Fatalf("new: %v", err)
							}
							res, err := cl.Run()
							if err != nil {
								t.Fatalf("run: %v", err)
							}
							if res.Embeddings != want {
								t.Errorf("embeddings = %d, golden miner = %d", res.Embeddings, want)
							}
							if res.Cycles <= 0 || res.Tasks <= 0 {
								t.Errorf("degenerate run: cycles=%d tasks=%d", res.Cycles, res.Tasks)
							}
						})
					}
				}
			}
		}
	}
}

// TestClusterConservationUnderChaos drives a 4-chip cluster with seeded
// fault injection on every chip — service-time jitter (including the
// interconnect links), forced conservative-mode flips, forced intra-chip
// splits — plus forced chip-level migrations on the cluster's own tick.
// For every seed: the embedding/task counts stay bit-exact against the
// undisturbed baseline, the cross-chip conservation identities hold, and
// every chip's own invariant registry passes.
func TestClusterConservationUnderChaos(t *testing.T) {
	g := gen.RMAT(192, 1100, 0.6, 0.15, 0.15, 11)
	wl := workload(t, "4cl")

	base := func() cluster.Config {
		cfg := cluster.DefaultConfig(accel.SchemeShogun, 4)
		cfg.Chip.NumPEs = 2
		cfg.Chip.EnableSplitting = true
		cfg.Chip.EnableMerging = true
		return cfg
	}
	cl, err := cluster.New(g, wl.Schedule, base())
	if err != nil {
		t.Fatalf("baseline new: %v", err)
	}
	baseline, err := cl.Run()
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	var totalMigrations int64
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := base()
			cl, err := cluster.New(g, wl.Schedule, cfg)
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			var injectors []*chaos.Injector
			for i, chip := range cl.Chips() {
				in := chaos.New(chaos.Config{
					Seed:        seed*100 + int64(i),
					JitterPct:   25,
					FlipPeriod:  3000,
					SplitPeriod: 2500,
				})
				chip.InstallPerturb(in)
				in.Attach(chip)
				injectors = append(injectors, in)
			}
			// Jitter the interconnect links and force chip-level
			// migrations mid-run on their own injector.
			clIn := chaos.New(chaos.Config{Seed: seed + 7777, JitterPct: 40})
			cl.Interconnect().SetPerturb(clIn)
			clIn.AttachCluster(cl, 2000)

			res, err := cl.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Embeddings != baseline.Embeddings || res.Tasks != baseline.Tasks || res.LeafTasks != baseline.LeafTasks {
				t.Errorf("counts drifted under chaos: emb %d vs %d, tasks %d vs %d, leaves %d vs %d",
					res.Embeddings, baseline.Embeddings, res.Tasks, baseline.Tasks, res.LeafTasks, baseline.LeafTasks)
			}
			if err := cl.Verify(); err != nil {
				t.Errorf("conservation: %v", err)
			}
			var injected int64
			for _, in := range injectors {
				injected += in.Jitters + in.Flips + in.Splits
			}
			if injected == 0 {
				t.Error("chaos harness injected nothing — the test proved nothing")
			}
			totalMigrations += clIn.Migrations + res.Migrations
		})
	}
	if totalMigrations == 0 {
		t.Error("no chip-level migration occurred across any seed — cluster stealing untested")
	}
}

// TestClusterDeterminism: same config, same seeds → bit-identical runs,
// including under active stealing at 4 chips.
func TestClusterDeterminism(t *testing.T) {
	g := gen.PowerLawCluster(220, 5, 0.55, 9)
	wl := workload(t, "tc")
	var blobs []string
	var snaps []map[string]int64
	for i := 0; i < 2; i++ {
		cfg := cluster.DefaultConfig(accel.SchemeShogun, 4)
		cfg.Partition = cluster.ModeHash
		cfg.PartitionSeed = 3
		cfg.Chip.NumPEs = 2
		cfg.Chip.EnableSplitting = true
		cfg.Chip.SampleEvery = 512
		cl, err := cluster.New(g, wl.Schedule, cfg)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		b, _ := json.Marshal(res)
		blobs = append(blobs, string(b))
		snaps = append(snaps, cl.Metrics().Snapshot())
	}
	if blobs[0] != blobs[1] {
		t.Error("identical cluster configs produced different results")
	}
	if diff := metrics.Diff(snaps[0], snaps[1]); len(diff) > 0 {
		t.Errorf("counters diverged between identical runs: %v", diff)
	}
}

// TestClusterStealingMovesWork pins that the chip-level stealing path
// actually fires on an imbalanced partition: a range partition of a
// skewed power-law graph concentrates heavy vertices on few chips, and
// idle chips must adopt migrated subtrees.
func TestClusterStealingMovesWork(t *testing.T) {
	g := gen.PowerLawCluster(300, 6, 0.6, 43)
	wl := workload(t, "4cl")
	cfg := cluster.DefaultConfig(accel.SchemeShogun, 4)
	cfg.Partition = cluster.ModeRange
	cfg.Chip.NumPEs = 2
	cfg.Chip.EnableSplitting = true
	cfg.StealPeriod = 512
	cl, err := cluster.New(g, wl.Schedule, cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := mine.Count(g, wl.Schedule); res.Embeddings != want {
		t.Fatalf("embeddings = %d, want %d", res.Embeddings, want)
	}
	if res.Migrations == 0 {
		t.Error("no migrations on a skewed range partition — stealing never fired")
	}
	if res.InterLines == 0 {
		t.Error("migrations moved zero interconnect lines")
	}
	var out, in int64
	for _, st := range res.PerChip {
		out += st.MigratedOut
		in += st.MigratedIn
	}
	if out != in || out != res.Migrations {
		t.Errorf("migration bookkeeping: out=%d in=%d delivered=%d", out, in, res.Migrations)
	}
}

// TestClusterTelemetryImbalance: the derived chip-scope series must
// expose one occupancy column per chip so TimeSeries.Imbalance works at
// cluster scope.
func TestClusterTelemetryImbalance(t *testing.T) {
	g := gen.RMAT(192, 1100, 0.6, 0.15, 0.15, 7)
	wl := workload(t, "tc")
	cfg := cluster.DefaultConfig(accel.SchemeShogun, 3)
	cfg.Chip.NumPEs = 2
	cfg.Chip.SampleEvery = 256
	cl, err := cluster.New(g, wl.Schedule, cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ts := res.Telemetry
	if ts == nil {
		t.Fatal("no cluster telemetry despite SampleEvery > 0")
	}
	for i := 0; i < 3; i++ {
		if ts.Col(fmt.Sprintf("chip%d/resident", i)) == nil {
			t.Fatalf("missing chip%d/resident column", i)
		}
	}
	pts := ts.Imbalance("/resident")
	if len(pts) == 0 {
		t.Fatal("empty cluster imbalance series")
	}
	var sawLoad bool
	for _, p := range pts {
		if p.Mean > 0 {
			sawLoad = true
			if p.Ratio < 1 {
				t.Errorf("imbalance ratio %v < 1 at cycle %d", p.Ratio, p.Cycle)
			}
		}
	}
	if !sawLoad {
		t.Error("imbalance series never saw load")
	}
	if r := res.ImbalanceRatio(); r < 1 {
		t.Errorf("result-level imbalance ratio %v < 1", r)
	}
	if res.MaxOccupancy <= 0 || res.MaxOccupancy > 1 {
		t.Errorf("max occupancy %v outside (0, 1]", res.MaxOccupancy)
	}
}

// TestClusterConfigErrors covers construction-time validation.
func TestClusterConfigErrors(t *testing.T) {
	g := gen.RMAT(64, 200, 0.6, 0.15, 0.15, 1)
	wl := workload(t, "tc")
	if _, err := cluster.New(g, wl.Schedule, cluster.Config{Chips: 0, Chip: accel.DefaultConfig(accel.SchemeShogun)}); err == nil {
		t.Error("0 chips accepted")
	}
	cfg := cluster.DefaultConfig(accel.SchemeShogun, 2)
	cfg.Partition = "mesh"
	if _, err := cluster.New(g, wl.Schedule, cfg); err == nil {
		t.Error("unknown partition mode accepted")
	}
	if _, err := cluster.ParseMode("blorp"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
	if m, err := cluster.ParseMode(""); err != nil || m != cluster.ModeReplicate {
		t.Errorf("ParseMode(\"\") = %v, %v; want replicate", m, err)
	}
}

// TestClusterNonShogunSchemes: partitioned runs work for every scheme
// (stealing silently disabled off-Shogun), with exact counts.
func TestClusterNonShogunSchemes(t *testing.T) {
	g := gen.RMAT(128, 600, 0.6, 0.15, 0.15, 5)
	wl := workload(t, "tc")
	want := mine.Count(g, wl.Schedule)
	for _, scheme := range []accel.Scheme{accel.SchemeBFS, accel.SchemeDFS, accel.SchemePseudoDFS, accel.SchemeParallelDFS} {
		t.Run(string(scheme), func(t *testing.T) {
			cfg := cluster.DefaultConfig(scheme, 3)
			cfg.Partition = cluster.ModeHash
			cfg.Chip.NumPEs = 2
			cl, err := cluster.New(g, wl.Schedule, cfg)
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			res, err := cl.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Embeddings != want {
				t.Errorf("embeddings = %d, want %d", res.Embeddings, want)
			}
			if res.Migrations != 0 {
				t.Errorf("non-Shogun scheme migrated %d subtrees", res.Migrations)
			}
		})
	}
}

// BenchmarkClusterSimulate is the scaling experiment the BENCH_0009
// snapshot records: one workload at 1–16 chips, reporting speedup-
// relevant cycle counts plus chip-occupancy balance and migration
// volume via custom benchmark units.
func BenchmarkClusterSimulate(b *testing.B) {
	g := gen.RMAT(512, 4000, 0.57, 0.19, 0.19, 21)
	wl := workload(b, "tc")
	for _, chips := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("chips=%d", chips), func(b *testing.B) {
			var res *cluster.Result
			for i := 0; i < b.N; i++ {
				cfg := cluster.DefaultConfig(accel.SchemeShogun, chips)
				cfg.Partition = cluster.ModeHash
				cfg.Chip.NumPEs = 2
				cfg.Chip.EnableSplitting = true
				cl, err := cluster.New(g, wl.Schedule, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err = cl.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
			b.ReportMetric(res.MaxOccupancy, "max_occ")
			b.ReportMetric(res.MeanOccupancy, "mean_occ")
			b.ReportMetric(res.ImbalanceRatio(), "max_mean_occ")
			b.ReportMetric(float64(res.Migrations), "migrations")
			b.ReportMetric(float64(res.Events)/float64(b.Elapsed().Seconds()*float64(b.N)), "events/s")
		})
	}
}
