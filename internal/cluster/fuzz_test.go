package cluster_test

import (
	"math/rand"
	"testing"

	"shogun/internal/cluster"
	"shogun/internal/graph"
)

// FuzzPartitioner drives NewPartition with random small graphs and
// partition configs and checks the structural invariants via Validate:
// every vertex assigned exactly once, cut-edge bookkeeping consistent
// with the graph's degree sums, and no empty chip unless V < N.
func FuzzPartitioner(f *testing.F) {
	f.Add(int64(1), 16, 120, 2, int64(0), uint8(0))
	f.Add(int64(2), 64, 400, 5, int64(7), uint8(1))
	f.Add(int64(3), 3, 2, 8, int64(42), uint8(2))
	f.Add(int64(4), 1, 0, 1, int64(-1), uint8(0))
	f.Add(int64(5), 200, 900, 16, int64(1<<40), uint8(1))
	f.Fuzz(func(t *testing.T, graphSeed int64, n, m, chips int, seed int64, modeSel uint8) {
		if n < 1 || n > 512 || m < 0 || m > 4096 || chips < 1 || chips > 64 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(graphSeed))
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			if u == v {
				continue
			}
			edges = append(edges, graph.Edge{U: u, V: v})
		}
		g, err := graph.New(n, edges)
		if err != nil {
			t.Fatalf("graph.New: %v", err)
		}
		modes := []cluster.Mode{cluster.ModeReplicate, cluster.ModeHash, cluster.ModeRange}
		mode := modes[int(modeSel)%len(modes)]
		p, err := cluster.NewPartition(g, mode, chips, seed)
		if err != nil {
			t.Fatalf("NewPartition(%s, chips=%d): %v", mode, chips, err)
		}
		if err := p.Validate(g); err != nil {
			t.Errorf("%s over %d chips, seed %d: %v", mode, chips, seed, err)
		}
		// The partition must be a pure function of (graph, mode, chips,
		// seed): rebuilding yields the identical assignment.
		q, err := cluster.NewPartition(g, mode, chips, seed)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		for v := range p.Owner {
			if p.Owner[v] != q.Owner[v] {
				t.Fatalf("partition not deterministic: vertex %d on chip %d then %d", v, p.Owner[v], q.Owner[v])
			}
		}
	})
}
