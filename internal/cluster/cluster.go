package cluster

import (
	"context"
	"fmt"
	"runtime/debug"

	"shogun/internal/accel"
	"shogun/internal/graph"
	"shogun/internal/mem"
	"shogun/internal/pattern"
	"shogun/internal/sim"
	"shogun/internal/telemetry"
)

// Config parameterizes a multi-chip cluster.
type Config struct {
	// Chips is the number of accelerator chips (≥ 1).
	Chips int
	// Partition selects the static root-vertex partitioner (empty =
	// replicate, the baseline that is bit-identical to a single chip at
	// Chips == 1).
	Partition Mode
	// PartitionSeed drives the hash partitioner (ignored by the others).
	PartitionSeed int64
	// Chip configures every chip identically (the shared engine's queue
	// discipline comes from Chip.EventQueue; the per-run governor
	// budgets from Chip.Deadline/MaxEvents/MaxWall).
	Chip accel.Config
	// Interconnect models the chip-to-chip fabric as a second NoC level:
	// per-link latency/bandwidth plus message counters. Zero links
	// auto-sizes to one link per chip.
	Interconnect mem.NoCConfig
	// Steal enables chip-level task-tree splitting: an overloaded chip
	// exports a carved depth-1 subtree and an idle chip adopts it over
	// the interconnect. Shogun-scheme chips only.
	Steal bool
	// StealPeriod is the work-stealing re-check cadence (0 = the chip's
	// BalancePeriod).
	StealPeriod sim.Time
	// VerifyMetrics runs the cross-chip conservation pass (and every
	// chip's own ~63-identity pass) after each successful run. On by
	// default via DefaultConfig.
	VerifyMetrics bool
}

// DefaultConfig mirrors accel.DefaultConfig at cluster scope: Table 3
// chips behind an inter-chip fabric an order of magnitude slower than
// the on-chip NoC.
func DefaultConfig(scheme accel.Scheme, chips int) Config {
	return Config{
		Chips:     chips,
		Partition: ModeReplicate,
		Chip:      accel.DefaultConfig(scheme),
		// A serial chip-to-chip link: ~10× the on-chip hop latency and
		// 4× the per-line occupancy of the on-chip crossbar.
		Interconnect:  mem.NoCConfig{Links: 0 /* auto: 1 per chip */, HopLat: 40, FlitCycles: 4},
		Steal:         true,
		VerifyMetrics: true,
	}
}

// Cluster is N chips on one shared deterministic clock.
type Cluster struct {
	cfg   Config
	eng   *sim.Engine
	inter *mem.NoC
	chips []*accel.Accelerator
	part  *Partition

	stealArmed bool
	adoptBusy  []bool // helper chip has an in-flight or retrying adoption
	inFlight   int

	// Migrations counts delivered chip-level subtree transfers;
	// LinesSent/LinesRecv count interconnect payload lines at carve and
	// adopt time (the sent == received identity).
	Migrations sim.Counter
	LinesSent  sim.Counter
	LinesRecv  sim.Counter
	// AdoptRetries counts deliveries that found no PE able to adopt and
	// went back to sleep (forced mid-run migrations mostly).
	AdoptRetries sim.Counter
}

// Actor ops for the cluster scheduler's event callbacks.
const (
	opStealCheck = iota
	opArmStealIfNeeded
	opDeliverMigration
)

// migration is one in-flight chip-to-chip subtree transfer.
type migration struct {
	to    int
	x     *accel.SplitExport
	force bool
}

// Act dispatches the cluster's event callbacks (sim.Actor).
func (c *Cluster) Act(op int, arg any) {
	switch op {
	case opStealCheck:
		c.stealCheck()
	case opArmStealIfNeeded:
		c.armStealIfNeeded()
	case opDeliverMigration:
		c.deliverMigration(arg.(*migration))
	default:
		panic("cluster: unknown actor op")
	}
}

// New builds a cluster for graph g and schedule s: one shared engine,
// the static partition, and cfg.Chips accelerator instances whose root
// sets are the partition's. The graph itself is replicated on every
// chip (G²Miner's multi-GPU arrangement); only the work is partitioned.
func New(g *graph.Graph, s *pattern.Schedule, cfg Config) (*Cluster, error) {
	if cfg.Chips < 1 {
		return nil, fmt.Errorf("cluster: need at least one chip, got %d", cfg.Chips)
	}
	mode, err := ParseMode(string(cfg.Partition))
	if err != nil {
		return nil, err
	}
	cfg.Partition = mode
	if cfg.StealPeriod <= 0 {
		cfg.StealPeriod = cfg.Chip.BalancePeriod
		if cfg.StealPeriod <= 0 {
			cfg.StealPeriod = 4096
		}
	}
	if cfg.Interconnect.Links <= 0 {
		cfg.Interconnect.Links = cfg.Chips
	}
	if cfg.Steal && cfg.Chip.Scheme != accel.SchemeShogun {
		// Chip-level splitting rides the Shogun task tree; other schemes
		// run partitioned but cannot migrate subtrees.
		cfg.Steal = false
	}
	qkind, err := sim.ParseQueueKind(cfg.Chip.EventQueue)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	part, err := NewPartition(g, mode, cfg.Chips, cfg.PartitionSeed)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:       cfg,
		eng:       sim.NewEngineQueue(qkind),
		inter:     mem.NewNoC(cfg.Interconnect),
		part:      part,
		adoptBusy: make([]bool, cfg.Chips),
	}
	for i := 0; i < cfg.Chips; i++ {
		roots := part.Roots[i]
		if cfg.Chips == 1 {
			// The 1-chip replicated baseline hands accel the nil default
			// so the root-dealing code path is byte-for-byte the
			// single-chip engine's.
			roots = nil
		}
		chip, err := accel.NewShared(g, s, cfg.Chip, c.eng, roots)
		if err != nil {
			return nil, fmt.Errorf("cluster: chip %d: %w", i, err)
		}
		if cfg.Chips > 1 {
			chip.KeepSampling = c.busy
			if cfg.Steal {
				chip.OnChipIdle = c.armSteal
			}
		}
		c.chips = append(c.chips, chip)
	}
	return c, nil
}

// busy reports whether any chip still holds work or a migration is in
// flight — the sampler keep-alive and steal-loop re-arm predicate.
func (c *Cluster) busy() bool {
	if c.inFlight > 0 {
		return true
	}
	for _, chip := range c.chips {
		if !chip.ChipIdle() {
			return true
		}
	}
	return false
}

// armSteal schedules one work-stealing check (debounced), mirroring the
// intra-chip balance loop one level up.
func (c *Cluster) armSteal() {
	if c.stealArmed || !c.cfg.Steal || c.cfg.Chips < 2 {
		return
	}
	c.stealArmed = true
	c.eng.PostAfter(1, c, opStealCheck, nil)
}

func (c *Cluster) armStealIfNeeded() {
	if c.busy() {
		c.armSteal()
	}
}

// stealCheck detects cluster-level imbalance — quiet chips while others
// stay busy — and migrates one carved subtree per idle chip, paying the
// interconnect's three-message transfer (root+range, set size, candidate
// lines; §4.1's protocol lifted one level). Multiple rounds occur
// naturally: the check re-arms while the cluster stays busy.
func (c *Cluster) stealCheck() {
	c.stealArmed = false
	var idle, busyChips []int
	for i, chip := range c.chips {
		if chip.ChipIdle() && !c.adoptBusy[i] {
			idle = append(idle, i)
		} else if !chip.ChipIdle() {
			busyChips = append(busyChips, i)
		}
	}
	if len(idle) > 0 && len(busyChips) > 0 {
		h := 0
		for _, v := range busyChips {
			if h >= len(idle) {
				break
			}
			x, ok := c.chips[v].CarveExport()
			if !ok {
				continue
			}
			c.sendMigration(idle[h], x, false)
			h++
		}
	}
	if c.busy() {
		c.eng.PostAfter(c.cfg.StealPeriod, c, opArmStealIfNeeded, nil)
	}
}

// sendMigration models the transfer: two control messages plus the
// candidate payload across the interconnect, then a delivery event on
// the adopting chip at arrival time.
func (c *Cluster) sendMigration(to int, x *accel.SplitExport, force bool) {
	now := c.eng.Now()
	lines := x.Lines()
	c.inter.Transfer(now, 0)
	c.inter.Transfer(now, 0)
	arrive := c.inter.Transfer(now, lines)
	c.LinesSent.Inc(lines)
	c.adoptBusy[to] = true
	c.inFlight++
	c.eng.Post(arrive, c, opDeliverMigration, &migration{to: to, x: x, force: force})
}

// deliverMigration installs the migrated subtree on the adopting chip,
// retrying while no PE can take it — the carved range must never be
// dropped. Retries always terminate: once the cluster otherwise drains,
// every PE on the adopter is idle and adoption succeeds.
func (c *Cluster) deliverMigration(m *migration) {
	if c.chips[m.to].TryAdopt(m.x, m.force) {
		c.adoptBusy[m.to] = false
		c.inFlight--
		c.LinesRecv.Inc(m.x.Lines())
		c.Migrations.Inc(1)
		return
	}
	c.AdoptRetries.Inc(1)
	c.eng.PostAfter(c.cfg.StealPeriod, c, opDeliverMigration, m)
}

// ForceMigrate carves one chip-level split and ships it to the next chip
// regardless of the imbalance signal — the chaos harness's cluster-scope
// fault injection (mirrors accel.ForceSplit). The adopting chip may be
// busy; delivery retries until a PE accepts. Reports whether a migration
// was initiated. Only meaningful when stealing is enabled.
func (c *Cluster) ForceMigrate() bool {
	if !c.cfg.Steal || c.cfg.Chips < 2 {
		return false
	}
	for v := range c.chips {
		x, ok := c.chips[v].CarveExport()
		if !ok {
			continue
		}
		for off := 1; off < len(c.chips); off++ {
			h := (v + off) % len(c.chips)
			if c.adoptBusy[h] {
				continue
			}
			c.sendMigration(h, x, true)
			return true
		}
		// Every other chip already has an adoption in flight: deliver to
		// the next chip anyway once its slot frees — retrying here keeps
		// the carved range alive.
		c.sendMigration((v+1)%len(c.chips), x, true)
		return true
	}
	return false
}

// Busy reports whether the cluster still holds work (chaos-harness tick
// predicate).
func (c *Cluster) Busy() bool { return c.busy() }

// Engine exposes the shared event engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Interconnect exposes the chip-to-chip fabric (chaos perturbation,
// tests).
func (c *Cluster) Interconnect() *mem.NoC { return c.inter }

// Chips exposes the per-chip accelerators.
func (c *Cluster) Chips() []*accel.Accelerator { return c.chips }

// Partition exposes the static vertex partition.
func (c *Cluster) Partition() *Partition { return c.part }

// ChipStats is the per-chip slice of a cluster Result.
type ChipStats struct {
	Vertices    int
	Embeddings  int64
	Tasks       int64
	LeafTasks   int64
	Cycles      sim.Time // this chip's last task completion
	Occupancy   float64  // busy slot-cycles / (capacity × cluster cycles)
	MigratedOut int64
	MigratedIn  int64
}

// Result aggregates one cluster run.
type Result struct {
	Chips     int
	Partition Mode
	Scheme    accel.Scheme
	Cycles    sim.Time // cluster makespan: latest chip completion
	Events    int64

	Embeddings int64
	Tasks      int64
	LeafTasks  int64

	Migrations    int64
	AdoptRetries  int64
	InterMessages int64
	InterLines    int64

	// MaxOccupancy / MeanOccupancy summarize chip-level load balance —
	// the headline scaling metric (max/mean == 1 is perfect balance).
	MaxOccupancy  float64
	MeanOccupancy float64

	PerChip []ChipStats
	// ChipResults carries each chip's full single-chip Result.
	ChipResults []*accel.Result
	// Telemetry is the cluster-scope epoch series (one occupancy column
	// per chip; nil when sampling was off).
	Telemetry *telemetry.TimeSeries `json:",omitempty"`
}

// Run simulates to completion. See RunContext.
func (c *Cluster) Run() (*Result, error) { return c.RunContext(context.Background()) }

// RunContext drives all chips on the shared clock under the run governor
// (budgets from the chip config). Failure modes mirror accel.RunContext:
// wrapped sim sentinels on tripped budgets or cancellation,
// *sim.DeadlockError when the queue drains with work or a migration
// still pending, contained panics as *sim.InvariantError.
func (c *Cluster) RunContext(ctx context.Context) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &sim.InvariantError{
				Op:         "cluster: run",
				PanicValue: r,
				Stack:      string(debug.Stack()),
				Snapshot:   c.snapshot(),
			}
		}
	}()
	for _, chip := range c.chips {
		chip.Start()
	}
	if err := c.eng.RunGoverned(ctx, c.chips[0].Budget()); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	for _, chip := range c.chips {
		if err := chip.Drained(); err != nil {
			return nil, err
		}
	}
	if c.inFlight != 0 {
		return nil, &sim.DeadlockError{Op: "cluster: run", Snapshot: c.snapshot()}
	}
	if c.cfg.VerifyMetrics {
		if err := c.Verify(); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}
	return c.collect(), nil
}

// snapshot captures cluster-scope diagnostics for invariant/deadlock
// errors: engine progress plus per-chip idle/migration state.
func (c *Cluster) snapshot() *sim.Snapshot {
	s := c.eng.Snapshot()
	for i, chip := range c.chips {
		s.Notes = append(s.Notes, fmt.Sprintf(
			"chip%d: idle=%t adoptBusy=%t migratedOut=%d migratedIn=%d",
			i, chip.ChipIdle(), c.adoptBusy[i], chip.MigratedOut.Total, chip.MigratedIn.Total))
	}
	s.Notes = append(s.Notes, fmt.Sprintf(
		"cluster: inFlight=%d delivered=%d retries=%d", c.inFlight, c.Migrations.Total, c.AdoptRetries.Total))
	return s
}

func (c *Cluster) collect() *Result {
	r := &Result{
		Chips:         c.cfg.Chips,
		Partition:     c.cfg.Partition,
		Scheme:        c.cfg.Chip.Scheme,
		Events:        c.eng.Processed,
		Migrations:    c.Migrations.Total,
		AdoptRetries:  c.AdoptRetries.Total,
		InterMessages: c.inter.Messages.Total,
		InterLines:    c.inter.LinesMoved.Total,
	}
	for _, chip := range c.chips {
		if end := chip.EndTime(); end > r.Cycles {
			r.Cycles = end
		}
	}
	var occSum float64
	for i, chip := range c.chips {
		cr := chip.Collect()
		r.ChipResults = append(r.ChipResults, cr)
		st := ChipStats{
			Vertices:    len(c.part.Roots[i]),
			Embeddings:  cr.Embeddings,
			Tasks:       cr.Tasks,
			LeafTasks:   cr.LeafTasks,
			Cycles:      cr.Cycles,
			MigratedOut: chip.MigratedOut.Total,
			MigratedIn:  chip.MigratedIn.Total,
		}
		if r.Cycles > 0 {
			st.Occupancy = float64(chip.BusySlotCycles()) /
				(float64(chip.SlotCapacityPerCycle()) * float64(r.Cycles))
		}
		occSum += st.Occupancy
		if st.Occupancy > r.MaxOccupancy {
			r.MaxOccupancy = st.Occupancy
		}
		r.PerChip = append(r.PerChip, st)
		r.Embeddings += cr.Embeddings
		r.Tasks += cr.Tasks
		r.LeafTasks += cr.LeafTasks
	}
	r.MeanOccupancy = occSum / float64(len(c.chips))
	r.Telemetry = c.timeSeries()
	return r
}

// ImbalanceRatio reports max/mean chip occupancy from a collected
// result (1.0 = perfect balance; 0 when idle).
func (r *Result) ImbalanceRatio() float64 {
	if r.MeanOccupancy == 0 {
		return 0
	}
	return r.MaxOccupancy / r.MeanOccupancy
}
