package gen

import (
	"strings"
	"testing"
)

func TestValidators(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string // "" = valid
	}{
		{"er-ok", ValidateErdosRenyi(10, 20), ""},
		{"er-zero-n", ValidateErdosRenyi(0, 20), "n >= 1"},
		{"er-neg-m", ValidateErdosRenyi(10, -1), "m >= 0"},
		{"rmat-ok", ValidateRMAT(16, 40, 0.6, 0.15, 0.15), ""},
		{"rmat-zero-n", ValidateRMAT(0, 40, 0.6, 0.15, 0.15), "n >= 1"},
		{"rmat-sum", ValidateRMAT(16, 40, 0.6, 0.3, 0.3), "a+b+c < 1"},
		{"rmat-neg", ValidateRMAT(16, 40, -0.1, 0.3, 0.3), "a, b, c >= 0"},
		{"ba-ok", ValidateBarabasiAlbert(10, 2), ""},
		{"ba-k0", ValidateBarabasiAlbert(10, 0), "k >= 1"},
		{"ba-zero-n", ValidateBarabasiAlbert(0, 2), "n >= 1"},
		{"plc-ok", ValidatePowerLawCluster(10, 2, 0.5), ""},
		{"plc-p", ValidatePowerLawCluster(10, 2, 1.5), "0 <= p <= 1"},
		{"cl-ok", ValidateChungLu(10, 20, 0.5, 8), ""},
		{"cl-m0", ValidateChungLu(10, 0, 0.5, 8), "m >= 1"},
		{"cl-deg", ValidateChungLu(10, 20, 0.5, 0), "maxDeg >= 1"},
		{"nr-ok", ValidateNearRegular(10, 4), ""},
		{"nr-zero-n", ValidateNearRegular(0, 4), "n >= 1"},
		{"ws-ok", ValidateWattsStrogatz(10, 2, 0.1), ""},
		{"ws-p", ValidateWattsStrogatz(10, 2, -0.1), "0 <= p <= 1"},
	}
	for _, c := range cases {
		if c.want == "" {
			if c.err != nil {
				t.Errorf("%s: unexpected error %v", c.name, c.err)
			}
		} else if c.err == nil || !strings.Contains(c.err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, c.err, c.want)
		}
	}
}

// TestGeneratorBoundaryPanics pins the documented behaviour: invalid
// parameters panic at the generator boundary with the validator's
// message, not deep inside a sampling loop.
func TestGeneratorBoundaryPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
		want string
	}{
		{"rmat-n0", func() { RMAT(0, 100, 0.6, 0.15, 0.15, 1) }, "RMAT requires n >= 1"},
		{"rmat-sum", func() { RMAT(16, 100, 0.5, 0.3, 0.3, 1) }, "a+b+c < 1"},
		{"er-n0", func() { ErdosRenyi(0, 100, 1) }, "ErdosRenyi requires n >= 1"},
		{"ba-k0", func() { BarabasiAlbert(10, 0, 1) }, "BarabasiAlbert requires k >= 1"},
		{"plc-p", func() { PowerLawCluster(10, 2, 2.0, 1) }, "0 <= p <= 1"},
		{"nr-n0", func() { NearRegular(0, 4, 1) }, "NearRegular requires n >= 1"},
	}
	for _, c := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: no panic", c.name)
					return
				}
				msg, _ := r.(string)
				if !strings.Contains(msg, c.want) {
					t.Errorf("%s: panic %q, want mention of %q", c.name, r, c.want)
				}
			}()
			c.fn()
		}()
	}
}
