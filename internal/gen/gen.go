// Package gen provides deterministic synthetic graph generators.
//
// The Shogun paper evaluates on six SNAP datasets that are not shipped with
// this repository. The generators here produce analogues whose structural
// axes (size, average degree, degree skew) match the originals at reduced
// scale, so the evaluation's qualitative behaviour is preserved. All
// generators are deterministic for a given seed.
package gen

import (
	"math"
	"math/rand"

	"shogun/internal/graph"
)

// ErdosRenyi generates a G(n, m) random graph: m edges sampled uniformly
// (duplicates and self loops are dropped by the CSR builder, so the
// realized edge count can be slightly lower).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	mustValidate(ValidateErdosRenyi(n, m))
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.MustNew(n, edges)
}

// RMAT generates a recursive-matrix graph (Chakrabarti et al.). Higher `a`
// relative to b, c, d concentrates edges on low-numbered vertices,
// producing the heavy-tailed, highly skewed degree distributions typical of
// social and web graphs (Youtube/LiveJournal/Orkut analogues).
//
// n is rounded up to the next power of two internally; vertices beyond the
// requested n are folded back in, preserving skew.
func RMAT(n, m int, a, b, c float64, seed int64) *graph.Graph {
	mustValidate(ValidateRMAT(n, m, a, b, c))
	rng := rand.New(rand.NewSource(seed))
	levels := 0
	for 1<<levels < n {
		levels++
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		var u, v int
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << l
			case r < a+b+c:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		edges = append(edges, graph.Edge{U: graph.VertexID(u % n), V: graph.VertexID(v % n)})
	}
	return graph.MustNew(n, edges)
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches k edges to existing vertices chosen proportionally to degree.
// Produces a power-law tail with moderate skew (AstroPh analogue when
// combined with triangle closure, see PowerLawCluster).
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	mustValidate(ValidateBarabasiAlbert(n, k))
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n*k)
	// targets holds one entry per edge endpoint, so uniform sampling from
	// it is degree-proportional sampling.
	targets := make([]graph.VertexID, 0, 2*n*k)
	start := k + 1
	if start > n {
		start = n
	}
	// Seed clique over the first start vertices.
	for i := 0; i < start; i++ {
		for j := i + 1; j < start; j++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
			targets = append(targets, graph.VertexID(i), graph.VertexID(j))
		}
	}
	for v := start; v < n; v++ {
		for e := 0; e < k; e++ {
			var u graph.VertexID
			if len(targets) == 0 {
				u = graph.VertexID(rng.Intn(v))
			} else {
				u = targets[rng.Intn(len(targets))]
			}
			edges = append(edges, graph.Edge{U: graph.VertexID(v), V: u})
			targets = append(targets, graph.VertexID(v), u)
		}
	}
	return graph.MustNew(n, edges)
}

// PowerLawCluster is Barabási–Albert with triangle closure (Holme–Kim): with
// probability p each attachment step instead connects to a random neighbor
// of the previously chosen target, raising the clustering coefficient. Good
// analogue for collaboration networks (AstroPh) whose clique density is
// much higher than plain BA graphs.
func PowerLawCluster(n, k int, p float64, seed int64) *graph.Graph {
	mustValidate(ValidatePowerLawCluster(n, k, p))
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]graph.VertexID, n)
	targets := make([]graph.VertexID, 0, 2*n*k)
	edges := make([]graph.Edge, 0, n*k)
	addEdge := func(u, v graph.VertexID) {
		if u == v {
			return
		}
		edges = append(edges, graph.Edge{U: u, V: v})
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		targets = append(targets, u, v)
	}
	start := k + 1
	if start > n {
		start = n
	}
	for i := 0; i < start; i++ {
		for j := i + 1; j < start; j++ {
			addEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	for v := start; v < n; v++ {
		var last graph.VertexID = -1
		for e := 0; e < k; e++ {
			var u graph.VertexID
			if last >= 0 && rng.Float64() < p && len(adj[last]) > 0 {
				u = adj[last][rng.Intn(len(adj[last]))]
			} else if len(targets) > 0 {
				u = targets[rng.Intn(len(targets))]
			} else {
				u = graph.VertexID(rng.Intn(v))
			}
			addEdge(graph.VertexID(v), u)
			last = u
		}
	}
	return graph.MustNew(n, edges)
}

// ChungLu generates a random graph with an expected power-law degree
// sequence: vertex i has weight ∝ (i+10)^(-alpha), truncated so no
// expected degree exceeds maxDeg. m edges are drawn with endpoint
// probability proportional to weight. Unlike R-MAT (whose recursive fold
// concentrates mass on one mega-hub at small scale), Chung–Lu spreads the
// heavy tail over many hubs — matching the hub structure of large social
// graphs like LiveJournal and Orkut at reduced scale.
func ChungLu(n, m int, alpha float64, maxDeg int, seed int64) *graph.Graph {
	mustValidate(ValidateChungLu(n, m, alpha, maxDeg))
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = math.Pow(float64(i+10), -alpha)
		total += w[i]
	}
	// Truncate: expected degree of i ≈ 2m·w_i/total.
	capW := float64(maxDeg) * total / float64(2*m)
	adjusted := 0.0
	for i := range w {
		if w[i] > capW {
			w[i] = capW
		}
		adjusted += w[i]
	}
	// Cumulative distribution for endpoint sampling.
	cum := make([]float64, n)
	run := 0.0
	for i := range w {
		run += w[i]
		cum[i] = run
	}
	sample := func() graph.VertexID {
		x := rng.Float64() * run
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return graph.VertexID(lo)
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: sample(), V: sample()})
	}
	return graph.MustNew(n, edges)
}

// NearRegular generates a graph where every vertex has degree close to k
// with small variance: each vertex draws k/2 partners uniformly. Low skew
// and low diameter variance make it the Patents analogue (sparse, low
// degree variance).
func NearRegular(n, k int, seed int64) *graph.Graph {
	mustValidate(ValidateNearRegular(n, k))
	rng := rand.New(rand.NewSource(seed))
	half := k / 2
	if half < 1 {
		half = 1
	}
	edges := make([]graph.Edge, 0, n*half)
	for v := 0; v < n; v++ {
		for e := 0; e < half; e++ {
			u := rng.Intn(n)
			edges = append(edges, graph.Edge{U: graph.VertexID(v), V: graph.VertexID(u)})
		}
	}
	return graph.MustNew(n, edges)
}

// WattsStrogatz generates a small-world ring lattice with k neighbors per
// side and rewiring probability p.
func WattsStrogatz(n, k int, p float64, seed int64) *graph.Graph {
	mustValidate(ValidateWattsStrogatz(n, k, p))
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			u := (v + j) % n
			if rng.Float64() < p {
				u = rng.Intn(n)
			}
			edges = append(edges, graph.Edge{U: graph.VertexID(v), V: graph.VertexID(u)})
		}
	}
	return graph.MustNew(n, edges)
}

// Clique generates the complete graph on n vertices (testing helper).
func Clique(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
		}
	}
	return graph.MustNew(n, edges)
}

// Grid generates the rows×cols 2-D lattice (testing helper: zero triangles,
// many 4-cycles).
func Grid(rows, cols int) *graph.Graph {
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return graph.MustNew(rows*cols, edges)
}

// SkewTarget estimates the R-MAT `a` parameter needed to reach a desired
// degree skewness at a given scale; used by the dataset analogues. It is a
// coarse monotone map, adequate for picking qualitative regimes.
func SkewTarget(skew float64) (a, b, c float64) {
	// Map skew in [0, 30] to a in [0.25 (uniform), 0.72 (very skewed)].
	t := math.Min(math.Max(skew/30, 0), 1)
	a = 0.25 + 0.47*t
	rest := (1 - a) / 3
	return a, rest, rest
}
