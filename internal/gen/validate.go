package gen

import "fmt"

// Parameter validation for the generators. Each generator calls its
// validator up front and panics with the precise boundary error instead
// of failing deep inside a sampling loop (a zero-vertex RMAT used to die
// on `u % n`; a negative probability silently skewed draws). Callers
// that prefer an error — the public shogun API and cmd/graphgen — call
// the Validate* functions directly before generating.

// ValidateErdosRenyi checks G(n, m) parameters.
func ValidateErdosRenyi(n, m int) error {
	if n < 1 {
		return fmt.Errorf("gen: ErdosRenyi requires n >= 1 (got %d)", n)
	}
	if m < 0 {
		return fmt.Errorf("gen: ErdosRenyi requires m >= 0 (got %d)", m)
	}
	return nil
}

// ValidateRMAT checks R-MAT parameters: positive sizes and a valid
// partition probability split (a, b, c nonnegative with a+b+c < 1, so
// the implicit d = 1-a-b-c stays positive).
func ValidateRMAT(n, m int, a, b, c float64) error {
	if n < 1 {
		return fmt.Errorf("gen: RMAT requires n >= 1 (got %d)", n)
	}
	if m < 0 {
		return fmt.Errorf("gen: RMAT requires m >= 0 (got %d)", m)
	}
	if a < 0 || b < 0 || c < 0 {
		return fmt.Errorf("gen: RMAT requires a, b, c >= 0 (got a=%v b=%v c=%v)", a, b, c)
	}
	if a+b+c >= 1 {
		return fmt.Errorf("gen: RMAT requires a+b+c < 1 (got %v)", a+b+c)
	}
	return nil
}

// ValidateBarabasiAlbert checks preferential-attachment parameters.
func ValidateBarabasiAlbert(n, k int) error {
	if n < 1 {
		return fmt.Errorf("gen: BarabasiAlbert requires n >= 1 (got %d)", n)
	}
	if k < 1 {
		return fmt.Errorf("gen: BarabasiAlbert requires k >= 1 (got %d)", k)
	}
	return nil
}

// ValidatePowerLawCluster checks Holme–Kim parameters.
func ValidatePowerLawCluster(n, k int, p float64) error {
	if n < 1 {
		return fmt.Errorf("gen: PowerLawCluster requires n >= 1 (got %d)", n)
	}
	if k < 1 {
		return fmt.Errorf("gen: PowerLawCluster requires k >= 1 (got %d)", k)
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("gen: PowerLawCluster requires 0 <= p <= 1 (got %v)", p)
	}
	return nil
}

// ValidateChungLu checks Chung–Lu parameters.
func ValidateChungLu(n, m int, alpha float64, maxDeg int) error {
	if n < 1 {
		return fmt.Errorf("gen: ChungLu requires n >= 1 (got %d)", n)
	}
	if m < 1 {
		return fmt.Errorf("gen: ChungLu requires m >= 1 (got %d)", m)
	}
	if alpha < 0 {
		return fmt.Errorf("gen: ChungLu requires alpha >= 0 (got %v)", alpha)
	}
	if maxDeg < 1 {
		return fmt.Errorf("gen: ChungLu requires maxDeg >= 1 (got %d)", maxDeg)
	}
	return nil
}

// ValidateNearRegular checks near-regular parameters.
func ValidateNearRegular(n, k int) error {
	if n < 1 {
		return fmt.Errorf("gen: NearRegular requires n >= 1 (got %d)", n)
	}
	if k < 0 {
		return fmt.Errorf("gen: NearRegular requires k >= 0 (got %d)", k)
	}
	return nil
}

// ValidateWattsStrogatz checks small-world parameters.
func ValidateWattsStrogatz(n, k int, p float64) error {
	if n < 1 {
		return fmt.Errorf("gen: WattsStrogatz requires n >= 1 (got %d)", n)
	}
	if k < 0 {
		return fmt.Errorf("gen: WattsStrogatz requires k >= 0 (got %d)", k)
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("gen: WattsStrogatz requires 0 <= p <= 1 (got %v)", p)
	}
	return nil
}

// mustValidate is the generators' boundary check: parameters are a
// programming error at this layer, so a violation is a documented panic
// with the validator's message.
func mustValidate(err error) {
	if err != nil {
		panic(err.Error())
	}
}
