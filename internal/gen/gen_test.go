package gen

import (
	"sort"
	"testing"

	"shogun/internal/graph"
)

func TestDeterminism(t *testing.T) {
	mk := map[string]func() *graph.Graph{
		"er":   func() *graph.Graph { return ErdosRenyi(100, 400, 42) },
		"rmat": func() *graph.Graph { return RMAT(128, 600, 0.6, 0.15, 0.15, 42) },
		"ba":   func() *graph.Graph { return BarabasiAlbert(100, 3, 42) },
		"plc":  func() *graph.Graph { return PowerLawCluster(100, 3, 0.5, 42) },
		"nr":   func() *graph.Graph { return NearRegular(100, 6, 42) },
		"ws":   func() *graph.Graph { return WattsStrogatz(100, 3, 0.1, 42) },
	}
	for name, f := range mk {
		a, b := f(), f()
		if a.NumEdges() != b.NumEdges() {
			t.Errorf("%s: nondeterministic edge count %d vs %d", name, a.NumEdges(), b.NumEdges())
		}
		for v := 0; v < a.NumVertices(); v++ {
			na, nb := a.Neighbors(graph.VertexID(v)), b.Neighbors(graph.VertexID(v))
			if len(na) != len(nb) {
				t.Fatalf("%s: vertex %d degree differs", name, v)
			}
		}
	}
}

func TestSeedChangesGraph(t *testing.T) {
	a := RMAT(128, 600, 0.6, 0.15, 0.15, 1)
	b := RMAT(128, 600, 0.6, 0.15, 0.15, 2)
	same := true
	for v := 0; v < a.NumVertices() && same; v++ {
		na, nb := a.Neighbors(graph.VertexID(v)), b.Neighbors(graph.VertexID(v))
		if len(na) != len(nb) {
			same = false
		}
	}
	if same && a.NumEdges() == b.NumEdges() {
		// Extremely unlikely: identical degree sequences AND edge counts.
		t.Log("warning: different seeds produced suspiciously similar graphs")
	}
}

func TestRMATIsSkewed(t *testing.T) {
	skewed := RMAT(1<<12, 40000, 0.62, 0.14, 0.14, 7)
	uniform := ErdosRenyi(1<<12, 40000, 7)
	ss, su := skewed.ComputeStats(), uniform.ComputeStats()
	if ss.Skewness <= su.Skewness {
		t.Errorf("RMAT skewness %.2f not greater than ER skewness %.2f", ss.Skewness, su.Skewness)
	}
	if ss.MaxDegree <= 3*uniform.MaxDegree() {
		t.Errorf("RMAT max degree %d not much larger than ER max degree %d", ss.MaxDegree, su.MaxDegree)
	}
}

func TestNearRegularLowVariance(t *testing.T) {
	g := NearRegular(2000, 8, 9)
	s := g.ComputeStats()
	if s.DegreeStdDev > s.AvgDegree {
		t.Errorf("near-regular stddev %.2f exceeds mean %.2f", s.DegreeStdDev, s.AvgDegree)
	}
}

func TestPowerLawClusterHasTriangles(t *testing.T) {
	g := PowerLawCluster(500, 4, 0.8, 5)
	// Count triangles incident to vertex with max degree; must be nonzero.
	tri := 0
	for v := 0; v < g.NumVertices(); v++ {
		nb := g.Neighbors(graph.VertexID(v))
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if g.HasEdge(nb[i], nb[j]) {
					tri++
				}
			}
		}
	}
	if tri == 0 {
		t.Error("PowerLawCluster produced no triangles")
	}
}

func TestCliqueAndGrid(t *testing.T) {
	k := Clique(5)
	if k.NumEdges() != 10 || k.MaxDegree() != 4 {
		t.Errorf("Clique(5): %d edges, max degree %d", k.NumEdges(), k.MaxDegree())
	}
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("Grid(3,4): %d vertices", g.NumVertices())
	}
	// 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17 edges.
	if g.NumEdges() != 17 {
		t.Errorf("Grid(3,4): %d edges, want 17", g.NumEdges())
	}
	// Grids are triangle-free.
	for v := 0; v < g.NumVertices(); v++ {
		nb := g.Neighbors(graph.VertexID(v))
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if g.HasEdge(nb[i], nb[j]) {
					t.Fatal("grid contains a triangle")
				}
			}
		}
	}
}

func TestSkewTargetMonotone(t *testing.T) {
	prev := -1.0
	for s := 0.0; s <= 30; s += 5 {
		a, b, c := SkewTarget(s)
		if a <= prev {
			t.Errorf("SkewTarget not monotone at %v", s)
		}
		if a+b+c >= 1 {
			t.Errorf("SkewTarget(%v) params sum to >= 1", s)
		}
		prev = a
	}
}

func TestChungLuShape(t *testing.T) {
	g := ChungLu(4000, 30000, 0.6, 150, 7)
	s := g.ComputeStats()
	if s.MaxDegree > 3*150 {
		t.Errorf("degree cap blown: max %d", s.MaxDegree)
	}
	if s.Skewness < 1 {
		t.Errorf("Chung-Lu skewness %.2f too low", s.Skewness)
	}
	// Determinism.
	h := ChungLu(4000, 30000, 0.6, 150, 7)
	if h.NumEdges() != g.NumEdges() {
		t.Error("nondeterministic")
	}
	// Hubs must be spread: the top-5 degrees should be within 3x of each
	// other (unlike small-scale R-MAT's single mega-hub).
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.Degree(graph.VertexID(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	if degs[0] > 3*degs[4] {
		t.Errorf("hub concentration: top5 = %v", degs[:5])
	}
}
