// Package task provides the search-tree node representation and the
// workload executor shared by every scheduling policy (BFS, DFS,
// pseudo-DFS, parallel-DFS, Shogun).
//
// A task in the paper's terminology is one search-tree node: matching
// position (depth) plus the graph vertex matched there. Executing a task
// computes the candidate set for the next position via the schedule's set
// operations. The executor here computes both the real data (so simulated
// runs produce exact embedding counts) and a timing profile (which memory
// regions are read/written and how many FU segment pairs the set ops
// consume) that the PE pipeline model turns into simulated time.
package task

import (
	"fmt"
	"sort"

	"shogun/internal/graph"
	"shogun/internal/mem"
	"shogun/internal/pattern"
	"shogun/internal/setops"
)

// Node is one search-tree node / task.
type Node struct {
	Depth  int
	Vertex graph.VertexID
	Parent *Node
	// TreeID identifies the search-tree instance the node belongs to
	// (relevant when a PE explores two merged trees, §4.2, or receives a
	// split subtree, §4.1).
	TreeID int

	// Execution products (valid once Executed):

	// Cand is the raw candidate set for Depth+1 (nil for leaf-depth
	// nodes, which compute nothing).
	Cand []graph.VertexID
	// SpawnLimit is the index bound in Cand after symmetry-breaking
	// truncation: children are drawn from Cand[:SpawnLimit].
	SpawnLimit int
	// NextCand is the enumeration cursor into Cand[:SpawnLimit].
	NextCand int
	// Live counts direct children whose subtrees are incomplete.
	Live int
	// Executed is set once the node's set operations have been played.
	Executed bool
	// Slot is the intermediate-set storage slot (address token) holding
	// Cand; -1 when none is allocated.
	Slot int
	// SharedCand marks an alias task: Cand and Slot belong to an
	// ancestor's stored set (the plan was a pure reference, e.g. the
	// diamond's second apex drawing from the same candidate set). The
	// node owns neither the slice nor the token.
	SharedCand bool

	// SplitLo/SplitHi restrict a received split subtree: only candidates
	// with index in [SplitLo, SplitHi) of the root's Cand are explored.
	// Zero values mean "no restriction" (SplitHi==0).
	SplitLo, SplitHi int
}

// HasMoreCands reports whether the node still has unexplored candidates.
func (n *Node) HasMoreCands() bool {
	return n.Executed && n.NextCand < n.effectiveLimit()
}

func (n *Node) effectiveLimit() int {
	lim := n.SpawnLimit
	if n.SplitHi > 0 && n.SplitHi < lim {
		lim = n.SplitHi
	}
	return lim
}

// SubtreeComplete reports whether the node's whole subtree has finished:
// it executed, has no unexplored candidates, and no live children.
func (n *Node) SubtreeComplete() bool {
	return n.Executed && !n.HasMoreCands() && n.Live == 0
}

// Path writes the matched vertices of the node's ancestor chain (root
// first, the node itself last) into buf, which must have length ≥
// Depth+1. It returns buf[:Depth+1].
func (n *Node) Path(buf []graph.VertexID) []graph.VertexID {
	for cur := n; cur != nil; cur = cur.Parent {
		buf[cur.Depth] = cur.Vertex
	}
	return buf[:n.Depth+1]
}

// Ancestor returns the ancestor at the given depth (may be n itself).
func (n *Node) Ancestor(depth int) *Node {
	cur := n
	for cur != nil && cur.Depth > depth {
		cur = cur.Parent
	}
	if cur == nil || cur.Depth != depth {
		panic(fmt.Sprintf("task: ancestor at depth %d not found from depth %d", depth, n.Depth))
	}
	return cur
}

// ReadClass distinguishes memory regions with different cache policies.
type ReadClass int

const (
	// ReadCSR is graph adjacency data: cached in L2 only (§3.1).
	ReadCSR ReadClass = iota
	// ReadIntermediate is a materialized candidate set: cached in L1.
	ReadIntermediate
)

// Read describes one input-set fetch of a task.
type Read struct {
	Class ReadClass
	Addr  int64
	Bytes int64
}

// Profile is the timing-relevant description of one task's execution.
type Profile struct {
	Reads []Read
	// OutBytes is the size of the produced candidate set (written to the
	// node's slot address).
	OutBytes int64
	// OutAddr is the write target (valid when OutBytes > 0).
	OutAddr int64
	// SegPairs is the set-operation work in divider/IU segment pairs.
	SegPairs int
	// InputLines and OutputLines are the SPM footprint of the task.
	InputLines  int
	OutputLines int
	// IntermediateLines counts input lines read from the intermediate
	// region (the Table 2 metric).
	IntermediateLines int
	// Leaf marks a no-compute task at the last matching position.
	Leaf bool
}

// Workload binds a graph, a schedule and the simulated address layout.
// One Workload is shared by all PEs of an accelerator run (the event loop
// is single-threaded, so the shared scratch buffers are safe).
type Workload struct {
	G   *graph.Graph
	S   *pattern.Schedule
	Map mem.AddressMap

	scratchA []graph.VertexID
	scratchB []graph.VertexID
	pathBuf  []graph.VertexID
	free     [][]graph.VertexID // Cand slice free list
	nodeFree []*Node

	// Task-flow hardware counters (metrics.Verify conservation: every
	// created node is either executed locally or adopted pre-executed
	// from a split transfer, and every node is eventually released).
	NodesCreated  int64
	NodesReleased int64
	Executions    int64
}

// NewWorkload creates a workload; slots are the total number of
// intermediate-set storage slots across all PEs (sizing the address map's
// intermediate region implicitly — slots beyond it would alias, so the
// caller passes the true total).
func NewWorkload(g *graph.Graph, s *pattern.Schedule) *Workload {
	maxSet := g.MaxDegree()
	return &Workload{
		G:        g,
		S:        s,
		Map:      mem.NewAddressMap(int64(g.NumEdges()*2), maxSet),
		scratchA: make([]graph.VertexID, 0, maxSet),
		scratchB: make([]graph.VertexID, 0, maxSet),
		pathBuf:  make([]graph.VertexID, s.Depth()),
	}
}

// LeafDepth returns the last matching position.
func (w *Workload) LeafDepth() int { return w.S.Depth() - 1 }

// NewNode allocates a node (from the free list when possible).
func (w *Workload) NewNode(depth int, v graph.VertexID, parent *Node, treeID int) *Node {
	var n *Node
	if k := len(w.nodeFree); k > 0 {
		n = w.nodeFree[k-1]
		w.nodeFree = w.nodeFree[:k-1]
		*n = Node{}
	} else {
		n = &Node{}
	}
	n.Depth = depth
	n.Vertex = v
	n.Parent = parent
	n.TreeID = treeID
	n.Slot = -1
	if parent != nil {
		parent.Live++
	}
	w.NodesCreated++
	return n
}

// Release returns a completed node's buffers to the free lists and
// detaches it from its parent, returning the parent (whose Live count has
// been decremented) or nil for roots. The caller must have checked
// SubtreeComplete.
func (w *Workload) Release(n *Node) *Node {
	if n.Cand != nil {
		if !n.SharedCand {
			w.free = append(w.free, n.Cand[:0])
		}
		n.Cand = nil
	}
	parent := n.Parent
	if parent != nil {
		parent.Live--
		if parent.Live < 0 {
			panic("task: parent live count underflow")
		}
	}
	n.Parent = nil
	w.nodeFree = append(w.nodeFree, n)
	w.NodesReleased++
	return parent
}

func (w *Workload) candBuf() []graph.VertexID {
	if k := len(w.free); k > 0 {
		b := w.free[k-1]
		w.free = w.free[:k-1]
		return b
	}
	return make([]graph.VertexID, 0, w.G.MaxDegree())
}

// resolve returns the actual set named by ref for the node's path, plus
// its Read descriptor. For RefStored the owning ancestor's slot provides
// the address.
func (w *Workload) resolve(n *Node, ref pattern.SetRef, path []graph.VertexID) ([]graph.VertexID, Read) {
	if ref.Kind == pattern.RefNeighbor {
		u := path[ref.Pos]
		set := w.G.Neighbors(u)
		return set, Read{
			Class: ReadCSR,
			Addr:  w.Map.CSRAddr(w.G.NeighborOffset(u)),
			Bytes: int64(len(set)) * 4,
		}
	}
	owner := n.Ancestor(ref.Pos - 1)
	if !owner.Executed || owner.Cand == nil {
		panic("task: stored set referenced before materialization")
	}
	return owner.Cand, Read{
		Class: ReadIntermediate,
		Addr:  w.Map.SetAddr(owner.Slot),
		Bytes: int64(len(owner.Cand)) * 4,
	}
}

// Execute runs the node's set operations: it fills n.Cand/SpawnLimit and
// returns the timing profile. slot is the storage slot allocated for the
// output set (-1 if the output is not stored — only legal for leaf-depth
// nodes). Execute must be called exactly once per node.
func (w *Workload) Execute(n *Node, slot int) Profile {
	return w.ExecuteReuse(n, slot, nil)
}

// ExecuteReuse is Execute with a caller-provided backing array for the
// profile's Reads list. The PE pipeline passes each in-flight task's
// scratch buffer so the hot path stays allocation-free; Reads only
// escapes to a fresh allocation if a plan needs more input fetches than
// the buffer holds. reads must be empty (length 0) and is otherwise
// treated as append's backing.
func (w *Workload) ExecuteReuse(n *Node, slot int, reads []Read) Profile {
	if n.Executed {
		panic("task: node executed twice")
	}
	n.Executed = true
	w.Executions++
	n.Slot = slot

	var prof Profile
	prof.Reads = reads
	if n.Depth == w.LeafDepth() {
		prof.Leaf = true
		return prof
	}

	childDepth := n.Depth + 1
	plan := &w.S.Plans[childDepth]
	path := n.Path(w.pathBuf)

	if w.PlanIsAlias(childDepth) {
		// Alias plan: the candidate set IS an ancestor's stored set.
		// No set operation, no copy, no token: the node references the
		// owner's data; children (or the leaf counter) read it in
		// place. This is where sibling locality comes from — all
		// siblings re-read the same intermediate lines.
		owner := n.Ancestor(plan.Base.Pos - 1)
		if !owner.Executed || owner.Cand == nil {
			panic("task: alias of unmaterialized set")
		}
		n.Cand = owner.Cand
		n.Slot = owner.Slot
		n.SharedCand = true
		w.truncate(n, plan, path)
		return prof
	}

	base, baseRead := w.resolve(n, plan.Base, path)
	prof.Reads = append(prof.Reads, baseRead)
	if baseRead.Class == ReadIntermediate {
		prof.IntermediateLines += setops.Lines(len(base))
	}
	prof.InputLines += setops.Lines(len(base))

	cur := base
	if len(plan.Steps) == 0 {
		// CSR-base copy plan: materialize the neighbor set as an
		// intermediate result (the "depth-1 tasks fetch the neighbor
		// set as the intermediate results" behaviour of §5.2.1).
		n.Cand = append(w.candBuf(), base...)
	} else {
		for i, op := range plan.Steps {
			operand, opRead := w.resolve(n, op.Ref, path)
			prof.Reads = append(prof.Reads, opRead)
			if opRead.Class == ReadIntermediate {
				prof.IntermediateLines += setops.Lines(len(operand))
			}
			prof.InputLines += setops.Lines(len(operand))
			prof.SegPairs += setops.SegmentPairs(len(cur), len(operand))

			var dst []graph.VertexID
			last := i == len(plan.Steps)-1
			switch {
			case last:
				dst = w.candBuf()
			case i%2 == 0:
				dst = w.scratchA[:0]
			default:
				dst = w.scratchB[:0]
			}
			if op.Sub {
				dst = setops.Subtract(dst, cur, operand)
			} else {
				dst = setops.Intersect(dst, cur, operand)
			}
			switch {
			case last:
				n.Cand = dst
			case i%2 == 0:
				w.scratchA = dst
			default:
				w.scratchB = dst
			}
			cur = dst
		}
	}

	w.truncate(n, plan, path)

	prof.OutBytes = int64(len(n.Cand)) * 4
	prof.OutputLines = setops.Lines(len(n.Cand))
	if slot >= 0 {
		prof.OutAddr = w.Map.SetAddr(slot)
	}
	return prof
}

// truncate applies symmetry-breaking upper bounds: children must be <
// every bounding ancestor's vertex, so the sorted candidate set shrinks
// to a prefix.
func (w *Workload) truncate(n *Node, plan *pattern.Plan, path []graph.VertexID) {
	n.SpawnLimit = len(n.Cand)
	for _, a := range plan.BoundBy {
		limit := path[a]
		k := sort.Search(n.SpawnLimit, func(i int) bool { return n.Cand[i] >= limit })
		if k < n.SpawnLimit {
			n.SpawnLimit = k
		}
	}
}

// PlanIsAlias reports whether the candidate plan for position d is a pure
// reference to an ancestor's stored set (no set operation, no storage of
// its own — the task at position d-1 needs no address token).
func (w *Workload) PlanIsAlias(d int) bool {
	if d <= 0 || d >= w.S.Depth() {
		return false
	}
	p := &w.S.Plans[d]
	return p.Base.Kind == pattern.RefStored && len(p.Steps) == 0
}

// NeedsToken reports whether a task at the given depth requires an
// address token for its output candidate set. Leaf-parent tasks never do:
// for counting workloads the final candidate set is consumed as a size in
// the datapath (GraphPi-style counting; FlexMiner/FINGERS count the last
// level without materializing it), so nothing is stored.
func (w *Workload) NeedsToken(depth int) bool {
	if depth+1 >= w.LeafDepth() {
		return false
	}
	return !w.PlanIsAlias(depth + 1)
}

// ChildValid reports whether candidate v can extend the node to a child at
// Depth+1 (distinctness against non-adjacent matched ancestors; adjacency
// constraints are already encoded in the candidate set).
func (w *Workload) ChildValid(n *Node, v graph.VertexID) bool {
	for _, j := range w.S.Plans[n.Depth+1].Distinct {
		if n.Ancestor(j).Vertex == v {
			return false
		}
	}
	return true
}

// NextChild draws the next valid candidate from the node's cursor,
// skipping pruned (distinctness-violating) candidates. ok is false when
// the cursor is exhausted. pruned reports how many candidates were
// skipped (they still cost the spawn unit a vertex fetch each).
func (w *Workload) NextChild(n *Node) (v graph.VertexID, pruned int, ok bool) {
	lim := n.effectiveLimit()
	for n.NextCand < lim {
		c := n.Cand[n.NextCand]
		n.NextCand++
		if w.ChildValid(n, c) {
			return c, pruned, true
		}
		pruned++
	}
	return 0, pruned, false
}

// CountLeafMatches counts the node's valid children when the node sits at
// the second-to-last position: each valid candidate is one embedding.
// Used for aggregated leaf handling (see DESIGN.md): the count is exact,
// identical to enumerating leaf tasks one by one, but computed in
// O(|Distinct| · log n) — the only invalid candidates are the (at most
// |Distinct|) already-matched vertices, each locatable by binary search
// in the sorted candidate set.
func (w *Workload) CountLeafMatches(n *Node) int64 {
	if n.Depth != w.LeafDepth()-1 {
		panic("task: CountLeafMatches on wrong depth")
	}
	lim := n.effectiveLimit()
	count := int64(lim - n.NextCand)
	window := n.Cand[n.NextCand:lim]
	for _, j := range w.S.Plans[n.Depth+1].Distinct {
		if setops.Contains(window, n.Ancestor(j).Vertex) {
			count--
		}
	}
	n.NextCand = lim
	return count
}

// RootCandLines reports the candidate-set size (in cache lines) of a
// depth-0 node — the data volume a task-tree split must transfer (§4.1).
func RootCandLines(n *Node) int64 {
	return int64(setops.Lines(len(n.Cand)))
}
