package task

import (
	"testing"

	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/pattern"
	"shogun/internal/setops"
)

func buildWorkload(t *testing.T, g *graph.Graph, p pattern.Pattern, induced bool) *Workload {
	t.Helper()
	s, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: induced})
	if err != nil {
		t.Fatal(err)
	}
	return NewWorkload(g, s)
}

func TestNodePathAndAncestor(t *testing.T) {
	g := gen.Clique(6)
	w := buildWorkload(t, g, pattern.FourClique(), false)
	root := w.NewNode(0, 5, nil, 1)
	c1 := w.NewNode(1, 3, root, 1)
	c2 := w.NewNode(2, 2, c1, 1)
	buf := make([]graph.VertexID, 4)
	path := c2.Path(buf)
	want := []graph.VertexID{5, 3, 2}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if c2.Ancestor(0) != root || c2.Ancestor(2) != c2 {
		t.Fatal("Ancestor walk broken")
	}
	if root.Live != 1 || c1.Live != 1 {
		t.Fatalf("live counts: root=%d c1=%d", root.Live, c1.Live)
	}
}

func TestExecuteCliqueChain(t *testing.T) {
	g := gen.Clique(8)
	w := buildWorkload(t, g, pattern.FourClique(), false)
	root := w.NewNode(0, 7, nil, 1)
	prof := w.Execute(root, 0)
	// C1 = N(7): a CSR read, a write of 7 ids.
	if len(prof.Reads) != 1 || prof.Reads[0].Class != ReadCSR {
		t.Fatalf("root reads = %+v", prof.Reads)
	}
	if prof.OutBytes != 7*4 {
		t.Fatalf("root out bytes = %d", prof.OutBytes)
	}
	if len(root.Cand) != 7 {
		t.Fatalf("root candidates = %v", root.Cand)
	}
	// Symmetry bound: children must be < 7 → all 7 qualify.
	if root.SpawnLimit != 7 {
		t.Fatalf("spawn limit = %d", root.SpawnLimit)
	}
	v, pruned, ok := w.NextChild(root)
	if !ok || pruned != 0 || v != 0 {
		t.Fatalf("first child = %d (pruned %d, ok %v)", v, pruned, ok)
	}
	c1 := w.NewNode(1, v, root, 1)
	prof1 := w.Execute(c1, 1)
	// C2 = C1 ∩ N(v1): one intermediate read + one CSR read.
	var inter, csr int
	for _, r := range prof1.Reads {
		if r.Class == ReadIntermediate {
			inter++
		} else {
			csr++
		}
	}
	if inter != 1 || csr != 1 {
		t.Fatalf("c1 reads: %d intermediate, %d csr", inter, csr)
	}
	if prof1.SegPairs == 0 {
		t.Fatal("no IU work recorded for intersection")
	}
	if prof1.IntermediateLines != setops.Lines(len(root.Cand)) {
		t.Fatalf("intermediate lines = %d", prof1.IntermediateLines)
	}
}

func TestExecuteAliasPlan(t *testing.T) {
	// Diamond: C3 aliases C2; the leaf-parent at depth 2 owns nothing.
	g := gen.Clique(8)
	w := buildWorkload(t, g, pattern.Diamond(), false)
	if !w.PlanIsAlias(3) || w.PlanIsAlias(2) || w.PlanIsAlias(1) {
		t.Fatal("alias detection wrong for diamond")
	}
	if w.NeedsToken(2) {
		t.Fatal("leaf-parent should not need a token")
	}
	if !w.NeedsToken(0) || !w.NeedsToken(1) {
		t.Fatal("internal depths need tokens")
	}
	root := w.NewNode(0, 7, nil, 1)
	w.Execute(root, 0)
	v, _, _ := w.NextChild(root)
	c1 := w.NewNode(1, v, root, 1)
	w.Execute(c1, 1)
	v2, _, ok := w.NextChild(c1)
	if !ok {
		t.Fatal("no depth-2 candidate in a clique")
	}
	c2 := w.NewNode(2, v2, c1, 1)
	prof := w.Execute(c2, -1)
	if !c2.SharedCand {
		t.Fatal("alias task not marked shared")
	}
	if c2.Slot != c1.Slot {
		t.Fatalf("alias slot = %d, want owner's %d", c2.Slot, c1.Slot)
	}
	if len(prof.Reads) != 0 || prof.SegPairs != 0 || prof.OutBytes != 0 {
		t.Fatalf("alias profile should be empty: %+v", prof)
	}
	if &c2.Cand[0] != &c1.Cand[0] {
		t.Fatal("alias candidate set is a copy, not a reference")
	}
}

func TestExecuteTwicePanics(t *testing.T) {
	g := gen.Clique(4)
	w := buildWorkload(t, g, pattern.Triangle(), false)
	n := w.NewNode(0, 0, nil, 1)
	w.Execute(n, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double execute did not panic")
		}
	}()
	w.Execute(n, 1)
}

func TestCountLeafMatchesAgainstEnumeration(t *testing.T) {
	g := gen.RMAT(128, 700, 0.6, 0.15, 0.15, 5)
	for _, pat := range []pattern.Pattern{pattern.Triangle(), pattern.TailedTriangle(), pattern.Diamond(), pattern.FourCycle()} {
		for _, induced := range []bool{false, true} {
			w := buildWorkload(t, g, pat, induced)
			// Walk one level manually for a handful of roots and compare
			// O(log) counting against explicit enumeration.
			for root := graph.VertexID(0); root < 40; root++ {
				r := w.NewNode(0, root, nil, 1)
				w.Execute(r, 0)
				for {
					v, _, ok := w.NextChild(r)
					if !ok {
						break
					}
					c := w.NewNode(1, v, r, 1)
					if w.LeafDepth()-1 == 1 {
						w.Execute(c, -1)
						// Enumerate first.
						var want int64
						lim := c.SpawnLimit
						for i := 0; i < lim; i++ {
							if w.ChildValid(c, c.Cand[i]) {
								want++
							}
						}
						got := w.CountLeafMatches(c)
						if got != want {
							t.Fatalf("%s root %d v %d: fast count %d != enumerated %d", pat.Name(), root, v, got, want)
						}
					}
					w.Release(c)
				}
				// Drain the root so release is legal.
				r.NextCand = r.SpawnLimit
				if !r.SubtreeComplete() {
					t.Fatal("root not complete after drain")
				}
				w.Release(r)
			}
		}
	}
}

func TestSplitRangeLimitsChildren(t *testing.T) {
	g := gen.Clique(10)
	w := buildWorkload(t, g, pattern.Triangle(), false)
	n := w.NewNode(0, 9, nil, 1)
	w.Execute(n, 0)
	if n.SpawnLimit != 9 {
		t.Fatalf("spawn limit = %d", n.SpawnLimit)
	}
	n.NextCand, n.SplitLo, n.SplitHi = 2, 2, 5
	var got []graph.VertexID
	for {
		v, _, ok := w.NextChild(n)
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 3 || got[0] != n.Cand[2] || got[2] != n.Cand[4] {
		t.Fatalf("split children = %v", got)
	}
	if n.HasMoreCands() {
		t.Fatal("split range not exhausted")
	}
}

func TestNodeFreelistReuse(t *testing.T) {
	g := gen.Clique(4)
	w := buildWorkload(t, g, pattern.Triangle(), false)
	n := w.NewNode(0, 1, nil, 1)
	w.Execute(n, 0)
	n.NextCand = n.SpawnLimit
	w.Release(n)
	n2 := w.NewNode(1, 2, nil, 2)
	if n2 != n {
		t.Log("freelist did not reuse (allowed but unexpected)")
	}
	if n2.Executed || n2.Cand != nil || n2.Slot != -1 {
		t.Fatalf("reused node not reset: %+v", n2)
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	g := gen.Clique(4)
	w := buildWorkload(t, g, pattern.Triangle(), false)
	root := w.NewNode(0, 0, nil, 1)
	child := w.NewNode(1, 1, root, 1)
	w.Release(child)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	child2 := w.NewNode(1, 2, root, 1)
	w.Release(child2)
	w.Release(&Node{Parent: root}) // parent.Live now negative
}
