package mine

import (
	"math/big"
	"testing"

	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/pattern"
)

func TestCatalogSizes(t *testing.T) {
	// Known counts of connected non-isomorphic graphs: 2 (k=3), 6 (k=4),
	// 21 (k=5), 112 (k=6).
	want := map[int]int{3: 2, 4: 6, 5: 21, 6: 112}
	for k, n := range want {
		ps, err := pattern.AllConnected(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(ps) != n {
			t.Errorf("catalog(%d) = %d patterns, want %d", k, len(ps), n)
		}
		// Pairwise non-isomorphic.
		for i := range ps {
			for j := i + 1; j < len(ps); j++ {
				if pattern.Isomorphic(ps[i], ps[j]) {
					t.Errorf("catalog(%d): %s ~ %s", k, ps[i].Name(), ps[j].Name())
				}
			}
		}
	}
	if _, err := pattern.AllConnected(2); err == nil {
		t.Error("catalog accepted k=2")
	}
}

func TestCatalogNamesWellKnown(t *testing.T) {
	ps, _ := pattern.AllConnected(4)
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name()] = true
	}
	for _, want := range []string{"tt", "dia", "4cyc", "4cl", "path4", "star3"} {
		if !names[want] {
			t.Errorf("catalog(4) missing well-known name %s (have %v)", want, names)
		}
	}
}

func TestCensusInvariants(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er":   gen.ErdosRenyi(40, 140, 1),
		"plc":  gen.PowerLawCluster(40, 4, 0.6, 2),
		"k7":   gen.Clique(7),
		"grid": gen.Grid(4, 4),
	}
	for gname, g := range graphs {
		for k := 3; k <= 4; k++ {
			entries, err := Census(g, k, 2)
			if err != nil {
				t.Fatal(err)
			}
			// Invariant 1: induced counts sum to the number of connected
			// k-sets (independent ESU oracle).
			total := ConnectedInducedTotal(entries)
			oracle, err := CountConnectedKSets(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if total != oracle {
				t.Errorf("%s k=%d: induced total %d != connected k-sets %d", gname, k, total, oracle)
			}
			// Invariant 2: the Möbius relation predicts every
			// edge-induced count from the induced column.
			pred, err := EdgeInducedFromInduced(entries)
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range entries {
				if pred[i].Cmp(big.NewInt(e.EdgeInduced)) != 0 {
					t.Errorf("%s k=%d %s: predicted edge-induced %v != measured %d",
						gname, k, e.Pattern.Name(), pred[i], e.EdgeInduced)
				}
			}
		}
	}
}

func TestCensusKnownValues(t *testing.T) {
	// K6: every connected 3-set is a triangle; C(6,3)=20.
	k6 := gen.Clique(6)
	entries, err := Census(k6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch e.Pattern.Name() {
		case "tc":
			if e.Induced != 20 || e.EdgeInduced != 20 {
				t.Errorf("K6 triangles: %+v", e)
			}
		case "path3":
			if e.Induced != 0 {
				t.Errorf("K6 induced paths: %d", e.Induced)
			}
			if e.EdgeInduced != 60 { // 3 per triangle
				t.Errorf("K6 edge-induced paths: %d", e.EdgeInduced)
			}
		}
	}
	// Grid 3x3: triangle-free; connected 3-sets are all paths.
	grid := gen.Grid(3, 3)
	entries, err = Census(grid, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Pattern.Name() == "tc" && e.Induced != 0 {
			t.Errorf("grid triangles: %d", e.Induced)
		}
		if e.Pattern.Name() == "path3" && e.Induced == 0 {
			t.Error("grid has no paths?")
		}
	}
}

// TestIEPMatchesDirectCensus: induced counts derived by inclusion-
// exclusion from edge-induced counts must match direct induced mining.
func TestIEPMatchesDirectCensus(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er":  gen.ErdosRenyi(40, 150, 9),
		"plc": gen.PowerLawCluster(40, 4, 0.7, 8),
		"k7":  gen.Clique(7),
	}
	for gname, g := range graphs {
		for k := 3; k <= 4; k++ {
			direct, err := Census(g, k, 1)
			if err != nil {
				t.Fatal(err)
			}
			iep, err := CensusViaIEP(g, k, 1)
			if err != nil {
				t.Fatal(err)
			}
			for i := range direct {
				if direct[i].Induced != iep[i].Induced || direct[i].EdgeInduced != iep[i].EdgeInduced {
					t.Errorf("%s k=%d %s: direct (%d,%d) != IEP (%d,%d)",
						gname, k, direct[i].Pattern.Name(),
						direct[i].Induced, direct[i].EdgeInduced,
						iep[i].Induced, iep[i].EdgeInduced)
				}
			}
		}
	}
}

func TestIEPInputValidation(t *testing.T) {
	ps, _ := pattern.AllConnected(3)
	if _, err := InducedFromEdgeInduced(ps, []int64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := InducedFromEdgeInduced(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	// Wrong order must be rejected.
	rev := []pattern.Pattern{ps[1], ps[0]}
	if _, err := InducedFromEdgeInduced(rev, []int64{0, 0}); err == nil {
		t.Error("unsorted catalog accepted")
	}
}
