package mine

import (
	"fmt"
	"math/big"

	"shogun/internal/graph"
	"shogun/internal/pattern"
)

// CensusEntry is one row of a graphlet census.
type CensusEntry struct {
	Pattern pattern.Pattern
	// Induced counts vertex-induced occurrences; EdgeInduced counts
	// edge-induced (subgraph) occurrences.
	Induced     int64
	EdgeInduced int64
}

// Census counts every connected k-vertex graphlet of g, both vertex- and
// edge-induced — the standard motif-census workload (k = 3..5 practical).
// workers parallelizes each pattern's mining (0 = GOMAXPROCS).
func Census(g *graph.Graph, k, workers int) ([]CensusEntry, error) {
	patterns, err := pattern.AllConnected(k)
	if err != nil {
		return nil, err
	}
	out := make([]CensusEntry, 0, len(patterns))
	for _, p := range patterns {
		se, err := pattern.BuildWith(p, pattern.BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("mine: census %s: %w", p.Name(), err)
		}
		sv, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: true})
		if err != nil {
			return nil, err
		}
		out = append(out, CensusEntry{
			Pattern:     p,
			EdgeInduced: ParallelCount(g, se, workers).Embeddings,
			Induced:     ParallelCount(g, sv, workers).Embeddings,
		})
	}
	return out, nil
}

// ConnectedInducedTotal verifies a census invariant: the vertex-induced
// counts of all connected k-patterns sum to the number of connected
// k-vertex induced subgraphs of g (every connected k-set realizes exactly
// one pattern). Exposed for tests and sanity checks.
func ConnectedInducedTotal(entries []CensusEntry) int64 {
	var total int64
	for _, e := range entries {
		total += e.Induced
	}
	return total
}

// CountConnectedKSets counts k-vertex subsets of g that induce a
// connected subgraph, by direct enumeration over connected extensions —
// an independent oracle for the census invariant. Exponential; intended
// for small graphs.
func CountConnectedKSets(g *graph.Graph, k int) (int64, error) {
	n := g.NumVertices()
	if n > 2000 {
		return 0, fmt.Errorf("mine: graph too large for k-set enumeration")
	}
	// Enumerate connected sets via the standard "extension from a root
	// with forbidden smaller vertices" method (Wernicke's ESU).
	var count int64
	var extend func(sub []graph.VertexID, ext map[graph.VertexID]bool, root graph.VertexID)
	extend = func(sub []graph.VertexID, ext map[graph.VertexID]bool, root graph.VertexID) {
		if len(sub) == k {
			count++
			return
		}
		// Iterate a snapshot: ext mutates during recursion.
		keys := make([]graph.VertexID, 0, len(ext))
		for v := range ext {
			keys = append(keys, v)
		}
		sortVertexIDs(keys)
		for i, v := range keys {
			// New extension: remaining keys beyond v plus v's exclusive
			// neighbors greater than root and not adjacent to sub.
			next := map[graph.VertexID]bool{}
			for _, u := range keys[i+1:] {
				next[u] = true
			}
			inSub := map[graph.VertexID]bool{}
			for _, u := range sub {
				inSub[u] = true
			}
			adjSub := map[graph.VertexID]bool{}
			for _, u := range sub {
				for _, w := range g.Neighbors(u) {
					adjSub[w] = true
				}
			}
			for _, w := range g.Neighbors(v) {
				if w > root && !inSub[w] && w != v && !adjSub[w] {
					next[w] = true
				}
			}
			extend(append(sub, v), next, root)
		}
	}
	for v := 0; v < n; v++ {
		root := graph.VertexID(v)
		ext := map[graph.VertexID]bool{}
		for _, u := range g.Neighbors(root) {
			if u > root {
				ext[u] = true
			}
		}
		extend([]graph.VertexID{root}, ext, root)
	}
	return count, nil
}

func sortVertexIDs(v []graph.VertexID) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// EdgeInducedFromInduced verifies the Möbius-style relation between the
// two census columns: the edge-induced count of pattern P equals the sum
// over catalog patterns Q of (number of subgraphs of Q isomorphic to P,
// spanning all of Q's vertices) × induced count of Q. Returns the
// predicted edge-induced counts in catalog order. big.Int avoids overflow
// for dense graphs.
func EdgeInducedFromInduced(entries []CensusEntry) ([]*big.Int, error) {
	k := 0
	if len(entries) > 0 {
		k = entries[0].Pattern.N()
	}
	cat := make([]pattern.Pattern, len(entries))
	for i, e := range entries {
		if e.Pattern.N() != k {
			return nil, fmt.Errorf("mine: mixed pattern sizes in census")
		}
		cat[i] = e.Pattern
	}
	out := make([]*big.Int, len(entries))
	for i, p := range cat {
		sum := big.NewInt(0)
		for j, q := range cat {
			c := spanningCopies(p, q)
			if c == 0 {
				continue
			}
			term := big.NewInt(entries[j].Induced)
			term.Mul(term, big.NewInt(c))
			sum.Add(sum, term)
		}
		out[i] = sum
		_ = p
	}
	return out, nil
}

// spanningCopies counts subgraphs of q isomorphic to p using all of q's
// vertices: permutations σ with p's edges ⊆ σ(q)'s edges, divided by
// |Aut(p)|.
func spanningCopies(p, q pattern.Pattern) int64 {
	n := p.N()
	perm := make([]int, n)
	used := make([]bool, n)
	var maps int64
	var rec func(pos int)
	rec = func(pos int) {
		if pos == n {
			maps++
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			ok := true
			for prev := 0; prev < pos; prev++ {
				if p.HasEdge(prev, pos) && !q.HasEdge(perm[prev], v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[v] = true
			perm[pos] = v
			rec(pos + 1)
			used[v] = false
		}
	}
	rec(0)
	return maps / int64(len(p.Automorphisms()))
}
