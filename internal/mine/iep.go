package mine

import (
	"fmt"
	"math/big"

	"shogun/internal/graph"
	"shogun/internal/pattern"
)

// InducedFromEdgeInduced recovers every vertex-induced count of a
// k-graphlet catalog from the edge-induced counts alone, by solving the
// triangular linear system
//
//	N_edge(P) = Σ_Q  c(P,Q) · N_ind(Q)
//
// where Q ranges over catalog patterns with at least P's edges and
// c(P,Q) counts spanning copies of P inside Q (c(P,P)=1). This is the
// inclusion–exclusion trick GraphPi's IEP optimization builds on:
// edge-induced mining needs no subtraction operations, so all induced
// counts come from the cheaper runs.
//
// patterns must be sorted by ascending edge count (pattern.AllConnected's
// order). Returns the induced counts aligned with the input.
func InducedFromEdgeInduced(patterns []pattern.Pattern, edgeCounts []int64) ([]*big.Int, error) {
	n := len(patterns)
	if n == 0 || len(edgeCounts) != n {
		return nil, fmt.Errorf("mine: need matching patterns and counts")
	}
	for i := 1; i < n; i++ {
		if patterns[i].NumEdges() < patterns[i-1].NumEdges() {
			return nil, fmt.Errorf("mine: patterns not sorted by edge count")
		}
	}
	// Back-substitute from the densest pattern (the k-clique, which has
	// no proper supergraph) downward.
	induced := make([]*big.Int, n)
	for i := n - 1; i >= 0; i-- {
		v := big.NewInt(edgeCounts[i])
		for j := i + 1; j < n; j++ {
			if patterns[j].NumEdges() <= patterns[i].NumEdges() {
				continue
			}
			c := spanningCopies(patterns[i], patterns[j])
			if c == 0 {
				continue
			}
			term := new(big.Int).Mul(big.NewInt(c), induced[j])
			v.Sub(v, term)
		}
		induced[i] = v
	}
	return induced, nil
}

// CensusViaIEP runs a k-graphlet census mining only edge-induced
// schedules and deriving the vertex-induced column through
// InducedFromEdgeInduced — typically faster than mining the subtraction-
// heavy induced schedules directly, and an end-to-end validation of the
// IEP relation.
func CensusViaIEP(g *graph.Graph, k, workers int) ([]CensusEntry, error) {
	patterns, err := pattern.AllConnected(k)
	if err != nil {
		return nil, err
	}
	edgeCounts := make([]int64, len(patterns))
	entries := make([]CensusEntry, len(patterns))
	for i, p := range patterns {
		s, err := pattern.BuildWith(p, pattern.BuildOptions{})
		if err != nil {
			return nil, err
		}
		edgeCounts[i] = ParallelCount(g, s, workers).Embeddings
		entries[i] = CensusEntry{Pattern: p, EdgeInduced: edgeCounts[i]}
	}
	induced, err := InducedFromEdgeInduced(patterns, edgeCounts)
	if err != nil {
		return nil, err
	}
	for i := range entries {
		if !induced[i].IsInt64() {
			return nil, fmt.Errorf("mine: induced count of %s overflows int64", patterns[i].Name())
		}
		entries[i].Induced = induced[i].Int64()
	}
	return entries, nil
}
