package mine

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"shogun/internal/gen"
	"shogun/internal/pattern"
	"shogun/internal/sim"
)

func triangle(t *testing.T) *pattern.Schedule {
	t.Helper()
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParallelCountContextMatchesPlain(t *testing.T) {
	g := gen.RMAT(1<<10, 8000, 0.57, 0.17, 0.17, 3)
	s := triangle(t)
	want := NewMiner(g, s).Run().Embeddings
	for _, workers := range []int{1, 4} {
		got, err := ParallelCountContext(context.Background(), g, s, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Embeddings != want {
			t.Fatalf("workers=%d: %d embeddings, want %d", workers, got.Embeddings, want)
		}
	}
}

func TestParallelCountContextCancelled(t *testing.T) {
	g := gen.RMAT(1<<11, 16000, 0.57, 0.17, 0.17, 5)
	s := triangle(t)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := ParallelCountContext(ctx, g, s, workers)
		if !errors.Is(err, sim.ErrCancelled) {
			t.Fatalf("workers=%d: err = %v, want ErrCancelled", workers, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: result returned alongside cancellation", workers)
		}
	}
}

func TestParallelCountContextPanicContained(t *testing.T) {
	g := gen.RMAT(1<<9, 3000, 0.57, 0.17, 0.17, 9)
	s := triangle(t)
	atomic.StoreInt64(&testFailRoot, 100)
	defer atomic.StoreInt64(&testFailRoot, -1)
	for _, workers := range []int{1, 4} {
		res, err := ParallelCountContext(context.Background(), g, s, workers)
		var ie *sim.InvariantError
		if !errors.As(err, &ie) {
			t.Fatalf("workers=%d: err = %T %v, want *sim.InvariantError", workers, err, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: result returned alongside contained panic", workers)
		}
		if !strings.Contains(panicText(ie.PanicValue), "injected fault at root 100") {
			t.Fatalf("workers=%d: PanicValue = %v", workers, ie.PanicValue)
		}
		if ie.Stack == "" {
			t.Fatalf("workers=%d: missing stack", workers)
		}
	}
	// ParallelCount (the panicking wrapper) re-raises.
	defer func() {
		if recover() == nil {
			t.Fatal("ParallelCount did not re-raise the contained panic")
		}
	}()
	ParallelCount(g, s, 4)
}

func panicText(v interface{}) string {
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}
