// Package mine implements software graph pattern mining. It serves two
// roles in this repository:
//
//   - a golden model: every accelerator simulation's embedding count is
//     checked against the schedule-driven miner here, and the miner itself
//     is checked against a brute-force enumerator;
//   - a workload profiler: it collects the per-task statistics that the
//     paper's Table 2 reports (average intermediate-data cache lines per
//     task).
package mine

import (
	"fmt"

	"shogun/internal/graph"
	"shogun/internal/pattern"
	"shogun/internal/setops"
)

// Result summarizes one mining run.
type Result struct {
	// Embeddings is the number of unique subgraphs isomorphic to the
	// pattern (after symmetry breaking each is found exactly once).
	Embeddings int64
	// TasksPerDepth counts search-tree nodes per matching position,
	// including leaf tasks at the last position.
	TasksPerDepth []int64
	// IntermediateLinesPerDepth accumulates, per position, the number
	// of intermediate-data cache lines read by tasks of that position
	// (RefStored inputs only, matching Table 2's accounting).
	IntermediateLinesPerDepth []int64
	// SetOpElements accumulates the total elements streamed through set
	// operations (a machine-independent work measure).
	SetOpElements int64
}

// Tasks reports the total search-tree node count.
func (r *Result) Tasks() int64 {
	var t int64
	for _, n := range r.TasksPerDepth {
		t += n
	}
	return t
}

// AvgIntermediateLinesPerTask reports the Table 2 metric: the average
// number of input intermediate-data cache lines per task.
func (r *Result) AvgIntermediateLinesPerTask() float64 {
	var lines int64
	for _, l := range r.IntermediateLinesPerDepth {
		lines += l
	}
	t := r.Tasks()
	if t == 0 {
		return 0
	}
	return float64(lines) / float64(t)
}

// Visitor observes found embeddings. m holds the matched graph vertices by
// matching position. Implementations must not retain m.
type Visitor func(m []graph.VertexID)

// Miner executes a schedule over a graph with a DFS strategy.
type Miner struct {
	g *graph.Graph
	s *pattern.Schedule

	matched []graph.VertexID
	// sets[d] stores the candidate set computed for position d.
	sets     [][]graph.VertexID
	scratch  []graph.VertexID
	scratch2 []graph.VertexID
	visitor  Visitor
	res      Result
	// kern is the hybrid set-kernel context (see kernels.go).
	kern kernelContext
}

// NewMiner creates a miner for schedule s over graph g.
func NewMiner(g *graph.Graph, s *pattern.Schedule) *Miner {
	n := s.Depth()
	m := &Miner{
		g:       g,
		s:       s,
		matched: make([]graph.VertexID, n),
		sets:    make([][]graph.VertexID, n),
	}
	for d := range m.sets {
		m.sets[d] = make([]graph.VertexID, 0, g.MaxDegree())
	}
	m.scratch = make([]graph.VertexID, 0, g.MaxDegree())
	m.scratch2 = make([]graph.VertexID, 0, g.MaxDegree())
	m.res.TasksPerDepth = make([]int64, n)
	m.res.IntermediateLinesPerDepth = make([]int64, n)
	m.initKernels()
	return m
}

// SetVisitor installs a callback invoked once per found embedding.
func (m *Miner) SetVisitor(v Visitor) { m.visitor = v }

// Run mines the whole graph and returns the result.
func (m *Miner) Run() *Result {
	for v := 0; v < m.g.NumVertices(); v++ {
		m.RunRoot(graph.VertexID(v))
	}
	return &m.res
}

// RunRoot explores the single search tree rooted at vertex root
// (matching position 0). Results accumulate across calls.
func (m *Miner) RunRoot(root graph.VertexID) {
	m.res.TasksPerDepth[0]++
	m.matched[0] = root
	m.extend(1)
}

// Result returns the statistics accumulated so far.
func (m *Miner) Result() *Result { return &m.res }

// computeCandidates evaluates the plan for position d, leaving the result
// in m.sets[d], and returns it. It also accrues the task-level statistics
// for the task at position d-1 (which is the task performing this work).
// Set operations route through the kernel dispatcher, which picks merge,
// gallop, or bitmap per operand pair; SetOpElements deliberately counts
// the logical elements of both inputs regardless of the kernel chosen, so
// the statistic is kernel-independent.
func (m *Miner) computeCandidates(d int) []graph.VertexID {
	plan := &m.s.Plans[d]
	m.invalidateStoredBits(d)
	base := m.operand(plan.Base)
	if plan.Base.Kind == pattern.RefStored {
		m.res.IntermediateLinesPerDepth[d-1] += int64(setops.Lines(len(base.List)))
	}
	if len(plan.Steps) == 0 {
		// Alias plan: the candidate set equals an existing set.
		// Materialize into sets[d], mirroring the hardware, which
		// re-stores the set under a fresh address token. The copy keeps
		// the original's bitset view (hub or alias bits are stable).
		m.sets[d] = append(m.sets[d][:0], base.List...)
		if m.kern.enabled {
			m.kern.aliasBits[d] = base.Bits
		}
		return m.sets[d]
	}
	cur := base
	for i, op := range plan.Steps {
		operand := m.operand(op.Ref)
		if op.Ref.Kind == pattern.RefStored {
			m.res.IntermediateLinesPerDepth[d-1] += int64(setops.Lines(len(operand.List)))
		}
		m.res.SetOpElements += int64(len(cur.List) + len(operand.List))
		// Alternate between two scratch buffers for intermediate fold
		// steps so no step reads and writes the same backing array;
		// the final step always lands in sets[d] (whose array is never
		// an input: base and operands come from other positions).
		var dst []graph.VertexID
		last := i == len(plan.Steps)-1
		switch {
		case last:
			dst = m.sets[d][:0]
		case i%2 == 0:
			dst = m.scratch[:0]
		default:
			dst = m.scratch2[:0]
		}
		if op.Sub {
			dst = m.kern.disp.Subtract(dst, cur, operand)
		} else {
			dst = m.kern.disp.Intersect(dst, cur, operand)
		}
		switch {
		case last:
			m.sets[d] = dst
		case i%2 == 0:
			m.scratch = dst
		default:
			m.scratch2 = dst
		}
		cur = setops.Operand{List: dst}
	}
	return m.sets[d]
}

// candidatesFor returns the bounded candidate list for position d: the
// computed candidate set truncated by symmetry-breaking upper bounds.
// Distinctness against earlier matched vertices is checked per element by
// the caller (the Distinct list is tiny).
func (m *Miner) candidatesFor(d int, set []graph.VertexID) []graph.VertexID {
	plan := &m.s.Plans[d]
	bounded := set
	for _, a := range plan.BoundBy {
		bounded = setops.Bound(bounded, m.matched[a])
	}
	return bounded
}

func (m *Miner) isDistinct(d int, v graph.VertexID) bool {
	for _, j := range m.s.Plans[d].Distinct {
		if m.matched[j] == v {
			return false
		}
	}
	return true
}

// extend matches position d against the current partial embedding. The
// caller has filled matched[0..d-1].
func (m *Miner) extend(d int) {
	last := d == m.s.Depth()-1
	if last && m.visitor == nil && m.kern.enabled {
		// Counting-only leaf: fold and count through the kernel
		// dispatcher without materializing the final candidate set.
		count := m.countLeaf(d)
		m.res.TasksPerDepth[d] += count
		m.res.Embeddings += count
		return
	}
	set := m.computeCandidates(d)
	cands := m.candidatesFor(d, set)
	if last {
		if m.visitor == nil {
			// Counting only (hybrid kernels disabled): all bounded
			// candidates match except the (few) already-matched
			// vertices, found by binary search.
			count := int64(len(cands))
			for _, j := range m.s.Plans[d].Distinct {
				if setops.Contains(cands, m.matched[j]) {
					count--
				}
			}
			m.res.TasksPerDepth[d] += count
			m.res.Embeddings += count
			return
		}
		for _, v := range cands {
			if !m.isDistinct(d, v) {
				continue
			}
			m.res.TasksPerDepth[d]++
			m.res.Embeddings++
			m.matched[d] = v
			m.visitor(m.matched)
		}
		return
	}
	// Candidate sets of deeper positions may reuse m.sets[d]; the
	// recursion below never overwrites sets of shallower positions, so
	// iterating over `cands` (a view of m.sets[d]) is safe: stored sets
	// are only written by computeCandidates(d') for d' > d.
	for i := 0; i < len(cands); i++ {
		v := cands[i]
		if !m.isDistinct(d, v) {
			continue
		}
		m.res.TasksPerDepth[d]++
		m.matched[d] = v
		m.extend(d + 1)
	}
}

// Count is a convenience wrapper: mine graph g for schedule s and return
// the embedding count.
func Count(g *graph.Graph, s *pattern.Schedule) int64 {
	return NewMiner(g, s).Run().Embeddings
}

// CountPattern builds the default schedule for p (induced or not) and
// counts embeddings in g.
func CountPattern(g *graph.Graph, p pattern.Pattern, induced bool) (int64, error) {
	s, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: induced})
	if err != nil {
		return 0, err
	}
	return Count(g, s), nil
}

// BruteForceCount enumerates all injective vertex mappings and counts
// unique embeddings (up to automorphism) directly: the number of
// isomorphic (or induced-isomorphic) copies equals the number of
// satisfying injective mappings divided by |Aut(p)|. It is exponential and
// intended only as a test oracle on small graphs.
func BruteForceCount(g *graph.Graph, p pattern.Pattern, induced bool) (int64, error) {
	n := p.N()
	if g.NumVertices() > 2000 {
		return 0, fmt.Errorf("mine: graph too large for brute force (%d vertices)", g.NumVertices())
	}
	auts := int64(len(p.Automorphisms()))
	assigned := make([]graph.VertexID, n)
	var mappings int64
	var rec func(pos int)
	rec = func(pos int) {
		if pos == n {
			mappings++
			return
		}
		for v := 0; v < g.NumVertices(); v++ {
			vid := graph.VertexID(v)
			ok := true
			for j := 0; j < pos && ok; j++ {
				if assigned[j] == vid {
					ok = false
					break
				}
				pe := p.HasEdge(j, pos)
				ge := g.HasEdge(assigned[j], vid)
				if pe && !ge {
					ok = false
				}
				if induced && !pe && ge {
					ok = false
				}
			}
			if !ok {
				continue
			}
			assigned[pos] = vid
			rec(pos + 1)
		}
	}
	rec(0)
	if mappings%auts != 0 {
		return 0, fmt.Errorf("mine: brute force found %d mappings not divisible by |Aut|=%d", mappings, auts)
	}
	return mappings / auts, nil
}
