package mine

import (
	"math/rand"
	"testing"

	"shogun/internal/gen"
	"shogun/internal/pattern"
)

func TestParallelCountMatchesSerial(t *testing.T) {
	g := gen.RMAT(1<<10, 6000, 0.6, 0.15, 0.15, 13)
	for _, p := range []pattern.Pattern{pattern.Triangle(), pattern.FourClique(), pattern.Diamond()} {
		s, err := pattern.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		serial := NewMiner(g, s).Run()
		par := ParallelCount(g, s, 4)
		if par.Embeddings != serial.Embeddings {
			t.Errorf("%s: parallel %d != serial %d", s.Name, par.Embeddings, serial.Embeddings)
		}
		if par.Tasks() != serial.Tasks() {
			t.Errorf("%s: task counts differ: %d != %d", s.Name, par.Tasks(), serial.Tasks())
		}
		if par.SetOpElements != serial.SetOpElements {
			t.Errorf("%s: set-op accounting differs", s.Name)
		}
	}
	// workers <= 1 falls back to serial.
	s, _ := pattern.Build(pattern.Triangle())
	if ParallelCount(g, s, 1).Embeddings != NewMiner(g, s).Run().Embeddings {
		t.Error("single-worker fallback broken")
	}
}

// TestRandomPatternsAgainstBruteForce generates random connected patterns
// and validates the full schedule pipeline (order, restrictions, plans)
// against naive enumeration — the strongest property test of the
// GraphPi-substitute.
func TestRandomPatternsAgainstBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(99))
	g := gen.ErdosRenyi(18, 60, 77)
	tried := 0
	for tried < 25 {
		n := 3 + rng.Intn(3) // 3..5 vertices
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.6 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		p, err := pattern.NewPattern("rand", n, edges)
		if err != nil || !p.Connected() {
			continue
		}
		tried++
		for _, induced := range []bool{false, true} {
			want, err := BruteForceCount(g, p, induced)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CountPattern(g, p, induced)
			if err != nil {
				t.Fatalf("pattern %s: %v", p, err)
			}
			if got != want {
				t.Fatalf("random pattern %s induced=%v: miner=%d brute=%d", p, induced, got, want)
			}
		}
	}
}

// TestOptimizedSchedulesAgree verifies the cost-model optimizer preserves
// counts for every evaluated pattern.
func TestOptimizedSchedulesAgree(t *testing.T) {
	g := gen.RMAT(256, 1400, 0.6, 0.15, 0.15, 21)
	shape := pattern.ShapeOf(g.NumVertices(), g.NumEdges())
	for _, p := range []pattern.Pattern{pattern.Triangle(), pattern.FourClique(), pattern.TailedTriangle(), pattern.Diamond(), pattern.FourCycle(), pattern.House()} {
		for _, induced := range []bool{false, true} {
			def, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: induced})
			if err != nil {
				t.Fatal(err)
			}
			opt, err := pattern.Optimize(p, shape, induced)
			if err != nil {
				t.Fatal(err)
			}
			a, b := Count(g, def), Count(g, opt)
			if a != b {
				t.Errorf("%s induced=%v: default order %v=%d, optimized %v=%d",
					p.Name(), induced, def.Order, a, opt.Order, b)
			}
		}
	}
}

// TestDegeneracyOrientationSpeedsCliques checks the graph-ordering
// substrate integrates with mining: counts are invariant under the
// degeneracy relabeling, and the relabeled graph generates no more
// search-tree nodes for clique patterns.
func TestDegeneracyOrientationSpeedsCliques(t *testing.T) {
	g := gen.RMAT(1<<10, 8000, 0.62, 0.14, 0.14, 5)
	h, err := g.OrientByDegeneracy()
	if err != nil {
		t.Fatal(err)
	}
	s, _ := pattern.Build(pattern.FourClique())
	rg := NewMiner(g, s).Run()
	rh := NewMiner(h, s).Run()
	if rg.Embeddings != rh.Embeddings {
		t.Fatalf("relabel changed count: %d != %d", rg.Embeddings, rh.Embeddings)
	}
	t.Logf("tree nodes: natural=%d degeneracy=%d", rg.Tasks(), rh.Tasks())
}
