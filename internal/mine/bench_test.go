package mine

import (
	"testing"

	"shogun/internal/gen"
	"shogun/internal/pattern"
)

func benchMine(b *testing.B, p pattern.Pattern, workers int) {
	g := gen.RMAT(1<<12, 25000, 0.6, 0.15, 0.15, 7)
	s, err := pattern.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if workers > 1 {
			ParallelCount(g, s, workers)
		} else {
			NewMiner(g, s).Run()
		}
	}
}

func BenchmarkMineTriangle(b *testing.B)     { benchMine(b, pattern.Triangle(), 1) }
func BenchmarkMineFourClique(b *testing.B)   { benchMine(b, pattern.FourClique(), 1) }
func BenchmarkMineDiamond(b *testing.B)      { benchMine(b, pattern.Diamond(), 1) }
func BenchmarkMineTriangle4Way(b *testing.B) { benchMine(b, pattern.Triangle(), 4) }
