package mine

import (
	"testing"

	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/pattern"
)

func benchMine(b *testing.B, p pattern.Pattern, workers int) {
	g := gen.RMAT(1<<12, 25000, 0.6, 0.15, 0.15, 7)
	s, err := pattern.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if workers > 1 {
			ParallelCount(g, s, workers)
		} else {
			NewMiner(g, s).Run()
		}
	}
}

func BenchmarkMineTriangle(b *testing.B)     { benchMine(b, pattern.Triangle(), 1) }
func BenchmarkMineFourClique(b *testing.B)   { benchMine(b, pattern.FourClique(), 1) }
func BenchmarkMineDiamond(b *testing.B)      { benchMine(b, pattern.Diamond(), 1) }
func BenchmarkMineTriangle4Way(b *testing.B) { benchMine(b, pattern.Triangle(), 4) }

// Hybrid-vs-baseline benchmarks over the quick-mode R-MAT analogues of
// LiveJournal ("lj") and Orkut ("or") — the same generator parameters
// internal/bench uses. The *Hybrid/*MergeOnly pairs are the speedup
// evidence for the kernel dispatcher on the triangle-count hot path.
func quickLJ() *graph.Graph { return gen.RMAT(1<<12, 20000, 0.55, 0.17, 0.17, 105) }
func quickOR() *graph.Graph { return gen.RMAT(1<<11, 24000, 0.45, 0.22, 0.22, 106) }

func benchShape(b *testing.B, g *graph.Graph, p pattern.Pattern, hybrid bool) {
	s, err := pattern.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	g.HubIndex() // build outside the timed region; it is shared and one-time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMiner(g, s)
		m.SetHybridKernels(hybrid)
		m.Run()
	}
}

func BenchmarkTriangleLJHybrid(b *testing.B)    { benchShape(b, quickLJ(), pattern.Triangle(), true) }
func BenchmarkTriangleLJMergeOnly(b *testing.B) { benchShape(b, quickLJ(), pattern.Triangle(), false) }
func BenchmarkTriangleORHybrid(b *testing.B)    { benchShape(b, quickOR(), pattern.Triangle(), true) }
func BenchmarkTriangleORMergeOnly(b *testing.B) { benchShape(b, quickOR(), pattern.Triangle(), false) }
func BenchmarkFourCliqueORHybrid(b *testing.B) {
	benchShape(b, quickOR(), pattern.FourClique(), true)
}
func BenchmarkFourCliqueORMergeOnly(b *testing.B) {
	benchShape(b, quickOR(), pattern.FourClique(), false)
}
