package mine

import (
	"reflect"
	"testing"

	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/pattern"
)

// runBaseline mines with the hybrid kernel layer disabled, reproducing
// the seed merge/gallop-only miner.
func runBaseline(g *graph.Graph, s *pattern.Schedule) *Result {
	m := NewMiner(g, s)
	m.SetHybridKernels(false)
	return m.Run()
}

// TestHybridMatchesBaselineExactly is the central invariant of the
// hybrid kernel layer: switching kernels must not change any reported
// number — embeddings, per-depth task counts, intermediate-line
// accounting, or set-op element accounting.
func TestHybridMatchesBaselineExactly(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat-skewed": gen.RMAT(1<<10, 9000, 0.45, 0.22, 0.22, 106),
		"rmat-hubby":  gen.RMAT(1<<9, 5000, 0.62, 0.14, 0.14, 42),
		"plc":         gen.PowerLawCluster(600, 6, 0.6, 17),
		"near-reg":    gen.NearRegular(600, 9, 5),
	}
	patterns := []pattern.Pattern{
		pattern.Triangle(), pattern.FourClique(), pattern.TailedTriangle(),
		pattern.Diamond(), pattern.FourCycle(), pattern.House(),
	}
	for gname, g := range graphs {
		for _, p := range patterns {
			for _, induced := range []bool{false, true} {
				s, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: induced})
				if err != nil {
					t.Fatal(err)
				}
				hyb := NewMiner(g, s).Run()
				base := runBaseline(g, s)
				if hyb.Embeddings != base.Embeddings {
					t.Errorf("%s/%s: hybrid %d != baseline %d embeddings", gname, s.Name, hyb.Embeddings, base.Embeddings)
				}
				if !reflect.DeepEqual(hyb.TasksPerDepth, base.TasksPerDepth) {
					t.Errorf("%s/%s: TasksPerDepth %v != %v", gname, s.Name, hyb.TasksPerDepth, base.TasksPerDepth)
				}
				if !reflect.DeepEqual(hyb.IntermediateLinesPerDepth, base.IntermediateLinesPerDepth) {
					t.Errorf("%s/%s: IntermediateLinesPerDepth %v != %v", gname, s.Name, hyb.IntermediateLinesPerDepth, base.IntermediateLinesPerDepth)
				}
				if hyb.SetOpElements != base.SetOpElements {
					t.Errorf("%s/%s: SetOpElements %d != %d", gname, s.Name, hyb.SetOpElements, base.SetOpElements)
				}
			}
		}
	}
}

// TestHybridUsesBitmapKernels pins that the dispatcher actually selects
// bitmap kernels on a hub-heavy graph (otherwise the layer is dead code).
func TestHybridUsesBitmapKernels(t *testing.T) {
	g := gen.RMAT(1<<11, 24000, 0.55, 0.17, 0.17, 105)
	if g.HubIndex() == nil {
		t.Fatal("skewed R-MAT analogue built no hub index")
	}
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMiner(g, s)
	m.Run()
	if st := m.KernelStats(); st.BitmapOps == 0 {
		t.Fatalf("no bitmap kernels selected on a hubby graph: %+v", st)
	}
	// Disabled miner must select none.
	m2 := NewMiner(g, s)
	m2.SetHybridKernels(false)
	m2.Run()
	if st := m2.KernelStats(); st.BitmapOps != 0 {
		t.Fatalf("baseline miner used bitmap kernels: %+v", st)
	}
}

// TestHybridVisitorPathAgrees drives the visitor (materializing) path
// with hybrid kernels on a graph with hubs.
func TestHybridVisitorPathAgrees(t *testing.T) {
	g := gen.RMAT(512, 6000, 0.6, 0.15, 0.15, 9)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	var visits int64
	m := NewMiner(g, s)
	m.SetVisitor(func(match []graph.VertexID) {
		visits++
		for i := 0; i < len(match); i++ {
			for j := i + 1; j < len(match); j++ {
				if match[i] == match[j] {
					t.Fatalf("non-injective embedding %v", match)
				}
			}
		}
	})
	res := m.Run()
	if visits != res.Embeddings {
		t.Fatalf("visitor saw %d embeddings, result says %d", visits, res.Embeddings)
	}
	if want := runBaseline(g, s).Embeddings; res.Embeddings != want {
		t.Fatalf("visitor-path count %d != baseline %d", res.Embeddings, want)
	}
}

// TestGuidedSchedulingMatchesSerial sweeps worker counts (including ones
// that don't divide the vertex count) over the guided self-scheduling
// loop; counts and statistics must be exact for each.
func TestGuidedSchedulingMatchesSerial(t *testing.T) {
	g := gen.RMAT(1<<10, 6000, 0.6, 0.15, 0.15, 13)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	serial := NewMiner(g, s).Run()
	for _, workers := range []int{2, 3, 5, 8, 16, 1 << 10} {
		par := ParallelCount(g, s, workers)
		if par.Embeddings != serial.Embeddings {
			t.Errorf("workers=%d: %d != %d embeddings", workers, par.Embeddings, serial.Embeddings)
		}
		if !reflect.DeepEqual(par.TasksPerDepth, serial.TasksPerDepth) {
			t.Errorf("workers=%d: TasksPerDepth %v != %v", workers, par.TasksPerDepth, serial.TasksPerDepth)
		}
		if par.SetOpElements != serial.SetOpElements {
			t.Errorf("workers=%d: SetOpElements %d != %d", workers, par.SetOpElements, serial.SetOpElements)
		}
	}
}

func TestGuidedChunkBounds(t *testing.T) {
	cases := []struct {
		remaining, workers, want int64
	}{
		{10000, 8, maxRootChunk},                        // capped early
		{100, 8, minRootChunk},                          // floor near the tail
		{maxRootChunk * guidedDivisor, 1, maxRootChunk}, // exactly at the cap
		{1, 64, minRootChunk},                           // never zero
	}
	for _, c := range cases {
		if got := guidedChunk(c.remaining, c.workers); got != c.want {
			t.Errorf("guidedChunk(%d,%d) = %d, want %d", c.remaining, c.workers, got, c.want)
		}
	}
	// Chunks must decrease (weakly) as the queue drains.
	prev := int64(maxRootChunk)
	for remaining := int64(4096); remaining > 0; remaining -= 64 {
		c := guidedChunk(remaining, 8)
		if c > prev {
			t.Fatalf("chunk grew from %d to %d at remaining=%d", prev, c, remaining)
		}
		prev = c
	}
}
