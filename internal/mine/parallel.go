package mine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"shogun/internal/graph"
	"shogun/internal/pattern"
)

// ParallelCount mines g with `workers` goroutines (0 = GOMAXPROCS), each
// running an independent Miner over a dynamically shared root queue, and
// returns the merged result. Statistics are exact; per-depth slices are
// summed across workers.
func ParallelCount(g *graph.Graph, s *pattern.Schedule, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return NewMiner(g, s).Run()
	}

	var cursor int64
	const chunk = 64
	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			m := NewMiner(g, s)
			for {
				base := atomic.AddInt64(&cursor, chunk) - chunk
				if base >= int64(n) {
					break
				}
				end := base + chunk
				if end > int64(n) {
					end = int64(n)
				}
				for v := base; v < end; v++ {
					m.RunRoot(graph.VertexID(v))
				}
			}
			results[wk] = m.Result()
		}(wk)
	}
	wg.Wait()

	merged := &Result{
		TasksPerDepth:             make([]int64, s.Depth()),
		IntermediateLinesPerDepth: make([]int64, s.Depth()),
	}
	for _, r := range results {
		merged.Embeddings += r.Embeddings
		merged.SetOpElements += r.SetOpElements
		for d := range r.TasksPerDepth {
			merged.TasksPerDepth[d] += r.TasksPerDepth[d]
			merged.IntermediateLinesPerDepth[d] += r.IntermediateLinesPerDepth[d]
		}
	}
	return merged
}
