package mine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"shogun/internal/graph"
	"shogun/internal/pattern"
)

// Guided-scheduling chunk bounds: chunks start at maxRootChunk (half the
// old fixed size, so the expensive hub-heavy low-ID roots of R-MAT-style
// graphs spread across at least twice as many workers) and shrink toward
// minRootChunk as the root queue drains, keeping tail imbalance small.
const (
	maxRootChunk  = 32
	minRootChunk  = 4
	guidedDivisor = 4 // chunk ≈ remaining/(guidedDivisor·workers)
)

// guidedChunk picks the next chunk size for a guided self-scheduling
// loop given the roots remaining.
func guidedChunk(remaining, workers int64) int64 {
	c := remaining / (guidedDivisor * workers)
	if c < minRootChunk {
		return minRootChunk
	}
	if c > maxRootChunk {
		return maxRootChunk
	}
	return c
}

// ParallelCount mines g with `workers` goroutines (0 = GOMAXPROCS), each
// running an independent Miner over a dynamically shared root queue with
// guided self-scheduling (decreasing chunk sizes), and returns the merged
// result. Statistics are exact; per-depth slices are summed across
// workers.
func ParallelCount(g *graph.Graph, s *pattern.Schedule, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return NewMiner(g, s).Run()
	}

	var cursor int64
	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			m := NewMiner(g, s)
			for {
				// The chunk size is computed from a possibly stale
				// cursor read; correctness only depends on the
				// atomic Add, which hands every worker a disjoint
				// [end-chunk, end) range.
				remaining := int64(n) - atomic.LoadInt64(&cursor)
				if remaining <= 0 {
					break
				}
				chunk := guidedChunk(remaining, int64(workers))
				end := atomic.AddInt64(&cursor, chunk)
				base := end - chunk
				if base >= int64(n) {
					break
				}
				if end > int64(n) {
					end = int64(n)
				}
				for v := base; v < end; v++ {
					m.RunRoot(graph.VertexID(v))
				}
			}
			results[wk] = m.Result()
		}(wk)
	}
	wg.Wait()

	merged := &Result{
		TasksPerDepth:             make([]int64, s.Depth()),
		IntermediateLinesPerDepth: make([]int64, s.Depth()),
	}
	for _, r := range results {
		merged.Embeddings += r.Embeddings
		merged.SetOpElements += r.SetOpElements
		for d := range r.TasksPerDepth {
			merged.TasksPerDepth[d] += r.TasksPerDepth[d]
			merged.IntermediateLinesPerDepth[d] += r.IntermediateLinesPerDepth[d]
		}
	}
	return merged
}
