package mine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"shogun/internal/graph"
	"shogun/internal/pattern"
	"shogun/internal/sim"
)

// Guided-scheduling chunk bounds: chunks start at maxRootChunk (half the
// old fixed size, so the expensive hub-heavy low-ID roots of R-MAT-style
// graphs spread across at least twice as many workers) and shrink toward
// minRootChunk as the root queue drains, keeping tail imbalance small.
const (
	maxRootChunk  = 32
	minRootChunk  = 4
	guidedDivisor = 4 // chunk ≈ remaining/(guidedDivisor·workers)
)

// guidedChunk picks the next chunk size for a guided self-scheduling
// loop given the roots remaining.
func guidedChunk(remaining, workers int64) int64 {
	c := remaining / (guidedDivisor * workers)
	if c < minRootChunk {
		return minRootChunk
	}
	if c > maxRootChunk {
		return maxRootChunk
	}
	return c
}

// testFailRoot, when >= 0, makes mining that root panic — a
// deterministic fault-injection hook for the containment tests.
var testFailRoot int64 = -1

func runRoot(m *Miner, v graph.VertexID) {
	if fr := atomic.LoadInt64(&testFailRoot); fr >= 0 && int64(v) == fr {
		panic(fmt.Sprintf("mine: injected fault at root %d", v))
	}
	m.RunRoot(v)
}

// ParallelCount mines g with `workers` goroutines (0 = GOMAXPROCS), each
// running an independent Miner over a dynamically shared root queue with
// guided self-scheduling (decreasing chunk sizes), and returns the merged
// result. Statistics are exact; per-depth slices are summed across
// workers. It is ParallelCountContext with a background context; worker
// panics (impossible absent a miner bug) are re-raised.
func ParallelCount(g *graph.Graph, s *pattern.Schedule, workers int) *Result {
	r, err := ParallelCountContext(context.Background(), g, s, workers)
	if err != nil {
		panic(err)
	}
	return r
}

// ParallelCountContext is the governed software miner: workers observe
// ctx between root chunks (and every few hundred roots within a chunk),
// so a cancelled context stops the mine promptly with a wrapped
// sim.ErrCancelled. A panic inside any worker is contained and returned
// as a *sim.InvariantError naming the worker and the root being mined;
// the remaining workers drain and exit cleanly.
func ParallelCountContext(ctx context.Context, g *graph.Graph, s *pattern.Schedule, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	if workers > n {
		workers = n
	}
	const pollRoots = 256 // ctx checks at least this often per worker
	if workers <= 1 {
		m := NewMiner(g, s)
		var res *Result
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = &sim.InvariantError{
						Op:         "mine: count",
						PanicValue: r,
						Stack:      string(debug.Stack()),
					}
				}
			}()
			for v := 0; v < n; v++ {
				if v%pollRoots == 0 {
					if cerr := ctx.Err(); cerr != nil {
						return fmt.Errorf("mine: %w at root %d/%d (%v)", sim.ErrCancelled, v, n, cerr)
					}
				}
				runRoot(m, graph.VertexID(v))
			}
			res = m.Result()
			return nil
		}()
		if err != nil {
			return nil, err
		}
		return res, nil
	}

	// stop cancels the other workers once one fails, so a contained
	// panic doesn't leave the rest mining a result nobody will read.
	ctx, stop := context.WithCancel(ctx)
	defer stop()
	var cursor int64
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			m := NewMiner(g, s)
			var current graph.VertexID
			defer func() {
				if r := recover(); r != nil {
					errs[wk] = &sim.InvariantError{
						Op:         fmt.Sprintf("mine: worker %d (root %d)", wk, current),
						PanicValue: r,
						Stack:      string(debug.Stack()),
					}
					stop()
				}
			}()
			for {
				if cerr := ctx.Err(); cerr != nil {
					errs[wk] = fmt.Errorf("mine: worker %d: %w (%v)", wk, sim.ErrCancelled, cerr)
					return
				}
				// The chunk size is computed from a possibly stale
				// cursor read; correctness only depends on the
				// atomic Add, which hands every worker a disjoint
				// [end-chunk, end) range.
				remaining := int64(n) - atomic.LoadInt64(&cursor)
				if remaining <= 0 {
					break
				}
				chunk := guidedChunk(remaining, int64(workers))
				end := atomic.AddInt64(&cursor, chunk)
				base := end - chunk
				if base >= int64(n) {
					break
				}
				if end > int64(n) {
					end = int64(n)
				}
				for v := base; v < end; v++ {
					current = graph.VertexID(v)
					runRoot(m, current)
				}
			}
			results[wk] = m.Result()
		}(wk)
	}
	wg.Wait()

	// An invariant error outranks the cancellations it caused.
	var firstErr error
	for _, e := range errs {
		if ie, ok := e.(*sim.InvariantError); ok {
			return nil, ie
		}
		if e != nil && firstErr == nil {
			firstErr = e
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	merged := &Result{
		TasksPerDepth:             make([]int64, s.Depth()),
		IntermediateLinesPerDepth: make([]int64, s.Depth()),
	}
	for _, r := range results {
		merged.Embeddings += r.Embeddings
		merged.SetOpElements += r.SetOpElements
		for d := range r.TasksPerDepth {
			merged.TasksPerDepth[d] += r.TasksPerDepth[d]
			merged.IntermediateLinesPerDepth[d] += r.IntermediateLinesPerDepth[d]
		}
	}
	return merged, nil
}
