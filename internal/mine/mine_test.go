package mine

import (
	"math/rand"
	"testing"

	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/pattern"
)

func allPatterns() []pattern.Pattern {
	return []pattern.Pattern{
		pattern.Triangle(), pattern.FourClique(), pattern.FiveClique(),
		pattern.TailedTriangle(), pattern.Diamond(), pattern.FourCycle(),
		pattern.House(), pattern.CycleN(5), pattern.PathN(4), pattern.StarN(3),
	}
}

// TestKnownCounts checks closed-form counts on structured graphs.
func TestKnownCounts(t *testing.T) {
	k6 := gen.Clique(6)
	cases := []struct {
		name    string
		g       *graph.Graph
		p       pattern.Pattern
		induced bool
		want    int64
	}{
		// C(6,k) k-cliques in K6.
		{"K6-tc", k6, pattern.Triangle(), false, 20},
		{"K6-4cl", k6, pattern.FourClique(), false, 15},
		{"K6-5cl", k6, pattern.FiveClique(), false, 6},
		// Edge-induced 4-cycles in K6: choose 4 vertices (15 ways), 3
		// distinct 4-cycles each.
		{"K6-4cyc_e", k6, pattern.FourCycle(), false, 45},
		// Vertex-induced 4-cycles in K6: none (every 4 vertices form K4).
		{"K6-4cyc_v", k6, pattern.FourCycle(), true, 0},
		// Diamonds in K6 edge-induced: choose 4 vertices, 6 ways to drop
		// one of the 6 edges of K4 → 15*6 = 90.
		{"K6-dia_e", k6, pattern.Diamond(), false, 90},
		{"K6-dia_v", k6, pattern.Diamond(), true, 0},
		// Tailed triangles in K6 edge-induced: 4 vertices, pick the
		// triangle (4 ways) then the tail attachment (3 ways) → 15*12.
		{"K6-tt_e", k6, pattern.TailedTriangle(), false, 180},
		// 4x4 grid: triangle-free, 9 unit squares + larger cycles? A
		// 4-cycle in a grid graph must be a unit square → 9.
		{"grid-tc", gen.Grid(4, 4), pattern.Triangle(), false, 0},
		{"grid-4cyc_e", gen.Grid(4, 4), pattern.FourCycle(), false, 9},
		{"grid-4cyc_v", gen.Grid(4, 4), pattern.FourCycle(), true, 9},
	}
	for _, c := range cases {
		got, err := CountPattern(c.g, c.p, c.induced)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: count = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestAgainstBruteForce is the core cross-validation: the schedule-driven
// miner must agree with naive enumeration for every pattern, both induced
// semantics, over a spread of random graphs.
func TestAgainstBruteForce(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er-sparse": gen.ErdosRenyi(24, 45, 1),
		"er-dense":  gen.ErdosRenyi(16, 70, 2),
		"rmat":      gen.RMAT(32, 100, 0.6, 0.15, 0.15, 3),
		"ws":        gen.WattsStrogatz(20, 2, 0.3, 4),
		"plc":       gen.PowerLawCluster(20, 3, 0.7, 5),
		"clique":    gen.Clique(8),
		"grid":      gen.Grid(4, 5),
	}
	for gname, g := range graphs {
		for _, p := range allPatterns() {
			for _, induced := range []bool{false, true} {
				want, err := BruteForceCount(g, p, induced)
				if err != nil {
					t.Fatalf("%s/%s: brute force: %v", gname, p.Name(), err)
				}
				got, err := CountPattern(g, p, induced)
				if err != nil {
					t.Fatalf("%s/%s: %v", gname, p.Name(), err)
				}
				if got != want {
					t.Errorf("%s/%s induced=%v: miner=%d brute=%d", gname, p.Name(), induced, got, want)
				}
			}
		}
	}
}

// TestRandomGraphsProperty fuzzes graph structure with random seeds.
func TestRandomGraphsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	patterns := []pattern.Pattern{
		pattern.Triangle(), pattern.FourClique(), pattern.TailedTriangle(),
		pattern.Diamond(), pattern.FourCycle(),
	}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(15)
		m := rng.Intn(n * 3)
		g := gen.ErdosRenyi(n, m, seed*31+7)
		for _, p := range patterns {
			induced := seed%2 == 0
			want, err := BruteForceCount(g, p, induced)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CountPattern(g, p, induced)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed=%d n=%d m=%d %s induced=%v: miner=%d brute=%d", seed, n, m, p.Name(), induced, got, want)
			}
		}
	}
}

func TestExplicitOrdersAgree(t *testing.T) {
	// Any valid connected order must give the same count.
	g := gen.ErdosRenyi(20, 60, 9)
	p := pattern.TailedTriangle()
	base, err := CountPattern(g, p, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]int{{0, 1, 2, 3}, {0, 3, 1, 2}, {2, 1, 0, 3}, {1, 0, 3, 2}} {
		s, err := pattern.BuildWith(p, pattern.BuildOptions{Order: order})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if got := Count(g, s); got != base {
			t.Errorf("order %v: count %d, want %d", order, got, base)
		}
	}
}

func TestVisitorSeesValidEmbeddings(t *testing.T) {
	g := gen.ErdosRenyi(20, 70, 13)
	s, err := pattern.Build(pattern.Diamond())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMiner(g, s)
	var count int64
	m.SetVisitor(func(match []graph.VertexID) {
		count++
		// Every pattern edge must be a graph edge.
		for u := 0; u < s.Depth(); u++ {
			for v := u + 1; v < s.Depth(); v++ {
				if s.Pattern.HasEdge(u, v) && !g.HasEdge(match[u], match[v]) {
					t.Fatalf("visitor got non-embedding %v", match)
				}
				if match[u] == match[v] {
					t.Fatalf("visitor got non-injective embedding %v", match)
				}
			}
		}
	})
	res := m.Run()
	if count != res.Embeddings {
		t.Fatalf("visitor count %d != result %d", count, res.Embeddings)
	}
}

func TestRunRootPartitioning(t *testing.T) {
	// Mining per root must sum to the whole-graph count: this is the
	// property the accelerator's root-dispatch depends on.
	g := gen.RMAT(64, 250, 0.55, 0.17, 0.17, 21)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	whole := Count(g, s)
	m := NewMiner(g, s)
	for v := 0; v < g.NumVertices(); v++ {
		m.RunRoot(graph.VertexID(v))
	}
	if got := m.Result().Embeddings; got != whole {
		t.Fatalf("per-root sum %d != whole %d", got, whole)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := gen.Clique(10)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	res := NewMiner(g, s).Run()
	if res.Embeddings != 210 { // C(10,4)
		t.Fatalf("embeddings = %d", res.Embeddings)
	}
	if res.TasksPerDepth[0] != 10 {
		t.Errorf("root tasks = %d", res.TasksPerDepth[0])
	}
	// Depth-1 tasks: each root v spawns candidates u < v → C(10,2) total.
	if res.TasksPerDepth[1] != 45 {
		t.Errorf("depth-1 tasks = %d", res.TasksPerDepth[1])
	}
	if res.TasksPerDepth[3] != res.Embeddings {
		t.Errorf("leaf tasks %d != embeddings %d", res.TasksPerDepth[3], res.Embeddings)
	}
	if res.Tasks() != 10+45+120+210 {
		t.Errorf("total tasks = %d", res.Tasks())
	}
	if res.AvgIntermediateLinesPerTask() <= 0 {
		t.Error("no intermediate line accounting")
	}
	if res.SetOpElements <= 0 {
		t.Error("no set-op accounting")
	}
}

func TestBruteForceRejectsHugeGraph(t *testing.T) {
	g := gen.ErdosRenyi(3000, 10, 1)
	if _, err := BruteForceCount(g, pattern.Triangle(), false); err == nil {
		t.Fatal("brute force accepted huge graph")
	}
}
