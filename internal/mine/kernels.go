package mine

import (
	"shogun/internal/graph"
	"shogun/internal/pattern"
	"shogun/internal/setops"
)

// storedBitsMinLen is the smallest stored candidate set worth mirroring
// into a scratch bitset: building and later clearing cost 2·|set|, which
// a single bitmap probe against it already roughly repays, and stored
// sets are typically probed once per sibling task.
const storedBitsMinLen = 64

// kernelContext is the per-Miner hybrid set-kernel state: the graph's
// shared hub index (prebuilt adjacency bitsets for high-degree vertices),
// the adaptive merge/gallop/bitmap dispatcher, and reusable scratch
// bitsets that mirror stored candidate sets so sibling tasks can probe
// them instead of re-merging (the "zero-waste" hot path).
type kernelContext struct {
	enabled bool
	hub     *graph.HubIndex
	disp    setops.Dispatcher
	words   int // bitset width for this graph

	// setBits[d] is a lazily allocated scratch bitset mirroring sets[d]
	// while setLive[d]; it is cleared element-wise (cost ∝ |sets[d]|)
	// before sets[d] is overwritten.
	setBits [][]uint64
	setLive []bool
	// aliasBits[d] is the hub bitset view of sets[d] when plan d aliases
	// a hub's full neighbor list, giving the stored set a free bitset.
	aliasBits [][]uint64
	// lazy[d] is a prebuilt closure returning the (built-on-demand)
	// scratch bitset of sets[d]; prebuilding avoids a closure allocation
	// per operand in the hot loop.
	lazy []func() []uint64
}

func (m *Miner) initKernels() {
	k := &m.kern
	k.enabled = true
	k.hub = m.g.HubIndex()
	k.words = setops.BitsetWords(m.g.NumVertices())
	n := m.s.Depth()
	k.setBits = make([][]uint64, n)
	k.setLive = make([]bool, n)
	k.aliasBits = make([][]uint64, n)
	k.lazy = make([]func() []uint64, n)
	for d := 0; d < n; d++ {
		d := d
		k.lazy[d] = func() []uint64 { return m.storedBits(d) }
	}
}

// SetHybridKernels toggles the hybrid bitmap/gallop kernel layer and the
// counting-only leaf path (on by default). Disabling reproduces the
// merge/gallop-only baseline exactly — counts and all Result statistics
// are identical either way — and exists for benchmarks and ablations.
func (m *Miner) SetHybridKernels(on bool) { m.kern.enabled = on }

// KernelStats reports which kernels the dispatcher selected so far.
func (m *Miner) KernelStats() setops.Stats { return m.kern.disp.Stats }

// storedBits returns the scratch bitset mirroring sets[d], building it on
// first use after each invalidation. Only the dispatcher calls it (via
// kern.lazy), and only once it has decided a bitmap probe is cheapest.
func (m *Miner) storedBits(d int) []uint64 {
	k := &m.kern
	if !k.setLive[d] {
		if k.setBits[d] == nil {
			k.setBits[d] = make([]uint64, k.words)
		}
		setops.BitsetFill(k.setBits[d], m.sets[d])
		k.setLive[d] = true
	}
	return k.setBits[d]
}

// invalidateStoredBits must run before sets[d] is overwritten: it clears
// the scratch bitset element-wise from the outgoing set content and drops
// any alias view.
func (m *Miner) invalidateStoredBits(d int) {
	k := &m.kern
	if k.setLive[d] {
		setops.BitsetClearList(k.setBits[d], m.sets[d])
		k.setLive[d] = false
	}
	k.aliasBits[d] = nil
}

// operand resolves ref into a dispatcher operand: the list view plus
// whatever bitset view is available — hub bitsets for neighbor refs,
// alias or lazily built scratch bitsets for stored refs.
func (m *Miner) operand(ref pattern.SetRef) setops.Operand {
	if ref.Kind == pattern.RefNeighbor {
		v := m.matched[ref.Pos]
		op := setops.Operand{List: m.g.Neighbors(v)}
		if m.kern.enabled {
			op.Bits = m.kern.hub.Bits(v)
		}
		return op
	}
	op := setops.Operand{List: m.sets[ref.Pos]}
	if m.kern.enabled {
		if ab := m.kern.aliasBits[ref.Pos]; ab != nil {
			op.Bits = ab
		} else if len(op.List) >= storedBitsMinLen {
			op.LazyBits = m.kern.lazy[ref.Pos]
		}
	}
	return op
}

// operandHas reports membership of v in op without triggering a lazy
// bitset build.
func operandHas(op *setops.Operand, v graph.VertexID) bool {
	if op.Bits != nil {
		return setops.BitsetHas(op.Bits, v)
	}
	return setops.Contains(op.List, v)
}

// countLeaf counts the surviving candidates of leaf position d without
// materializing the final candidate set: all fold steps but the last run
// as usual into scratch buffers, the last is a bounded counting kernel,
// and the few Distinct exclusions are membership checks. Statistics
// accounting (task counts, intermediate lines, set-op elements) is
// bit-identical to the materializing path.
func (m *Miner) countLeaf(d int) int64 {
	plan := &m.s.Plans[d]
	limit := setops.NoLimit
	for _, a := range plan.BoundBy {
		if m.matched[a] < limit {
			limit = m.matched[a]
		}
	}
	base := m.operand(plan.Base)
	if plan.Base.Kind == pattern.RefStored {
		m.res.IntermediateLinesPerDepth[d-1] += int64(setops.Lines(len(base.List)))
	}
	if len(plan.Steps) == 0 {
		// Alias plan: candidates are a bounded prefix of an existing set.
		count := int64(len(setops.Bound(base.List, limit)))
		for _, j := range plan.Distinct {
			if v := m.matched[j]; v < limit && setops.Contains(base.List, v) {
				count--
			}
		}
		return count
	}
	cur := base
	for i := 0; i < len(plan.Steps)-1; i++ {
		op := plan.Steps[i]
		operand := m.operand(op.Ref)
		if op.Ref.Kind == pattern.RefStored {
			m.res.IntermediateLinesPerDepth[d-1] += int64(setops.Lines(len(operand.List)))
		}
		m.res.SetOpElements += int64(len(cur.List) + len(operand.List))
		var dst []graph.VertexID
		if i%2 == 0 {
			dst = m.scratch[:0]
		} else {
			dst = m.scratch2[:0]
		}
		if op.Sub {
			dst = m.kern.disp.Subtract(dst, cur, operand)
		} else {
			dst = m.kern.disp.Intersect(dst, cur, operand)
		}
		if i%2 == 0 {
			m.scratch = dst
		} else {
			m.scratch2 = dst
		}
		cur = setops.Operand{List: dst}
	}
	last := plan.Steps[len(plan.Steps)-1]
	operand := m.operand(last.Ref)
	if last.Ref.Kind == pattern.RefStored {
		m.res.IntermediateLinesPerDepth[d-1] += int64(setops.Lines(len(operand.List)))
	}
	m.res.SetOpElements += int64(len(cur.List) + len(operand.List))
	var count int64
	if last.Sub {
		count = int64(m.kern.disp.SubtractCount(cur, operand, limit))
	} else {
		count = int64(m.kern.disp.IntersectCount(cur, operand, limit))
	}
	for _, j := range plan.Distinct {
		v := m.matched[j]
		if v >= limit || !setops.Contains(cur.List, v) {
			continue
		}
		if operandHas(&operand, v) != last.Sub {
			count--
		}
	}
	return count
}
