package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheSingleFlight pins the stampede property: concurrent Gets for
// one missing key run the build exactly once and all observe its value.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache[int](1 << 20)
	var builds atomic.Int64
	gate := make(chan struct{})
	const callers = 32
	vals := make([]int, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = c.Get("k", func() (int, int64, error) {
				builds.Add(1)
				<-gate // hold the flight open so everyone piles on
				return 42, 8, nil
			})
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("built %d times for one key, want 1", n)
	}
	for i := range vals {
		if errs[i] != nil || vals[i] != 42 {
			t.Fatalf("caller %d got (%d, %v), want (42, nil)", i, vals[i], errs[i])
		}
	}
	st := c.Stats()
	// Callers that arrive after the flight lands count as hits, earlier
	// ones as misses — the split is scheduling-dependent, the sum is not.
	if st.Hits+st.Misses != callers || st.Entries != 1 || st.UsedBytes != 8 {
		t.Fatalf("stats after flight: %+v", st)
	}
	h0 := st.Hits
	if v, _ := c.Get("k", nil); v != 42 {
		t.Fatalf("cached value lost: %d", v)
	}
	if st := c.Stats(); st.Hits != h0+1 {
		t.Fatalf("hit not counted: %+v", st)
	}
}

// TestCacheEvictsLRU verifies the memory budget is a hard bound and the
// least-recently-used entry goes first.
func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache[string](100)
	mk := func(k string, size int64) {
		t.Helper()
		if _, err := c.Get(k, func() (string, int64, error) { return "v" + k, size, nil }); err != nil {
			t.Fatal(err)
		}
	}
	mk("a", 40)
	mk("b", 40)
	// Touch a so b is the LRU victim.
	if _, err := c.Get("a", nil); err != nil {
		t.Fatal(err)
	}
	mk("c", 40) // 120 > 100: evicts b
	if !c.Peek("a") || c.Peek("b") || !c.Peek("c") {
		t.Fatalf("want {a,c} resident, b evicted; have a=%t b=%t c=%t", c.Peek("a"), c.Peek("b"), c.Peek("c"))
	}
	if used := c.Used(); used != 80 {
		t.Fatalf("used=%d, want 80", used)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.Evictions)
	}
	// Re-Get of the evicted key recomputes — no stale value, fresh build.
	var rebuilt bool
	v, err := c.Get("b", func() (string, int64, error) { rebuilt = true; return "vb2", 10, nil })
	if err != nil || !rebuilt || v != "vb2" {
		t.Fatalf("evicted key not rebuilt: v=%q rebuilt=%t err=%v", v, rebuilt, err)
	}
}

// TestCacheOversizeNotRetained: an entry larger than the whole budget is
// returned but never resident, keeping the bound hard.
func TestCacheOversizeNotRetained(t *testing.T) {
	c := NewCache[string](100)
	v, err := c.Get("big", func() (string, int64, error) { return "huge", 1000, nil })
	if err != nil || v != "huge" {
		t.Fatalf("oversize Get = (%q, %v)", v, err)
	}
	if c.Peek("big") || c.Used() != 0 {
		t.Fatalf("oversize entry retained: used=%d", c.Used())
	}
	if st := c.Stats(); st.Oversize != 1 {
		t.Fatalf("oversize counter=%d, want 1", st.Oversize)
	}
}

// TestCacheErrorNotCached: a failed build reaches every waiter of that
// flight and the key stays uncached (the next Get retries).
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache[int](100)
	boom := errors.New("boom")
	if _, err := c.Get("k", func() (int, int64, error) { return 0, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	if c.Peek("k") {
		t.Fatal("failed build cached")
	}
	v, err := c.Get("k", func() (int, int64, error) { return 7, 1, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after error = (%d, %v), want (7, nil)", v, err)
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Fatalf("errors=%d, want 1", st.Errors)
	}
}

// TestCachePanicUnblocksWaiters: a panicking build must not strand
// concurrent waiters or poison the key.
func TestCachePanicUnblocksWaiters(t *testing.T) {
	c := NewCache[int](100)
	entered := make(chan struct{})
	panicked := make(chan any, 1)
	waiterDone := make(chan error, 1)
	go func() {
		defer func() { panicked <- recover() }() // the builder re-panics
		c.Get("k", func() (int, int64, error) {  //nolint:errcheck
			close(entered)
			// A joiner bumps Misses before parking on the ready channel,
			// so panicking only after Misses reaches 2 guarantees the
			// waiter below is committed to this flight.
			for c.Stats().Misses < 2 {
				time.Sleep(time.Millisecond)
			}
			panic("builder exploded")
		})
	}()
	<-entered
	go func() {
		_, err := c.Get("k", nil) // joins the in-flight build
		waiterDone <- err
	}()
	if err := <-waiterDone; err == nil {
		t.Fatal("waiter of a panicked flight got nil error")
	}
	if p := <-panicked; p == nil {
		t.Fatal("builder's panic did not propagate")
	}
	// The key is retryable afterwards.
	v, err := c.Get("k", func() (int, int64, error) { return 9, 1, nil })
	if err != nil || v != 9 {
		t.Fatalf("retry after panic = (%d, %v), want (9, nil)", v, err)
	}
}

// TestCacheZeroBudget keeps nothing but still single-flights.
func TestCacheZeroBudget(t *testing.T) {
	c := NewCache[int](0)
	var builds int
	for i := 0; i < 3; i++ {
		v, err := c.Get("k", func() (int, int64, error) { builds++; return builds, 4, nil })
		if err != nil || v != builds {
			t.Fatalf("get %d = (%d, %v)", i, v, err)
		}
	}
	if builds != 3 || c.Len() != 0 {
		t.Fatalf("zero-budget cache retained entries: builds=%d len=%d", builds, c.Len())
	}
}

// TestCacheConcurrentChurn hammers distinct and shared keys under a
// tiny budget; run with -race this is the locking regression test.
func TestCacheConcurrentChurn(t *testing.T) {
	c := NewCache[int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w+i)%13)
				v, err := c.Get(k, func() (int, int64, error) { return len(k), 16, nil })
				if err != nil || v != len(k) {
					t.Errorf("churn get %s = (%d, %v)", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if used := c.Used(); used > 64 {
		t.Fatalf("budget violated: used=%d > 64", used)
	}
}
