package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"shogun/internal/accel"
	"shogun/internal/datasets"
	"shogun/internal/mine"
	"shogun/internal/pattern"
)

// testServer boots a daemon on a loopback port and tears it down with
// the test. The returned base URL has no trailing slash.
func testServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	})
	return s, "http://" + s.Addr()
}

// post sends a JSON body and returns status, parsed Response (2xx) and
// parsed ErrorBody (otherwise).
func post(t *testing.T, url string, body any) (int, *Response, *ErrorBody, http.Header) {
	t.Helper()
	var buf []byte
	switch b := body.(type) {
	case string:
		buf = []byte(b)
	default:
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		var r Response
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatalf("bad 2xx body %q: %v", raw, err)
		}
		return resp.StatusCode, &r, nil, resp.Header
	}
	var e ErrorBody
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("bad error body (status %d) %q: %v", resp.StatusCode, raw, err)
	}
	return resp.StatusCode, nil, &e, resp.Header
}

// golden computes the software-miner truth for a dataset/pattern pair.
func golden(t *testing.T, dataset, pat string) int64 {
	t.Helper()
	g, err := datasets.Get(dataset)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pattern.ByName(pat)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: strings.HasSuffix(pat, "_v")})
	if err != nil {
		t.Fatal(err)
	}
	return mine.Count(g, sched)
}

func TestServeCountMatchesMiner(t *testing.T) {
	_, base := testServer(t, Config{})
	want := golden(t, "wi", "tc")
	status, r, _, _ := post(t, base+"/v1/count", Request{Dataset: "wi", Pattern: "tc"})
	if status != http.StatusOK {
		t.Fatalf("status=%d", status)
	}
	if r.Embeddings != want {
		t.Fatalf("embeddings=%d, want %d", r.Embeddings, want)
	}
	if r.GraphKey != "dataset/wi" || r.Op != OpCount {
		t.Fatalf("response metadata: %+v", r)
	}
}

func TestServeMineReturnsStats(t *testing.T) {
	_, base := testServer(t, Config{})
	status, r, _, _ := post(t, base+"/v1/mine", Request{Dataset: "wi", Pattern: "tc"})
	if status != http.StatusOK {
		t.Fatalf("status=%d", status)
	}
	if r.Tasks <= 0 || r.Embeddings != golden(t, "wi", "tc") {
		t.Fatalf("mine stats: %+v", r)
	}
}

func TestServeSimulateMatchesMiner(t *testing.T) {
	_, base := testServer(t, Config{})
	want := golden(t, "wi", "tc")
	status, r, _, _ := post(t, base+"/v1/simulate", Request{Dataset: "wi", Pattern: "tc", Scheme: "shogun"})
	if status != http.StatusOK {
		t.Fatalf("status=%d", status)
	}
	if r.Embeddings != want {
		t.Fatalf("simulated embeddings=%d, want %d", r.Embeddings, want)
	}
	if r.Cycles <= 0 || r.Events <= 0 {
		t.Fatalf("simulation stats missing: %+v", r)
	}
}

func TestServeUploadedGraph(t *testing.T) {
	_, base := testServer(t, Config{})
	// K4 has 4 triangles.
	edges := "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n"
	status, r, _, _ := post(t, base+"/v1/count", Request{Graph: edges, Pattern: "tc"})
	if status != http.StatusOK {
		t.Fatalf("status=%d", status)
	}
	if r.Embeddings != 4 {
		t.Fatalf("K4 triangles=%d, want 4", r.Embeddings)
	}
	if !strings.HasPrefix(r.GraphKey, "upload/") {
		t.Fatalf("graph key %q", r.GraphKey)
	}
}

func TestServeCustomPatternEdges(t *testing.T) {
	_, base := testServer(t, Config{})
	want := golden(t, "wi", "tc")
	status, r, _, _ := post(t, base+"/v1/count", Request{Dataset: "wi", PatternEdges: "0-1,1-2,2-0"})
	if status != http.StatusOK {
		t.Fatalf("status=%d", status)
	}
	if r.Embeddings != want {
		t.Fatalf("custom triangle=%d, want %d", r.Embeddings, want)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, base := testServer(t, Config{})
	cases := []struct {
		name string
		body any
		kind string
	}{
		{"malformed json", `{"dataset": `, "bad_request"},
		{"unknown field", `{"dataset":"wi","pattern":"tc","bogus":1}`, "bad_request"},
		{"both graph sources", Request{Dataset: "wi", Graph: "0 1\n", Pattern: "tc"}, "bad_request"},
		{"no graph source", Request{Pattern: "tc"}, "bad_request"},
		{"both patterns", Request{Dataset: "wi", Pattern: "tc", PatternEdges: "0-1"}, "bad_request"},
		{"no pattern", Request{Dataset: "wi"}, "bad_request"},
		{"negative budget", `{"dataset":"wi","pattern":"tc","budget":{"max_events":-1}}`, "bad_request"},
		{"bad edge list", Request{Graph: "zero one\n", Pattern: "tc"}, "bad_request"},
		{"bad pattern edges", Request{Dataset: "wi", PatternEdges: "nope"}, "bad_request"},
	}
	for _, tc := range cases {
		status, _, e, _ := post(t, base+"/v1/count", tc.body)
		if status != http.StatusBadRequest || e.Kind != tc.kind {
			t.Errorf("%s: status=%d kind=%q, want 400 %q (err=%q)", tc.name, status, e.Kind, tc.kind, e.Error)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}

func TestServeNotFound(t *testing.T) {
	_, base := testServer(t, Config{})
	status, _, e, _ := post(t, base+"/v1/count", Request{Dataset: "nope", Pattern: "tc"})
	if status != http.StatusNotFound || e.Kind != "not_found" {
		t.Fatalf("unknown dataset: status=%d kind=%q", status, e.Kind)
	}
	status, _, e, _ = post(t, base+"/v1/count", Request{Dataset: "wi", Pattern: "dodecahedron"})
	if status != http.StatusNotFound || e.Kind != "not_found" {
		t.Fatalf("unknown pattern: status=%d kind=%q", status, e.Kind)
	}
}

func TestServeMethodNotAllowed(t *testing.T) {
	_, base := testServer(t, Config{})
	resp, err := http.Get(base + "/v1/count")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/count = %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow=%q", allow)
	}
}

func TestServeEventBudget422(t *testing.T) {
	_, base := testServer(t, Config{})
	status, _, e, _ := post(t, base+"/v1/simulate",
		Request{Dataset: "wi", Pattern: "tc", Budget: Budget{MaxEvents: 1}})
	if status != http.StatusUnprocessableEntity || e.Kind != "event_budget" {
		t.Fatalf("status=%d kind=%q err=%q, want 422 event_budget", status, e.Kind, e.Error)
	}
}

func TestServeSimDeadline422(t *testing.T) {
	_, base := testServer(t, Config{})
	status, _, e, _ := post(t, base+"/v1/simulate",
		Request{Dataset: "wi", Pattern: "tc", Budget: Budget{DeadlineCycles: 1}})
	if status != http.StatusUnprocessableEntity || e.Kind != "sim_deadline" {
		t.Fatalf("status=%d kind=%q err=%q, want 422 sim_deadline", status, e.Kind, e.Error)
	}
}

func TestServeWallBudget408(t *testing.T) {
	// OnAccel stalls the query past its own 50ms wall budget; the watchdog
	// cancellation must be reported as a wall-budget 408, not a generic 499.
	_, base := testServer(t, Config{
		OnAccel: func(*accel.Accelerator) { time.Sleep(300 * time.Millisecond) },
	})
	status, _, e, _ := post(t, base+"/v1/simulate",
		Request{Dataset: "wi", Pattern: "tc", Budget: Budget{MaxWallMS: 50}})
	if status != http.StatusRequestTimeout || e.Kind != "wall_budget" {
		t.Fatalf("status=%d kind=%q err=%q, want 408 wall_budget", status, e.Kind, e.Error)
	}
}

func TestServeShedsWith429(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{}, 8)
	s, base := testServer(t, Config{
		Workers:    1,
		QueueDepth: -1, // no wait queue: busy pool sheds instantly
		OnAccel: func(*accel.Accelerator) {
			entered <- struct{}{}
			<-hold
		},
	})
	blockedDone := make(chan int, 1)
	go func() {
		st, _, _, _ := post(t, base+"/v1/simulate", Request{Dataset: "wi", Pattern: "tc"})
		blockedDone <- st
	}()
	<-entered // the single worker slot is now held
	status, _, e, hdr := post(t, base+"/v1/count", Request{Dataset: "wi", Pattern: "tc"})
	if status != http.StatusTooManyRequests || e.Kind != "overloaded" {
		t.Fatalf("status=%d kind=%q, want 429 overloaded", status, e.Kind)
	}
	if hdr.Get("Retry-After") == "" || e.RetryAfterS < 1 {
		t.Fatalf("429 missing Retry-After (header=%q body=%d)", hdr.Get("Retry-After"), e.RetryAfterS)
	}
	close(hold)
	if st := <-blockedDone; st != http.StatusOK {
		t.Fatalf("blocked request finished with %d", st)
	}
	if st := s.StatsSnapshot(); st.Admission.Shed != 1 {
		t.Fatalf("shed counter=%d, want 1", st.Admission.Shed)
	}
}

func TestServePanicIsolation(t *testing.T) {
	// A panicking request gets a 500; the daemon (and its worker slot)
	// survives to serve the next request correctly.
	var arm bool
	s, base := testServer(t, Config{
		Workers: 1,
		OnAccel: func(*accel.Accelerator) {
			if arm {
				arm = false
				panic("injected fault")
			}
		},
	})
	arm = true
	status, _, e, _ := post(t, base+"/v1/simulate", Request{Dataset: "wi", Pattern: "tc"})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking request: status=%d kind=%q", status, e.Kind)
	}
	if !strings.Contains(e.Error, "injected fault") {
		t.Fatalf("500 body does not name the panic: %q", e.Error)
	}
	want := golden(t, "wi", "tc")
	status, r, _, _ := post(t, base+"/v1/simulate", Request{Dataset: "wi", Pattern: "tc"})
	if status != http.StatusOK || r.Embeddings != want {
		t.Fatalf("daemon did not survive the panic: status=%d resp=%+v", status, r)
	}
	if st := s.StatsSnapshot(); st.Panics != 1 {
		t.Fatalf("contained-panic counter=%d, want 1", st.Panics)
	}
}

func TestServeHealthAndReady(t *testing.T) {
	_, base := testServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", ep, resp.StatusCode)
		}
	}
}

func TestServeStatz(t *testing.T) {
	_, base := testServer(t, Config{})
	post(t, base+"/v1/count", Request{Dataset: "wi", Pattern: "tc"})
	resp, err := http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statz decode: %v", err)
	}
	if st.Served < 1 || st.Status["2xx"] < 1 || st.Admission.Workers <= 0 {
		t.Fatalf("statz counters: %+v", st)
	}
}

func TestServeDrainSequence(t *testing.T) {
	// During NotReadyDelay the daemon must still answer (readyz 503,
	// query 503 draining) before the listener closes; afterwards Serve
	// returns nil and new connections are refused.
	s, err := New(Config{Addr: "127.0.0.1:0", NotReadyDelay: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(3 * time.Second) }()

	// Poll readyz until the drain flips it; the listener is still open.
	deadline := time.Now().Add(2 * time.Second)
	sawNotReady := false
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // listener closed before we caught the window
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			sawNotReady = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawNotReady {
		t.Fatal("never observed readyz=503 during the not-ready window")
	}
	// A query inside the window is refused as draining, not shed.
	status, _, e, hdr := post(t, base+"/v1/count", Request{Dataset: "wi", Pattern: "tc"})
	if status != http.StatusServiceUnavailable || e.Kind != "draining" {
		t.Fatalf("query during drain: status=%d kind=%q", status, e.Kind)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 draining missing Retry-After")
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve after drain: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

func TestServeDrainFailsQueuedWaiters(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	s, err := New(Config{
		Addr:    "127.0.0.1:0",
		Workers: 1,
		OnAccel: func(*accel.Accelerator) {
			entered <- struct{}{}
			<-hold
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()

	inflightDone := make(chan int, 1)
	go func() {
		st, _, _, _ := post(t, base+"/v1/simulate", Request{Dataset: "wi", Pattern: "tc"})
		inflightDone <- st
	}()
	<-entered
	queuedDone := make(chan *ErrorBody, 1)
	queuedStatus := make(chan int, 1)
	go func() {
		st, _, e, _ := post(t, base+"/v1/count", Request{Dataset: "wi", Pattern: "tc"})
		queuedStatus <- st
		queuedDone <- e
	}()
	waitFor(t, func() bool { return s.StatsSnapshot().Admission.Waiting == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(5 * time.Second) }()
	// The queued waiter fails with 503 draining while the in-flight
	// request keeps running.
	if st := <-queuedStatus; st != http.StatusServiceUnavailable {
		t.Fatalf("queued request during drain: %d", st)
	}
	if e := <-queuedDone; e.Kind != "draining" {
		t.Fatalf("queued request kind=%q", e.Kind)
	}
	close(hold) // let the in-flight request finish inside the deadline
	if st := <-inflightDone; st != http.StatusOK {
		t.Fatalf("in-flight request finished with %d", st)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestServeCacheReuse(t *testing.T) {
	s, base := testServer(t, Config{})
	for i := 0; i < 3; i++ {
		status, _, _, _ := post(t, base+"/v1/count", Request{Dataset: "wi", Pattern: "tc"})
		if status != http.StatusOK {
			t.Fatalf("round %d: status=%d", i, status)
		}
	}
	st := s.StatsSnapshot()
	if st.Graphs.Hits < 2 || st.Graphs.Misses != 1 {
		t.Fatalf("graph cache not reused: %+v", st.Graphs)
	}
	if st.Schedules.Hits < 2 || st.Schedules.Misses != 1 {
		t.Fatalf("schedule cache not reused: %+v", st.Schedules)
	}
}

func TestServeConfigValidation(t *testing.T) {
	// An unusable address must fail fast, not at first request.
	if _, err := New(Config{Addr: "256.0.0.1:99999"}); err == nil {
		t.Fatal("New accepted an unusable address")
	}
}
