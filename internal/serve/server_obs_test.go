package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"shogun/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer: handler goroutines append
// log lines while the test (and the drain path) reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestServeObsEndToEnd drives one traced request through a daemon with
// the observability plane on and checks every surface: trace header
// propagation, the response's phase attribution, exact phase
// conservation on the completed span, the /metrics exposition and the
// /v1/requests inspection endpoints.
func TestServeObsEndToEnd(t *testing.T) {
	s, base := testServer(t, Config{Obs: &ObsConfig{SampleEvery: -1}})

	req, err := http.NewRequest(http.MethodPost, base+"/v1/count",
		strings.NewReader(`{"dataset":"wi","pattern":"tc"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "caller-trace-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "caller-trace-7" {
		t.Fatalf("trace header not echoed: %q", got)
	}
	var body Response
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Trace != "caller-trace-7" {
		t.Fatalf("response trace %q, want caller-trace-7", body.Trace)
	}
	if body.PhasesUS == nil {
		t.Fatal("2xx response missing phases_us attribution")
	}
	if body.PhasesUS.Run <= 0 {
		t.Fatalf("run phase not attributed: %+v", *body.PhasesUS)
	}

	// The completed span's ns-resolution attribution is conservative:
	// phases sum to wall exactly (the acceptance bound is 1%; the
	// telescoping design gives 0).
	recent := s.Obs().Recent()
	if len(recent) == 0 {
		t.Fatal("no completed span in the ring")
	}
	v := recent[0]
	if v.Trace != "caller-trace-7" || !v.Done {
		t.Fatalf("ring head is not our request: %+v", v)
	}
	if sum := v.PhasesNS.Sum(); sum != v.WallNS {
		t.Fatalf("served request phases sum %dns != wall %dns", sum, v.WallNS)
	}

	// /metrics: exposition-format validity plus our request's family.
	status, page := getBody(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	checkExposition(t, string(page))
	for _, want := range []string{
		`shogun_requests_total{op="count",outcome="ok"} 1`,
		`shogun_request_duration_seconds_count{op="count",outcome="ok"} 1`,
		"shogun_queue_wait_seconds_bucket",
		`shogun_cache_hits_total{cache="graph"}`,
		"shogun_admission_workers",
		"shogun_inflight_requests 0",
		"shogun_draining 0",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /v1/requests: the completed request is listed, newest first.
	status, raw = getBody(t, base+"/v1/requests")
	if status != http.StatusOK {
		t.Fatalf("/v1/requests status %d", status)
	}
	var pageDoc RequestsPage
	if err := json.Unmarshal(raw, &pageDoc); err != nil {
		t.Fatalf("/v1/requests not JSON: %v", err)
	}
	if len(pageDoc.Recent) == 0 || pageDoc.Recent[0].ID != v.ID {
		t.Fatalf("/v1/requests recent wrong: %+v", pageDoc.Recent)
	}

	// /v1/requests/{id}: detail view and Chrome export.
	status, raw = getBody(t, fmt.Sprintf("%s/v1/requests/%d", base, v.ID))
	if status != http.StatusOK {
		t.Fatalf("detail status %d", status)
	}
	var detail obs.SpanView
	if err := json.Unmarshal(raw, &detail); err != nil {
		t.Fatal(err)
	}
	if detail.ID != v.ID || detail.Outcome != "ok" {
		t.Fatalf("detail view wrong: %+v", detail)
	}
	status, raw = getBody(t, fmt.Sprintf("%s/v1/requests/%d?format=chrome", base, v.ID))
	if status != http.StatusOK {
		t.Fatalf("chrome export status %d", status)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil || len(chrome.TraceEvents) == 0 {
		t.Fatalf("chrome export invalid (err=%v, events=%d)", err, len(chrome.TraceEvents))
	}

	// Error handling on the detail route.
	if status, _ := getBody(t, base+"/v1/requests/notanumber"); status != http.StatusBadRequest {
		t.Fatalf("bad id status %d, want 400", status)
	}
	if status, _ := getBody(t, base+"/v1/requests/999999"); status != http.StatusNotFound {
		t.Fatalf("unknown id status %d, want 404", status)
	}
}

// expositionSample matches `name{labels} value` / `name value` rows.
var expositionSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [-+0-9.eE]+(\+Inf)?$`)

// checkExposition validates Prometheus text-format invariants over a
// whole page: every line is a HELP/TYPE comment or a sample, every
// sample's family was declared, histogram buckets are cumulative and end
// with +Inf == _count.
func checkExposition(t *testing.T, page string) {
	t.Helper()
	declared := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(page, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "), strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Errorf("malformed comment %q", line)
				continue
			}
			declared[fields[2]] = true
		case strings.HasPrefix(line, "#"):
			t.Errorf("unknown comment %q", line)
		default:
			if !expositionSample.MatchString(strings.Replace(line, `le="+Inf"`, `le="Inf"`, 1)) {
				t.Errorf("malformed sample %q", line)
				continue
			}
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if cut, ok := strings.CutSuffix(name, suffix); ok && declared[cut] {
					base = cut
					break
				}
			}
			if !declared[base] {
				t.Errorf("sample %q has no HELP/TYPE declaration", name)
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("no families declared")
	}
}

// TestServeObsDisabled pins the off path at the HTTP surface: no trace
// header, no phase attribution, and the observability endpoints answer
// 404.
func TestServeObsDisabled(t *testing.T) {
	_, base := testServer(t, Config{})
	status, resp, _, hdr := post(t, base+"/v1/count", Request{Dataset: "wi", Pattern: "tc"})
	if status != http.StatusOK {
		t.Fatalf("count status %d", status)
	}
	if hdr.Get(obs.TraceHeader) != "" {
		t.Fatal("trace header present with obs off")
	}
	if resp.Trace != "" || resp.PhasesUS != nil {
		t.Fatalf("obs fields leaked into response: trace=%q phases=%v", resp.Trace, resp.PhasesUS)
	}
	for _, path := range []string{"/metrics", "/v1/requests", "/v1/requests/1"} {
		if status, _ := getBody(t, base+path); status != http.StatusNotFound {
			t.Fatalf("%s status %d with obs off, want 404", path, status)
		}
	}
}

// TestServeDrainRetryAfterHint pins the drain-aware Retry-After
// satellite: a 503 refused during graceful drain advertises roughly the
// remaining drain time — "come back when this process is gone" — rather
// than the queue-backlog estimate used for 429s.
func TestServeDrainRetryAfterHint(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0", NotReadyDelay: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()

	const drainBudget = 5 * time.Second
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(drainBudget) }()

	waitFor(t, func() bool { return s.adm.Draining() })
	status, _, e, hdr := post(t, base+"/v1/count", Request{Dataset: "wi", Pattern: "tc"})
	if status != http.StatusServiceUnavailable || e.Kind != "draining" {
		t.Fatalf("drain refusal: status=%d kind=%q", status, e.Kind)
	}
	ra := hdr.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not integer seconds: %v", ra, err)
	}
	// The hint must cover the remaining drain (plus the 1s round-up) and
	// never exceed the whole budget + 1s.
	if secs < 1 || secs > int(drainBudget/time.Second)+1 {
		t.Fatalf("Retry-After %ds outside (0, %ds]", secs, int(drainBudget/time.Second)+1)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestServeDrainFlushesLogs pins the flush-on-drain satellite: the
// access and slow logs are buffered writers, and Drain must push the
// final request lines out before the process exits.
func TestServeDrainFlushesLogs(t *testing.T) {
	access := &syncBuffer{}
	slow := &syncBuffer{}
	s, err := New(Config{
		Addr: "127.0.0.1:0",
		Obs: &ObsConfig{
			AccessLog:     access,
			SlowLog:       slow,
			SlowThreshold: time.Nanosecond, // everything lands in both logs
			SampleEvery:   -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()

	status, resp, _, _ := post(t, base+"/v1/count", Request{Dataset: "wi", Pattern: "tc"})
	if status != http.StatusOK {
		t.Fatalf("count status %d", status)
	}
	if err := s.Drain(2 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	for name, buf := range map[string]*syncBuffer{"access": access, "slow": slow} {
		got := buf.String()
		if !strings.Contains(got, resp.Trace) {
			t.Errorf("%s log missing the request after drain: %q", name, got)
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(strings.SplitN(got, "\n", 2)[0]), &doc); err != nil {
			t.Errorf("%s log line is not JSON: %v", name, err)
		}
	}
	if !strings.Contains(slow.String(), "snapshot") && !strings.Contains(slow.String(), "run_us") {
		t.Errorf("slow log lacks detail fields: %q", slow.String())
	}
}

// TestServeObsSimulateProgressJoin catches a simulate request mid-run
// and checks the epoch-sampler join: the /v1/requests/{id} detail view
// of an in-flight simulation carries live accelerator gauges.
func TestServeObsSimulateProgressJoin(t *testing.T) {
	s, base := testServer(t, Config{Obs: &ObsConfig{SampleEvery: 256}})

	type caught struct {
		view obs.SpanView
	}
	found := make(chan caught, 1)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, v := range s.Obs().Snapshot() {
				if v.Op != string(OpSimulate) || v.Phase != "run" {
					continue
				}
				resp, err := http.Get(fmt.Sprintf("%s/v1/requests/%d", base, v.ID))
				if err != nil {
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var detail obs.SpanView
				if resp.StatusCode != http.StatusOK || json.Unmarshal(raw, &detail) != nil {
					continue
				}
				if !detail.Done && detail.Progress != nil {
					select {
					case found <- caught{detail}:
					default:
					}
					return
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	defer close(stop)

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		status, _, _, _ := post(t, base+"/v1/simulate", Request{Dataset: "wi", Pattern: "tc", Scheme: "shogun"})
		if status != http.StatusOK {
			t.Fatalf("simulate status %d", status)
		}
		select {
		case c := <-found:
			if _, ok := c.view.Progress["cycle"]; !ok {
				t.Fatalf("live progress missing cycle gauge: %v", c.view.Progress)
			}
			if c.view.Phase != "run" {
				t.Fatalf("caught view phase %q, want run", c.view.Phase)
			}
			return
		default:
		}
	}
	t.Fatal("never caught a simulate request in flight with live progress")
}

// TestLoadReportServerPhases checks the load generator's aggregation of
// the daemon's phases_us attribution: against an observability-on
// daemon every accepted response contributes to the per-phase
// histograms, and the run-phase count matches the accepted count.
func TestLoadReportServerPhases(t *testing.T) {
	_, base := testServer(t, Config{Obs: &ObsConfig{SampleEvery: -1}})
	body, err := json.Marshal(Request{Dataset: "wi", Pattern: "tc"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(t.Context(), LoadOptions{
		URL: base + "/v1/count", Body: body,
		QPS: 40, Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted == 0 {
		t.Fatalf("no accepted requests: %+v", rep)
	}
	if rep.ServerPhasesUS == nil {
		t.Fatal("ServerPhasesUS empty against an obs-on daemon")
	}
	for _, name := range []string{"parse", "queue", "graph", "schedule", "run", "encode"} {
		sum, ok := rep.ServerPhasesUS[name]
		if !ok {
			t.Fatalf("phase %q missing from ServerPhasesUS", name)
		}
		if sum.Count != rep.Accepted {
			t.Fatalf("phase %q count %d != accepted %d", name, sum.Count, rep.Accepted)
		}
	}
	if run := rep.ServerPhasesUS["run"]; run.Avg <= 0 {
		t.Fatalf("run phase average %v, want > 0", run.Avg)
	}
	if r := rep.AcceptRate(); r <= 0 || r > 1 {
		t.Fatalf("AcceptRate = %v", r)
	}
	if r := rep.ShedRate(); r < 0 || r > 1 {
		t.Fatalf("ShedRate = %v", r)
	}
}

// TestServeObsOffZeroAlloc pins the acceptance bound that the disabled
// observability path adds zero allocations to the request lifecycle: a
// nil plane's spans are nil, and every hook the handler calls on them is
// an allocation-free no-op.
func TestServeObsOffZeroAlloc(t *testing.T) {
	s := &Server{} // plane == nil, as when Config.Obs == nil
	allocs := testing.AllocsPerRun(200, func() {
		obsRequestLifecycle(s.plane)
	})
	if allocs != 0 {
		t.Fatalf("obs-off request lifecycle allocates %v/op, want 0", allocs)
	}
}

// obsRequestLifecycle replays every obs hook handleQuery/execute touch on
// a request, in order — the shared body of the On/Off benchmarks and the
// zero-alloc pin.
func obsRequestLifecycle(p *obs.Plane) {
	sp := p.Begin("count", "", time.Time{})
	sp.SetBudget(1000, 0)
	sp.To(obs.PhaseQueue)
	sp.To(obs.PhaseGraph)
	sp.To(obs.PhaseSchedule)
	sp.SetTarget("wi", "tc")
	sp.To(obs.PhaseRun)
	sp.To(obs.PhaseEncode)
	_ = sp.BreakdownUS()
	sp.End(http.StatusOK, "ok", "")
}

// BenchmarkServeObsOff measures the per-request cost of the hooks when
// observability is disabled (nil plane → nil span no-ops).
func BenchmarkServeObsOff(b *testing.B) {
	var p *obs.Plane
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obsRequestLifecycle(p)
	}
}

// BenchmarkServeObsOn measures the same hooks against a live plane
// (span pool, registry, latency families; no log writers).
func BenchmarkServeObsOn(b *testing.B) {
	p := obs.NewPlane(obs.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obsRequestLifecycle(p)
	}
}
