package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"shogun/internal/accel"
	"shogun/internal/cluster"
	"shogun/internal/datasets"
	"shogun/internal/graph"
	"shogun/internal/mine"
	"shogun/internal/obs"
	"shogun/internal/pattern"
	"shogun/internal/sim"
	"shogun/internal/telemetry"
)

// Config parameterizes a daemon.
type Config struct {
	// Addr is the listen address (":0" picks a free port; see Addr()).
	Addr string
	// Workers bounds concurrently executing queries (default 4).
	Workers int
	// QueueDepth bounds queries waiting for a worker; overflow is shed
	// with 429 (default 2×Workers).
	QueueDepth int
	// CacheBytes budgets the shared graph/schedule cache (default 256 MiB).
	CacheBytes int64
	// MaxBodyBytes caps request bodies, i.e. uploaded edge lists
	// (default 8 MiB).
	MaxBodyBytes int64
	// MaxWall is the per-request wall-clock ceiling: a request may ask
	// for less but never more (default 30s).
	MaxWall time.Duration
	// DefaultWall applies when a request specifies no wall budget
	// (default MaxWall).
	DefaultWall time.Duration
	// MaxEvents is the per-request simulation event ceiling (0 = none);
	// requests may tighten but not exceed it.
	MaxEvents int64
	// MinerWorkers bounds the software miner's goroutines per request
	// (default 1: parallelism comes from the worker pool, not from one
	// query monopolizing the host).
	MinerWorkers int
	// DrainGrace is how long before the drain deadline in-flight work is
	// hard-cancelled, leaving room to write error responses (default 1s,
	// clamped to half the drain timeout).
	DrainGrace time.Duration
	// NotReadyDelay is how long Drain keeps serving after flipping
	// /readyz to 503 before it stops accepting connections, giving load
	// balancers time to notice (default 0; clamped to a quarter of the
	// drain timeout).
	NotReadyDelay time.Duration
	// OnAccel, when set, observes every accelerator the daemon builds,
	// after accel.New and before the run (the chaos harness's injection
	// point).
	OnAccel func(*accel.Accelerator)
	// Log, when non-nil, receives one line per served request.
	Log io.Writer
	// Obs enables the request observability plane: trace IDs, per-phase
	// span attribution, the /metrics exposition, /v1/requests live
	// inspection and the access/slow logs. Nil disables all of it at
	// zero per-request cost.
	Obs *ObsConfig
}

// ObsConfig parameterizes the request observability plane (see
// internal/obs and DESIGN.md "Request observability").
type ObsConfig struct {
	// AccessLog, when non-nil, receives one structured JSON line per
	// completed request (buffered; flushed during graceful drain).
	AccessLog io.Writer
	// SlowLog, when non-nil, receives the detailed breakdown (full
	// phases, error, governor snapshot) of every request slower than
	// SlowThreshold.
	SlowLog io.Writer
	// SlowThreshold classifies a request as slow (default 1s).
	SlowThreshold time.Duration
	// SampleEvery is the epoch-sampler spacing (cycles) wired into
	// served simulations so /v1/requests/{id} can join an in-flight
	// request with its accelerator's live gauges (default 4096;
	// negative disables sampling).
	SampleEvery int
	// Recent bounds the completed-request ring kept for inspection and
	// on-demand Chrome export (default 64).
	Recent int
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxWall <= 0 {
		c.MaxWall = 30 * time.Second
	}
	if c.DefaultWall <= 0 || c.DefaultWall > c.MaxWall {
		c.DefaultWall = c.MaxWall
	}
	if c.MinerWorkers <= 0 {
		c.MinerWorkers = 1
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = time.Second
	}
}

// cachedGraph pairs a resolved graph with the key it is cached under
// (schedules over uploaded graphs reuse the upload hash).
type cachedGraph struct {
	g   *graph.Graph
	key string
}

// Server is the shogund daemon: one long-lived process serving
// count/mine/simulate queries with bounded concurrency, bounded memory,
// typed failure responses, and a graceful drain sequence.
type Server struct {
	cfg    Config
	ln     net.Listener
	http   *http.Server
	adm    *Admission
	graphs *Cache[cachedGraph]
	scheds *Cache[*pattern.Schedule]

	// hardCtx cancels in-flight request work when the drain deadline
	// approaches; per-request contexts are derived from it.
	hardCtx    context.Context
	hardCancel context.CancelFunc

	served     atomic.Int64         // responses written, any status
	panicked   atomic.Int64         // requests that hit the panic barrier
	latAccept  *telemetry.Histogram // µs, successful (2xx) requests
	latShed    *telemetry.Histogram // µs, shed (429) requests
	queueWait  *telemetry.Histogram // µs, time from arrival to admission
	statusCnts [6]atomic.Int64      // by status class 0:2xx 1:4xx 2:5xx 3:429 4:499 5:422

	// plane is the request observability layer (nil when Config.Obs is
	// nil: every obs hook below degrades to a nil-receiver no-op).
	plane       *obs.Plane
	sampleEvery int
	// drainUntil is the drain deadline (unix nanos, 0 before Drain):
	// 503 Retry-After hints switch from the EWMA backlog estimate to
	// "when this process will be gone" once it is set.
	drainUntil atomic.Int64
}

// New binds cfg.Addr and returns a ready-to-Serve daemon. It fails fast
// on an unusable address.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.Addr == "" {
		cfg.Addr = ":0"
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", cfg.Addr, err)
	}
	hardCtx, hardCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		ln:         ln,
		adm:        NewAdmission(cfg.Workers, cfg.QueueDepth),
		graphs:     NewCache[cachedGraph](cfg.CacheBytes * 15 / 16),
		scheds:     NewCache[*pattern.Schedule](cfg.CacheBytes / 16),
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
		latAccept:  telemetry.NewHistogram(),
		latShed:    telemetry.NewHistogram(),
		queueWait:  telemetry.NewHistogram(),
	}
	if oc := cfg.Obs; oc != nil {
		s.plane = obs.NewPlane(obs.Options{
			AccessLog:     oc.AccessLog,
			SlowLog:       oc.SlowLog,
			SlowThreshold: oc.SlowThreshold,
			Recent:        oc.Recent,
		})
		switch {
		case oc.SampleEvery > 0:
			s.sampleEvery = oc.SampleEvery
		case oc.SampleEvery == 0:
			s.sampleEvery = 4096
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/requests", s.handleRequests)
	mux.HandleFunc("/v1/requests/", s.handleRequestByID)
	mux.HandleFunc("/v1/count", s.handleQuery(OpCount))
	mux.HandleFunc("/v1/mine", s.handleQuery(OpMine))
	mux.HandleFunc("/v1/simulate", s.handleQuery(OpSimulate))
	// The hardened constructor is shared with the telemetry inspection
	// server: header/read/write/idle timeouts so one slow client cannot
	// pin a connection forever.
	s.http = telemetry.HardenedHTTPServer(mux)
	return s, nil
}

// Addr reports the bound address (resolves ":0" to the picked port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until Drain (or Close) stops the daemon; it
// returns nil after a clean shutdown.
func (s *Server) Serve() error {
	err := s.http.Serve(s.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Drain performs the graceful shutdown sequence: stop admitting (readyz
// flips to 503, queued waiters fail with ErrDraining), keep answering
// on open connections for NotReadyDelay so load balancers see the 503,
// then stop the listener and let in-flight requests finish,
// hard-cancelling whatever is still running DrainGrace before the
// deadline. It returns nil when every in-flight request completed
// (possibly cancelled) within the timeout.
func (s *Server) Drain(timeout time.Duration) error {
	start := time.Now()
	s.drainUntil.Store(start.Add(timeout).UnixNano())
	s.adm.StartDrain()
	// Whatever else happens below, the final requests' access/slow log
	// lines must not die in a buffer when the process exits. Close also
	// stops the plane's background flushers.
	defer s.plane.Close() //nolint:errcheck // flush error surfaced via Flush in tests
	grace := s.cfg.DrainGrace
	if grace > timeout/2 {
		grace = timeout / 2
	}
	hard := time.AfterFunc(timeout-grace, s.hardCancel)
	defer hard.Stop()
	if delay := min(s.cfg.NotReadyDelay, timeout/4); delay > 0 {
		time.Sleep(delay)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout-time.Since(start))
	defer cancel()
	err := s.http.Shutdown(ctx)
	if err != nil {
		// Deadline blown: cancel outright and tear the server down.
		s.hardCancel()
		s.http.Close()
		return fmt.Errorf("serve: drain exceeded %v: %w", timeout, err)
	}
	s.hardCancel()
	return nil
}

// Close tears the daemon down immediately (tests); prefer Drain.
func (s *Server) Close() error {
	s.adm.StartDrain()
	s.hardCancel()
	err := s.http.Close()
	if ferr := s.plane.Close(); err == nil {
		err = ferr
	}
	return err
}

// Obs exposes the observability plane (nil when Config.Obs was nil) —
// tests and embedders inspect completed spans through it.
func (s *Server) Obs() *obs.Plane { return s.plane }

// Op names a query kind.
type Op string

// The daemon's query kinds.
const (
	OpCount    Op = "count"    // software miner, embedding count only
	OpMine     Op = "mine"     // software miner, full statistics
	OpSimulate Op = "simulate" // cycle-level accelerator simulation
)

// Budget carries a request's resource limits; the server clamps each to
// its configured ceiling.
type Budget struct {
	// MaxEvents aborts a simulation after this many engine events
	// (0 = server ceiling; count/mine ignore it).
	MaxEvents int64 `json:"max_events,omitempty"`
	// DeadlineCycles aborts a simulation past this simulated time.
	DeadlineCycles int64 `json:"deadline_cycles,omitempty"`
	// MaxWallMS bounds the request's wall-clock time (0 = server default).
	MaxWallMS int64 `json:"max_wall_ms,omitempty"`
}

// Request is the JSON body accepted by /v1/count, /v1/mine and
// /v1/simulate.
type Request struct {
	// Dataset names a built-in analogue (wi|as|yo|pa|lj|or) …
	Dataset string `json:"dataset,omitempty"`
	// … or Graph carries an uploaded whitespace edge list ("u v" lines).
	Graph string `json:"graph,omitempty"`
	// Pattern names a paper pattern (tc, 4cl, …; _v suffix = induced) …
	Pattern string `json:"pattern,omitempty"`
	// … or PatternEdges gives a custom pattern ("0-1,1-2,2-0").
	PatternEdges string `json:"pattern_edges,omitempty"`
	// Induced selects vertex-induced matching semantics.
	Induced bool `json:"induced,omitempty"`
	// Scheme picks the simulated scheduling scheme (simulate only;
	// default "shogun").
	Scheme string `json:"scheme,omitempty"`
	// PEs / Width override the simulated machine shape (simulate only).
	PEs   int  `json:"pes,omitempty"`
	Width int  `json:"width,omitempty"`
	Split bool `json:"split,omitempty"`
	Merge bool `json:"merge,omitempty"`
	// Chips > 1 simulates a multi-chip cluster (simulate only): the
	// machine above is replicated per chip and the root-vertex space is
	// split by Partition (replicate | hash | range; default replicate)
	// with PartitionSeed driving the hash partitioner.
	Chips         int    `json:"chips,omitempty"`
	Partition     string `json:"partition,omitempty"`
	PartitionSeed int64  `json:"partition_seed,omitempty"`
	// Budget bounds the request.
	Budget Budget `json:"budget,omitempty"`
}

// Response is the JSON body of a successful query.
type Response struct {
	Op         Op     `json:"op"`
	Embeddings int64  `json:"embeddings"`
	GraphKey   string `json:"graph_key"`
	Schedule   string `json:"schedule"`

	// Software-miner statistics (mine).
	Tasks         int64   `json:"tasks,omitempty"`
	SetOpElements int64   `json:"setop_elements,omitempty"`
	LinesPerTask  float64 `json:"lines_per_task,omitempty"`

	// Simulation statistics (simulate).
	Cycles    int64   `json:"cycles,omitempty"`
	SimTasks  int64   `json:"sim_tasks,omitempty"`
	IUUtil    float64 `json:"iu_util,omitempty"`
	L1HitRate float64 `json:"l1_hit_rate,omitempty"`
	Events    int64   `json:"events,omitempty"`
	Splits    int64   `json:"splits,omitempty"`
	Merges    int64   `json:"merges,omitempty"`

	// Cluster statistics (simulate with chips > 1).
	Chips         int     `json:"chips,omitempty"`
	Migrations    int64   `json:"migrations,omitempty"`
	MaxOccupancy  float64 `json:"max_occupancy,omitempty"`
	MeanOccupancy float64 `json:"mean_occupancy,omitempty"`

	QueueMS   float64 `json:"queue_ms"`
	ElapsedMS float64 `json:"elapsed_ms"`

	// Trace echoes the request's trace ID (also in the X-Shogun-Trace
	// response header) when observability is on.
	Trace string `json:"trace,omitempty"`
	// PhasesUS attributes the request's server-side time to lifecycle
	// phases (µs). Encode is still running when the response is
	// serialized, so it reads 0 here; the access log has the final
	// value.
	PhasesUS *obs.Phases `json:"phases_us,omitempty"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	// Kind is the machine-readable error class; see DESIGN.md "Serving &
	// overload behavior" for the full status table.
	Kind string `json:"kind"`
	// RetryAfterS mirrors the Retry-After header on 429/503.
	RetryAfterS int64 `json:"retry_after_s,omitempty"`
}

// StatusClientClosed is nginx's non-standard 499 "client closed
// request", used when the requester went away mid-query.
const StatusClientClosed = 499

// classify maps an error to its HTTP status and machine-readable kind.
// Each typed failure gets a distinct status: overload is 429, drain
// 503, client-gone 499, wall budget 408, simulated budgets 422, bad
// input 400, unknown names 404, contained panics and deadlocks 500.
func classify(err error) (status int, kind string) {
	var inv *sim.InvariantError
	var dead *sim.DeadlockError
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, errNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, sim.ErrWallBudget):
		return http.StatusRequestTimeout, "wall_budget"
	case errors.Is(err, sim.ErrEventBudget):
		return http.StatusUnprocessableEntity, "event_budget"
	case errors.Is(err, sim.ErrDeadline):
		return http.StatusUnprocessableEntity, "sim_deadline"
	case errors.Is(err, sim.ErrNoProgress):
		return http.StatusInternalServerError, "no_progress"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout, "wall_budget"
	case errors.Is(err, sim.ErrCancelled), errors.Is(err, context.Canceled):
		return StatusClientClosed, "cancelled"
	case errors.As(err, &inv):
		return http.StatusInternalServerError, "invariant"
	case errors.As(err, &dead):
		return http.StatusInternalServerError, "deadlock"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// Sentinels for input failures so classify stays errors.Is-based.
var (
	errBadRequest = errors.New("bad request")
	errNotFound   = errors.New("not found")
)

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errBadRequest}, args...)...)
}

func notFoundf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errNotFound}, args...)...)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.adm.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// Stats is the /statz document.
type Stats struct {
	Admission AdmissionStats        `json:"admission"`
	Graphs    CacheStats            `json:"graph_cache"`
	Schedules CacheStats            `json:"schedule_cache"`
	Served    int64                 `json:"served"`
	Panics    int64                 `json:"contained_panics"`
	Status    map[string]int64      `json:"status"`
	LatencyUS telemetry.HistSummary `json:"latency_us"`      // 2xx
	ShedUS    telemetry.HistSummary `json:"shed_latency_us"` // 429
	QueueUS   telemetry.HistSummary `json:"queue_wait_us"`
}

// StatsSnapshot returns the daemon's live counters (also served at
// /statz).
func (s *Server) StatsSnapshot() Stats {
	return Stats{
		Admission: s.adm.Stats(),
		Graphs:    s.graphs.Stats(),
		Schedules: s.scheds.Stats(),
		Served:    s.served.Load(),
		Panics:    s.panicked.Load(),
		Status: map[string]int64{
			"2xx": s.statusCnts[0].Load(),
			"4xx": s.statusCnts[1].Load(),
			"5xx": s.statusCnts[2].Load(),
			"429": s.statusCnts[3].Load(),
			"499": s.statusCnts[4].Load(),
			"422": s.statusCnts[5].Load(),
		},
		LatencyUS: s.latAccept.Summary(),
		ShedUS:    s.latShed.Summary(),
		QueueUS:   s.queueWait.Summary(),
	}
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.StatsSnapshot()) //nolint:errcheck // client-side failure
}

func (s *Server) countStatus(status int) {
	switch {
	case status == http.StatusTooManyRequests:
		s.statusCnts[3].Add(1)
	case status == StatusClientClosed:
		s.statusCnts[4].Add(1)
	case status == http.StatusUnprocessableEntity:
		s.statusCnts[5].Add(1)
	case status >= 500:
		s.statusCnts[2].Add(1)
	case status >= 400:
		s.statusCnts[1].Add(1)
	default:
		s.statusCnts[0].Add(1)
	}
	s.served.Add(1)
}

func (s *Server) writeError(w http.ResponseWriter, op Op, sp *obs.Span, err error) {
	status, kind := classify(err)
	body := ErrorBody{Error: err.Error(), Kind: kind}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		body.RetryAfterS = int64(s.retryAfter() / time.Second)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", body.RetryAfterS))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body) //nolint:errcheck // client-side failure
	s.countStatus(status)
	s.logf("%s %d %s: %v", op, status, kind, err)
	// End last: it retires sp to the span pool, after which sp may be
	// re-issued to another request. Anything that could panic above runs
	// while the span is still live, so the handler's panic barrier ends
	// this request's span, never a stranger's.
	sp.End(status, kind, err.Error())
}

// retryAfter picks the hint for a 429/503: normally the EWMA backlog
// estimate, but once draining the backlog will never clear here — the
// honest hint is when this process will be gone and a replacement can
// answer (remaining drain time, at least 1s).
func (s *Server) retryAfter() time.Duration {
	if s.adm.Draining() {
		if until := s.drainUntil.Load(); until != 0 {
			if left := time.Until(time.Unix(0, until)); left > 0 {
				return left.Round(time.Second) + time.Second
			}
		}
		return time.Second
	}
	return s.adm.RetryAfter()
}

// handleQuery builds the handler for one query kind. The sequence is:
// parse (bounded body) → admit (bounded pool + queue, shed on overflow)
// → resolve graph/schedule through the shared cache → run under the
// per-request governor → respond. A panic anywhere below the barrier
// degrades to a 500 for this request only.
func (s *Server) handleQuery(op Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		arrived := time.Now()
		// The span opens in PhaseParse; every exit path below funnels
		// through writeError or the success epilogue. End retires the
		// span to the pool, so both paths End strictly last and the
		// epilogue nils sp — the panic barrier then cannot End a span
		// that was already pooled and possibly re-issued to another
		// request.
		sp := s.plane.Begin(string(op), r.Header.Get(obs.TraceHeader), arrived)
		if sp != nil {
			w.Header().Set(obs.TraceHeader, sp.TraceID())
		}
		defer func() {
			if p := recover(); p != nil {
				s.panicked.Add(1)
				err := fmt.Errorf("contained panic: %v", p)
				s.logf("panic serving %s: %v\n%s", op, p, debug.Stack())
				s.writeError(w, op, sp, &sim.InvariantError{
					Op: "serve: " + string(op), PanicValue: err, Stack: string(debug.Stack()),
				})
			}
		}()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, op, sp, badRequestf("use POST (got %s)", r.Method))
			return
		}
		req, err := s.parseRequest(w, r)
		if err != nil {
			s.writeError(w, op, sp, err)
			return
		}
		sp.SetBudget(req.Budget.MaxWallMS, req.Budget.MaxEvents)
		sp.To(obs.PhaseQueue)
		if err := s.adm.Acquire(r.Context()); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				err = fmt.Errorf("%w while queued (%v)", sim.ErrCancelled, err)
			}
			s.observeLatency(classifyStatus(err), arrived)
			s.writeError(w, op, sp, err)
			return
		}
		admitted := time.Now()
		s.queueWait.Observe(admitted.Sub(arrived).Microseconds())
		defer func() { s.adm.Release(time.Since(admitted)) }()

		resp, err := s.execute(r.Context(), op, req, sp)
		if err != nil {
			s.observeLatency(classifyStatus(err), arrived)
			s.writeError(w, op, sp, err)
			return
		}
		sp.To(obs.PhaseEncode)
		resp.QueueMS = float64(admitted.Sub(arrived)) / float64(time.Millisecond)
		resp.ElapsedMS = float64(time.Since(admitted)) / float64(time.Millisecond)
		if sp != nil {
			resp.Trace = sp.TraceID()
			ph := sp.BreakdownUS()
			resp.PhasesUS = &ph
		}
		s.latAccept.Observe(time.Since(arrived).Microseconds())
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp) //nolint:errcheck // client-side failure
		s.countStatus(http.StatusOK)
		s.logf("%s 200 %s/%s emb=%d queue=%.1fms run=%.1fms",
			op, resp.GraphKey, resp.Schedule, resp.Embeddings, resp.QueueMS, resp.ElapsedMS)
		sp.End(http.StatusOK, "ok", "")
		sp = nil // pooled — the panic barrier must not see it again
	}
}

func classifyStatus(err error) int {
	st, _ := classify(err)
	return st
}

func (s *Server) observeLatency(status int, arrived time.Time) {
	if status == http.StatusTooManyRequests {
		s.latShed.Observe(time.Since(arrived).Microseconds())
	}
}

// parseRequest decodes the bounded JSON body.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (*Request, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, badRequestf("body exceeds %d byte limit", tooBig.Limit)
		}
		return nil, badRequestf("malformed JSON body: %v", err)
	}
	if (req.Dataset == "") == (req.Graph == "") {
		return nil, badRequestf("exactly one of \"dataset\" or \"graph\" is required")
	}
	if (req.Pattern == "") == (req.PatternEdges == "") {
		return nil, badRequestf("exactly one of \"pattern\" or \"pattern_edges\" is required")
	}
	if req.Budget.MaxEvents < 0 || req.Budget.DeadlineCycles < 0 || req.Budget.MaxWallMS < 0 {
		return nil, badRequestf("budget values must be non-negative")
	}
	if req.Chips < 0 {
		return nil, badRequestf("chips must be non-negative (got %d)", req.Chips)
	}
	if _, err := cluster.ParseMode(req.Partition); err != nil {
		return nil, badRequestf("%v", err)
	}
	return &req, nil
}

// resolveGraph returns the request's graph through the shared cache.
func (s *Server) resolveGraph(req *Request) (cachedGraph, error) {
	if req.Dataset != "" {
		key := "dataset/" + req.Dataset
		return s.graphs.Get(key, func() (cachedGraph, int64, error) {
			g, err := datasets.Get(req.Dataset)
			if err != nil {
				return cachedGraph{}, 0, notFoundf("%v", err)
			}
			return cachedGraph{g, key}, graphBytes(g), nil
		})
	}
	sum := sha256.Sum256([]byte(req.Graph))
	key := "upload/" + hex.EncodeToString(sum[:8])
	return s.graphs.Get(key, func() (cachedGraph, int64, error) {
		g, err := graph.ReadEdgeList(strings.NewReader(req.Graph))
		if err != nil {
			return cachedGraph{}, 0, badRequestf("graph upload: %v", err)
		}
		return cachedGraph{g, key}, graphBytes(g), nil
	})
}

// graphBytes estimates a CSR graph's resident size (offsets are int64,
// neighbors int32 stored in both directions) plus a fixed overhead for
// the lazily built hub index that rides on cached graphs.
func graphBytes(g *graph.Graph) int64 {
	const structOverhead = 512
	return int64(g.NumVertices()+1)*8 + g.NumEdges()*2*4 + structOverhead
}

// resolveSchedule returns the request's schedule through the shared
// cache. Named patterns honor the _v suffix convention; custom edge
// lists use the explicit induced flag.
func (s *Server) resolveSchedule(req *Request) (*pattern.Schedule, error) {
	var key string
	build := func() (pattern.Pattern, bool, error) {
		if req.Pattern != "" {
			p, err := pattern.ByName(req.Pattern)
			if err != nil {
				return pattern.Pattern{}, false, notFoundf("%v", err)
			}
			return p, req.Induced || strings.HasSuffix(req.Pattern, "_v"), nil
		}
		p, err := pattern.Parse("custom", req.PatternEdges)
		if err != nil {
			return pattern.Pattern{}, false, badRequestf("pattern_edges: %v", err)
		}
		return p, req.Induced, nil
	}
	if req.Pattern != "" {
		key = fmt.Sprintf("named/%s/induced=%t", req.Pattern, req.Induced)
	} else {
		key = fmt.Sprintf("custom/%s/induced=%t", req.PatternEdges, req.Induced)
	}
	return s.scheds.Get(key, func() (*pattern.Schedule, int64, error) {
		p, induced, err := build()
		if err != nil {
			return nil, 0, err
		}
		sched, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: induced})
		if err != nil {
			return nil, 0, badRequestf("schedule: %v", err)
		}
		const scheduleBytes = 4096 // schedules are small and flat
		return sched, scheduleBytes, nil
	})
}

// wallBudget resolves a request's effective wall-clock budget.
func (s *Server) wallBudget(b Budget) time.Duration {
	wall := s.cfg.DefaultWall
	if b.MaxWallMS > 0 {
		wall = time.Duration(b.MaxWallMS) * time.Millisecond
	}
	if wall > s.cfg.MaxWall {
		wall = s.cfg.MaxWall
	}
	return wall
}

// execute resolves inputs and runs one admitted query under its budget.
// Phase accounting: graph resolution (cache lookup or single-flight
// build), schedule resolution, then the governed run under pprof labels
// so CPU profiles attribute samples by endpoint and pattern.
func (s *Server) execute(reqCtx context.Context, op Op, req *Request, sp *obs.Span) (*Response, error) {
	sp.To(obs.PhaseGraph)
	cg, err := s.resolveGraph(req)
	if err != nil {
		return nil, err
	}
	sp.To(obs.PhaseSchedule)
	sched, err := s.resolveSchedule(req)
	if err != nil {
		return nil, err
	}
	sp.SetTarget(cg.key, sched.Name)
	sp.To(obs.PhaseRun)
	// The work context merges: the client connection (gone client stops
	// the query), the drain hard-cancel (a blown drain deadline stops
	// it), and the wall budget.
	ctx, cancel := context.WithTimeout(reqCtx, s.wallBudget(req.Budget))
	defer cancel()
	stop := context.AfterFunc(s.hardCtx, cancel)
	defer stop()

	resp := &Response{Op: op, GraphKey: cg.key, Schedule: sched.Name}
	run := func(ctx context.Context) error {
		switch op {
		case OpCount, OpMine:
			res, err := mine.ParallelCountContext(ctx, cg.g, sched, s.cfg.MinerWorkers)
			if err != nil {
				return s.refineCancel(ctx, reqCtx, err)
			}
			resp.Embeddings = res.Embeddings
			if op == OpMine {
				resp.Tasks = res.Tasks()
				resp.SetOpElements = res.SetOpElements
				resp.LinesPerTask = res.AvgIntermediateLinesPerTask()
			}
		case OpSimulate:
			if req.Chips > 1 {
				res, err := s.simulateCluster(ctx, req, cg.g, sched, sp)
				if err != nil {
					return s.refineCancel(ctx, reqCtx, err)
				}
				resp.Embeddings = res.Embeddings
				resp.Cycles = int64(res.Cycles)
				resp.SimTasks = res.Tasks + res.LeafTasks
				resp.Events = res.Events
				resp.Chips = res.Chips
				resp.Migrations = res.Migrations
				resp.MaxOccupancy = res.MaxOccupancy
				resp.MeanOccupancy = res.MeanOccupancy
				return nil
			}
			res, err := s.simulate(ctx, req, cg.g, sched, sp)
			if err != nil {
				return s.refineCancel(ctx, reqCtx, err)
			}
			resp.Embeddings = res.Embeddings
			resp.Cycles = int64(res.Cycles)
			resp.SimTasks = res.Tasks + res.LeafTasks
			resp.IUUtil = res.IUUtil
			resp.L1HitRate = res.L1HitRate
			resp.Events = res.Events
			resp.Splits = res.Splits
			resp.Merges = res.Merges
		default:
			return badRequestf("unknown op %q", op)
		}
		return nil
	}
	if s.plane != nil {
		err = runLabeled(ctx, string(op), sched.Name, run)
	} else {
		err = run(ctx)
	}
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// runLabeled runs fn under pprof labels: CPU (and goroutine) profiles
// taken via /debug/pprof attribute the run's samples to its endpoint
// and pattern. The miner's worker goroutines inherit the labels.
func runLabeled(ctx context.Context, endpoint, pattern string, fn func(context.Context) error) error {
	var err error
	pprof.Do(ctx, pprof.Labels("endpoint", endpoint, "pattern", pattern), func(ctx context.Context) {
		err = fn(ctx)
	})
	return err
}

// refineCancel sharpens a generic cancellation into its true cause: a
// tripped wall budget (deadline on the work context) or the drain
// hard-cancel, which would otherwise both surface as ErrCancelled.
func (s *Server) refineCancel(workCtx, reqCtx context.Context, err error) error {
	if !errors.Is(err, sim.ErrCancelled) && !errors.Is(err, context.Canceled) {
		return err
	}
	switch {
	case errors.Is(workCtx.Err(), context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", sim.ErrWallBudget, err)
	case s.hardCtx.Err() != nil && reqCtx.Err() == nil:
		return fmt.Errorf("%w: cancelled by drain (%v)", ErrDraining, err)
	default:
		return err
	}
}

// simConfig builds the simulated chip's config from the request's
// machine-shape knobs and clamped budgets (shared by the single-chip
// and cluster paths).
func (s *Server) simConfig(req *Request, sp *obs.Span) accel.Config {
	scheme := accel.Scheme(req.Scheme)
	if req.Scheme == "" {
		scheme = accel.SchemeShogun
	}
	cfg := accel.DefaultConfig(scheme)
	if req.PEs > 0 {
		cfg.NumPEs = req.PEs
	}
	if req.Width > 0 {
		cfg.PE.Width = req.Width
		cfg.TokensPerDepth = req.Width
		cfg.Tree.EntriesPerBunch = req.Width
	}
	cfg.EnableSplitting = req.Split
	cfg.EnableMerging = req.Merge
	cfg.MaxEvents = clampBudget(req.Budget.MaxEvents, s.cfg.MaxEvents)
	if req.Budget.DeadlineCycles > 0 {
		cfg.Deadline = sim.Time(req.Budget.DeadlineCycles)
	}
	if sp != nil && s.sampleEvery > 0 && cfg.SampleEvery == 0 {
		cfg.SampleEvery = sim.Time(s.sampleEvery)
	}
	return cfg
}

// simulateCluster runs a multi-chip scale-out simulation (Chips > 1)
// under the request's clamped budgets. Cross-chip conservation
// identities verify by default.
func (s *Server) simulateCluster(ctx context.Context, req *Request, g *graph.Graph, sched *pattern.Schedule, sp *obs.Span) (*cluster.Result, error) {
	chip := s.simConfig(req, sp)
	ccfg := cluster.DefaultConfig(chip.Scheme, req.Chips)
	ccfg.Chip = chip
	ccfg.Partition = cluster.Mode(req.Partition)
	ccfg.PartitionSeed = req.PartitionSeed
	cl, err := cluster.New(g, sched, ccfg)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	if s.cfg.OnAccel != nil {
		for _, chip := range cl.Chips() {
			s.cfg.OnAccel(chip)
		}
	}
	if sp != nil {
		eng := cl.Engine()
		sp.SetSnapshot(func() string { return eng.Snapshot().String() })
	}
	return cl.RunContext(ctx)
}

// simulate runs the accelerator under the request's clamped budgets.
func (s *Server) simulate(ctx context.Context, req *Request, g *graph.Graph, sched *pattern.Schedule, sp *obs.Span) (*accel.Result, error) {
	cfg := s.simConfig(req, sp)
	a, err := accel.New(g, sched, cfg)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	if s.cfg.OnAccel != nil {
		s.cfg.OnAccel(a)
	}
	if sp != nil {
		if tel := a.Telemetry(); tel != nil {
			// Joins a live /v1/requests/{id} view with the run: the
			// sampler's columns are mutex-guarded, so reading the last
			// epoch from another goroutine is safe while the engine
			// keeps sampling.
			sampler := tel.Sampler
			sp.SetProgress(func() map[string]int64 {
				ts := sampler.Snapshot()
				out := make(map[string]int64, 8)
				out["cycle"] = ts.EndCycle()
				out["epochs"] = int64(len(ts.Cycles))
				for _, name := range [...]string{
					"engine/events", "tasks/executed", "dram/queue", "noc/inflight",
				} {
					if col := ts.Col(name); len(col) > 0 {
						out[name] = col[len(col)-1]
					}
				}
				return out
			})
		}
		// The governor snapshot rides on the slow-request log: by the
		// time the log renders it the run has finished, so reading the
		// engine is safe.
		eng := a.Engine()
		sp.SetSnapshot(func() string { return eng.Snapshot().String() })
	}
	return a.RunContext(ctx)
}

// clampBudget applies "may tighten, may not exceed": zero means take
// the ceiling, nonzero is capped by it.
func clampBudget(requested, ceiling int64) int64 {
	switch {
	case ceiling <= 0:
		return requested
	case requested <= 0 || requested > ceiling:
		return ceiling
	default:
		return requested
	}
}
