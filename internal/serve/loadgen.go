package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"shogun/internal/obs"
	"shogun/internal/telemetry"
)

// LoadOptions parameterizes one open-loop load level against a running
// daemon.
type LoadOptions struct {
	// URL is the full query endpoint, e.g. "http://127.0.0.1:8477/v1/count".
	URL string
	// Body is the JSON request sent on every query.
	Body []byte
	// QPS is the open-loop arrival rate: requests launch on a fixed
	// clock regardless of completions (that is what makes saturation
	// visible — a closed loop would self-throttle and hide the knee).
	QPS float64
	// Duration is how long to offer load.
	Duration time.Duration
	// Timeout bounds each request on the client side (default 30s).
	Timeout time.Duration
	// MaxInFlight is the generator's own safety valve: arrivals beyond
	// it are counted as Dropped instead of spawning goroutines without
	// bound (default 4096).
	MaxInFlight int
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// LoadReport summarizes one load level. Latencies are client-observed,
// in microseconds, split by outcome: Latency covers accepted (2xx)
// responses, ShedLatency covers 429s (sheds must be fast — that is the
// point of shedding).
type LoadReport struct {
	QPS        float64       `json:"qps"`
	Duration   time.Duration `json:"-"`
	DurationMS int64         `json:"duration_ms"`
	Offered    int64         `json:"offered"`     // arrivals the clock generated
	Sent       int64         `json:"sent"`        // requests actually issued
	Dropped    int64         `json:"dropped"`     // generator in-flight cap hit
	Accepted   int64         `json:"accepted"`    // 2xx
	Shed       int64         `json:"shed"`        // 429
	Unavail    int64         `json:"unavailable"` // 503 (draining)
	Budgeted   int64         `json:"budgeted"`    // 408/422 typed budget errors
	Failed     int64         `json:"failed"`      // transport errors, 5xx, timeouts

	Latency     telemetry.HistSummary `json:"latency_us"`
	ShedLatency telemetry.HistSummary `json:"shed_latency_us"`

	// ServerPhasesUS breaks accepted-request server time down by phase
	// (parse/queue/graph/schedule/run/encode), aggregated from the
	// phases_us attribution each 2xx response carries when the daemon
	// runs with observability on. Empty when the daemon does not report
	// phases. This is what lets a saturation sweep show queue-wait —
	// not run time — absorbing the latency past the knee.
	ServerPhasesUS map[string]telemetry.HistSummary `json:"server_phases_us,omitempty"`

	// StatusCounts maps HTTP status → count (0 = transport error).
	StatusCounts map[int]int64 `json:"status_counts"`
	// Embeddings maps each distinct embedding count observed in 2xx
	// responses to its frequency; a correct daemon yields exactly one
	// key, so callers can verify bit-exactness against a golden count.
	Embeddings map[int64]int64 `json:"embeddings"`
}

// AcceptRate reports accepted / sent.
func (r *LoadReport) AcceptRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Accepted) / float64(r.Sent)
}

// ShedRate reports shed / sent.
func (r *LoadReport) ShedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

// RunLoad offers opts.QPS of identical queries for opts.Duration and
// reports what came back. It returns early (with the partial report)
// only if ctx is cancelled; server-side rejections are data, not
// errors.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	if opts.QPS <= 0 {
		return nil, fmt.Errorf("serve: load QPS must be positive (got %g)", opts.QPS)
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("serve: load duration must be positive (got %v)", opts.Duration)
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 4096
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Timeout}
		defer client.CloseIdleConnections()
	}

	rep := &LoadReport{
		QPS:          opts.QPS,
		Duration:     opts.Duration,
		DurationMS:   opts.Duration.Milliseconds(),
		StatusCounts: map[int]int64{},
		Embeddings:   map[int64]int64{},
	}
	latAcc := telemetry.NewHistogram()
	latShed := telemetry.NewHistogram()
	var phases phaseHists
	for i := range phases.h {
		phases.h[i] = telemetry.NewHistogram()
	}
	var mu sync.Mutex // guards the report maps
	var inflight atomic.Int64
	var wg sync.WaitGroup

	interval := time.Duration(float64(time.Second) / opts.QPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(opts.Duration)
	defer deadline.Stop()

	var cancelled bool
loop:
	for {
		select {
		case <-ctx.Done():
			cancelled = true
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
			rep.Offered++
			if inflight.Load() >= int64(opts.MaxInFlight) {
				rep.Dropped++
				continue
			}
			rep.Sent++
			inflight.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer inflight.Add(-1)
				status, emb := oneRequest(ctx, client, opts, latAcc, latShed, &phases)
				mu.Lock()
				rep.StatusCounts[status]++
				switch {
				case status >= 200 && status < 300:
					rep.Accepted++
					rep.Embeddings[emb]++
				case status == http.StatusTooManyRequests:
					rep.Shed++
				case status == http.StatusServiceUnavailable:
					rep.Unavail++
				case status == http.StatusRequestTimeout || status == http.StatusUnprocessableEntity:
					rep.Budgeted++
				default:
					rep.Failed++
				}
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	rep.Latency = latAcc.Summary()
	rep.ShedLatency = latShed.Summary()
	rep.ServerPhasesUS = phases.summaries()
	if cancelled {
		return rep, ctx.Err()
	}
	return rep, nil
}

// phaseHists aggregates the server-reported phase attribution from 2xx
// responses, one histogram per obs phase. Histograms are atomic, so the
// load goroutines write without the report mutex.
type phaseHists struct {
	h   [obs.NumPhases]*telemetry.Histogram
	any atomic.Bool // set once the first response carries phases_us
}

func (p *phaseHists) observe(ph *obs.Phases) {
	if ph == nil {
		return
	}
	p.any.Store(true)
	p.h[obs.PhaseParse].Observe(ph.Parse)
	p.h[obs.PhaseQueue].Observe(ph.Queue)
	p.h[obs.PhaseGraph].Observe(ph.Graph)
	p.h[obs.PhaseSchedule].Observe(ph.Schedule)
	p.h[obs.PhaseRun].Observe(ph.Run)
	p.h[obs.PhaseEncode].Observe(ph.Encode)
}

func (p *phaseHists) summaries() map[string]telemetry.HistSummary {
	if !p.any.Load() {
		return nil
	}
	out := make(map[string]telemetry.HistSummary, obs.NumPhases)
	for i, h := range p.h {
		out[obs.Phase(i).String()] = h.Summary()
	}
	return out
}

// oneRequest issues a single query, recording latency by outcome.
// Status 0 means the request never produced an HTTP response.
func oneRequest(ctx context.Context, client *http.Client, opts LoadOptions, latAcc, latShed *telemetry.Histogram, phases *phaseHists) (status int, embeddings int64) {
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.URL, bytes.NewReader(opts.Body))
	if err != nil {
		return 0, 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		// A cancelled sweep is not a transport failure worth recording.
		if errors.Is(err, context.Canceled) {
			return 0, 0
		}
		return 0, 0
	}
	defer resp.Body.Close()
	lat := time.Since(t0).Microseconds()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		latAcc.Observe(lat)
		var body Response
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body) == nil {
			embeddings = body.Embeddings
			phases.observe(body.PhasesUS)
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		latShed.Observe(lat)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
	}
	return resp.StatusCode, embeddings
}

// String renders a one-line digest for sweep tables.
func (r *LoadReport) String() string {
	return fmt.Sprintf("qps=%-6g sent=%-6d ok=%-6d shed=%-5d budget=%-4d fail=%-4d p50=%.1fms p99=%.1fms shed-p99=%.1fms",
		r.QPS, r.Sent, r.Accepted, r.Shed, r.Budgeted, r.Failed,
		float64(r.Latency.P50)/1000, float64(r.Latency.P99)/1000, float64(r.ShedLatency.P99)/1000)
}
