package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"shogun/internal/accel"
)

// TestSaturationShedsNotDegrades is the in-repo version of the
// BENCH_0007 experiment: under 2× the pool's capacity the daemon must
// shed the excess with fast 429s while the latency of *accepted*
// requests stays close to the uncontended level — overload shows up as
// refusals, not as a latency collapse for everyone.
func TestSaturationShedsNotDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep skipped in -short mode")
	}
	// A fixed stall pins the service time, so capacity is known by
	// construction: 2 workers × (1 / 25ms) = 80 rps. The graph is a
	// trivial upload (K4) so the simulation itself costs microseconds
	// and the stall dominates — the test measures the admission gate,
	// not the simulator.
	const stall = 25 * time.Millisecond
	const workers = 2
	capacity := float64(workers) * float64(time.Second) / float64(stall)
	_, base := testServer(t, Config{
		Workers:    workers,
		QueueDepth: 2,
		OnAccel:    func(*accel.Accelerator) { time.Sleep(stall) },
	})
	body, err := json.Marshal(Request{
		Graph:   "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n",
		Pattern: "tc",
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(qps float64) *LoadReport {
		t.Helper()
		rep, err := RunLoad(context.Background(), LoadOptions{
			URL:      base + "/v1/simulate",
			Body:     body,
			QPS:      qps,
			Duration: 2 * time.Second,
			Timeout:  10 * time.Second,
		})
		if err != nil {
			t.Fatalf("RunLoad(%g): %v", qps, err)
		}
		t.Logf("%s", rep)
		return rep
	}

	low := run(capacity / 2) // comfortably under the knee
	high := run(2 * capacity)

	if low.Accepted == 0 || high.Accepted == 0 {
		t.Fatalf("no accepted requests (low=%d high=%d)", low.Accepted, high.Accepted)
	}
	if low.Shed > low.Sent/10 {
		t.Fatalf("shedding below capacity: %d/%d shed", low.Shed, low.Sent)
	}
	if high.Shed == 0 {
		t.Fatal("no shedding at 2× capacity: the admission gate is not bounding load")
	}
	for emb := range low.Embeddings {
		if _, ok := high.Embeddings[emb]; len(high.Embeddings) > 0 && !ok {
			t.Fatalf("accepted responses disagree across levels: %v vs %v",
				low.Embeddings, high.Embeddings)
		}
	}
	// The acceptance bar: p99 of accepted requests at 2× load within 2×
	// of the uncontended p99 (slack for scheduler noise on small
	// samples). Queueing is bounded by QueueDepth, so accepted latency
	// is bounded by (queue+1) service times regardless of offered load.
	limit := 2*low.Latency.P99 + (50 * time.Millisecond).Microseconds()
	if high.Latency.P99 > limit {
		t.Fatalf("accepted p99 degraded under overload: %dµs at 2× vs %dµs at ½× (limit %dµs)",
			high.Latency.P99, low.Latency.P99, limit)
	}
	// Sheds must be fast — faster than service: that is the point.
	if high.ShedLatency.P99 > low.Latency.P50 {
		t.Fatalf("shed p99 (%dµs) slower than uncontended p50 (%dµs): 429s are not cheap",
			high.ShedLatency.P99, low.Latency.P50)
	}
	if rep := high; rep.Failed > 0 {
		t.Fatalf("%d untyped failures under overload: %+v", rep.Failed, rep.StatusCounts)
	}
}

// TestLoadReportVerification pins the generator's bookkeeping on a tiny
// run: offered ≈ qps·duration, and every outcome lands in exactly one
// bucket.
func TestLoadReportBookkeeping(t *testing.T) {
	_, base := testServer(t, Config{})
	body, _ := json.Marshal(Request{Dataset: "wi", Pattern: "tc"})
	rep, err := RunLoad(context.Background(), LoadOptions{
		URL: base + "/v1/count", Body: body, QPS: 50, Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Sent != rep.Offered-rep.Dropped {
		t.Fatalf("offered/sent/dropped inconsistent: %+v", rep)
	}
	sum := rep.Accepted + rep.Shed + rep.Unavail + rep.Budgeted + rep.Failed
	if sum != rep.Sent {
		t.Fatalf("outcome buckets (%d) do not sum to sent (%d): %+v", sum, rep.Sent, rep)
	}
	if rep.Accepted == 0 || rep.StatusCounts[http.StatusOK] != rep.Accepted {
		t.Fatalf("status counts: %+v", rep)
	}
	if len(rep.Embeddings) != 1 {
		t.Fatalf("embeddings not uniform: %v", rep.Embeddings)
	}
	if rep.AcceptRate() <= 0 || rep.AcceptRate() > 1 {
		t.Fatalf("accept rate %g", rep.AcceptRate())
	}
}

// TestRunLoadValidation rejects nonsense options.
func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadOptions{QPS: 0, Duration: time.Second}); err == nil {
		t.Fatal("QPS 0 accepted")
	}
	if _, err := RunLoad(context.Background(), LoadOptions{QPS: 10, Duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
}
