package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Admission errors; match with errors.Is. The HTTP layer maps
// ErrOverloaded to 429 (+ Retry-After) and ErrDraining to 503.
var (
	// ErrOverloaded reports that both the worker pool and the bounded
	// wait queue are full: the request is shed immediately rather than
	// queued without bound.
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	// ErrDraining reports that the daemon has stopped admitting work
	// (graceful shutdown in progress).
	ErrDraining = errors.New("serve: draining, not admitting new work")
)

// Admission is the daemon's overload gate: a bounded worker pool plus a
// bounded wait queue. A request first tries to take a worker slot; if
// none is free it waits in the queue — but only if a queue slot is
// free, otherwise it is shed instantly with ErrOverloaded. Memory and
// goroutine usage per daemon are therefore bounded by
// workers + queueDepth regardless of offered load: overload turns into
// fast 429s, not latency collapse or OOM.
type Admission struct {
	sem      chan struct{} // worker slots
	queueCap int64
	waiting  atomic.Int64
	draining chan struct{}
	drainOne sync.Once

	admitted atomic.Int64 // granted a worker slot
	queued   atomic.Int64 // admitted after waiting in the queue
	shed     atomic.Int64 // rejected with ErrOverloaded
	refused  atomic.Int64 // rejected with ErrDraining
	aborted  atomic.Int64 // left the queue on context cancellation

	mu        sync.Mutex
	ewmaSvcMS float64 // exponentially weighted mean service time
}

// NewAdmission builds an admission controller with the given worker
// pool size (minimum 1) and wait-queue depth (minimum 0).
func NewAdmission(workers, queueDepth int) *Admission {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Admission{
		sem:      make(chan struct{}, workers),
		queueCap: int64(queueDepth),
		draining: make(chan struct{}),
	}
}

// Acquire claims a worker slot, waiting in the bounded queue if
// necessary. It fails fast with ErrOverloaded when the queue is full,
// with ErrDraining once StartDrain has been called, and with ctx.Err()
// if the caller gives up while queued. On success the caller must
// Release exactly once.
func (a *Admission) Acquire(ctx context.Context) error {
	select {
	case <-a.draining:
		a.refused.Add(1)
		return ErrDraining
	default:
	}
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return nil
	default:
	}
	// Pool busy: take a queue slot or shed. The counter is the queue —
	// the goroutine itself is the waiter, parked on the select below.
	for {
		n := a.waiting.Load()
		if n >= a.queueCap {
			a.shed.Add(1)
			return ErrOverloaded
		}
		if a.waiting.CompareAndSwap(n, n+1) {
			break
		}
	}
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		a.queued.Add(1)
		return nil
	case <-a.draining:
		a.refused.Add(1)
		return ErrDraining
	case <-ctx.Done():
		a.aborted.Add(1)
		return ctx.Err()
	}
}

// Release returns a worker slot, folding the request's service time
// into the EWMA that RetryAfter bases its hint on.
func (a *Admission) Release(service time.Duration) {
	<-a.sem
	ms := float64(service) / float64(time.Millisecond)
	a.mu.Lock()
	if a.ewmaSvcMS == 0 {
		a.ewmaSvcMS = ms
	} else {
		const alpha = 0.2
		a.ewmaSvcMS = (1-alpha)*a.ewmaSvcMS + alpha*ms
	}
	a.mu.Unlock()
}

// StartDrain permanently stops admission: queued waiters fail with
// ErrDraining and future Acquires are refused. Idempotent.
func (a *Admission) StartDrain() {
	a.drainOne.Do(func() { close(a.draining) })
}

// Draining reports whether StartDrain has been called.
func (a *Admission) Draining() bool {
	select {
	case <-a.draining:
		return true
	default:
		return false
	}
}

// RetryAfter estimates when a shed client should come back: the time
// for the current backlog (active + queued requests) to clear through
// the worker pool at the observed mean service time, rounded up to a
// whole second (the HTTP Retry-After granularity), at least 1s.
func (a *Admission) RetryAfter() time.Duration {
	a.mu.Lock()
	svc := a.ewmaSvcMS
	a.mu.Unlock()
	if svc <= 0 {
		svc = 100 // no completions yet: assume 100ms requests
	}
	backlog := float64(len(a.sem)) + float64(a.waiting.Load())
	workers := float64(cap(a.sem))
	sec := math.Ceil(backlog * svc / workers / 1000)
	if sec < 1 {
		sec = 1
	}
	return time.Duration(sec) * time.Second
}

// AdmissionStats is a point-in-time snapshot of the gate.
type AdmissionStats struct {
	Workers    int     `json:"workers"`
	QueueDepth int     `json:"queue_depth"`
	Active     int     `json:"active"`
	Waiting    int     `json:"waiting"`
	Admitted   int64   `json:"admitted"`
	Queued     int64   `json:"queued"`
	Shed       int64   `json:"shed"`
	Refused    int64   `json:"refused_draining"`
	Aborted    int64   `json:"aborted_in_queue"`
	Draining   bool    `json:"draining"`
	EwmaSvcMS  float64 `json:"ewma_service_ms"`
}

// Stats snapshots the admission counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	svc := a.ewmaSvcMS
	a.mu.Unlock()
	return AdmissionStats{
		Workers:    cap(a.sem),
		QueueDepth: int(a.queueCap),
		Active:     len(a.sem),
		Waiting:    int(a.waiting.Load()),
		Admitted:   a.admitted.Load(),
		Queued:     a.queued.Load(),
		Shed:       a.shed.Load(),
		Refused:    a.refused.Load(),
		Aborted:    a.aborted.Load(),
		Draining:   a.Draining(),
		EwmaSvcMS:  svc,
	}
}
