// Package serve is the mining-as-a-service layer: a long-lived HTTP
// daemon (Server) that accepts count/mine/simulate queries over named
// datasets or uploaded graphs, an admission controller that sheds load
// instead of degrading (Admission), a single-flight memory-budgeted LRU
// cache for the expensive shared artifacts (Cache), and an open-loop
// load generator (RunLoad) for saturation experiments.
//
// The package's headline is its failure behavior, not its happy path:
// bounded queues everywhere, per-request governor budgets, typed errors
// mapped to distinct HTTP statuses, per-request panic isolation, and a
// graceful drain sequence (stop admitting → finish or cancel in-flight
// → exit clean). See DESIGN.md "Serving & overload behavior".
package serve

import (
	"container/list"
	"sync"
)

// Cache is a single-flight, memory-budgeted LRU cache keyed by string.
//
// Single-flight: when concurrent callers ask for the same missing key,
// exactly one runs the build function; the rest block until it finishes
// and share the result (a stampede of identical uploads mines the graph
// once). Memory-budgeted: each entry carries a caller-reported size and
// the cache evicts least-recently-used entries whenever the total
// exceeds the budget, so a daemon serving arbitrary uploads has a hard
// cap on cache memory. An entry larger than the whole budget is
// returned to the caller but not retained.
//
// A failed build is not cached (no negative caching): the error is
// returned to every waiter of that flight and the next Get retries.
type Cache[V any] struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // MRU at front; holds only ready entries
	entries map[string]*cacheEntry[V]
	stats   CacheStats
}

type cacheEntry[V any] struct {
	key   string
	elem  *list.Element // nil while the build is in flight
	ready chan struct{} // closed when val/size/err are final
	val   V
	size  int64
	err   error
}

// CacheStats is a point-in-time snapshot of cache behavior.
type CacheStats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`        // includes waits on another caller's flight
	Evictions    int64 `json:"evictions"`     // entries removed to fit the budget
	EvictedBytes int64 `json:"evicted_bytes"` // charged size of evicted entries
	Errors       int64 `json:"errors"`        // failed builds (not cached)
	Oversize     int64 `json:"oversize"`      // values larger than the whole budget
	UsedBytes    int64 `json:"used_bytes"`    // current charged size
	Budget       int64 `json:"budget_bytes"`
	Entries      int   `json:"entries"`
}

// NewCache returns a cache bounded by budgetBytes (<= 0 keeps nothing:
// every Get builds, which is still single-flight for concurrent callers).
func NewCache[V any](budgetBytes int64) *Cache[V] {
	return &Cache[V]{
		budget:  budgetBytes,
		ll:      list.New(),
		entries: map[string]*cacheEntry[V]{},
	}
}

// Get returns the cached value for key, building it at most once per
// miss. build reports the value, its resident size in bytes, and an
// error; it runs without the cache lock held, so builds for different
// keys proceed concurrently. If build panics the flight is cleaned up
// (waiters get an error, the key stays uncached) and the panic resumes
// on the building goroutine.
func (c *Cache[V]) Get(key string, build func() (V, int64, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.ll.MoveToFront(e.elem)
			c.stats.Hits++
			v := e.val
			c.mu.Unlock()
			return v, nil
		}
		// Another caller is building this key: join its flight.
		c.stats.Misses++
		c.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e := &cacheEntry[V]{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.stats.Misses++
	c.mu.Unlock()

	finished := false
	defer func() {
		if finished {
			return
		}
		// build panicked: fail the flight so waiters unblock, drop the
		// key so the next Get retries, and let the panic propagate.
		c.mu.Lock()
		delete(c.entries, key)
		c.stats.Errors++
		c.mu.Unlock()
		e.err = errPanickedBuild
		close(e.ready)
	}()
	v, size, err := build()
	finished = true

	c.mu.Lock()
	e.val, e.size, e.err = v, size, err
	if err != nil {
		delete(c.entries, key)
		c.stats.Errors++
	} else {
		if e.size < 0 {
			e.size = 0
		}
		e.elem = c.ll.PushFront(e)
		c.used += e.size
		c.evictLocked(e)
	}
	close(e.ready)
	c.mu.Unlock()
	return v, err
}

// Peek reports whether key currently has a ready cached value, without
// touching recency (tests, stats pages).
func (c *Cache[V]) Peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && e.elem != nil
}

// evictLocked removes LRU entries until used fits the budget. just is
// the entry that triggered the pass: if evicting everything else still
// leaves it over budget, it is dropped too (returned to its caller,
// never resident), keeping the budget a hard bound.
func (c *Cache[V]) evictLocked(just *cacheEntry[V]) {
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*cacheEntry[V])
		c.ll.Remove(back)
		victim.elem = nil
		delete(c.entries, victim.key)
		c.used -= victim.size
		if victim == just {
			c.stats.Oversize++
			return
		}
		c.stats.Evictions++
		c.stats.EvictedBytes += victim.size
	}
}

// Stats snapshots the cache counters.
func (c *Cache[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.UsedBytes = c.used
	s.Budget = c.budget
	s.Entries = c.ll.Len()
	return s
}

// Used reports the currently charged bytes.
func (c *Cache[V]) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len reports the number of resident (ready) entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// errPanickedBuild is what waiters of a flight whose builder panicked
// receive; the builder itself re-panics.
var errPanickedBuild = errorString("serve: cache build panicked")

type errorString string

func (e errorString) Error() string { return string(e) }
