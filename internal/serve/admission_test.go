package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// acquireAsync starts an Acquire on its own goroutine and returns the
// channel its result lands on.
func acquireAsync(a *Admission, ctx context.Context) chan error {
	ch := make(chan error, 1)
	go func() { ch <- a.Acquire(ctx) }()
	return ch
}

// waitStats polls until pred is true or the deadline passes; admission
// state transitions (a waiter parking in the queue) are asynchronous, so
// tests observe them through the counters rather than sleeping blind.
func waitStats(t *testing.T, a *Admission, pred func(AdmissionStats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred(a.Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("admission state never reached expectation; last: %+v", a.Stats())
}

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(2, 0)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := a.Acquire(ctx); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	st := a.Stats()
	if st.Active != 2 || st.Admitted != 2 || st.Queued != 0 {
		t.Fatalf("stats: %+v", st)
	}
	a.Release(10 * time.Millisecond)
	a.Release(10 * time.Millisecond)
	if st := a.Stats(); st.Active != 0 {
		t.Fatalf("active after release: %d", st.Active)
	}
}

func TestAdmissionQueuesThenAdmits(t *testing.T) {
	a := NewAdmission(1, 1)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	waiter := acquireAsync(a, ctx)
	waitStats(t, a, func(s AdmissionStats) bool { return s.Waiting == 1 })
	select {
	case err := <-waiter:
		t.Fatalf("waiter resolved while pool full: %v", err)
	default:
	}
	a.Release(time.Millisecond)
	if err := <-waiter; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	st := a.Stats()
	if st.Queued != 1 || st.Admitted != 2 {
		t.Fatalf("stats: %+v", st)
	}
	a.Release(time.Millisecond)
}

func TestAdmissionShedsAtFullQueue(t *testing.T) {
	a := NewAdmission(1, 1)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	waiter := acquireAsync(a, ctx)
	waitStats(t, a, func(s AdmissionStats) bool { return s.Waiting == 1 })
	// Pool full, queue full: the third caller is shed instantly, no wait.
	if err := a.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow acquire = %v, want ErrOverloaded", err)
	}
	if st := a.Stats(); st.Shed != 1 {
		t.Fatalf("shed=%d, want 1", st.Shed)
	}
	a.Release(time.Millisecond)
	if err := <-waiter; err != nil {
		t.Fatalf("queued waiter after shed: %v", err)
	}
	a.Release(time.Millisecond)
}

func TestAdmissionDrainRefusesAndFailsWaiters(t *testing.T) {
	a := NewAdmission(1, 4)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	w1 := acquireAsync(a, ctx)
	w2 := acquireAsync(a, ctx)
	waitStats(t, a, func(s AdmissionStats) bool { return s.Waiting == 2 })
	a.StartDrain()
	for i, w := range []chan error{w1, w2} {
		if err := <-w; !errors.Is(err, ErrDraining) {
			t.Fatalf("waiter %d after drain = %v, want ErrDraining", i, err)
		}
	}
	if err := a.Acquire(ctx); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire after drain = %v, want ErrDraining", err)
	}
	st := a.Stats()
	if !st.Draining || st.Refused != 3 {
		t.Fatalf("stats after drain: %+v", st)
	}
	a.StartDrain() // idempotent
	a.Release(time.Millisecond)
}

func TestAdmissionCtxCancelInQueue(t *testing.T) {
	a := NewAdmission(1, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiter := acquireAsync(a, ctx)
	waitStats(t, a, func(s AdmissionStats) bool { return s.Waiting == 1 })
	cancel()
	if err := <-waiter; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter = %v, want context.Canceled", err)
	}
	waitStats(t, a, func(s AdmissionStats) bool { return s.Waiting == 0 && s.Aborted == 1 })
	// The abandoned queue slot is reusable.
	w2 := acquireAsync(a, context.Background())
	waitStats(t, a, func(s AdmissionStats) bool { return s.Waiting == 1 })
	a.Release(time.Millisecond)
	if err := <-w2; err != nil {
		t.Fatalf("fresh waiter after abort: %v", err)
	}
	a.Release(time.Millisecond)
}

func TestAdmissionZeroQueueShedsImmediately(t *testing.T) {
	a := NewAdmission(1, 0)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if el := time.Since(t0); el > time.Second {
		t.Fatalf("no-queue shed took %v; must be instant", el)
	}
	a.Release(time.Millisecond)
}

func TestAdmissionRetryAfter(t *testing.T) {
	a := NewAdmission(2, 8)
	// No completions yet: hint must still be at least 1s, never zero.
	if ra := a.RetryAfter(); ra < time.Second {
		t.Fatalf("cold RetryAfter = %v, want >= 1s", ra)
	}
	// Feed known service times (EWMA converges to 2000ms) and fill the
	// pool: backlog 2 / workers 2 * 2s = 2s.
	for i := 0; i < 50; i++ {
		a.sem <- struct{}{}
		a.Release(2 * time.Second)
	}
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ra := a.RetryAfter()
	if ra < time.Second || ra > 4*time.Second {
		t.Fatalf("RetryAfter = %v, want ~2s (1s..4s)", ra)
	}
	a.Release(time.Millisecond)
	a.Release(time.Millisecond)
}
