package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"shogun/internal/obs"
)

// obsDisabled answers the observability endpoints on a daemon built
// without Config.Obs.
func (s *Server) obsDisabled(w http.ResponseWriter) bool {
	if s.plane != nil {
		return false
	}
	http.Error(w, "observability disabled (start the daemon with request observability on)", http.StatusNotFound)
	return true
}

// handleMetrics serves the Prometheus text exposition: request latency
// histograms per (endpoint, outcome), admission gate state, cache
// behavior, in-flight/slow/panic counters and the drain flag. Stdlib
// only — obs.MetricsWriter renders the format, telemetry.Histogram
// supplies exact cumulative buckets.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.obsDisabled(w) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := obs.NewMetricsWriter(w)

	m.Family("shogun_requests_total", "counter", "Completed requests by endpoint and outcome.")
	fams := s.plane.Families()
	for _, f := range fams {
		m.Counter("shogun_requests_total", famLabels(f), f.Hist.Count())
	}
	m.Family("shogun_request_duration_seconds", "histogram", "Request wall time by endpoint and outcome.")
	for _, f := range fams {
		m.Histo("shogun_request_duration_seconds", famLabels(f), f.Hist, 1e-6)
	}

	m.Family("shogun_queue_wait_seconds", "histogram", "Admission wait of admitted requests.")
	m.Histo("shogun_queue_wait_seconds", "", s.queueWait, 1e-6)

	adm := s.adm.Stats()
	m.Family("shogun_admission_workers", "gauge", "Worker pool size.")
	m.Counter("shogun_admission_workers", "", int64(adm.Workers))
	m.Family("shogun_admission_queue_depth", "gauge", "Bounded wait-queue capacity.")
	m.Counter("shogun_admission_queue_depth", "", int64(adm.QueueDepth))
	m.Family("shogun_admission_active", "gauge", "Requests holding a worker slot.")
	m.Counter("shogun_admission_active", "", int64(adm.Active))
	m.Family("shogun_admission_waiting", "gauge", "Requests parked in the wait queue.")
	m.Counter("shogun_admission_waiting", "", int64(adm.Waiting))
	m.Family("shogun_admission_admitted_total", "counter", "Requests granted a worker slot.")
	m.Counter("shogun_admission_admitted_total", "", adm.Admitted)
	m.Family("shogun_admission_shed_total", "counter", "Requests shed with 429 at a full queue.")
	m.Counter("shogun_admission_shed_total", "", adm.Shed)
	m.Family("shogun_admission_refused_total", "counter", "Requests refused with 503 while draining.")
	m.Counter("shogun_admission_refused_total", "", adm.Refused)
	m.Family("shogun_admission_aborted_total", "counter", "Requests that left the queue on cancellation.")
	m.Counter("shogun_admission_aborted_total", "", adm.Aborted)
	m.Family("shogun_admission_ewma_service_seconds", "gauge", "EWMA of request service time.")
	m.Gauge("shogun_admission_ewma_service_seconds", "", adm.EwmaSvcMS/1e3)

	m.Family("shogun_cache_hits_total", "counter", "Cache hits by cache.")
	m.Family("shogun_cache_misses_total", "counter", "Cache misses (including single-flight waits) by cache.")
	m.Family("shogun_cache_evictions_total", "counter", "Entries evicted to fit the budget by cache.")
	m.Family("shogun_cache_evicted_bytes_total", "counter", "Bytes evicted to fit the budget by cache.")
	m.Family("shogun_cache_used_bytes", "gauge", "Resident bytes by cache.")
	m.Family("shogun_cache_budget_bytes", "gauge", "Memory budget by cache.")
	m.Family("shogun_cache_entries", "gauge", "Resident entries by cache.")
	for _, c := range []struct {
		name  string
		stats CacheStats
	}{
		{"graph", s.graphs.Stats()},
		{"schedule", s.scheds.Stats()},
	} {
		l := `cache="` + c.name + `"`
		m.Counter("shogun_cache_hits_total", l, c.stats.Hits)
		m.Counter("shogun_cache_misses_total", l, c.stats.Misses)
		m.Counter("shogun_cache_evictions_total", l, c.stats.Evictions)
		m.Counter("shogun_cache_evicted_bytes_total", l, c.stats.EvictedBytes)
		m.Counter("shogun_cache_used_bytes", l, c.stats.UsedBytes)
		m.Counter("shogun_cache_budget_bytes", l, c.stats.Budget)
		m.Counter("shogun_cache_entries", l, int64(c.stats.Entries))
	}

	m.Family("shogun_inflight_requests", "gauge", "Requests currently between Begin and End.")
	m.Counter("shogun_inflight_requests", "", int64(s.plane.InFlight()))
	m.Family("shogun_slow_requests_total", "counter", "Requests over the slow-log threshold.")
	m.Counter("shogun_slow_requests_total", "", s.plane.SlowCount())
	m.Family("shogun_contained_panics_total", "counter", "Requests that hit the panic barrier.")
	m.Counter("shogun_contained_panics_total", "", s.panicked.Load())
	m.Family("shogun_served_total", "counter", "Responses written, any status.")
	m.Counter("shogun_served_total", "", s.served.Load())
	m.Family("shogun_draining", "gauge", "1 once graceful drain has started.")
	drain := int64(0)
	if s.adm.Draining() {
		drain = 1
	}
	m.Counter("shogun_draining", "", drain)

	if err := m.Err(); err != nil {
		s.logf("metrics: %v", err)
	}
}

func famLabels(f obs.Family) string {
	return `op="` + f.Op + `",outcome="` + f.Outcome + `"`
}

// RequestsPage is the GET /v1/requests document: the live in-flight set
// joined with the recently completed ring.
type RequestsPage struct {
	InFlight []obs.SpanView `json:"in_flight"`
	Recent   []obs.SpanView `json:"recent"`
}

// handleRequests serves the live in-flight listing.
func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	if s.obsDisabled(w) {
		return
	}
	page := RequestsPage{InFlight: s.plane.Snapshot(), Recent: s.plane.Recent()}
	if page.InFlight == nil {
		page.InFlight = []obs.SpanView{}
	}
	if page.Recent == nil {
		page.Recent = []obs.SpanView{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(page) //nolint:errcheck // client-side failure
}

// handleRequestByID serves one request's detail: the span breakdown,
// joined with the running accelerator's epoch-sampler gauges while it is
// in flight, or exported as a Chrome trace with ?format=chrome.
func (s *Server) handleRequestByID(w http.ResponseWriter, r *http.Request) {
	if s.obsDisabled(w) {
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/requests/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request id %q (want the numeric id from /v1/requests)", idStr), http.StatusBadRequest)
		return
	}
	v, ok := s.plane.Lookup(id)
	if !ok {
		http.Error(w, fmt.Sprintf("request %d is neither in flight nor in the recent ring", id), http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf(`attachment; filename="request-%d.trace.json"`, id))
		if err := v.WriteChrome(w); err != nil {
			s.logf("chrome export %d: %v", id, err)
		}
		return
	}
	v.FillProgress()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client-side failure
}
