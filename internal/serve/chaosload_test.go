package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shogun/internal/accel"
	"shogun/internal/chaos"
	"shogun/internal/sim"
)

// TestChaosUnderLoad is the PR's gate: a client fleet hammers the
// daemon while every simulation it builds runs under seeded fault
// injection (latency jitter, forced conservative flips, forced splits).
// Mid-load the daemon drains. Afterwards every response must have been
// one of the typed outcomes — 2xx bit-exact against the software miner,
// 422 event-budget for deliberately starved requests, 429/503 for
// shed/drained ones — and the daemon must leave nothing behind: no
// goroutines, admission slots all free, cache within budget.
func TestChaosUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos load test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	var seed atomic.Int64
	var injected atomic.Int64
	var injMu sync.Mutex
	var injectors []*chaos.Injector
	cfg := Config{
		Addr:       "127.0.0.1:0",
		Workers:    4,
		QueueDepth: 8,
		CacheBytes: 32 << 20,
		OnAccel: func(a *accel.Accelerator) {
			in := chaos.New(chaos.Config{
				Seed:        seed.Add(1),
				JitterPct:   40,
				FlipPeriod:  sim.Time(64),
				SplitPeriod: sim.Time(512),
			})
			in.Attach(a)
			injected.Add(1)
			injMu.Lock()
			injectors = append(injectors, in)
			injMu.Unlock()
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()

	want := golden(t, "wi", "tc")
	client := &http.Client{Timeout: 30 * time.Second}

	type verdict struct {
		status int
		kind   string
		emb    int64
		err    error
	}
	fire := func(body Request, path string) verdict {
		buf, _ := json.Marshal(body)
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return verdict{err: err}
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var r Response
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				return verdict{status: resp.StatusCode, err: err}
			}
			return verdict{status: 200, emb: r.Embeddings}
		}
		var e ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			return verdict{status: resp.StatusCode, err: err}
		}
		return verdict{status: resp.StatusCode, kind: e.Kind}
	}

	// Phase 1: the whole fleet runs to completion under fault injection.
	const fleet = 8
	const perClient = 8
	results := make(chan verdict, fleet*perClient+64)
	var wg sync.WaitGroup
	for c := 0; c < fleet; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				switch i % 4 {
				case 0: // chaos-perturbed simulation: must stay bit-exact
					results <- fire(Request{Dataset: "wi", Pattern: "tc"}, "/v1/simulate")
				case 1: // software path for comparison
					results <- fire(Request{Dataset: "wi", Pattern: "tc"}, "/v1/count")
				case 2: // starved event budget: must be a typed 422
					results <- fire(Request{Dataset: "wi", Pattern: "tc",
						Budget: Budget{MaxEvents: 1}}, "/v1/simulate")
				case 3: // different pattern keeps the cache honest
					results <- fire(Request{Dataset: "wi", Pattern: "tc", Induced: true}, "/v1/simulate")
				}
			}
		}(c)
	}
	wg.Wait()

	// Phase 2: a second wave is mid-flight when the daemon drains; its
	// requests must resolve as typed 503s (or clean transport refusals
	// once the listener closes), never as hangs or untyped 500s.
	for c := 0; c < fleet; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				results <- fire(Request{Dataset: "wi", Pattern: "tc"}, "/v1/simulate")
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain mid-load: %v", err)
	}
	wg.Wait()
	close(results)
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	wantInduced := golden(t, "wi", "tc_v")
	var ok, budgeted, shed, drained, refusedConn int
	for v := range results {
		switch {
		case v.err != nil && v.status == 0:
			refusedConn++ // listener gone during drain: acceptable
		case v.err != nil:
			t.Fatalf("undecodable response (status %d): %v", v.status, v.err)
		case v.status == 200:
			ok++
			if v.emb != want && v.emb != wantInduced {
				t.Fatalf("chaos broke bit-exactness: got %d embeddings, want %d or %d",
					v.emb, want, wantInduced)
			}
		case v.status == http.StatusUnprocessableEntity:
			budgeted++
			if v.kind != "event_budget" {
				t.Fatalf("422 with kind %q, want event_budget", v.kind)
			}
		case v.status == http.StatusTooManyRequests:
			shed++
			if v.kind != "overloaded" {
				t.Fatalf("429 with kind %q", v.kind)
			}
		case v.status == http.StatusServiceUnavailable:
			drained++
			if v.kind != "draining" {
				t.Fatalf("503 with kind %q", v.kind)
			}
		default:
			t.Fatalf("unexpected status %d (kind %q)", v.status, v.kind)
		}
	}
	if ok == 0 {
		t.Fatal("no request succeeded; the chaos harness tested nothing")
	}
	if budgeted == 0 {
		t.Fatal("no starved request surfaced its typed 422")
	}
	if injected.Load() == 0 {
		t.Fatal("no accelerator passed through the injection hook")
	}
	var faults int64
	injMu.Lock()
	for _, in := range injectors {
		faults += in.Jitters + in.Flips + in.Splits
	}
	injMu.Unlock()
	if faults == 0 {
		t.Fatal("injectors attached but no fault ever fired")
	}
	t.Logf("chaos load: ok=%d budgeted=%d shed=%d drained=%d refused-conn=%d injectors=%d faults=%d",
		ok, budgeted, shed, drained, refusedConn, injected.Load(), faults)

	// Leak audit: admission fully released, cache within budget, and the
	// goroutine count back to (near) the pre-daemon baseline.
	st := s.StatsSnapshot()
	if st.Admission.Active != 0 || st.Admission.Waiting != 0 {
		t.Fatalf("admission leak after drain: %+v", st.Admission)
	}
	if st.Graphs.UsedBytes > st.Graphs.Budget || st.Schedules.UsedBytes > st.Schedules.Budget {
		t.Fatalf("cache over budget after drain: graphs=%+v scheds=%+v", st.Graphs, st.Schedules)
	}
	client.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosSeedsAreIndependent pins the injection-hook contract: every
// accelerator gets its own injector (a shared one would race and break
// determinism), so concurrent seeds must all be distinct.
func TestChaosSeedsAreIndependent(t *testing.T) {
	var seed atomic.Int64
	seen := sync.Map{}
	var dup atomic.Int64
	_, base := testServer(t, Config{
		Workers: 4,
		OnAccel: func(a *accel.Accelerator) {
			s := seed.Add(1)
			if _, loaded := seen.LoadOrStore(s, true); loaded {
				dup.Add(1)
			}
			chaos.New(chaos.Config{Seed: s, JitterPct: 25}).Attach(a)
		},
	})
	var wg sync.WaitGroup
	want := golden(t, "wi", "tc")
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, r, e, _ := post(t, base+"/v1/simulate", Request{Dataset: "wi", Pattern: "tc"})
			if status != http.StatusOK {
				t.Errorf("simulate under jitter: status=%d kind=%v", status, e)
				return
			}
			if r.Embeddings != want {
				t.Errorf("jitter broke count: %d != %d", r.Embeddings, want)
			}
		}()
	}
	wg.Wait()
	if d := dup.Load(); d != 0 {
		t.Fatalf("%d duplicate injector seeds", d)
	}
	if seed.Load() == 0 {
		t.Fatal("hook never ran")
	}
}
