package bench

import (
	"fmt"
	"sort"

	"shogun/internal/accel"
)

// CellFailure records one grid cell that did not produce a result: a
// watchdog abort, a verification mismatch, or a contained invariant
// panic. The error keeps its diagnostic payload (*sim.InvariantError,
// *sim.DeadlockError) for the run summary.
type CellFailure struct {
	Key string
	Err error
}

// Grid holds the outcome of one batch of cells: results for the cells
// that completed and typed failures for the ones that did not. Every
// accessor is nil-safe on missing keys, so figure builders degrade to
// "fail" entries instead of dying on the first bad cell.
type Grid struct {
	res      map[string]*accel.Result
	failures []CellFailure
}

// Res returns a cell's result, or nil if it failed or was never run.
func (g *Grid) Res(key string) *accel.Result { return g.res[key] }

// Failures lists the failed cells in deterministic (key) order.
func (g *Grid) Failures() []CellFailure { return g.failures }

// ratio returns num.Cycles/den.Cycles when both cells succeeded.
func (g *Grid) ratio(num, den string) (float64, bool) {
	n, d := g.res[num], g.res[den]
	if n == nil || d == nil || d.Cycles == 0 {
		return 0, false
	}
	return float64(n.Cycles) / float64(d.Cycles), true
}

// speedup renders num.Cycles/den.Cycles, or "fail" when a cell is
// missing.
func (g *Grid) speedup(num, den string) string {
	if r, ok := g.ratio(num, den); ok {
		return f2(r)
	}
	return "fail"
}

// metric renders fn over a cell's result, or "fail" when missing.
func (g *Grid) metric(key string, fn func(*accel.Result) string) string {
	if r := g.res[key]; r != nil {
		return fn(r)
	}
	return "fail"
}

// cycles renders a cell's cycle count, or "fail" when missing.
func (g *Grid) cycles(key string) string {
	if r := g.res[key]; r != nil {
		return fmt.Sprintf("%d", r.Cycles)
	}
	return "fail"
}

// annotate appends one note per failed cell so the failure — and its
// one-line diagnostic — lands in the rendered table instead of silently
// shrinking it.
func (g *Grid) annotate(t *Table) {
	for _, f := range g.failures {
		t.AddNote("FAILED cell %s: %v", f.Key, f.Err)
	}
}

func (g *Grid) sortFailures() {
	sort.Slice(g.failures, func(i, j int) bool { return g.failures[i].Key < g.failures[j].Key })
}
