package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/gen"
	"shogun/internal/mine"
	"shogun/internal/pattern"
	"shogun/internal/serve"
)

// TestExpectedCountSingleFlight pins the stampede fix: many concurrent
// cells asking for the same (graph, schedule) golden count must trigger
// exactly one mine.
func TestExpectedCountSingleFlight(t *testing.T) {
	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 31)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	before := atomic.LoadInt64(&countComputes)
	const callers = 32
	vals := make([]int64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i] = expectedCount(g, s, 2)
		}(i)
	}
	wg.Wait()
	if got := atomic.LoadInt64(&countComputes) - before; got != 1 {
		t.Fatalf("expectedCount mined %d times for one key, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if vals[i] != vals[0] {
			t.Fatalf("inconsistent cached counts: %d vs %d", vals[i], vals[0])
		}
	}
	// A different schedule over the same graph is a distinct key.
	s2, err := pattern.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	expectedCount(g, s2, 2)
	if got := atomic.LoadInt64(&countComputes) - before; got != 2 {
		t.Fatalf("second key mined %d times total, want 2", got)
	}
	// Repeat calls stay cached.
	expectedCount(g, s, 2)
	expectedCount(g, s2, 2)
	if got := atomic.LoadInt64(&countComputes) - before; got != 2 {
		t.Fatalf("cache re-mined: %d computes, want 2", got)
	}
}

// TestExpectedCountEvictionStaysCorrect shrinks the golden cache to two
// entries and cycles three keys through it: every lookup must return
// the correct count whether it was cached, evicted-and-recomputed, or
// fresh — the memory bound trades time, never correctness.
func TestExpectedCountEvictionStaysCorrect(t *testing.T) {
	saved := countCache
	countCache = serve.NewCache[int64](2 * countEntryBytes)
	defer func() { countCache = saved }()

	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 31)
	scheds := make([]*pattern.Schedule, 0, 3)
	for _, p := range []pattern.Pattern{pattern.Triangle(), pattern.FourClique(), pattern.TailedTriangle()} {
		s, err := pattern.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		scheds = append(scheds, s)
	}
	// Ground truth, straight from the miner (bypassing the cache).
	want := make([]int64, len(scheds))
	for i, s := range scheds {
		want[i] = mine.ParallelCount(g, s, 2).Embeddings
	}

	before := atomic.LoadInt64(&countComputes)
	for round := 0; round < 3; round++ {
		for i, s := range scheds {
			if got := expectedCount(g, s, 2); got != want[i] {
				t.Fatalf("round %d, schedule %s: expectedCount=%d, want %d (stale entry?)",
					round, s.Name, got, want[i])
			}
		}
	}
	computes := atomic.LoadInt64(&countComputes) - before
	// Three keys through a two-slot cache: at least one eviction forces
	// a recompute (>3), and the cache never exceeds its budget.
	if computes <= 3 {
		t.Fatalf("no recompute after eviction: %d computes for 9 lookups over 3 keys", computes)
	}
	if used := countCache.Used(); used > 2*countEntryBytes {
		t.Fatalf("golden cache over budget: %d bytes", used)
	}
	if st := countCache.Stats(); st.Evictions == 0 {
		t.Fatalf("three keys in a two-slot cache evicted nothing: %+v", st)
	}
}

// TestCellTraceAndMetricsDigest runs one cell with TraceDir and Metrics
// set: a valid Chrome trace file must appear (named after the cell key)
// and the metrics digest must reach the log.
func TestCellTraceAndMetricsDigest(t *testing.T) {
	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 31)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var log bytes.Buffer
	o := Options{Quick: true, TraceDir: dir, Metrics: true, Log: &log}
	grid, err := runCells(o, []cell{{"rmat/tc/shogun", g, s, baseConfig(accel.SchemeShogun)}})
	if err != nil {
		t.Fatal(err)
	}
	if f := grid.Failures(); len(f) != 0 {
		t.Fatalf("cell failed: %v", f)
	}
	b, err := os.ReadFile(filepath.Join(dir, "rmat_tc_shogun.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &file); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	if !strings.Contains(log.String(), "invariants OK") {
		t.Fatalf("metrics digest missing from log:\n%s", log.String())
	}
}
