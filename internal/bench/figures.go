package bench

import (
	"fmt"

	"shogun/internal/accel"
	"shogun/internal/datasets"
	"shogun/internal/pattern"
)

// widthConfig builds a Table 3 config with a given task execution width
// (tokens per depth track the width, §3.2.3).
func widthConfig(scheme accel.Scheme, width, pes int) accel.Config {
	cfg := baseConfig(scheme)
	cfg.NumPEs = pes
	cfg.PE.Width = width
	cfg.TokensPerDepth = width
	cfg.Tree.EntriesPerBunch = width
	return cfg
}

func mustSchedule(name string) *pattern.Schedule {
	for _, wl := range Workloads() {
		if wl.Name == name {
			return wl.Schedule
		}
	}
	panic("bench: unknown workload " + name)
}

// Fig3a reproduces Fig. 3(a): pseudo-DFS vs parallel-DFS speedup and FU
// utilization as the task execution width grows, on AstroPh × 4-clique.
func Fig3a(o Options) (*Table, error) {
	return fig3(o, "fig3a", "as", "4cl", "IU util", 0, func(r *accel.Result) string { return pct(r.IUUtil) })
}

// Fig3b reproduces Fig. 3(b): the same sweep on Youtube × tailed
// triangle, annotated with L1 hit rates — the cache-thrashing case
// motivating locality monitoring. The L1 is capacity-scaled with the
// dataset analogue (8 KB here vs the paper's 32 KB at full SNAP scale)
// so the intermediate-set-to-cache ratio matches the original setting.
func Fig3b(o Options) (*Table, error) {
	return fig3(o, "fig3b", "yo", "tt_e", "L1 hit", 8, func(r *accel.Result) string { return pct(r.L1HitRate) })
}

func fig3(o Options, id, ds, wl, metric string, l1KB int, annotate func(*accel.Result) string) (*Table, error) {
	widths := []int{1, 2, 4, 8, 16}
	if o.Quick {
		widths = []int{1, 4, 8}
	}
	g := o.dataset(ds)
	s := mustSchedule(wl)
	var cells []cell
	for _, w := range widths {
		cfgP := widthConfig(accel.SchemePseudoDFS, w, 4)
		cfgL := widthConfig(accel.SchemeParallelDFS, w, 4)
		if l1KB > 0 {
			cfgP.PE.L1.SizeKB = l1KB
			cfgL.PE.L1.SizeKB = l1KB
		}
		cells = append(cells,
			cell{fmt.Sprintf("pseudo-dfs/w%d", w), g, s, cfgP},
			cell{fmt.Sprintf("parallel-dfs/w%d", w), g, s, cfgL},
		)
	}
	grid, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	base := fmt.Sprintf("pseudo-dfs/w%d", widths[0])
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Speedup vs task execution width on %s x %s (Fig. 3)", ds, wl),
		Header: []string{"Width", "pseudo-DFS speedup", metric, "parallel-DFS speedup", metric},
	}
	for _, w := range widths {
		pd := fmt.Sprintf("pseudo-dfs/w%d", w)
		pl := fmt.Sprintf("parallel-dfs/w%d", w)
		t.AddRow(fmt.Sprintf("%d", w),
			grid.speedup(base, pd), grid.metric(pd, annotate),
			grid.speedup(base, pl), grid.metric(pl, annotate))
	}
	t.AddNote("speedups normalized to pseudo-DFS at width %d; 4 PEs", widths[0])
	if l1KB > 0 {
		t.AddNote("L1 capacity-scaled to %d KB to match the analogue's intermediate-set-to-cache ratio", l1KB)
	}
	grid.annotate(t)
	return t, nil
}

// gridCells enumerates the Fig. 9/10/12 evaluation grid (exclusions per
// §5.1.2) for one scheme/config builder.
func gridCells(o Options, scheme string, mk func(ds, wl string) accel.Config) []cell {
	var cells []cell
	excluded := datasets.Excluded()
	for _, ds := range datasets.Names() {
		g := o.dataset(ds)
		for _, wl := range Workloads() {
			key := ds + "/" + wl.Name
			if excluded[key] {
				continue
			}
			if o.Quick && (wl.Name == "5cl" || wl.Name == "4cyc_v") {
				continue // trim the quick grid
			}
			cells = append(cells, cell{scheme + ":" + key, g, wl.Schedule, mk(ds, wl.Name)})
		}
	}
	return cells
}

// Fig9And10 reproduces Fig. 9 (Shogun speedup over FINGERS, accelerator
// optimizations disabled) and Fig. 10 (Shogun IU utilization) from one
// set of runs over the full evaluation grid.
func Fig9And10(o Options) (*Table, *Table, error) {
	cells := gridCells(o, "fingers", func(ds, wl string) accel.Config { return baseConfig(accel.SchemePseudoDFS) })
	cells = append(cells, gridCells(o, "shogun", func(ds, wl string) accel.Config { return baseConfig(accel.SchemeShogun) })...)
	grid, err := runCells(o, cells)
	if err != nil {
		return nil, nil, err
	}

	wls := gridWorkloadNames(o)
	t9 := &Table{
		ID:     "fig9",
		Title:  "Shogun speedup over FINGERS, scheduling only (Fig. 9)",
		Header: append([]string{"Dataset"}, wls...),
	}
	t10 := &Table{
		ID:     "fig10",
		Title:  "Shogun average IU utilization (Fig. 10)",
		Header: append([]string{"Dataset"}, wls...),
	}
	var speedups []float64
	excluded := datasets.Excluded()
	for _, ds := range datasets.Names() {
		row9, row10 := []string{ds}, []string{ds}
		for _, wl := range wls {
			key := ds + "/" + wl
			if excluded[key] {
				row9 = append(row9, "excl")
				row10 = append(row10, "excl")
				continue
			}
			if sp, ok := grid.ratio("fingers:"+key, "shogun:"+key); ok {
				speedups = append(speedups, sp)
			}
			row9 = append(row9, grid.speedup("fingers:"+key, "shogun:"+key))
			row10 = append(row10, grid.metric("shogun:"+key, func(r *accel.Result) string { return pct(r.IUUtil) }))
		}
		t9.AddRow(row9...)
		t10.AddRow(row10...)
	}
	t9.AddNote("geomean speedup = %.2fx over %d cases (paper: 1.43x over 47 cases)", Geomean(speedups), len(speedups))
	t10.AddNote("dividing Shogun IU utilization by the fig9 speedup yields FINGERS utilization (§5.2.1)")
	grid.annotate(t9)
	grid.annotate(t10)
	return t9, t10, nil
}

func gridWorkloadNames(o Options) []string {
	var out []string
	for _, wl := range Workloads() {
		if o.Quick && (wl.Name == "5cl" || wl.Name == "4cyc_v") {
			continue
		}
		out = append(out, wl.Name)
	}
	return out
}

// Fig11 reproduces Fig. 11: task-tree splitting on Wiki-Vote with 20 PEs.
func Fig11(o Options) (*Table, error) {
	g := o.dataset("wi")
	pes := 20
	var cells []cell
	for _, wl := range Workloads() {
		cfgOff := baseConfig(accel.SchemeShogun)
		cfgOff.NumPEs = pes
		cfgOn := cfgOff
		cfgOn.EnableSplitting = true
		cells = append(cells,
			cell{"off:" + wl.Name, g, wl.Schedule, cfgOff},
			cell{"on:" + wl.Name, g, wl.Schedule, cfgOn})
	}
	grid, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig11",
		Title:  "Shogun with vs without load balance (task-tree splitting), wi, 20 PEs (Fig. 11)",
		Header: []string{"Workload", "no-split cycles", "split cycles", "improvement", "splits"},
	}
	var imps []float64
	for _, wl := range Workloads() {
		if o.Quick && (wl.Name == "5cl" || wl.Name == "4cyc_v") {
			continue
		}
		impStr, splitStr := "fail", "fail"
		if sp, ok := grid.ratio("off:"+wl.Name, "on:"+wl.Name); ok {
			imps = append(imps, sp)
			impStr = pct(sp - 1)
		}
		if on := grid.Res("on:" + wl.Name); on != nil {
			splitStr = fmt.Sprintf("%d", on.Splits)
		}
		t.AddRow(wl.Name, grid.cycles("off:"+wl.Name), grid.cycles("on:"+wl.Name), impStr, splitStr)
	}
	t.AddNote("geomean improvement = %s (paper: 24%% on wi with 20 PEs)", pct(Geomean(imps)-1))
	grid.annotate(t)
	return t, nil
}

// Fig12 reproduces Fig. 12: search-tree merging on/off across the grid.
func Fig12(o Options) (*Table, error) {
	mkOff := func(ds, wl string) accel.Config { return baseConfig(accel.SchemeShogun) }
	mkOn := func(ds, wl string) accel.Config {
		c := baseConfig(accel.SchemeShogun)
		c.EnableMerging = true
		return c
	}
	cells := append(gridCells(o, "off", mkOff), gridCells(o, "on", mkOn)...)
	grid, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	wls := gridWorkloadNames(o)
	t := &Table{
		ID:     "fig12",
		Title:  "Speedup from search tree merging (Fig. 12)",
		Header: append([]string{"Dataset"}, wls...),
	}
	excluded := datasets.Excluded()
	var all []float64
	for _, ds := range datasets.Names() {
		row := []string{ds}
		for _, wl := range wls {
			key := ds + "/" + wl
			if excluded[key] {
				row = append(row, "excl")
				continue
			}
			if sp, ok := grid.ratio("off:"+key, "on:"+key); ok {
				all = append(all, sp)
			}
			row = append(row, grid.speedup("off:"+key, "on:"+key))
		}
		t.AddRow(row...)
	}
	t.AddNote("geomean merging speedup = %.2fx; paper reports merging is most effective on yo and pa", Geomean(all))
	grid.annotate(t)
	return t, nil
}

// Fig13a reproduces Fig. 13(a): sensitivity to the task execution width.
func Fig13a(o Options) (*Table, error) {
	widths := []int{2, 4, 8, 16}
	if o.Quick {
		widths = []int{2, 8}
	}
	subset := sensitivitySubset(o)
	var cells []cell
	for _, w := range widths {
		for _, sc := range subset {
			cells = append(cells,
				cell{fmt.Sprintf("shogun/w%d/%s", w, sc.key), sc.g, sc.s, widthConfig(accel.SchemeShogun, w, 10)},
				cell{fmt.Sprintf("fingers/w%d/%s", w, sc.key), sc.g, sc.s, widthConfig(accel.SchemePseudoDFS, w, 10)})
		}
	}
	grid, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig13a",
		Title:  "Sensitivity to task execution width, geomean over representative cells (Fig. 13a)",
		Header: []string{"Width", "FINGERS speedup", "Shogun speedup"},
	}
	for _, w := range widths {
		var sF, sS []float64
		complete := true
		for _, sc := range subset {
			base := fmt.Sprintf("fingers/w%d/%s", widths[0], sc.key)
			if sp, ok := grid.ratio(base, fmt.Sprintf("fingers/w%d/%s", w, sc.key)); ok {
				sF = append(sF, sp)
			} else {
				complete = false
			}
			if sp, ok := grid.ratio(base, fmt.Sprintf("shogun/w%d/%s", w, sc.key)); ok {
				sS = append(sS, sp)
			} else {
				complete = false
			}
		}
		if complete {
			t.AddRow(fmt.Sprintf("%d", w), f2(Geomean(sF)), f2(Geomean(sS)))
		} else {
			t.AddRow(fmt.Sprintf("%d", w), "fail", "fail")
		}
	}
	t.AddNote("normalized to FINGERS at width %d; Shogun scales further via out-of-order scheduling", widths[0])
	grid.annotate(t)
	return t, nil
}

// Fig13b reproduces Fig. 13(b): sensitivity to bunches per depth.
func Fig13b(o Options) (*Table, error) {
	bunches := []int{2, 4, 8}
	subset := sensitivitySubset(o)
	var cells []cell
	for _, b := range bunches {
		for _, sc := range subset {
			cfg := baseConfig(accel.SchemeShogun)
			cfg.Tree.BunchesPerDepth = b
			cells = append(cells, cell{fmt.Sprintf("b%d/%s", b, sc.key), sc.g, sc.s, cfg})
		}
	}
	grid, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig13b",
		Title:  "Sensitivity to bunches per depth (Fig. 13b)",
		Header: []string{"Bunches/depth", "Shogun speedup vs 2 bunches"},
	}
	for _, b := range bunches {
		var sp []float64
		complete := true
		for _, sc := range subset {
			if r, ok := grid.ratio(fmt.Sprintf("b%d/%s", bunches[0], sc.key), fmt.Sprintf("b%d/%s", b, sc.key)); ok {
				sp = append(sp, r)
			} else {
				complete = false
			}
		}
		if complete {
			t.AddRow(fmt.Sprintf("%d", b), f2(Geomean(sp)))
		} else {
			t.AddRow(fmt.Sprintf("%d", b), "fail")
		}
	}
	t.AddNote("paper: <10%% difference — Shogun schedules across depths, so bunch count barely matters")
	grid.annotate(t)
	return t, nil
}

// sensitivitySubset picks representative (dataset, workload) cells for
// the sensitivity sweeps: a compute-bound, a skew-bound and a sparse one.
func sensitivitySubset(o Options) []cell {
	picks := [][2]string{{"wi", "4cl"}, {"yo", "4cl"}, {"pa", "tt_e"}}
	if o.Quick {
		picks = picks[:2]
	}
	var out []cell
	for _, p := range picks {
		out = append(out, cell{key: p[0] + "/" + p[1], g: o.dataset(p[0]), s: mustSchedule(p[1])})
	}
	return out
}

// Fig14 reproduces Fig. 14: FINGERS vs Shogun vs parallel-DFS on
// thrashing-prone cases with enlarged L1s, demonstrating the necessity of
// locality monitoring.
func Fig14(o Options) (*Table, error) {
	cases := [][2]string{{"yo", "tt_e"}, {"lj", "tt_e"}, {"yo", "4cyc_e"}}
	if o.Quick {
		cases = cases[:2]
	}
	// The paper enlarges the L1 (64 KB at width 2, 256 KB at width 8)
	// and shows parallel-DFS still thrashes on troublesome cases. The
	// analogue working sets are ~4-8x smaller, so the capacity-scaled
	// equivalents here are 8 KB at widths 8 and 16.
	configs := []struct {
		label string
		width int
		l1KB  int
	}{
		{"w8/L1-scaled", 8, 8},
		{"w16/L1-scaled", 16, 8},
	}
	var cells []cell
	for _, cse := range cases {
		g := o.dataset(cse[0])
		s := mustSchedule(cse[1])
		for _, cf := range configs {
			for _, scheme := range []accel.Scheme{accel.SchemePseudoDFS, accel.SchemeShogun, accel.SchemeParallelDFS} {
				cfg := widthConfig(scheme, cf.width, 10)
				cfg.PE.L1.SizeKB = cf.l1KB
				key := fmt.Sprintf("%s/%s/%s/%s", cse[0], cse[1], cf.label, scheme)
				cells = append(cells, cell{key, g, s, cfg})
			}
		}
	}
	grid, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig14",
		Title:  "Locality monitoring necessity: normalized performance (Fig. 14)",
		Header: []string{"Case", "Config", "FINGERS", "Shogun", "parallel-DFS", "pDFS L1 hit"},
	}
	for _, cse := range cases {
		for _, cf := range configs {
			prefix := fmt.Sprintf("%s/%s/%s/", cse[0], cse[1], cf.label)
			fk := prefix + string(accel.SchemePseudoDFS)
			sk := prefix + string(accel.SchemeShogun)
			pk := prefix + string(accel.SchemeParallelDFS)
			t.AddRow(cse[0]+"-"+cse[1], cf.label,
				grid.metric(fk, func(*accel.Result) string { return "1.00" }),
				grid.speedup(fk, sk),
				grid.speedup(fk, pk),
				grid.metric(pk, func(r *accel.Result) string { return pct(r.L1HitRate) }))
		}
	}
	t.AddNote("normalized to FINGERS per row; parallel-DFS lacks a conservative mode and thrashes")
	t.AddNote("L1 capacity-scaled with the dataset analogues (8 KB ~ the paper's enlarged caches relative to working sets)")
	grid.annotate(t)
	return t, nil
}
