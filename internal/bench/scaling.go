package bench

import (
	"fmt"

	"shogun/internal/accel"
)

// Scaling is an extension experiment (not in the paper): strong scaling
// of Shogun vs FINGERS as the PE count grows, with and without task-tree
// splitting. It quantifies when load balance starts to matter — the
// regime boundary §4.1 describes ("the number of search trees per PE is
// not large enough to tolerate runtime variance").
func Scaling(o Options) (*Table, error) {
	pes := []int{1, 2, 5, 10, 20, 40}
	if o.Quick {
		pes = []int{1, 4, 16}
	}
	g := o.dataset("wi")
	s := mustSchedule("4cl")

	var cells []cell
	for _, n := range pes {
		cfgF := baseConfig(accel.SchemePseudoDFS)
		cfgF.NumPEs = n
		cfgS := baseConfig(accel.SchemeShogun)
		cfgS.NumPEs = n
		cfgSplit := cfgS
		cfgSplit.EnableSplitting = true
		cells = append(cells,
			cell{fmt.Sprintf("fingers/%d", n), g, s, cfgF},
			cell{fmt.Sprintf("shogun/%d", n), g, s, cfgS},
			cell{fmt.Sprintf("split/%d", n), g, s, cfgSplit},
		)
	}
	grid, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "scaling",
		Title:  "Strong scaling on wi x 4cl (extension)",
		Header: []string{"PEs", "FINGERS speedup", "Shogun speedup", "Shogun+split speedup"},
	}
	base := fmt.Sprintf("fingers/%d", pes[0])
	for _, n := range pes {
		t.AddRow(fmt.Sprintf("%d", n),
			grid.speedup(base, fmt.Sprintf("fingers/%d", n)),
			grid.speedup(base, fmt.Sprintf("shogun/%d", n)),
			grid.speedup(base, fmt.Sprintf("split/%d", n)))
	}
	t.AddNote("speedups vs FINGERS at %d PE(s); splitting's gap widens as trees per PE shrink", pes[0])
	grid.annotate(t)
	return t, nil
}
