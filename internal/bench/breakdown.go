package bench

import (
	"fmt"

	"shogun/internal/accel"
)

// Breakdown generates the cycle-attribution analogue of the paper's
// utilization discussion (§5, Figs. 9-10 commentary): for each scheme on
// a cacheable (wi) and a thrashing (yo) dataset, where do the PEs' slot
// cycles go — compute, memory stalls, scheduling work, or idling — and
// how unevenly are the PEs loaded. Every cell's attribution is exact:
// the four categories partition width × run-cycles to the cycle
// (metrics.Verify enforces it during each run).
func Breakdown(o Options) (*Table, error) {
	type variant struct {
		name   string
		scheme accel.Scheme
		mutate func(*accel.Config)
	}
	variants := []variant{
		{"pseudo-dfs", accel.SchemePseudoDFS, nil},
		{"shogun", accel.SchemeShogun, nil},
		{"shogun+opts", accel.SchemeShogun, func(c *accel.Config) {
			c.EnableSplitting = true
			c.EnableMerging = true
		}},
	}
	dss := []string{"wi", "yo"}
	wl := "tc"
	s := mustSchedule(wl)

	var cells []cell
	for _, ds := range dss {
		g := o.dataset(ds)
		for _, v := range variants {
			cfg := baseConfig(v.scheme)
			if v.mutate != nil {
				v.mutate(&cfg)
			}
			cells = append(cells, cell{ds + "/" + v.name, g, s, cfg})
		}
	}
	grid, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "breakdown",
		Title:  fmt.Sprintf("Cycle attribution on %s (exact slot-cycle partition)", wl),
		Header: []string{"Dataset", "Scheme", "Compute", "MemStall", "Sched", "Idle", "PE busy min..max"},
	}
	for _, ds := range dss {
		for _, v := range variants {
			key := ds + "/" + v.name
			res := grid.Res(key)
			if res == nil {
				t.AddRow(ds, v.name, "-", "-", "-", "-", "-")
				continue
			}
			total := float64(res.Breakdown.Total())
			share := func(v int64) string { return pct(float64(v) / total) }
			lo, hi := 1.0, 0.0
			for _, ps := range res.PerPE {
				u := float64(ps.Breakdown.Busy()) / float64(ps.Breakdown.Total())
				if u < lo {
					lo = u
				}
				if u > hi {
					hi = u
				}
			}
			t.AddRow(ds, v.name,
				share(res.Breakdown.Compute), share(res.Breakdown.MemStall),
				share(res.Breakdown.Scheduling), share(res.Breakdown.Idle),
				pct(lo)+".."+pct(hi))
		}
	}
	t.AddNote("per-PE attributed cycles sum exactly to width x run-cycles (verified per cell)")
	t.AddNote("PE busy spread narrows under shogun+opts: splitting shares end-of-run work")
	grid.annotate(t)
	return t, nil
}
