package bench

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"A", "Blong"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.AddNote("hello %d", 7)
	s := tbl.String()
	for _, want := range []string{"== x: demo ==", "Blong", "333", "note: hello 7", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v", g)
	}
	if g := Geomean([]float64{0, -1, 3}); math.Abs(g-3) > 1e-9 {
		t.Errorf("Geomean skipping non-positives = %v", g)
	}
}

func TestLookupAndExperimentList(t *testing.T) {
	ids := []string{"table1", "table2", "table3", "table4", "fig3a", "fig3b", "fig9", "fig10", "fig11", "fig12", "fig13a", "fig13b", "fig14", "ablation", "scaling", "breakdown", "imbalance", "cluster"}
	for _, id := range ids {
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%q): %v", id, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(Experiments()) != len(ids) {
		t.Errorf("experiment count %d, want %d", len(Experiments()), len(ids))
	}
}

func TestStaticTables(t *testing.T) {
	if got := Table1(); len(got.Rows) != 4 {
		t.Errorf("table1 rows = %d", len(got.Rows))
	}
	t3 := Table3()
	if !strings.Contains(t3.String(), "178") {
		t.Error("table3 missing the 178-entry task tree")
	}
	t4 := Table4(Options{Quick: true})
	if len(t4.Rows) != 6 {
		t.Errorf("table4 rows = %d", len(t4.Rows))
	}
}

func TestQuickFig3aRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := Fig3a(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("fig3a quick rows = %d", len(tbl.Rows))
	}
	// The headline claim: parallel-DFS at max width beats pseudo-DFS at
	// max width on a compute-bound workload.
	last := tbl.Rows[len(tbl.Rows)-1]
	var pd, pl float64
	if _, err := parseFloats(last[1], &pd); err != nil {
		t.Fatal(err)
	}
	if _, err := parseFloats(last[3], &pl); err != nil {
		t.Fatal(err)
	}
	if pl <= pd {
		t.Errorf("parallel-DFS (%v) did not beat pseudo-DFS (%v) at max width", pl, pd)
	}
}

func parseFloats(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}

// TestQuickExperimentsRun exercises the lighter experiment runners end to
// end in quick mode (the grid-sized ones are covered by the benchmarks
// and the CLI).
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Quick: true}
	t13b, err := Fig13b(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t13b.Rows) != 3 {
		t.Errorf("fig13b rows = %d", len(t13b.Rows))
	}
	t14, err := Fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t14.Rows) != 4 { // 2 cases x 2 configs in quick mode
		t.Errorf("fig14 rows = %d", len(t14.Rows))
	}
	abl, err := Ablation(o)
	if err != nil {
		t.Fatal(err)
	}
	if full := abl.FindRow("full"); full == nil || full[1] != "1.00" {
		t.Errorf("ablation baseline row = %v", full)
	}
	// Every table must render in every format.
	for _, tbl := range []*Table{t13b, t14, abl} {
		for _, f := range []string{"text", "csv", "markdown"} {
			if out, err := tbl.Format(f); err != nil || out == "" {
				t.Errorf("%s render %s: %v", tbl.ID, f, err)
			}
		}
	}
}

// TestQuickClusterScalingRuns drives the multi-chip scale-out sweep on
// the quick dataset and checks the table shape plus the monotone facts
// we can assert without pinning cycle counts: every row verified against
// the software miner (inside ClusterScaling), 1-chip row is the speedup
// baseline, and occupancy ratios are well-formed percentages.
func TestQuickClusterScalingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := ClusterScaling(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("cluster rows = %d, want 5", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "1" || tbl.Rows[0][2] != "1.00x" {
		t.Errorf("1-chip baseline row = %v", tbl.Rows[0])
	}
	for _, row := range tbl.Rows {
		if row[1] == "FAILED" {
			t.Errorf("chips=%s failed", row[0])
		}
	}
	for _, f := range []string{"text", "csv", "markdown"} {
		if out, err := tbl.Format(f); err != nil || out == "" {
			t.Errorf("cluster render %s: %v", f, err)
		}
	}
}

func TestBaselineSaveCheck(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/base.json"
	tbl := sampleTable()
	if err := SaveBaseline(path, []*Table{tbl}); err != nil {
		t.Fatal(err)
	}
	if err := CheckBaseline(path, []*Table{tbl}); err != nil {
		t.Fatalf("identical tables flagged: %v", err)
	}
	drift := sampleTable()
	drift.Rows[0][0] = "999"
	if err := CheckBaseline(path, []*Table{drift}); err == nil {
		t.Fatal("drift not detected")
	}
	if err := CheckBaseline(path, []*Table{{ID: "ghost"}}); err == nil {
		t.Fatal("unknown table not flagged")
	}
	if err := CheckBaseline(dir+"/missing.json", []*Table{tbl}); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
