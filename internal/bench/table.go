// Package bench regenerates every table and figure of the paper's
// evaluation section (§5) on the dataset analogues. Each experiment
// returns a Table that prints the same rows/series the paper reports;
// EXPERIMENTS.md records the paper-vs-measured comparison.
package bench

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	ID     string // experiment id, e.g. "fig9"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringable cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a trailing note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// f2 formats a float with 2 decimals; f1 and pct are variants.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// Geomean returns the geometric mean of positive values (zeroes and
// negatives are skipped).
func Geomean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return exp(sum / float64(n))
}
