package bench

import (
	"context"
	"errors"
	"strings"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/gen"
	"shogun/internal/pattern"
	"shogun/internal/sim"
	"shogun/internal/trace"
)

// boomTracer panics after n task completions — the deliberately
// injected invariant violation of the acceptance criteria.
type boomTracer struct{ n int }

func (b *boomTracer) TaskDone(trace.Event) {
	if b.n--; b.n <= 0 {
		panic("bench-test: poisoned cell")
	}
}

// TestGridDegradesGracefully pins the harness's graceful-degradation
// contract: a grid with one poisoned cell completes every other cell
// and surfaces the failure, with its key and diagnostics, in the Grid.
func TestGridDegradesGracefully(t *testing.T) {
	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 33)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	good1 := baseConfig(accel.SchemeShogun)
	good2 := baseConfig(accel.SchemePseudoDFS)
	bad := baseConfig(accel.SchemeShogun)
	bad.Tracer = &boomTracer{n: 20}
	cells := []cell{
		{"good/shogun", g, s, good1},
		{"bad/poisoned", g, s, bad},
		{"good/pseudo-dfs", g, s, good2},
	}
	grid, err := runCells(Options{Workers: 2}, cells)
	if err != nil {
		t.Fatalf("runCells aborted the batch: %v", err)
	}
	if grid.Res("good/shogun") == nil || grid.Res("good/pseudo-dfs") == nil {
		t.Fatal("healthy cells did not complete alongside the poisoned one")
	}
	fails := grid.Failures()
	if len(fails) != 1 || fails[0].Key != "bad/poisoned" {
		t.Fatalf("failures = %+v, want exactly bad/poisoned", fails)
	}
	var ie *sim.InvariantError
	if !errors.As(fails[0].Err, &ie) {
		t.Fatalf("failure error = %T %v, want *sim.InvariantError", fails[0].Err, fails[0].Err)
	}
	if ie.Snapshot == nil {
		t.Fatal("failed cell carries no diagnostic snapshot")
	}
	// The failure must land in the rendered table, keyed.
	tbl := &Table{ID: "x", Title: "x", Header: []string{"a"}}
	grid.annotate(tbl)
	if len(tbl.Notes) != 1 || !strings.Contains(tbl.Notes[0], "bad/poisoned") {
		t.Fatalf("table notes = %v", tbl.Notes)
	}
}

// TestGridCellBudget pins per-cell watchdog budgets: an undersized
// event budget fails the cell (recorded, not fatal) while the batch
// completes.
func TestGridCellBudget(t *testing.T) {
	g := gen.RMAT(512, 3000, 0.6, 0.15, 0.15, 35)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	cells := []cell{{"budgeted", g, s, baseConfig(accel.SchemeShogun)}}
	grid, err := runCells(Options{Workers: 1, CellMaxEvents: 100}, cells)
	if err != nil {
		t.Fatal(err)
	}
	fails := grid.Failures()
	if len(fails) != 1 || !errors.Is(fails[0].Err, sim.ErrEventBudget) {
		t.Fatalf("failures = %+v, want one ErrEventBudget", fails)
	}
}

// TestGridCancelled pins whole-run cancellation: a cancelled
// Options.Ctx aborts runCells with an error (partial grid returned).
func TestGridCancelled(t *testing.T) {
	g := gen.RMAT(256, 1500, 0.6, 0.15, 0.15, 37)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells := []cell{{"c0", g, s, baseConfig(accel.SchemeShogun)}}
	_, err = runCells(Options{Workers: 1, Ctx: ctx}, cells)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
