package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"shogun/internal/accel"
	"shogun/internal/datasets"
	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/mine"
	"shogun/internal/pattern"
)

func log(v float64) float64 { return math.Log(v) }
func exp(v float64) float64 { return math.Exp(v) }

// Options configures an experiment run.
type Options struct {
	// Quick shrinks the dataset analogues (~8x fewer edges) and trims
	// sweeps so an experiment finishes in seconds; used by the
	// testing.B benchmarks. Full mode reproduces the complete grids.
	Quick bool
	// Workers bounds concurrent simulations (default: GOMAXPROCS).
	Workers int
	// Log, when non-nil, receives one progress line per finished cell.
	Log io.Writer
	// Verify cross-checks every simulated embedding count against the
	// software miner (default on; the harness refuses to report numbers
	// from a simulator that miscounts).
	SkipVerify bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// dataset returns the analogue (or its quick-mode miniature).
func (o Options) dataset(name string) *graph.Graph {
	if !o.Quick {
		return datasets.MustGet(name)
	}
	return quickGraph(name)
}

var (
	quickMu    sync.Mutex
	quickCache = map[string]*graph.Graph{}
)

// quickGraph builds miniature analogues preserving each dataset's
// qualitative regime at ~1/8 the edge count.
func quickGraph(name string) *graph.Graph {
	quickMu.Lock()
	defer quickMu.Unlock()
	if g, ok := quickCache[name]; ok {
		return g
	}
	var g *graph.Graph
	switch name {
	case "wi":
		g = gen.RMAT(1<<11, 8000, 0.55, 0.17, 0.17, 101)
	case "as":
		g = gen.PowerLawCluster(2200, 6, 0.6, 102)
	case "yo":
		g = gen.RMAT(1<<12, 6000, 0.62, 0.14, 0.14, 103)
	case "pa":
		g = gen.NearRegular(10000, 9, 104)
	case "lj":
		g = gen.RMAT(1<<12, 20000, 0.55, 0.17, 0.17, 105)
	case "or":
		g = gen.RMAT(1<<11, 24000, 0.45, 0.22, 0.22, 106)
	default:
		panic("bench: unknown dataset " + name)
	}
	quickCache[name] = g
	return g
}

// Workloads returns the paper's nine evaluated schedules.
func Workloads() []datasets.Workload { return datasets.Workloads() }

// cell is one simulation to run.
type cell struct {
	key string
	g   *graph.Graph
	s   *pattern.Schedule
	cfg accel.Config
}

// runCells executes cells concurrently (each simulation is single-
// threaded and independent) and returns results keyed by cell key.
func runCells(o Options, cells []cell) (map[string]*accel.Result, error) {
	type outcome struct {
		key string
		res *accel.Result
		err error
	}
	sem := make(chan struct{}, o.workers())
	outs := make(chan outcome, len(cells))
	var wg sync.WaitGroup
	for _, c := range cells {
		wg.Add(1)
		go func(c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := runOne(o, c)
			outs <- outcome{c.key, res, err}
		}(c)
	}
	wg.Wait()
	close(outs)
	results := map[string]*accel.Result{}
	for out := range outs {
		if out.err != nil {
			return nil, fmt.Errorf("bench: cell %s: %w", out.key, out.err)
		}
		results[out.key] = out.res
	}
	return results, nil
}

var (
	countMu    sync.Mutex
	countCache = map[string]int64{}
)

// expectedCount returns the software miner's embedding count for a
// (graph, schedule) pair, cached across cells.
func expectedCount(g *graph.Graph, s *pattern.Schedule) int64 {
	key := fmt.Sprintf("%p/%s", g, s.Name)
	countMu.Lock()
	if v, ok := countCache[key]; ok {
		countMu.Unlock()
		return v
	}
	countMu.Unlock()
	v := mine.Count(g, s)
	countMu.Lock()
	countCache[key] = v
	countMu.Unlock()
	return v
}

func runOne(o Options, c cell) (*accel.Result, error) {
	a, err := accel.New(c.g, c.s, c.cfg)
	if err != nil {
		return nil, err
	}
	res, err := a.Run()
	if err != nil {
		return nil, err
	}
	if !o.SkipVerify {
		want := expectedCount(c.g, c.s)
		if res.Embeddings != want {
			return nil, fmt.Errorf("count mismatch: sim=%d software=%d", res.Embeddings, want)
		}
	}
	o.logf("  %-24s %12d cycles  IU=%5.1f%%  L1=%5.1f%%", c.key, res.Cycles, res.IUUtil*100, res.L1HitRate*100)
	return res, nil
}

// baseConfig returns the Table 3 configuration for a scheme.
func baseConfig(scheme accel.Scheme) accel.Config {
	return accel.DefaultConfig(scheme)
}
