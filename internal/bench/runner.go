package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shogun/internal/accel"
	"shogun/internal/datasets"
	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/metrics"
	"shogun/internal/mine"
	"shogun/internal/pattern"
	"shogun/internal/serve"
	"shogun/internal/sim"
	"shogun/internal/telemetry"
	"shogun/internal/trace"
)

func log(v float64) float64 { return math.Log(v) }
func exp(v float64) float64 { return math.Exp(v) }

// Options configures an experiment run.
type Options struct {
	// Quick shrinks the dataset analogues (~8x fewer edges) and trims
	// sweeps so an experiment finishes in seconds; used by the
	// testing.B benchmarks. Full mode reproduces the complete grids.
	Quick bool
	// Workers bounds concurrent simulations (default: GOMAXPROCS).
	Workers int
	// Log, when non-nil, receives one progress line per finished cell.
	Log io.Writer
	// Verify cross-checks every simulated embedding count against the
	// software miner (default on; the harness refuses to report numbers
	// from a simulator that miscounts).
	SkipVerify bool
	// Ctx, when non-nil, cancels the whole run: in-flight cells stop at
	// their next watchdog checkpoint and runCells returns the
	// cancellation error.
	Ctx context.Context
	// CellTimeout bounds each cell's wall-clock time (0 = none); a cell
	// exceeding it is recorded as failed and the grid continues.
	CellTimeout time.Duration
	// CellMaxEvents bounds each cell's simulation event count (0 = none).
	CellMaxEvents int64
	// TraceDir, when set, writes one Chrome-trace JSON per cell into the
	// directory (file name: cell key with "/" replaced by "_").
	TraceDir string
	// Metrics, when set, logs a per-cell hardware-counter digest after
	// each successful cell (counter conservation itself is verified
	// inside every run — accel.Config.VerifyMetrics defaults on).
	Metrics bool
	// SampleEvery, when > 0, turns on the telemetry epoch sampler for
	// every cell that does not already configure one (cycles between
	// samples; see accel.Config.SampleEvery).
	SampleEvery int64
	// Progress, when non-nil, receives per-cell completion updates for
	// the live progress page (-http on shogunbench).
	Progress *telemetry.Progress
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// dataset returns the analogue (or its quick-mode miniature).
func (o Options) dataset(name string) *graph.Graph {
	if !o.Quick {
		return datasets.MustGet(name)
	}
	return quickGraph(name)
}

var (
	quickMu    sync.Mutex
	quickCache = map[string]*graph.Graph{}
)

// quickGraph builds miniature analogues preserving each dataset's
// qualitative regime at ~1/8 the edge count.
func quickGraph(name string) *graph.Graph {
	quickMu.Lock()
	defer quickMu.Unlock()
	if g, ok := quickCache[name]; ok {
		return g
	}
	var g *graph.Graph
	switch name {
	case "wi":
		g = gen.RMAT(1<<11, 8000, 0.55, 0.17, 0.17, 101)
	case "as":
		g = gen.PowerLawCluster(2200, 6, 0.6, 102)
	case "yo":
		g = gen.RMAT(1<<12, 6000, 0.62, 0.14, 0.14, 103)
	case "pa":
		g = gen.NearRegular(10000, 9, 104)
	case "lj":
		g = gen.RMAT(1<<12, 20000, 0.55, 0.17, 0.17, 105)
	case "or":
		g = gen.RMAT(1<<11, 24000, 0.45, 0.22, 0.22, 106)
	default:
		panic("bench: unknown dataset " + name)
	}
	quickCache[name] = g
	return g
}

// Workloads returns the paper's nine evaluated schedules.
func Workloads() []datasets.Workload { return datasets.Workloads() }

// cell is one simulation to run.
type cell struct {
	key string
	g   *graph.Graph
	s   *pattern.Schedule
	cfg accel.Config
}

// runCells executes cells concurrently (each simulation is single-
// threaded and independent) and returns a Grid keyed by cell key. A
// fixed pool of workers drains a job channel, so full-mode grids never
// create more goroutines than they can run.
//
// A failing cell — watchdog abort, verification mismatch, contained
// invariant panic — does NOT abort the batch: it is recorded in the
// Grid's failure list (surfaced in the run summary with its key) and
// the remaining cells complete. The only returned error is whole-run
// cancellation via Options.Ctx.
func runCells(o Options, cells []cell) (*Grid, error) {
	type outcome struct {
		key string
		res *accel.Result
		err error
	}
	workers := o.workers()
	if workers > len(cells) {
		workers = len(cells)
	}
	if o.Progress != nil {
		o.Progress.Add(len(cells))
	}
	jobs := make(chan cell)
	outs := make(chan outcome, len(cells))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				res, err := runOne(o, c)
				if o.Progress != nil {
					o.Progress.Cell(c.key, err)
				}
				outs <- outcome{c.key, res, err}
			}
		}()
	}
	ctx := o.ctx()
	for _, c := range cells {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	close(outs)
	grid := &Grid{res: map[string]*accel.Result{}}
	for out := range outs {
		if out.err != nil {
			o.logf("  FAILED %-24s %v", out.key, out.err)
			grid.failures = append(grid.failures, CellFailure{Key: out.key, Err: out.err})
			continue
		}
		grid.res[out.key] = out.res
	}
	grid.sortFailures()
	if err := ctx.Err(); err != nil {
		return grid, fmt.Errorf("bench: run cancelled: %w", err)
	}
	return grid, nil
}

var (
	// countCache holds golden (graph, schedule) embedding counts behind
	// the daemon's single-flight LRU: concurrent cells for the same key
	// share one mine, and a long sweep over many generated graphs cannot
	// grow the cache without bound. Each entry is charged a nominal size
	// so the budget is an entry-count bound (the int64 itself is tiny;
	// what the budget limits is key accumulation).
	countCache = serve.NewCache[int64](goldenCacheBudget)
	// countComputes counts actual golden mines (test hook for the
	// single-flight property).
	countComputes int64
)

// goldenCacheBudget bounds the golden-count cache: countEntryBytes per
// cached key, 4096 keys — far beyond any real sweep, small in memory.
const (
	countEntryBytes   = 256
	goldenCacheBudget = 4096 * countEntryBytes
)

// expectedCount returns the software miner's embedding count for a
// (graph, schedule) pair, computed once per key by the parallel miner
// and cached across cells.
func expectedCount(g *graph.Graph, s *pattern.Schedule, workers int) int64 {
	key := fmt.Sprintf("%p/%s", g, s.Name)
	val, _ := countCache.Get(key, func() (int64, int64, error) {
		atomic.AddInt64(&countComputes, 1)
		return mine.ParallelCount(g, s, workers).Embeddings, countEntryBytes, nil
	})
	return val
}

// runOne runs a single cell under the run governor: the per-cell
// watchdog budgets from Options are layered onto the cell's config, the
// simulation observes Options.Ctx, and any panic escaping the stack
// below (accelerator build, golden mine, verification) is contained
// into a *sim.InvariantError so one poisoned cell cannot kill the grid.
func runOne(o Options, c cell) (res *accel.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ie, ok := r.(*sim.InvariantError); ok {
				res, err = nil, ie // e.g. re-raised by the golden miner
				return
			}
			res = nil
			err = &sim.InvariantError{
				Op:         "bench: cell " + c.key,
				PanicValue: r,
				Stack:      string(debug.Stack()),
			}
		}
	}()
	cfg := c.cfg
	if o.CellTimeout > 0 && (cfg.MaxWall == 0 || o.CellTimeout < cfg.MaxWall) {
		cfg.MaxWall = o.CellTimeout
	}
	if o.CellMaxEvents > 0 && (cfg.MaxEvents == 0 || o.CellMaxEvents < cfg.MaxEvents) {
		cfg.MaxEvents = o.CellMaxEvents
	}
	if o.SampleEvery > 0 && cfg.SampleEvery == 0 {
		cfg.SampleEvery = sim.Time(o.SampleEvery)
	}
	var chrome *trace.Chrome
	if o.TraceDir != "" {
		chrome = trace.NewChrome()
		cfg.Tracer = chrome
	}
	a, err := accel.New(c.g, c.s, cfg)
	if err != nil {
		return nil, err
	}
	res, err = a.RunContext(o.ctx())
	if err != nil {
		return nil, err
	}
	if !o.SkipVerify {
		want := expectedCount(c.g, c.s, o.workers())
		if res.Embeddings != want {
			return nil, fmt.Errorf("count mismatch: sim=%d software=%d", res.Embeddings, want)
		}
	}
	if chrome != nil {
		// Fold the sampler's system-level gauges into the trace as counter
		// tracks (per-PE occupancy is already derived from the task spans).
		if res.Telemetry != nil {
			for _, series := range res.Telemetry.Series {
				if !strings.HasPrefix(series.Name, "pe") {
					chrome.AddCounterSeries(series.Name, res.Telemetry.Cycles, series.Vals)
				}
			}
		}
		if err := writeCellTrace(o.TraceDir, c.key, chrome); err != nil {
			return nil, err
		}
	}
	if o.Metrics {
		reg := a.Metrics()
		o.logf("  %-24s metrics: %d invariants OK; tasks=%d noc-msgs=%d dram=%d",
			c.key, reg.Invariants(), mustValue(reg, "tasks/created"),
			mustValue(reg, "noc/messages"),
			mustValue(reg, "dram/reads")+mustValue(reg, "dram/writes"))
	}
	o.logf("  %-24s %12d cycles  IU=%5.1f%%  L1=%5.1f%%", c.key, res.Cycles, res.IUUtil*100, res.L1HitRate*100)
	return res, nil
}

func mustValue(reg *metrics.Registry, path string) int64 {
	v, _ := reg.Value(path)
	return v
}

// writeCellTrace stores one cell's Chrome trace under dir.
func writeCellTrace(dir, key string, c *trace.Chrome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ReplaceAll(key, "/", "_") + ".trace.json"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// baseConfig returns the Table 3 configuration for a scheme.
func baseConfig(scheme accel.Scheme) accel.Config {
	return accel.DefaultConfig(scheme)
}
