package bench

import (
	"strings"
	"testing"
)

// TestQuickBreakdownRuns exercises the cycle-attribution experiment end
// to end in quick mode: every cell must complete (and therefore pass the
// in-run conservation verification), every attribution row must sum to
// 100% within rounding, and idle share must shrink when splitting and
// merging are enabled on the thrashing dataset.
func TestQuickBreakdownRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := Breakdown(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("breakdown rows = %d, want 6 (2 datasets x 3 variants)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] == "-" {
			t.Fatalf("cell %s/%s failed", row[0], row[1])
		}
		var sum float64
		for _, c := range row[2:6] {
			var v float64
			if _, err := parseFloats(strings.TrimSuffix(c, "%"), &v); err != nil {
				t.Fatalf("row %v: bad share %q", row, c)
			}
			sum += v
		}
		// Four percentages rounded to integers: off by at most 2.
		if sum < 98 || sum > 102 {
			t.Errorf("row %v: attribution shares sum to %v%%, want ~100%%", row, sum)
		}
	}
	for _, f := range []string{"text", "csv", "markdown"} {
		if out, err := tbl.Format(f); err != nil || out == "" {
			t.Errorf("render %s: %v", f, err)
		}
	}
}
