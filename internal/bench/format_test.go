package bench

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{ID: "x", Title: "demo", Header: []string{"A", "B"}}
	t.AddRow("1", "two,with comma")
	t.AddRow("3", `quote "inside"`)
	t.AddNote("a note")
	return t
}

func TestCSVFormat(t *testing.T) {
	csv := sampleTable().CSV()
	want := []string{
		"A,B\n",
		`1,"two,with comma"`,
		`3,"quote ""inside"""`,
		"# a note",
	}
	for _, w := range want {
		if !strings.Contains(csv, w) {
			t.Errorf("CSV missing %q:\n%s", w, csv)
		}
	}
}

func TestMarkdownFormat(t *testing.T) {
	md := sampleTable().Markdown()
	for _, w := range []string{"### x: demo", "| A | B |", "| --- | --- |", "_a note_"} {
		if !strings.Contains(md, w) {
			t.Errorf("markdown missing %q:\n%s", w, md)
		}
	}
}

func TestFormatDispatch(t *testing.T) {
	tbl := sampleTable()
	for _, f := range []string{"", "text", "csv", "markdown", "md"} {
		if _, err := tbl.Format(f); err != nil {
			t.Errorf("Format(%q): %v", f, err)
		}
	}
	if _, err := tbl.Format("xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestCellAndFindRow(t *testing.T) {
	tbl := sampleTable()
	if tbl.Cell(0, 0) != "1" || tbl.Cell(9, 9) != "" || tbl.Cell(-1, 0) != "" {
		t.Error("Cell misbehaved")
	}
	if r := tbl.FindRow("3"); r == nil || r[1] != `quote "inside"` {
		t.Errorf("FindRow = %v", r)
	}
	if tbl.FindRow("nope") != nil {
		t.Error("FindRow found a ghost")
	}
}

func TestChart(t *testing.T) {
	tbl := &Table{ID: "c", Title: "chart", Header: []string{"Name", "Val"}}
	tbl.AddRow("a", "2.00")
	tbl.AddRow("b", "4.00")
	tbl.AddRow("x", "not-a-number")
	out := tbl.Chart(1)
	if !strings.Contains(out, "a") || !strings.Contains(out, "█") {
		t.Fatalf("chart:\n%s", out)
	}
	// b's bar must be roughly twice a's.
	lines := strings.Split(out, "\n")
	var aBar, bBar int
	for _, l := range lines {
		if strings.HasPrefix(l, "a") {
			aBar = strings.Count(l, "█")
		}
		if strings.HasPrefix(l, "b") {
			bBar = strings.Count(l, "█")
		}
	}
	if bBar != 2*aBar {
		t.Errorf("bars a=%d b=%d", aBar, bBar)
	}
	if got := (&Table{Header: []string{"x"}}).Chart(0); !strings.Contains(got, "no numeric") {
		t.Errorf("empty chart = %q", got)
	}
}

func TestRenderHTML(t *testing.T) {
	var sb strings.Builder
	tbl := &Table{ID: "h", Title: "html demo", Header: []string{"Name", "Speedup"}}
	tbl.AddRow("wi", "1.50")
	tbl.AddRow("or", "excl")
	tbl.AddNote("a <note> & things")
	if err := RenderHTML(&sb, []*Table{tbl}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<!DOCTYPE html>", "h — html demo", "<td", "1.50", "excl", "&lt;note&gt;"} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// Numeric shading applied; excluded cells stay white.
	if !strings.Contains(out, "rgba(66,133,244") {
		t.Error("no shading applied")
	}
}
