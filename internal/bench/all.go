package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is a named experiment runner.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Options) ([]*Table, error)
}

// Experiments returns every experiment by id.
func Experiments() []Experiment {
	wrap1 := func(f func(Options) (*Table, error)) func(Options) ([]*Table, error) {
		return func(o Options) ([]*Table, error) {
			t, err := f(o)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		}
	}
	return []Experiment{
		{"table1", "qualitative scheme comparison", func(o Options) ([]*Table, error) { return []*Table{Table1()}, nil }},
		{"table2", "avg intermediate cache lines per task", wrap1(Table2)},
		{"table3", "simulator configuration", func(o Options) ([]*Table, error) { return []*Table{Table3()}, nil }},
		{"table4", "dataset statistics", func(o Options) ([]*Table, error) { return []*Table{Table4(o)}, nil }},
		{"fig3a", "pseudo-DFS vs parallel-DFS width sweep (compute-bound)", wrap1(Fig3a)},
		{"fig3b", "pseudo-DFS vs parallel-DFS width sweep (thrashing)", wrap1(Fig3b)},
		{"fig9", "Shogun vs FINGERS speedup grid (+fig10 IU util)", func(o Options) ([]*Table, error) {
			t9, t10, err := Fig9And10(o)
			if err != nil {
				return nil, err
			}
			return []*Table{t9, t10}, nil
		}},
		{"fig10", "Shogun IU utilization grid (alias of fig9 runs)", func(o Options) ([]*Table, error) {
			_, t10, err := Fig9And10(o)
			if err != nil {
				return nil, err
			}
			return []*Table{t10}, nil
		}},
		{"fig11", "task-tree splitting (load balance), wi, 20 PEs", wrap1(Fig11)},
		{"fig12", "search tree merging grid", wrap1(Fig12)},
		{"fig13a", "task execution width sensitivity", wrap1(Fig13a)},
		{"fig13b", "bunches-per-depth sensitivity", wrap1(Fig13b)},
		{"fig14", "locality monitoring necessity (enlarged L1)", wrap1(Fig14)},
		{"ablation", "design-choice ablation: sibling pref, monitor, tokens, bunches (extension)", wrap1(Ablation)},
		{"breakdown", "cycle-attribution breakdown per scheme (observability extension)", wrap1(Breakdown)},
		{"imbalance", "load imbalance over time, split on/off (telemetry extension)", wrap1(Imbalance)},
		{"scaling", "strong scaling across PE counts, split on/off (extension)", wrap1(Scaling)},
		{"cluster", "multi-chip scale-out: speedup, chip occupancy, migrations at 1-16 chips (extension)", wrap1(ClusterScaling)},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// RunAll executes every experiment (fig10 skipped: bundled with fig9)
// and writes the tables to w.
func RunAll(o Options, w io.Writer) error { return RunAllFormat(o, w, "text") }

// RunAllFormat is RunAll with an output format (text|csv|markdown).
func RunAllFormat(o Options, w io.Writer, format string) error {
	for _, e := range Experiments() {
		if e.ID == "fig10" {
			continue
		}
		o.logf("== running %s (%s)", e.ID, e.Desc)
		if o.Progress != nil {
			o.Progress.SetStage(e.ID)
		}
		tables, err := e.Run(o)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			out, err := t.Format(format)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, out)
		}
	}
	return nil
}
