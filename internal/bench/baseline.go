package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// baselineTable is the serialized form of a Table (rows only; notes may
// contain measured values and are kept for context but not compared).
type baselineTable struct {
	ID     string     `json:"id"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// CollectAll runs every experiment (fig10 skipped: bundled with fig9) and
// returns the tables.
func CollectAll(o Options) ([]*Table, error) {
	var out []*Table
	for _, e := range Experiments() {
		if e.ID == "fig10" {
			continue
		}
		o.logf("== running %s (%s)", e.ID, e.Desc)
		if o.Progress != nil {
			o.Progress.SetStage(e.ID)
		}
		tables, err := e.Run(o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, tables...)
	}
	return out, nil
}

// SaveBaseline writes the tables to a JSON baseline file. Because every
// simulation is deterministic, future runs on unchanged code reproduce
// the file exactly; `shogunbench -check` turns that into a regression
// test for the entire evaluation.
func SaveBaseline(path string, tables []*Table) error {
	bt := make([]baselineTable, len(tables))
	for i, t := range tables {
		bt[i] = baselineTable{ID: t.ID, Header: t.Header, Rows: t.Rows, Notes: t.Notes}
	}
	b, err := json.MarshalIndent(bt, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// CheckBaseline compares tables against a saved baseline, returning a
// descriptive error on the first drift.
func CheckBaseline(path string, tables []*Table) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want []baselineTable
	if err := json.Unmarshal(raw, &want); err != nil {
		return fmt.Errorf("bench: %s: %w", path, err)
	}
	byID := map[string]baselineTable{}
	for _, t := range want {
		byID[t.ID] = t
	}
	for _, t := range tables {
		w, ok := byID[t.ID]
		if !ok {
			return fmt.Errorf("bench: baseline missing table %q (regenerate with -save)", t.ID)
		}
		if len(w.Rows) != len(t.Rows) {
			return fmt.Errorf("bench: %s: %d rows, baseline has %d", t.ID, len(t.Rows), len(w.Rows))
		}
		for r := range t.Rows {
			if len(t.Rows[r]) != len(w.Rows[r]) {
				return fmt.Errorf("bench: %s row %d: column count drift", t.ID, r)
			}
			for c := range t.Rows[r] {
				if t.Rows[r][c] != w.Rows[r][c] {
					return fmt.Errorf("bench: %s row %d col %d: got %q, baseline %q",
						t.ID, r, c, t.Rows[r][c], w.Rows[r][c])
				}
			}
		}
	}
	return nil
}
