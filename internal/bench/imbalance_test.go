package bench

import (
	"testing"

	"shogun/internal/telemetry"
)

// TestImbalanceSplitLowersTail is the time-resolved load-balance
// acceptance check: on the skewed R-MAT analogue (wi) mining a deep
// 4-clique pattern with 20 PEs, task-tree splitting must measurably
// lower the end-of-run max/mean PE-occupancy ratio relative to the
// no-split run.
func TestImbalanceSplitLowersTail(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	grid, series, err := imbalanceData(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"off", "on"} {
		if grid.Res(key) == nil {
			t.Fatalf("cell %q failed: %v", key, grid.Failures())
		}
		if len(series[key]) == 0 {
			t.Fatalf("cell %q produced no imbalance series", key)
		}
	}
	if s := grid.Res("on").Splits; s == 0 {
		t.Fatal("splitting enabled but no splits happened — tail comparison is vacuous")
	}
	off := TailImbalance(series["off"], 0.3)
	on := TailImbalance(series["on"], 0.3)
	if off <= 0 || on <= 0 {
		t.Fatalf("degenerate tails: off=%v on=%v", off, on)
	}
	// "Measurably lower": at least 10% below the no-split tail.
	if on >= off*0.9 {
		t.Fatalf("split tail imbalance %.2f not measurably below no-split %.2f", on, off)
	}
}

func TestTailImbalanceHelper(t *testing.T) {
	pts := []telemetry.ImbalancePoint{
		{Ratio: 9}, {Ratio: 9}, {Ratio: 9}, {Ratio: 9}, {Ratio: 9},
		{Ratio: 2}, {Ratio: 4}, {Ratio: 0}, {Ratio: 3}, {Ratio: 0},
	}
	// Last 50% = ratios {2,4,0,3,0}; idle epochs are skipped.
	if got := TailImbalance(pts, 0.5); got != 3 {
		t.Fatalf("TailImbalance = %v, want 3", got)
	}
	if got := TailImbalance(nil, 0.3); got != 0 {
		t.Fatalf("empty series = %v", got)
	}
	if got := TailImbalance(pts[7:8], 1); got != 0 {
		t.Fatalf("all-idle tail = %v", got)
	}
}
