package bench

import (
	"fmt"

	"shogun/internal/accel"
	"shogun/internal/sim"
	"shogun/internal/telemetry"
)

// TailImbalance summarizes the end-of-run load imbalance: the mean
// max/mean PE-occupancy ratio over the last `frac` of the sampled epochs,
// skipping all-idle epochs (ratio 0). The tail is where static root
// dispatch strands work on straggler PEs (Fig. 11's phenomenology), so
// it is the series' most informative slice.
func TailImbalance(pts []telemetry.ImbalancePoint, frac float64) float64 {
	if len(pts) == 0 || frac <= 0 {
		return 0
	}
	start := len(pts) - int(float64(len(pts))*frac)
	if start < 0 {
		start = 0
	}
	sum, n := 0.0, 0
	for _, p := range pts[start:] {
		if p.Ratio > 0 {
			sum += p.Ratio
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// meanRatio averages the non-idle imbalance ratios of one slice.
func meanRatio(pts []telemetry.ImbalancePoint) float64 {
	sum, n := 0.0, 0
	for _, p := range pts {
		if p.Ratio > 0 {
			sum += p.Ratio
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// imbalanceData runs Shogun with splitting off vs on under the epoch
// sampler and returns the grid plus both imbalance-over-time series.
func imbalanceData(o Options) (*Grid, map[string][]telemetry.ImbalancePoint, error) {
	// Skewed R-MAT + a deep 4-level pattern: the straggler-heavy regime
	// where a few hub-rooted task trees dominate the tail (same dataset
	// as Fig. 11; the deeper pattern gives splitting subtree leverage
	// that a 2-level triangle count does not have).
	g := o.dataset("wi")
	s := mustSchedule("4cl")
	sampleEvery := sim.Time(2048)
	if o.Quick {
		sampleEvery = 512
	}
	cfgOff := baseConfig(accel.SchemeShogun)
	cfgOff.NumPEs = 20
	cfgOff.SampleEvery = sampleEvery
	cfgOff.SampleCap = 256
	cfgOn := cfgOff
	cfgOn.EnableSplitting = true
	grid, err := runCells(o, []cell{
		{"off", g, s, cfgOff},
		{"on", g, s, cfgOn},
	})
	if err != nil {
		return nil, nil, err
	}
	series := map[string][]telemetry.ImbalancePoint{}
	for _, key := range []string{"off", "on"} {
		if res := grid.Res(key); res != nil && res.Telemetry != nil {
			series[key] = res.Telemetry.Imbalance("/resident")
		}
	}
	return grid, series, nil
}

// Imbalance renders load imbalance over time — max/mean PE occupancy per
// run decile, splitting off vs on — from the telemetry sampler's
// per-epoch gauges. It is the time-resolved companion of Fig. 11: the
// cycle totals there show THAT splitting helps; this shows WHEN (the
// tail deciles, where static dispatch strands the stragglers).
func Imbalance(o Options) (*Table, error) {
	grid, series, err := imbalanceData(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "imbalance",
		Title:  "Load imbalance over time (max/mean PE occupancy), wi/4cl, 20 PEs",
		Header: []string{"Run decile", "no-split", "split"},
	}
	off, on := series["off"], series["on"]
	for d := 0; d < 10; d++ {
		slice := func(pts []telemetry.ImbalancePoint) string {
			if len(pts) == 0 {
				return "fail"
			}
			lo, hi := len(pts)*d/10, len(pts)*(d+1)/10
			if r := meanRatio(pts[lo:hi]); r > 0 {
				return f2(r)
			}
			return "idle"
		}
		t.AddRow(fmt.Sprintf("%d-%d%%", d*10, (d+1)*10), slice(off), slice(on))
	}
	if len(off) > 0 && len(on) > 0 {
		t.AddRow("tail(30%)", f2(TailImbalance(off, 0.3)), f2(TailImbalance(on, 0.3)))
		t.AddNote("ratio 1.0 = perfectly balanced; splitting flattens the tail deciles")
	}
	if onRes := grid.Res("on"); onRes != nil {
		t.AddNote("split transfers: %d", onRes.Splits)
	}
	grid.annotate(t)
	return t, nil
}
