package bench

import (
	"shogun/internal/accel"
)

// Ablation measures how much each Shogun design choice contributes, on
// representative workloads (DESIGN.md's ablation index). Variants:
//
//	full          the complete design (baseline of the table)
//	no-sibling    round-robin only: no sibling-first selection (locality)
//	no-monitor    locality monitor off: conservative mode never engages
//	conservative  conservative mode pinned on: sibling-only co-scheduling
//	tokens=2      address tokens per depth cut to 2 (memory throttling)
//	bunches=1     a single bunch per depth (generation parallelism)
func Ablation(o Options) (*Table, error) {
	variants := []struct {
		name string
		mk   func() accel.Config
	}{
		{"full", func() accel.Config { return baseConfig(accel.SchemeShogun) }},
		{"no-sibling", func() accel.Config {
			c := baseConfig(accel.SchemeShogun)
			c.Tree.NoSiblingPreference = true
			return c
		}},
		{"no-monitor", func() accel.Config {
			c := baseConfig(accel.SchemeShogun)
			c.DisableMonitor = true
			return c
		}},
		{"conservative", func() accel.Config {
			c := baseConfig(accel.SchemeShogun)
			c.ForceConservative = true
			return c
		}},
		{"tokens=2", func() accel.Config {
			c := baseConfig(accel.SchemeShogun)
			c.TokensPerDepth = 2
			return c
		}},
		{"bunches=1", func() accel.Config {
			c := baseConfig(accel.SchemeShogun)
			c.Tree.BunchesPerDepth = 1
			return c
		}},
	}
	type pick struct {
		ds, wl, label string
		mutate        func(*accel.Config)
	}
	picks := []pick{
		{"as", "4cl", "as-4cl", nil},
		{"yo", "tt_e", "yo-tt_e", nil},
		{"lj", "dia_v", "lj-dia_v", nil},
		// A thrashing-regime cell (capacity-scaled L1, wide execution):
		// this is where the locality monitor and sibling preference earn
		// their keep.
		{"lj", "tt_e", "lj-tt_e@8KB/w16", func(c *accel.Config) {
			c.PE.Width = 16
			c.TokensPerDepth = 16
			c.Tree.EntriesPerBunch = 16
			c.PE.L1.SizeKB = 8
		}},
	}
	if o.Quick {
		picks = picks[:2]
	}

	var cells []cell
	for _, pk := range picks {
		g := o.dataset(pk.ds)
		s := mustSchedule(pk.wl)
		for _, v := range variants {
			cfg := v.mk()
			if pk.mutate != nil {
				pk.mutate(&cfg)
			}
			cells = append(cells, cell{v.name + ":" + pk.label, g, s, cfg})
		}
	}
	grid, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ablation",
		Title: "Shogun design-choice ablation (relative performance, full = 1.00)",
	}
	t.Header = []string{"Variant"}
	for _, pk := range picks {
		t.Header = append(t.Header, pk.label)
	}
	for _, v := range variants {
		row := []string{v.name}
		for _, pk := range picks {
			row = append(row, grid.speedup("full:"+pk.label, v.name+":"+pk.label))
		}
		t.AddRow(row...)
	}
	t.AddNote("values are speedups relative to the full design; <1.00 means the removed/forced feature was helping")
	grid.annotate(t)
	return t, nil
}
