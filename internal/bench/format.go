package bench

import (
	"fmt"
	"strings"
)

// CSV renders the table as RFC-4180-ish CSV (notes become trailing
// comment lines prefixed with '#').
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" " + strings.ReplaceAll(c, "|", "\\|") + " |")
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", n)
	}
	return b.String()
}

// Format renders the table in the named format: "text" (default),
// "csv" or "markdown".
func (t *Table) Format(format string) (string, error) {
	switch format {
	case "", "text":
		return t.String(), nil
	case "csv":
		return t.CSV(), nil
	case "markdown", "md":
		return t.Markdown(), nil
	default:
		return "", fmt.Errorf("bench: unknown format %q (text|csv|markdown)", format)
	}
}

// Cell returns the value at (row, col), or "" when out of range — a
// convenience for the regression checker.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Rows) {
		return ""
	}
	r := t.Rows[row]
	if col < 0 || col >= len(r) {
		return ""
	}
	return r[col]
}

// FindRow returns the first row whose first cell equals key, or nil.
func (t *Table) FindRow(key string) []string {
	for _, r := range t.Rows {
		if len(r) > 0 && r[0] == key {
			return r
		}
	}
	return nil
}

// Chart renders column col (1-based; 0 picks the last column) of every
// row as a horizontal ASCII bar chart, labeled by the first column —
// the terminal rendition of the paper's bar figures. Non-numeric cells
// are skipped.
func (t *Table) Chart(col int) string {
	if col <= 0 || col >= len(t.Header) {
		col = len(t.Header) - 1
	}
	type bar struct {
		label string
		value float64
	}
	var bars []bar
	maxV := 0.0
	for _, r := range t.Rows {
		if col >= len(r) {
			continue
		}
		var v float64
		cell := strings.TrimSuffix(r[col], "%")
		if _, err := fmt.Sscan(cell, &v); err != nil {
			continue
		}
		bars = append(bars, bar{r[0], v})
		if v > maxV {
			maxV = v
		}
	}
	if len(bars) == 0 || maxV <= 0 {
		return "(no numeric data in column)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (column %q)\n", t.ID, t.Title, t.Header[col])
	const width = 50
	for _, bar := range bars {
		n := int(bar.value / maxV * width)
		if n < 1 && bar.value > 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-10s %8.2f |%s\n", bar.label, bar.value, strings.Repeat("█", n))
	}
	return b.String()
}
