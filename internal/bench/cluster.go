package bench

import (
	"fmt"
	"sync"

	"shogun/internal/accel"
	"shogun/internal/cluster"
	"shogun/internal/sim"
)

// ClusterScaling is an extension experiment (not in the paper):
// multi-chip scale-out of the Shogun machine at 1–16 chips over the
// inter-chip interconnect, reporting speedup, chip-occupancy balance
// (max and mean), and migrated-subtree volume. The BENCH_0009 snapshot
// records the same sweep through BenchmarkClusterSimulate.
func ClusterScaling(o Options) (*Table, error) {
	chipCounts := []int{1, 2, 4, 8, 16}
	g := o.dataset("wi")
	s := mustSchedule("tc")
	want := expectedCount(g, s, o.workers())

	type outcome struct {
		chips int
		res   *cluster.Result
		err   error
	}
	outs := make([]outcome, len(chipCounts))
	var wg sync.WaitGroup
	for i, n := range chipCounts {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			chip := baseConfig(accel.SchemeShogun)
			chip.NumPEs = 4
			chip.EnableSplitting = true
			if o.CellMaxEvents > 0 {
				chip.MaxEvents = o.CellMaxEvents
			}
			if o.CellTimeout > 0 {
				chip.MaxWall = o.CellTimeout
			}
			cfg := cluster.DefaultConfig(accel.SchemeShogun, n)
			cfg.Chip = chip
			cfg.Partition = cluster.ModeHash
			cl, err := cluster.New(g, s, cfg)
			if err != nil {
				outs[i] = outcome{n, nil, err}
				return
			}
			res, err := cl.RunContext(o.ctx())
			outs[i] = outcome{n, res, err}
		}()
	}
	wg.Wait()

	t := &Table{
		ID:     "cluster",
		Title:  "Multi-chip scale-out on wi x tc, hash partition (extension)",
		Header: []string{"chips", "cycles", "speedup", "max occ", "mean occ", "max/mean", "migrations", "interconnect lines"},
	}
	var base sim.Time
	for _, out := range outs {
		if out.err != nil {
			o.logf("  FAILED chips=%d: %v", out.chips, out.err)
			t.AddRow(fmt.Sprintf("%d", out.chips), "FAILED", "-", "-", "-", "-", "-", "-")
			continue
		}
		res := out.res
		if !o.SkipVerify && res.Embeddings != want {
			return nil, fmt.Errorf("bench: cluster chips=%d count mismatch: sim=%d software=%d", out.chips, res.Embeddings, want)
		}
		if base == 0 {
			base = res.Cycles
		}
		o.logf("  chips=%-3d %12d cycles  occ max=%4.1f%% mean=%4.1f%%  migrations=%d",
			out.chips, res.Cycles, res.MaxOccupancy*100, res.MeanOccupancy*100, res.Migrations)
		t.AddRow(fmt.Sprintf("%d", out.chips),
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%.2fx", float64(base)/float64(res.Cycles)),
			fmt.Sprintf("%.1f%%", res.MaxOccupancy*100),
			fmt.Sprintf("%.1f%%", res.MeanOccupancy*100),
			fmt.Sprintf("%.2f", res.ImbalanceRatio()),
			fmt.Sprintf("%d", res.Migrations),
			fmt.Sprintf("%d", res.InterLines))
	}
	t.AddNote("graph replicated per chip, root space hash-partitioned; chip-level stealing over the interconnect")
	t.AddNote("speedup vs 1 chip; max/mean occupancy 1.00 = perfect chip-level balance")
	return t, nil
}
