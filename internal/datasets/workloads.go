package datasets

import (
	"fmt"

	"shogun/internal/pattern"
)

// Excluded returns the evaluation cells the paper left out for exceeding
// a 4-day simulator runtime (§5.1.2); this reproduction excludes the same
// cells.
func Excluded() map[string]bool {
	return map[string]bool{
		"lj/5cl": true, "or/4cl": true, "or/5cl": true,
		"or/4cyc_e": true, "or/4cyc_v": true,
	}
}

// Workload pairs a paper workload name with its schedule.

type Workload struct {
	Name     string
	Schedule *pattern.Schedule
}

// Workloads returns the paper's nine evaluated schedules (tc, tt_e, tt_v,
// 4cl, 5cl, dia_e, dia_v, 4cyc_e, 4cyc_v).
func Workloads() []Workload {
	mk := func(p pattern.Pattern, induced bool) Workload {
		s, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: induced})
		if err != nil {
			panic(fmt.Sprintf("datasets: %v", err))
		}
		return Workload{Name: s.Name, Schedule: s}
	}
	return []Workload{
		mk(pattern.Triangle(), false),
		mk(pattern.TailedTriangle(), false),
		mk(pattern.TailedTriangle(), true),
		mk(pattern.FourClique(), false),
		mk(pattern.FiveClique(), false),
		mk(pattern.Diamond(), false),
		mk(pattern.Diamond(), true),
		mk(pattern.FourCycle(), false),
		mk(pattern.FourCycle(), true),
	}
}
