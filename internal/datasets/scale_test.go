package datasets

import (
	"testing"

	"shogun/internal/mine"
)

// TestScaleBudget measures the search-tree size of every (dataset,
// schedule) cell of the paper's evaluation grid, failing if any included
// cell exceeds the simulation budget (the paper's own 4-day-exclusion
// rule, scaled to our simulator's throughput). Run with -v to see the
// grid; it doubles as the data for sizing decisions in DESIGN.md.
func TestScaleBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Cells the paper excluded for >4-day runtimes; we exclude the same.
	excluded := Excluded()
	const budget = 16_000_000 // internal tasks per cell
	for _, name := range Names() {
		g := MustGet(name)
		for _, wl := range Workloads() {
			cell := name + "/" + wl.Name
			if excluded[cell] {
				continue
			}
			res := mine.NewMiner(g, wl.Schedule).Run()
			internal := res.Tasks() - res.TasksPerDepth[len(res.TasksPerDepth)-1]
			t.Logf("%-12s internal=%-12d leaves=%-12d embeddings=%d",
				cell, internal, res.TasksPerDepth[len(res.TasksPerDepth)-1], res.Embeddings)
			if internal > budget {
				t.Errorf("%s: %d internal tasks exceeds simulation budget %d — shrink the analogue",
					cell, internal, budget)
			}
		}
	}
}
