// Package datasets provides the six named graph analogues standing in for
// the SNAP datasets of the paper's Table 4 (Wiki-Vote, AstroPh, Youtube,
// Patents, LiveJournal, Orkut).
//
// The originals are not redistributable here and at full scale would make a
// software cycle-level simulation take days (the paper itself excluded four
// cells for exceeding 4 days on their simulator). Each analogue is
// generated deterministically (internal/gen) and tuned to sit at the same
// qualitative position on the axes that drive the evaluation:
//
//	wi  – small, cacheable on chip, moderate skew      (Wiki-Vote)
//	as  – small, cacheable, high clustering            (AstroPh)
//	yo  – sparse, very low average degree, high skew   (Youtube)
//	pa  – sparse, low degree variance                  (Patents)
//	lj  – large, higher degree, skewed                 (LiveJournal)
//	or  – large, dense, memory-bandwidth bound         (Orkut)
//
// Scale factors are recorded in each Spec so EXPERIMENTS.md can state the
// substitution precisely.
package datasets

import (
	"fmt"
	"sync"

	"shogun/internal/gen"
	"shogun/internal/graph"
)

// Spec describes one analogue.
type Spec struct {
	Name  string // short name used across the paper's figures
	Long  string // original dataset it stands in for
	OrigV string // original vertex count, for documentation
	OrigE string // original edge count, for documentation
	Make  func() *graph.Graph
	// Scale notes roughly how much smaller the analogue is than the
	// original (vertices).
	Scale string
}

const seed = 20230617 // ISCA'23 conference start date; fixed for determinism

var specs = []Spec{
	{
		Name: "wi", Long: "Wiki-Vote", OrigV: "7.12K", OrigE: "100.37K", Scale: "1x (same order)",
		Make: func() *graph.Graph { return gen.RMAT(1<<13, 60000, 0.55, 0.17, 0.17, seed+1) },
	},
	{
		Name: "as", Long: "AstroPh", OrigV: "18.77K", OrigE: "198.11K", Scale: "~2x smaller",
		Make: func() *graph.Graph { return gen.PowerLawCluster(9000, 11, 0.6, seed+2) },
	},
	{
		Name: "yo", Long: "Youtube", OrigV: "1.13M", OrigE: "2.99M", Scale: "~70x smaller",
		Make: func() *graph.Graph { return gen.RMAT(1<<14, 42000, 0.62, 0.14, 0.14, seed+3) },
	},
	{
		Name: "pa", Long: "Patents", OrigV: "3.77M", OrigE: "16.52M", Scale: "~50x smaller",
		Make: func() *graph.Graph { return gen.NearRegular(80000, 9, seed+4) },
	},
	{
		Name: "lj", Long: "LiveJournal", OrigV: "4.00M", OrigE: "34.68M", Scale: "~120x smaller",
		Make: func() *graph.Graph { return gen.RMAT(1<<15, 160000, 0.55, 0.17, 0.17, seed+5) },
	},
	{
		Name: "or", Long: "Orkut", OrigV: "3.07M", OrigE: "117.19M", Scale: "~370x smaller",
		Make: func() *graph.Graph { return gen.RMAT(1<<13, 180000, 0.45, 0.22, 0.22, seed+6) },
	},
}

var (
	mu    sync.Mutex
	cache = map[string]*graph.Graph{}
)

// Names returns the analogue names in the paper's order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Lookup returns the Spec for name.
func Lookup(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name || s.Long == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
}

// Get builds (or returns the cached) analogue graph for name.
func Get(name string) (*graph.Graph, error) {
	s, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	mu.Lock()
	defer mu.Unlock()
	if g, ok := cache[s.Name]; ok {
		return g, nil
	}
	g := s.Make()
	cache[s.Name] = g
	return g, nil
}

// MustGet is Get for callers with known-valid names (harness, tests).
func MustGet(name string) *graph.Graph {
	g, err := Get(name)
	if err != nil {
		panic(err)
	}
	return g
}

// All returns the specs in paper order.
func All() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	return out
}
