package datasets

import (
	"testing"
)

func TestNamesAndLookup(t *testing.T) {
	names := Names()
	want := []string{"wi", "as", "yo", "pa", "lj", "or"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names[%d] = %s, want %s", i, names[i], n)
		}
	}
	if _, err := Lookup("lj"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("LiveJournal"); err != nil {
		t.Fatal("long-name lookup failed")
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("bogus lookup succeeded")
	}
	if _, err := Get("bogus"); err == nil {
		t.Fatal("bogus Get succeeded")
	}
}

func TestGetCachesGraphs(t *testing.T) {
	a := MustGet("wi")
	b := MustGet("wi")
	if a != b {
		t.Fatal("dataset graph not cached")
	}
}

// TestAnalogueRegimes verifies each analogue sits in its original's
// qualitative regime (the axes DESIGN.md's substitution table promises).
func TestAnalogueRegimes(t *testing.T) {
	stats := map[string]struct {
		v, e      int64
		avg, skew float64
		maxDeg    int
	}{}
	for _, n := range Names() {
		s := MustGet(n).ComputeStats()
		stats[n] = struct {
			v, e      int64
			avg, skew float64
			maxDeg    int
		}{int64(s.Vertices), s.Edges, s.AvgDegree, s.Skewness, s.MaxDegree}
	}
	// wi/as are small (cacheable on chip at the scaled L2).
	for _, n := range []string{"wi", "as"} {
		if stats[n].e*8 > 1<<20 {
			t.Errorf("%s: CSR %d bytes exceeds the scaled 1MB L2", n, stats[n].e*8)
		}
	}
	// yo: lowest average degree, highest skew.
	for _, n := range []string{"wi", "as", "pa", "lj", "or"} {
		if stats["yo"].avg >= stats[n].avg {
			t.Errorf("yo avg degree %.1f not below %s's %.1f", stats["yo"].avg, n, stats[n].avg)
		}
	}
	if stats["yo"].skew < 8 {
		t.Errorf("yo skew %.1f too low", stats["yo"].skew)
	}
	// pa: low degree variance (skew near zero).
	if stats["pa"].skew > 2 {
		t.Errorf("pa skew %.1f too high for a near-regular analogue", stats["pa"].skew)
	}
	// or: densest by average degree.
	for _, n := range []string{"wi", "as", "yo", "pa", "lj"} {
		if stats["or"].avg <= stats[n].avg {
			t.Errorf("or avg %.1f not above %s's %.1f", stats["or"].avg, n, stats[n].avg)
		}
	}
	// lj/or CSR exceeds the scaled L2 (memory-bound axis).
	for _, n := range []string{"lj", "or"} {
		if stats[n].e*8 < 1<<20 {
			t.Errorf("%s: CSR %d bytes fits the scaled L2; should stream", n, stats[n].e*8)
		}
	}
}

func TestWorkloadsCoverPaperGrid(t *testing.T) {
	wls := Workloads()
	names := map[string]bool{}
	for _, w := range wls {
		names[w.Name] = true
		if w.Schedule == nil || w.Schedule.Depth() < 3 {
			t.Errorf("workload %s has bad schedule", w.Name)
		}
	}
	for _, want := range []string{"tc", "tt_e", "tt_v", "4cl", "5cl", "dia_e", "dia_v", "4cyc_e", "4cyc_v"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
	exc := Excluded()
	if len(exc) != 5 {
		t.Errorf("excluded cells = %v", exc)
	}
}
