package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Timeline renders per-PE occupancy over time as an ASCII chart — a
// quick visual for load imbalance and straggler trees (the Fig. 11
// phenomenology) without leaving the terminal.
type Timeline struct {
	mu     sync.Mutex
	events []Event
}

// NewTimeline builds an empty timeline collector.
func NewTimeline() *Timeline { return &Timeline{} }

// TaskDone implements Tracer.
func (tl *Timeline) TaskDone(ev Event) {
	tl.mu.Lock()
	tl.events = append(tl.events, ev)
	tl.mu.Unlock()
}

// Render draws one row per PE with `cols` time buckets. Bucket glyphs
// scale with the number of task-cycles overlapping the bucket:
// ' ' idle, '.' light, ':' moderate, '#' busy.
func (tl *Timeline) Render(cols int) string {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if len(tl.events) == 0 {
		return "(no trace events)\n"
	}
	if cols < 1 {
		cols = 1 // a too-narrow terminal still gets one bucket per PE
	}
	var end int64
	pes := map[int]bool{}
	for _, ev := range tl.events {
		if ev.Done > end {
			end = ev.Done
		}
		pes[ev.PE] = true
	}
	if end == 0 {
		end = 1
	}
	bucket := (end + int64(cols) - 1) / int64(cols)
	if bucket == 0 {
		bucket = 1
	}

	// occupancy[pe][col] accumulates task-cycles.
	occ := map[int][]int64{}
	for pe := range pes {
		occ[pe] = make([]int64, cols)
	}
	for _, ev := range tl.events {
		for c := ev.Start / bucket; c <= (ev.Done-1)/bucket && c < int64(cols); c++ {
			lo := c * bucket
			hi := lo + bucket
			s, e := ev.Start, ev.Done
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			if e > s {
				occ[ev.PE][c] += e - s
			}
		}
	}

	ids := make([]int, 0, len(pes))
	for pe := range pes {
		ids = append(ids, pe)
	}
	sort.Ints(ids)

	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d cycles, %d cycles/col\n", end, bucket)
	for _, pe := range ids {
		fmt.Fprintf(&b, "pe%-3d |", pe)
		for _, v := range occ[pe] {
			frac := float64(v) / float64(bucket)
			switch {
			case frac <= 0.01:
				b.WriteByte(' ')
			case frac < 1:
				b.WriteByte('.')
			case frac < 4:
				b.WriteByte(':')
			default:
				b.WriteByte('#')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}
