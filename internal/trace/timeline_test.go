package trace_test

import (
	"strings"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/gen"
	"shogun/internal/pattern"
	"shogun/internal/trace"
)

func TestTimelineRender(t *testing.T) {
	tl := trace.NewTimeline()
	tl.TaskDone(trace.Event{PE: 0, Start: 0, Done: 100})
	tl.TaskDone(trace.Event{PE: 1, Start: 50, Done: 60})
	out := tl.Render(10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline lines:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "pe0") || !strings.HasPrefix(lines[2], "pe1") {
		t.Fatalf("rows:\n%s", out)
	}
	// pe0 is busy the whole run; its row must contain non-blank glyphs.
	if !strings.ContainsAny(lines[1], ".:#") {
		t.Fatalf("pe0 row looks idle: %q", lines[1])
	}
	// pe1 is busy only briefly: must have blanks.
	body := lines[2][strings.Index(lines[2], "|")+1:]
	if !strings.Contains(body, " ") {
		t.Fatalf("pe1 row has no idle buckets: %q", lines[2])
	}
}

func TestTimelineEmpty(t *testing.T) {
	if got := trace.NewTimeline().Render(10); !strings.Contains(got, "no trace") {
		t.Fatalf("empty render = %q", got)
	}
}

func TestTimelineFromSimulation(t *testing.T) {
	g := gen.RMAT(128, 700, 0.6, 0.15, 0.15, 2)
	s, _ := pattern.Build(pattern.Triangle())
	tl := trace.NewTimeline()
	cfg := accel.DefaultConfig(accel.SchemeShogun)
	cfg.NumPEs = 3
	cfg.Tracer = tl
	a, err := accel.New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	out := tl.Render(40)
	for _, pe := range []string{"pe0", "pe1", "pe2"} {
		if !strings.Contains(out, pe) {
			t.Fatalf("missing %s row:\n%s", pe, out)
		}
	}
}
