package trace_test

import (
	"strings"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/gen"
	"shogun/internal/pattern"
	"shogun/internal/trace"
)

func TestTimelineRender(t *testing.T) {
	tl := trace.NewTimeline()
	tl.TaskDone(trace.Event{PE: 0, Start: 0, Done: 100})
	tl.TaskDone(trace.Event{PE: 1, Start: 50, Done: 60})
	out := tl.Render(10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline lines:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "pe0") || !strings.HasPrefix(lines[2], "pe1") {
		t.Fatalf("rows:\n%s", out)
	}
	// pe0 is busy the whole run; its row must contain non-blank glyphs.
	if !strings.ContainsAny(lines[1], ".:#") {
		t.Fatalf("pe0 row looks idle: %q", lines[1])
	}
	// pe1 is busy only briefly: must have blanks.
	body := lines[2][strings.Index(lines[2], "|")+1:]
	if !strings.Contains(body, " ") {
		t.Fatalf("pe1 row has no idle buckets: %q", lines[2])
	}
}

func TestTimelineEmpty(t *testing.T) {
	if got := trace.NewTimeline().Render(10); !strings.Contains(got, "no trace") {
		t.Fatalf("empty render = %q", got)
	}
}

// TestTimelineEdgeCases drives Render through degenerate inputs that
// must neither panic nor divide by zero: zero-cycle runs (every event
// instantaneous at t=0), a single task, and column counts smaller than
// the label gutter.
func TestTimelineEdgeCases(t *testing.T) {
	zero := trace.NewTimeline()
	zero.TaskDone(trace.Event{PE: 0, Start: 0, Done: 0})
	zero.TaskDone(trace.Event{PE: 1, Start: 0, Done: 0})
	out := zero.Render(20)
	if !strings.Contains(out, "pe0") || !strings.Contains(out, "pe1") {
		t.Fatalf("zero-cycle render missing rows:\n%s", out)
	}

	single := trace.NewTimeline()
	single.TaskDone(trace.Event{PE: 3, Start: 7, Done: 8})
	out = single.Render(5)
	if !strings.Contains(out, "pe3") || !strings.ContainsAny(out, ".:#") {
		t.Fatalf("single-task render:\n%s", out)
	}

	// cols below 1 clamps to one bucket per PE instead of bailing out.
	for _, cols := range []int{0, -3} {
		out = single.Render(cols)
		if strings.Contains(out, "no trace") {
			t.Fatalf("Render(%d) dropped real events: %q", cols, out)
		}
		if !strings.Contains(out, "pe3") {
			t.Fatalf("Render(%d) missing row:\n%s", cols, out)
		}
	}

	// A task far wider than one bucket must saturate, not overflow.
	wide := trace.NewTimeline()
	wide.TaskDone(trace.Event{PE: 0, Start: 0, Done: 1 << 20})
	if out := wide.Render(1); !strings.ContainsAny(out, ":#") {
		t.Fatalf("wide task not saturated:\n%s", out)
	}
}

func TestTimelineFromSimulation(t *testing.T) {
	g := gen.RMAT(128, 700, 0.6, 0.15, 0.15, 2)
	s, _ := pattern.Build(pattern.Triangle())
	tl := trace.NewTimeline()
	cfg := accel.DefaultConfig(accel.SchemeShogun)
	cfg.NumPEs = 3
	cfg.Tracer = tl
	a, err := accel.New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	out := tl.Render(40)
	for _, pe := range []string{"pe0", "pe1", "pe2"} {
		if !strings.Contains(out, pe) {
			t.Fatalf("missing %s row:\n%s", pe, out)
		}
	}
}
