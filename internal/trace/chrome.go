package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Chrome collects task events and renders them in the Chrome trace-event
// JSON format, loadable in chrome://tracing and Perfetto. Each PE maps to
// a thread (tid): tasks become "X" complete events spanning
// [Start, Done) in simulated cycles (1 cycle = 1 µs of trace time), and
// a per-PE "C" counter series tracks the number of resident tasks so
// slot occupancy is visible as a stacked area chart.
type Chrome struct {
	mu       sync.Mutex
	events   []Event
	counters []counterSeries
}

// counterSeries is one externally supplied counter track (telemetry
// sampler gauges), rendered under a separate "telemetry" process row.
type counterSeries struct {
	name   string
	cycles []int64
	vals   []int64
}

// NewChrome builds an empty collector.
func NewChrome() *Chrome { return &Chrome{} }

// TaskDone implements Tracer.
func (c *Chrome) TaskDone(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// AddCounterSeries folds one sampled gauge into the trace file as a "C"
// counter track under the "telemetry" process (pid 1), aligned to the
// task spans' cycle timeline. cycles and vals must be parallel; the
// shorter length wins.
func (c *Chrome) AddCounterSeries(name string, cycles, vals []int64) {
	n := len(cycles)
	if len(vals) < n {
		n = len(vals)
	}
	c.mu.Lock()
	c.counters = append(c.counters, counterSeries{
		name:   name,
		cycles: append([]int64(nil), cycles[:n]...),
		vals:   append([]int64(nil), vals[:n]...),
	})
	c.mu.Unlock()
}

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteTo emits the collected events as a complete trace file.
func (c *Chrome) WriteTo(w io.Writer) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	pes := map[int]bool{}
	for _, ev := range c.events {
		pes[ev.PE] = true
	}
	var out []chromeEvent
	for pe := range pes {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: pe,
			Args: map[string]any{"name": fmt.Sprintf("PE %d", pe)},
		})
	}

	// Task spans.
	for _, ev := range c.events {
		out = append(out, chromeEvent{
			Name: fmt.Sprintf("d%d v%d", ev.Depth, ev.Vertex),
			Cat:  "task", Ph: "X",
			Ts: ev.Start, Dur: ev.Done - ev.Start,
			Pid: 0, Tid: ev.PE,
			Args: map[string]any{
				"tree": ev.TreeID, "depth": ev.Depth,
				"vertex": ev.Vertex, "leaves": ev.Leaves,
			},
		})
	}

	// Per-PE resident-task counter: +1 at each start, -1 at each done,
	// one "C" sample per boundary.
	type edge struct {
		t     int64
		delta int
	}
	perPE := map[int][]edge{}
	for _, ev := range c.events {
		perPE[ev.PE] = append(perPE[ev.PE], edge{ev.Start, +1}, edge{ev.Done, -1})
	}
	for pe, edges := range perPE {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].t != edges[j].t {
				return edges[i].t < edges[j].t
			}
			return edges[i].delta < edges[j].delta // close before open
		})
		level := 0
		for i, e := range edges {
			level += e.delta
			if i+1 < len(edges) && edges[i+1].t == e.t {
				continue // emit one sample per timestamp
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("PE %d tasks", pe), Ph: "C",
				Ts: e.t, Pid: 0, Tid: pe,
				Args: map[string]any{"running": level},
			})
		}
	}

	// Telemetry counter tracks live under their own process row so they
	// stack separately from the per-PE task threads.
	if len(c.counters) > 0 {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]any{"name": "telemetry"},
		})
	}
	for _, cs := range c.counters {
		for i := range cs.cycles {
			out = append(out, chromeEvent{
				Name: cs.name, Ph: "C", Ts: cs.cycles[i], Pid: 1,
				Args: map[string]any{"value": cs.vals[i]},
			})
		}
	}

	// Deterministic output order: metadata first, then by (ts, tid, ph).
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if out[i].Ts != out[j].Ts {
			return out[i].Ts < out[j].Ts
		}
		return out[i].Tid < out[j].Tid
	})

	b, err := json.Marshal(chromeFile{TraceEvents: out, DisplayTimeUnit: "ms"})
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	n, err := w.Write(b)
	return int64(n), err
}

// Count reports collected events.
func (c *Chrome) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(len(c.events))
}
