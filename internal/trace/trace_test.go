package trace_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/gen"
	"shogun/internal/pattern"
	"shogun/internal/trace"
)

func TestJSONLAndSummaryFromSimulation(t *testing.T) {
	g := gen.RMAT(128, 700, 0.6, 0.15, 0.15, 2)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jsonl := trace.NewJSONL(&buf)
	summary := trace.NewSummary()

	cfg := accel.DefaultConfig(accel.SchemeShogun)
	cfg.NumPEs = 2
	cfg.Tracer = trace.Multi{jsonl, summary}
	a, err := accel.New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if jsonl.Count() != res.Tasks {
		t.Fatalf("traced %d events, simulator ran %d tasks", jsonl.Count(), res.Tasks)
	}

	// Every line must be valid JSON with sane fields.
	sc := bufio.NewScanner(&buf)
	lines := int64(0)
	var totalLeaves int64
	for sc.Scan() {
		var ev trace.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line: %v", err)
		}
		if ev.Done < ev.Start || ev.Depth < 0 || ev.Depth >= s.Depth() {
			t.Fatalf("implausible event %+v", ev)
		}
		totalLeaves += int64(ev.Leaves)
		lines++
	}
	if lines != res.Tasks {
		t.Fatalf("lines %d != tasks %d", lines, res.Tasks)
	}
	if totalLeaves != res.Embeddings {
		t.Fatalf("traced leaves %d != embeddings %d", totalLeaves, res.Embeddings)
	}

	// Summary: per-depth rows, total task count preserved, report sorted.
	rep := summary.Report()
	if len(rep) == 0 {
		t.Fatal("empty summary")
	}
	var tasks int64
	for i, r := range rep {
		tasks += r.Tasks
		if r.AvgLat <= 0 || r.P99 < r.P50 {
			t.Fatalf("bad row %+v", r)
		}
		if i > 0 && rep[i-1].Depth >= r.Depth {
			t.Fatal("report not sorted by depth")
		}
	}
	if tasks != res.Tasks {
		t.Fatalf("summary tasks %d != %d", tasks, res.Tasks)
	}
	if !strings.Contains(summary.String(), "p99") {
		t.Fatal("summary table malformed")
	}
}
