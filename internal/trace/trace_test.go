package trace_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/gen"
	"shogun/internal/pattern"
	"shogun/internal/trace"
)

func TestJSONLAndSummaryFromSimulation(t *testing.T) {
	g := gen.RMAT(128, 700, 0.6, 0.15, 0.15, 2)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jsonl := trace.NewJSONL(&buf)
	summary := trace.NewSummary()

	cfg := accel.DefaultConfig(accel.SchemeShogun)
	cfg.NumPEs = 2
	cfg.Tracer = trace.Multi{jsonl, summary}
	a, err := accel.New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if jsonl.Count() != res.Tasks {
		t.Fatalf("traced %d events, simulator ran %d tasks", jsonl.Count(), res.Tasks)
	}

	// Every line must be valid JSON with sane fields.
	sc := bufio.NewScanner(&buf)
	lines := int64(0)
	var totalLeaves int64
	for sc.Scan() {
		var ev trace.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line: %v", err)
		}
		if ev.Done < ev.Start || ev.Depth < 0 || ev.Depth >= s.Depth() {
			t.Fatalf("implausible event %+v", ev)
		}
		totalLeaves += int64(ev.Leaves)
		lines++
	}
	if lines != res.Tasks {
		t.Fatalf("lines %d != tasks %d", lines, res.Tasks)
	}
	if totalLeaves != res.Embeddings {
		t.Fatalf("traced leaves %d != embeddings %d", totalLeaves, res.Embeddings)
	}

	// Summary: per-depth rows, total task count preserved, report sorted.
	rep := summary.Report()
	if len(rep) == 0 {
		t.Fatal("empty summary")
	}
	var tasks int64
	for i, r := range rep {
		tasks += r.Tasks
		if r.AvgLat <= 0 || r.P99 < r.P50 {
			t.Fatalf("bad row %+v", r)
		}
		if i > 0 && rep[i-1].Depth >= r.Depth {
			t.Fatal("report not sorted by depth")
		}
	}
	if tasks != res.Tasks {
		t.Fatalf("summary tasks %d != %d", tasks, res.Tasks)
	}
	if !strings.Contains(summary.String(), "p99") {
		t.Fatal("summary table malformed")
	}
}

// failAfter fails every write after the first n bytes have been accepted.
type failAfter struct {
	remaining int
	writes    int
}

type errWriterFull struct{}

func (errWriterFull) Error() string { return "disk full" }

func (w *failAfter) Write(p []byte) (int, error) {
	w.writes++
	if w.remaining <= 0 {
		return 0, errWriterFull{}
	}
	w.remaining -= len(p)
	return len(p), nil
}

// TestJSONLWriteError asserts the first write failure is recorded, later
// events stop hitting the writer, and Count reflects only the events
// that made it out.
func TestJSONLWriteError(t *testing.T) {
	w := &failAfter{remaining: 1} // first event fits, second fails
	j := trace.NewJSONL(w)

	j.TaskDone(trace.Event{PE: 0, Start: 0, Done: 5})
	if err := j.Err(); err != nil {
		t.Fatalf("unexpected error after successful write: %v", err)
	}
	j.TaskDone(trace.Event{PE: 1, Start: 5, Done: 9})
	err := j.Err()
	if err == nil {
		t.Fatal("write error not recorded")
	}
	if !errors.Is(err, errWriterFull{}) {
		t.Fatalf("recorded error %v does not wrap the writer's", err)
	}
	if j.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (only the successful event)", j.Count())
	}

	// Encoding must stop: further events neither touch the writer nor
	// clobber the first error.
	writesBefore := w.writes
	j.TaskDone(trace.Event{PE: 2, Start: 9, Done: 12})
	if w.writes != writesBefore {
		t.Fatal("writer still invoked after sticky error")
	}
	if got := j.Err(); got != err {
		t.Fatalf("first error clobbered: %v -> %v", err, got)
	}
}

// TestSummaryWholeStreamPercentiles feeds a latency stream whose
// distribution shifts after 16k observations: short warm-up tasks first,
// then 3× as many long tasks. A first-N reservoir would report the
// warm-up percentile (P50 = 1); the log-bucketed histogram covers the
// whole stream, so both P50 and P99 must land in the dominant late phase.
func TestSummaryWholeStreamPercentiles(t *testing.T) {
	s := trace.NewSummary()
	emit := func(n int, lat int64) {
		for i := 0; i < n; i++ {
			s.TaskDone(trace.Event{Depth: 1, Start: 0, Done: lat})
		}
	}
	emit(1<<14, 1)   // exactly the old reservoir capacity
	emit(3<<14, 100) // 3/4 of the stream: P50 and P99 are here

	rep := s.Report()
	if len(rep) != 1 {
		t.Fatalf("want one depth row, got %d", len(rep))
	}
	r := rep[0]
	if r.Tasks != 4<<14 {
		t.Fatalf("tasks = %d, want %d", r.Tasks, 4<<14)
	}
	if r.P50 != 100 {
		t.Fatalf("P50 = %d, want 100 (first-N reservoir bias would report 1)", r.P50)
	}
	if r.P99 != 100 {
		t.Fatalf("P99 = %d, want 100", r.P99)
	}

	// A uniform ramp must report percentiles near their exact values
	// even for very long streams (the histogram's relative error is
	// bounded by its sub-bucket width, ~3%).
	s2 := trace.NewSummary()
	const n = 200_000
	for i := 0; i < n; i++ {
		s2.TaskDone(trace.Event{Depth: 0, Start: 0, Done: int64(i + 1)})
	}
	r2 := s2.Report()[0]
	if tol := int64(n / 50); r2.P50 < n/2-tol || r2.P50 > n/2+tol {
		t.Fatalf("P50 = %d, want ≈ %d", r2.P50, n/2)
	}
	if tol := int64(n / 50); r2.P99 < n*99/100-tol {
		t.Fatalf("P99 = %d, want ≈ %d", r2.P99, n*99/100)
	}
}

// TestSummaryGoldenReport pins Report() and String() output for a fixed
// small-latency stream: the histogram's singleton buckets (< 32) make
// percentiles exact, so the rows must match the historical sorted-slice
// convention value for value.
func TestSummaryGoldenReport(t *testing.T) {
	s := trace.NewSummary()
	// Depth 0: latencies 1..10; depth 1: twenty 4s and one 30.
	for i := int64(1); i <= 10; i++ {
		s.TaskDone(trace.Event{Depth: 0, Start: 100, Done: 100 + i})
	}
	for i := 0; i < 20; i++ {
		s.TaskDone(trace.Event{Depth: 1, Start: 0, Done: 4})
	}
	s.TaskDone(trace.Event{Depth: 1, Start: 0, Done: 30})

	want := []trace.DepthReport{
		// sorted[len/2] and sorted[len*99/100] of each stream.
		{Depth: 0, Tasks: 10, AvgLat: 5.5, P50: 6, P99: 10},
		{Depth: 1, Tasks: 21, AvgLat: (20*4.0 + 30) / 21, P50: 4, P99: 30},
	}
	got := s.Report()
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	const golden = "depth         tasks    avg-lat      p50      p99\n" +
		"0                10        5.5        6       10\n" +
		"1                21        5.2        4       30\n"
	if s.String() != golden {
		t.Fatalf("String() drifted:\n got:\n%s want:\n%s", s.String(), golden)
	}

	if h := s.Histogram(0); h == nil || h.Count() != 10 {
		t.Fatalf("depth-0 histogram missing or wrong: %v", h)
	}
	if s.Histogram(9) != nil {
		t.Fatal("absent depth should have nil histogram")
	}
}

// errTracer is a failing sink with a sticky error, used behind Multi.
type errTracer struct{ err error }

func (e *errTracer) TaskDone(trace.Event) {}
func (e *errTracer) Err() error           { return e.err }

// TestMultiErr asserts a failing writer behind a Multi fan-out surfaces
// through Multi.Err instead of being silently dropped.
func TestMultiErr(t *testing.T) {
	w := &failAfter{remaining: 1}
	j := trace.NewJSONL(w)
	summary := trace.NewSummary()
	m := trace.Multi{summary, j}

	m.TaskDone(trace.Event{PE: 0, Start: 0, Done: 5})
	if err := m.Err(); err != nil {
		t.Fatalf("unexpected error before failure: %v", err)
	}
	m.TaskDone(trace.Event{PE: 1, Start: 5, Done: 9})
	if err := m.Err(); err == nil {
		t.Fatal("Multi.Err dropped the child's write error")
	} else if !errors.Is(err, errWriterFull{}) {
		t.Fatalf("Multi.Err = %v, want the child's disk-full error", err)
	}

	// Both sinks still saw both events (fan-out is unaffected).
	if got := summary.Report()[0].Tasks; got != 2 {
		t.Fatalf("summary saw %d events, want 2", got)
	}

	// Ordering: the first erroring child wins, and nested Multis are
	// traversed.
	inner := trace.Multi{&errTracer{err: errWriterFull{}}}
	outer := trace.Multi{trace.NewSummary(), inner, &errTracer{err: errors.New("later")}}
	if err := outer.Err(); !errors.Is(err, errWriterFull{}) {
		t.Fatalf("nested Multi error = %v, want first child's", err)
	}
}
