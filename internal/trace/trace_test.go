package trace_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/gen"
	"shogun/internal/pattern"
	"shogun/internal/trace"
)

func TestJSONLAndSummaryFromSimulation(t *testing.T) {
	g := gen.RMAT(128, 700, 0.6, 0.15, 0.15, 2)
	s, err := pattern.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jsonl := trace.NewJSONL(&buf)
	summary := trace.NewSummary()

	cfg := accel.DefaultConfig(accel.SchemeShogun)
	cfg.NumPEs = 2
	cfg.Tracer = trace.Multi{jsonl, summary}
	a, err := accel.New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if jsonl.Count() != res.Tasks {
		t.Fatalf("traced %d events, simulator ran %d tasks", jsonl.Count(), res.Tasks)
	}

	// Every line must be valid JSON with sane fields.
	sc := bufio.NewScanner(&buf)
	lines := int64(0)
	var totalLeaves int64
	for sc.Scan() {
		var ev trace.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line: %v", err)
		}
		if ev.Done < ev.Start || ev.Depth < 0 || ev.Depth >= s.Depth() {
			t.Fatalf("implausible event %+v", ev)
		}
		totalLeaves += int64(ev.Leaves)
		lines++
	}
	if lines != res.Tasks {
		t.Fatalf("lines %d != tasks %d", lines, res.Tasks)
	}
	if totalLeaves != res.Embeddings {
		t.Fatalf("traced leaves %d != embeddings %d", totalLeaves, res.Embeddings)
	}

	// Summary: per-depth rows, total task count preserved, report sorted.
	rep := summary.Report()
	if len(rep) == 0 {
		t.Fatal("empty summary")
	}
	var tasks int64
	for i, r := range rep {
		tasks += r.Tasks
		if r.AvgLat <= 0 || r.P99 < r.P50 {
			t.Fatalf("bad row %+v", r)
		}
		if i > 0 && rep[i-1].Depth >= r.Depth {
			t.Fatal("report not sorted by depth")
		}
	}
	if tasks != res.Tasks {
		t.Fatalf("summary tasks %d != %d", tasks, res.Tasks)
	}
	if !strings.Contains(summary.String(), "p99") {
		t.Fatal("summary table malformed")
	}
}

// failAfter fails every write after the first n bytes have been accepted.
type failAfter struct {
	remaining int
	writes    int
}

type errWriterFull struct{}

func (errWriterFull) Error() string { return "disk full" }

func (w *failAfter) Write(p []byte) (int, error) {
	w.writes++
	if w.remaining <= 0 {
		return 0, errWriterFull{}
	}
	w.remaining -= len(p)
	return len(p), nil
}

// TestJSONLWriteError asserts the first write failure is recorded, later
// events stop hitting the writer, and Count reflects only the events
// that made it out.
func TestJSONLWriteError(t *testing.T) {
	w := &failAfter{remaining: 1} // first event fits, second fails
	j := trace.NewJSONL(w)

	j.TaskDone(trace.Event{PE: 0, Start: 0, Done: 5})
	if err := j.Err(); err != nil {
		t.Fatalf("unexpected error after successful write: %v", err)
	}
	j.TaskDone(trace.Event{PE: 1, Start: 5, Done: 9})
	err := j.Err()
	if err == nil {
		t.Fatal("write error not recorded")
	}
	if !errors.Is(err, errWriterFull{}) {
		t.Fatalf("recorded error %v does not wrap the writer's", err)
	}
	if j.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (only the successful event)", j.Count())
	}

	// Encoding must stop: further events neither touch the writer nor
	// clobber the first error.
	writesBefore := w.writes
	j.TaskDone(trace.Event{PE: 2, Start: 9, Done: 12})
	if w.writes != writesBefore {
		t.Fatal("writer still invoked after sticky error")
	}
	if got := j.Err(); got != err {
		t.Fatalf("first error clobbered: %v -> %v", err, got)
	}
}

// TestSummaryStrideSampling feeds a latency stream whose distribution
// shifts after the old reservoir's 16k-sample capacity: short warm-up
// tasks first, then 3× as many long tasks. A first-N reservoir reports
// the warm-up percentile (P50 = 1); stride decimation samples the whole
// stream, so both P50 and P99 must land in the dominant late phase.
func TestSummaryStrideSampling(t *testing.T) {
	s := trace.NewSummary()
	emit := func(n int, lat int64) {
		for i := 0; i < n; i++ {
			s.TaskDone(trace.Event{Depth: 1, Start: 0, Done: lat})
		}
	}
	emit(1<<14, 1)   // exactly the old reservoir capacity
	emit(3<<14, 100) // 3/4 of the stream: P50 and P99 are here

	rep := s.Report()
	if len(rep) != 1 {
		t.Fatalf("want one depth row, got %d", len(rep))
	}
	r := rep[0]
	if r.Tasks != 4<<14 {
		t.Fatalf("tasks = %d, want %d", r.Tasks, 4<<14)
	}
	if r.P50 != 100 {
		t.Fatalf("P50 = %d, want 100 (first-N reservoir bias would report 1)", r.P50)
	}
	if r.P99 != 100 {
		t.Fatalf("P99 = %d, want 100", r.P99)
	}

	// A uniform ramp must report percentiles near their exact values
	// even far past the buffer capacity (sampling stays uniform over
	// the whole stream after repeated compactions).
	s2 := trace.NewSummary()
	const n = 200_000
	for i := 0; i < n; i++ {
		s2.TaskDone(trace.Event{Depth: 0, Start: 0, Done: int64(i + 1)})
	}
	r2 := s2.Report()[0]
	if tol := int64(n / 50); r2.P50 < n/2-tol || r2.P50 > n/2+tol {
		t.Fatalf("P50 = %d, want ≈ %d", r2.P50, n/2)
	}
	if tol := int64(n / 50); r2.P99 < n*99/100-tol {
		t.Fatalf("P99 = %d, want ≈ %d", r2.P99, n*99/100)
	}
}
