// Package trace records per-task execution events from the simulator for
// offline analysis: task latency breakdowns, per-depth histograms, and
// JSONL dumps consumable by external tooling.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"shogun/internal/telemetry"
)

// Event describes one completed task.
type Event struct {
	PE     int   `json:"pe"`
	TreeID int   `json:"tree"`
	Depth  int   `json:"depth"`
	Vertex int32 `json:"vertex"`
	Start  int64 `json:"start"`
	Done   int64 `json:"done"`
	// Leaves counted at completion (leaf-parent tasks).
	Leaves int `json:"leaves,omitempty"`
}

// Tracer consumes task events. Implementations must be cheap: the
// simulator calls TaskDone once per task.
type Tracer interface {
	TaskDone(Event)
}

// JSONL streams events as JSON lines. The first write error is sticky:
// encoding stops (later events are dropped rather than interleaved into
// a torn stream) and Err reports it so callers can fail loudly instead
// of shipping a silently truncated trace.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int64
	err error
}

// NewJSONL wraps w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{enc: json.NewEncoder(w)} }

// TaskDone implements Tracer.
func (j *JSONL) TaskDone(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(ev); err != nil {
		j.err = fmt.Errorf("trace: event %d: %w", j.n, err)
		return
	}
	j.n++
}

// Count reports successfully emitted events.
func (j *JSONL) Count() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the first write error, if any. Check it after the run:
// a non-nil error means the trace is truncated at Count() events.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Summary aggregates latency statistics per depth. Each depth feeds a
// log-bucketed telemetry histogram, so percentiles cover EVERY
// observation (the former stride-decimation sampler kept an evenly
// spaced subset) at a fixed memory bound per depth, and the per-depth
// digests merge bit-identically across shards.
type Summary struct {
	mu     sync.Mutex
	depths map[int]*telemetry.Histogram
}

// NewSummary builds an empty aggregator.
func NewSummary() *Summary { return &Summary{depths: map[int]*telemetry.Histogram{}} }

// TaskDone implements Tracer.
func (s *Summary) TaskDone(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.depths[ev.Depth]
	if h == nil {
		h = telemetry.NewHistogram()
		s.depths[ev.Depth] = h
	}
	h.Observe(ev.Done - ev.Start)
}

// Histogram exposes one depth's latency digest (nil if the depth never
// completed a task).
func (s *Summary) Histogram(depth int) *telemetry.Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depths[depth]
}

// DepthReport is one row of a Summary.
type DepthReport struct {
	Depth  int
	Tasks  int64
	AvgLat float64
	P50    int64
	P99    int64
}

// Report returns per-depth statistics sorted by depth.
func (s *Summary) Report() []DepthReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []DepthReport
	for depth, h := range s.depths {
		out = append(out, DepthReport{
			Depth:  depth,
			Tasks:  h.Count(),
			AvgLat: h.Avg(),
			P50:    h.Quantile(0.5),
			P99:    h.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Depth < out[j].Depth })
	return out
}

// String renders the report as an aligned table.
func (s *Summary) String() string {
	out := fmt.Sprintf("%-6s %12s %10s %8s %8s\n", "depth", "tasks", "avg-lat", "p50", "p99")
	for _, r := range s.Report() {
		out += fmt.Sprintf("%-6d %12d %10.1f %8d %8d\n", r.Depth, r.Tasks, r.AvgLat, r.P50, r.P99)
	}
	return out
}

// Multi fans events out to several tracers.
type Multi []Tracer

// TaskDone implements Tracer.
func (m Multi) TaskDone(ev Event) {
	for _, t := range m {
		t.TaskDone(ev)
	}
}

// Err aggregates child errors: it returns the first non-nil error among
// children exposing an Err() method (JSONL, nested Multi, ...), so a
// failing sink behind a fan-out surfaces instead of silently truncating
// its stream.
func (m Multi) Err() error {
	for _, t := range m {
		if c, ok := t.(interface{ Err() error }); ok {
			if err := c.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}
