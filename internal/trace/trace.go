// Package trace records per-task execution events from the simulator for
// offline analysis: task latency breakdowns, per-depth histograms, and
// JSONL dumps consumable by external tooling.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event describes one completed task.
type Event struct {
	PE     int   `json:"pe"`
	TreeID int   `json:"tree"`
	Depth  int   `json:"depth"`
	Vertex int32 `json:"vertex"`
	Start  int64 `json:"start"`
	Done   int64 `json:"done"`
	// Leaves counted at completion (leaf-parent tasks).
	Leaves int `json:"leaves,omitempty"`
}

// Tracer consumes task events. Implementations must be cheap: the
// simulator calls TaskDone once per task.
type Tracer interface {
	TaskDone(Event)
}

// JSONL streams events as JSON lines. The first write error is sticky:
// encoding stops (later events are dropped rather than interleaved into
// a torn stream) and Err reports it so callers can fail loudly instead
// of shipping a silently truncated trace.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int64
	err error
}

// NewJSONL wraps w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{enc: json.NewEncoder(w)} }

// TaskDone implements Tracer.
func (j *JSONL) TaskDone(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(ev); err != nil {
		j.err = fmt.Errorf("trace: event %d: %w", j.n, err)
		return
	}
	j.n++
}

// Count reports successfully emitted events.
func (j *JSONL) Count() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the first write error, if any. Check it after the run:
// a non-nil error means the trace is truncated at Count() events.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Summary aggregates latency statistics per depth.
type Summary struct {
	mu     sync.Mutex
	depths map[int]*depthStats
}

// depthStats downsamples latencies by stride decimation: keep every
// stride-th observation; when the buffer fills, drop every other kept
// sample and double the stride. The kept samples are always evenly
// spaced over the WHOLE stream (a first-N reservoir would represent only
// the warm-up and bias P50/P99 toward early, typically shorter tasks),
// and the process is deterministic — same stream, same samples.
type depthStats struct {
	count    int64
	totalLat int64
	samples  []int64
	stride   int64
	skip     int64 // observations to drop before the next kept one
}

const sampleCap = 1 << 14

// NewSummary builds an empty aggregator.
func NewSummary() *Summary { return &Summary{depths: map[int]*depthStats{}} }

// TaskDone implements Tracer.
func (s *Summary) TaskDone(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.depths[ev.Depth]
	if d == nil {
		d = &depthStats{stride: 1}
		s.depths[ev.Depth] = d
	}
	lat := ev.Done - ev.Start
	d.count++
	d.totalLat += lat
	if d.skip > 0 {
		d.skip--
		return
	}
	d.samples = append(d.samples, lat)
	d.skip = d.stride - 1
	if len(d.samples) == sampleCap {
		// Compact: keep even positions so the survivors sit on a
		// uniform 2×stride grid. The pending skip already points at the
		// next even multiple of the old stride (sampleCap is even), so
		// the next kept sample lands on the new grid too.
		for i := 0; i < sampleCap/2; i++ {
			d.samples[i] = d.samples[2*i]
		}
		d.samples = d.samples[:sampleCap/2]
		d.stride *= 2
	}
}

// DepthReport is one row of a Summary.
type DepthReport struct {
	Depth  int
	Tasks  int64
	AvgLat float64
	P50    int64
	P99    int64
}

// Report returns per-depth statistics sorted by depth.
func (s *Summary) Report() []DepthReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []DepthReport
	for depth, d := range s.depths {
		r := DepthReport{Depth: depth, Tasks: d.count}
		if d.count > 0 {
			r.AvgLat = float64(d.totalLat) / float64(d.count)
		}
		if len(d.samples) > 0 {
			sorted := append([]int64(nil), d.samples...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			r.P50 = sorted[len(sorted)/2]
			r.P99 = sorted[len(sorted)*99/100]
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Depth < out[j].Depth })
	return out
}

// String renders the report as an aligned table.
func (s *Summary) String() string {
	out := fmt.Sprintf("%-6s %12s %10s %8s %8s\n", "depth", "tasks", "avg-lat", "p50", "p99")
	for _, r := range s.Report() {
		out += fmt.Sprintf("%-6d %12d %10.1f %8d %8d\n", r.Depth, r.Tasks, r.AvgLat, r.P50, r.P99)
	}
	return out
}

// Multi fans events out to several tracers.
type Multi []Tracer

// TaskDone implements Tracer.
func (m Multi) TaskDone(ev Event) {
	for _, t := range m {
		t.TaskDone(ev)
	}
}
