package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"shogun/internal/accel"
	"shogun/internal/gen"
	"shogun/internal/pattern"
	"shogun/internal/trace"
)

// TestChromeTraceSchema runs a small simulation through the Chrome
// emitter and validates the output against the trace-event JSON schema
// chrome://tracing and Perfetto expect: a traceEvents array whose
// entries carry ph/ts/pid/tid, "X" events with non-negative durations,
// one thread_name metadata record per PE, and "C" counter samples.
func TestChromeTraceSchema(t *testing.T) {
	g := gen.RMAT(128, 700, 0.6, 0.15, 0.15, 2)
	s, err := pattern.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	chrome := trace.NewChrome()
	cfg := accel.DefaultConfig(accel.SchemeShogun)
	cfg.NumPEs = 2
	cfg.Tracer = chrome
	a, err := accel.New(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if chrome.Count() != res.Tasks {
		t.Fatalf("collected %d events, simulator ran %d tasks", chrome.Count(), res.Tasks)
	}

	var buf bytes.Buffer
	if _, err := chrome.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	var spans int64
	threadNames := map[int]bool{}
	counters := 0
	for _, ev := range file.TraceEvents {
		if ev.Ts == nil || ev.Pid == nil || ev.Tid == nil || ev.Ph == "" {
			t.Fatalf("event missing required field: %+v", ev)
		}
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur < 0 || *ev.Ts < 0 {
				t.Fatalf("bad span timing: %+v", ev)
			}
			if ev.Args["depth"] == nil {
				t.Fatalf("span without depth arg: %+v", ev)
			}
		case "M":
			if ev.Name != "thread_name" {
				t.Fatalf("unexpected metadata: %+v", ev)
			}
			threadNames[*ev.Tid] = true
		case "C":
			counters++
			if _, ok := ev.Args["running"]; !ok {
				t.Fatalf("counter without running arg: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != res.Tasks {
		t.Fatalf("%d spans, want %d (one per task)", spans, res.Tasks)
	}
	if len(threadNames) != cfg.NumPEs {
		t.Fatalf("thread_name metadata for %d PEs, want %d", len(threadNames), cfg.NumPEs)
	}
	if counters == 0 {
		t.Fatal("no occupancy counter samples")
	}
}

// TestChromeCounterTracks folds telemetry sampler series into the trace
// and checks they come out as "C" events under the telemetry process
// (pid 1), aligned to the task spans' cycle timeline.
func TestChromeCounterTracks(t *testing.T) {
	chrome := trace.NewChrome()
	chrome.TaskDone(trace.Event{PE: 0, Start: 0, Done: 100})
	chrome.AddCounterSeries("dram/queue", []int64{10, 20, 30}, []int64{1, 4, 2})
	// Mismatched lengths truncate to the shorter side.
	chrome.AddCounterSeries("noc/inflight", []int64{10, 20, 30}, []int64{7})

	var buf bytes.Buffer
	if _, err := chrome.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	var dram, noc int
	procNamed := false
	for _, ev := range file.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name" && ev.Pid == 1:
			procNamed = true
		case ev.Ph == "C" && ev.Name == "dram/queue":
			if ev.Pid != 1 {
				t.Fatalf("counter track on pid %d, want 1: %+v", ev.Pid, ev)
			}
			if _, ok := ev.Args["value"]; !ok {
				t.Fatalf("counter sample without value arg: %+v", ev)
			}
			dram++
		case ev.Ph == "C" && ev.Name == "noc/inflight":
			noc++
		}
	}
	if !procNamed {
		t.Fatal("telemetry process not named")
	}
	if dram != 3 {
		t.Fatalf("dram/queue samples = %d, want 3", dram)
	}
	if noc != 1 {
		t.Fatalf("noc/inflight samples = %d, want 1 (truncated to shorter side)", noc)
	}
}
