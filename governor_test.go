package shogun

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSimulateContextCancelled pins the acceptance criterion that a
// cancelled context stops SimulateContext within one watchdog poll
// interval: with poll = 256 events, the engine may process at most one
// more poll window after cancellation before returning.
func TestSimulateContextCancelled(t *testing.T) {
	g := GenerateRMAT(1<<11, 12000, 0.57, 0.17, 0.17, 21)
	s, err := BuildSchedule(Triangle(), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(SchemeShogun)
	cfg.WatchdogPoll = 256
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SimulateContext(ctx, g, s, cfg)
	if !errors.Is(err, ErrSimCancelled) {
		t.Fatalf("err = %v, want ErrSimCancelled", err)
	}
	if res != nil {
		t.Fatal("result returned alongside cancellation")
	}
	// A mid-run cancellation is observed within ~one poll interval.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	start := time.Now()
	if _, err := SimulateContext(ctx2, g, s, cfg); !errors.Is(err, ErrSimCancelled) {
		// The graph is small enough that the run may finish inside the
		// timeout on a fast machine — that is also a pass.
		if err != nil {
			t.Fatalf("err = %v, want ErrSimCancelled or success", err)
		}
	} else if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to be observed", elapsed)
	}
}

// TestSimulateContextBudgets pins the watchdog budgets on the public
// config surface.
func TestSimulateContextBudgets(t *testing.T) {
	g := GenerateRMAT(1<<10, 8000, 0.57, 0.17, 0.17, 23)
	s, err := BuildSchedule(Triangle(), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(SchemeShogun)
	cfg.MaxEvents = 200
	if _, err := SimulateContext(context.Background(), g, s, cfg); !errors.Is(err, ErrSimEventBudget) {
		t.Fatalf("err = %v, want ErrSimEventBudget", err)
	}
	cfg = DefaultSimConfig(SchemeShogun)
	cfg.Deadline = 100
	if _, err := SimulateContext(context.Background(), g, s, cfg); !errors.Is(err, ErrSimDeadline) {
		t.Fatalf("err = %v, want ErrSimDeadline", err)
	}
}

// TestCountContext pins the governed software miner on the public API.
func TestCountContext(t *testing.T) {
	g := GenerateRMAT(1<<10, 8000, 0.57, 0.17, 0.17, 25)
	s, err := BuildSchedule(Triangle(), false)
	if err != nil {
		t.Fatal(err)
	}
	want := Count(g, s)
	got, err := CountContext(context.Background(), g, s)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("CountContext = %d, Count = %d", got, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CountContext(ctx, g, s); !errors.Is(err, ErrSimCancelled) {
		t.Fatalf("err = %v, want ErrSimCancelled", err)
	}
}

// TestValidateGenerators pins the public validation surface.
func TestValidateGenerators(t *testing.T) {
	if err := ValidateRMAT(0, 10, 0.6, 0.15, 0.15); err == nil {
		t.Fatal("ValidateRMAT accepted n=0")
	}
	if err := ValidateRMAT(16, 10, 0.6, 0.3, 0.3); err == nil {
		t.Fatal("ValidateRMAT accepted a+b+c >= 1")
	}
	if err := ValidateBarabasiAlbert(10, 0); err == nil {
		t.Fatal("ValidateBarabasiAlbert accepted k=0")
	}
	if err := ValidateErdosRenyi(10, 10); err != nil {
		t.Fatalf("ValidateErdosRenyi rejected valid params: %v", err)
	}
	if err := ValidatePowerLawCluster(10, 2, 2); err == nil {
		t.Fatal("ValidatePowerLawCluster accepted p=2")
	}
	if err := ValidateNearRegular(10, 4); err != nil {
		t.Fatalf("ValidateNearRegular rejected valid params: %v", err)
	}
}
