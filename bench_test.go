// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5). Each benchmark regenerates its artifact in
// quick mode (miniature dataset analogues, trimmed sweeps) and logs the
// resulting table; `go run ./cmd/shogunbench` produces the full-scale
// versions recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig9 -v     # print the regenerated table
package shogun_test

import (
	"testing"

	"shogun/internal/bench"
)

func quickOpts() bench.Options { return bench.Options{Quick: true} }

func runExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	e, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

// BenchmarkTable1 regenerates the qualitative scheme comparison.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2 measures avg intermediate cache lines per task
// (software miner over the dataset analogues).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3 prints the simulator configuration in effect.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4 regenerates the dataset statistics table.
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig3a reproduces the pseudo-DFS vs parallel-DFS width sweep on
// the compute-bound case (AstroPh × 4-clique).
func BenchmarkFig3a(b *testing.B) { runExperiment(b, "fig3a") }

// BenchmarkFig3b reproduces the width sweep on the thrashing-prone case
// (Youtube × tailed triangle) with L1 hit rates.
func BenchmarkFig3b(b *testing.B) { runExperiment(b, "fig3b") }

// BenchmarkFig9 reproduces the Shogun-vs-FINGERS speedup grid (and the
// Fig. 10 IU utilization companion) over the evaluation grid.
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig11 reproduces the task-tree-splitting load-balance
// comparison on Wiki-Vote with 20 PEs.
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12 reproduces the search-tree-merging on/off grid.
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13a reproduces the task-execution-width sensitivity sweep.
func BenchmarkFig13a(b *testing.B) { runExperiment(b, "fig13a") }

// BenchmarkFig13b reproduces the bunches-per-depth sensitivity sweep.
func BenchmarkFig13b(b *testing.B) { runExperiment(b, "fig13b") }

// BenchmarkFig14 reproduces the locality-monitoring-necessity comparison
// (FINGERS vs Shogun vs parallel-DFS with enlarged L1s).
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkAblation runs the design-choice ablation (sibling preference,
// locality monitor, token budget, bunch count) — an extension beyond the
// paper's own artifacts.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkScaling runs the strong-scaling extension (PE counts, split
// on/off).
func BenchmarkScaling(b *testing.B) { runExperiment(b, "scaling") }
