package shogun_test

import (
	"strings"
	"testing"

	"shogun"
)

func TestPublicAPICountAndSimulateAgree(t *testing.T) {
	g := shogun.GenerateRMAT(1<<10, 6000, 0.6, 0.15, 0.15, 42)
	for _, tc := range []struct {
		p       shogun.Pattern
		induced bool
	}{
		{shogun.Triangle(), false},
		{shogun.FourClique(), false},
		{shogun.Diamond(), true},
		{shogun.FourCycle(), false},
	} {
		s, err := shogun.BuildSchedule(tc.p, tc.induced)
		if err != nil {
			t.Fatal(err)
		}
		want := shogun.Count(g, s)
		cfg := shogun.DefaultSimConfig(shogun.SchemeShogun)
		cfg.NumPEs = 4
		res, err := shogun.Simulate(g, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Embeddings != want {
			t.Errorf("%s: simulate %d != count %d", s.Name, res.Embeddings, want)
		}
	}
}

func TestPublicAPIGraphConstruction(t *testing.T) {
	g, err := shogun.NewGraph(4, []shogun.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shogun.BuildSchedule(shogun.Triangle(), false)
	if got := shogun.Count(g, s); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
	g2, err := shogun.ReadGraph(strings.NewReader("0 1\n1 2\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := shogun.Count(g2, s); got != 1 {
		t.Fatalf("parsed graph triangles = %d", got)
	}
}

func TestPublicAPIDatasets(t *testing.T) {
	names := shogun.DatasetNames()
	if len(names) != 6 {
		t.Fatalf("datasets = %v", names)
	}
	g, err := shogun.Dataset("wi")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty dataset")
	}
	if _, err := shogun.Dataset("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPublicAPIMineEach(t *testing.T) {
	g := shogun.GenerateErdosRenyi(30, 120, 7)
	s, _ := shogun.BuildSchedule(shogun.Triangle(), false)
	var visited int64
	res := shogun.MineEach(g, s, func(m []shogun.VertexID) {
		visited++
		if len(m) != 3 {
			t.Fatalf("embedding size %d", len(m))
		}
		if !g.HasEdge(m[0], m[1]) || !g.HasEdge(m[1], m[2]) || !g.HasEdge(m[0], m[2]) {
			t.Fatalf("non-triangle %v", m)
		}
	})
	if visited != res.Embeddings {
		t.Fatalf("visited %d != %d", visited, res.Embeddings)
	}
}

func TestPublicAPICustomPattern(t *testing.T) {
	p, err := shogun.NewPattern("wedge", 3, [][2]int{{0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := shogun.BuildSchedule(p, false)
	if err != nil {
		t.Fatal(err)
	}
	// Wedges in a triangle graph: 3.
	g, _ := shogun.NewGraph(3, []shogun.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	if got := shogun.Count(g, s); got != 3 {
		t.Fatalf("wedges = %d, want 3", got)
	}
}

func TestPublicAPISchemes(t *testing.T) {
	g := shogun.GenerateErdosRenyi(100, 500, 3)
	s, _ := shogun.BuildSchedule(shogun.Triangle(), false)
	want := shogun.Count(g, s)
	for _, scheme := range []shogun.Scheme{shogun.SchemeShogun, shogun.SchemeFingers, shogun.SchemeDFS, shogun.SchemeBFS, shogun.SchemeParallelDFS} {
		cfg := shogun.DefaultSimConfig(scheme)
		cfg.NumPEs = 2
		res, err := shogun.Simulate(g, s, cfg)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Embeddings != want {
			t.Errorf("%s: %d != %d", scheme, res.Embeddings, want)
		}
	}
}
