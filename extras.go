package shogun

import (
	"io"

	"shogun/internal/gen"
	"shogun/internal/mine"
	"shogun/internal/pattern"
	"shogun/internal/trace"
)

// GraphShape summarizes input-graph statistics for the schedule
// optimizer.
type GraphShape = pattern.GraphShape

// ShapeOf derives the optimizer's graph summary from a graph.
func ShapeOf(g *Graph) GraphShape {
	return pattern.ShapeOf(g.NumVertices(), g.NumEdges())
}

// OptimizeSchedule searches all connected matching orders of p and
// returns the schedule with the lowest estimated exploration cost for a
// graph of the given shape (the GraphPi-style schedule search). Counts
// are identical to BuildSchedule; only performance differs.
func OptimizeSchedule(p Pattern, shape GraphShape, induced bool) (*Schedule, error) {
	return pattern.Optimize(p, shape, induced)
}

// ParsePattern builds a pattern from a compact edge-list string such as
// "0-1,1-2,2-0".
func ParsePattern(name, spec string) (Pattern, error) { return pattern.Parse(name, spec) }

// ParallelCount mines g with multiple goroutines (0 workers =
// GOMAXPROCS) and returns merged, exact statistics.
func ParallelCount(g *Graph, s *Schedule, workers int) *MineResult {
	return mine.ParallelCount(g, s, workers)
}

// Degeneracy computes g's degeneracy and a degeneracy ordering.
func Degeneracy(g *Graph) (int, []VertexID) { return g.Degeneracy() }

// OrientByDegeneracy relabels g along its degeneracy ordering, which
// typically shrinks candidate sets for clique-like patterns under the
// schedules' symmetry breaking.
func OrientByDegeneracy(g *Graph) (*Graph, error) { return g.OrientByDegeneracy() }

// TraceEvent is one completed simulated task.
type TraceEvent = trace.Event

// Tracer consumes simulated task events (see SimConfig.Tracer).
type Tracer = trace.Tracer

// NewJSONLTracer streams task events to w as JSON lines.
func NewJSONLTracer(w io.Writer) Tracer { return trace.NewJSONL(w) }

// TraceSummary aggregates per-depth task latency statistics.
type TraceSummary = trace.Summary

// NewTraceSummary builds an empty latency aggregator usable as a Tracer.
func NewTraceSummary() *TraceSummary { return trace.NewSummary() }

// Timeline collects task events and renders an ASCII per-PE occupancy
// chart (Render).
type Timeline = trace.Timeline

// NewTimeline builds an empty timeline collector usable as a Tracer.
func NewTimeline() *Timeline { return trace.NewTimeline() }

// CensusEntry is one row of a graphlet census.
type CensusEntry = mine.CensusEntry

// Census counts every connected k-vertex graphlet of g (3 ≤ k ≤ 6),
// vertex- and edge-induced, using `workers` goroutines per pattern.
func Census(g *Graph, k, workers int) ([]CensusEntry, error) {
	return mine.Census(g, k, workers)
}

// AllConnectedPatterns enumerates the connected non-isomorphic patterns
// on k vertices (the graphlet catalog).
func AllConnectedPatterns(k int) ([]Pattern, error) { return pattern.AllConnected(k) }

// WriteGraph writes g as a text edge list.
func WriteGraph(g *Graph, w io.Writer) error { return g.WriteEdgeList(w) }

// GenerateChungLu produces a capped power-law random graph with hubs
// spread across many vertices (LiveJournal/Orkut-like at small scale).
func GenerateChungLu(n, m int, alpha float64, maxDeg int, seed int64) *Graph {
	return gen.ChungLu(n, m, alpha, maxDeg, seed)
}
