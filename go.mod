module shogun

go 1.22
