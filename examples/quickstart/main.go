// Quickstart: count patterns in software, then simulate the same workload
// on the Shogun accelerator and compare against the FINGERS baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shogun"
)

func main() {
	// A skewed social-network-like graph, deterministic for a seed.
	g := shogun.GenerateRMAT(1<<12, 30_000, 0.6, 0.15, 0.15, 42)
	st := g.ComputeStats()
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n",
		st.Vertices, st.Edges, st.MaxDegree)

	// Build a pattern-aware schedule (matching order, set operations,
	// symmetry breaking) and count in software.
	schedule, err := shogun.BuildSchedule(shogun.FourClique(), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule:\n%s", schedule.String())
	count := shogun.Count(g, schedule)
	fmt.Printf("4-cliques (software miner): %d\n\n", count)

	// Simulate the accelerator with the Shogun task tree, then with the
	// FINGERS pseudo-DFS baseline, using the paper's Table 3 config.
	for _, scheme := range []shogun.Scheme{shogun.SchemeFingers, shogun.SchemeShogun} {
		res, err := shogun.Simulate(g, schedule, shogun.DefaultSimConfig(scheme))
		if err != nil {
			log.Fatal(err)
		}
		if res.Embeddings != count {
			log.Fatalf("%s: simulator count %d does not match software %d",
				scheme, res.Embeddings, count)
		}
		fmt.Printf("%-12s %10d cycles   IU util %5.1f%%   L1 hit %5.1f%%\n",
			res.Scheme, res.Cycles, res.IUUtil*100, res.L1HitRate*100)
	}
}
