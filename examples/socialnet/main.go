// Social-network motif census: count all six of the paper's patterns on a
// social-graph analogue and report motif statistics — the bioinformatics/
// social-analysis use case from the paper's introduction, driven entirely
// through the public API.
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"log"
	"time"

	"shogun"
)

func main() {
	// The Youtube analogue: sparse, highly skewed.
	g, err := shogun.Dataset("yo")
	if err != nil {
		log.Fatal(err)
	}
	st := g.ComputeStats()
	fmt.Printf("youtube analogue: %d vertices, %d edges, skew %.1f\n\n",
		st.Vertices, st.Edges, st.Skewness)

	type motif struct {
		name    string
		pattern shogun.Pattern
		induced bool
	}
	motifs := []motif{
		{"triangle", shogun.Triangle(), false},
		{"tailed triangle (edge-induced)", shogun.TailedTriangle(), false},
		{"tailed triangle (vertex-induced)", shogun.TailedTriangle(), true},
		{"4-clique", shogun.FourClique(), false},
		{"diamond (vertex-induced)", shogun.Diamond(), true},
		{"4-cycle (vertex-induced)", shogun.FourCycle(), true},
	}

	var triangles, wedgeBased int64
	for _, m := range motifs {
		s, err := shogun.BuildSchedule(m.pattern, m.induced)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res := shogun.Mine(g, s)
		fmt.Printf("%-34s %14d  (%d tree nodes, %v)\n",
			m.name, res.Embeddings, res.Tasks(), time.Since(start).Round(time.Millisecond))
		switch m.name {
		case "triangle":
			triangles = res.Embeddings
		case "diamond (vertex-induced)":
			wedgeBased = res.Embeddings
		}
	}

	// A derived social statistic: the diamond-to-triangle ratio indicates
	// how often closed triads overlap into 4-vertex communities (high on
	// hub-dominated graphs like this one).
	if triangles > 0 {
		fmt.Printf("\ndiamond/triangle ratio: %.1f\n",
			float64(wedgeBased)/float64(triangles))
	}
}
