// Load-balance demo: a hub-dominated graph creates a straggler search
// tree; task-tree splitting (§4.1) shares its depth-1 range across idle
// PEs. Run with and without splitting and compare the tail.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"shogun"
)

func main() {
	// One huge hub placed so static dispatch hands its tree out last:
	// the worst-case straggler.
	n := 4000
	hub := shogun.VertexID(n - 1)
	var edges []shogun.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, shogun.Edge{U: hub, V: shogun.VertexID(i)})
		edges = append(edges, shogun.Edge{U: shogun.VertexID(i), V: shogun.VertexID((i * 7) % (n - 1))})
	}
	g, err := shogun.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	s, err := shogun.BuildSchedule(shogun.Triangle(), false)
	if err != nil {
		log.Fatal(err)
	}
	want := shogun.Count(g, s)
	fmt.Printf("triangles: %d (hub degree %d)\n\n", want, g.Degree(hub))

	run := func(split bool) (*shogun.SimResult, string) {
		cfg := shogun.DefaultSimConfig(shogun.SchemeShogun)
		cfg.NumPEs = 20
		cfg.EnableSplitting = split
		tl := shogun.NewTimeline()
		cfg.Tracer = tl
		res, err := shogun.Simulate(g, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if res.Embeddings != want {
			log.Fatalf("miscount: %d != %d", res.Embeddings, want)
		}
		return res, tl.Render(64)
	}
	off, offTL := run(false)
	on, onTL := run(true)
	fmt.Printf("without splitting: %8d cycles\n%s\n", off.Cycles, offTL)
	fmt.Printf("with    splitting: %8d cycles  (%d splits, %.0f%% faster)\n%s",
		on.Cycles, on.Splits, 100*(float64(off.Cycles)/float64(on.Cycles)-1), onTL)
}
