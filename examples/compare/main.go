// Scheduler shoot-out: run every scheduling scheme the paper discusses on
// one workload and print the Table 1 trade-offs as measured numbers —
// cycles, FU utilization, slot occupancy and peak memory footprint.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"shogun"
)

func main() {
	g := shogun.GeneratePowerLawCluster(4000, 8, 0.6, 7) // clustered, clique-rich
	s, err := shogun.BuildSchedule(shogun.FourClique(), false)
	if err != nil {
		log.Fatal(err)
	}
	want := shogun.Count(g, s)
	fmt.Printf("4-cliques: %d\n\n", want)
	fmt.Printf("%-14s %12s %9s %9s %10s %12s\n",
		"scheme", "cycles", "IU util", "slots", "L1 hit", "peak sets")

	var base int64
	for _, scheme := range []shogun.Scheme{
		shogun.SchemeDFS,
		shogun.SchemeBFS,
		shogun.SchemePseudoDFS,
		shogun.SchemeParallelDFS,
		shogun.SchemeShogun,
	} {
		cfg := shogun.DefaultSimConfig(scheme)
		cfg.NumPEs = 4
		res, err := shogun.Simulate(g, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if res.Embeddings != want {
			log.Fatalf("%s miscounted: %d != %d", scheme, res.Embeddings, want)
		}
		if base == 0 {
			base = res.Cycles
		}
		fmt.Printf("%-14s %12d %8.1f%% %8.1f%% %9.1f%% %12d   (%.2fx vs dfs)\n",
			res.Scheme, res.Cycles, res.IUUtil*100, res.SlotOccupancy*100,
			res.L1HitRate*100, res.PeakLiveSets, float64(base)/float64(res.Cycles))
	}
	fmt.Println("\nNote the Table 1 trade-offs: BFS's footprint growth (per-depth")
	fmt.Println("frontiers), DFS's single-slot serialism, pseudo-DFS's barrier")
	fmt.Println("ceiling, and Shogun approaching parallel-DFS throughput with a")
	fmt.Println("DFS-like bounded footprint and locality monitoring.")
}
