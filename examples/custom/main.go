// Custom patterns and schedule optimization: define a pattern from an
// edge-list string, let the cost model pick a matching order for the
// input graph's shape, and mine it — in software (parallel) and on the
// simulated accelerator.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"

	"shogun"
)

func main() {
	// The "house": a 4-cycle with a triangular roof.
	house, err := shogun.ParsePattern("house", "0-1,1-2,2-3,3-0,0-4,1-4")
	if err != nil {
		log.Fatal(err)
	}

	g := shogun.GenerateChungLu(6_000, 45_000, 0.6, 300, 11)
	st := g.ComputeStats()
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n\n",
		st.Vertices, st.Edges, st.MaxDegree)

	// Default (greedy) schedule vs the cost-model-optimized one.
	def, err := shogun.BuildSchedule(house, false)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := shogun.OptimizeSchedule(house, shogun.ShapeOf(g), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy order:    %v\noptimized order: %v\n\n", def.Order, opt.Order)

	// Parallel software mining validates both schedules agree.
	a := shogun.ParallelCount(g, def, 0)
	b := shogun.ParallelCount(g, opt, 0)
	fmt.Printf("houses (greedy schedule):    %d  (%d tree nodes)\n", a.Embeddings, a.Tasks())
	fmt.Printf("houses (optimized schedule): %d  (%d tree nodes)\n\n", b.Embeddings, b.Tasks())
	if a.Embeddings != b.Embeddings {
		log.Fatal("schedules disagree!")
	}

	// Simulate both on the accelerator: fewer tree nodes usually means
	// fewer cycles.
	for name, s := range map[string]*shogun.Schedule{"greedy": def, "optimized": opt} {
		cfg := shogun.DefaultSimConfig(shogun.SchemeShogun)
		cfg.NumPEs = 4
		res, err := shogun.Simulate(g, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shogun accelerator, %-9s schedule: %10d cycles\n", name, res.Cycles)
	}
}
