// Command shogunload is the open-loop load generator for shogund: it
// offers fixed arrival rates (QPS) of identical queries for a fixed
// duration per level and reports client-observed p50/p99 latency, shed
// rate and typed-error counts per level — the saturation experiment
// behind BENCH_0007.json. When the daemon runs with request
// observability on (the default), each level also aggregates the
// server-side per-phase attribution (parse/queue/graph/schedule/run/
// encode) that accepted responses carry, making the knee legible:
// past saturation the added latency sits in queue, not run
// (BENCH_0008.json).
//
// Usage:
//
//	shogunload -addr 127.0.0.1:8477 -op count -dataset wi -pattern tc \
//	    -qps 50,100,200,400 -duration 5s
//	shogunload -addr 127.0.0.1:8477 -snapshot-out BENCH_0007.json -snapshot-id 0007
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"shogun/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8477", "shogund address (host:port)")
		op       = flag.String("op", "count", "query kind: count|mine|simulate")
		dataset  = flag.String("dataset", "wi", "dataset analogue to query")
		patName  = flag.String("pattern", "tc", "pattern to query")
		scheme   = flag.String("scheme", "shogun", "scheme (simulate op)")
		qpsList  = flag.String("qps", "50,100,200", "comma-separated offered QPS levels")
		duration = flag.Duration("duration", 5*time.Second, "time per load level")
		wallMS   = flag.Int64("max-wall-ms", 0, "per-request wall budget sent to the daemon (0 = daemon default)")
		maxEv    = flag.Int64("max-events", 0, "per-request event budget (simulate op; 0 = daemon default)")
		timeout  = flag.Duration("timeout", 30*time.Second, "client-side per-request timeout")
		expect   = flag.Int64("expect", -1, "golden embedding count; fail if any 2xx response disagrees (-1 = skip)")
		jsonOut  = flag.String("json", "", "write the sweep reports as JSON to this file")
		snapOut  = flag.String("snapshot-out", "", "write a BENCH-style saturation snapshot to this file")
		snapID   = flag.String("snapshot-id", "", "snapshot id recorded in -snapshot-out (e.g. 0007)")
		commit   = flag.String("commit", "", "commit hash recorded in -snapshot-out")
	)
	flag.Parse()
	if err := run(*addr, *op, *dataset, *patName, *scheme, *qpsList, *duration, *wallMS, *maxEv, *timeout, *expect, *jsonOut, *snapOut, *snapID, *commit); err != nil {
		fmt.Fprintln(os.Stderr, "shogunload:", err)
		os.Exit(1)
	}
}

// sweepDoc is the JSON artifact (-json / the "sweep" field of the
// snapshot).
type sweepDoc struct {
	Target   string              `json:"target"`
	Op       string              `json:"op"`
	Dataset  string              `json:"dataset"`
	Pattern  string              `json:"pattern"`
	Scheme   string              `json:"scheme,omitempty"`
	Levels   []*serve.LoadReport `json:"levels"`
	Verified bool                `json:"verified"` // all 2xx responses matched -expect
}

// snapshotDoc mirrors the BENCH_*.json trajectory format for the
// saturation dimension.
type snapshotDoc struct {
	Schema string    `json:"schema"`
	ID     string    `json:"id"`
	Commit string    `json:"commit,omitempty"`
	Date   string    `json:"date"`
	Sweep  *sweepDoc `json:"saturation"`
}

func run(addr, op, dataset, patName, scheme, qpsList string, duration time.Duration, wallMS, maxEv int64, timeout time.Duration, expect int64, jsonOut, snapOut, snapID, commit string) error {
	levels, err := parseQPS(qpsList)
	if err != nil {
		return err
	}
	req := serve.Request{
		Dataset: dataset,
		Pattern: patName,
		Budget:  serve.Budget{MaxWallMS: wallMS, MaxEvents: maxEv},
	}
	if op == string(serve.OpSimulate) {
		req.Scheme = scheme
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("http://%s/v1/%s", addr, op)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	doc := &sweepDoc{Target: addr, Op: op, Dataset: dataset, Pattern: patName, Verified: expect >= 0}
	if op == string(serve.OpSimulate) {
		doc.Scheme = scheme
	}
	fmt.Printf("shogunload: %s %s dataset=%s pattern=%s levels=%v duration=%v\n",
		url, op, dataset, patName, levels, duration)
	for _, qps := range levels {
		rep, err := serve.RunLoad(ctx, serve.LoadOptions{
			URL: url, Body: body, QPS: qps, Duration: duration, Timeout: timeout,
		})
		if rep != nil {
			doc.Levels = append(doc.Levels, rep)
			fmt.Println(" ", rep)
			if line := phaseLine(rep); line != "" {
				fmt.Println("   ", line)
			}
			if expect >= 0 {
				for emb, n := range rep.Embeddings {
					if emb != expect {
						doc.Verified = false
						return fmt.Errorf("qps=%g: %d accepted responses returned %d embeddings, want %d", qps, n, emb, expect)
					}
				}
			}
		}
		if err != nil {
			return err
		}
	}

	if jsonOut != "" {
		if err := writeJSON(jsonOut, doc); err != nil {
			return err
		}
		fmt.Println("shogunload: wrote", jsonOut)
	}
	if snapOut != "" {
		snap := &snapshotDoc{
			Schema: "shogun-saturation-v1",
			ID:     snapID,
			Commit: commit,
			Date:   time.Now().UTC().Format(time.RFC3339),
			Sweep:  doc,
		}
		if err := writeJSON(snapOut, snap); err != nil {
			return err
		}
		fmt.Println("shogunload: wrote", snapOut)
	}
	return nil
}

// phaseLine renders the server-side phase attribution of a level, when
// the daemon reported it: average time per phase plus queue-wait p99.
// Past the saturation knee this is where the latency goes — queue grows,
// run stays flat.
func phaseLine(rep *serve.LoadReport) string {
	ph := rep.ServerPhasesUS
	if len(ph) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("server phases(avg ms):")
	for _, name := range []string{"parse", "queue", "graph", "schedule", "run", "encode"} {
		s, ok := ph[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, " %s=%.2f", name, s.Avg/1000)
	}
	if q, ok := ph["queue"]; ok {
		fmt.Fprintf(&b, " queue-p99=%.1fms", float64(q.P99)/1000)
	}
	return b.String()
}

func parseQPS(list string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -qps entry %q (want positive numbers, e.g. \"50,100,200\")", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-qps lists no levels")
	}
	return out, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
