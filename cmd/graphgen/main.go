// Command graphgen generates deterministic synthetic graphs and writes
// them as edge lists (or the compact binary CSR format).
//
// Usage:
//
//	graphgen -kind rmat -n 65536 -m 500000 -a 0.6 -seed 7 -o graph.txt
//	graphgen -kind dataset -name lj -o lj.txt        # the paper analogues
//	graphgen -kind plc -n 9000 -k 11 -p 0.6 -o as.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"shogun/internal/datasets"
	"shogun/internal/gen"
	"shogun/internal/graph"
)

func main() {
	var (
		kind   = flag.String("kind", "rmat", "generator: rmat|er|ba|plc|nr|ws|chunglu|clique|grid|dataset")
		name   = flag.String("name", "", "dataset name for -kind dataset (wi|as|yo|pa|lj|or)")
		n      = flag.Int("n", 1024, "vertices (rows for grid)")
		m      = flag.Int("m", 4096, "edges to sample (cols for grid)")
		k      = flag.Int("k", 4, "per-vertex edges (ba/plc/nr/ws)")
		a      = flag.Float64("a", 0.6, "R-MAT a parameter")
		b      = flag.Float64("b", 0.15, "R-MAT b parameter")
		c      = flag.Float64("c", 0.15, "R-MAT c parameter")
		p      = flag.Float64("p", 0.5, "closure/rewire probability (plc/ws)")
		alpha  = flag.Float64("alpha", 0.6, "Chung-Lu weight exponent")
		maxDeg = flag.Int("maxdeg", 1000, "Chung-Lu expected-degree cap")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
		binary = flag.Bool("binary", false, "write compact binary CSR instead of text")
		stats  = flag.Bool("stats", false, "print graph statistics to stderr")
	)
	flag.Parse()
	if err := run(*kind, *name, *n, *m, *k, *a, *b, *c, *p, *alpha, *maxDeg, *seed, *out, *binary, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(kind, name string, n, m, k int, a, b, c, p, alpha float64, maxDeg int, seed int64, out string, binary, stats bool) error {
	var g *graph.Graph
	var err error
	// Validate up front so bad flags produce a CLI error, not the
	// generators' documented boundary panic.
	switch kind {
	case "rmat":
		err = gen.ValidateRMAT(n, m, a, b, c)
	case "er":
		err = gen.ValidateErdosRenyi(n, m)
	case "ba":
		err = gen.ValidateBarabasiAlbert(n, k)
	case "plc":
		err = gen.ValidatePowerLawCluster(n, k, p)
	case "nr":
		err = gen.ValidateNearRegular(n, k)
	case "ws":
		err = gen.ValidateWattsStrogatz(n, k, p)
	case "chunglu":
		err = gen.ValidateChungLu(n, m, alpha, maxDeg)
	}
	if err != nil {
		return err
	}
	switch kind {
	case "rmat":
		g = gen.RMAT(n, m, a, b, c, seed)
	case "er":
		g = gen.ErdosRenyi(n, m, seed)
	case "ba":
		g = gen.BarabasiAlbert(n, k, seed)
	case "plc":
		g = gen.PowerLawCluster(n, k, p, seed)
	case "nr":
		g = gen.NearRegular(n, k, seed)
	case "ws":
		g = gen.WattsStrogatz(n, k, p, seed)
	case "chunglu":
		g = gen.ChungLu(n, m, alpha, maxDeg, seed)
	case "clique":
		g = gen.Clique(n)
	case "grid":
		g = gen.Grid(n, m)
	case "dataset":
		g, err = datasets.Get(name)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown generator %q", kind)
	}

	if stats {
		s := g.ComputeStats()
		fmt.Fprintf(os.Stderr, "vertices=%d edges=%d maxdeg=%d avgdeg=%.2f skew=%.2f\n",
			s.Vertices, s.Edges, s.MaxDegree, s.AvgDegree, s.Skewness)
	}

	var w *os.File = os.Stdout
	if out != "" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	if binary {
		return g.WriteBinary(w)
	}
	return g.WriteEdgeList(w)
}
