// Command shogunbench regenerates the paper's evaluation tables and
// figures (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	shogunbench                     # run everything (full scale)
//	shogunbench -exp fig9           # one experiment
//	shogunbench -quick -exp fig12   # miniature graphs, seconds not minutes
//	shogunbench -list               # list experiment ids
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"shogun/internal/bench"
	"shogun/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (default: all)")
		quick    = flag.Bool("quick", false, "use miniature graphs and trimmed sweeps")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
		verbose  = flag.Bool("v", false, "per-cell progress to stderr")
		format   = flag.String("format", "text", "output format: text|csv|markdown")
		chart    = flag.Int("chart", -1, "also render tables as ASCII bars of the given column (0 = last)")
		save     = flag.String("save", "", "run all experiments and save a JSON baseline")
		html     = flag.String("html", "", "run all experiments and write a self-contained HTML report")
		check    = flag.String("check", "", "run all experiments and compare against a JSON baseline")
		list     = flag.Bool("list", false, "list experiments and exit")
		cellTO   = flag.Duration("celltimeout", 0, "wall-clock budget per grid cell (0 = none)")
		cellEv   = flag.Int64("cellevents", 0, "event budget per grid cell (0 = none)")
		metricsF = flag.Bool("metrics", false, "log a per-cell hardware-counter digest (implies -v)")
		traceDir = flag.String("trace-out", "", "write one Chrome trace JSON per cell into this directory")
		sampleEv = flag.Int64("sample-every", 0, "turn on the telemetry epoch sampler in every cell (cycles between samples, 0 = off)")
		httpAddr = flag.String("http", "", "serve a live progress page on host:port (\":0\" picks a port)")
	)
	flag.Parse()
	if *sampleEv < 0 {
		fmt.Fprintf(os.Stderr, "shogunbench: -sample-every must be a positive cycle count (got %d)\n", *sampleEv)
		os.Exit(1)
	}
	if *httpAddr != "" {
		if err := telemetry.ValidateAddr(*httpAddr); err != nil {
			fmt.Fprintln(os.Stderr, "shogunbench:", err)
			os.Exit(1)
		}
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	// SIGINT/SIGTERM cancel the cell workers between cells; completed
	// cells keep their results and the process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := bench.Options{Quick: *quick, Workers: *workers, Ctx: ctx, CellTimeout: *cellTO, CellMaxEvents: *cellEv,
		Metrics: *metricsF, TraceDir: *traceDir, SampleEvery: *sampleEv}
	if *verbose || *metricsF {
		o.Log = os.Stderr
	}
	if *httpAddr != "" {
		prog := telemetry.NewProgress()
		o.Progress = prog
		srv, err := telemetry.NewServer(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shogunbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		srv.HandleText("/progress", prog.Text)
		srv.HandleJSON("/progress.json", func() any {
			done, failed, total := prog.Counts()
			return map[string]int{"done": done, "failed": failed, "total": total}
		})
		fmt.Fprintf(os.Stderr, "live progress: http://%s/progress\n", srv.Addr())
	}

	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "shogunbench: interrupted; partial results above")
		}
		fmt.Fprintln(os.Stderr, "shogunbench:", err)
		os.Exit(1)
	}

	if *save != "" || *check != "" || *html != "" {
		tables, err := bench.CollectAll(o)
		if err != nil {
			fail(err)
		}
		if *save != "" {
			if err := bench.SaveBaseline(*save, tables); err != nil {
				fail(err)
			}
			fmt.Printf("baseline saved: %s (%d tables)\n", *save, len(tables))
		}
		if *check != "" {
			if err := bench.CheckBaseline(*check, tables); err != nil {
				fail(fmt.Errorf("REGRESSION: %w", err))
			}
			fmt.Printf("baseline check passed: %d tables match %s\n", len(tables), *check)
		}
		if *html != "" {
			f, err := os.Create(*html)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			if err := bench.RenderHTML(f, tables); err != nil {
				fail(err)
			}
			fmt.Printf("HTML report written: %s\n", *html)
		}
		return
	}

	if *exp == "" {
		if err := bench.RunAllFormat(o, os.Stdout, *format); err != nil {
			fail(err)
		}
		return
	}
	e, err := bench.Lookup(*exp)
	if err != nil {
		fail(err)
	}
	if o.Progress != nil {
		o.Progress.SetStage(e.ID)
	}
	tables, err := e.Run(o)
	if err != nil {
		fail(err)
	}
	for _, t := range tables {
		out, err := t.Format(*format)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		if *chart >= 0 {
			fmt.Println(t.Chart(*chart))
		}
	}
}
