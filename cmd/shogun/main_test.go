package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"shogun/internal/accel"
)

// writeTestGraph emits a small deterministic edge list to dir and
// returns its path.
func writeTestGraph(t *testing.T, dir string) string {
	t.Helper()
	const n = 96
	rng := rand.New(rand.NewSource(7))
	var b strings.Builder
	fmt.Fprintf(&b, "# vertices=%d\n", n)
	for i := 0; i < 6*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		fmt.Fprintf(&b, "%d %d\n", u, v)
	}
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runArgs bundles run's long positional parameter list with defaults so
// each case only states what it changes.
type runArgs struct {
	dataset, graphArg, pat, scheme, queue  string
	pes, width, l1KB, l2KB, tok, bunch     int
	split, merge, verify, verbose, metrics bool
	traceOut, chromeOut, cfgPath           string
	dumpCfg                                bool
	deadline, maxEvents                    int64
	maxWall                                time.Duration
	tf                                     telemetryFlags
	cf                                     clusterFlags
}

func defaultArgs() runArgs {
	return runArgs{
		pat: "tc", scheme: "shogun",
		pes: 4, width: 8, l1KB: 32, bunch: 4,
		verify: true,
		cf:     clusterFlags{chips: 1, steal: true},
	}
}

// quietRun invokes run with stdout parked on /dev/null so the CLI's
// report does not drown the test log.
func quietRun(t *testing.T, a runArgs) error {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	old := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = old }()
	return run(context.Background(), a.dataset, a.graphArg, a.pat, a.scheme, a.queue,
		a.pes, a.width, a.l1KB, a.l2KB, a.tok, a.bunch,
		a.split, a.merge, a.verify, a.verbose, a.metrics,
		a.traceOut, a.chromeOut, a.cfgPath, a.dumpCfg,
		a.deadline, a.maxEvents, a.maxWall, a.tf, a.cf)
}

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*runArgs)
	}{
		{"negative sample-every", func(a *runArgs) { a.tf.sampleEvery = -1 }},
		{"timeseries without sampler", func(a *runArgs) { a.tf.timeseriesOut = "x.json" }},
		{"bad http addr", func(a *runArgs) { a.tf.httpAddr = "no-port-here" }},
		{"zero chips", func(a *runArgs) { a.cf.chips = 0 }},
		{"bad partition mode", func(a *runArgs) { a.cf.chips = 2; a.cf.partition = "metis" }},
		{"no input graph", func(a *runArgs) {}},
		{"unknown dataset", func(a *runArgs) { a.dataset = "nope" }},
		{"missing graph file", func(a *runArgs) { a.graphArg = "/nonexistent/g.txt" }},
		{"unknown pattern", func(a *runArgs) { a.dataset = "wi"; a.pat = "octagon" }},
		{"bad queue kind", func(a *runArgs) { a.dataset = "wi"; a.queue = "fifo" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := defaultArgs()
			tc.mut(&a)
			if err := quietRun(t, a); err == nil {
				t.Errorf("%s: run accepted bad flags", tc.name)
			}
		})
	}
}

func TestRunDumpConfig(t *testing.T) {
	a := defaultArgs()
	a.graphArg = writeTestGraph(t, t.TempDir())
	a.dumpCfg = true
	if err := quietRun(t, a); err != nil {
		t.Fatalf("dumpconfig: %v", err)
	}
}

// TestRunSingleChip drives the full single-accelerator CLI path: config
// file load, both trace writers, live inspection server, telemetry
// export in both formats, the metrics report, verbose statistics, and
// the software-miner verification.
func TestRunSingleChip(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	raw, err := json.Marshal(accel.DefaultConfig(accel.SchemeShogun))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	a := defaultArgs()
	a.graphArg = writeTestGraph(t, dir)
	a.cfgPath = cfgPath
	a.split, a.merge = true, true
	a.tok, a.l2KB = 8, 256
	a.queue = "calendar"
	a.verbose, a.metrics = true, true
	a.traceOut = filepath.Join(dir, "trace.jsonl")
	a.chromeOut = filepath.Join(dir, "chrome.json")
	a.deadline, a.maxEvents, a.maxWall = 1 << 40, 1 << 40, time.Minute
	a.tf = telemetryFlags{sampleEvery: 256, timeseriesOut: filepath.Join(dir, "ts.json"), httpAddr: "127.0.0.1:0"}
	if err := quietRun(t, a); err != nil {
		t.Fatalf("single-chip run: %v", err)
	}
	for _, f := range []string{"trace.jsonl", "chrome.json", "ts.json"} {
		if st, err := os.Stat(filepath.Join(dir, f)); err != nil || st.Size() == 0 {
			t.Errorf("%s missing or empty (err=%v)", f, err)
		}
	}

	// CSV telemetry export goes through the other writeTimeSeries branch.
	a.tf.timeseriesOut = filepath.Join(dir, "ts.csv")
	a.cfgPath, a.traceOut, a.chromeOut = "", "", ""
	a.verbose, a.metrics = false, false
	a.tf.httpAddr = ""
	if err := quietRun(t, a); err != nil {
		t.Fatalf("csv telemetry run: %v", err)
	}
}

// TestRunCluster drives the multi-chip CLI path end to end: partition
// summary, per-chip report, cluster metrics verification, telemetry
// export, and the software-miner cross-check.
func TestRunCluster(t *testing.T) {
	dir := t.TempDir()
	a := defaultArgs()
	a.graphArg = writeTestGraph(t, dir)
	a.split = true
	a.metrics = true
	a.cf = clusterFlags{chips: 3, partition: "hash", seed: 42, steal: true}
	a.tf = telemetryFlags{sampleEvery: 256, timeseriesOut: filepath.Join(dir, "cts.csv")}
	if err := quietRun(t, a); err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if st, err := os.Stat(filepath.Join(dir, "cts.csv")); err != nil || st.Size() == 0 {
		t.Errorf("cluster telemetry missing or empty (err=%v)", err)
	}
}

func TestWriteTimeSeriesNil(t *testing.T) {
	if err := writeTimeSeries(filepath.Join(t.TempDir(), "ts.json"), nil); err == nil {
		t.Error("writeTimeSeries accepted a nil series")
	}
}

func TestBdPctZeroTotal(t *testing.T) {
	if got := bdPct(5, accel.CycleBreakdown{}); got != 0 {
		t.Errorf("bdPct on zero total = %v", got)
	}
}
