// Command shogun runs one accelerator simulation and prints its
// statistics.
//
// Usage:
//
//	shogun -dataset yo -pattern 4cl -scheme shogun
//	shogun -graph edges.txt -pattern tt_v -scheme fingers -pes 4 -width 8
//	shogun -dataset wi -pattern tc -scheme shogun -split -merge -v
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shogun/internal/accel"
	"shogun/internal/cluster"
	"shogun/internal/datasets"
	"shogun/internal/graph"
	"shogun/internal/mine"
	"shogun/internal/pattern"
	"shogun/internal/sim"
	"shogun/internal/telemetry"
	"shogun/internal/trace"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "dataset analogue: wi|as|yo|pa|lj|or")
		graphArg = flag.String("graph", "", "edge-list file (alternative to -dataset)")
		patName  = flag.String("pattern", "tc", "pattern: tc|tt[_e|_v]|4cl|5cl|dia[_e|_v]|4cyc[_e|_v]|house")
		scheme   = flag.String("scheme", "shogun", "scheme: shogun|fingers|pseudo-dfs|dfs|bfs|parallel-dfs")
		pes      = flag.Int("pes", 10, "number of PEs")
		width    = flag.Int("width", 8, "task execution width")
		l1KB     = flag.Int("l1", 32, "L1 size in KB")
		l2KB     = flag.Int("l2", 0, "L2 size in KB (0 = default)")
		split    = flag.Bool("split", false, "enable task-tree splitting (shogun)")
		merge    = flag.Bool("merge", false, "enable search-tree merging (shogun)")
		tokens   = flag.Int("tokens", 0, "address tokens per depth (default: width)")
		bunches  = flag.Int("bunches", 4, "task tree bunches per depth (shogun)")
		verify   = flag.Bool("verify", true, "cross-check count against the software miner")
		cfgPath  = flag.String("config", "", "load accelerator config from JSON (flags below override)")
		dumpCfg  = flag.Bool("dumpconfig", false, "print the effective config as JSON and exit")
		traceOut = flag.String("trace", "", "write per-task JSONL trace to file")
		chromeT  = flag.String("trace-out", "", "write Chrome trace JSON (load in chrome://tracing or Perfetto)")
		metricsF = flag.Bool("metrics", false, "print the hardware-counter report and verify conservation invariants")
		verbose  = flag.Bool("v", false, "print extended statistics")
		queue    = flag.String("queue", "", "event queue discipline: calendar (default) | heap (debug/differential fallback)")
		deadline = flag.Int64("deadline", 0, "abort after this many simulated cycles (0 = none)")
		maxEv    = flag.Int64("maxevents", 0, "abort after this many simulation events (0 = none)")
		maxWall  = flag.Duration("maxwall", 0, "abort after this much wall-clock time (0 = none)")
		chips    = flag.Int("chips", 1, "number of accelerator chips (>1 simulates a multi-chip cluster)")
		partMode = flag.String("partition", "", "cluster root partitioning: replicate (default) | hash | range")
		partSeed = flag.Int64("partition-seed", 0, "seed for the hash partitioner")
		steal    = flag.Bool("steal", true, "enable chip-level work stealing over the interconnect (shogun scheme)")
		sampleEv = flag.Int64("sample-every", 0, "sample telemetry gauges every N cycles (0 = off)")
		tsOut    = flag.String("timeseries-out", "", "write the sampled telemetry series to file (.json = JSON, else CSV; needs -sample-every)")
		httpAddr = flag.String("http", "", "serve live inspection endpoints (JSON snapshot, expvar, pprof) on host:port (\":0\" picks a port)")
	)
	flag.Parse()
	// SIGINT/SIGTERM cancel the simulation at the next watchdog poll;
	// the run loop flushes a diagnostic snapshot and exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tf := telemetryFlags{sampleEvery: *sampleEv, timeseriesOut: *tsOut, httpAddr: *httpAddr}
	cf := clusterFlags{chips: *chips, partition: *partMode, seed: *partSeed, steal: *steal}
	if err := run(ctx, *dataset, *graphArg, *patName, *scheme, *queue, *pes, *width, *l1KB, *l2KB, *tokens, *bunches, *split, *merge, *verify, *verbose, *metricsF, *traceOut, *chromeT, *cfgPath, *dumpCfg, *deadline, *maxEv, *maxWall, tf, cf); err != nil {
		fmt.Fprintln(os.Stderr, "shogun:", err)
		var inv *sim.InvariantError
		var dead *sim.DeadlockError
		switch {
		case errors.As(err, &inv):
			fmt.Fprintln(os.Stderr, inv.Details())
		case errors.As(err, &dead):
			fmt.Fprintln(os.Stderr, dead.Details())
		}
		os.Exit(1)
	}
}

// telemetryFlags carries the time-resolved telemetry options (-sample-every,
// -timeseries-out, -http) through to run.
type telemetryFlags struct {
	sampleEvery   int64
	timeseriesOut string
	httpAddr      string
}

// validate rejects inconsistent or malformed telemetry flags before any
// simulation work starts.
func (tf telemetryFlags) validate() error {
	if tf.sampleEvery < 0 {
		return fmt.Errorf("-sample-every must be a positive cycle count (got %d)", tf.sampleEvery)
	}
	if tf.timeseriesOut != "" && tf.sampleEvery == 0 {
		return fmt.Errorf("-timeseries-out needs -sample-every > 0 (nothing is sampled otherwise)")
	}
	if tf.httpAddr != "" {
		if err := telemetry.ValidateAddr(tf.httpAddr); err != nil {
			return err
		}
	}
	return nil
}

// clusterFlags carries the multi-chip options (-chips, -partition,
// -partition-seed, -steal) through to run.
type clusterFlags struct {
	chips     int
	partition string
	seed      int64
	steal     bool
}

func run(ctx context.Context, dataset, graphArg, patName, scheme, queue string, pes, width, l1KB, l2KB, tokens, bunches int, split, merge, verify, verbose, metricsF bool, traceOut, chromeOut, cfgPath string, dumpCfg bool, deadline, maxEvents int64, maxWall time.Duration, tf telemetryFlags, cf clusterFlags) error {
	if err := tf.validate(); err != nil {
		return err
	}
	if cf.chips < 1 {
		return fmt.Errorf("-chips must be >= 1 (got %d)", cf.chips)
	}
	if _, err := cluster.ParseMode(cf.partition); err != nil {
		return err
	}
	var g *graph.Graph
	var err error
	switch {
	case dataset != "":
		g, err = datasets.Get(dataset)
	case graphArg != "":
		var f *os.File
		if f, err = os.Open(graphArg); err == nil {
			defer f.Close()
			g, err = graph.ReadEdgeList(f)
		}
	default:
		return fmt.Errorf("need -dataset or -graph")
	}
	if err != nil {
		return err
	}

	p, err := pattern.ByName(patName)
	if err != nil {
		return err
	}
	s, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: strings.HasSuffix(patName, "_v")})
	if err != nil {
		return err
	}

	cfg := accel.DefaultConfig(accel.Scheme(scheme))
	if cfgPath != "" {
		var err error
		if cfg, err = accel.LoadConfig(cfgPath); err != nil {
			return err
		}
	}
	cfg.NumPEs = pes
	cfg.PE.Width = width
	cfg.TokensPerDepth = width
	if tokens > 0 {
		cfg.TokensPerDepth = tokens
	}
	cfg.Tree.EntriesPerBunch = width
	cfg.Tree.BunchesPerDepth = bunches
	cfg.PE.L1.SizeKB = l1KB
	if l2KB > 0 {
		cfg.L2.SizeKB = l2KB
	}
	cfg.EnableSplitting = split
	cfg.EnableMerging = merge
	if queue != "" {
		if _, err := sim.ParseQueueKind(queue); err != nil {
			return err
		}
		cfg.EventQueue = queue
	}
	if deadline > 0 {
		cfg.Deadline = sim.Time(deadline)
	}
	if maxEvents > 0 {
		cfg.MaxEvents = maxEvents
	}
	if maxWall > 0 {
		cfg.MaxWall = maxWall
	}
	if tf.sampleEvery > 0 {
		cfg.SampleEvery = sim.Time(tf.sampleEvery)
	}

	summary := trace.NewSummary()
	timeline := trace.NewTimeline()
	var jsonl *trace.JSONL
	var chrome *trace.Chrome
	tracers := trace.Multi{}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl = trace.NewJSONL(f)
		tracers = append(tracers, jsonl)
	}
	if chromeOut != "" {
		chrome = trace.NewChrome()
		tracers = append(tracers, chrome)
	}
	if len(tracers) > 0 || verbose {
		tracers = append(tracers, summary, timeline)
		cfg.Tracer = tracers
	}

	if dumpCfg {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(cfg)
	}

	st := g.ComputeStats()
	fmt.Printf("graph: %d vertices, %d edges, max degree %d, avg %.1f, skew %.1f\n",
		st.Vertices, st.Edges, st.MaxDegree, st.AvgDegree, st.Skewness)
	fmt.Printf("schedule %s:\n%s", s.Name, s.String())

	if cf.chips > 1 {
		return runCluster(ctx, g, s, cfg, cf, pes, width, verify, metricsF, tf)
	}

	a, err := accel.New(g, s, cfg)
	if err != nil {
		return err
	}
	if tf.httpAddr != "" {
		srv, err := telemetry.NewServer(tf.httpAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		tel := a.Telemetry()
		srv.HandleJSON("/telemetry.json", func() any {
			var snap telemetry.RunSnapshot
			if tel != nil {
				snap.Samples = tel.Sampler.Snapshot()
				snap.Histograms = tel.Histograms()
			}
			return snap
		})
		telemetry.PublishVar("run", func() any {
			info := map[string]any{"scheme": scheme, "pattern": s.Name, "pes": pes}
			if tel != nil {
				if cyc, ok := tel.Sampler.Last("engine/events"); ok {
					info["engine/events"] = cyc
				}
				if done, ok := tel.Sampler.Last("tasks/executed"); ok {
					info["tasks/executed"] = done
				}
			}
			return info
		})
		fmt.Printf("live inspection: http://%s/ (telemetry.json, debug/vars, debug/pprof)\n", srv.Addr())
	}
	res, err := a.RunContext(ctx)
	if err != nil {
		if errors.Is(err, sim.ErrCancelled) {
			// Flush partial progress before exiting non-zero.
			eng := a.Engine()
			fmt.Printf("\ninterrupted at cycle %d after %d events\n", int64(eng.Now()), eng.Processed)
		}
		return err
	}

	fmt.Printf("\nscheme=%s pes=%d width=%d\n", res.Scheme, pes, width)
	fmt.Printf("cycles:          %d\n", res.Cycles)
	fmt.Printf("embeddings:      %d\n", res.Embeddings)
	fmt.Printf("tasks:           %d internal + %d leaf\n", res.Tasks, res.LeafTasks)
	fmt.Printf("IU utilization:  %.1f%%\n", res.IUUtil*100)
	fmt.Printf("slot occupancy:  %.1f%%\n", res.SlotOccupancy*100)
	fmt.Printf("L1 hit rate:     %.1f%% (avg latency %.1f cycles)\n", res.L1HitRate*100, res.L1AvgLatency)
	fmt.Printf("L2 hit rate:     %.1f%%\n", res.L2HitRate*100)
	fmt.Printf("DRAM:            %d reads, %d writes, %.1f%% bandwidth\n", res.DRAMReads, res.DRAMWrites, res.DRAMBandwidth*100)
	fmt.Printf("NoC lines moved: %d\n", res.NoCLines)
	if split || merge {
		fmt.Printf("splits=%d merges=%d\n", res.Splits, res.Merges)
	}
	fmt.Printf("cycle breakdown: compute=%.1f%% memstall=%.1f%% sched=%.1f%% idle=%.1f%%\n",
		bdPct(res.Breakdown.Compute, res.Breakdown), bdPct(res.Breakdown.MemStall, res.Breakdown),
		bdPct(res.Breakdown.Scheduling, res.Breakdown), bdPct(res.Breakdown.Idle, res.Breakdown))
	// Multi.Err surfaces the first deferred failure from any attached
	// writer (a full disk mid-run must not pass silently as a short trace).
	if err := tracers.Err(); err != nil {
		if jsonl != nil {
			return fmt.Errorf("trace truncated after %d events: %w", jsonl.Count(), err)
		}
		return fmt.Errorf("trace: %w", err)
	}
	if tf.timeseriesOut != "" {
		if err := writeTimeSeries(tf.timeseriesOut, res.Telemetry); err != nil {
			return err
		}
		fmt.Printf("telemetry series: %s (%d epochs, every %d cycles)\n",
			tf.timeseriesOut, len(res.Telemetry.Cycles), res.Telemetry.Interval)
	}
	if chrome != nil {
		// Fold the sampler's system-level gauges in as counter tracks
		// (per-PE occupancy already derives from the task spans).
		if res.Telemetry != nil {
			for _, series := range res.Telemetry.Series {
				if !strings.HasPrefix(series.Name, "pe") {
					chrome.AddCounterSeries(series.Name, res.Telemetry.Cycles, series.Vals)
				}
			}
		}
		f, err := os.Create(chromeOut)
		if err != nil {
			return err
		}
		if _, err := chrome.WriteTo(f); err != nil {
			f.Close()
			return fmt.Errorf("chrome trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("chrome trace:    %s (%d events; open chrome://tracing and load it)\n", chromeOut, chrome.Count())
	}
	if metricsF {
		reg := a.Metrics()
		fmt.Printf("\nhardware counters:\n%s", reg.Report())
		if err := reg.Verify(); err != nil {
			return err
		}
		fmt.Printf("metrics: all %d conservation invariants hold\n", reg.Invariants())
	}
	if verbose {
		fmt.Printf("task latency by depth:\n%s", summary.String())
		fmt.Printf("PE occupancy timeline:\n%s", timeline.Render(72))
		fmt.Printf("conservative transitions: %d\n", res.ConservativeTransitions)
		fmt.Printf("peak live sets:           %d\n", res.PeakLiveSets)
		fmt.Printf("events processed:         %d\n", res.Events)
		fmt.Printf("intermediate lines/task:  %.2f\n", res.IntermediateLinesPerTask)
		p0 := a.PEs()[0]
		fmt.Printf("phase avgs (pe0): decode=%.1f spm+disp=%.1f fetch=%.1f compute=%.1f wb=%.1f spawnw=%.1f leaf=%.1f residency=%.1f\n",
			p0.PhaseDecode.Avg(), p0.PhaseSPM.Avg(), p0.PhaseFetch.Avg(), p0.PhaseCompute.Avg(), p0.PhaseWB.Avg(), p0.PhaseSpawnWait.Avg(), p0.PhaseLeaf.Avg(), p0.SlotResidency.Avg())
		for _, pe := range a.PEs() {
			fmt.Printf("  pe%d: tasks=%d last=%d iu=%.1f%% l1hit=%.1f%% slotavg=%.2f decode=%.1f%% dispatch=%.1f%% wb=%.1f%% spawn=%.1f%%\n",
				pe.ID, pe.TasksExecuted.Total, pe.LastActive,
				pe.IUPool.Utilization(res.Cycles)*100,
				pe.L1.HitRate()*100,
				pe.Slots.AvgOccupancy(res.Cycles),
				pe.DecodeUtil(res.Cycles)*100, pe.DispatchUtil(res.Cycles)*100,
				pe.WritebackUtil(res.Cycles)*100, pe.SpawnUtil(res.Cycles)*100)
		}
	}
	if verify {
		want := mine.Count(g, s)
		if want != res.Embeddings {
			return fmt.Errorf("VERIFY FAILED: simulator found %d embeddings, software miner %d", res.Embeddings, want)
		}
		fmt.Printf("verify: OK (software miner agrees: %d)\n", want)
	}
	return nil
}

// runCluster simulates a multi-chip scale-out system: the chip config
// built from the usual flags is replicated across -chips chips, the root
// space is split by -partition, and chip-level work stealing rides the
// inter-chip interconnect. Cross-chip conservation identities verify by
// default on every run.
func runCluster(ctx context.Context, g *graph.Graph, s *pattern.Schedule, chip accel.Config, cf clusterFlags, pes, width int, verify, metricsF bool, tf telemetryFlags) error {
	ccfg := cluster.DefaultConfig(chip.Scheme, cf.chips)
	ccfg.Chip = chip
	ccfg.Partition = cluster.Mode(cf.partition)
	ccfg.PartitionSeed = cf.seed
	ccfg.Steal = cf.steal
	cl, err := cluster.New(g, s, ccfg)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %s\n", cl.Partition())
	res, err := cl.RunContext(ctx)
	if err != nil {
		if errors.Is(err, sim.ErrCancelled) {
			eng := cl.Engine()
			fmt.Printf("\ninterrupted at cycle %d after %d events\n", int64(eng.Now()), eng.Processed)
		}
		return err
	}

	fmt.Printf("\nscheme=%s chips=%d pes/chip=%d width=%d partition=%s\n",
		res.Scheme, res.Chips, pes, width, res.Partition)
	fmt.Printf("cycles:          %d\n", res.Cycles)
	fmt.Printf("embeddings:      %d\n", res.Embeddings)
	fmt.Printf("tasks:           %d internal + %d leaf\n", res.Tasks, res.LeafTasks)
	fmt.Printf("occupancy:       max %.1f%% mean %.1f%% (max/mean %.2f)\n",
		res.MaxOccupancy*100, res.MeanOccupancy*100, res.ImbalanceRatio())
	fmt.Printf("migrations:      %d subtrees (%d retries)\n", res.Migrations, res.AdoptRetries)
	fmt.Printf("interconnect:    %d messages, %d lines\n", res.InterMessages, res.InterLines)
	for i, st := range res.PerChip {
		fmt.Printf("  chip%d: %d roots, %d tasks, %d embeddings, occ %.1f%%, migrated out=%d in=%d\n",
			i, st.Vertices, st.Tasks, st.Embeddings, st.Occupancy*100, st.MigratedOut, st.MigratedIn)
	}
	if tf.timeseriesOut != "" {
		if err := writeTimeSeries(tf.timeseriesOut, res.Telemetry); err != nil {
			return err
		}
		fmt.Printf("telemetry series: %s (%d epochs, every %d cycles)\n",
			tf.timeseriesOut, len(res.Telemetry.Cycles), res.Telemetry.Interval)
	}
	if metricsF {
		reg := cl.Metrics()
		fmt.Printf("\nhardware counters:\n%s", reg.Report())
		if err := reg.Verify(); err != nil {
			return err
		}
		fmt.Printf("metrics: all %d conservation invariants hold\n", reg.Invariants())
	}
	if verify {
		want := mine.Count(g, s)
		if want != res.Embeddings {
			return fmt.Errorf("VERIFY FAILED: cluster found %d embeddings, software miner %d", res.Embeddings, want)
		}
		fmt.Printf("verify: OK (software miner agrees: %d)\n", want)
	}
	return nil
}

// writeTimeSeries exports the sampled telemetry: JSON when the file name
// ends in .json, the wide CSV (one column per gauge) otherwise.
func writeTimeSeries(path string, ts *telemetry.TimeSeries) error {
	if ts == nil || len(ts.Cycles) == 0 {
		return fmt.Errorf("timeseries-out: run produced no samples")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = ts.WriteJSON(f)
	} else {
		err = ts.WriteCSV(f)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("timeseries-out: %w", err)
	}
	return f.Close()
}

// bdPct renders one attribution category as a percentage of the total.
func bdPct(v int64, b accel.CycleBreakdown) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(v) / float64(t) * 100
}
